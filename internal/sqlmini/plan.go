package sqlmini

import (
	"fmt"
	"strings"
)

// OpKind labels a plan operator.
type OpKind int

// Operator kinds.
const (
	OpScan OpKind = iota
	OpIndexLookup
	OpFilter
	OpHashJoin
	OpSort
	OpAggregate
	OpProject
	OpLimit
	OpInsert
	OpUpdate
	OpDelete
	OpDDL
	OpLoad
	OpCall
)

// String names the operator kind.
func (k OpKind) String() string {
	names := []string{"Scan", "IndexLookup", "Filter", "HashJoin", "Sort",
		"Aggregate", "Project", "Limit", "Insert", "Update", "Delete", "DDL", "Load", "Call"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Operator is one node of a physical plan with its cost estimates. The costs
// are what the engine consumes as "work" and what the workload manager sees
// as the optimizer's estimate.
type Operator struct {
	Kind     OpKind
	Table    string // for scans and mutations
	Detail   string
	Children []*Operator

	// Estimates produced by the cost model.
	EstRows float64 // output cardinality
	EstCPU  float64 // core-seconds for this operator alone
	EstIO   float64 // megabytes read+written by this operator alone
	EstMem  float64 // peak working memory (MB) held while this operator runs
	// StateMB is the size of this operator's checkpointable state (hash
	// tables, sort runs); it drives the DumpState suspend cost.
	StateMB float64
}

// Plan is a physical plan for one statement.
type Plan struct {
	Root *Operator
	Stmt *Statement
}

// Operators returns every operator in the plan in post-order (children before
// parents), which is also a valid execution order for the sliced sub-plans of
// the query-restructuring scheduler.
func (p *Plan) Operators() []*Operator {
	var out []*Operator
	var walk func(op *Operator)
	walk = func(op *Operator) {
		for _, c := range op.Children {
			walk(c)
		}
		out = append(out, op)
	}
	if p.Root != nil {
		walk(p.Root)
	}
	return out
}

// TotalCPU sums the estimated CPU seconds over all operators.
func (p *Plan) TotalCPU() float64 {
	var s float64
	for _, op := range p.Operators() {
		s += op.EstCPU
	}
	return s
}

// TotalIO sums the estimated IO megabytes over all operators.
func (p *Plan) TotalIO() float64 {
	var s float64
	for _, op := range p.Operators() {
		s += op.EstIO
	}
	return s
}

// PeakMem reports the largest working-memory demand across operators; the
// engine charges this for the query's whole run (a deliberate simplification:
// pipelined operators hold their state concurrently).
func (p *Plan) PeakMem() float64 {
	var m float64
	var run float64
	for _, op := range p.Operators() {
		run += op.EstMem
		if op.EstMem > m {
			m = op.EstMem
		}
	}
	// Pipelines hold multiple operator states at once; charge the sum but
	// never less than the single largest operator.
	if run > m {
		m = run
	}
	return m
}

// TotalState reports the total checkpointable state in MB.
func (p *Plan) TotalState() float64 {
	var s float64
	for _, op := range p.Operators() {
		s += op.StateMB
	}
	return s
}

// EstRows reports the root operator's output cardinality.
func (p *Plan) EstRows() float64 {
	if p.Root == nil {
		return 0
	}
	return p.Root.EstRows
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(op *Operator, depth int)
	walk = func(op *Operator, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), op.Kind)
		if op.Table != "" {
			fmt.Fprintf(&b, "(%s)", op.Table)
		}
		fmt.Fprintf(&b, " rows=%.0f cpu=%.4gs io=%.4gMB mem=%.4gMB\n",
			op.EstRows, op.EstCPU, op.EstIO, op.EstMem)
		for _, c := range op.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	return b.String()
}
