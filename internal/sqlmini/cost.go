package sqlmini

import (
	"fmt"
	"math"
)

// CostModel converts statements into physical plans with cost estimates. The
// constants are calibrated so that an indexed OLTP point query costs
// milliseconds of CPU and a full scan of the default warehouse fact table
// costs tens of core-seconds — the cost spread the paper's consolidation
// scenario depends on.
type CostModel struct {
	Catalog *Catalog
	// CPUPerRow is core-seconds of CPU per row touched (default 50ns).
	CPUPerRow float64
	// CPUPerCompare is core-seconds per comparison in sorts (default 25ns).
	CPUPerCompare float64
	// DefaultRows is assumed for tables missing from the catalog.
	DefaultRows int64
}

// NewCostModel returns a cost model over the catalog with default constants.
func NewCostModel(cat *Catalog) *CostModel {
	return &CostModel{
		Catalog:       cat,
		CPUPerRow:     50e-9,
		CPUPerCompare: 25e-9,
		DefaultRows:   100_000,
	}
}

func (m *CostModel) tableStats(name string) *TableStats {
	if t := m.Catalog.Table(name); t != nil {
		return t
	}
	return &TableStats{Name: name, Rows: m.DefaultRows, RowBytes: 100}
}

// Selectivity estimates the fraction of rows passing a predicate, using the
// classic System R constants.
func Selectivity(p Predicate) float64 {
	if p.RightIsColumn {
		return 1 // join predicates handled by the join estimator
	}
	switch p.Op {
	case "=":
		return 0.05
	case "<", ">", "<=", ">=", "between":
		return 0.30
	case "like":
		return 0.25
	case "in":
		return 0.20
	case "<>", "!=":
		return 0.90
	default:
		return 0.33
	}
}

func conjunctionSelectivity(preds []Predicate) float64 {
	s := 1.0
	for _, p := range preds {
		s *= Selectivity(p)
	}
	return s
}

// hasPointPredicate reports whether preds contains an equality against a
// literal (index-usable).
func hasPointPredicate(preds []Predicate) bool {
	for _, p := range preds {
		if p.Op == "=" && !p.RightIsColumn {
			return true
		}
	}
	return false
}

// BuildPlan compiles a parsed statement into a physical plan with estimates.
func (m *CostModel) BuildPlan(stmt *Statement) (*Plan, error) {
	var root *Operator
	switch stmt.Type {
	case StmtRead:
		root = m.planSelect(stmt.Select)
	case StmtWrite:
		switch {
		case stmt.Insert != nil:
			root = m.planInsert(stmt.Insert)
		case stmt.Update != nil:
			root = m.planUpdate(stmt.Update)
		case stmt.Delete != nil:
			root = m.planDelete(stmt.Delete)
		}
	case StmtDDL:
		root = m.planDDL(stmt.DDL)
	case StmtLoad:
		root = m.planLoad(stmt.Load)
	case StmtCall:
		root = &Operator{Kind: OpCall, Detail: stmt.Call.Proc, EstRows: 1,
			EstCPU: 0.01, EstIO: 1, EstMem: 8}
	}
	if root == nil {
		return nil, fmt.Errorf("sqlmini: cannot plan statement %q", stmt.Raw)
	}
	return &Plan{Root: root, Stmt: stmt}, nil
}

// planAccess builds the access path for one table with its local predicates.
func (m *CostModel) planAccess(table string, preds []Predicate) *Operator {
	t := m.tableStats(table)
	sel := conjunctionSelectivity(preds)
	outRows := math.Max(1, float64(t.Rows)*sel)
	if t.Indexed && hasPointPredicate(preds) {
		// Index lookup: touch only matching rows plus index pages.
		ioMB := outRows*float64(t.RowBytes)/(1<<20) + 0.064 // + index pages
		return &Operator{
			Kind: OpIndexLookup, Table: table,
			EstRows: outRows,
			EstCPU:  outRows*m.CPUPerRow*4 + 20e-6, // traversal overhead
			EstIO:   ioMB,
			EstMem:  1,
		}
	}
	// Full scan: read everything, evaluate predicates on every row.
	return &Operator{
		Kind: OpScan, Table: table,
		EstRows: outRows,
		EstCPU:  float64(t.Rows) * m.CPUPerRow * float64(1+len(preds)),
		EstIO:   t.SizeMB(),
		EstMem:  4, // scan buffers
	}
}

// predsForTable partitions predicates: those naming only the given table
// (by qualified prefix) or unqualified ones attach to the driving table.
func predsForTable(preds []Predicate, table string, isDriving bool) []Predicate {
	var out []Predicate
	for _, p := range preds {
		if p.RightIsColumn {
			continue
		}
		if qual, ok := splitQualifier(p.Left); ok {
			if qual == table {
				out = append(out, p)
			}
		} else if isDriving {
			out = append(out, p)
		}
	}
	return out
}

func splitQualifier(col string) (string, bool) {
	for i := 0; i < len(col); i++ {
		if col[i] == '.' {
			return col[:i], true
		}
	}
	return "", false
}

func (m *CostModel) planSelect(sel *SelectStmt) *Operator {
	cur := m.planAccess(sel.Table, predsForTable(sel.Where, sel.Table, true))
	// Left-deep join tree in syntactic order, hash join throughout.
	for _, j := range sel.Joins {
		right := m.planAccess(j.Table, predsForTable(sel.Where, j.Table, false))
		build, probe := right, cur
		if right.EstRows > cur.EstRows {
			build, probe = cur, right
		}
		buildBytes := build.EstRows * 100                              // assume ~100B joined-row width
		outRows := math.Max(1, math.Max(build.EstRows, probe.EstRows)) // FK-join heuristic
		cur = &Operator{
			Kind:     OpHashJoin,
			Detail:   fmt.Sprintf("%s=%s", j.On.Left, j.On.Right),
			Children: []*Operator{probe, build},
			EstRows:  outRows,
			EstCPU:   (build.EstRows + probe.EstRows + outRows) * m.CPUPerRow * 2,
			EstIO:    0, // in-memory join; spill is the engine's memory model's job
			EstMem:   buildBytes / (1 << 20),
			StateMB:  buildBytes / (1 << 20),
		}
	}
	if sel.Aggregate || len(sel.GroupBy) > 0 {
		in := cur
		groups := math.Max(1, in.EstRows*0.01)
		if len(sel.GroupBy) == 0 {
			groups = 1 // scalar aggregate
		}
		cur = &Operator{
			Kind: OpAggregate, Children: []*Operator{in},
			EstRows: groups,
			EstCPU:  in.EstRows * m.CPUPerRow,
			EstMem:  groups * 64 / (1 << 20),
			StateMB: groups * 64 / (1 << 20),
		}
	}
	if len(sel.OrderBy) > 0 {
		in := cur
		n := math.Max(2, in.EstRows)
		sortBytes := n * 100
		cur = &Operator{
			Kind: OpSort, Children: []*Operator{in},
			EstRows: in.EstRows,
			EstCPU:  n * math.Log2(n) * m.CPUPerCompare,
			EstMem:  sortBytes / (1 << 20),
			StateMB: sortBytes / (1 << 20),
		}
	}
	if sel.Distinct {
		in := cur
		cur = &Operator{
			Kind: OpAggregate, Detail: "distinct", Children: []*Operator{in},
			EstRows: math.Max(1, in.EstRows*0.5),
			EstCPU:  in.EstRows * m.CPUPerRow,
			EstMem:  in.EstRows * 50 / (1 << 20),
			StateMB: in.EstRows * 50 / (1 << 20),
		}
	}
	if sel.Limit >= 0 {
		in := cur
		cur = &Operator{
			Kind: OpLimit, Children: []*Operator{in},
			EstRows: math.Min(float64(sel.Limit), in.EstRows),
			EstCPU:  1e-6,
		}
	}
	return cur
}

func (m *CostModel) planInsert(ins *InsertStmt) *Operator {
	t := m.tableStats(ins.Table)
	if ins.Select != nil {
		child := m.planSelect(ins.Select)
		rows := child.EstRows
		return &Operator{
			Kind: OpInsert, Table: ins.Table, Children: []*Operator{child},
			EstRows: rows,
			EstCPU:  rows * m.CPUPerRow * 6, // index maintenance
			EstIO:   rows * float64(t.RowBytes) * 2 / (1 << 20),
			EstMem:  2,
		}
	}
	rows := math.Max(1, float64(ins.Rows))
	return &Operator{
		Kind: OpInsert, Table: ins.Table,
		EstRows: rows,
		EstCPU:  rows*m.CPUPerRow*6 + 30e-6,
		EstIO:   math.Max(0.008, rows*float64(t.RowBytes)*2/(1<<20)),
		EstMem:  1,
	}
}

func (m *CostModel) planUpdate(upd *UpdateStmt) *Operator {
	access := m.planAccess(upd.Table, upd.Where)
	t := m.tableStats(upd.Table)
	rows := access.EstRows
	return &Operator{
		Kind: OpUpdate, Table: upd.Table, Children: []*Operator{access},
		EstRows: rows,
		EstCPU:  rows * m.CPUPerRow * 4,
		EstIO:   math.Max(0.008, rows*float64(t.RowBytes)*2/(1<<20)),
		EstMem:  1,
	}
}

func (m *CostModel) planDelete(del *DeleteStmt) *Operator {
	access := m.planAccess(del.Table, del.Where)
	t := m.tableStats(del.Table)
	rows := access.EstRows
	return &Operator{
		Kind: OpDelete, Table: del.Table, Children: []*Operator{access},
		EstRows: rows,
		EstCPU:  rows * m.CPUPerRow * 4,
		EstIO:   math.Max(0.008, rows*float64(t.RowBytes)/(1<<20)),
		EstMem:  1,
	}
}

func (m *CostModel) planDDL(ddl *DDLStmt) *Operator {
	op := &Operator{Kind: OpDDL, Detail: ddl.Action + " " + ddl.Object, Table: ddl.Table,
		EstRows: 0, EstCPU: 0.005, EstIO: 0.1, EstMem: 4}
	if ddl.Action == "CREATE" && ddl.Object == "INDEX" && ddl.Table != "" {
		// Index builds scan and sort the whole table.
		t := m.tableStats(ddl.Table)
		n := math.Max(2, float64(t.Rows))
		op.EstCPU = n*m.CPUPerRow + n*math.Log2(n)*m.CPUPerCompare
		op.EstIO = t.SizeMB() * 1.5
		op.EstMem = math.Min(512, t.SizeMB()/4)
		op.StateMB = op.EstMem
	}
	return op
}

func (m *CostModel) planLoad(load *LoadStmt) *Operator {
	t := m.tableStats(load.Table)
	rows := float64(load.Rows)
	if rows == 0 {
		rows = float64(t.Rows) / 10
	}
	return &Operator{
		Kind: OpLoad, Table: load.Table,
		EstRows: rows,
		EstCPU:  rows * m.CPUPerRow * 3,
		EstIO:   rows * float64(t.RowBytes) * 2 / (1 << 20),
		EstMem:  32,
	}
}

// PlanSQL parses and plans a SQL string in one step.
func (m *CostModel) PlanSQL(sql string) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return m.BuildPlan(stmt)
}
