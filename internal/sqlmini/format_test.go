package sqlmini

import (
	"strings"
	"testing"
)

// TestFormatRoundTrip: Format output re-parses, and re-formatting the
// re-parse is a fixed point (canonical form).
func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT id, name FROM customers WHERE id = 42",
		"SELECT * FROM orders",
		"SELECT DISTINCT region FROM store_dim ORDER BY region LIMIT 5",
		`SELECT d.year, SUM(f.amount) FROM sales_fact f JOIN date_dim d ON f.date_id = d.id
			WHERE d.year >= 2015 GROUP BY d.year`,
		"SELECT COUNT(*) FROM orders WHERE total > 100 AND region = 'west'",
		"INSERT INTO orders VALUES (1, 2), (3, 4)",
		"INSERT INTO archive SELECT * FROM orders WHERE total < 10",
		"UPDATE accounts SET balance = 0 WHERE id = 7",
		"DELETE FROM orders WHERE id = 9",
		"CREATE TABLE t (id int)",
		"CREATE INDEX i ON orders (id)",
		"DROP TABLE t",
		"LOAD INTO sales_fact 1000",
		"CALL reorg(orders)",
		"CALL backup()",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		formatted := Format(stmt)
		re, err := Parse(formatted)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", formatted, q, err)
		}
		// Fixed point.
		again := Format(re)
		if again != formatted {
			t.Fatalf("not canonical: %q -> %q", formatted, again)
		}
		// Type and tables preserved.
		if re.Type != stmt.Type {
			t.Fatalf("%q: type changed %v -> %v", q, stmt.Type, re.Type)
		}
		a, b := stmt.Tables(), re.Tables()
		if len(a) != len(b) {
			t.Fatalf("%q: tables changed %v -> %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: tables changed %v -> %v", q, a, b)
			}
		}
	}
}

func TestFormatNormalizesCase(t *testing.T) {
	stmt := MustParse("select ID, Name from Customers where ID = 1")
	got := Format(stmt)
	if !strings.HasPrefix(got, "SELECT ") || !strings.Contains(got, "FROM customers") {
		t.Fatalf("normalization wrong: %q", got)
	}
}

func TestFormatAggregatesUppercased(t *testing.T) {
	stmt := MustParse("SELECT COUNT(*), SUM(total) FROM orders")
	got := Format(stmt)
	if !strings.Contains(got, "COUNT(*)") || !strings.Contains(got, "SUM(total)") {
		t.Fatalf("aggregates not canonical: %q", got)
	}
}

func TestFormatStringsQuoted(t *testing.T) {
	stmt := MustParse("SELECT a FROM t WHERE name = 'bob'")
	got := Format(stmt)
	if !strings.Contains(got, "name = 'bob'") {
		t.Fatalf("string literal lost quotes: %q", got)
	}
	// Numbers stay unquoted.
	stmt = MustParse("SELECT a FROM t WHERE x = 10")
	if !strings.Contains(Format(stmt), "x = 10") {
		t.Fatal("number got quoted")
	}
}
