package sqlmini

import "fmt"

// StatementType classifies a statement the way the paper's workload
// definitions do ("what" the request is, Section 2.2): READ, WRITE, DML, DDL,
// LOAD, CALL.
type StatementType int

// Statement types.
const (
	StmtRead  StatementType = iota // SELECT
	StmtWrite                      // INSERT/UPDATE/DELETE (a DML subset that writes)
	StmtDDL                        // CREATE/DROP
	StmtLoad                       // LOAD
	StmtCall                       // CALL
)

// String names the statement type.
func (t StatementType) String() string {
	switch t {
	case StmtRead:
		return "READ"
	case StmtWrite:
		return "WRITE"
	case StmtDDL:
		return "DDL"
	case StmtLoad:
		return "LOAD"
	case StmtCall:
		return "CALL"
	default:
		return fmt.Sprintf("StatementType(%d)", int(t))
	}
}

// IsDML reports whether the statement manipulates data (READ or WRITE).
func (t StatementType) IsDML() bool { return t == StmtRead || t == StmtWrite }

// CompareOp is a comparison operator in a predicate.
type CompareOp string

// Predicate is a simple column-vs-literal or column-vs-column comparison.
type Predicate struct {
	Left  string // column (possibly table-qualified)
	Op    CompareOp
	Right string // literal or column
	// RightIsColumn marks join predicates (column = column).
	RightIsColumn bool
}

// JoinClause is one JOIN in a select.
type JoinClause struct {
	Table string
	On    Predicate
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Columns   []string // "*" or column names / aggregate exprs
	Aggregate bool     // true if any aggregate function appears
	Distinct  bool
	Table     string
	Joins     []JoinClause
	Where     []Predicate // conjunctive
	GroupBy   []string
	OrderBy   []string
	Limit     int64 // -1 when absent
}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table  string
	Rows   int64       // number of VALUES tuples, or estimated rows for INSERT..SELECT
	Select *SelectStmt // non-nil for INSERT ... SELECT
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Sets  []string
	Where []Predicate
}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table string
	Where []Predicate
}

// DDLStmt is a parsed CREATE/DROP TABLE or INDEX.
type DDLStmt struct {
	Action string // CREATE or DROP
	Object string // TABLE or INDEX
	Name   string
	Table  string // for indexes, the indexed table
}

// LoadStmt is a parsed LOAD INTO.
type LoadStmt struct {
	Table string
	Rows  int64
}

// CallStmt is a parsed CALL.
type CallStmt struct {
	Proc string
	Args []string
}

// Statement is the result of parsing one SQL string. Exactly one of the
// typed fields is non-nil, matching Type.
type Statement struct {
	Raw    string
	Type   StatementType
	Select *SelectStmt
	Insert *InsertStmt
	Update *UpdateStmt
	Delete *DeleteStmt
	DDL    *DDLStmt
	Load   *LoadStmt
	Call   *CallStmt
}

// Tables returns every table the statement references, in first-mention order.
func (s *Statement) Tables() []string {
	var out []string
	add := func(t string) {
		if t == "" {
			return
		}
		for _, x := range out {
			if x == t {
				return
			}
		}
		out = append(out, t)
	}
	switch s.Type {
	case StmtRead:
		add(s.Select.Table)
		for _, j := range s.Select.Joins {
			add(j.Table)
		}
	case StmtWrite:
		switch {
		case s.Insert != nil:
			add(s.Insert.Table)
			if s.Insert.Select != nil {
				add(s.Insert.Select.Table)
				for _, j := range s.Insert.Select.Joins {
					add(j.Table)
				}
			}
		case s.Update != nil:
			add(s.Update.Table)
		case s.Delete != nil:
			add(s.Delete.Table)
		}
	case StmtDDL:
		add(s.DDL.Table)
		if s.DDL.Object == "TABLE" {
			add(s.DDL.Name)
		}
	case StmtLoad:
		add(s.Load.Table)
	}
	return out
}
