package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement in the mini dialect.
func Parse(input string) (*Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, raw: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow one trailing semicolon.
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, fmt.Errorf("sqlmini: trailing input at %q", p.peek().Text)
	}
	return stmt, nil
}

// MustParse parses input and panics on error; for tests and fixed workloads.
func MustParse(input string) *Statement {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
	raw  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("sqlmini: expected %q, found %q at offset %d", text, p.peek().Text, p.peek().Pos)
}

func (p *parser) parseStatement() (*Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, fmt.Errorf("sqlmini: statement must start with a keyword, found %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Statement{Raw: p.raw, Type: StmtRead, Select: sel}, nil
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE", "DROP":
		return p.parseDDL()
	case "LOAD":
		return p.parseLoad()
	case "CALL":
		return p.parseCall()
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement %q", t.Text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")
	// Column list.
	for {
		col, agg, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Columns = append(sel.Columns, col)
		sel.Aggregate = sel.Aggregate || agg
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	sel.Table = tbl
	// Joins.
	for {
		if p.accept(TokKeyword, "INNER") || p.accept(TokKeyword, "LEFT") {
			// fallthrough to JOIN
		}
		if !p.accept(TokKeyword, "JOIN") {
			break
		}
		jt, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: jt, On: pred})
	}
	// WHERE.
	if p.accept(TokKeyword, "WHERE") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		sel.Where = preds
	}
	// GROUP BY.
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = cols
		sel.Aggregate = true
		if p.accept(TokKeyword, "HAVING") {
			if _, err := p.parseConjunction(); err != nil {
				return nil, err
			}
		}
	}
	// ORDER BY.
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = cols
		p.accept(TokKeyword, "ASC")
		p.accept(TokKeyword, "DESC")
	}
	// LIMIT.
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (string, bool, error) {
	if p.accept(TokSymbol, "*") {
		return "*", false, nil
	}
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return "", false, err
			}
			var inner string
			if p.accept(TokSymbol, "*") {
				inner = "*"
			} else {
				c, err := p.parseColumnRef()
				if err != nil {
					return "", false, err
				}
				inner = c
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return "", false, err
			}
			name := strings.ToLower(t.Text) + "(" + inner + ")"
			if p.accept(TokKeyword, "AS") {
				if _, err := p.expect(TokIdent, ""); err != nil {
					return "", false, err
				}
			}
			return name, true, nil
		}
	}
	c, err := p.parseColumnRef()
	if err != nil {
		return "", false, err
	}
	if p.accept(TokKeyword, "AS") {
		if _, err := p.expect(TokIdent, ""); err != nil {
			return "", false, err
		}
	}
	return c, false, nil
}

// parseColumnRef parses ident or ident.ident.
func (p *parser) parseColumnRef() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.Text
	if p.accept(TokSymbol, ".") {
		t2, err := p.expect(TokIdent, "")
		if err != nil {
			return "", err
		}
		name = name + "." + t2.Text
	}
	return name, nil
}

func (p *parser) parseColumnList() ([]string, error) {
	var cols []string
	for {
		c, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return cols, nil
}

func (p *parser) parseTableName() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	// Optional alias.
	if p.at(TokIdent, "") {
		p.next()
	} else if p.accept(TokKeyword, "AS") {
		if _, err := p.expect(TokIdent, ""); err != nil {
			return "", err
		}
	}
	return t.Text, nil
}

func (p *parser) parseConjunction() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.accept(TokKeyword, "AND") {
			break
		}
	}
	return preds, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	// BETWEEN x AND y — modeled as a range predicate.
	if p.accept(TokKeyword, "BETWEEN") {
		lo := p.next()
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return Predicate{}, err
		}
		p.next() // hi
		return Predicate{Left: left, Op: "between", Right: lo.Text}, nil
	}
	if p.accept(TokKeyword, "LIKE") {
		t := p.next()
		return Predicate{Left: left, Op: "like", Right: t.Text}, nil
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return Predicate{}, err
		}
		depth := 1
		for depth > 0 {
			t := p.next()
			if t.Kind == TokEOF {
				return Predicate{}, fmt.Errorf("sqlmini: unterminated IN list")
			}
			if t.Kind == TokSymbol && t.Text == "(" {
				depth++
			}
			if t.Kind == TokSymbol && t.Text == ")" {
				depth--
			}
		}
		return Predicate{Left: left, Op: "in", Right: ""}, nil
	}
	op := p.peek()
	if op.Kind != TokSymbol || !isCompareOp(op.Text) {
		return Predicate{}, fmt.Errorf("sqlmini: expected comparison operator, found %q", op.Text)
	}
	p.next()
	r := p.peek()
	switch r.Kind {
	case TokIdent:
		col, err := p.parseColumnRef()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Left: left, Op: CompareOp(op.Text), Right: col, RightIsColumn: true}, nil
	case TokNumber, TokString:
		p.next()
		return Predicate{Left: left, Op: CompareOp(op.Text), Right: r.Text}, nil
	case TokKeyword:
		if r.Text == "NULL" {
			p.next()
			return Predicate{Left: left, Op: CompareOp(op.Text), Right: "NULL"}, nil
		}
	}
	return Predicate{}, fmt.Errorf("sqlmini: bad predicate right-hand side %q", r.Text)
}

func isCompareOp(s string) bool {
	switch s {
	case "=", "<", ">", "<=", ">=", "<>", "!=":
		return true
	}
	return false
}

func (p *parser) parseInsert() (*Statement, error) {
	if _, err := p.expect(TokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: t.Text}
	// Optional column list.
	if p.accept(TokSymbol, "(") {
		if _, err := p.parseColumnList(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.accept(TokKeyword, "VALUES"):
		for {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			depth := 1
			for depth > 0 {
				tk := p.next()
				if tk.Kind == TokEOF {
					return nil, fmt.Errorf("sqlmini: unterminated VALUES tuple")
				}
				if tk.Kind == TokSymbol && tk.Text == "(" {
					depth++
				}
				if tk.Kind == TokSymbol && tk.Text == ")" {
					depth--
				}
			}
			ins.Rows++
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	case p.at(TokKeyword, "SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
	default:
		return nil, fmt.Errorf("sqlmini: INSERT requires VALUES or SELECT")
	}
	return &Statement{Raw: p.raw, Type: StmtWrite, Insert: ins}, nil
}

func (p *parser) parseUpdate() (*Statement, error) {
	if _, err := p.expect(TokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: t.Text}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		// Value: number, string, or column expression; consume one token
		// plus simple arithmetic (col + number).
		p.next()
		for p.at(TokSymbol, "+") || p.at(TokSymbol, "-") || p.at(TokSymbol, "*") || p.at(TokSymbol, "/") {
			p.next()
			p.next()
		}
		upd.Sets = append(upd.Sets, col)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		upd.Where = preds
	}
	return &Statement{Raw: p.raw, Type: StmtWrite, Update: upd}, nil
}

func (p *parser) parseDelete() (*Statement, error) {
	if _, err := p.expect(TokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: t.Text}
	if p.accept(TokKeyword, "WHERE") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		del.Where = preds
	}
	return &Statement{Raw: p.raw, Type: StmtWrite, Delete: del}, nil
}

func (p *parser) parseDDL() (*Statement, error) {
	action := p.next().Text // CREATE or DROP
	obj := p.peek()
	if obj.Kind != TokKeyword || (obj.Text != "TABLE" && obj.Text != "INDEX") {
		return nil, fmt.Errorf("sqlmini: %s requires TABLE or INDEX", action)
	}
	p.next()
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ddl := &DDLStmt{Action: action, Object: obj.Text, Name: name.Text}
	if obj.Text == "INDEX" && p.accept(TokKeyword, "ON") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ddl.Table = t.Text
		if p.accept(TokSymbol, "(") {
			if _, err := p.parseColumnList(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
		}
	}
	if obj.Text == "TABLE" && action == "CREATE" && p.accept(TokSymbol, "(") {
		depth := 1
		for depth > 0 {
			tk := p.next()
			if tk.Kind == TokEOF {
				return nil, fmt.Errorf("sqlmini: unterminated column definitions")
			}
			if tk.Kind == TokSymbol && tk.Text == "(" {
				depth++
			}
			if tk.Kind == TokSymbol && tk.Text == ")" {
				depth--
			}
		}
	}
	return &Statement{Raw: p.raw, Type: StmtDDL, DDL: ddl}, nil
}

func (p *parser) parseLoad() (*Statement, error) {
	if _, err := p.expect(TokKeyword, "LOAD"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	load := &LoadStmt{Table: t.Text, Rows: 0}
	if p.at(TokNumber, "") {
		n, err := strconv.ParseInt(p.next().Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad LOAD row count")
		}
		load.Rows = n
	}
	return &Statement{Raw: p.raw, Type: StmtLoad, Load: load}, nil
}

func (p *parser) parseCall() (*Statement, error) {
	if _, err := p.expect(TokKeyword, "CALL"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	call := &CallStmt{Proc: t.Text}
	if p.accept(TokSymbol, "(") {
		for !p.accept(TokSymbol, ")") {
			tk := p.next()
			if tk.Kind == TokEOF {
				return nil, fmt.Errorf("sqlmini: unterminated CALL argument list")
			}
			if tk.Kind != TokSymbol {
				call.Args = append(call.Args, tk.Text)
			}
		}
	}
	return &Statement{Raw: p.raw, Type: StmtCall, Call: call}, nil
}
