// Package sqlmini implements a minimal SQL dialect: a lexer, a parser, a
// catalog with table statistics, and a cost-based plan builder. It is the
// "query optimizer" substrate of the workload manager: it classifies incoming
// statements by type (READ / WRITE / DML / DDL / LOAD / CALL, the work-class
// types DB2 WLM uses, Section 4.1.1 of the paper) and produces the estimated
// costs and cardinalities that every threshold- and prediction-based control
// consumes.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind labels a lexical token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
)

// Token is one lexical token with its position for error reporting.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "GROUP": true,
	"BY": true, "ORDER": true, "LIMIT": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "DROP": true, "TABLE": true, "INDEX": true, "LOAD": true,
	"CALL": true, "AS": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "DISTINCT": true, "HAVING": true, "NOT": true,
	"NULL": true, "BETWEEN": true, "LIKE": true, "IN": true, "ASC": true,
	"DESC": true, "UNION": true, "ALL": true,
}

// Lex splits input into tokens. It returns an error for unterminated strings
// or bytes outside the dialect.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentByte(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokKeyword, upper, start})
			} else {
				toks = append(toks, Token{TokIdent, strings.ToLower(word), start})
			}
		case unicode.IsDigit(c):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, Token{TokString, input[start+1 : i-1], start})
		case strings.ContainsRune("(),*=<>.;+-/%!", c):
			// Two-character operators.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, Token{TokSymbol, two, i})
					i += 2
					continue
				}
			}
			toks = append(toks, Token{TokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlmini: unexpected byte %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

//dbwlm:hotpath
func isIdentByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}
