package sqlmini

import (
	"fmt"
	"strings"
)

// Format renders a parsed statement back to normalized SQL in the mini
// dialect. The output re-parses to an equivalent statement (round-trip
// property), which makes traces and monitor views canonical regardless of
// the original text's spacing or keyword case.
func Format(s *Statement) string {
	switch s.Type {
	case StmtRead:
		return formatSelect(s.Select)
	case StmtWrite:
		switch {
		case s.Insert != nil:
			return formatInsert(s.Insert)
		case s.Update != nil:
			return formatUpdate(s.Update)
		case s.Delete != nil:
			return formatDelete(s.Delete)
		}
	case StmtDDL:
		return formatDDL(s.DDL)
	case StmtLoad:
		if s.Load.Rows > 0 {
			return fmt.Sprintf("LOAD INTO %s %d", s.Load.Table, s.Load.Rows)
		}
		return "LOAD INTO " + s.Load.Table
	case StmtCall:
		if len(s.Call.Args) > 0 {
			return fmt.Sprintf("CALL %s(%s)", s.Call.Proc, strings.Join(s.Call.Args, ", "))
		}
		return fmt.Sprintf("CALL %s()", s.Call.Proc)
	}
	return s.Raw
}

func formatSelect(sel *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if sel.Distinct {
		b.WriteString("DISTINCT ")
	}
	cols := sel.Columns
	if len(cols) == 0 {
		cols = []string{"*"}
	}
	b.WriteString(strings.Join(upperAggregates(cols), ", "))
	b.WriteString(" FROM ")
	b.WriteString(sel.Table)
	for _, j := range sel.Joins {
		fmt.Fprintf(&b, " JOIN %s ON %s", j.Table, formatPredicate(j.On))
	}
	if len(sel.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(sel.Where))
		for i, p := range sel.Where {
			parts[i] = formatPredicate(p)
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(sel.GroupBy, ", "))
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(sel.OrderBy, ", "))
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", sel.Limit)
	}
	return b.String()
}

// upperAggregates renders aggregate column expressions with upper-case
// function names (count(x) -> COUNT(x)).
func upperAggregates(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c
		for _, fn := range []string{"count(", "sum(", "avg(", "min(", "max("} {
			if strings.HasPrefix(c, fn) {
				out[i] = strings.ToUpper(fn[:len(fn)-1]) + c[len(fn)-1:]
				break
			}
		}
	}
	return out
}

func formatPredicate(p Predicate) string {
	switch p.Op {
	case "between":
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Left, p.Right, p.Right)
	case "like":
		return fmt.Sprintf("%s LIKE '%s'", p.Left, p.Right)
	case "in":
		return fmt.Sprintf("%s IN (0)", p.Left) // member list not retained
	default:
		right := p.Right
		if !p.RightIsColumn && !isNumeric(right) && right != "NULL" {
			right = "'" + right + "'"
		}
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, right)
	}
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && c != '.' {
			return false
		}
	}
	return true
}

func formatInsert(ins *InsertStmt) string {
	if ins.Select != nil {
		return fmt.Sprintf("INSERT INTO %s %s", ins.Table, formatSelect(ins.Select))
	}
	tuples := make([]string, ins.Rows)
	for i := range tuples {
		tuples[i] = "(0)"
	}
	if len(tuples) == 0 {
		tuples = []string{"(0)"}
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", ins.Table, strings.Join(tuples, ", "))
}

func formatUpdate(upd *UpdateStmt) string {
	sets := make([]string, len(upd.Sets))
	for i, c := range upd.Sets {
		sets[i] = c + " = 0" // expression not retained; normalized placeholder
	}
	out := fmt.Sprintf("UPDATE %s SET %s", upd.Table, strings.Join(sets, ", "))
	if len(upd.Where) > 0 {
		parts := make([]string, len(upd.Where))
		for i, p := range upd.Where {
			parts[i] = formatPredicate(p)
		}
		out += " WHERE " + strings.Join(parts, " AND ")
	}
	return out
}

func formatDelete(del *DeleteStmt) string {
	out := "DELETE FROM " + del.Table
	if len(del.Where) > 0 {
		parts := make([]string, len(del.Where))
		for i, p := range del.Where {
			parts[i] = formatPredicate(p)
		}
		out += " WHERE " + strings.Join(parts, " AND ")
	}
	return out
}

func formatDDL(ddl *DDLStmt) string {
	switch {
	case ddl.Object == "INDEX" && ddl.Action == "CREATE" && ddl.Table != "":
		return fmt.Sprintf("CREATE INDEX %s ON %s", ddl.Name, ddl.Table)
	case ddl.Object == "TABLE" && ddl.Action == "CREATE":
		return fmt.Sprintf("CREATE TABLE %s (c int)", ddl.Name)
	default:
		return fmt.Sprintf("%s %s %s", ddl.Action, ddl.Object, ddl.Name)
	}
}
