package sqlmini

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// PlanCost is the memoized scalar cost summary of a plan — everything the
// admission layer consumes — so a cache hit never re-walks the operator tree
// (Plan.Operators allocates; the hit path must not).
type PlanCost struct {
	CPUSeconds float64
	IOMB       float64
	MemMB      float64
	Rows       float64
	StateMB    float64
	Type       StatementType
}

// CostOf summarizes a plan into its scalar costs.
func CostOf(p *Plan) PlanCost {
	return PlanCost{
		CPUSeconds: p.TotalCPU(),
		IOMB:       p.TotalIO(),
		MemMB:      p.PeakMem(),
		Rows:       p.EstRows(),
		StateMB:    p.TotalState(),
		Type:       p.Stmt.Type,
	}
}

// CachedPlan is one interned query shape: the plan built for the first
// statement instance seen with this fingerprint, plus its memoized costs.
// Cached plans are shared across callers and must be treated as read-only.
type CachedPlan struct {
	FP   Fingerprint
	Plan *Plan
	Cost PlanCost

	touch atomic.Int64 // shard LRU clock at last hit
}

// planShardCap bounds how many entries one shard holds; eviction is
// approximate-LRU within the shard (the entry with the oldest touch tick
// goes). Sizing note: capacity is split evenly across shards, so per-shard
// capacity stays small and the miss path's copy-on-write map clone is cheap
// next to the parse+plan it just paid for.
type planShard struct {
	// entries is copy-on-write: readers load the pointer and index the
	// immutable map with no lock; writers clone under mu and swap. Keyed by
	// Fingerprint.Lo; the entry stores the full 128-bit fingerprint and the
	// reader compares it, so a Lo collision inside a shard reads as a miss.
	entries atomic.Pointer[map[uint64]*CachedPlan]
	mu      sync.Mutex
	clock   atomic.Int64 // per-shard LRU tick (global clock would share a line)
	hits    atomic.Int64
	misses  atomic.Int64
	_       [88]byte // pad to 128B so adjacent shards never share a cache line
}

// PlanCache interns normalized SQL: repeated query shapes skip lexing,
// parsing, and plan building entirely, returning the memoized plan and cost
// in a few fingerprint-hash plus map-probe nanoseconds with zero allocation.
// The read path is lock-free (atomic pointer load of an immutable per-shard
// map); only misses serialize, per shard, while inserting.
type PlanCache struct {
	model  *CostModel
	shards []planShard
	mask   uint32
	cap    int // per-shard entry cap
}

// NewPlanCache builds a cache over the cost model. capacity is the total
// entry budget (default 4096), shards the stripe count (rounded up to a power
// of two, default 8).
func NewPlanCache(model *CostModel, capacity, shards int) *PlanCache {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &PlanCache{model: model, shards: make([]planShard, n), mask: uint32(n - 1), cap: per}
	for i := range c.shards {
		m := make(map[uint64]*CachedPlan)
		c.shards[i].entries.Store(&m)
	}
	return c
}

// shardOf picks the home shard from the high lane so the map key (the low
// lane) stays fully discriminating within the shard.
//
//dbwlm:hotpath
func (c *PlanCache) shardOf(fp Fingerprint) *planShard {
	return &c.shards[uint32(fp.Hi)&c.mask]
}

// Lookup returns the cached plan for a fingerprint, or nil. Allocation-free.
//
//dbwlm:hotpath
func (c *PlanCache) Lookup(fp Fingerprint) *CachedPlan {
	sh := c.shardOf(fp)
	if e := (*sh.entries.Load())[fp.Lo]; e != nil && e.FP == fp {
		e.touch.Store(sh.clock.Add(1))
		sh.hits.Add(1)
		return e
	}
	sh.misses.Add(1)
	return nil
}

// Plan resolves one SQL statement through the cache: fingerprint, lock-free
// lookup, and on miss parse+plan+insert. The returned CachedPlan is shared —
// read-only to callers.
//
//dbwlm:hotpath
func (c *PlanCache) Plan(sql string) (*CachedPlan, error) {
	e, _, err := c.PlanInfo(sql)
	return e, err
}

// PlanInfo is Plan plus whether the statement hit the cache.
//
//dbwlm:hotpath
func (c *PlanCache) PlanInfo(sql string) (entry *CachedPlan, hit bool, err error) {
	fp := FingerprintSQL(sql)
	if e := c.Lookup(fp); e != nil {
		return e, true, nil
	}
	//dbwlm:nolint hotpath, hotclosure -- a cache miss pays parse+plan+insert by definition; the steady state is the hit path above
	return c.planMiss(fp, sql)
}

// PlanInfoBytes is PlanInfo for SQL held in a transient byte buffer — the
// batched wire transport's decode scratch, which is overwritten by the next
// frame. The bytes are read only during fingerprinting (via an unsafe no-copy
// string view that is never retained); a cache miss copies them into a stable
// string before parsing, so no cached structure ever aliases the caller's
// buffer. The hit path — the steady state — is allocation-free.
//
//dbwlm:hotpath
func (c *PlanCache) PlanInfoBytes(sql []byte) (entry *CachedPlan, hit bool, err error) {
	fp := FingerprintSQL(unsafe.String(unsafe.SliceData(sql), len(sql)))
	if e := c.Lookup(fp); e != nil {
		return e, true, nil
	}
	//dbwlm:nolint hotpath, hotclosure -- a cache miss pays the stable-string copy plus parse+plan+insert by definition
	return c.planMiss(fp, string(sql))
}

// planMiss is the cold half of PlanInfo: parse, plan, and insert, all outside
// the shard lock. Concurrent misses on the same shape may plan twice; last
// store wins and both results are identical.
func (c *PlanCache) planMiss(fp Fingerprint, sql string) (entry *CachedPlan, hit bool, err error) {
	p, err := c.model.PlanSQL(sql)
	if err != nil {
		// Errors are not cached: error shapes are rare, and a poisoned entry
		// would pin a parse error onto a fingerprint forever.
		return nil, false, err
	}
	e := &CachedPlan{FP: fp, Plan: p, Cost: CostOf(p)}
	c.insert(e)
	return e, false, nil
}

func (c *PlanCache) insert(e *CachedPlan) {
	sh := c.shardOf(e.FP)
	e.touch.Store(sh.clock.Add(1))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.entries.Load()
	next := make(map[uint64]*CachedPlan, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[e.FP.Lo] = e
	// Evict the least-recently-touched entries down to the shard cap.
	for len(next) > c.cap {
		var victim uint64
		oldest := int64(1<<63 - 1)
		for k, v := range next {
			if t := v.touch.Load(); t < oldest {
				oldest, victim = t, k
			}
		}
		delete(next, victim)
	}
	sh.entries.Store(&next)
}

// CacheStats is the merged monitoring view of the cache.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// Stats merges the shards.
func (c *PlanCache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Entries += len(*sh.entries.Load())
	}
	return st
}
