package sqlmini

import (
	"fmt"
	"sync"
	"testing"
)

// corpus is a spread of statement shapes across the dialect.
var cacheCorpus = []string{
	"SELECT id, name FROM customers WHERE id = 42",
	"SELECT * FROM orders",
	"SELECT DISTINCT region FROM store_dim ORDER BY region LIMIT 5",
	"SELECT d.year, SUM(f.amount) FROM sales_fact f JOIN date_dim d ON f.date_id = d.id GROUP BY d.year",
	"SELECT COUNT(*) FROM orders WHERE total > 100 AND region = 'west'",
	"INSERT INTO orders (id, total) VALUES (1, 10), (2, 20), (3, 30)",
	"UPDATE accounts SET balance = balance + 10 WHERE id = 7",
	"DELETE FROM orders WHERE id = 9",
	"CREATE INDEX idx ON orders",
	"LOAD INTO sales_fact 50000",
	"CALL nightly_etl",
}

func TestFingerprintStripsLiterals(t *testing.T) {
	same := [][2]string{
		{"SELECT a FROM t WHERE id = 42", "SELECT a FROM t WHERE id = 99999"},
		{"SELECT a FROM t WHERE name = 'bob'", "SELECT a FROM t WHERE name = 'alice'"},
		{"select A from T where ID = 1", "SELECT a FROM t WHERE id = 2"},
		{"SELECT a FROM t -- comment\nWHERE x = 1", "SELECT a  FROM  t WHERE x = 2"},
		{"SELECT a FROM t WHERE x BETWEEN 1 AND 5", "SELECT a FROM t WHERE x BETWEEN 10 AND 50"},
		{"INSERT INTO t (a, b) VALUES (1, 2)", "INSERT INTO t (a, b) VALUES (7, 8)"},
	}
	for _, pair := range same {
		if FingerprintSQL(pair[0]) != FingerprintSQL(pair[1]) {
			t.Errorf("fingerprints differ:\n  %q\n  %q", pair[0], pair[1])
		}
	}
	diff := [][2]string{
		{"SELECT a FROM t", "SELECT b FROM t"},
		{"SELECT a FROM t", "SELECT a FROM u"},
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x > 1"},
		// Cost-relevant literals stay significant.
		{"SELECT a FROM t LIMIT 5", "SELECT a FROM t LIMIT 500"},
		{"LOAD INTO t 100", "LOAD INTO t 100000"},
		// VALUES row count is structural.
		{"INSERT INTO t (a) VALUES (1)", "INSERT INTO t (a) VALUES (1), (2)"},
		{"SELECT a, b FROM t", "SELECT ab FROM t"},
	}
	for _, pair := range diff {
		if FingerprintSQL(pair[0]) == FingerprintSQL(pair[1]) {
			t.Errorf("fingerprints collide:\n  %q\n  %q", pair[0], pair[1])
		}
	}
}

func TestFingerprintZeroAlloc(t *testing.T) {
	sql := cacheCorpus[3]
	if avg := testing.AllocsPerRun(1000, func() {
		_ = FingerprintSQL(sql)
	}); avg != 0 {
		t.Fatalf("FingerprintSQL allocates %v allocs/op, want 0", avg)
	}
}

// TestPlanCacheEquivalence pins the acceptance criterion: a cached plan is
// identical to a freshly built one — same rendered tree, same costs — for
// every corpus shape, both on the miss that populates it and on later hits.
func TestPlanCacheEquivalence(t *testing.T) {
	model := NewCostModel(DefaultCatalog())
	cache := NewPlanCache(model, 64, 4)
	for _, sql := range cacheCorpus {
		fresh, err := model.PlanSQL(sql)
		if err != nil {
			t.Fatalf("PlanSQL(%q): %v", sql, err)
		}
		miss, err := cache.Plan(sql)
		if err != nil {
			t.Fatalf("cache.Plan(%q): %v", sql, err)
		}
		hit, err := cache.Plan(sql)
		if err != nil {
			t.Fatal(err)
		}
		if miss != hit {
			t.Fatalf("%q: hit returned a different entry than the populating miss", sql)
		}
		if got, want := hit.Plan.String(), fresh.String(); got != want {
			t.Fatalf("%q cached plan differs:\n--- cached ---\n%s--- fresh ---\n%s", sql, got, want)
		}
		if got, want := hit.Cost, CostOf(fresh); got != want {
			t.Fatalf("%q cached cost %+v != fresh %+v", sql, got, want)
		}
	}
	// Literal-variant statements hit the entry their shape populated.
	a, _ := cache.Plan("SELECT id, name FROM customers WHERE id = 42")
	b, err := cache.Plan("SELECT id, name FROM customers WHERE id = 77")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("literal variant missed the cache")
	}
}

func TestPlanCacheErrorsNotCached(t *testing.T) {
	cache := NewPlanCache(NewCostModel(DefaultCatalog()), 16, 1)
	for i := 0; i < 2; i++ {
		if _, err := cache.Plan("SELECT FROM WHERE"); err == nil {
			t.Fatal("expected parse error")
		}
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("error statement was cached: %+v", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	// One shard, capacity 2: the least-recently-touched entry is evicted.
	cache := NewPlanCache(NewCostModel(DefaultCatalog()), 2, 1)
	q := func(i int) string { return fmt.Sprintf("SELECT c%d FROM orders", i) }
	mustPlan := func(sql string) *CachedPlan {
		t.Helper()
		e, err := cache.Plan(sql)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0 := mustPlan(q(0))
	mustPlan(q(1))
	mustPlan(q(0)) // touch 0 so 1 is now LRU
	mustPlan(q(2)) // evicts 1
	if cache.Lookup(FingerprintSQL(q(1))) != nil {
		t.Fatal("LRU entry q1 survived eviction")
	}
	if got := cache.Lookup(FingerprintSQL(q(0))); got != e0 {
		t.Fatal("recently touched q0 was evicted")
	}
	if st := cache.Stats(); st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
}

func TestPlanCacheHitZeroAlloc(t *testing.T) {
	cache := NewPlanCache(NewCostModel(DefaultCatalog()), 64, 4)
	sql := cacheCorpus[3]
	if _, err := cache.Plan(sql); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		e, err := cache.Plan(sql)
		if err != nil || e == nil {
			t.Fatal("unexpected miss")
		}
	}); avg != 0 {
		t.Fatalf("cache hit allocates %v allocs/op, want 0", avg)
	}
}

// TestPlanCacheConcurrent exercises the copy-on-write read path against
// writers; run under -race via make race.
func TestPlanCacheConcurrent(t *testing.T) {
	cache := NewPlanCache(NewCostModel(DefaultCatalog()), 8, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := fmt.Sprintf("SELECT c%d FROM orders WHERE id = %d", (w+i)%12, i)
				e, err := cache.Plan(sql)
				if err != nil || e == nil {
					t.Errorf("plan: %v", err)
					return
				}
				if e.Cost.CPUSeconds <= 0 {
					t.Error("zero-cost cached plan")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := cache.Stats(); st.Entries > 8 {
		t.Fatalf("cache overflowed its capacity: %+v", st)
	}
}

// BenchmarkPlanCacheHit prices the hot path: fingerprint + lock-free lookup.
// The acceptance criterion wants >= 10x speedup over the miss path and 0
// allocs/op here.
func BenchmarkPlanCacheHit(b *testing.B) {
	cache := NewPlanCache(NewCostModel(DefaultCatalog()), 1024, 8)
	sql := cacheCorpus[3]
	if _, err := cache.Plan(sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Plan(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheMiss prices the cold path the cache skips: a full
// parse+plan (plus fingerprint and insert) for the same statement shape.
func BenchmarkPlanCacheMiss(b *testing.B) {
	model := NewCostModel(DefaultCatalog())
	sql := cacheCorpus[3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cache := NewPlanCache(model, 1024, 8)
		if _, err := cache.Plan(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanUncached is the no-cache baseline (pure parse+plan).
func BenchmarkPlanUncached(b *testing.B) {
	model := NewCostModel(DefaultCatalog())
	sql := cacheCorpus[3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.PlanSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}
