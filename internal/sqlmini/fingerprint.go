package sqlmini

import "unicode"

// This file computes query fingerprints: a 128-bit hash of a statement's
// normalized token stream with literals stripped, so every instance of a
// repeated query shape ("SELECT ... WHERE id = ?") maps to one fingerprint
// regardless of the literal values bound in it. The fingerprint is the key of
// the plan cache (plancache.go): the cost model never looks at literal values
// when estimating predicates (Selectivity is operator-based), so two
// statements with equal fingerprints plan identically. The two literal
// positions that DO change the plan — the LIMIT count and the LOAD row count
// — are hashed verbatim, and VALUES row counts are captured structurally by
// their parenthesis/comma symbols.
//
// The scanner mirrors Lex byte for byte (same whitespace, comment, identifier,
// number, string, and symbol rules) but never materializes tokens: it streams
// normalized bytes into two independent FNV-1a accumulators. No allocation,
// no branches on input length — wire-speed for the admit path.

// Fingerprint identifies a normalized statement shape. Two lanes of
// independent 64-bit FNV-1a make accidental collision probability ~2^-128;
// the plan cache still stores and compares the full fingerprint on lookup, so
// a collision degrades to a cache miss on one of the two shapes, never to a
// wrong plan for a mismatched Lo alone.
type Fingerprint struct {
	Hi, Lo uint64
}

// Zero reports whether the fingerprint is the zero value (no statement).
func (f Fingerprint) Zero() bool { return f.Hi == 0 && f.Lo == 0 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// The second lane starts from a different offset basis (the FNV-1a basis
	// xored with an arbitrary odd constant) so the lanes decorrelate.
	fnvOffsetAlt = fnvOffset64 ^ 0x9E3779B97F4A7C15
)

// fpState streams normalized token bytes into the two hash lanes.
type fpState struct {
	h1, h2 uint64
}

//dbwlm:hotpath
func (s *fpState) writeByte(b byte) {
	s.h1 = (s.h1 ^ uint64(b)) * fnvPrime64
	s.h2 = (s.h2 ^ uint64(b)) * fnvPrime64
}

//dbwlm:hotpath
func (s *fpState) writeString(str string) {
	for i := 0; i < len(str); i++ {
		s.writeByte(str[i])
	}
}

// Token-class separators keep distinct token streams from concatenating into
// the same byte stream ("a b" vs "ab").
const (
	fpSep       = 0x1F
	fpNumber    = 0x01 // a stripped numeric literal
	fpStringLit = 0x02 // a stripped string literal
)

// upperByte uppercases ASCII letters (keywords hash case-insensitively, as
// Lex uppercases them).
//
//dbwlm:hotpath
func upperByte(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// FingerprintSQL hashes the normalized token stream of one statement. It
// performs no allocation and never fails: input the lexer would reject
// (unterminated strings, alien bytes) hashes the raw remainder instead, which
// keeps the function total — such statements will miss the plan cache and
// surface their lex error from the parser on the miss path.
//
// Normalization rules (see DESIGN.md, "Prediction at wire speed"):
//   - whitespace and -- comments are insignificant
//   - identifiers hash lowercased, keywords uppercased (matching Lex)
//   - number and string literals hash as one placeholder byte each, except a
//     number immediately following LIMIT or inside a LOAD statement (those
//     change the plan's cost, not just its bindings)
//   - symbols hash verbatim
//
//dbwlm:hotpath
func FingerprintSQL(input string) Fingerprint {
	s := fpState{h1: fnvOffset64, h2: fnvOffsetAlt}
	i, n := 0, len(input)
	// literalNumbers: hash the next number verbatim. Set after the LIMIT
	// keyword; latched on for LOAD statements.
	nextNumberVerbatim := false
	loadStmt := false
	firstToken := true
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
			continue
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
			continue
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && isIdentByte(input[i]) {
				i++
			}
			word := input[start:i]
			// Uppercase while hashing; keyword-ness only matters for the two
			// verbatim-number triggers. Identifiers hash lowercased by Lex's
			// rules, but hashing both cases through upperByte keeps the scan
			// allocation-free and stays consistent: a case-folded word maps to
			// the same bytes whether Lex would call it keyword or identifier.
			for j := 0; j < len(word); j++ {
				s.writeByte(upperByte(word[j]))
			}
			upperIs := func(kw string) bool {
				if len(word) != len(kw) {
					return false
				}
				for j := 0; j < len(kw); j++ {
					if upperByte(word[j]) != kw[j] {
						return false
					}
				}
				return true
			}
			if upperIs("LIMIT") {
				nextNumberVerbatim = true
			}
			if firstToken && upperIs("LOAD") {
				loadStmt = true
			}
		case unicode.IsDigit(c):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			if nextNumberVerbatim || loadStmt {
				s.writeString(input[start:i])
				nextNumberVerbatim = false
			} else {
				s.writeByte(fpNumber)
			}
		case c == '\'':
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				// Unterminated string: hash the tail raw and finish.
				s.writeString(input)
				return Fingerprint{Hi: s.h1, Lo: s.h2}
			}
			i++
			s.writeByte(fpStringLit)
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == '<' ||
			c == '>' || c == '.' || c == ';' || c == '+' || c == '-' || c == '/' ||
			c == '%' || c == '!':
			// Two-character operators hash as their two bytes anyway.
			s.writeByte(input[i])
			i++
		default:
			// Byte outside the dialect: hash the raw input so the result is
			// still deterministic (the parser will reject it on the miss path).
			s.writeString(input[i:])
			return Fingerprint{Hi: s.h1, Lo: s.h2}
		}
		s.writeByte(fpSep)
		firstToken = false
	}
	return Fingerprint{Hi: s.h1, Lo: s.h2}
}
