package sqlmini

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x = 10 AND name = 'bob' -- comment")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Fatalf("first token = %+v", toks[0])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF token")
	}
	// The string literal keeps its contents.
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "bob" {
			found = true
		}
	}
	if !found {
		t.Fatal("string literal not lexed")
	}
	_ = kinds
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string not rejected")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Fatal("bad byte not rejected")
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := Lex("a <= b >= c <> d != e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokSymbol {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!="}
	if len(ops) != 4 {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestParseSelectSimple(t *testing.T) {
	s := MustParse("SELECT id, name FROM customers WHERE id = 42")
	if s.Type != StmtRead {
		t.Fatalf("type = %v", s.Type)
	}
	sel := s.Select
	if sel.Table != "customers" || len(sel.Columns) != 2 || len(sel.Where) != 1 {
		t.Fatalf("parsed select = %+v", sel)
	}
	if sel.Where[0].Op != "=" || sel.Where[0].Right != "42" {
		t.Fatalf("predicate = %+v", sel.Where[0])
	}
}

func TestParseSelectJoinGroupOrderLimit(t *testing.T) {
	s := MustParse(`SELECT d.year, SUM(f.amount) FROM sales_fact f
		JOIN date_dim d ON f.date_id = d.id
		WHERE d.year = 2017 GROUP BY d.year ORDER BY d.year LIMIT 10`)
	sel := s.Select
	if len(sel.Joins) != 1 || sel.Joins[0].Table != "date_dim" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if !sel.Aggregate || len(sel.GroupBy) != 1 || len(sel.OrderBy) != 1 || sel.Limit != 10 {
		t.Fatalf("clauses = %+v", sel)
	}
	if !sel.Joins[0].On.RightIsColumn {
		t.Fatal("join predicate should be column=column")
	}
	tables := s.Tables()
	if len(tables) != 2 || tables[0] != "sales_fact" || tables[1] != "date_dim" {
		t.Fatalf("tables = %v", tables)
	}
}

func TestParseSelectDistinctAndAggregates(t *testing.T) {
	s := MustParse("SELECT DISTINCT region FROM store_dim")
	if !s.Select.Distinct {
		t.Fatal("DISTINCT not parsed")
	}
	s = MustParse("SELECT COUNT(*) FROM orders")
	if !s.Select.Aggregate {
		t.Fatal("COUNT(*) not marked aggregate")
	}
	s = MustParse("SELECT AVG(total) AS avg_total FROM orders")
	if !s.Select.Aggregate || s.Select.Columns[0] != "avg(total)" {
		t.Fatalf("aggregate column = %v", s.Select.Columns)
	}
}

func TestParsePredicateVariants(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE x BETWEEN 1 AND 5 AND y LIKE 'foo' AND z IN (1, 2, 3) AND w <> 0")
	if len(s.Select.Where) != 4 {
		t.Fatalf("where = %+v", s.Select.Where)
	}
	ops := []CompareOp{"between", "like", "in", "<>"}
	for i, p := range s.Select.Where {
		if p.Op != ops[i] {
			t.Fatalf("pred %d op = %q, want %q", i, p.Op, ops[i])
		}
	}
}

func TestParseInsertValues(t *testing.T) {
	s := MustParse("INSERT INTO orders (id, total) VALUES (1, 10), (2, 20), (3, 30)")
	if s.Type != StmtWrite || s.Insert.Rows != 3 {
		t.Fatalf("insert = %+v", s.Insert)
	}
}

func TestParseInsertSelect(t *testing.T) {
	s := MustParse("INSERT INTO archive SELECT * FROM orders WHERE d < 2010")
	if s.Insert.Select == nil || s.Insert.Select.Table != "orders" {
		t.Fatalf("insert-select = %+v", s.Insert)
	}
	tables := s.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tables)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := MustParse("UPDATE accounts SET balance = balance + 10 WHERE id = 7")
	if s.Type != StmtWrite || s.Update.Table != "accounts" || len(s.Update.Where) != 1 {
		t.Fatalf("update = %+v", s.Update)
	}
	s = MustParse("DELETE FROM orders WHERE id = 9")
	if s.Type != StmtWrite || s.Delete.Table != "orders" {
		t.Fatalf("delete = %+v", s.Delete)
	}
}

func TestParseDDL(t *testing.T) {
	s := MustParse("CREATE TABLE t (id int, name text)")
	if s.Type != StmtDDL || s.DDL.Action != "CREATE" || s.DDL.Object != "TABLE" {
		t.Fatalf("ddl = %+v", s.DDL)
	}
	s = MustParse("CREATE INDEX idx ON orders (id)")
	if s.DDL.Object != "INDEX" || s.DDL.Table != "orders" {
		t.Fatalf("index ddl = %+v", s.DDL)
	}
	s = MustParse("DROP TABLE t")
	if s.DDL.Action != "DROP" {
		t.Fatalf("drop = %+v", s.DDL)
	}
}

func TestParseLoadCall(t *testing.T) {
	s := MustParse("LOAD INTO sales_fact 1000000")
	if s.Type != StmtLoad || s.Load.Rows != 1000000 {
		t.Fatalf("load = %+v", s.Load)
	}
	s = MustParse("CALL reorg(orders)")
	if s.Type != StmtCall || s.Call.Proc != "reorg" || len(s.Call.Args) != 1 {
		t.Fatalf("call = %+v", s.Call)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"INSERT INTO t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t extra garbage here ,",
		"CREATE VIEW v",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Fatal(err)
	}
}

func TestStatementTypeString(t *testing.T) {
	for _, st := range []StatementType{StmtRead, StmtWrite, StmtDDL, StmtLoad, StmtCall} {
		if st.String() == "" || strings.HasPrefix(st.String(), "StatementType(") {
			t.Errorf("bad String for %d", int(st))
		}
	}
	if !StmtRead.IsDML() || !StmtWrite.IsDML() || StmtDDL.IsDML() {
		t.Fatal("IsDML misclassified")
	}
}

func TestCatalog(t *testing.T) {
	c := DefaultCatalog()
	if c.Table("sales_fact") == nil {
		t.Fatal("default catalog missing sales_fact")
	}
	if c.Table("nope") != nil {
		t.Fatal("unknown table found")
	}
	if len(c.Names()) < 5 {
		t.Fatalf("names = %v", c.Names())
	}
	ts := c.MustTable("accounts")
	if ts.SizeMB() <= 0 {
		t.Fatal("zero table size")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on unknown did not panic")
		}
	}()
	c.MustTable("nope")
}

func TestCostOLTPvsBISpread(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	oltp, err := m.PlanSQL("SELECT balance FROM accounts WHERE id = 42")
	if err != nil {
		t.Fatal(err)
	}
	bi, err := m.PlanSQL(`SELECT store_id, SUM(amount) FROM sales_fact
		JOIN store_dim ON sales_fact.store_id = store_dim.id
		GROUP BY store_id ORDER BY store_id`)
	if err != nil {
		t.Fatal(err)
	}
	if oltp.Root.Kind != OpIndexLookup {
		t.Fatalf("OLTP point query should use index lookup, got %v\n%s", oltp.Root.Kind, oltp)
	}
	ratioCPU := bi.TotalCPU() / oltp.TotalCPU()
	ratioIO := bi.TotalIO() / (oltp.TotalIO() + 1e-9)
	if ratioCPU < 1000 {
		t.Fatalf("BI/OLTP CPU ratio = %v, want >= 1000x\noltp=%v bi=%v", ratioCPU, oltp.TotalCPU(), bi.TotalCPU())
	}
	if ratioIO < 1000 {
		t.Fatalf("BI/OLTP IO ratio = %v, want >= 1000x", ratioIO)
	}
}

func TestScanVsIndex(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	// Range predicate on an indexed table still scans (no point predicate).
	p, err := m.PlanSQL("SELECT id FROM orders WHERE total > 100")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != OpScan {
		t.Fatalf("range query plan = %v, want Scan", p.Root.Kind)
	}
	// Unindexed fact table always scans.
	p, err = m.PlanSQL("SELECT amount FROM sales_fact WHERE store_id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != OpScan {
		t.Fatalf("fact query plan = %v, want Scan (unindexed)", p.Root.Kind)
	}
}

func TestJoinPlanShapeAndMem(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	p, err := m.PlanSQL(`SELECT f.amount FROM sales_fact f JOIN product_dim p ON f.product_id = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != OpHashJoin {
		t.Fatalf("root = %v, want HashJoin", p.Root.Kind)
	}
	if len(p.Root.Children) != 2 {
		t.Fatal("join needs two children")
	}
	// Build side must be the smaller input (product_dim).
	build := p.Root.Children[1]
	if build.Table != "product_dim" {
		t.Fatalf("build side = %q, want product_dim", build.Table)
	}
	if p.Root.StateMB <= 0 || p.PeakMem() < p.Root.EstMem {
		t.Fatalf("join state/mem not modeled: state=%v peak=%v", p.Root.StateMB, p.PeakMem())
	}
}

func TestOperatorsPostOrder(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	p, _ := m.PlanSQL("SELECT COUNT(*) FROM orders WHERE total > 5 ORDER BY id")
	ops := p.Operators()
	if len(ops) < 3 {
		t.Fatalf("ops = %v", ops)
	}
	// Root must be last in post-order.
	if ops[len(ops)-1] != p.Root {
		t.Fatal("post-order does not end at root")
	}
}

func TestPlanTotalsPositive(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	queries := []string{
		"SELECT * FROM accounts WHERE id = 1",
		"INSERT INTO orders VALUES (1, 2, 3)",
		"UPDATE accounts SET balance = 0 WHERE id = 3",
		"DELETE FROM order_items WHERE order_id = 4",
		"CREATE INDEX i ON order_items (order_id)",
		"LOAD INTO inventory_fact 500000",
		"CALL backup(full)",
		"SELECT DISTINCT region FROM store_dim ORDER BY region LIMIT 5",
	}
	for _, q := range queries {
		p, err := m.PlanSQL(q)
		if err != nil {
			t.Fatalf("PlanSQL(%q): %v", q, err)
		}
		if p.TotalCPU() <= 0 {
			t.Errorf("%q: non-positive CPU %v", q, p.TotalCPU())
		}
		if p.TotalIO() < 0 || p.PeakMem() < 0 || p.EstRows() < 0 {
			t.Errorf("%q: negative estimate", q)
		}
		if p.String() == "" {
			t.Errorf("%q: empty plan string", q)
		}
	}
}

func TestIndexBuildIsExpensive(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	idx, _ := m.PlanSQL("CREATE INDEX i ON order_items (order_id)")
	tbl, _ := m.PlanSQL("CREATE TABLE tiny (id int)")
	if idx.TotalCPU() < 100*tbl.TotalCPU() {
		t.Fatalf("index build cpu %v should dwarf create table %v", idx.TotalCPU(), tbl.TotalCPU())
	}
}

func TestSelectivityTable(t *testing.T) {
	cases := []struct {
		op   CompareOp
		want float64
	}{
		{"=", 0.05}, {"<", 0.3}, {"between", 0.3}, {"like", 0.25},
		{"in", 0.2}, {"<>", 0.9}, {"??", 0.33},
	}
	for _, c := range cases {
		got := Selectivity(Predicate{Op: c.op})
		if got != c.want {
			t.Errorf("Selectivity(%q) = %v, want %v", c.op, got, c.want)
		}
	}
	if Selectivity(Predicate{Op: "=", RightIsColumn: true}) != 1 {
		t.Fatal("join predicate selectivity should be 1")
	}
}

func TestLimitCapsRows(t *testing.T) {
	m := NewCostModel(DefaultCatalog())
	p, _ := m.PlanSQL("SELECT * FROM orders LIMIT 10")
	if p.EstRows() != 10 {
		t.Fatalf("limit rows = %v, want 10", p.EstRows())
	}
}

func TestUnknownTableUsesDefaults(t *testing.T) {
	m := NewCostModel(NewCatalog())
	p, err := m.PlanSQL("SELECT * FROM mystery")
	if err != nil {
		t.Fatal(err)
	}
	if p.EstRows() <= 0 {
		t.Fatal("default stats produced no rows")
	}
}

func TestOpKindString(t *testing.T) {
	for k := OpScan; k <= OpCall; k++ {
		if k.String() == "" {
			t.Fatalf("empty name for op %d", int(k))
		}
	}
}
