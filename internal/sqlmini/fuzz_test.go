package sqlmini

import "testing"

// FuzzParse drives arbitrary bytes through the full statement pipeline:
// lexer, parser, planner, and fingerprint. The invariants are total-function
// ones — no panic on any input, deterministic fingerprints, and every
// successfully parsed statement plans and formats without blowing up.
//
//	make fuzz-short   # 10s smoke run
//	go test -fuzz FuzzParse ./internal/sqlmini/
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT id, name FROM customers WHERE id = 42",
		"SELECT * FROM orders",
		"SELECT DISTINCT region FROM store_dim ORDER BY region LIMIT 5",
		"SELECT d.year, SUM(f.amount) FROM sales_fact f JOIN date_dim d ON f.date_id = d.id GROUP BY d.year",
		"SELECT COUNT(*) FROM orders WHERE total > 100 AND region = 'west'",
		"INSERT INTO orders (id, total) VALUES (1, 10), (2, 20)",
		"UPDATE accounts SET balance = balance + 10 WHERE id = 7",
		"DELETE FROM orders WHERE id = 9",
		"CREATE INDEX idx ON orders",
		"LOAD INTO sales_fact 50000",
		"CALL nightly_etl",
		"",
		"  -- comment only\n",
		"SELECT 'unterminated",
		"SELECT \x01\x02\xff FROM x",
		"select limit limit limit",
		"((((((((((",
		"SELECT a FROM b WHERE c = 1e309",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	model := NewCostModel(DefaultCatalog())
	f.Fuzz(func(t *testing.T, sql string) {
		// Fingerprinting is total and must be deterministic on every input.
		fp := FingerprintSQL(sql)
		if again := FingerprintSQL(sql); again != fp {
			t.Fatalf("fingerprint unstable: %x != %x", fp, again)
		}
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		// Parsed statements must survive the rest of the pipeline.
		p, err := model.BuildPlan(stmt)
		if err != nil {
			return
		}
		if s := p.String(); s == "" {
			t.Fatal("plan formatted to empty string")
		}
		cost := CostOf(p)
		if cost.CPUSeconds < 0 || cost.IOMB < 0 || cost.MemMB < 0 || cost.Rows < 0 {
			t.Fatalf("negative plan cost %+v for %q", cost, sql)
		}
		// A statement that parses must fingerprint identically to itself with
		// normalized whitespace (the lexer and the fingerprint scanner agree).
		if fp2 := FingerprintSQL(" " + sql + " "); fp2 != fp {
			t.Fatalf("whitespace changed fingerprint of %q", sql)
		}
	})
}
