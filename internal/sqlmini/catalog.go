package sqlmini

import (
	"fmt"
	"sort"
)

// TableStats holds the catalog statistics the cost model uses.
type TableStats struct {
	Name     string
	Rows     int64
	RowBytes int // average row width in bytes
	// Indexed reports whether point predicates on the table can use an index.
	Indexed bool
}

// SizeMB reports the table's data volume in megabytes.
func (t *TableStats) SizeMB() float64 {
	return float64(t.Rows) * float64(t.RowBytes) / (1 << 20)
}

// Catalog is the set of known tables and their statistics.
type Catalog struct {
	tables map[string]*TableStats
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*TableStats)}
}

// AddTable registers (or replaces) a table's statistics.
func (c *Catalog) AddTable(name string, rows int64, rowBytes int, indexed bool) *TableStats {
	t := &TableStats{Name: name, Rows: rows, RowBytes: rowBytes, Indexed: indexed}
	c.tables[name] = t
	return t
}

// Table looks up a table, or returns nil if unknown.
func (c *Catalog) Table(name string) *TableStats { return c.tables[name] }

// MustTable looks up a table or panics.
func (c *Catalog) MustTable(name string) *TableStats {
	t := c.tables[name]
	if t == nil {
		panic(fmt.Sprintf("sqlmini: unknown table %q", name))
	}
	return t
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultCatalog returns a catalog modeled on a small star-schema warehouse
// plus OLTP tables, sized so that BI queries are orders of magnitude more
// expensive than OLTP point queries — the consolidation scenario of the
// paper's introduction.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	// OLTP tables (indexed, narrow).
	c.AddTable("accounts", 1_000_000, 120, true)
	c.AddTable("orders", 5_000_000, 160, true)
	c.AddTable("order_items", 20_000_000, 80, true)
	c.AddTable("customers", 500_000, 200, true)
	// Warehouse fact and dimension tables (fact not indexed for ad-hoc scans).
	c.AddTable("sales_fact", 200_000_000, 64, false)
	c.AddTable("inventory_fact", 50_000_000, 48, false)
	c.AddTable("date_dim", 3_650, 40, true)
	c.AddTable("store_dim", 1_000, 120, true)
	c.AddTable("product_dim", 100_000, 150, true)
	return c
}
