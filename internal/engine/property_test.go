package engine

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/sim"
)

// TestWaterfillInvariants: allocations never exceed capacity, never exceed
// per-slot caps, are nonnegative, and exhaust capacity when demand allows.
func TestWaterfillInvariants(t *testing.T) {
	f := func(weightsRaw [6]uint8, capsRaw [6]uint8, capRaw uint8) bool {
		var slots []allocSlot
		shares := make([]float64, 6)
		caps := make([]float64, 6)
		var totalCap float64
		for i := 0; i < 6; i++ {
			w := float64(weightsRaw[i]%50) + 0.5
			c := float64(capsRaw[i]%40)/10 + 0.1
			slots = append(slots, allocSlot{i: i, w: w, cap: c})
			caps[i] = c
			totalCap += c
		}
		capacity := float64(capRaw%160) / 10
		// waterfill consumes slots (in-place partition), so judge shares
		// against caps captured before the call.
		waterfill(slots, capacity, shares)
		var sum float64
		for i, s := range shares {
			if s < -1e-12 {
				return false
			}
			if s > caps[i]+1e-9 {
				return false
			}
			sum += s
		}
		if sum > capacity+1e-9 {
			return false
		}
		// Work conservation: capacity is exhausted unless every slot is at
		// its cap.
		if sum < math.Min(capacity, totalCap)-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDeterminism: identical seeds and workloads produce bit-identical
// completion sequences.
func TestEngineDeterminism(t *testing.T) {
	runOnce := func() []int64 {
		s := sim.New(99)
		e := New(s, Config{Cores: 4, MemoryMB: 1024, IOMBps: 200})
		rng := s.RNG().Fork(5)
		var order []int64
		var times []sim.Time
		for i := 0; i < 30; i++ {
			delay := sim.DurationFromSeconds(rng.Float64() * 5)
			s.Schedule(delay, func() {
				e.Submit(QuerySpec{
					CPUWork:     rng.Float64() * 2,
					IOWork:      rng.Float64() * 50,
					MemMB:       rng.Float64() * 200,
					Parallelism: 1 + rng.Float64()*3,
					Locks:       []LockReq{{Key: rng.Intn(10), Exclusive: rng.Bool(0.5)}},
				}, 1+rng.Float64()*3, func(q *Query, _ Outcome) {
					order = append(order, q.ID)
					times = append(times, s.Now())
				})
			})
		}
		s.Run(sim.Time(5 * sim.Minute))
		out := append([]int64{}, order...)
		for _, tt := range times {
			out = append(out, int64(tt))
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWorkConservation: total CPU work completed equals the sum of the
// specs' demands once everything finishes, regardless of weights, throttles,
// or contention.
func TestWorkConservation(t *testing.T) {
	f := func(specsRaw [5]uint16, weightsRaw [5]uint8) bool {
		s := sim.New(7)
		e := New(s, Config{Cores: 2, MemoryMB: 2048, IOMBps: 400})
		var wantCPU float64
		done := 0
		for i := 0; i < 5; i++ {
			cpu := float64(specsRaw[i]%300)/100 + 0.01
			wantCPU += cpu
			w := float64(weightsRaw[i]%16) + 0.5
			e.Submit(QuerySpec{CPUWork: cpu, Parallelism: 1}, w, func(*Query, Outcome) { done++ })
		}
		s.Run(sim.Time(10 * sim.Minute))
		return done == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSuspendResumeWorkConservation: a DumpState suspend/resume cycle never
// loses CPU progress; a GoBack cycle loses at most one checkpoint interval.
func TestSuspendResumeWorkConservation(t *testing.T) {
	f := func(whenRaw uint8, goBack bool) bool {
		s := sim.New(11)
		e := New(s, Config{Cores: 1, IOMBps: 1e9})
		q := e.Submit(QuerySpec{CPUWork: 10, CheckpointEvery: 0.2, StateMB: 0, Parallelism: 1}, 1, nil)
		when := sim.DurationFromSeconds(float64(whenRaw%80)/10 + 0.5)
		strategy := SuspendDumpState
		if goBack {
			strategy = SuspendGoBack
		}
		var preProgress float64
		okSoFar := true
		s.Schedule(when, func() {
			if q.State() != StateRunning {
				return
			}
			preProgress = q.Progress()
			if err := e.Suspend(q.ID, strategy); err != nil {
				okSoFar = false
				return
			}
			s.Schedule(sim.Second, func() {
				if q.State() != StateSuspended {
					return
				}
				if err := e.Resume(q.ID); err != nil {
					okSoFar = false
					return
				}
				p := q.Progress()
				if goBack {
					// May lose up to one checkpoint interval.
					if p < preProgress-0.2-1e-9 {
						okSoFar = false
					}
				} else if p < preProgress-1e-9 {
					okSoFar = false
				}
			})
		})
		s.Run(sim.Time(5 * sim.Minute))
		return okSoFar && q.State() == StateDone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNoLostLocksAfterChaos: random kills and suspends never leave the lock
// table holding locks for departed queries.
func TestNoLostLocksAfterChaos(t *testing.T) {
	s := sim.New(13)
	e := New(s, Config{Cores: 4, IOMBps: 1e9})
	rng := s.RNG().Fork(3)
	var ids []int64
	for i := 0; i < 40; i++ {
		q := e.Submit(QuerySpec{
			CPUWork:     0.5 + rng.Float64()*2,
			Parallelism: 1,
			Locks: []LockReq{
				{Key: rng.Intn(8), Exclusive: true, AtProgress: 0},
				{Key: rng.Intn(8), Exclusive: true, AtProgress: 0.5},
			},
		}, 1, nil)
		ids = append(ids, q.ID)
	}
	// Chaos: kill a random third mid-flight.
	s.Schedule(500*sim.Millisecond, func() {
		for _, id := range ids {
			if rng.Bool(0.3) {
				_ = e.Kill(id)
			}
		}
	})
	s.Run(sim.Time(10 * sim.Minute))
	if e.InEngine() != 0 {
		t.Fatalf("%d queries stuck in engine", e.InEngine())
	}
	// All locks must be released.
	for key, holders := range e.locks.holders {
		if len(holders) > 0 {
			t.Fatalf("key %d still held by %v after all queries left", key, holders)
		}
	}
	if len(e.locks.waiters) != 0 {
		t.Fatalf("waiter queues not empty: %v", e.locks.waiters)
	}
}
