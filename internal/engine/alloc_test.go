package engine

import (
	"testing"

	"dbwlm/internal/sim"
)

// TestTickZeroAlloc asserts the steady-state scheduling quantum performs no
// heap allocation: scratch buffers absorb the allocation loops, the tick
// closure is cached, and the tick event itself is pooled by the simulator.
func TestTickZeroAlloc(t *testing.T) {
	s := sim.New(1)
	e := New(s, Config{Cores: 4, MemoryMB: 4096, IOMBps: 400, DisableFastForward: true})
	for i := 0; i < 6; i++ {
		e.Submit(QuerySpec{CPUWork: 1e9, IOWork: 1e9, MemMB: 64, Parallelism: 2}, 1+float64(i), nil)
	}
	// Warm up scratch buffers and the event pool.
	until := s.Now().Add(50 * sim.Millisecond)
	s.Run(until)
	allocs := testing.AllocsPerRun(100, func() {
		until = until.Add(10 * sim.Millisecond)
		s.Run(until)
	})
	if allocs != 0 {
		t.Fatalf("steady-state tick allocates: %.1f allocs per quantum", allocs)
	}
}

// TestTickZeroAllocWithBlockedAndSweeps covers the contended steady state:
// blocked queries and periodic deadlock sweeps must also run allocation-free
// once the lock table's scratch buffers are warm.
func TestTickZeroAllocWithBlockedAndSweeps(t *testing.T) {
	s := sim.New(1)
	e := New(s, Config{Cores: 4, MemoryMB: 4096, IOMBps: 400, DisableFastForward: true})
	// Holder grinds forever holding key 1; waiters block on it, so every
	// DeadlockCheckEvery-th quantum runs a (cycle-free) deadlock sweep.
	e.Submit(QuerySpec{CPUWork: 1e9, MemMB: 64, Locks: []LockReq{{Key: 1, Exclusive: true}}}, 1, nil)
	for i := 0; i < 4; i++ {
		e.Submit(QuerySpec{CPUWork: 1e9, MemMB: 64, Locks: []LockReq{{Key: 1, Exclusive: true}}}, 1, nil)
	}
	until := s.Now().Add(200 * sim.Millisecond)
	s.Run(until)
	allocs := testing.AllocsPerRun(100, func() {
		until = until.Add(50 * sim.Millisecond) // 5 quanta = ≥1 sweep
		s.Run(until)
	})
	if allocs != 0 {
		t.Fatalf("contended steady-state tick allocates: %.1f allocs per 5 quanta", allocs)
	}
}

// TestFastForwardZeroAlloc asserts the elided path itself (gap computation
// plus batched catch-up) stays allocation-free in steady state.
func TestFastForwardZeroAlloc(t *testing.T) {
	s := sim.New(1)
	e := New(s, Config{Cores: 4, MemoryMB: 4096, IOMBps: 400})
	for i := 0; i < 6; i++ {
		e.Submit(QuerySpec{CPUWork: 1e9, IOWork: 1e9, MemMB: 64, Parallelism: 2}, 1+float64(i), nil)
	}
	until := s.Now().Add(1 * sim.Second)
	s.Run(until)
	allocs := testing.AllocsPerRun(100, func() {
		until = until.Add(1 * sim.Second)
		s.Run(until)
	})
	if allocs != 0 {
		t.Fatalf("fast-forward path allocates: %.1f allocs per simulated second", allocs)
	}
}
