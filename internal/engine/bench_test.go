package engine

import (
	"testing"

	"dbwlm/internal/sim"
)

// benchmarkMix runs a closed-loop mixed workload for the given virtual
// horizon and reports simulated-queries-per-wall-second.
func benchmarkMix(b *testing.B, residents int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i) + 1)
		e := New(s, Config{Cores: 8, MemoryMB: 8192, IOMBps: 800})
		rng := s.RNG().Fork(2)
		completed := 0
		var launch func()
		launch = func() {
			if s.Now().Seconds() >= 30 {
				return
			}
			e.Submit(QuerySpec{
				CPUWork:     0.05 + rng.Float64()*0.1,
				IOWork:      1 + rng.Float64()*4,
				MemMB:       8,
				Parallelism: 1,
				Locks:       []LockReq{{Key: rng.Intn(64), Exclusive: rng.Bool(0.5)}},
			}, 1, func(*Query, Outcome) {
				completed++
				launch()
			})
		}
		for j := 0; j < residents; j++ {
			launch()
		}
		s.Run(sim.Time(30 * sim.Second))
		if i == 0 {
			b.ReportMetric(float64(completed)/30, "vqueries_per_vsec")
		}
	}
}

// BenchmarkEngineLight measures the quantum loop with a small resident set.
func BenchmarkEngineLight(b *testing.B) { benchmarkMix(b, 8) }

// BenchmarkEngineCrowded measures the quantum loop with a large resident set
// (the regime collapsed-baseline experiments run in).
func BenchmarkEngineCrowded(b *testing.B) { benchmarkMix(b, 256) }

// BenchmarkEngineSubmit measures bare submission cost.
func BenchmarkEngineSubmit(b *testing.B) {
	s := sim.New(1)
	e := New(s, Config{})
	spec := QuerySpec{CPUWork: 1e12, Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(spec, 1, nil)
	}
}
