package engine

import (
	"math"
	"testing"

	"dbwlm/internal/sim"
)

func newTestEngine(cfg Config) (*sim.Simulator, *Engine) {
	s := sim.New(1)
	return s, New(s, cfg)
}

// run advances the simulation up to the horizon (seconds of virtual time).
func run(s *sim.Simulator, seconds float64) {
	s.Run(s.Now().Add(sim.DurationFromSeconds(seconds)))
}

func TestSingleQueryCompletes(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 100})
	var done *Query
	var outcome Outcome
	e.Submit(QuerySpec{CPUWork: 2, IOWork: 50, MemMB: 100, Parallelism: 2}, 1,
		func(q *Query, oc Outcome) { done, outcome = q, oc })
	run(s, 10)
	if done == nil || outcome != OutcomeCompleted {
		t.Fatalf("query did not complete: %v %v", done, outcome)
	}
	// Ideal: max(2/2, 50/100) = 1s. Alone on the server it should take ~1s.
	elapsed := done.finishAt.Sub(done.submitAt).Seconds()
	if elapsed < 0.95 || elapsed > 1.2 {
		t.Fatalf("solo runtime = %vs, want ~1s", elapsed)
	}
	if e.InEngine() != 0 {
		t.Fatalf("engine not empty after completion")
	}
}

func TestIdealSeconds(t *testing.T) {
	_, e := newTestEngine(Config{Cores: 8, IOMBps: 400})
	spec := QuerySpec{CPUWork: 16, IOWork: 100, Parallelism: 4}
	// CPU-bound: 16/4 = 4s vs IO 100/400 = 0.25s.
	if got := e.IdealSeconds(spec); math.Abs(got-4) > 1e-9 {
		t.Fatalf("IdealSeconds = %v, want 4", got)
	}
	spec = QuerySpec{CPUWork: 0.1, IOWork: 800, Parallelism: 1}
	if got := e.IdealSeconds(spec); math.Abs(got-2) > 1e-9 {
		t.Fatalf("IdealSeconds = %v, want 2 (IO-bound)", got)
	}
}

func TestWeightedSharing(t *testing.T) {
	// Two CPU-bound queries, weights 3:1, one core: the heavy one should
	// finish roughly when it has received 3/4 of the core.
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1000})
	var doneAt [2]sim.Time
	e.Submit(QuerySpec{CPUWork: 3, Parallelism: 1}, 3, func(q *Query, _ Outcome) { doneAt[0] = q.finishAt })
	e.Submit(QuerySpec{CPUWork: 1, Parallelism: 1}, 1, func(q *Query, _ Outcome) { doneAt[1] = q.finishAt })
	run(s, 20)
	// Heavy gets 0.75 cores, light 0.25: both need 4s to finish their work.
	if doneAt[0] == 0 || doneAt[1] == 0 {
		t.Fatal("queries did not finish")
	}
	t0 := doneAt[0].Seconds()
	t1 := doneAt[1].Seconds()
	if math.Abs(t0-4) > 0.3 || math.Abs(t1-4) > 0.3 {
		t.Fatalf("finish times = %v, %v; want both ~4s under 3:1 weights", t0, t1)
	}
}

func TestParallelismCapAndWaterFilling(t *testing.T) {
	// One query capped at 1 core, another uncapped, 4 cores total: the
	// capped query gets 1 core, the other gets the remaining 3 even though
	// weights are equal.
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 1000})
	var capped, wide *Query
	e.Submit(QuerySpec{CPUWork: 2, Parallelism: 1}, 1, nil)
	e.Submit(QuerySpec{CPUWork: 6, Parallelism: 4}, 1, nil)
	for _, q := range e.Running() {
		if q.Spec.Parallelism == 1 {
			capped = q
		} else {
			wide = q
		}
	}
	run(s, 1.0)
	// After 1s: capped should have ~1 core-second done, wide ~3.
	if math.Abs(capped.CPUDone()-1) > 0.15 {
		t.Fatalf("capped query cpuDone = %v, want ~1", capped.CPUDone())
	}
	if math.Abs(wide.CPUDone()-3) > 0.3 {
		t.Fatalf("wide query cpuDone = %v, want ~3", wide.CPUDone())
	}
	_ = s
}

func TestThrottleSlowsQuery(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1000})
	q := e.Submit(QuerySpec{CPUWork: 10, Parallelism: 1}, 1, nil)
	if err := e.SetThrottle(q.ID, 0.8); err != nil {
		t.Fatal(err)
	}
	run(s, 2)
	// Throttling is a self-imposed sleep: even alone on the server, a query
	// throttled at 0.8 may use only 20% of its capacity — ~0.4 core-seconds
	// after 2 seconds.
	if math.Abs(q.CPUDone()-0.4) > 0.1 {
		t.Fatalf("throttled solo progress = %v, want ~0.4", q.CPUDone())
	}
}

func TestMemoryOvercommitSlowsEveryone(t *testing.T) {
	// Two configurations: fits in memory vs 2x overcommit. The overcommitted
	// run must be more than 2x slower (superlinear thrashing).
	elapsed := func(memPer float64) float64 {
		s, e := newTestEngine(Config{Cores: 8, MemoryMB: 1000, IOMBps: 1000})
		var last sim.Time
		n := 4
		for i := 0; i < n; i++ {
			e.Submit(QuerySpec{CPUWork: 2, MemMB: memPer, Parallelism: 2}, 1,
				func(q *Query, _ Outcome) { last = q.finishAt })
		}
		run(s, 100)
		return last.Seconds()
	}
	fit := elapsed(200)  // 800MB total: fits
	over := elapsed(500) // 2000MB total: 2x overcommit
	if over < 3*fit {
		t.Fatalf("overcommit run %vs vs fit %vs: want superlinear (>3x) slowdown", over, fit)
	}
}

func TestKillReleasesResources(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1000})
	var killedOutcome Outcome = -1
	big := e.Submit(QuerySpec{CPUWork: 100, Parallelism: 1}, 1,
		func(_ *Query, oc Outcome) { killedOutcome = oc })
	var smallDone sim.Time
	e.Submit(QuerySpec{CPUWork: 1, Parallelism: 1}, 1,
		func(q *Query, _ Outcome) { smallDone = q.finishAt })
	run(s, 0.5)
	if err := e.Kill(big.ID); err != nil {
		t.Fatal(err)
	}
	run(s, 10)
	if killedOutcome != OutcomeKilled {
		t.Fatalf("kill outcome = %v", killedOutcome)
	}
	// Small query had 0.5 core-seconds at t=0.5; after the kill it runs at
	// full speed and finishes ~t=1.0 (vs 2.0 if sharing had continued).
	if smallDone.Seconds() > 1.3 {
		t.Fatalf("small query finished at %vs; kill did not free resources", smallDone.Seconds())
	}
	if e.StatsNow().Killed != 1 {
		t.Fatal("killed counter not incremented")
	}
}

func TestKillUnknownQuery(t *testing.T) {
	_, e := newTestEngine(Config{})
	if err := e.Kill(42); err == nil {
		t.Fatal("killing unknown query should error")
	}
	if err := e.SetWeight(42, 2); err == nil {
		t.Fatal("SetWeight on unknown query should error")
	}
	if err := e.SetThrottle(42, 0.5); err == nil {
		t.Fatal("SetThrottle on unknown query should error")
	}
	if err := e.Resume(42); err == nil {
		t.Fatal("Resume on unknown query should error")
	}
	if err := e.Suspend(42, SuspendGoBack); err == nil {
		t.Fatal("Suspend on unknown query should error")
	}
}

func TestSetterValidation(t *testing.T) {
	_, e := newTestEngine(Config{})
	q := e.Submit(QuerySpec{CPUWork: 1}, 1, nil)
	if err := e.SetWeight(q.ID, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := e.SetThrottle(q.ID, 1.0); err == nil {
		t.Fatal("throttle 1.0 accepted")
	}
	if err := e.SetThrottle(q.ID, -0.1); err == nil {
		t.Fatal("negative throttle accepted")
	}
}

func TestSuspendDumpStateAndResume(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 100, MemoryMB: 4096})
	q := e.Submit(QuerySpec{CPUWork: 4, MemMB: 500, StateMB: 200, Parallelism: 1}, 1, nil)
	run(s, 2) // ~50% done
	preProgress := q.Progress()
	if err := e.Suspend(q.ID, SuspendDumpState); err != nil {
		t.Fatal(err)
	}
	if q.State() != StateSuspending {
		t.Fatalf("state = %v, want suspending (dump in flight)", q.State())
	}
	// Dump takes 200MB/100MBps = 2s.
	run(s, 1)
	if q.State() != StateSuspending {
		t.Fatalf("dump finished too early: %v", q.State())
	}
	run(s, 1.5)
	if q.State() != StateSuspended {
		t.Fatalf("state = %v, want suspended after dump", q.State())
	}
	// While suspended it consumes no memory.
	if st := e.StatsNow(); st.MemDemandMB != 0 {
		t.Fatalf("suspended query still holds memory: %v", st.MemDemandMB)
	}
	if err := e.Resume(q.ID); err != nil {
		t.Fatal(err)
	}
	// DumpState preserves CPU progress.
	if q.Progress() < preProgress-0.15 {
		t.Fatalf("resume lost progress: %v < %v", q.Progress(), preProgress)
	}
	run(s, 30)
	if q.State() != StateDone {
		t.Fatalf("query did not finish after resume: %v", q.State())
	}
}

func TestSuspendGoBackLosesWorkSinceCheckpoint(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1e9})
	// Checkpoint every 25% of progress.
	q := e.Submit(QuerySpec{CPUWork: 10, CheckpointEvery: 0.25, Parallelism: 1}, 1, nil)
	run(s, 4.2) // ~42% done; last checkpoint at 25%
	if err := e.Suspend(q.ID, SuspendGoBack); err != nil {
		t.Fatal(err)
	}
	if q.State() != StateSuspended {
		t.Fatalf("GoBack suspend should be immediate, state = %v", q.State())
	}
	if err := e.Resume(q.ID); err != nil {
		t.Fatal(err)
	}
	p := q.Progress()
	if math.Abs(p-0.25) > 0.02 {
		t.Fatalf("GoBack resume progress = %v, want 0.25 (last checkpoint)", p)
	}
	run(s, 30)
	if q.State() != StateDone {
		t.Fatalf("query did not finish: %v", q.State())
	}
}

func TestSuspendBlockedQueryRejected(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 2, IOMBps: 1e9})
	a := e.Submit(QuerySpec{CPUWork: 5, Locks: []LockReq{{Key: 1, Exclusive: true}}, Parallelism: 1}, 1, nil)
	b := e.Submit(QuerySpec{CPUWork: 5, Locks: []LockReq{{Key: 1, Exclusive: true}}, Parallelism: 1}, 1, nil)
	run(s, 0.5)
	if b.State() != StateBlocked {
		t.Fatalf("second writer not blocked: %v", b.State())
	}
	if err := e.Suspend(b.ID, SuspendGoBack); err == nil {
		t.Fatal("suspending a blocked query should error")
	}
	_ = a
}

func TestLockConflictAndRelease(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 1e9})
	var order []int64
	mk := func(cpu float64, keys ...int) *Query {
		var locks []LockReq
		for _, k := range keys {
			locks = append(locks, LockReq{Key: k, Exclusive: true, AtProgress: 0})
		}
		return e.Submit(QuerySpec{CPUWork: cpu, Parallelism: 1, Locks: locks}, 1,
			func(qq *Query, _ Outcome) { order = append(order, qq.ID) })
	}
	a := mk(1, 7)
	b := mk(1, 8, 7) // grabs 8, then blocks on 7 while holding 8
	run(s, 0.3)
	if a.State() != StateRunning || b.State() != StateBlocked {
		t.Fatalf("states = %v, %v; want running, blocked", a.State(), b.State())
	}
	cr := e.StatsNow().ConflictRatio
	if cr <= 1 {
		t.Fatalf("conflict ratio = %v, want > 1 with a blocked holder-waiter", cr)
	}
	run(s, 10)
	if len(order) != 2 || order[0] != a.ID || order[1] != b.ID {
		t.Fatalf("completion order = %v", order)
	}
	if b.BlockedTime() <= 0 {
		t.Fatal("blocked time not accounted")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 1e9})
	a := e.Submit(QuerySpec{CPUWork: 1, Parallelism: 1,
		Locks: []LockReq{{Key: 3, Exclusive: false}}}, 1, nil)
	b := e.Submit(QuerySpec{CPUWork: 1, Parallelism: 1,
		Locks: []LockReq{{Key: 3, Exclusive: false}}}, 1, nil)
	run(s, 0.3)
	if a.State() != StateRunning || b.State() != StateRunning {
		t.Fatalf("shared readers blocked each other: %v %v", a.State(), b.State())
	}
	if a.HeldLocks() != 1 || b.HeldLocks() != 1 {
		t.Fatal("shared locks not both granted")
	}
}

func TestDeadlockDetectionKillsYoungest(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 1e9})
	outcomes := map[int64]Outcome{}
	// a locks 1 then 2; b locks 2 then 1 — classic deadlock.
	a := e.Submit(QuerySpec{CPUWork: 10, Parallelism: 1, Locks: []LockReq{
		{Key: 1, Exclusive: true, AtProgress: 0},
		{Key: 2, Exclusive: true, AtProgress: 0.3},
	}}, 1, func(q *Query, oc Outcome) { outcomes[q.ID] = oc })
	b := e.Submit(QuerySpec{CPUWork: 10, Parallelism: 1, Locks: []LockReq{
		{Key: 2, Exclusive: true, AtProgress: 0},
		{Key: 1, Exclusive: true, AtProgress: 0.3},
	}}, 1, func(q *Query, oc Outcome) { outcomes[q.ID] = oc })
	run(s, 60)
	if outcomes[b.ID] != OutcomeDeadlocked {
		t.Fatalf("youngest (b) outcome = %v, want deadlocked (outcomes=%v)", outcomes[b.ID], outcomes)
	}
	if outcomes[a.ID] != OutcomeCompleted {
		t.Fatalf("a outcome = %v, want completed after victim kill", outcomes[a.ID])
	}
	if e.StatsNow().Deadlocks != 1 {
		t.Fatalf("deadlock counter = %d", e.StatsNow().Deadlocks)
	}
}

func TestRowsReturnedTracksProgress(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1e9})
	q := e.Submit(QuerySpec{CPUWork: 10, Rows: 1000, Parallelism: 1}, 1, nil)
	run(s, 5)
	rows := q.RowsReturned()
	if rows < 400 || rows > 600 {
		t.Fatalf("rows at 50%% = %d, want ~500", rows)
	}
}

func TestStatsUtilization(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 4, IOMBps: 100})
	e.Submit(QuerySpec{CPUWork: 100, IOWork: 1000, Parallelism: 4, MemMB: 100}, 1, nil)
	run(s, 1)
	st := e.StatsNow()
	if st.CPUUtilization < 0.9 {
		t.Fatalf("cpu utilization = %v, want ~1", st.CPUUtilization)
	}
	if st.IOUtilization < 0.9 {
		t.Fatalf("io utilization = %v, want ~1", st.IOUtilization)
	}
	if st.Running != 1 || st.InEngine != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MemDemandMB != 100 {
		t.Fatalf("mem demand = %v", st.MemDemandMB)
	}
}

func TestOnQuantumHook(t *testing.T) {
	s, e := newTestEngine(Config{})
	calls := 0
	e.OnQuantum = func(*Engine) { calls++ }
	e.Submit(QuerySpec{CPUWork: 0.05, Parallelism: 1}, 1, nil)
	run(s, 1)
	if calls == 0 {
		t.Fatal("OnQuantum never invoked")
	}
}

func TestEngineIdlesWhenEmpty(t *testing.T) {
	s, e := newTestEngine(Config{})
	e.Submit(QuerySpec{CPUWork: 0.01, Parallelism: 1}, 1, nil)
	run(s, 5)
	if s.Pending() != 0 {
		t.Fatalf("engine left %d events pending after going idle", s.Pending())
	}
	// Submitting again restarts the loop.
	done := false
	e.Submit(QuerySpec{CPUWork: 0.01, Parallelism: 1}, 1, func(*Query, Outcome) { done = true })
	run(s, 5)
	if !done {
		t.Fatal("engine did not restart after idle")
	}
}

func TestWeightChangeRedistributes(t *testing.T) {
	s, e := newTestEngine(Config{Cores: 1, IOMBps: 1e9})
	a := e.Submit(QuerySpec{CPUWork: 100, Parallelism: 1}, 1, nil)
	b := e.Submit(QuerySpec{CPUWork: 100, Parallelism: 1}, 1, nil)
	run(s, 1)
	// Equal weights: ~0.5 each.
	if math.Abs(a.CPUDone()-0.5) > 0.1 {
		t.Fatalf("a progress = %v", a.CPUDone())
	}
	if err := e.SetWeight(a.ID, 9); err != nil {
		t.Fatal(err)
	}
	run(s, 1)
	// Next second: a gets 0.9, b gets 0.1.
	if math.Abs(a.CPUDone()-1.4) > 0.12 {
		t.Fatalf("a progress after reweight = %v, want ~1.4", a.CPUDone())
	}
	if math.Abs(b.CPUDone()-0.6) > 0.12 {
		t.Fatalf("b progress after reweight = %v, want ~0.6", b.CPUDone())
	}
}

func TestStateStrings(t *testing.T) {
	for st := StateRunning; st <= StateDeadlocked; st++ {
		if st.String() == "" {
			t.Fatalf("empty state name %d", int(st))
		}
	}
	if !StateDone.Terminal() || StateRunning.Terminal() {
		t.Fatal("Terminal misclassified")
	}
	for _, oc := range []Outcome{OutcomeCompleted, OutcomeKilled, OutcomeDeadlocked} {
		if oc.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
	if SuspendDumpState.String() != "DumpState" || SuspendGoBack.String() != "GoBack" {
		t.Fatal("suspend strategy names wrong")
	}
}

func TestMPLKneeShape(t *testing.T) {
	// The headline phenomenon of Section 3.2: throughput rises with MPL,
	// peaks, then collapses when memory is overcommitted and lock conflicts
	// grow. We run a fixed batch at several MPLs (closed loop) and check
	// rise-then-fall shape.
	throughputAt := func(mpl int) float64 {
		s := sim.New(42)
		e := New(s, Config{Cores: 8, MemoryMB: 2000, IOMBps: 800})
		rng := s.RNG().Fork(uint64(mpl))
		const horizon = 120.0
		completed := 0
		makeSpec := func() QuerySpec {
			return QuerySpec{
				CPUWork:     0.4 + rng.Float64()*0.4,
				IOWork:      20 + rng.Float64()*20,
				MemMB:       180,
				Parallelism: 1,
				Locks: []LockReq{
					{Key: rng.Intn(40), Exclusive: true, AtProgress: 0.1},
					{Key: rng.Intn(40), Exclusive: true, AtProgress: 0.5},
				},
			}
		}
		var launch func()
		launch = func() {
			if s.Now().Seconds() >= horizon {
				return
			}
			e.Submit(makeSpec(), 1, func(_ *Query, oc Outcome) {
				completed++
				launch() // closed loop: replace the finished job
			})
		}
		for i := 0; i < mpl; i++ {
			launch()
		}
		s.Run(sim.Time(sim.DurationFromSeconds(horizon)))
		return float64(completed) / horizon
	}
	low := throughputAt(2)
	mid := throughputAt(8)
	high := throughputAt(60)
	t.Logf("throughput: mpl=2 %.2f/s, mpl=8 %.2f/s, mpl=60 %.2f/s", low, mid, high)
	if mid <= low {
		t.Fatalf("throughput should rise from MPL 2 (%v) to 8 (%v)", low, mid)
	}
	if high >= mid*0.8 {
		t.Fatalf("throughput should collapse at MPL 60: mid=%v high=%v", mid, high)
	}
}
