// Package engine implements the simulated DBMS execution engine that every
// workload-management technique in this repository controls. It models the
// phenomena the paper's techniques exist to manage: CPU/memory/IO contention,
// a thrashing knee past the optimal multiprogramming level (Section 3.2,
// refs [7][16][27]), lock conflicts and the conflict-ratio metric (Moenkeberg
// & Weikum), priority-weighted resource shares, throttling, kill, and
// suspend-and-resume with checkpoint strategies (Chandramouli et al.).
//
// The engine runs on a deterministic discrete-event simulator: execution
// advances in fixed quanta of virtual time, and within each quantum CPU and
// IO bandwidth are divided among runnable queries in proportion to their
// priority weights.
//
//dbwlm:deterministic
package engine

import (
	"fmt"

	"dbwlm/internal/sim"
)

// State is a query's lifecycle state inside the engine.
type State int

// Query states. Queueing happens outside the engine (in the workload
// manager); the engine only knows about work that was dispatched to it.
const (
	StateRunning    State = iota
	StateBlocked          // waiting for a lock
	StateSuspending       // writing suspend state to disk
	StateSuspended
	StateDone
	StateKilled
	StateDeadlocked
)

// String names the state.
func (s State) String() string {
	names := []string{"running", "blocked", "suspending", "suspended", "done", "killed", "deadlocked"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateKilled || s == StateDeadlocked
}

// Outcome reports how a query left the engine.
type Outcome int

// Outcomes.
const (
	OutcomeCompleted Outcome = iota
	OutcomeKilled
	OutcomeDeadlocked
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeKilled:
		return "killed"
	case OutcomeDeadlocked:
		return "deadlocked"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// LockReq is one lock a transactional request acquires during its run.
// AtProgress in [0, 1) states at which fraction of the request's work the
// lock is needed; locks are acquired in slice order and all held until the
// request leaves the engine (strict two-phase locking).
type LockReq struct {
	Key        int
	Exclusive  bool
	AtProgress float64
}

// QuerySpec is the engine-facing description of a request: the true work it
// must perform. The workload layer pairs it with (possibly wrong) optimizer
// estimates.
type QuerySpec struct {
	// CPUWork is the total CPU demand in core-seconds.
	CPUWork float64
	// IOWork is the total IO demand in megabytes.
	IOWork float64
	// MemMB is the working memory held for the duration of the run.
	MemMB float64
	// Parallelism is the maximum number of cores the query can use at once
	// (intra-query parallelism). Zero means 1.
	Parallelism float64
	// Rows is the number of rows the query will return.
	Rows int64
	// Locks are acquired during the run (transactions only).
	Locks []LockReq
	// StateMB is the size of checkpointable operator state; it sets the
	// DumpState suspend/resume IO cost.
	StateMB float64
	// CheckpointEvery is the progress-fraction interval between
	// asynchronous checkpoints (default 0.1 when zero). GoBack suspension
	// reverts to the latest checkpoint.
	CheckpointEvery float64
}

func (s QuerySpec) parallelism() float64 {
	if s.Parallelism <= 0 {
		return 1
	}
	return s.Parallelism
}

func (s QuerySpec) checkpointEvery() float64 {
	if s.CheckpointEvery <= 0 {
		return 0.1
	}
	return s.CheckpointEvery
}

// Query is the engine-side runtime state of one request.
type Query struct {
	ID   int64
	Spec QuerySpec
	// Weight is the priority weight used for proportional resource shares.
	Weight float64
	// Throttle is the self-imposed sleep fraction in [0, 1): the fraction
	// of each quantum the query spends sleeping (Parekh/Powley throttling).
	Throttle float64

	state State

	cpuDone float64
	ioDone  float64

	submitAt   sim.Time
	finishAt   sim.Time
	blockedFor sim.Duration // cumulative time spent lock-blocked
	suspended  sim.Duration // cumulative time spent suspended

	lastCheckpoint float64 // progress fraction of latest async checkpoint
	suspends       int

	nextLock   int   // index of the next LockReq to acquire
	held       []int // keys currently held
	waitingKey int   // key waited on when blocked (-1 otherwise)

	onFinish func(*Query, Outcome)
	// pendingResume is non-nil while a suspension dump is in flight.
	resumeProgressCPU float64
	resumeProgressIO  float64
	goBack            bool
}

// State reports the query's current lifecycle state.
func (q *Query) State() State { return q.state }

// Progress reports the fraction of total work completed, in [0, 1]. It is
// the minimum of CPU and IO completion fractions (a query must finish both).
func (q *Query) Progress() float64 {
	pc, pi := 1.0, 1.0
	if q.Spec.CPUWork > 0 {
		pc = q.cpuDone / q.Spec.CPUWork
	}
	if q.Spec.IOWork > 0 {
		pi = q.ioDone / q.Spec.IOWork
	}
	p := pc
	if pi < p {
		p = pi
	}
	if p > 1 {
		p = 1
	}
	return p
}

// RowsReturned reports rows produced so far (proportional to progress).
func (q *Query) RowsReturned() int64 {
	return int64(float64(q.Spec.Rows) * q.Progress())
}

// CPUDone and IODone report completed work, for progress estimators.
func (q *Query) CPUDone() float64 { return q.cpuDone }

// IODone reports completed IO megabytes.
func (q *Query) IODone() float64 { return q.ioDone }

// SubmittedAt reports when the query entered the engine.
func (q *Query) SubmittedAt() sim.Time { return q.submitAt }

// BlockedTime reports cumulative time spent waiting on locks.
func (q *Query) BlockedTime() sim.Duration { return q.blockedFor }

// SuspendedTime reports cumulative time spent suspended.
func (q *Query) SuspendedTime() sim.Duration { return q.suspended }

// Suspends reports how many times the query has been suspended.
func (q *Query) Suspends() int { return q.suspends }

// HeldLocks reports the number of locks currently held.
func (q *Query) HeldLocks() int { return len(q.held) }

// LastCheckpoint reports the progress fraction of the latest checkpoint.
func (q *Query) LastCheckpoint() float64 { return q.lastCheckpoint }
