package engine

import (
	"testing"
	"testing/quick"
)

func mkQuery(id int64) *Query {
	return &Query{ID: id, waitingKey: -1, state: StateRunning}
}

func TestLockTableExclusiveConflict(t *testing.T) {
	lt := newLockTable()
	a, b := mkQuery(1), mkQuery(2)
	if !lt.tryAcquire(a, 5, true) {
		t.Fatal("first exclusive acquire failed")
	}
	if lt.tryAcquire(b, 5, true) {
		t.Fatal("second exclusive acquire succeeded")
	}
	if lt.tryAcquire(b, 5, false) {
		t.Fatal("shared acquire on exclusive succeeded (duplicate wait entry ok)")
	}
	woken := lt.releaseAll(a)
	if len(woken) != 1 || woken[0].ID != b.ID {
		t.Fatalf("woken = %v", woken)
	}
	if len(b.held) == 0 {
		t.Fatal("waiter not granted on release")
	}
}

func TestLockTableSharedThenExclusiveQueue(t *testing.T) {
	lt := newLockTable()
	r1, r2, w := mkQuery(1), mkQuery(2), mkQuery(3)
	if !lt.tryAcquire(r1, 9, false) || !lt.tryAcquire(r2, 9, false) {
		t.Fatal("shared locks should coexist")
	}
	if lt.tryAcquire(w, 9, true) {
		t.Fatal("writer acquired shared-held lock")
	}
	// A third reader arriving after the writer must queue (no starvation).
	r3 := mkQuery(4)
	if lt.tryAcquire(r3, 9, false) {
		t.Fatal("reader jumped ahead of queued writer")
	}
	lt.releaseAll(r1)
	woken := lt.releaseAll(r2)
	if len(woken) != 1 || woken[0].ID != w.ID {
		t.Fatalf("writer not woken first: %v", woken)
	}
	woken = lt.releaseAll(w)
	if len(woken) != 1 || woken[0].ID != r3.ID {
		t.Fatalf("queued reader not woken after writer: %v", woken)
	}
}

func TestLockTableReentrant(t *testing.T) {
	lt := newLockTable()
	a := mkQuery(1)
	if !lt.tryAcquire(a, 2, false) {
		t.Fatal("acquire failed")
	}
	if !lt.tryAcquire(a, 2, false) {
		t.Fatal("re-entrant shared acquire failed")
	}
	// Sole holder may upgrade.
	if !lt.tryAcquire(a, 2, true) {
		t.Fatal("upgrade by sole holder failed")
	}
	if !lt.exclusive[2] {
		t.Fatal("upgrade did not set exclusive")
	}
}

func TestLockTableUpgradeBlockedWhenShared(t *testing.T) {
	lt := newLockTable()
	a, b := mkQuery(1), mkQuery(2)
	lt.tryAcquire(a, 2, false)
	lt.tryAcquire(b, 2, false)
	if lt.tryAcquire(a, 2, true) {
		t.Fatal("upgrade succeeded while another reader holds the lock")
	}
}

func TestDetectDeadlockSimpleCycle(t *testing.T) {
	lt := newLockTable()
	a, b := mkQuery(1), mkQuery(2)
	lt.tryAcquire(a, 1, true)
	lt.tryAcquire(b, 2, true)
	lt.tryAcquire(a, 2, true) // a waits for b
	lt.tryAcquire(b, 1, true) // b waits for a
	cycle := lt.detectDeadlock(map[int64]int{a.ID: 2, b.ID: 1})
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v, want both queries", cycle)
	}
}

func TestDetectNoDeadlockChain(t *testing.T) {
	lt := newLockTable()
	a, b, c := mkQuery(1), mkQuery(2), mkQuery(3)
	lt.tryAcquire(a, 1, true)
	lt.tryAcquire(b, 2, true)
	lt.tryAcquire(c, 1, true) // c waits for a
	lt.tryAcquire(c, 2, true) // (still waiting on 1; hypothetical)
	cycle := lt.detectDeadlock(map[int64]int{c.ID: 1})
	if len(cycle) != 0 {
		t.Fatalf("false deadlock: %v", cycle)
	}
	_ = b
}

func TestConflictRatioDefinition(t *testing.T) {
	a, b := mkQuery(1), mkQuery(2)
	a.held = []int{1, 2}
	b.held = []int{3}
	b.state = StateBlocked
	qs := map[int64]*Query{1: a, 2: b}
	// total = 3, active = 2 -> 1.5
	if got := conflictRatio(qs); got != 1.5 {
		t.Fatalf("conflict ratio = %v, want 1.5", got)
	}
	// No locks at all -> 1.
	if got := conflictRatio(map[int64]*Query{}); got != 1 {
		t.Fatalf("empty ratio = %v, want 1", got)
	}
	// All holders blocked -> maximal.
	a.state = StateBlocked
	if got := conflictRatio(qs); got <= 3 {
		t.Fatalf("all-blocked ratio = %v, want > total", got)
	}
}

// Property: after any sequence of acquire/release operations, a key is never
// held exclusively by more than one query, and shared/exclusive never mix.
func TestLockTableSafetyProperty(t *testing.T) {
	type op struct {
		Query     uint8
		Key       uint8
		Exclusive bool
		Release   bool
	}
	f := func(ops []op) bool {
		lt := newLockTable()
		queries := map[int64]*Query{}
		get := func(n uint8) *Query {
			id := int64(n%8) + 1
			if q, ok := queries[id]; ok {
				return q
			}
			q := mkQuery(id)
			queries[id] = q
			return q
		}
		for _, o := range ops {
			q := get(o.Query)
			if o.Release {
				lt.releaseAll(q)
				continue
			}
			lt.tryAcquire(q, int(o.Key%4), o.Exclusive)
		}
		// Invariant check.
		for key, holders := range lt.holders {
			if lt.exclusive[key] && len(holders) > 1 {
				return false
			}
			if len(holders) == 0 {
				return false // empty holder sets must be deleted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
