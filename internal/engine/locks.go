package engine

import "slices"

// lockTable implements strict two-phase locking over an integer key space
// with shared/exclusive modes, FIFO waiter queues, and wait-for-graph
// deadlock detection. It also computes the conflict ratio of Moenkeberg &
// Weikum [56]: locks held by all transactions ÷ locks held by non-blocked
// transactions — the admission metric of Table 2's third row.
type lockTable struct {
	// holders maps key -> set of holder query IDs (multiple only if shared).
	holders map[int]map[int64]bool
	// exclusive maps key -> true if the current hold is exclusive.
	exclusive map[int]bool
	// waiters maps key -> FIFO of waiting queries.
	waiters map[int][]*lockWaiter

	// Scratch buffers reused across detectDeadlock sweeps, so periodic
	// deadlock detection does not allocate in steady state.
	dIDs   []int64
	dArena []int64          // concatenated per-waiter holder lists
	dSpan  map[int64][2]int // waiter ID -> [start, end) into dArena
	dColor map[int64]int8
	dStack []int64
}

type lockWaiter struct {
	q         *Query
	exclusive bool
}

func newLockTable() *lockTable {
	return &lockTable{
		holders:   make(map[int]map[int64]bool),
		exclusive: make(map[int]bool),
		waiters:   make(map[int][]*lockWaiter),
	}
}

// reset drops every grant and waiter, keeping the maps' buckets and the
// deadlock-sweep scratch so a pooled engine's lock table is reusable without
// reallocation.
func (lt *lockTable) reset() {
	clear(lt.holders)
	clear(lt.exclusive)
	clear(lt.waiters)
}

// tryAcquire attempts to grant key to q. It returns true on success; on
// failure q is appended to the key's waiter queue.
func (lt *lockTable) tryAcquire(q *Query, key int, exclusive bool) bool {
	hs := lt.holders[key]
	if len(hs) == 0 {
		lt.grant(q, key, exclusive)
		return true
	}
	if hs[q.ID] {
		// Re-entrant: upgrade to exclusive only when sole holder.
		if exclusive && !lt.exclusive[key] {
			if len(hs) == 1 {
				lt.exclusive[key] = true
				return true
			}
			lt.wait(q, key, exclusive)
			return false
		}
		return true
	}
	if !exclusive && !lt.exclusive[key] && len(lt.waiters[key]) == 0 {
		// Shared with shared, and no writer is queued (avoid writer starvation).
		lt.grant(q, key, false)
		return true
	}
	lt.wait(q, key, exclusive)
	return false
}

func (lt *lockTable) grant(q *Query, key int, exclusive bool) {
	hs := lt.holders[key]
	if hs == nil {
		hs = make(map[int64]bool)
		lt.holders[key] = hs
	}
	hs[q.ID] = true
	if exclusive {
		lt.exclusive[key] = true
	}
	q.held = append(q.held, key)
}

func (lt *lockTable) wait(q *Query, key int, exclusive bool) {
	lt.waiters[key] = append(lt.waiters[key], &lockWaiter{q: q, exclusive: exclusive})
}

// releaseAll drops every lock held by q and removes q from the waiter queue
// of the key it was blocked on (if any). It returns the queries that were
// granted locks as a result and can now be woken.
func (lt *lockTable) releaseAll(q *Query) []*Query {
	var woken []*Query
	for _, key := range q.held {
		hs := lt.holders[key]
		delete(hs, q.ID)
		if len(hs) == 0 {
			delete(lt.holders, key)
			delete(lt.exclusive, key)
			woken = append(woken, lt.promoteWaiters(key)...)
		}
	}
	q.held = q.held[:0]
	// Remove q from the one waiter queue it can be in (it may have been
	// blocked when killed). A query waits on at most one key at a time.
	if key := q.waitingKey; key >= 0 {
		ws := lt.waiters[key]
		out := ws[:0]
		for _, w := range ws {
			if w.q.ID != q.ID {
				out = append(out, w)
			}
		}
		if len(out) == 0 {
			delete(lt.waiters, key)
		} else {
			lt.waiters[key] = out
		}
	}
	return woken
}

// promoteWaiters grants the key to the next compatible batch of waiters:
// either the first waiter if exclusive, or the leading run of shared waiters.
func (lt *lockTable) promoteWaiters(key int) []*Query {
	ws := lt.waiters[key]
	if len(ws) == 0 {
		return nil
	}
	var woken []*Query
	if ws[0].exclusive {
		w := ws[0]
		lt.waiters[key] = ws[1:]
		if len(lt.waiters[key]) == 0 {
			delete(lt.waiters, key)
		}
		lt.grant(w.q, key, true)
		woken = append(woken, w.q)
		return woken
	}
	// Grant all leading shared waiters.
	i := 0
	for i < len(ws) && !ws[i].exclusive {
		lt.grant(ws[i].q, key, false)
		woken = append(woken, ws[i].q)
		i++
	}
	lt.waiters[key] = ws[i:]
	if len(lt.waiters[key]) == 0 {
		delete(lt.waiters, key)
	}
	return woken
}

// detectDeadlock finds one cycle in the wait-for graph and returns the IDs on
// it (empty when none). blocked maps query ID -> the key it waits for. The
// adjacency structure and DFS state live in scratch buffers on the lock
// table, so repeated sweeps are allocation-free once warm.
func (lt *lockTable) detectDeadlock(blocked map[int64]int) []int64 {
	if lt.dSpan == nil {
		lt.dSpan = make(map[int64][2]int, len(blocked))
		lt.dColor = make(map[int64]int8, len(blocked))
	}
	// Build edges: waiter -> each holder of the awaited key (sorted, for a
	// deterministic visit order), flattened into one arena.
	ids := lt.dIDs[:0]
	arena := lt.dArena[:0]
	clear(lt.dSpan)
	clear(lt.dColor)
	// Order laundered below: ids is sorted before the DFS and each id's
	// arena span is sorted as it is built.
	//dbwlm:sorted
	for id, key := range blocked {
		start := len(arena)
		for holder := range lt.holders[key] {
			arena = append(arena, holder)
		}
		slices.Sort(arena[start:])
		lt.dSpan[id] = [2]int{start, len(arena)}
		ids = append(ids, id)
	}
	slices.Sort(ids)
	lt.dIDs = ids
	lt.dArena = arena

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := lt.dColor
	stack := lt.dStack[:0]
	defer func() { lt.dStack = stack[:0] }()
	var cycle []int64
	var dfs func(id int64) bool
	dfs = func(id int64) bool {
		color[id] = gray
		stack = append(stack, id)
		span := lt.dSpan[id]
		for _, next := range arena[span[0]:span[1]] {
			switch color[next] {
			case gray:
				// Found a cycle: emit the stack suffix from next.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						break
					}
				}
				return true
			case white:
				if _, isBlocked := blocked[next]; isBlocked {
					if dfs(next) {
						return true
					}
				}
			}
		}
		color[id] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for _, id := range ids {
		if color[id] == white {
			if dfs(id) {
				return cycle
			}
		}
	}
	return nil
}

// conflictRatio computes total locks held by all queries ÷ locks held by
// active (non-blocked) queries. A ratio near 1 means little contention; the
// Moenkeberg & Weikum admission controller suspends new transactions when it
// exceeds a critical threshold (~1.3).
func conflictRatio(queries map[int64]*Query) float64 {
	var total, active int
	// Commutative sums over all queries.
	//dbwlm:sorted
	for _, q := range queries {
		n := len(q.held)
		total += n
		if q.state != StateBlocked {
			active += n
		}
	}
	if active == 0 {
		if total == 0 {
			return 1
		}
		// All lock holders blocked: maximal contention.
		return float64(total) + 1
	}
	return float64(total) / float64(active)
}
