package engine

import "sort"

// lockTable implements strict two-phase locking over an integer key space
// with shared/exclusive modes, FIFO waiter queues, and wait-for-graph
// deadlock detection. It also computes the conflict ratio of Moenkeberg &
// Weikum [56]: locks held by all transactions ÷ locks held by non-blocked
// transactions — the admission metric of Table 2's third row.
type lockTable struct {
	// holders maps key -> set of holder query IDs (multiple only if shared).
	holders map[int]map[int64]bool
	// exclusive maps key -> true if the current hold is exclusive.
	exclusive map[int]bool
	// waiters maps key -> FIFO of waiting queries.
	waiters map[int][]*lockWaiter
}

type lockWaiter struct {
	q         *Query
	exclusive bool
}

func newLockTable() *lockTable {
	return &lockTable{
		holders:   make(map[int]map[int64]bool),
		exclusive: make(map[int]bool),
		waiters:   make(map[int][]*lockWaiter),
	}
}

// tryAcquire attempts to grant key to q. It returns true on success; on
// failure q is appended to the key's waiter queue.
func (lt *lockTable) tryAcquire(q *Query, key int, exclusive bool) bool {
	hs := lt.holders[key]
	if len(hs) == 0 {
		lt.grant(q, key, exclusive)
		return true
	}
	if hs[q.ID] {
		// Re-entrant: upgrade to exclusive only when sole holder.
		if exclusive && !lt.exclusive[key] {
			if len(hs) == 1 {
				lt.exclusive[key] = true
				return true
			}
			lt.wait(q, key, exclusive)
			return false
		}
		return true
	}
	if !exclusive && !lt.exclusive[key] && len(lt.waiters[key]) == 0 {
		// Shared with shared, and no writer is queued (avoid writer starvation).
		lt.grant(q, key, false)
		return true
	}
	lt.wait(q, key, exclusive)
	return false
}

func (lt *lockTable) grant(q *Query, key int, exclusive bool) {
	hs := lt.holders[key]
	if hs == nil {
		hs = make(map[int64]bool)
		lt.holders[key] = hs
	}
	hs[q.ID] = true
	if exclusive {
		lt.exclusive[key] = true
	}
	q.held = append(q.held, key)
}

func (lt *lockTable) wait(q *Query, key int, exclusive bool) {
	lt.waiters[key] = append(lt.waiters[key], &lockWaiter{q: q, exclusive: exclusive})
}

// releaseAll drops every lock held by q and removes q from the waiter queue
// of the key it was blocked on (if any). It returns the queries that were
// granted locks as a result and can now be woken.
func (lt *lockTable) releaseAll(q *Query) []*Query {
	var woken []*Query
	for _, key := range q.held {
		hs := lt.holders[key]
		delete(hs, q.ID)
		if len(hs) == 0 {
			delete(lt.holders, key)
			delete(lt.exclusive, key)
			woken = append(woken, lt.promoteWaiters(key)...)
		}
	}
	q.held = q.held[:0]
	// Remove q from the one waiter queue it can be in (it may have been
	// blocked when killed). A query waits on at most one key at a time.
	if key := q.waitingKey; key >= 0 {
		ws := lt.waiters[key]
		out := ws[:0]
		for _, w := range ws {
			if w.q.ID != q.ID {
				out = append(out, w)
			}
		}
		if len(out) == 0 {
			delete(lt.waiters, key)
		} else {
			lt.waiters[key] = out
		}
	}
	return woken
}

// promoteWaiters grants the key to the next compatible batch of waiters:
// either the first waiter if exclusive, or the leading run of shared waiters.
func (lt *lockTable) promoteWaiters(key int) []*Query {
	ws := lt.waiters[key]
	if len(ws) == 0 {
		return nil
	}
	var woken []*Query
	if ws[0].exclusive {
		w := ws[0]
		lt.waiters[key] = ws[1:]
		if len(lt.waiters[key]) == 0 {
			delete(lt.waiters, key)
		}
		lt.grant(w.q, key, true)
		woken = append(woken, w.q)
		return woken
	}
	// Grant all leading shared waiters.
	i := 0
	for i < len(ws) && !ws[i].exclusive {
		lt.grant(ws[i].q, key, false)
		woken = append(woken, ws[i].q)
		i++
	}
	lt.waiters[key] = ws[i:]
	if len(lt.waiters[key]) == 0 {
		delete(lt.waiters, key)
	}
	return woken
}

// holdersOf returns the IDs of queries holding key, sorted for determinism.
func (lt *lockTable) holdersOf(key int) []int64 {
	hs := lt.holders[key]
	out := make([]int64, 0, len(hs))
	for id := range hs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// detectDeadlock finds one cycle in the wait-for graph and returns the IDs on
// it (empty when none). blocked maps query ID -> the key it waits for.
func (lt *lockTable) detectDeadlock(blocked map[int64]int) []int64 {
	// Build edges: waiter -> each holder of the awaited key.
	adj := make(map[int64][]int64, len(blocked))
	ids := make([]int64, 0, len(blocked))
	for id, key := range blocked {
		adj[id] = lt.holdersOf(key)
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int)
	var stack []int64
	var cycle []int64
	var dfs func(id int64) bool
	dfs = func(id int64) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, next := range adj[id] {
			switch color[next] {
			case gray:
				// Found a cycle: emit the stack suffix from next.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == next {
						break
					}
				}
				return true
			case white:
				if _, isBlocked := blocked[next]; isBlocked {
					if dfs(next) {
						return true
					}
				}
			}
		}
		color[id] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for _, id := range ids {
		if color[id] == white {
			if dfs(id) {
				return cycle
			}
		}
	}
	return nil
}

// conflictRatio computes total locks held by all queries ÷ locks held by
// active (non-blocked) queries. A ratio near 1 means little contention; the
// Moenkeberg & Weikum admission controller suspends new transactions when it
// exceeds a critical threshold (~1.3).
func conflictRatio(queries map[int64]*Query) float64 {
	var total, active int
	for _, q := range queries {
		n := len(q.held)
		total += n
		if q.state != StateBlocked {
			active += n
		}
	}
	if active == 0 {
		if total == 0 {
			return 1
		}
		// All lock holders blocked: maximal contention.
		return float64(total) + 1
	}
	return float64(total) / float64(active)
}
