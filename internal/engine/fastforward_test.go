package engine

import (
	"testing"

	"dbwlm/internal/sim"
)

// ffWorkload drives a mixed closed-loop workload — locks, weights, throttles,
// memory pressure, blocked queries, deadlock sweeps — and records every
// observable output: per-query finish times, outcomes, and final stats.
type ffTrace struct {
	finishOrder []int64
	finishAt    []sim.Time
	outcomes    []Outcome
	cpuDone     []float64
	ioDone      []float64
	stats       Stats
	now         sim.Time
}

func runFFWorkload(t *testing.T, disableFF bool, seed uint64) ffTrace {
	t.Helper()
	s := sim.New(seed)
	e := New(s, Config{
		Cores: 4, MemoryMB: 2048, IOMBps: 400,
		DisableFastForward: disableFF,
	})
	rng := s.RNG().Fork(17)
	var tr ffTrace
	launched := 0
	var launch func()
	launch = func() {
		if s.Now().Seconds() >= 40 || launched >= 400 {
			return
		}
		launched++
		spec := QuerySpec{
			CPUWork:     0.2 + rng.Float64()*2,
			IOWork:      5 + rng.Float64()*40,
			MemMB:       32 + rng.Float64()*128,
			Parallelism: 1 + rng.Float64()*2,
		}
		if rng.Bool(0.6) {
			spec.Locks = []LockReq{
				{Key: rng.Intn(12), Exclusive: rng.Bool(0.7), AtProgress: rng.Float64() * 0.4},
				{Key: rng.Intn(12), Exclusive: rng.Bool(0.7), AtProgress: 0.5 + rng.Float64()*0.4},
			}
		}
		weight := 1 + rng.Float64()*3
		q := e.Submit(spec, weight, func(q *Query, oc Outcome) {
			tr.finishOrder = append(tr.finishOrder, q.ID)
			tr.finishAt = append(tr.finishAt, s.Now())
			tr.outcomes = append(tr.outcomes, oc)
			tr.cpuDone = append(tr.cpuDone, q.CPUDone())
			tr.ioDone = append(tr.ioDone, q.IODone())
			launch()
		})
		if rng.Bool(0.2) {
			_ = e.SetThrottle(q.ID, rng.Float64()*0.5)
		}
	}
	for i := 0; i < 24; i++ {
		launch()
	}
	// Mid-run external control events so fast-forward gaps end on
	// externally scheduled events too.
	s.Schedule(7*sim.Second, func() {
		for _, q := range e.Running() {
			if q.ID%5 == 0 {
				_ = e.SetWeight(q.ID, 0.5)
			}
		}
	})
	s.Schedule(13*sim.Second, func() {
		for _, q := range e.Running() {
			if q.ID%7 == 0 && q.State() == StateRunning {
				_ = e.Kill(q.ID)
			}
		}
	})
	s.Run(sim.Time(60 * sim.Second))
	tr.stats = e.StatsNow()
	tr.now = s.Now()
	return tr
}

// TestFastForwardBitIdentical asserts the tentpole contract: for the same
// seed, a run with tick elision produces bit-for-bit the same per-query
// finish times, outcomes, progress counters, and final stats as the
// quantum-by-quantum run.
func TestFastForwardBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		slow := runFFWorkload(t, true, seed)
		fast := runFFWorkload(t, false, seed)
		if len(slow.finishOrder) == 0 {
			t.Fatalf("seed %d: no queries finished; workload is vacuous", seed)
		}
		if len(slow.finishOrder) != len(fast.finishOrder) {
			t.Fatalf("seed %d: finished %d queries quantum-by-quantum vs %d fast-forwarded",
				seed, len(slow.finishOrder), len(fast.finishOrder))
		}
		for i := range slow.finishOrder {
			if slow.finishOrder[i] != fast.finishOrder[i] {
				t.Fatalf("seed %d: finish order diverges at %d: %d vs %d",
					seed, i, slow.finishOrder[i], fast.finishOrder[i])
			}
			if slow.finishAt[i] != fast.finishAt[i] {
				t.Fatalf("seed %d: query %d finish time %v vs %v",
					seed, slow.finishOrder[i], slow.finishAt[i], fast.finishAt[i])
			}
			if slow.outcomes[i] != fast.outcomes[i] {
				t.Fatalf("seed %d: query %d outcome %v vs %v",
					seed, slow.finishOrder[i], slow.outcomes[i], fast.outcomes[i])
			}
			// Bit-for-bit: float equality without tolerance is intentional.
			if slow.cpuDone[i] != fast.cpuDone[i] || slow.ioDone[i] != fast.ioDone[i] {
				t.Fatalf("seed %d: query %d progress counters diverge: cpu %v vs %v, io %v vs %v",
					seed, slow.finishOrder[i], slow.cpuDone[i], fast.cpuDone[i],
					slow.ioDone[i], fast.ioDone[i])
			}
		}
		if slow.stats != fast.stats {
			t.Fatalf("seed %d: final stats diverge:\n slow: %+v\n fast: %+v", seed, slow.stats, fast.stats)
		}
		if slow.now != fast.now {
			t.Fatalf("seed %d: final clock %v vs %v", seed, slow.now, fast.now)
		}
	}
}

// TestFastForwardElides sanity-checks that elision actually happens (the
// equivalence test alone would pass trivially if fastForward never fired):
// an uncontended long query must take far fewer ticks than quanta.
func TestFastForwardElides(t *testing.T) {
	s := sim.New(3)
	e := New(s, Config{Cores: 4, MemoryMB: 2048, IOMBps: 400})
	done := false
	e.Submit(QuerySpec{CPUWork: 20, IOWork: 100, MemMB: 64, Parallelism: 2}, 1,
		func(*Query, Outcome) { done = true })
	fired := s.RunAll(1 << 20)
	if !done {
		t.Fatal("query never finished")
	}
	// Solo runtime is 10s of virtual time = 1000 quanta; with elision the
	// whole run should need only a handful of events.
	if fired > 100 {
		t.Fatalf("fast-forward ineffective: %d events fired for a 1000-quantum run", fired)
	}
}

// TestFastForwardCoarseHook verifies the coarse-observation contract: a hook
// with OnQuantumCoarse set still observes the run (at gap boundaries) while
// keeping elision active, and a hook without it pins execution to
// quantum-by-quantum ticks.
func TestFastForwardCoarseHook(t *testing.T) {
	run := func(coarse bool) (hookCalls, fired int) {
		s := sim.New(3)
		e := New(s, Config{Cores: 4, MemoryMB: 2048, IOMBps: 400})
		e.OnQuantum = func(*Engine) { hookCalls++ }
		e.OnQuantumCoarse = coarse
		e.Submit(QuerySpec{CPUWork: 20, IOWork: 100, MemMB: 64, Parallelism: 2}, 1, nil)
		fired = s.RunAll(1 << 20)
		return
	}
	fineCalls, fineFired := run(false)
	coarseCalls, coarseFired := run(true)
	if fineCalls < 1000 {
		t.Fatalf("per-quantum hook suppressed elision should see ~1000 calls, got %d", fineCalls)
	}
	if coarseCalls >= fineCalls/10 {
		t.Fatalf("coarse hook should be called at gap boundaries only: %d vs %d fine", coarseCalls, fineCalls)
	}
	if coarseFired >= fineFired/10 {
		t.Fatalf("coarse hook should keep elision active: %d vs %d events", coarseFired, fineFired)
	}
}
