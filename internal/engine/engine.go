package engine

import (
	"fmt"
	"math"
	"sort"

	"dbwlm/internal/sim"
)

// Config sets the simulated server's capacity and behaviour.
type Config struct {
	// Cores is the total CPU capacity in core-seconds per second.
	Cores float64
	// MemoryMB is the memory available to query working sets.
	MemoryMB float64
	// IOMBps is the aggregate disk bandwidth in MB/s.
	IOMBps float64
	// Quantum is the scheduling quantum (default 10ms).
	Quantum sim.Duration
	// OvercommitExponent shapes the slowdown when demanded working memory
	// exceeds MemoryMB: every query's progress is divided by
	// (demand/MemoryMB)^OvercommitExponent. Default 2 — a superlinear
	// penalty that produces the classic thrashing knee.
	OvercommitExponent float64
	// DeadlockCheckEvery is the number of quanta between wait-for-graph
	// deadlock sweeps (default 5).
	DeadlockCheckEvery int
	// DisableFastForward turns off tick elision: every quantum is executed
	// by the full scheduling loop. Fast-forward is on by default because it
	// is bit-for-bit equivalent; disabling it is useful for debugging and
	// for the equivalence tests themselves.
	DisableFastForward bool
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 8
	}
	if c.MemoryMB <= 0 {
		c.MemoryMB = 4096
	}
	if c.IOMBps <= 0 {
		c.IOMBps = 400
	}
	if c.Quantum <= 0 {
		c.Quantum = 10 * sim.Millisecond
	}
	if c.OvercommitExponent <= 0 {
		c.OvercommitExponent = 2
	}
	if c.DeadlockCheckEvery <= 0 {
		c.DeadlockCheckEvery = 5
	}
	return c
}

// DefaultConfig is an 8-core, 4GB, 400MB/s server.
func DefaultConfig() Config { return Config{}.withDefaults() }

// SuspendStrategy selects how a query's state is preserved across suspension
// (Chandramouli et al., Section 4.2.3 of the paper).
type SuspendStrategy int

// Suspend strategies.
const (
	// SuspendDumpState writes all operator state at suspend time: expensive
	// suspend (StateMB of IO), cheap resume, no work lost.
	SuspendDumpState SuspendStrategy = iota
	// SuspendGoBack writes only control state: near-free suspend, but
	// execution reverts to the latest asynchronous checkpoint at resume.
	SuspendGoBack
)

// String names the strategy.
func (s SuspendStrategy) String() string {
	if s == SuspendDumpState {
		return "DumpState"
	}
	return "GoBack"
}

// Stats is an instantaneous snapshot of engine load, the raw material for
// every monitor-metric-driven controller.
type Stats struct {
	Running        int // queries making progress
	Blocked        int // queries waiting on locks
	Suspended      int
	InEngine       int     // total non-terminal queries
	CPUUtilization float64 // fraction of cores busy last quantum
	IOUtilization  float64
	MemDemandMB    float64 // working memory demanded by resident queries
	MemPressure    float64 // demand / capacity
	ConflictRatio  float64
	Completed      int64
	Killed         int64
	Deadlocks      int64
}

// Engine is the simulated DBMS server.
type Engine struct {
	cfg Config
	sim *sim.Simulator

	queries map[int64]*Query
	// live holds queries in submission (= ascending-ID) order; terminal
	// entries are skipped during iteration and compacted lazily, avoiding
	// both a per-quantum sort and per-quantum map lookups.
	live   []*Query
	locks  *lockTable
	nextID int64

	ticking     bool
	quantumN    int
	lastCPUUsed float64
	lastIOUsed  float64

	// tickFn caches the tick method value so rescheduling the quantum loop
	// does not allocate a closure per quantum.
	tickFn func()

	// Scratch buffers reused across quanta to avoid per-tick allocation
	// (the tick is the simulator's hot loop).
	scratchAlive    []*Query
	scratchRunnable []*Query
	scratchCPU      []float64
	scratchIO       []float64
	scratchSlots    []allocSlot
	scratchBlocked  map[int64]int
	scratchFF       []ffRec

	completed int64
	killed    int64
	deadlocks int64

	// freeQ recycles Query objects across Reset cycles: a pooled engine
	// replaying one trace after another (trace.ReplayMany) reuses the
	// previous run's Query structs instead of allocating one per Submit.
	// retired parks terminal queries evicted from the live slice until the
	// next Reset moves them onto freeQ — they cannot go straight to freeQ
	// because outstanding *Query handles stay readable until Reset.
	freeQ   []*Query
	retired []*Query

	// OnQuantum, when non-nil, is invoked at the end of every quantum with
	// the engine; controllers that need per-quantum observation (PI
	// throttling, indicator collection) hook here. Setting it disables tick
	// elision unless OnQuantumCoarse is also set.
	OnQuantum func(*Engine)
	// OnQuantumCoarse declares that the OnQuantum hook tolerates coarse
	// observation: it samples aggregate state rather than integrating a
	// per-quantum signal, so during a fast-forward gap it is invoked only
	// at the full quantum that ends the gap, not at every elided quantum.
	// Hooks that accumulate per-quantum terms (PI controllers, indicator
	// integrators) must leave it false, which pins the engine to
	// quantum-by-quantum execution.
	OnQuantumCoarse bool
}

// New returns an engine over the simulator with the given configuration.
func New(s *sim.Simulator, cfg Config) *Engine {
	e := &Engine{
		cfg:            cfg.withDefaults(),
		sim:            s,
		queries:        make(map[int64]*Query),
		locks:          newLockTable(),
		scratchBlocked: make(map[int64]int),
	}
	e.tickFn = e.tick
	return e
}

// Reset returns the engine to the state of a fresh New over the same
// simulator with a new configuration, retaining every internal buffer: the
// query map's buckets, the live slice, the lock table, the per-quantum
// scratch, and — through a free list — the Query objects themselves, so a
// pooled engine reused across many runs (trace.ReplayMany) allocates almost
// nothing after its first. Resident queries are discarded without firing
// their onFinish callbacks and every outstanding *Query handle is
// invalidated (its object may be recycled by a later Submit). Callers must
// Reset the shared simulator first so no stale engine event can fire. A
// reset engine's next run is bit-for-bit identical to a run on a freshly
// constructed one, which TestResetMatchesFresh pins.
func (e *Engine) Reset(cfg Config) {
	e.cfg = cfg.withDefaults()
	recycle := func(q *Query) {
		if len(e.freeQ) < 4096 { // bound the pool; beyond it the GC takes over
			held := q.held[:0]
			*q = Query{held: held}
			e.freeQ = append(e.freeQ, q)
		}
	}
	for i, q := range e.live {
		recycle(q)
		e.live[i] = nil
	}
	e.live = e.live[:0]
	for i, q := range e.retired {
		recycle(q)
		e.retired[i] = nil
	}
	e.retired = e.retired[:0]
	clear(e.queries)
	e.locks.reset()
	e.nextID = 0
	e.ticking = false
	e.quantumN = 0
	e.lastCPUUsed, e.lastIOUsed = 0, 0
	e.completed, e.killed, e.deadlocks = 0, 0, 0
	e.OnQuantum = nil
	e.OnQuantumCoarse = false
}

// Sim returns the engine's simulator.
func (e *Engine) Sim() *sim.Simulator { return e.sim }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now reports current virtual time.
func (e *Engine) Now() sim.Time { return e.sim.Now() }

// IdealSeconds reports the stand-alone execution time of spec on an idle
// server — the denominator-free "expected execution time" of the paper's
// execution-velocity metric (Section 2.1).
func (e *Engine) IdealSeconds(spec QuerySpec) float64 {
	cpu := spec.CPUWork / math.Min(e.cfg.Cores, spec.parallelism())
	io := spec.IOWork / e.cfg.IOMBps
	return math.Max(cpu, io)
}

// Submit dispatches a query for immediate execution. onFinish fires when the
// query completes, is killed, or dies in a deadlock. The returned Query is
// the engine-side handle used by execution controls.
func (e *Engine) Submit(spec QuerySpec, weight float64, onFinish func(*Query, Outcome)) *Query {
	if weight <= 0 {
		weight = 1
	}
	e.nextID++
	var q *Query
	if n := len(e.freeQ); n > 0 {
		q = e.freeQ[n-1]
		e.freeQ[n-1] = nil
		e.freeQ = e.freeQ[:n-1]
	} else {
		q = &Query{}
	}
	held := q.held[:0]
	*q = Query{
		ID:         e.nextID,
		Spec:       spec,
		Weight:     weight,
		state:      StateRunning,
		submitAt:   e.sim.Now(),
		waitingKey: -1,
		held:       held,
		onFinish:   onFinish,
	}
	e.queries[q.ID] = q
	e.live = append(e.live, q)
	e.ensureTicking()
	return q
}

// alive returns resident (non-terminal) queries in ascending-ID order,
// compacting the live slice when it accumulates too many terminal entries.
// The returned slice is scratch storage valid until the next call.
func (e *Engine) alive() []*Query {
	if len(e.live) > 2*len(e.queries)+16 {
		kept := e.live[:0]
		for _, q := range e.live {
			if !q.state.Terminal() {
				kept = append(kept, q)
			} else if len(e.retired) < 4096 { // park for recycling at Reset
				e.retired = append(e.retired, q)
			}
		}
		for i := len(kept); i < len(e.live); i++ {
			e.live[i] = nil
		}
		e.live = kept
	}
	out := e.scratchAlive[:0]
	for _, q := range e.live {
		if !q.state.Terminal() {
			out = append(out, q)
		}
	}
	e.scratchAlive = out
	return out
}

// Get returns the engine-side handle for id, or nil if the query has left
// the engine.
func (e *Engine) Get(id int64) *Query { return e.queries[id] }

// Running returns all non-terminal queries, sorted by ID for determinism.
func (e *Engine) Running() []*Query {
	out := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InEngine reports the number of resident (non-terminal) queries.
func (e *Engine) InEngine() int { return len(e.queries) }

// SetWeight changes a query's priority weight (reprioritization /
// resource reallocation effector).
func (e *Engine) SetWeight(id int64, w float64) error {
	q := e.queries[id]
	if q == nil {
		return fmt.Errorf("engine: no such query %d", id)
	}
	if w <= 0 {
		return fmt.Errorf("engine: weight must be positive, got %v", w)
	}
	q.Weight = w
	return nil
}

// SetThrottle sets a query's sleep fraction in [0, 1) (throttling effector).
func (e *Engine) SetThrottle(id int64, frac float64) error {
	q := e.queries[id]
	if q == nil {
		return fmt.Errorf("engine: no such query %d", id)
	}
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("engine: throttle fraction %v out of [0,1)", frac)
	}
	q.Throttle = frac
	return nil
}

// Kill terminates a running query, releasing its resources immediately
// (query-cancellation effector).
func (e *Engine) Kill(id int64) error {
	q := e.queries[id]
	if q == nil {
		return fmt.Errorf("engine: no such query %d", id)
	}
	e.finish(q, StateKilled, OutcomeKilled)
	return nil
}

// Suspend takes a query off the server using the given strategy. With
// DumpState the query spends StateMB/IOMBps of time writing its state before
// its resources are released; with GoBack release is immediate but progress
// reverts to the latest checkpoint. Suspending a blocked or suspending query
// is an error (locks would be held indefinitely; suspend targets analytical
// queries, as in the paper).
func (e *Engine) Suspend(id int64, strategy SuspendStrategy) error {
	q := e.queries[id]
	if q == nil {
		return fmt.Errorf("engine: no such query %d", id)
	}
	if q.state != StateRunning {
		return fmt.Errorf("engine: cannot suspend query %d in state %v", id, q.state)
	}
	q.suspends++
	switch strategy {
	case SuspendGoBack:
		q.goBack = true
		e.park(q)
	case SuspendDumpState:
		q.goBack = false
		dump := sim.DurationFromSeconds(q.Spec.StateMB / e.cfg.IOMBps)
		if dump <= 0 {
			e.park(q)
			return nil
		}
		q.state = StateSuspending
		e.sim.Schedule(dump, func() {
			if q.state == StateSuspending {
				e.park(q)
			}
		})
	default:
		return fmt.Errorf("engine: unknown suspend strategy %v", strategy)
	}
	return nil
}

// park completes a suspension: resources are released and the query becomes
// dormant. Held locks are released (suspended queries must not block others).
func (e *Engine) park(q *Query) {
	if q.goBack {
		// Revert to the latest checkpoint.
		cp := q.lastCheckpoint
		if q.Spec.CPUWork > 0 {
			q.resumeProgressCPU = cp * q.Spec.CPUWork
		}
		if q.Spec.IOWork > 0 {
			q.resumeProgressIO = cp * q.Spec.IOWork
		}
	} else {
		q.resumeProgressCPU = q.cpuDone
		q.resumeProgressIO = q.ioDone
	}
	q.state = StateSuspended
	q.waitingKey = -1
	for _, w := range e.locks.releaseAll(q) {
		e.wake(w)
	}
}

// Resume puts a suspended query back on the server. With DumpState the saved
// state is read back first (StateMB of extra IO charged to the query); with
// GoBack the work since the last checkpoint is simply re-executed.
func (e *Engine) Resume(id int64) error {
	q := e.queries[id]
	if q == nil {
		return fmt.Errorf("engine: no such query %d", id)
	}
	if q.state != StateSuspended {
		return fmt.Errorf("engine: cannot resume query %d in state %v", id, q.state)
	}
	q.cpuDone = q.resumeProgressCPU
	q.ioDone = q.resumeProgressIO
	if !q.goBack && q.Spec.StateMB > 0 {
		// Reading the dump back is extra IO work: subtract from ioDone,
		// clamping at zero (the engine re-does it as part of the run).
		q.ioDone = math.Max(0, q.ioDone-q.Spec.StateMB)
	}
	q.state = StateRunning
	// Re-acquisition: locks below the already-passed progress points must be
	// re-acquired as execution replays; reset nextLock to match progress.
	q.nextLock = 0
	e.ensureTicking()
	return nil
}

// finish removes q from the engine with the given terminal state.
func (e *Engine) finish(q *Query, st State, oc Outcome) {
	q.state = st
	q.finishAt = e.sim.Now()
	for _, w := range e.locks.releaseAll(q) {
		e.wake(w)
	}
	delete(e.queries, q.ID)
	switch oc {
	case OutcomeCompleted:
		e.completed++
	case OutcomeKilled:
		e.killed++
	case OutcomeDeadlocked:
		e.deadlocks++
	}
	if q.onFinish != nil {
		cb := q.onFinish
		// Fire the callback after the current quantum's bookkeeping, so
		// callbacks observe a consistent engine. Detached: the event is
		// pooled by the simulator once it fires.
		e.sim.ScheduleDetached(0, func() { cb(q, oc) })
	}
}

func (e *Engine) wake(q *Query) {
	if q.state == StateBlocked {
		q.state = StateRunning
		q.waitingKey = -1
	}
}

// ensureTicking starts the quantum loop if it is not running.
func (e *Engine) ensureTicking() {
	if e.ticking {
		return
	}
	e.ticking = true
	e.sim.ScheduleDetached(e.cfg.Quantum, e.tickFn)
}

// tick advances every resident query by one quantum, then fast-forwards
// across any run of provably identical quanta (see fastForward).
func (e *Engine) tick() {
	if len(e.queries) == 0 {
		e.ticking = false
		return
	}
	e.quantumN++
	dt := e.cfg.Quantum.Seconds()

	// Phase 1: lock acquisition for running queries that have reached their
	// next lock point.
	alive := e.alive()
	for _, q := range alive {
		if q.state != StateRunning {
			continue
		}
		e.acquireDueLocks(q)
	}

	// Phase 2: memory pressure over resident (running + blocked +
	// suspending) queries. Iterating the live slice (ascending-ID order)
	// rather than the query map keeps the floating-point sum order — and
	// therefore the slowdown — deterministic.
	var memDemand float64
	for _, q := range alive {
		if q.state == StateRunning || q.state == StateBlocked || q.state == StateSuspending {
			memDemand += q.Spec.MemMB
		}
	}
	slowdown := 1.0
	if memDemand > e.cfg.MemoryMB {
		slowdown = math.Pow(memDemand/e.cfg.MemoryMB, e.cfg.OvercommitExponent)
	}

	// Phase 3: CPU and IO allocation among runnable queries.
	runnable := e.scratchRunnable[:0]
	for _, q := range alive {
		if q.state == StateRunning {
			runnable = append(runnable, q)
		}
	}
	e.scratchRunnable = runnable
	cpuShares := e.allocateCPU(runnable)
	ioShares := e.allocateIO(runnable)

	// Phase 4: advance progress and account blocked time.
	eff := dt / slowdown
	var cpuUsed, ioUsed float64
	for i, q := range runnable {
		dc := cpuShares[i] * eff
		di := ioShares[i] * eff
		if q.Spec.CPUWork > 0 {
			q.cpuDone = math.Min(q.Spec.CPUWork, q.cpuDone+dc)
		}
		if q.Spec.IOWork > 0 {
			q.ioDone = math.Min(q.Spec.IOWork, q.ioDone+di)
		}
		cpuUsed += cpuShares[i]
		ioUsed += ioShares[i]
		// Asynchronous checkpointing.
		every := q.Spec.checkpointEvery()
		if p := q.Progress(); p >= q.lastCheckpoint+every {
			q.lastCheckpoint = math.Floor(p/every) * every
		}
	}
	blockedN := 0
	for _, q := range alive {
		switch q.state {
		case StateBlocked:
			q.blockedFor += e.cfg.Quantum
			blockedN++
		case StateSuspended:
			q.suspended += e.cfg.Quantum
		}
	}
	e.lastCPUUsed = cpuUsed
	e.lastIOUsed = ioUsed

	// Phase 5: completions.
	finished := 0
	for _, q := range alive {
		if q.state != StateRunning {
			continue
		}
		cpuOK := q.Spec.CPUWork <= 0 || q.cpuDone >= q.Spec.CPUWork-1e-12
		ioOK := q.Spec.IOWork <= 0 || q.ioDone >= q.Spec.IOWork-1e-12
		if cpuOK && ioOK {
			e.finish(q, StateDone, OutcomeCompleted)
			finished++
		}
	}

	// Phase 6: periodic deadlock detection; the youngest query in a cycle
	// is chosen as the victim. A sweep with no blocked queries is a no-op
	// and is skipped outright.
	if e.quantumN%e.cfg.DeadlockCheckEvery == 0 && blockedN > 0 {
		finished += e.resolveDeadlocks()
	}

	if e.OnQuantum != nil {
		// Guard the coarse-observation contract: if the hook finished or
		// submitted queries this quantum, the shares just computed are
		// stale and the upcoming quanta are not elidable.
		pre := e.completed + e.killed + e.deadlocks + e.nextID
		e.OnQuantum(e)
		if post := e.completed + e.killed + e.deadlocks + e.nextID; post != pre {
			finished++
		}
	}

	if len(e.queries) == 0 {
		e.ticking = false
		return
	}

	// Fast-forward: when this quantum changed no scheduling input (no query
	// finished and no deadlock victim was killed — share allocation already
	// reflects any phase-1 lock transition), every following quantum repeats
	// the exact same per-query increments until the next "interesting"
	// point. Apply those increments here and skip the intermediate ticks.
	gap := sim.Duration(0)
	if finished == 0 && !e.cfg.DisableFastForward &&
		(e.OnQuantum == nil || e.OnQuantumCoarse) {
		gap = e.fastForward(runnable, cpuShares, ioShares, eff, alive, blockedN)
	}
	e.sim.ScheduleDetached(e.cfg.Quantum+gap, e.tickFn)
}

// ffRec is the fast-forward working record for one runnable query: running
// copies of its progress counters, its per-quantum increments, and the
// boundaries at which the shared allocation would stop being valid.
type ffRec struct {
	q      *Query
	cpu    float64 // running copy of cpuDone
	io     float64 // running copy of ioDone
	dc     float64 // CPU progress per quantum at current shares
	di     float64 // IO progress per quantum at current shares
	nc     float64 // candidate cpu after the next quantum
	ni     float64 // candidate io after the next quantum
	cpuLim float64 // stop before cpu reaches this (+Inf: cannot bound)
	ioLim  float64
	lockAt float64 // progress of the next lock acquisition (+Inf: none)
}

// fastForward computes how many upcoming quanta are provably identical to
// the one just executed and applies their state updates in one batch,
// bit-for-bit equivalent to running them one by one. The gap ends at the
// earliest "interesting" point: a query approaching completion (or
// exhausting one resource, which shifts the shares), a lock AtProgress
// point, a deadlock sweep (only relevant while queries are blocked), the
// next pending simulator event, or the driver's Run horizon. It returns the
// extra virtual time to skip before the next full quantum.
func (e *Engine) fastForward(runnable []*Query, cpuShares, ioShares []float64, eff float64, alive []*Query, blockedN int) sim.Duration {
	const absCap = 1 << 16 // safety valve when nothing bounds the gap
	q := int64(e.cfg.Quantum)
	now := e.sim.Now()

	gapMax := int64(absCap)
	if t, ok := e.sim.NextEventAt(); ok {
		// Elided quanta must precede the event strictly: pending events
		// were scheduled before this tick, so at a shared timestamp they
		// fire before the tick would.
		if t <= now {
			return 0
		}
		if g := (int64(t-now) - 1) / q; g < gapMax {
			gapMax = g
		}
	}
	if h, ok := e.sim.Horizon(); ok {
		// The driver stops at h; quanta at exactly h still fire.
		if h <= now {
			return 0
		}
		if g := int64(h-now) / q; g < gapMax {
			gapMax = g
		}
	}
	if blockedN > 0 {
		// The next deadlock sweep may kill a victim; stop just before it.
		d := int64(e.cfg.DeadlockCheckEvery)
		if g := d - int64(e.quantumN)%d - 1; g < gapMax {
			gapMax = g
		}
	}
	if gapMax <= 0 {
		return 0
	}

	recs := e.scratchFF[:0]
	for i, qq := range runnable {
		r := ffRec{
			q:      qq,
			cpu:    qq.cpuDone,
			io:     qq.ioDone,
			dc:     cpuShares[i] * eff,
			di:     ioShares[i] * eff,
			cpuLim: math.Inf(1),
			ioLim:  math.Inf(1),
			lockAt: math.Inf(1),
		}
		if w := qq.Spec.CPUWork; w > 0 && r.dc > 0 {
			if r.cpu < w-1e-12 {
				// Completion-epsilon boundary (also precedes the exact
				// clamp that would change slot membership).
				r.cpuLim = w - 1e-12
			} else {
				// Already past the completion epsilon but alive on IO:
				// the remaining boundary is the exact clamp at w.
				r.cpuLim = w
			}
		}
		if w := qq.Spec.IOWork; w > 0 && r.di > 0 {
			if r.io < w-1e-12 {
				r.ioLim = w - 1e-12
			} else {
				r.ioLim = w
			}
		}
		if qq.nextLock < len(qq.Spec.Locks) {
			r.lockAt = qq.Spec.Locks[qq.nextLock].AtProgress
		}
		recs = append(recs, r)
	}
	e.scratchFF = recs

	gap := int64(0)
	for gap < gapMax {
		boundary := false
		for i := range recs {
			r := &recs[i]
			if !math.IsInf(r.lockAt, 1) {
				// Would the next full quantum's phase 1 find a due lock?
				// Replicates Query.Progress bit for bit.
				pc, pi := 1.0, 1.0
				if w := r.q.Spec.CPUWork; w > 0 {
					pc = r.cpu / w
				}
				if w := r.q.Spec.IOWork; w > 0 {
					pi = r.io / w
				}
				p := pc
				if pi < p {
					p = pi
				}
				if p > 1 {
					p = 1
				}
				if r.lockAt <= p {
					boundary = true
					break
				}
			}
			r.nc = r.cpu + r.dc
			r.ni = r.io + r.di
			if r.nc >= r.cpuLim || r.ni >= r.ioLim {
				boundary = true
				break
			}
		}
		if boundary {
			break
		}
		for i := range recs {
			recs[i].cpu = recs[i].nc
			recs[i].io = recs[i].ni
		}
		gap++
	}
	if gap == 0 {
		return 0
	}

	// Commit the batched updates. Values stayed strictly below every
	// CPUWork/IOWork limit, so the per-quantum min() clamps were no-ops.
	for i := range recs {
		r := &recs[i]
		qq := r.q
		if qq.Spec.CPUWork > 0 {
			qq.cpuDone = r.cpu
		}
		if qq.Spec.IOWork > 0 {
			qq.ioDone = r.io
		}
		// Checkpoint catch-up: applying the rule once at the final
		// progress yields the same lastCheckpoint as applying it every
		// quantum, because progress was monotonic across the gap.
		every := qq.Spec.checkpointEvery()
		if p := qq.Progress(); p >= qq.lastCheckpoint+every {
			qq.lastCheckpoint = math.Floor(p/every) * every
		}
	}
	skipped := sim.Duration(gap) * e.cfg.Quantum
	for _, qq := range alive {
		switch qq.state {
		case StateBlocked:
			qq.blockedFor += skipped
		case StateSuspended:
			qq.suspended += skipped
		}
	}
	e.quantumN += int(gap)
	return skipped
}

// acquireDueLocks acquires, in order, every lock whose AtProgress point has
// been reached. The query blocks on the first one that conflicts.
func (e *Engine) acquireDueLocks(q *Query) {
	p := q.Progress()
	for q.nextLock < len(q.Spec.Locks) {
		lr := q.Spec.Locks[q.nextLock]
		if lr.AtProgress > p {
			return
		}
		// Skip locks already held (after resume replay).
		if holds(q, lr.Key) {
			q.nextLock++
			continue
		}
		if e.locks.tryAcquire(q, lr.Key, lr.Exclusive) {
			q.nextLock++
			continue
		}
		q.state = StateBlocked
		q.waitingKey = lr.Key
		q.nextLock++ // the waiter queue grant will add it to held
		return
	}
}

func holds(q *Query, key int) bool {
	for _, k := range q.held {
		if k == key {
			return true
		}
	}
	return false
}

// resolveDeadlocks kills the youngest member of each wait-for cycle. It
// returns the number of victims killed.
func (e *Engine) resolveDeadlocks() int {
	kills := 0
	for {
		blocked := e.scratchBlocked
		clear(blocked)
		for _, q := range e.live {
			if q.state == StateBlocked {
				blocked[q.ID] = q.waitingKey
			}
		}
		if len(blocked) == 0 {
			return kills
		}
		cycle := e.locks.detectDeadlock(blocked)
		if len(cycle) == 0 {
			return kills
		}
		victim := cycle[0]
		for _, id := range cycle {
			if id > victim {
				victim = id
			}
		}
		q := e.queries[victim]
		if q == nil {
			return kills
		}
		e.finish(q, StateDeadlocked, OutcomeDeadlocked)
		kills++
	}
}

type allocSlot struct {
	i   int
	w   float64
	cap float64
}

// waterfill divides capacity among slots proportionally to weight, capping
// each slot and redistributing the excess. Throttled queries get a reduced
// cap, so their self-imposed sleep frees real capacity for everyone else —
// and leaves it unused when no one else wants it.
//
// waterfill consumes slots: saturated entries are compacted out of the
// backing array in place between redistribution rounds, so the slice
// contents are unspecified after the call.
func waterfill(slots []allocSlot, capacity float64, shares []float64) {
	for len(slots) > 0 && capacity > 1e-12 {
		var sumW float64
		for _, s := range slots {
			sumW += s.w
		}
		if sumW <= 0 {
			return
		}
		progressed := false
		// Partition in place: unsaturated slots are compacted to the front
		// of the same backing array (stable, so redistribution order — and
		// the floating-point result — matches the old copying version)
		// without allocating a fresh slice per round.
		remaining := slots[:0]
		for _, s := range slots {
			alloc := capacity * s.w / sumW
			if alloc >= s.cap {
				shares[s.i] = s.cap
				capacity -= s.cap
				progressed = true
			} else {
				remaining = append(remaining, s)
			}
		}
		if !progressed {
			for _, s := range remaining {
				shares[s.i] = capacity * s.w / sumW
			}
			return
		}
		slots = remaining
		if capacity < 0 {
			capacity = 0
		}
	}
}

// allocateCPU divides cores among runnable queries by weight, capping each
// query at parallelism×(1−throttle): a throttled query sleeps that fraction
// of each quantum regardless of how idle the server is.
func (e *Engine) allocateCPU(runnable []*Query) []float64 {
	shares := resizeZero(&e.scratchCPU, len(runnable))
	slots := e.scratchSlots[:0]
	for i, q := range runnable {
		if q.Spec.CPUWork <= 0 || q.cpuDone >= q.Spec.CPUWork {
			continue
		}
		if q.Weight <= 0 {
			continue
		}
		slots = append(slots, allocSlot{i: i, w: q.Weight, cap: q.Spec.parallelism() * (1 - q.Throttle)})
	}
	e.scratchSlots = slots
	waterfill(slots, e.cfg.Cores, shares)
	return shares
}

// allocateIO divides IO bandwidth among runnable queries with IO remaining,
// proportionally to weight, capping each query at (1−throttle) of the total
// bandwidth.
func (e *Engine) allocateIO(runnable []*Query) []float64 {
	shares := resizeZero(&e.scratchIO, len(runnable))
	slots := e.scratchSlots[:0]
	for i, q := range runnable {
		if q.Spec.IOWork <= 0 || q.ioDone >= q.Spec.IOWork {
			continue
		}
		if q.Weight <= 0 {
			continue
		}
		slots = append(slots, allocSlot{i: i, w: q.Weight, cap: e.cfg.IOMBps * (1 - q.Throttle)})
	}
	e.scratchSlots = slots
	waterfill(slots, e.cfg.IOMBps, shares)
	return shares
}

// resizeZero grows (or shrinks) *buf to n zeroed entries, reusing capacity.
func resizeZero(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// Stats snapshots current engine load.
func (e *Engine) StatsNow() Stats {
	st := Stats{
		Completed: e.completed,
		Killed:    e.killed,
		Deadlocks: e.deadlocks,
	}
	var memDemand float64
	for _, q := range e.live {
		if q.state.Terminal() {
			continue
		}
		st.InEngine++
		switch q.state {
		case StateRunning, StateSuspending:
			st.Running++
			memDemand += q.Spec.MemMB
		case StateBlocked:
			st.Blocked++
			memDemand += q.Spec.MemMB
		case StateSuspended:
			st.Suspended++
		}
	}
	st.MemDemandMB = memDemand
	st.MemPressure = memDemand / e.cfg.MemoryMB
	st.CPUUtilization = e.lastCPUUsed / e.cfg.Cores
	st.IOUtilization = e.lastIOUsed / e.cfg.IOMBps
	st.ConflictRatio = conflictRatio(e.queries)
	return st
}
