package engine

import (
	"fmt"
	"testing"

	"dbwlm/internal/sim"
)

// resetScenario drives a contended mix — lock conflicts, kills, a suspend, a
// memory-overcommitted stretch — through e and returns a deterministic
// transcript of everything observable: per-query outcomes with finish times,
// engine counters, and final stats.
func resetScenario(s *sim.Simulator, e *Engine, seed uint64) []string {
	var log []string
	rng := sim.NewRNG(seed)
	submit := func(tag int, spec QuerySpec) *Query {
		return e.Submit(spec, 1, func(q *Query, oc Outcome) {
			log = append(log, fmt.Sprintf("q%d %v at %d held=%d", tag, oc, int64(q.finishAt), len(q.held)))
		})
	}
	var handles []*Query
	for i := 0; i < 24; i++ {
		spec := QuerySpec{
			CPUWork:     0.5 + rng.Float64()*4,
			IOWork:      rng.Float64() * 200,
			MemMB:       200 + rng.Float64()*600,
			Parallelism: float64(1 + rng.Intn(4)),
			StateMB:     50,
		}
		if i%3 == 0 {
			spec.Locks = []LockReq{
				{Key: i % 5, Exclusive: true, AtProgress: 0.1},
				{Key: (i + 2) % 5, Exclusive: true, AtProgress: 0.5},
			}
		}
		handles = append(handles, submit(i, spec))
		s.Run(s.Now().Add(sim.Duration(rng.Intn(300)) * sim.Millisecond))
	}
	s.Run(s.Now().Add(2 * sim.Second))
	if q := handles[1]; !q.State().Terminal() {
		e.Kill(q.ID)
	}
	if q := handles[4]; q.State() == StateRunning {
		e.Suspend(q.ID, SuspendDumpState)
	}
	s.Run(s.Now().Add(60 * sim.Second))
	st := e.StatsNow()
	log = append(log, fmt.Sprintf("stats %d %d %d %d %.9f %.9f",
		st.Completed, st.Killed, st.Deadlocks, st.InEngine, st.CPUUtilization, st.MemDemandMB))
	return log
}

// TestResetMatchesFresh pins the pooled-reuse contract: a Reset sim/engine
// pair must replay a scenario bit-for-bit identically to a freshly
// constructed pair, including after a run that was abandoned mid-flight.
func TestResetMatchesFresh(t *testing.T) {
	cfgA := Config{Cores: 4, MemoryMB: 2048, IOMBps: 200}
	cfgB := Config{Cores: 2, MemoryMB: 1024, IOMBps: 400, Quantum: 5 * sim.Millisecond}

	fresh := func(cfg Config, seed uint64) []string {
		s := sim.New(seed)
		return resetScenario(s, New(s, cfg), seed)
	}

	ps := sim.New(123)
	pe := New(ps, cfgA)
	// Dirty the pair: run half a scenario, then abandon it mid-flight.
	resetScenario(ps, pe, 55)
	ps.Run(ps.Now().Add(sim.Second))

	for trial, tc := range []struct {
		cfg  Config
		seed uint64
	}{{cfgA, 1}, {cfgB, 2}, {cfgA, 1}} {
		ps.Reset(tc.seed)
		pe.Reset(tc.cfg)
		got := resetScenario(ps, pe, tc.seed)
		want := fresh(tc.cfg, tc.seed)
		if len(got) != len(want) {
			t.Fatalf("trial %d: transcript lengths differ: %d vs %d\n got: %v\nwant: %v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: transcripts diverge at %d:\n got: %s\nwant: %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestResetRecyclesQueries pins the allocation story: the second run on a
// reset engine draws its Query objects from the free list.
func TestResetRecyclesQueries(t *testing.T) {
	s := sim.New(1)
	e := New(s, Config{Cores: 4})
	for i := 0; i < 8; i++ {
		e.Submit(QuerySpec{CPUWork: 0.1}, 1, nil)
	}
	s.Run(s.Now().Add(10 * sim.Second))
	s.Reset(1)
	e.Reset(Config{Cores: 4})
	if len(e.freeQ) != 8 {
		t.Fatalf("free list holds %d queries after Reset, want 8", len(e.freeQ))
	}
	q := e.Submit(QuerySpec{CPUWork: 0.1}, 1, nil)
	if len(e.freeQ) != 7 {
		t.Fatalf("Submit did not pop the free list: %d left", len(e.freeQ))
	}
	if q.ID != 1 || q.State() != StateRunning {
		t.Fatalf("recycled query not reinitialized: ID=%d state=%v", q.ID, q.State())
	}
}
