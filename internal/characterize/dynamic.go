package characterize

import (
	"math"

	"dbwlm/internal/learn"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// WorkloadType is the label produced by dynamic characterization.
type WorkloadType int

// Workload types the dynamic classifier distinguishes.
const (
	TypeOLTP WorkloadType = iota
	TypeOLAP
	TypeMixed
)

// String names the workload type.
func (t WorkloadType) String() string {
	switch t {
	case TypeOLTP:
		return "OLTP"
	case TypeOLAP:
		return "OLAP"
	default:
		return "MIXED"
	}
}

// numWorkloadTypes is the label-space size for training.
const numWorkloadTypes = 3

// SnapshotFeatures summarizes a window of recent requests into the feature
// vector the dynamic classifier consumes: the workload "characteristics" of
// Section 3.1 (cost, resource demand, statement mix, result sizes).
func SnapshotFeatures(reqs []*workload.Request) []float64 {
	if len(reqs) == 0 {
		return []float64{0, 0, 0, 0, 0}
	}
	var logCost, writeFrac, logRows, logMem, heavyFrac float64
	for _, r := range reqs {
		logCost += math.Log1p(r.Est.Timerons)
		if r.Type != sqlmini.StmtRead {
			writeFrac++
		}
		logRows += math.Log1p(r.Est.Rows)
		logMem += math.Log1p(r.Est.MemMB)
		if r.Est.Timerons > 10_000 {
			heavyFrac++
		}
	}
	n := float64(len(reqs))
	return []float64{logCost / n, writeFrac / n, logRows / n, logMem / n, heavyFrac / n}
}

// DynamicClassifier identifies the type of workload present on the server
// from windows of arriving requests (Section 3.1, dynamic characterization).
type DynamicClassifier struct {
	model learn.Classifier
}

// LabeledWindow is one training window: requests plus the ground-truth type.
type LabeledWindow struct {
	Requests []*workload.Request
	Label    WorkloadType
}

// TrainDynamicClassifier learns a classifier from labeled windows. algorithm
// is "bayes" (default) or "tree".
func TrainDynamicClassifier(windows []LabeledWindow, algorithm string) *DynamicClassifier {
	samples := make([]learn.Sample, 0, len(windows))
	for _, w := range windows {
		samples = append(samples, learn.Sample{
			Features: SnapshotFeatures(w.Requests),
			Label:    int(w.Label),
		})
	}
	var model learn.Classifier
	if algorithm == "tree" {
		model = learn.TrainDecisionTree(samples, numWorkloadTypes, learn.TreeConfig{MaxDepth: 6})
	} else {
		model = learn.TrainNaiveBayes(samples, numWorkloadTypes)
	}
	return &DynamicClassifier{model: model}
}

// Classify labels a window of recent requests.
func (c *DynamicClassifier) Classify(reqs []*workload.Request) WorkloadType {
	return WorkloadType(c.model.Predict(SnapshotFeatures(reqs)))
}
