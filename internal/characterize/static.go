// Package characterize implements the workload-characterization class of the
// taxonomy (Section 3.1): static characterization — workload definitions that
// map arriving requests to service classes by origin, type, estimated cost,
// or user-written criteria functions, with resource allocation attached — and
// dynamic characterization — a learned classifier that identifies the type of
// workload present on the server at run time (Elnaffar et al. [19]).
package characterize

import (
	"fmt"

	"dbwlm/internal/policy"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// Matcher decides whether a request belongs to a workload definition.
type Matcher interface {
	Match(r *workload.Request) bool
	// Describe renders the matching rule for reports.
	Describe() string
}

// OriginMatcher matches on "who" issued the request (DB2 connection
// attributes; Teradata "who" criteria). Empty fields are wildcards.
type OriginMatcher struct {
	App      string
	User     string
	ClientIP string
}

// Match implements Matcher.
func (m OriginMatcher) Match(r *workload.Request) bool {
	if m.App != "" && r.Origin.App != m.App {
		return false
	}
	if m.User != "" && r.Origin.User != m.User {
		return false
	}
	if m.ClientIP != "" && r.Origin.ClientIP != m.ClientIP {
		return false
	}
	return true
}

// Describe implements Matcher.
func (m OriginMatcher) Describe() string {
	return fmt.Sprintf("origin(app=%q user=%q ip=%q)", m.App, m.User, m.ClientIP)
}

// TypeMatcher matches on "what" the request is (DB2 work classes; Teradata
// "what" criteria): statement types, with optional predictive cost and row
// bounds on DML.
type TypeMatcher struct {
	Types []sqlmini.StatementType
	// MinTimerons/MaxTimerons bound the estimated cost (0 = unbounded).
	MinTimerons float64
	MaxTimerons float64
	// MinRows/MaxRows bound the estimated returned rows (0 = unbounded).
	MinRows float64
	MaxRows float64
}

// Match implements Matcher.
func (m TypeMatcher) Match(r *workload.Request) bool {
	if len(m.Types) > 0 {
		ok := false
		for _, t := range m.Types {
			if r.Type == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if m.MinTimerons > 0 && r.Est.Timerons < m.MinTimerons {
		return false
	}
	if m.MaxTimerons > 0 && r.Est.Timerons > m.MaxTimerons {
		return false
	}
	if m.MinRows > 0 && r.Est.Rows < m.MinRows {
		return false
	}
	if m.MaxRows > 0 && r.Est.Rows > m.MaxRows {
		return false
	}
	return true
}

// Describe implements Matcher.
func (m TypeMatcher) Describe() string {
	return fmt.Sprintf("type(%v cost=[%g,%g] rows=[%g,%g])",
		m.Types, m.MinTimerons, m.MaxTimerons, m.MinRows, m.MaxRows)
}

// CriteriaFunc is a user-written classifier function (SQL Server Resource
// Governor classification functions, Section 4.1.2.C).
type CriteriaFunc struct {
	Name string
	Fn   func(r *workload.Request) bool
}

// Match implements Matcher.
func (m CriteriaFunc) Match(r *workload.Request) bool { return m.Fn(r) }

// Describe implements Matcher.
func (m CriteriaFunc) Describe() string { return "criteria(" + m.Name + ")" }

// All matches when every component matches.
type All []Matcher

// Match implements Matcher.
func (m All) Match(r *workload.Request) bool {
	for _, sub := range m {
		if !sub.Match(r) {
			return false
		}
	}
	return true
}

// Describe implements Matcher.
func (m All) Describe() string {
	s := "all("
	for i, sub := range m {
		if i > 0 {
			s += " and "
		}
		s += sub.Describe()
	}
	return s + ")"
}

// Any matches when at least one component matches.
type Any []Matcher

// Match implements Matcher.
func (m Any) Match(r *workload.Request) bool {
	for _, sub := range m {
		if sub.Match(r) {
			return true
		}
	}
	return false
}

// Describe implements Matcher.
func (m Any) Describe() string {
	s := "any("
	for i, sub := range m {
		if i > 0 {
			s += " or "
		}
		s += sub.Describe()
	}
	return s + ")"
}

// ServiceTier is one service subclass within a service class: a weight tier
// a request can be demoted to by priority aging (DB2 service subclasses,
// Section 4.1.1.B).
type ServiceTier struct {
	Name   string
	Weight float64
}

// ServiceClass is the execution environment a workload runs in: resource
// access weight, optional subclass tiers for aging, execution thresholds,
// and a concurrency limit.
type ServiceClass struct {
	Name     string
	Priority policy.Priority
	// Weight overrides Priority.Weight() when positive.
	Weight float64
	// Tiers are aging levels, highest first; empty means the class weight
	// is the only level.
	Tiers []ServiceTier
	// Thresholds guard execution within this class.
	Thresholds []policy.Threshold
	// MaxConcurrency is the class MPL (0 = unlimited).
	MaxConcurrency int
	// SLO carried by the class (workloads may override).
	SLO policy.SLO
}

// EffectiveWeight is the class's top-tier resource weight.
func (c *ServiceClass) EffectiveWeight() float64 {
	if len(c.Tiers) > 0 {
		return c.Tiers[0].Weight
	}
	if c.Weight > 0 {
		return c.Weight
	}
	return c.Priority.Weight()
}

// TierWeight returns the weight of tier i, clamping to the lowest tier.
func (c *ServiceClass) TierWeight(i int) float64 {
	if len(c.Tiers) == 0 {
		return c.EffectiveWeight()
	}
	if i < 0 {
		i = 0
	}
	if i >= len(c.Tiers) {
		i = len(c.Tiers) - 1
	}
	return c.Tiers[i].Weight
}

// WorkloadDef maps matching requests to a service class — the "workload"
// database object of DB2 and Teradata (Section 2.2).
type WorkloadDef struct {
	Name         string
	Match        Matcher
	ServiceClass string
	// Priority overrides the request's generator priority when >= 0.
	Priority policy.Priority
	// HasPriority marks Priority as set (Priority zero value is low).
	HasPriority bool
}

// Router classifies arriving requests into workload definitions and service
// classes, in definition order, with a default class for non-matching work
// (SQL Server's default workload group).
type Router struct {
	defs    []*WorkloadDef
	classes map[string]*ServiceClass
	deflt   *ServiceClass
}

// NewRouter builds a router; defaultClass receives unmatched requests.
func NewRouter(defaultClass *ServiceClass) *Router {
	if defaultClass == nil {
		defaultClass = &ServiceClass{Name: "default", Priority: policy.PriorityLow}
	}
	r := &Router{classes: map[string]*ServiceClass{defaultClass.Name: defaultClass}, deflt: defaultClass}
	return r
}

// AddClass registers a service class.
func (r *Router) AddClass(c *ServiceClass) *Router {
	r.classes[c.Name] = c
	return r
}

// AddDef appends a workload definition (evaluated in insertion order).
func (r *Router) AddDef(d *WorkloadDef) *Router {
	r.defs = append(r.defs, d)
	return r
}

// Class returns the named service class, or nil.
func (r *Router) Class(name string) *ServiceClass { return r.classes[name] }

// Default returns the default service class.
func (r *Router) Default() *ServiceClass { return r.deflt }

// Defs returns the workload definitions in evaluation order.
func (r *Router) Defs() []*WorkloadDef { return r.defs }

// Classify assigns a request to the first matching definition, labeling the
// request with the definition name and (optionally) its priority. The
// returned class is never nil.
func (r *Router) Classify(req *workload.Request) (*WorkloadDef, *ServiceClass) {
	for _, d := range r.defs {
		if d.Match != nil && d.Match.Match(req) {
			req.Workload = d.Name
			if d.HasPriority {
				req.Priority = d.Priority
			}
			if c := r.classes[d.ServiceClass]; c != nil {
				return d, c
			}
			return d, r.deflt
		}
	}
	return nil, r.deflt
}
