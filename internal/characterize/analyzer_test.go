package characterize

import (
	"testing"

	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

func logRecord(app string, typ sqlmini.StatementType, timerons, seconds float64) LogRecord {
	return LogRecord{
		Req: &workload.Request{
			Origin: workload.Origin{App: app},
			Type:   typ,
			Est:    workload.Estimates{Timerons: timerons},
		},
		ResponseSeconds: seconds,
	}
}

func sampleLog() []LogRecord {
	var log []LogRecord
	// 40 cheap POS writes (~0.02s), 20 heavy BI reads (~30s), 3 strays.
	for i := 0; i < 40; i++ {
		log = append(log, logRecord("pos", sqlmini.StmtWrite, 20+float64(i%3), 0.02))
	}
	for i := 0; i < 20; i++ {
		log = append(log, logRecord("dash", sqlmini.StmtRead, 150000+float64(i*100), 30))
	}
	for i := 0; i < 3; i++ {
		log = append(log, logRecord("misc", sqlmini.StmtDDL, 100, 1))
	}
	return log
}

func TestAnalyzerGroupsByWhoAndWhat(t *testing.T) {
	a := &Analyzer{MinGroupSize: 5}
	cands := a.Analyze(sampleLog())
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2 (strays below MinGroupSize)", len(cands))
	}
	// Ordered by count: POS first.
	if cands[0].App != "pos" || cands[0].Count != 40 {
		t.Fatalf("first candidate = %+v", cands[0])
	}
	if cands[1].App != "dash" || cands[1].Count != 20 {
		t.Fatalf("second candidate = %+v", cands[1])
	}
	// Heuristics: cheap writes get high priority, heavy reads low.
	if cands[0].RecommendedPriority != policy.PriorityHigh {
		t.Fatalf("pos priority = %v", cands[0].RecommendedPriority)
	}
	if cands[1].RecommendedPriority != policy.PriorityLow {
		t.Fatalf("dash priority = %v", cands[1].RecommendedPriority)
	}
	// SLG is observed p95 with headroom.
	if cands[0].RecommendedSLG.Kind != policy.SLOPercentileResponseTime {
		t.Fatal("SLG kind wrong")
	}
	if got := cands[0].RecommendedSLG.Target; got < 0.02 || got > 0.05 {
		t.Fatalf("pos SLG target = %v, want ~0.03 (p95*1.5)", got)
	}
}

func TestAnalyzerEmptyAndNilSafe(t *testing.T) {
	a := &Analyzer{}
	if got := a.Analyze(nil); len(got) != 0 {
		t.Fatal("empty log produced candidates")
	}
	if got := a.Analyze([]LogRecord{{Req: nil}}); len(got) != 0 {
		t.Fatal("nil request not skipped")
	}
}

func TestMergeCandidates(t *testing.T) {
	a := &Analyzer{MinGroupSize: 5}
	cands := a.Analyze(sampleLog())
	m := Merge(cands[0], cands[1], "merged")
	if m.Count != 60 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.RecommendedPriority != policy.PriorityLow {
		t.Fatal("merge should keep the lower priority")
	}
	if m.P95Seconds < cands[1].P95Seconds {
		t.Fatal("merge should keep the weaker p95")
	}
	if m.App != "" {
		t.Fatal("different apps should merge to wildcard")
	}
}

func TestSplitCandidate(t *testing.T) {
	a := &Analyzer{MinGroupSize: 5}
	var log []LogRecord
	for i := 0; i < 10; i++ {
		log = append(log, logRecord("app", sqlmini.StmtRead, 100, 0.1))
		log = append(log, logRecord("app", sqlmini.StmtRead, 900, 5))
	}
	cands := a.Analyze(log)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	cheap, costly := a.Split(cands[0], log, 500)
	if cheap.Count != 10 || costly.Count != 10 {
		t.Fatalf("split counts = %d/%d", cheap.Count, costly.Count)
	}
	if cheap.MeanTimerons >= costly.MeanTimerons {
		t.Fatal("split sides inverted")
	}
}

func TestToDefinitionAndInstall(t *testing.T) {
	a := &Analyzer{MinGroupSize: 5}
	cands := a.Analyze(sampleLog())
	router := InstallRecommendations(cands, nil)
	// A fresh POS write should land in the recommended class.
	req := &workload.Request{
		Origin: workload.Origin{App: "pos"},
		Type:   sqlmini.StmtWrite,
		Est:    workload.Estimates{Timerons: 21},
	}
	def, class := router.Classify(req)
	if def == nil || class == nil {
		t.Fatal("recommendation did not classify")
	}
	if class.Priority != policy.PriorityHigh {
		t.Fatalf("class priority = %v", class.Priority)
	}
	// A heavy dash read routes to the analytic recommendation.
	req2 := &workload.Request{
		Origin: workload.Origin{App: "dash"},
		Type:   sqlmini.StmtRead,
		Est:    workload.Estimates{Timerons: 151000},
	}
	def2, class2 := router.Classify(req2)
	if def2 == nil || class2.Priority != policy.PriorityLow {
		t.Fatalf("dash routing: %v %v", def2, class2)
	}
	// An unknown request goes to the default.
	req3 := &workload.Request{Type: sqlmini.StmtCall}
	def3, _ := router.Classify(req3)
	if def3 != nil {
		t.Fatal("stray matched a recommendation")
	}
}

func TestAnalyzerFromGeneratedLog(t *testing.T) {
	// End to end: generate a mixed workload, pretend it ran solo, analyze.
	s := sim.New(5)
	seq := &workload.Sequence{}
	var log []LogRecord
	collect := func(r *workload.Request) {
		log = append(log, LogRecord{Req: r, ResponseSeconds: r.True.CPUWork * 2})
	}
	(&workload.OLTPGen{WorkloadName: "oltp", Rate: 50, Seq: seq}).
		Start(s, sim.Time(10*sim.Second), collect)
	s.RunAll(1 << 22)
	a := &Analyzer{MinGroupSize: 10}
	cands := a.Analyze(log)
	if len(cands) == 0 {
		t.Fatal("no candidates from generated log")
	}
	for _, c := range cands {
		if c.App != "pos-terminal" {
			t.Fatalf("unexpected app %q", c.App)
		}
	}
}

func TestAnalyzeClustered(t *testing.T) {
	a := &Analyzer{MinGroupSize: 5}
	rng := sim.NewRNG(3)
	// Two clear groups in (cost, rt) space plus type separation.
	var log []LogRecord
	for i := 0; i < 30; i++ {
		log = append(log, logRecord("pos", sqlmini.StmtWrite, 20+float64(i%5), 0.02))
		log = append(log, logRecord("dash", sqlmini.StmtRead, 140000+float64(i*50), 25))
	}
	cands := a.AnalyzeClustered(log, 2, rng)
	if len(cands) != 2 {
		t.Fatalf("clustered candidates = %d, want 2: %+v", len(cands), cands)
	}
	// Dominant apps survive.
	apps := map[string]bool{}
	for _, c := range cands {
		apps[c.App] = true
		if c.Count != 30 {
			t.Fatalf("candidate count = %d", c.Count)
		}
	}
	if !apps["pos"] || !apps["dash"] {
		t.Fatalf("apps = %v", apps)
	}
	// Deterministic for a seed.
	again := a.AnalyzeClustered(log, 2, sim.NewRNG(3))
	if len(again) != len(cands) || again[0].Name != cands[0].Name {
		t.Fatal("clustering nondeterministic for fixed seed")
	}
	// Empty log.
	if got := a.AnalyzeClustered(nil, 2, rng); got != nil {
		t.Fatal("empty log")
	}
}
