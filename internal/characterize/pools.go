package characterize

import "fmt"

// ResourcePool is a SQL Server Resource Governor-style pool: a MIN share
// that is guaranteed (non-overlapping across pools) and a MAX cap, as
// fractions of the server (Section 4.1.2.A).
type ResourcePool struct {
	Name   string
	MinCPU float64 // guaranteed fraction in [0, 1]
	MaxCPU float64 // cap in [MinCPU, 1]
	MinMem float64
	MaxMem float64
	// Internal marks the engine's own pool, which may pressure others.
	Internal bool
}

// Validate checks a single pool's bounds.
func (p *ResourcePool) Validate() error {
	if p.MinCPU < 0 || p.MinCPU > 1 || p.MinMem < 0 || p.MinMem > 1 {
		return fmt.Errorf("pool %q: MIN out of [0,1]", p.Name)
	}
	if p.MaxCPU < p.MinCPU || p.MaxCPU > 1 {
		return fmt.Errorf("pool %q: MaxCPU %v out of [MinCPU, 1]", p.Name, p.MaxCPU)
	}
	if p.MaxMem < p.MinMem || p.MaxMem > 1 {
		return fmt.Errorf("pool %q: MaxMem %v out of [MinMem, 1]", p.Name, p.MaxMem)
	}
	return nil
}

// PoolSet is a validated collection of resource pools.
type PoolSet struct {
	pools []*ResourcePool
}

// NewPoolSet validates that each pool is well-formed and the MIN reservations
// sum to at most 100%.
func NewPoolSet(pools ...*ResourcePool) (*PoolSet, error) {
	var sumMinCPU, sumMinMem float64
	seen := map[string]bool{}
	for _, p := range pools {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("duplicate pool %q", p.Name)
		}
		seen[p.Name] = true
		sumMinCPU += p.MinCPU
		sumMinMem += p.MinMem
	}
	if sumMinCPU > 1+1e-9 {
		return nil, fmt.Errorf("sum of CPU MIN reservations %.2f exceeds 100%%", sumMinCPU)
	}
	if sumMinMem > 1+1e-9 {
		return nil, fmt.Errorf("sum of memory MIN reservations %.2f exceeds 100%%", sumMinMem)
	}
	return &PoolSet{pools: pools}, nil
}

// Pools returns the pool list.
func (s *PoolSet) Pools() []*ResourcePool { return s.pools }

// Pool returns the named pool, or nil.
func (s *PoolSet) Pool(name string) *ResourcePool {
	for _, p := range s.pools {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// AllocateCPU computes each pool's effective CPU fraction given which pools
// currently have demand. Pools with demand receive at least MIN, at most
// MAX; reservation of idle pools is redistributed proportionally ("shared
// portion"). The result sums to at most 1, and exactly 1 when some demanding
// pool is below its MAX.
func (s *PoolSet) AllocateCPU(demand map[string]bool) map[string]float64 {
	out := make(map[string]float64, len(s.pools))
	var demanding []*ResourcePool
	var reservedIdle float64
	for _, p := range s.pools {
		if demand[p.Name] {
			demanding = append(demanding, p)
			out[p.Name] = p.MinCPU
		} else {
			out[p.Name] = 0
			reservedIdle += p.MinCPU
		}
	}
	if len(demanding) == 0 {
		return out
	}
	// Free capacity = idle reservations + unreserved share.
	var reservedAll float64
	for _, p := range s.pools {
		reservedAll += p.MinCPU
	}
	free := (1 - reservedAll) + reservedIdle
	// Water-fill the free capacity equally among demanding pools, honoring
	// MAX caps.
	remaining := free
	open := append([]*ResourcePool(nil), demanding...)
	for remaining > 1e-12 && len(open) > 0 {
		share := remaining / float64(len(open))
		var next []*ResourcePool
		progressed := false
		for _, p := range open {
			room := p.MaxCPU - out[p.Name]
			if room <= share {
				out[p.Name] += room
				remaining -= room
				progressed = true
			} else {
				next = append(next, p)
			}
		}
		if !progressed {
			for _, p := range next {
				out[p.Name] += share
				remaining -= share
			}
			break
		}
		open = next
	}
	return out
}
