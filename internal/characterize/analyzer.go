package characterize

import (
	"fmt"
	"math"
	"sort"

	"dbwlm/internal/learn"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// This file implements a workload analyzer in the mould of Teradata Workload
// Analyzer (Section 4.1.3.A of the paper): it mines a query log (DBQL),
// groups queries into candidate workloads along the "who" and "what"
// dimensions, supports merging and splitting candidates, and recommends
// workload definitions with service-level goals derived from the observed
// response-time distribution.

// CandidateWorkload is one recommended grouping of logged queries.
type CandidateWorkload struct {
	Name string
	// App is the "who" dimension shared by the group ("" if mixed).
	App string
	// Type is the "what" dimension (statement type) of the group.
	Type sqlmini.StatementType
	// CostBand is the log10 bucket of estimated timerons.
	CostBand int
	// Count is the number of logged queries in the group.
	Count int
	// MeanTimerons and P95Seconds summarize the group.
	MeanTimerons float64
	P95Seconds   float64
	// RecommendedPriority follows cost and origin heuristics: cheap
	// transactional work is ranked higher than expensive analytics.
	RecommendedPriority policy.Priority
	// RecommendedSLG is the service-level goal suggestion: the observed p95
	// with 50% headroom.
	RecommendedSLG policy.SLO
}

// LogRecord is one query-log entry the analyzer consumes: a request plus its
// observed response time (the DBQL view).
type LogRecord struct {
	Req             *workload.Request
	ResponseSeconds float64
}

// Analyzer mines query logs into workload recommendations.
type Analyzer struct {
	// MinGroupSize drops candidate groups smaller than this (default 5).
	MinGroupSize int
}

type groupKey struct {
	app      string
	typ      sqlmini.StatementType
	costBand int
}

func costBand(timerons float64) int {
	if timerons < 1 {
		return 0
	}
	return int(math.Log10(timerons))
}

// Analyze groups the log along (app, statement type, cost band) and returns
// candidate workloads ordered by descending count.
func (a *Analyzer) Analyze(log []LogRecord) []CandidateWorkload {
	minSize := a.MinGroupSize
	if minSize <= 0 {
		minSize = 5
	}
	groups := make(map[groupKey][]LogRecord)
	for _, rec := range log {
		if rec.Req == nil {
			continue
		}
		k := groupKey{
			app:      rec.Req.Origin.App,
			typ:      rec.Req.Type,
			costBand: costBand(rec.Req.Est.Timerons),
		}
		groups[k] = append(groups[k], rec)
	}
	var out []CandidateWorkload
	for k, recs := range groups {
		if len(recs) < minSize {
			continue
		}
		out = append(out, a.summarize(k, recs))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (a *Analyzer) summarize(k groupKey, recs []LogRecord) CandidateWorkload {
	var costSum float64
	times := make([]float64, 0, len(recs))
	for _, r := range recs {
		costSum += r.Req.Est.Timerons
		times = append(times, r.ResponseSeconds)
	}
	sort.Float64s(times)
	p95 := times[int(0.95*float64(len(times)-1))]
	mean := costSum / float64(len(recs))

	pri := policy.PriorityLow
	switch {
	case k.typ == sqlmini.StmtWrite && mean < 1000:
		pri = policy.PriorityHigh // cheap transactional writes
	case mean < 1000:
		pri = policy.PriorityMedium
	case mean < 100000:
		pri = policy.PriorityLow
	}
	cw := CandidateWorkload{
		Name:                fmt.Sprintf("%s-%v-band%d", orDefault(k.app, "any"), k.typ, k.costBand),
		App:                 k.app,
		Type:                k.typ,
		CostBand:            k.costBand,
		Count:               len(recs),
		MeanTimerons:        mean,
		P95Seconds:          p95,
		RecommendedPriority: pri,
		RecommendedSLG: policy.PercentileResponseTime(95,
			sim.DurationFromSeconds(p95*1.5)),
	}
	return cw
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Merge combines two candidates into one (the analyst's refinement step).
// The merged candidate keeps the weaker (higher) SLG and the lower priority.
func Merge(a, b CandidateWorkload, name string) CandidateWorkload {
	out := a
	out.Name = name
	out.Count = a.Count + b.Count
	out.MeanTimerons = (a.MeanTimerons*float64(a.Count) + b.MeanTimerons*float64(b.Count)) / float64(out.Count)
	if b.P95Seconds > out.P95Seconds {
		out.P95Seconds = b.P95Seconds
	}
	if b.RecommendedPriority < out.RecommendedPriority {
		out.RecommendedPriority = b.RecommendedPriority
	}
	if a.App != b.App {
		out.App = ""
	}
	out.RecommendedSLG = policy.PercentileResponseTime(95,
		sim.DurationFromSeconds(out.P95Seconds*1.5))
	return out
}

// Split divides a candidate along a timeron threshold into a cheap and an
// expensive sub-candidate, re-analyzing the underlying records.
func (a *Analyzer) Split(cand CandidateWorkload, log []LogRecord, timerons float64) (cheap, costly CandidateWorkload) {
	var lo, hi []LogRecord
	for _, rec := range log {
		if rec.Req == nil || rec.Req.Origin.App != cand.App || rec.Req.Type != cand.Type ||
			costBand(rec.Req.Est.Timerons) != cand.CostBand {
			continue
		}
		if rec.Req.Est.Timerons <= timerons {
			lo = append(lo, rec)
		} else {
			hi = append(hi, rec)
		}
	}
	k := groupKey{app: cand.App, typ: cand.Type, costBand: cand.CostBand}
	if len(lo) > 0 {
		cheap = a.summarize(k, lo)
		cheap.Name = cand.Name + "-cheap"
	}
	if len(hi) > 0 {
		costly = a.summarize(k, hi)
		costly.Name = cand.Name + "-costly"
	}
	return cheap, costly
}

// ToDefinition converts a candidate into a workload definition + service
// class pair ready to install in a Router.
func (c CandidateWorkload) ToDefinition() (*WorkloadDef, *ServiceClass) {
	var match Matcher
	band := c.CostBand
	lo := math.Pow(10, float64(band))
	hi := math.Pow(10, float64(band+1))
	tm := TypeMatcher{Types: []sqlmini.StatementType{c.Type}, MinTimerons: lo, MaxTimerons: hi}
	if c.App != "" {
		match = All{OriginMatcher{App: c.App}, tm}
	} else {
		match = tm
	}
	class := &ServiceClass{
		Name:     "SC-" + c.Name,
		Priority: c.RecommendedPriority,
		SLO:      c.RecommendedSLG,
	}
	def := &WorkloadDef{
		Name:         c.Name,
		Match:        match,
		ServiceClass: class.Name,
		Priority:     c.RecommendedPriority,
		HasPriority:  true,
	}
	return def, class
}

// InstallRecommendations builds a router from candidates (most numerous
// first, as earlier definitions win ties).
func InstallRecommendations(cands []CandidateWorkload, deflt *ServiceClass) *Router {
	r := NewRouter(deflt)
	for _, c := range cands {
		def, class := c.ToDefinition()
		r.AddClass(class)
		r.AddDef(def)
	}
	return r
}

// AnalyzeClustered discovers candidate workloads by k-means clustering over
// (log-cost, log-response-time) instead of discrete cost bands — the
// data-driven grouping alternative for logs whose cost structure does not
// fall on decade boundaries. Clusters are further keyed by statement type
// (a READ and a WRITE never share a candidate).
func (a *Analyzer) AnalyzeClustered(log []LogRecord, k int, rng *sim.RNG) []CandidateWorkload {
	minSize := a.MinGroupSize
	if minSize <= 0 {
		minSize = 5
	}
	var recs []LogRecord
	var points [][]float64
	for _, rec := range log {
		if rec.Req == nil {
			continue
		}
		recs = append(recs, rec)
		points = append(points, []float64{
			math.Log1p(rec.Req.Est.Timerons),
			math.Log1p(rec.ResponseSeconds),
		})
	}
	if len(points) == 0 {
		return nil
	}
	res := learn.KMeans(learn.Normalize(points), k, 50, rng)

	type ckey struct {
		cluster int
		typ     sqlmini.StatementType
	}
	groups := make(map[ckey][]LogRecord)
	for i, rec := range recs {
		groups[ckey{res.Assignments[i], rec.Req.Type}] = append(
			groups[ckey{res.Assignments[i], rec.Req.Type}], rec)
	}
	var out []CandidateWorkload
	for key, grp := range groups {
		if len(grp) < minSize {
			continue
		}
		// Summarize with the banded summarizer keyed on the dominant app.
		apps := map[string]int{}
		var costSum float64
		for _, rec := range grp {
			apps[rec.Req.Origin.App]++
			costSum += rec.Req.Est.Timerons
		}
		app, appN := "", 0
		for name, n := range apps {
			if n > appN {
				app, appN = name, n
			}
		}
		if appN*2 < len(grp) {
			app = "" // no dominant app: wildcard
		}
		gk := groupKey{app: app, typ: key.typ, costBand: costBand(costSum / float64(len(grp)))}
		cand := a.summarize(gk, grp)
		cand.Name = fmt.Sprintf("cluster%d-%v", key.cluster, key.typ)
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}
