package characterize

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

func req(app, user string, typ sqlmini.StatementType, timerons, rows float64) *workload.Request {
	return &workload.Request{
		Origin: workload.Origin{App: app, User: user, ClientIP: "10.0.0.1"},
		Type:   typ,
		Est:    workload.Estimates{Timerons: timerons, Rows: rows},
	}
}

func TestOriginMatcher(t *testing.T) {
	m := OriginMatcher{App: "pos-terminal"}
	if !m.Match(req("pos-terminal", "x", sqlmini.StmtRead, 1, 1)) {
		t.Fatal("app match failed")
	}
	if m.Match(req("other", "x", sqlmini.StmtRead, 1, 1)) {
		t.Fatal("wrong app matched")
	}
	// Wildcards.
	if !(OriginMatcher{}).Match(req("a", "b", sqlmini.StmtRead, 1, 1)) {
		t.Fatal("empty matcher should match everything")
	}
	if m.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestTypeMatcherBounds(t *testing.T) {
	m := TypeMatcher{
		Types:       []sqlmini.StatementType{sqlmini.StmtRead},
		MinTimerons: 1000,
		MaxRows:     500000,
	}
	if !m.Match(req("a", "u", sqlmini.StmtRead, 5000, 100)) {
		t.Fatal("in-bounds read rejected")
	}
	if m.Match(req("a", "u", sqlmini.StmtWrite, 5000, 100)) {
		t.Fatal("write matched read-only matcher")
	}
	if m.Match(req("a", "u", sqlmini.StmtRead, 500, 100)) {
		t.Fatal("below-min cost matched")
	}
	if m.Match(req("a", "u", sqlmini.StmtRead, 5000, 1e6)) {
		t.Fatal("above-max rows matched")
	}
}

func TestCriteriaAndCombinators(t *testing.T) {
	big := CriteriaFunc{Name: "big", Fn: func(r *workload.Request) bool { return r.Est.Timerons > 100 }}
	fromApp := OriginMatcher{App: "bi"}
	and := All{big, fromApp}
	or := Any{big, fromApp}
	r1 := req("bi", "u", sqlmini.StmtRead, 500, 1)  // both
	r2 := req("bi", "u", sqlmini.StmtRead, 1, 1)    // app only
	r3 := req("pos", "u", sqlmini.StmtRead, 500, 1) // big only
	r4 := req("pos", "u", sqlmini.StmtRead, 1, 1)   // neither
	if !and.Match(r1) || and.Match(r2) || and.Match(r3) {
		t.Fatal("All combinator wrong")
	}
	if !or.Match(r1) || !or.Match(r2) || !or.Match(r3) || or.Match(r4) {
		t.Fatal("Any combinator wrong")
	}
	if and.Describe() == "" || or.Describe() == "" || big.Describe() == "" {
		t.Fatal("empty describes")
	}
}

func TestRouterClassification(t *testing.T) {
	router := NewRouter(nil).
		AddClass(&ServiceClass{Name: "gold", Priority: policy.PriorityHigh}).
		AddClass(&ServiceClass{Name: "bronze", Priority: policy.PriorityLow}).
		AddDef(&WorkloadDef{
			Name: "oltp", Match: OriginMatcher{App: "pos"}, ServiceClass: "gold",
			Priority: policy.PriorityCritical, HasPriority: true,
		}).
		AddDef(&WorkloadDef{
			Name: "bi", Match: TypeMatcher{MinTimerons: 1000}, ServiceClass: "bronze",
		})
	r := req("pos", "cashier", sqlmini.StmtWrite, 10, 1)
	def, cls := router.Classify(r)
	if def == nil || def.Name != "oltp" || cls.Name != "gold" {
		t.Fatalf("classify = %v, %v", def, cls)
	}
	if r.Workload != "oltp" || r.Priority != policy.PriorityCritical {
		t.Fatalf("request not labeled: %+v", r)
	}
	// Second def by cost.
	r2 := req("any", "x", sqlmini.StmtRead, 50000, 1)
	def2, cls2 := router.Classify(r2)
	if def2.Name != "bi" || cls2.Name != "bronze" {
		t.Fatalf("classify = %v %v", def2, cls2)
	}
	// Unmatched goes to default, definition nil.
	r3 := req("any", "x", sqlmini.StmtRead, 10, 1)
	def3, cls3 := router.Classify(r3)
	if def3 != nil || cls3.Name != "default" {
		t.Fatalf("default routing = %v %v", def3, cls3)
	}
	// Def pointing at a missing class falls back to default.
	router.AddDef(&WorkloadDef{Name: "ghost", Match: OriginMatcher{App: "ghost"}, ServiceClass: "nope"})
	_, cls4 := router.Classify(req("ghost", "x", sqlmini.StmtRead, 10, 1))
	if cls4.Name != "default" {
		t.Fatal("missing class did not fall back")
	}
	if len(router.Defs()) != 3 || router.Class("gold") == nil || router.Default() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestServiceClassWeights(t *testing.T) {
	c := &ServiceClass{Name: "c", Priority: policy.PriorityHigh}
	if c.EffectiveWeight() != policy.PriorityHigh.Weight() {
		t.Fatal("weight should default to priority weight")
	}
	c.Weight = 10
	if c.EffectiveWeight() != 10 {
		t.Fatal("explicit weight ignored")
	}
	c.Tiers = []ServiceTier{{"t0", 8}, {"t1", 4}, {"t2", 1}}
	if c.EffectiveWeight() != 8 {
		t.Fatal("tiered weight should be top tier")
	}
	if c.TierWeight(1) != 4 || c.TierWeight(99) != 1 || c.TierWeight(-1) != 8 {
		t.Fatal("tier clamping wrong")
	}
}

func TestPoolSetValidation(t *testing.T) {
	_, err := NewPoolSet(
		&ResourcePool{Name: "a", MinCPU: 0.6, MaxCPU: 1},
		&ResourcePool{Name: "b", MinCPU: 0.6, MaxCPU: 1},
	)
	if err == nil {
		t.Fatal("MIN sum > 100% accepted")
	}
	_, err = NewPoolSet(&ResourcePool{Name: "a", MinCPU: 0.5, MaxCPU: 0.2})
	if err == nil {
		t.Fatal("MAX < MIN accepted")
	}
	_, err = NewPoolSet(
		&ResourcePool{Name: "a", MinCPU: 0.2, MaxCPU: 1, MaxMem: 1},
		&ResourcePool{Name: "a", MinCPU: 0.1, MaxCPU: 1, MaxMem: 1},
	)
	if err == nil {
		t.Fatal("duplicate pool accepted")
	}
}

func TestPoolAllocation(t *testing.T) {
	ps, err := NewPoolSet(
		&ResourcePool{Name: "oltp", MinCPU: 0.5, MaxCPU: 1.0, MaxMem: 1},
		&ResourcePool{Name: "bi", MinCPU: 0.2, MaxCPU: 0.4, MaxMem: 1},
		&ResourcePool{Name: "default", MinCPU: 0, MaxCPU: 1.0, MaxMem: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone demanding: oltp >= 0.5, bi in [0.2, 0.4], total <= 1.
	alloc := ps.AllocateCPU(map[string]bool{"oltp": true, "bi": true, "default": true})
	if alloc["oltp"] < 0.5 {
		t.Fatalf("oltp below MIN: %v", alloc)
	}
	if alloc["bi"] < 0.2 || alloc["bi"] > 0.4+1e-9 {
		t.Fatalf("bi outside [MIN,MAX]: %v", alloc)
	}
	var total float64
	for _, v := range alloc {
		total += v
	}
	if total > 1+1e-9 {
		t.Fatalf("allocation exceeds capacity: %v", alloc)
	}
	// Idle pools release their reservation: bi alone can reach its MAX.
	alloc = ps.AllocateCPU(map[string]bool{"bi": true})
	if math.Abs(alloc["bi"]-0.4) > 1e-9 {
		t.Fatalf("solo bi should hit MAX 0.4: %v", alloc)
	}
	if alloc["oltp"] != 0 {
		t.Fatal("idle pool allocated")
	}
	// No demand at all.
	alloc = ps.AllocateCPU(nil)
	for n, v := range alloc {
		if v != 0 {
			t.Fatalf("idle allocation %s=%v", n, v)
		}
	}
}

func TestPoolAllocationInvariantProperty(t *testing.T) {
	// Property: for random valid pool sets and demand patterns, allocations
	// respect MIN (when demanding), MAX, and sum <= 1.
	f := func(mins [3]uint8, maxs [3]uint8, demand [3]bool) bool {
		pools := make([]*ResourcePool, 3)
		var sumMin float64
		for i := range pools {
			mn := float64(mins[i]%30) / 100 // 0..0.29 so sum <= 0.87
			mx := mn + float64(maxs[i]%50)/100
			if mx > 1 {
				mx = 1
			}
			pools[i] = &ResourcePool{Name: string(rune('a' + i)), MinCPU: mn, MaxCPU: mx, MaxMem: 1}
			sumMin += mn
		}
		ps, err := NewPoolSet(pools...)
		if err != nil {
			return true // invalid set correctly rejected
		}
		d := map[string]bool{}
		for i, want := range demand {
			if want {
				d[pools[i].Name] = true
			}
		}
		alloc := ps.AllocateCPU(d)
		var total float64
		for _, p := range pools {
			a := alloc[p.Name]
			if d[p.Name] && a < p.MinCPU-1e-9 {
				return false
			}
			if a > p.MaxCPU+1e-9 {
				return false
			}
			total += a
		}
		return total <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// genWindows builds labeled training windows from the synthetic generators.
func genWindows(t *testing.T, seed uint64, perType int) []LabeledWindow {
	t.Helper()
	var windows []LabeledWindow
	collect := func(g workload.Generator, horizon sim.Time, seedOff uint64) []*workload.Request {
		s := sim.New(seed + seedOff)
		var reqs []*workload.Request
		g.Start(s, horizon, func(r *workload.Request) { reqs = append(reqs, r) })
		s.RunAll(1 << 22)
		return reqs
	}
	for i := 0; i < perType; i++ {
		off := uint64(i) * 101
		oltp := collect(&workload.OLTPGen{WorkloadName: "oltp", Rate: 80, Seq: &workload.Sequence{}},
			sim.Time(5*sim.Second), off)
		windows = append(windows, LabeledWindow{Requests: oltp, Label: TypeOLTP})

		s := sim.New(seed + off + 7)
		em := workload.NewEstimateModel(s.RNG().Fork(3), 0.2)
		var olap []*workload.Request
		bg := &workload.BIGen{WorkloadName: "bi", Rate: 3, Seq: &workload.Sequence{}, Est: em}
		bg.Start(s, sim.Time(20*sim.Second), func(r *workload.Request) { olap = append(olap, r) })
		s.RunAll(1 << 22)
		windows = append(windows, LabeledWindow{Requests: olap, Label: TypeOLAP})

		mixed := append(append([]*workload.Request{}, oltp[:len(oltp)/2]...), olap...)
		windows = append(windows, LabeledWindow{Requests: mixed, Label: TypeMixed})
	}
	return windows
}

func TestDynamicClassifierIdentifiesWorkloadTypes(t *testing.T) {
	train := genWindows(t, 1, 8)
	test := genWindows(t, 1000, 4)
	for _, algo := range []string{"bayes", "tree"} {
		c := TrainDynamicClassifier(train, algo)
		right := 0
		for _, w := range test {
			if c.Classify(w.Requests) == w.Label {
				right++
			}
		}
		acc := float64(right) / float64(len(test))
		if acc < 0.8 {
			t.Fatalf("%s classifier accuracy = %v, want >= 0.8", algo, acc)
		}
	}
}

func TestSnapshotFeaturesEmpty(t *testing.T) {
	f := SnapshotFeatures(nil)
	if len(f) != 5 {
		t.Fatalf("feature vector length %d", len(f))
	}
}

func TestWorkloadTypeString(t *testing.T) {
	if TypeOLTP.String() != "OLTP" || TypeOLAP.String() != "OLAP" || TypeMixed.String() != "MIXED" {
		t.Fatal("type names wrong")
	}
}
