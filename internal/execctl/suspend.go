package execctl

import (
	"math"

	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
)

// SuspendChoice selects a per-operator suspend strategy in the
// Chandramouli et al. [10] model.
type SuspendChoice int

// Per-operator suspend strategies.
const (
	ChoiceDumpState SuspendChoice = iota
	ChoiceGoBack
)

// OpSuspendCost describes one plan operator to the suspend-plan optimizer.
type OpSuspendCost struct {
	// StateMB is the operator state DumpState must write (and resume must
	// read back).
	StateMB float64
	// RedoSeconds is the work GoBack re-executes at resume (work done since
	// the operator's last asynchronous checkpoint).
	RedoSeconds float64
}

// SuspendPlan is the optimizer's result.
type SuspendPlan struct {
	Choices        []SuspendChoice
	SuspendSeconds float64
	ResumeSeconds  float64
}

// Total reports suspend + resume overhead.
func (p SuspendPlan) Total() float64 { return p.SuspendSeconds + p.ResumeSeconds }

// OptimalSuspendPlan chooses DumpState or GoBack per operator to minimize
// total suspend+resume overhead subject to a suspend-cost constraint — the
// optimization Chandramouli et al. solve with mixed-integer programming
// (Section 4.2.3). Costs per operator:
//
//	DumpState: suspend = state/ioMBps, resume = state/ioMBps
//	GoBack:    suspend ≈ 0,            resume = redoSeconds
//
// Plans are small, so exhaustive search (n ≤ 20) returns the true optimum;
// larger plans fall back to a regret-greedy repair, which is exact here too
// because operator costs are independent.
func OptimalSuspendPlan(ops []OpSuspendCost, ioMBps, maxSuspendSeconds float64) SuspendPlan {
	n := len(ops)
	dumpSus := make([]float64, n)
	dumpRes := make([]float64, n)
	goRes := make([]float64, n)
	for i, op := range ops {
		dumpSus[i] = op.StateMB / ioMBps
		dumpRes[i] = op.StateMB / ioMBps
		goRes[i] = op.RedoSeconds
	}
	if n <= 20 {
		best := SuspendPlan{SuspendSeconds: math.Inf(1), ResumeSeconds: math.Inf(1)}
		bestTotal := math.Inf(1)
		feasible := false
		for mask := 0; mask < (1 << n); mask++ {
			var sus, res float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 { // bit clear = DumpState
					sus += dumpSus[i]
					res += dumpRes[i]
				} else {
					res += goRes[i]
				}
			}
			if sus > maxSuspendSeconds {
				continue
			}
			if total := sus + res; total < bestTotal {
				bestTotal = total
				choices := make([]SuspendChoice, n)
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						choices[i] = ChoiceGoBack
					}
				}
				best = SuspendPlan{Choices: choices, SuspendSeconds: sus, ResumeSeconds: res}
				feasible = true
			}
		}
		if !feasible {
			// Constraint unsatisfiable even with all-GoBack: return it anyway.
			return allGoBack(n, goRes)
		}
		return best
	}
	// Greedy: start from each op's per-op optimum, then repair the suspend
	// constraint by flipping the Dump ops with the smallest total regret.
	plan := SuspendPlan{Choices: make([]SuspendChoice, n)}
	for i := 0; i < n; i++ {
		if dumpSus[i]+dumpRes[i] <= goRes[i] {
			plan.Choices[i] = ChoiceDumpState
			plan.SuspendSeconds += dumpSus[i]
			plan.ResumeSeconds += dumpRes[i]
		} else {
			plan.Choices[i] = ChoiceGoBack
			plan.ResumeSeconds += goRes[i]
		}
	}
	for plan.SuspendSeconds > maxSuspendSeconds {
		best := -1
		bestRegret := math.Inf(1)
		for i := 0; i < n; i++ {
			if plan.Choices[i] != ChoiceDumpState || dumpSus[i] <= 0 {
				continue
			}
			regret := (goRes[i] - dumpRes[i]) / dumpSus[i]
			if regret < bestRegret {
				best, bestRegret = i, regret
			}
		}
		if best < 0 {
			break
		}
		plan.Choices[best] = ChoiceGoBack
		plan.SuspendSeconds -= dumpSus[best]
		plan.ResumeSeconds += goRes[best] - dumpRes[best]
	}
	return plan
}

func allGoBack(n int, goRes []float64) SuspendPlan {
	p := SuspendPlan{Choices: make([]SuspendChoice, n)}
	for i := 0; i < n; i++ {
		p.Choices[i] = ChoiceGoBack
		p.ResumeSeconds += goRes[i]
	}
	return p
}

// Suspender suspends managed (low-priority, analytical) queries while a
// pressure condition holds and resumes them when it clears — the
// suspend-and-resume execution control of Table 3, row 4 ("quickly suspend
// long-running low-priority queries when high-priority queries arrive, and
// resume them when the high-priority work has completed").
type Suspender struct {
	Engine *engine.Engine
	// Pressure reports whether high-priority work currently needs the
	// server.
	Pressure func() bool
	// Strategy selects the engine-level suspend strategy.
	Strategy engine.SuspendStrategy
	// CheckEvery is the monitor period (default 250ms).
	CheckEvery sim.Duration
	// MaxConcurrentResume limits how many suspended queries resume per
	// sweep once pressure clears (default 1, avoids a resume stampede).
	MaxConcurrentResume int
	// Remaining, when set, estimates a query's remaining seconds (a query
	// progress indicator, Section 3.4). Queries predicted to finish within
	// SkipIfRemainingUnder seconds are left to complete instead of being
	// suspended — killing a nearly-done query frees almost nothing.
	Remaining func(id int64) (seconds float64, ok bool)
	// SkipIfRemainingUnder is the near-completion grace in seconds
	// (0 disables the progress check).
	SkipIfRemainingUnder float64

	managed  map[int64]*Managed
	sweepIDs []int64
	suspends int64
	resumes  int64
	started  bool
}

// NewSuspender returns a suspend-and-resume controller.
func NewSuspender(e *engine.Engine, pressure func() bool, strategy engine.SuspendStrategy) *Suspender {
	return &Suspender{Engine: e, Pressure: pressure, Strategy: strategy, managed: make(map[int64]*Managed)}
}

// Manage registers a query as suspendable.
func (s *Suspender) Manage(m *Managed) {
	s.managed[m.Query.ID] = m
	s.ensureStarted()
}

// Suspends and Resumes report action counts.
func (s *Suspender) Suspends() int64 { return s.suspends }

// Resumes reports how many resumes the controller has issued.
func (s *Suspender) Resumes() int64 { return s.resumes }

func (s *Suspender) ensureStarted() {
	if s.started {
		return
	}
	s.started = true
	every := s.CheckEvery
	if every <= 0 {
		every = 250 * sim.Millisecond
	}
	s.Engine.Sim().Every(every, func() bool {
		s.sweep()
		return true
	})
}

func (s *Suspender) sweep() {
	pressure := s.Pressure()
	resumed := 0
	maxResume := s.MaxConcurrentResume
	if maxResume <= 0 {
		maxResume = 1
	}
	s.sweepIDs = managedIDs(s.managed, s.sweepIDs)
	for _, id := range s.sweepIDs {
		q := s.Engine.Get(id)
		if q == nil || q.State().Terminal() {
			delete(s.managed, id)
			continue
		}
		switch {
		case pressure && q.State() == engine.StateRunning:
			if s.SkipIfRemainingUnder > 0 && s.Remaining != nil {
				if rem, ok := s.Remaining(id); ok && rem < s.SkipIfRemainingUnder {
					continue // nearly done: let it finish
				}
			}
			if err := s.Engine.Suspend(id, s.Strategy); err == nil {
				s.suspends++
			}
		case !pressure && q.State() == engine.StateSuspended && resumed < maxResume:
			if err := s.Engine.Resume(id); err == nil {
				s.resumes++
				resumed++
			}
		}
	}
}
