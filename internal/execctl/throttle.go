package execctl

import (
	"math"

	"dbwlm/internal/engine"
	"dbwlm/internal/learn"
	"dbwlm/internal/obsv"
	"dbwlm/internal/sim"
)

// AmountController computes the amount of throttling (a sleep fraction in
// [0, 1)) from an observed production-performance signal. Implementations
// are the three controller designs of the throttling literature: the
// Proportional-Integral controller of Parekh et al. [64], and the simple
// step and black-box model controllers of Powley et al. [65][66].
type AmountController interface {
	Name() string
	// Update consumes the latest measurement of the protected (production)
	// class's performance degradation — observed/baseline, 1 means no
	// degradation — and returns the new throttle fraction for the managed
	// work.
	Update(perfRatio float64) float64
}

// PIController is the classic discrete PI loop of Parekh et al.: the error
// is the gap between the performance-degradation target and the observed
// ratio, and the control output (sleep fraction) accumulates the integral
// term. Parekh et al. assume an approximately linear relationship between
// throttle amount and production performance, which the engine's
// proportional-share model satisfies.
type PIController struct {
	// Target is the minimum acceptable perfRatio (for example 0.95: the
	// production class must keep 95% of baseline performance).
	Target float64
	// Kp and Ki are the proportional and integral gains (defaults 0.5, 0.3).
	Kp, Ki float64

	integral float64
	output   float64
}

// Name implements AmountController.
func (c *PIController) Name() string { return "pi" }

// Update implements AmountController.
func (c *PIController) Update(perfRatio float64) float64 {
	kp, ki := c.Kp, c.Ki
	if kp == 0 {
		kp = 0.5
	}
	if ki == 0 {
		ki = 0.3
	}
	// Positive error = production below target = throttle more.
	err := c.Target - perfRatio
	c.integral += err
	// Anti-windup: clamp the integral so output can recover.
	if c.integral > 3 {
		c.integral = 3
	}
	if c.integral < -3 {
		c.integral = -3
	}
	c.output = kp*err + ki*c.integral
	if c.output < 0 {
		c.output = 0
	}
	if c.output > 0.95 {
		c.output = 0.95
	}
	return c.output
}

// StepController is Powley et al.'s "simple controller": a diminishing step
// function that raises the throttle while the goal is violated and lowers it
// when met, halving the step on every direction change.
type StepController struct {
	// Target as in PIController.
	Target float64
	// InitialStep is the first adjustment (default 0.2).
	InitialStep float64
	// MinStep bounds the decay (default 0.01).
	MinStep float64

	step    float64
	lastDir int
	output  float64
}

// Name implements AmountController.
func (c *StepController) Name() string { return "step" }

// Update implements AmountController.
func (c *StepController) Update(perfRatio float64) float64 {
	if c.step == 0 {
		c.step = c.InitialStep
		if c.step == 0 {
			c.step = 0.2
		}
	}
	minStep := c.MinStep
	if minStep == 0 {
		minStep = 0.01
	}
	dir := -1
	if perfRatio < c.Target {
		dir = +1 // violated: throttle more
	}
	if c.lastDir != 0 && dir != c.lastDir {
		c.step /= 2
		if c.step < minStep {
			c.step = minStep
		}
	}
	c.lastDir = dir
	c.output += float64(dir) * c.step
	if c.output < 0 {
		c.output = 0
	}
	if c.output > 0.95 {
		c.output = 0.95
	}
	return c.output
}

// BlackBoxController is Powley et al.'s model-based controller: it fits a
// linear model perfRatio = a + b·throttle from observed (throttle, ratio)
// pairs and jumps straight to the throttle predicted to achieve the target.
// Until enough observations exist it behaves like a step controller.
type BlackBoxController struct {
	Target float64
	// MinSamples before the model engages (default 4).
	MinSamples int

	warmup  StepController
	samples []learn.RegSample
	output  float64
}

// Name implements AmountController.
func (c *BlackBoxController) Name() string { return "black-box" }

// Update implements AmountController.
func (c *BlackBoxController) Update(perfRatio float64) float64 {
	c.samples = append(c.samples, learn.RegSample{Features: []float64{c.output}, Value: perfRatio})
	const maxSamples = 64
	if len(c.samples) > maxSamples {
		c.samples = c.samples[1:]
	}
	min := c.MinSamples
	if min <= 0 {
		min = 4
	}
	if len(c.samples) < min {
		c.warmup.Target = c.Target
		c.output = c.warmup.Update(perfRatio)
		return c.output
	}
	lr := learn.TrainLinReg(c.samples)
	coef := lr.Coefficients()
	a, b := coef[0], coef[1]
	if math.Abs(b) < 1e-6 {
		// Throttle has no observable effect yet; probe upward gently.
		c.output = math.Min(0.95, c.output+0.05)
		return c.output
	}
	// Solve target = a + b·u for u.
	u := (c.Target - a) / b
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return c.output
	}
	if u < 0 {
		u = 0
	}
	if u > 0.95 {
		u = 0.95
	}
	c.output = u
	return c.output
}

// ThrottleMethod is how a computed amount of throttling is imposed on a
// running request (Powley et al.): constant throttling spreads many short
// pauses evenly across the run; interrupt throttling takes one contiguous
// pause whose length is set by the amount.
type ThrottleMethod int

// Throttle methods.
const (
	MethodConstant ThrottleMethod = iota
	MethodInterrupt
)

// String names the method.
func (m ThrottleMethod) String() string {
	if m == MethodConstant {
		return "constant"
	}
	return "interrupt"
}

// Throttler closes the loop: it measures the protected class's performance
// every period, asks the AmountController for the sleep fraction, and
// applies it to all managed queries with the configured method.
type Throttler struct {
	Engine *engine.Engine
	// PerfRatio measures the protected class's current performance over its
	// baseline (1 = unimpaired).
	PerfRatio func() float64
	// Controller computes the amount of throttling.
	Controller AmountController
	// Method selects constant or interrupt throttling.
	Method ThrottleMethod
	// Period is the control interval (default 1s).
	Period sim.Duration
	// InterruptWindow is the horizon over which an interrupt pause is sized
	// (default 10s): pause length = amount × window.
	InterruptWindow sim.Duration
	// Flight, when non-nil, records throttle-amount changes
	// (KindCtlAction, reason throttle, Value = new sleep fraction).
	Flight *obsv.Recorder

	managed  map[int64]*Managed
	sweepIDs []int64
	amount   float64
	started  bool
	// nextPauseAt tracks when each query's next interrupt pause may begin
	// (one pause per window, so pause and free-run alternate).
	nextPauseAt map[int64]sim.Time
}

// NewThrottler builds the loop; call Manage for each query to throttle.
func NewThrottler(e *engine.Engine, perf func() float64, ctrl AmountController, method ThrottleMethod) *Throttler {
	return &Throttler{
		Engine: e, PerfRatio: perf, Controller: ctrl, Method: method,
		managed:     make(map[int64]*Managed),
		nextPauseAt: make(map[int64]sim.Time),
	}
}

// Manage registers a query for throttling.
func (t *Throttler) Manage(m *Managed) {
	t.managed[m.Query.ID] = m
	t.ensureStarted()
}

// Amount reports the current sleep fraction.
func (t *Throttler) Amount() float64 { return t.amount }

func (t *Throttler) ensureStarted() {
	if t.started {
		return
	}
	t.started = true
	period := t.Period
	if period <= 0 {
		period = sim.Second
	}
	t.Engine.Sim().Every(period, func() bool {
		t.step()
		return true
	})
}

func (t *Throttler) step() {
	prev := t.amount
	t.amount = t.Controller.Update(t.PerfRatio())
	now := t.Engine.Now()
	if t.Flight != nil && t.amount != prev {
		t.Flight.Record(obsv.Event{At: int64(now) * 1000,
			Kind: obsv.KindCtlAction, Reason: obsv.ReasonThrottle,
			Verdict: obsv.NoVerdict, Class: obsv.NoClass, Value: t.amount,
			Aux: prev})
	}
	window := t.InterruptWindow
	if window <= 0 {
		window = 10 * sim.Second
	}
	t.sweepIDs = managedIDs(t.managed, t.sweepIDs)
	for _, id := range t.sweepIDs {
		q := t.Engine.Get(id)
		if q == nil || q.State().Terminal() {
			delete(t.managed, id)
			delete(t.nextPauseAt, id)
			continue
		}
		switch t.Method {
		case MethodConstant:
			_ = t.Engine.SetThrottle(id, t.amount)
		case MethodInterrupt:
			if now < t.nextPauseAt[id] {
				continue // current pause/run cycle still in progress
			}
			if t.amount <= 0.01 {
				_ = t.Engine.SetThrottle(id, 0)
				continue
			}
			// One contiguous pause of amount × window, then a free run for
			// the rest of the window — pause and run alternate so the duty
			// cycle equals the amount.
			pause := sim.Duration(float64(window) * t.amount)
			t.nextPauseAt[id] = now.Add(window)
			_ = t.Engine.SetThrottle(id, 0.95)
			id := id
			t.Engine.Sim().Schedule(pause, func() {
				if q := t.Engine.Get(id); q != nil && !q.State().Terminal() {
					_ = t.Engine.SetThrottle(id, 0)
				}
			})
		}
	}
}
