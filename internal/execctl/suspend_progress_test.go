package execctl

import (
	"testing"

	"dbwlm/internal/engine"
	"dbwlm/internal/progress"
	"dbwlm/internal/sim"
)

func TestSuspenderSkipsNearlyDoneQueries(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 4, IOMBps: 1000})
	tracker := progress.NewTracker(e, 100*sim.Millisecond)

	pressure := false
	sp := NewSuspender(e, func() bool { return pressure }, engine.SuspendGoBack)
	sp.SkipIfRemainingUnder = 10
	sp.Remaining = func(id int64) (float64, bool) {
		est, ok := tracker.Estimate(id)
		if !ok || !est.Confident {
			return 0, false
		}
		return est.RemainingSeconds, true
	}

	// Two queries: one nearly done (2s left of 20), one fresh (100s).
	almostDone := e.Submit(engine.QuerySpec{CPUWork: 5, Parallelism: 1}, 1, nil)
	fresh := e.Submit(engine.QuerySpec{CPUWork: 200, Parallelism: 1}, 1, nil)
	sp.Manage(&Managed{Query: almostDone})
	sp.Manage(&Managed{Query: fresh})

	// Let both run and the tracker calibrate; each gets ~2 cores... with
	// parallelism 1 each runs at 1 core. After 4s, almostDone has ~1s left.
	s.Run(sim.Time(4 * sim.Second))
	pressure = true
	s.Run(sim.Time(6 * sim.Second))

	if fresh.State() != engine.StateSuspended {
		t.Fatalf("fresh query should be suspended, state=%v", fresh.State())
	}
	if almostDone.State() == engine.StateSuspended {
		t.Fatal("nearly-done query was suspended despite the progress indicator")
	}
	s.Run(sim.Time(10 * sim.Second))
	if almostDone.State() != engine.StateDone {
		t.Fatalf("nearly-done query did not finish: %v", almostDone.State())
	}
}

func TestSuspenderWithoutProgressIndicatorSuspendsAll(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 4, IOMBps: 1000})
	sp := NewSuspender(e, func() bool { return true }, engine.SuspendGoBack)
	q := e.Submit(engine.QuerySpec{CPUWork: 5, Parallelism: 1}, 1, nil)
	sp.Manage(&Managed{Query: q})
	s.Run(sim.Time(sim.Second))
	if q.State() != engine.StateSuspended {
		t.Fatalf("state = %v, want suspended (no grace configured)", q.State())
	}
}
