package execctl

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/engine"
	"dbwlm/internal/metrics"
	"dbwlm/internal/sim"
)

func newEng(cfg engine.Config) (*sim.Simulator, *engine.Engine) {
	s := sim.New(1)
	return s, engine.New(s, cfg)
}

func TestAgerDemotesOnElapsed(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	a := NewAger(e, []float64{16, 4, 1}, []float64{1, 3})
	a.Events = metrics.NewRecorder(0)
	q := e.Submit(engine.QuerySpec{CPUWork: 100, Parallelism: 1}, 1, nil)
	m := &Managed{Query: q, Class: "bi"}
	a.Manage(m)
	if q.Weight != 16 {
		t.Fatalf("initial weight = %v, want top tier 16", q.Weight)
	}
	s.Run(sim.Time(2 * sim.Second))
	if m.Tier != 1 || q.Weight != 4 {
		t.Fatalf("after 2s: tier=%d weight=%v, want tier 1 weight 4", m.Tier, q.Weight)
	}
	s.Run(sim.Time(4 * sim.Second))
	if m.Tier != 2 || q.Weight != 1 {
		t.Fatalf("after 4s: tier=%d weight=%v, want tier 2 weight 1", m.Tier, q.Weight)
	}
	// No demotion past the bottom tier.
	s.Run(sim.Time(10 * sim.Second))
	if m.Tier != 2 {
		t.Fatal("demoted past bottom tier")
	}
	if a.Demotions() != 2 {
		t.Fatalf("demotions = %d", a.Demotions())
	}
	if a.Events.CountKind(metrics.EventThresholdViolation) != 2 {
		t.Fatal("violations not recorded")
	}
}

func TestAgerRowsTrigger(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	a := NewAger(e, []float64{8, 1}, nil)
	a.RowsTrigger = 100
	q := e.Submit(engine.QuerySpec{CPUWork: 10, Rows: 10000, Parallelism: 1}, 1, nil)
	a.Manage(&Managed{Query: q})
	s.Run(sim.Time(2 * sim.Second)) // ~20% done -> 2000 rows > 100
	if q.Weight != 1 {
		t.Fatalf("rows trigger did not demote: weight=%v", q.Weight)
	}
}

func TestAgerForgetsFinishedQueries(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	a := NewAger(e, []float64{8, 1}, []float64{100})
	q := e.Submit(engine.QuerySpec{CPUWork: 0.1, Parallelism: 1}, 1, nil)
	a.Manage(&Managed{Query: q})
	s.Run(sim.Time(5 * sim.Second))
	if len(a.managed) != 0 {
		t.Fatal("finished query still managed")
	}
}

func TestEconomicReallocatorShiftsWeights(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 4, IOMBps: 1e9})
	gold := e.Submit(engine.QuerySpec{CPUWork: 1000, Parallelism: 4}, 1, nil)
	bronze := e.Submit(engine.QuerySpec{CPUWork: 1000, Parallelism: 4}, 1, nil)
	att := map[string]float64{"gold": 0.3, "bronze": 5.0} // gold suffering
	r := &EconomicReallocator{
		Engine: e,
		Classes: []ClassImportance{
			{Name: "gold", Importance: 10},
			{Name: "bronze", Importance: 1},
		},
		Attainment: func(c string) float64 { return att[c] },
		QueriesOf: func(c string) []int64 {
			if c == "gold" {
				return []int64{gold.ID}
			}
			return []int64{bronze.ID}
		},
		Period: sim.Second,
	}
	r.Start()
	s.Run(sim.Time(3 * sim.Second))
	if r.Rounds() < 2 {
		t.Fatalf("rounds = %d", r.Rounds())
	}
	w := r.Weights()
	if w["gold"] <= w["bronze"] {
		t.Fatalf("suffering important class should outbid: %v", w)
	}
	if gold.Weight <= bronze.Weight {
		t.Fatalf("weights not applied to queries: gold=%v bronze=%v", gold.Weight, bronze.Weight)
	}
	// Once gold recovers, its bid collapses to the floor and weights converge.
	att["gold"] = 5.0
	s.Run(sim.Time(6 * sim.Second))
	w = r.Weights()
	ratio := w["gold"] / w["bronze"]
	// Both at floor bids: ratio equals importance ratio (10), down from the
	// crisis allocation which was far higher.
	if ratio > 15 {
		t.Fatalf("gold kept crisis allocation after recovery: %v", w)
	}
}

func TestKillerKillsLongRunners(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	k := NewKiller(e, 2)
	k.Events = metrics.NewRecorder(0)
	var killed []int64
	var resubmits []bool
	k.OnKill = func(id int64, resubmit bool) {
		killed = append(killed, id)
		resubmits = append(resubmits, resubmit)
	}
	long := e.Submit(engine.QuerySpec{CPUWork: 100, Parallelism: 1}, 1, nil)
	short := e.Submit(engine.QuerySpec{CPUWork: 0.5, Parallelism: 1}, 1, nil)
	k.Manage(&Managed{Query: long})
	k.Manage(&Managed{Query: short})
	s.Run(sim.Time(10 * sim.Second))
	if len(killed) != 1 || killed[0] != long.ID {
		t.Fatalf("killed = %v, want only the long query %d", killed, long.ID)
	}
	if resubmits[0] {
		t.Fatal("resubmit not requested but reported")
	}
	if k.Kills() != 1 {
		t.Fatal("kill counter wrong")
	}
	if k.Events.CountKind(metrics.EventControlAction) != 1 {
		t.Fatal("kill event not recorded")
	}
}

func TestKillerMaxRows(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	k := NewKiller(e, 0)
	k.MaxRows = 1000
	q := e.Submit(engine.QuerySpec{CPUWork: 10, Rows: 1_000_000, Parallelism: 1}, 1, nil)
	k.Manage(&Managed{Query: q})
	s.Run(sim.Time(5 * sim.Second))
	if q.State() != engine.StateKilled {
		t.Fatalf("row-limit kill did not fire: %v", q.State())
	}
}

func TestOptimalSuspendPlanExtremes(t *testing.T) {
	ops := []OpSuspendCost{
		{StateMB: 100, RedoSeconds: 10}, // dump: 1s+1s=2 vs goback 10 -> dump
		{StateMB: 1000, RedoSeconds: 1}, // dump: 10+10=20 vs goback 1 -> goback
	}
	// Generous suspend budget: per-op optima.
	p := OptimalSuspendPlan(ops, 100, 1e9)
	if p.Choices[0] != ChoiceDumpState || p.Choices[1] != ChoiceGoBack {
		t.Fatalf("choices = %v", p.Choices)
	}
	if math.Abs(p.SuspendSeconds-1) > 1e-9 || math.Abs(p.ResumeSeconds-2) > 1e-9 {
		t.Fatalf("costs = %v/%v", p.SuspendSeconds, p.ResumeSeconds)
	}
	// Tight suspend budget forces GoBack everywhere.
	p = OptimalSuspendPlan(ops, 100, 0.5)
	if p.Choices[0] != ChoiceGoBack || p.Choices[1] != ChoiceGoBack {
		t.Fatalf("tight budget choices = %v", p.Choices)
	}
	if p.SuspendSeconds != 0 {
		t.Fatalf("goback suspend cost = %v", p.SuspendSeconds)
	}
}

func TestOptimalSuspendPlanMatchesGreedy(t *testing.T) {
	// Property: for random small instances, exhaustive (n<=20) result never
	// exceeds the all-Dump or all-GoBack strategies in total cost, and
	// respects the suspend budget when feasible.
	f := func(states [6]uint8, redos [6]uint8, budgetRaw uint8) bool {
		ops := make([]OpSuspendCost, 6)
		var allDumpSus float64
		for i := range ops {
			ops[i] = OpSuspendCost{StateMB: float64(states[i]%100) + 1, RedoSeconds: float64(redos[i]%20) + 0.1}
			allDumpSus += ops[i].StateMB / 10
		}
		budget := float64(budgetRaw%50) / 4
		p := OptimalSuspendPlan(ops, 10, budget)
		// Budget respected when feasible (all-GoBack always feasible at 0).
		if p.SuspendSeconds > budget+1e-9 && p.SuspendSeconds != 0 {
			return false
		}
		// Never worse than all-GoBack.
		var allGo float64
		for _, op := range ops {
			allGo += op.RedoSeconds
		}
		if p.Total() > allGo+1e-9 {
			return false
		}
		// Never worse than all-Dump when all-Dump is feasible.
		if allDumpSus <= budget {
			var allDump float64
			for _, op := range ops {
				allDump += 2 * op.StateMB / 10
			}
			if p.Total() > allDump+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalSuspendPlanGreedyLargeN(t *testing.T) {
	ops := make([]OpSuspendCost, 30) // > 20 forces the greedy path
	for i := range ops {
		ops[i] = OpSuspendCost{StateMB: float64(10 * (i + 1)), RedoSeconds: float64(i + 1)}
	}
	p := OptimalSuspendPlan(ops, 100, 5)
	if p.SuspendSeconds > 5+1e-9 {
		t.Fatalf("greedy exceeded budget: %v", p.SuspendSeconds)
	}
	if len(p.Choices) != 30 {
		t.Fatal("wrong choice count")
	}
}

func TestSuspenderCycle(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 2, IOMBps: 1000, MemoryMB: 4096})
	pressure := false
	sp := NewSuspender(e, func() bool { return pressure }, engine.SuspendGoBack)
	q := e.Submit(engine.QuerySpec{CPUWork: 20, MemMB: 500, Parallelism: 1}, 1, nil)
	sp.Manage(&Managed{Query: q})
	s.Run(sim.Time(2 * sim.Second))
	if q.State() != engine.StateRunning {
		t.Fatal("no pressure but not running")
	}
	pressure = true
	s.Run(sim.Time(3 * sim.Second))
	if q.State() != engine.StateSuspended {
		t.Fatalf("under pressure state = %v, want suspended", q.State())
	}
	if st := e.StatsNow(); st.MemDemandMB != 0 {
		t.Fatal("suspended query still holds memory")
	}
	pressure = false
	s.Run(sim.Time(4 * sim.Second))
	if q.State() != engine.StateRunning {
		t.Fatalf("pressure cleared but state = %v", q.State())
	}
	if sp.Suspends() != 1 || sp.Resumes() != 1 {
		t.Fatalf("suspends=%d resumes=%d", sp.Suspends(), sp.Resumes())
	}
	s.Run(sim.Time(60 * sim.Second))
	if q.State() != engine.StateDone {
		t.Fatalf("query never finished: %v", q.State())
	}
}

func TestPIControllerConverges(t *testing.T) {
	// Plant: perfRatio = 0.5 + 0.5*throttle (linear, as Parekh assumes).
	c := &PIController{Target: 0.9}
	u := 0.0
	for i := 0; i < 100; i++ {
		perf := 0.5 + 0.5*u
		u = c.Update(perf)
	}
	finalPerf := 0.5 + 0.5*u
	if math.Abs(finalPerf-0.9) > 0.05 {
		t.Fatalf("PI converged to perf %v, want ~0.9 (u=%v)", finalPerf, u)
	}
}

func TestPIControllerBacksOff(t *testing.T) {
	c := &PIController{Target: 0.5}
	// Production perf far above target: throttle must go to zero.
	u := 0.5
	for i := 0; i < 50; i++ {
		u = c.Update(1.0)
	}
	if u != 0 {
		t.Fatalf("PI did not release throttle: %v", u)
	}
}

func TestStepControllerDiminishes(t *testing.T) {
	c := &StepController{Target: 0.9, InitialStep: 0.2}
	u1 := c.Update(0.5) // violated: up 0.2
	if math.Abs(u1-0.2) > 1e-9 {
		t.Fatalf("first step = %v", u1)
	}
	u2 := c.Update(0.95) // met: direction change, step halves to 0.1, down
	if math.Abs(u2-0.1) > 1e-9 {
		t.Fatalf("second step = %v, want 0.1", u2)
	}
	u3 := c.Update(0.5) // violated again: halves to 0.05, up
	if math.Abs(u3-0.15) > 1e-9 {
		t.Fatalf("third step = %v, want 0.15", u3)
	}
	// Output stays in [0, 0.95].
	for i := 0; i < 100; i++ {
		u := c.Update(0.1)
		if u < 0 || u > 0.95 {
			t.Fatalf("step output out of range: %v", u)
		}
	}
}

func TestBlackBoxJumpsToModelSolution(t *testing.T) {
	// Plant: perf = 0.6 + 0.4*u → target 0.9 needs u = 0.75.
	c := &BlackBoxController{Target: 0.9, MinSamples: 4}
	u := 0.0
	for i := 0; i < 30; i++ {
		perf := 0.6 + 0.4*u
		u = c.Update(perf)
	}
	if math.Abs(u-0.75) > 0.05 {
		t.Fatalf("black-box settled at u=%v, want ~0.75", u)
	}
}

func TestThrottlerConstantProtectsProduction(t *testing.T) {
	// Production OLTP stream shares a 2-core box with a monster query.
	// Unthrottled, production gets ~half the CPU; the throttler must give
	// it back ~90%.
	s, e := newEng(engine.Config{Cores: 2, IOMBps: 1e9})
	monster := e.Submit(engine.QuerySpec{CPUWork: 1e6, Parallelism: 2}, 1, nil)
	prod := e.Submit(engine.QuerySpec{CPUWork: 1e6, Parallelism: 2}, 1, nil)

	var lastProd float64
	perf := func() float64 {
		// Production performance ratio: measured CPU progress rate over the
		// baseline rate it would get alone (2 cores).
		cur := prod.CPUDone()
		rate := cur - lastProd
		lastProd = cur
		return rate / 2.0 // per 1s control period at 2 cores
	}
	th := NewThrottler(e, perf, &PIController{Target: 0.9}, MethodConstant)
	th.Manage(&Managed{Query: monster})
	s.Run(sim.Time(60 * sim.Second))
	if th.Amount() < 0.5 {
		t.Fatalf("throttle amount = %v, expected substantial throttling", th.Amount())
	}
	// Production rate at the end should be near 90% of 2 cores.
	before := prod.CPUDone()
	s.Run(sim.Time(70 * sim.Second))
	rate := (prod.CPUDone() - before) / 10
	if rate < 1.6 {
		t.Fatalf("production rate = %v cores, want >= 1.6 under throttling", rate)
	}
}

func TestThrottlerInterruptPausesAndReleases(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 1, IOMBps: 1e9})
	q := e.Submit(engine.QuerySpec{CPUWork: 1e6, Parallelism: 1}, 1, nil)
	fixed := fixedController{amount: 0.5}
	th := NewThrottler(e, func() float64 { return 1 }, fixed, MethodInterrupt)
	th.InterruptWindow = 4 * sim.Second
	th.Period = sim.Second
	th.Manage(&Managed{Query: q})
	s.Run(sim.Time(20 * sim.Second))
	// With 50% interrupt throttling the query should have made roughly half
	// progress: pauses of 2s alternate with free runs.
	done := q.CPUDone()
	if done < 6 || done > 16 {
		t.Fatalf("interrupt-throttled progress = %v over 20s, want roughly half", done)
	}
}

type fixedController struct{ amount float64 }

func (f fixedController) Name() string           { return "fixed" }
func (f fixedController) Update(float64) float64 { return f.amount }

func TestThrottleMethodString(t *testing.T) {
	if MethodConstant.String() != "constant" || MethodInterrupt.String() != "interrupt" {
		t.Fatal("method names wrong")
	}
}

func TestKillerMaxCPUSeconds(t *testing.T) {
	s, e := newEng(engine.Config{Cores: 4, IOMBps: 1e9})
	k := NewKiller(e, 0)
	k.MaxCPUSeconds = 2
	hog := e.Submit(engine.QuerySpec{CPUWork: 100, Parallelism: 4}, 1, nil)
	light := e.Submit(engine.QuerySpec{CPUWork: 1, IOWork: 100, Parallelism: 1}, 1, nil)
	k.Manage(&Managed{Query: hog})
	k.Manage(&Managed{Query: light})
	s.Run(sim.Time(5 * sim.Second))
	if hog.State() != engine.StateKilled {
		t.Fatalf("CPU hog not killed: %v (cpu=%v)", hog.State(), hog.CPUDone())
	}
	if light.State() == engine.StateKilled {
		t.Fatal("light query killed despite low CPU consumption")
	}
}
