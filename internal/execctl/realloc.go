package execctl

import (
	"math"
	"sort"

	"dbwlm/internal/engine"
	"dbwlm/internal/scheduling"
	"dbwlm/internal/sim"
)

// ClassImportance describes a service class to the economic reallocator.
type ClassImportance struct {
	Name       string
	Importance float64
}

// EconomicReallocator implements policy-driven dynamic resource allocation
// (Table 3, row 2; Boughton et al. [4], Zhang et al. CASCON'08 [78]): every
// period each class "bids" for resources in proportion to its business
// importance times its unmet utility, and running queries' weights are set
// from the auction result. Classes meeting their goals bid little, freeing
// resources for classes in trouble — importance policy enforced by an
// economic model rather than fixed priorities.
type EconomicReallocator struct {
	Engine  *engine.Engine
	Classes []ClassImportance
	// Attainment reports a class's current SLO attainment ratio (>= 1 met).
	Attainment func(class string) float64
	// QueriesOf lists the engine queries currently attributed to a class.
	QueriesOf func(class string) []int64
	// Period is the reallocation interval (default 1s).
	Period sim.Duration
	// TotalWeight is the weight budget distributed across classes
	// (default 100).
	TotalWeight float64

	lastWeights map[string]float64
	rounds      int64
	started     bool
}

// Start begins the auction loop.
func (r *EconomicReallocator) Start() {
	if r.started {
		return
	}
	r.started = true
	period := r.Period
	if period <= 0 {
		period = sim.Second
	}
	r.lastWeights = make(map[string]float64)
	r.Engine.Sim().Every(period, func() bool {
		r.reallocate()
		return true
	})
}

// Weights reports the most recent auction outcome per class.
func (r *EconomicReallocator) Weights() map[string]float64 { return r.lastWeights }

// WeightFor returns the per-query weight a newly dispatched query of the
// class should run at, given the class's current population — so arrivals
// between auctions inherit the auction outcome instead of a default weight.
func (r *EconomicReallocator) WeightFor(class string, population int) float64 {
	w := r.lastWeights[class]
	if w <= 0 {
		return 1
	}
	if population < 1 {
		population = 1
	}
	per := w / float64(population)
	if per < 0.01 {
		per = 0.01
	}
	return per
}

// Rounds reports how many auctions have run.
func (r *EconomicReallocator) Rounds() int64 { return r.rounds }

func (r *EconomicReallocator) reallocate() {
	r.rounds++
	total := r.TotalWeight
	if total <= 0 {
		total = 100
	}
	// Bids: importance × (1 − utility(attainment)), floored so that a class
	// meeting its goal retains a trickle.
	bids := make(map[string]float64, len(r.Classes))
	var sum float64
	for _, c := range r.Classes {
		att := r.Attainment(c.Name)
		bid := c.Importance * (1 - scheduling.Utility(att))
		if bid < 0.02*c.Importance {
			bid = 0.02 * c.Importance
		}
		bids[c.Name] = bid
		sum += bid
	}
	if sum <= 0 {
		return
	}
	// Deterministic application order.
	names := make([]string, 0, len(bids))
	for n := range bids {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		w := total * bids[name] / sum
		r.lastWeights[name] = w
		ids := r.QueriesOf(name)
		if len(ids) == 0 {
			continue
		}
		per := math.Max(0.01, w/float64(len(ids)))
		for _, id := range ids {
			_ = r.Engine.SetWeight(id, per)
		}
	}
}
