// Package execctl implements the execution-control class of the taxonomy
// (Section 3.4, Table 3): query reprioritization — priority aging and
// policy-driven dynamic resource allocation (economic models, Boughton et
// al. [4], Zhang et al. [78]); query cancellation — kill and
// kill-and-resubmit (Krompass et al. [39]); and request suspension — PI,
// step, and black-box throttling controllers (Parekh et al. [64], Powley et
// al. [65][66]) and query suspend-and-resume with optimal suspend-plan
// selection (Chandramouli et al. [10]).
package execctl

import (
	"slices"

	"dbwlm/internal/engine"
	"dbwlm/internal/metrics"
	"dbwlm/internal/obsv"
	"dbwlm/internal/sim"
)

// Managed couples an engine query with the workload-manager context the
// controllers act on.
type Managed struct {
	Query *engine.Query
	Class string
	// Tier is the current priority-aging tier (0 = top).
	Tier int
	// IdealSeconds is the query's stand-alone runtime (velocity basis).
	IdealSeconds float64
}

// managedIDs returns the controller's managed query IDs in ascending order.
// Controller sweeps must not iterate the managed map directly: sweep actions
// (kill, suspend, resume, throttle) are order-sensitive, so a map-order walk
// would make runs nondeterministic.
func managedIDs(m map[int64]*Managed, scratch []int64) []int64 {
	ids := scratch[:0]
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Ager implements priority aging (Table 3, row 1; DB2 service subclasses):
// when a managed query's elapsed time or returned rows exceed the trigger
// for its current tier, the query is remapped to the next lower tier and its
// resource-access weight reduced.
type Ager struct {
	Engine *engine.Engine
	// Weights is the tier ladder, highest first (for example 16, 4, 1).
	Weights []float64
	// DemoteAfterSeconds[i] is the elapsed-time trigger from tier i to
	// tier i+1 (cumulative since submission).
	DemoteAfterSeconds []float64
	// RowsTrigger demotes one tier each time rows returned cross
	// (tier+1) × RowsTrigger (0 disables).
	RowsTrigger int64
	// CheckEvery is the monitor period (default 500ms).
	CheckEvery sim.Duration
	// Events, when non-nil, records threshold violations.
	Events *metrics.Recorder
	// Flight, when non-nil, records each demotion in the flight recorder
	// (KindCtlAction, reason reprioritize, Value = new tier).
	Flight *obsv.Recorder

	managed   map[int64]*Managed
	sweepIDs  []int64
	demotions int64
	started   bool
}

// NewAger returns an aging controller over the engine.
func NewAger(e *engine.Engine, weights []float64, demoteAfter []float64) *Ager {
	return &Ager{
		Engine:             e,
		Weights:            weights,
		DemoteAfterSeconds: demoteAfter,
		managed:            make(map[int64]*Managed),
	}
}

// Manage registers a query with the ager at tier 0 and applies the top-tier
// weight.
func (a *Ager) Manage(m *Managed) {
	a.managed[m.Query.ID] = m
	m.Tier = 0
	if len(a.Weights) > 0 {
		_ = a.Engine.SetWeight(m.Query.ID, a.Weights[0])
	}
	a.ensureStarted()
}

// Demotions reports how many tier demotions have occurred.
func (a *Ager) Demotions() int64 { return a.demotions }

func (a *Ager) ensureStarted() {
	if a.started {
		return
	}
	a.started = true
	every := a.CheckEvery
	if every <= 0 {
		every = 500 * sim.Millisecond
	}
	a.Engine.Sim().Every(every, func() bool {
		a.sweep()
		return true
	})
}

func (a *Ager) sweep() {
	now := a.Engine.Now()
	a.sweepIDs = managedIDs(a.managed, a.sweepIDs)
	for _, id := range a.sweepIDs {
		m := a.managed[id]
		q := a.Engine.Get(id)
		if q == nil || q.State().Terminal() {
			delete(a.managed, id)
			continue
		}
		if m.Tier >= len(a.Weights)-1 {
			continue // already at the bottom tier
		}
		elapsed := now.Sub(q.SubmittedAt()).Seconds()
		demote := false
		what := ""
		if m.Tier < len(a.DemoteAfterSeconds) && elapsed > a.DemoteAfterSeconds[m.Tier] {
			demote = true
			what = "ElapsedTime"
		}
		if a.RowsTrigger > 0 && q.RowsReturned() > int64(m.Tier+1)*a.RowsTrigger {
			demote = true
			what = "RowsReturned"
		}
		if !demote {
			continue
		}
		m.Tier++
		a.demotions++
		_ = a.Engine.SetWeight(id, a.Weights[m.Tier])
		if a.Events != nil {
			a.Events.Record(metrics.Event{
				Kind: metrics.EventThresholdViolation, At: now, Query: id,
				What: what, Detail: "priority aging demotion", Value: float64(m.Tier),
			})
		}
		if a.Flight != nil {
			a.Flight.Record(obsv.Event{At: int64(now) * 1000, QID: id,
				Kind: obsv.KindCtlAction, Reason: obsv.ReasonReprioritize,
				Verdict: obsv.NoVerdict, Class: obsv.NoClass,
				Value: float64(m.Tier), Aux: a.Weights[m.Tier]})
		}
	}
}
