package execctl

import (
	"dbwlm/internal/sqlmini"
)

// SuspendCostsFromPlan derives the per-operator suspend-cost model the
// optimal-plan search consumes from a physical plan and the query's current
// progress. Operators that have not started yet carry no state and no redo;
// completed operators' state is already materialized downstream, so only the
// in-flight region matters. The engine charges work in plan post-order, so
// progress maps onto the operator sequence by cumulative cost.
//
// checkpointEvery is the progress-fraction gap between asynchronous
// checkpoints (the engine's QuerySpec.CheckpointEvery); the redo cost of an
// in-flight operator under GoBack is the work done since the last checkpoint,
// bounded by the operator's own elapsed work.
func SuspendCostsFromPlan(plan *sqlmini.Plan, progress, checkpointEvery float64) []OpSuspendCost {
	ops := plan.Operators()
	if len(ops) == 0 {
		return nil
	}
	if checkpointEvery <= 0 {
		checkpointEvery = 0.1
	}
	totalCPU := plan.TotalCPU()
	if totalCPU <= 0 {
		return nil
	}
	// Work completed in CPU-seconds, and the redo window under GoBack.
	doneCPU := progress * totalCPU
	lastCheckpoint := progress - float64(int(progress/checkpointEvery))*checkpointEvery
	redoCPU := lastCheckpoint * totalCPU

	var out []OpSuspendCost
	var cum float64
	for _, op := range ops {
		start := cum
		end := cum + op.EstCPU
		cum = end
		switch {
		case end <= doneCPU-redoCPU:
			// Fully completed before the redo window: its state must still
			// be dumped (it feeds downstream operators) but nothing re-runs.
			out = append(out, OpSuspendCost{StateMB: op.StateMB, RedoSeconds: 0})
		case start >= doneCPU:
			// Not started: nothing to save, nothing to redo.
			out = append(out, OpSuspendCost{})
		default:
			// In flight (or inside the redo window): dumping saves its
			// partial state; GoBack re-executes the overlap of [start, end]
			// with the redo window [doneCPU-redoCPU, doneCPU].
			lo := doneCPU - redoCPU
			if start > lo {
				lo = start
			}
			hi := doneCPU
			if end < hi {
				hi = end
			}
			redo := hi - lo
			if redo < 0 {
				redo = 0
			}
			frac := 0.0
			if op.EstCPU > 0 {
				done := doneCPU - start
				if done > op.EstCPU {
					done = op.EstCPU
				}
				if done > 0 {
					frac = done / op.EstCPU
				}
			}
			out = append(out, OpSuspendCost{StateMB: op.StateMB * frac, RedoSeconds: redo})
		}
	}
	return out
}
