package execctl

import (
	"dbwlm/internal/engine"
	"dbwlm/internal/metrics"
	"dbwlm/internal/obsv"
	"dbwlm/internal/sim"
)

// Killer implements query cancellation (Table 3, row 3): a managed query
// whose elapsed time or consumed work exceeds its limit is killed, releasing
// its resources immediately. With Resubmit set the kill is reported so the
// workload manager can queue the request again (the "kill-and-resubmit"
// action of Krompass et al. [39]).
type Killer struct {
	Engine *engine.Engine
	// MaxElapsedSeconds kills queries running longer than this (0 disables).
	MaxElapsedSeconds float64
	// MaxRows kills queries returning more rows than this (0 disables).
	MaxRows int64
	// MaxCPUSeconds kills queries that have consumed more CPU than this
	// (0 disables) — the CPU-time exception criterion of Teradata ASM and
	// SQL Server's CPU Threshold Exceeded event.
	MaxCPUSeconds float64
	// Resubmit requests the manager to re-queue killed work.
	Resubmit bool
	// OnKill fires for every kill with the query ID and whether resubmission
	// was requested.
	OnKill func(id int64, resubmit bool)
	// CheckEvery is the monitor period (default 500ms).
	CheckEvery sim.Duration
	// Events, when non-nil, records control actions.
	Events *metrics.Recorder
	// Flight, when non-nil, records each kill in the flight recorder
	// (KindCtlAction, reason kill/kill-resubmit).
	Flight *obsv.Recorder

	managed  map[int64]*Managed
	sweepIDs []int64
	kills    int64
	started  bool
}

// NewKiller returns a cancellation controller.
func NewKiller(e *engine.Engine, maxElapsedSeconds float64) *Killer {
	return &Killer{Engine: e, MaxElapsedSeconds: maxElapsedSeconds, managed: make(map[int64]*Managed)}
}

// Manage registers a query for cancellation monitoring.
func (k *Killer) Manage(m *Managed) {
	k.managed[m.Query.ID] = m
	k.ensureStarted()
}

// Kills reports the number of cancellations performed.
func (k *Killer) Kills() int64 { return k.kills }

func (k *Killer) ensureStarted() {
	if k.started {
		return
	}
	k.started = true
	every := k.CheckEvery
	if every <= 0 {
		every = 500 * sim.Millisecond
	}
	k.Engine.Sim().Every(every, func() bool {
		k.sweep()
		return true
	})
}

func (k *Killer) sweep() {
	now := k.Engine.Now()
	k.sweepIDs = managedIDs(k.managed, k.sweepIDs)
	for _, id := range k.sweepIDs {
		q := k.Engine.Get(id)
		if q == nil || q.State().Terminal() {
			delete(k.managed, id)
			continue
		}
		elapsed := now.Sub(q.SubmittedAt()).Seconds()
		kill := false
		what := ""
		if k.MaxElapsedSeconds > 0 && elapsed > k.MaxElapsedSeconds {
			kill, what = true, "ElapsedTime"
		}
		if k.MaxRows > 0 && q.RowsReturned() > k.MaxRows {
			kill, what = true, "RowsReturned"
		}
		if k.MaxCPUSeconds > 0 && q.CPUDone() > k.MaxCPUSeconds {
			kill, what = true, "CPUTime"
		}
		if !kill {
			continue
		}
		delete(k.managed, id)
		if err := k.Engine.Kill(id); err != nil {
			continue
		}
		k.kills++
		if k.Events != nil {
			k.Events.Record(metrics.Event{
				Kind: metrics.EventControlAction, At: now, Query: id,
				What: "kill", Detail: what, Value: elapsed,
			})
		}
		if k.Flight != nil {
			reason := obsv.ReasonKill
			if k.Resubmit {
				reason = obsv.ReasonKillResubmit
			}
			k.Flight.Record(obsv.Event{At: int64(now) * 1000, QID: id,
				Kind: obsv.KindCtlAction, Reason: reason,
				Verdict: obsv.NoVerdict, Class: obsv.NoClass, Value: elapsed})
		}
		if k.OnKill != nil {
			k.OnKill(id, k.Resubmit)
		}
	}
}
