package execctl

import (
	"testing"

	"dbwlm/internal/sqlmini"
)

func biPlan(t *testing.T) *sqlmini.Plan {
	t.Helper()
	cm := sqlmini.NewCostModel(sqlmini.DefaultCatalog())
	p, err := cm.PlanSQL(`SELECT store_id, SUM(amount) FROM sales_fact
		JOIN store_dim ON sales_fact.store_id = store_dim.id
		GROUP BY store_id ORDER BY store_id`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSuspendCostsFromPlanBoundaries(t *testing.T) {
	plan := biPlan(t)
	n := len(plan.Operators())

	// At zero progress nothing is saved or redone.
	costs := SuspendCostsFromPlan(plan, 0, 0.1)
	if len(costs) != n {
		t.Fatalf("costs = %d ops, want %d", len(costs), n)
	}
	for _, c := range costs {
		if c.StateMB != 0 || c.RedoSeconds != 0 {
			t.Fatalf("zero progress should be free: %+v", c)
		}
	}

	// At exactly a checkpoint boundary there is no redo at all.
	costs = SuspendCostsFromPlan(plan, 0.2, 0.1)
	var redo float64
	for _, c := range costs {
		redo += c.RedoSeconds
	}
	if redo > 1e-9 {
		t.Fatalf("redo at checkpoint boundary = %v, want 0", redo)
	}

	// Mid-interval: redo equals the work since the last checkpoint.
	costs = SuspendCostsFromPlan(plan, 0.25, 0.1)
	redo = 0
	for _, c := range costs {
		redo += c.RedoSeconds
	}
	want := 0.05 * plan.TotalCPU()
	if redo < want*0.9 || redo > want*1.1 {
		t.Fatalf("redo = %v, want ~%v (5%% of total CPU)", redo, want)
	}
}

func TestSuspendCostsStateGrowsWithProgress(t *testing.T) {
	plan := biPlan(t)
	sum := func(progress float64) float64 {
		var s float64
		for _, c := range SuspendCostsFromPlan(plan, progress, 0.1) {
			s += c.StateMB
		}
		return s
	}
	early := sum(0.1)
	late := sum(0.9)
	if late <= early {
		t.Fatalf("dumpable state should grow with progress: %v -> %v", early, late)
	}
	// And never exceeds the plan's total state.
	if late > plan.TotalState()+1e-9 {
		t.Fatalf("state %v exceeds plan total %v", late, plan.TotalState())
	}
}

func TestSuspendCostsFeedOptimizer(t *testing.T) {
	plan := biPlan(t)
	costs := SuspendCostsFromPlan(plan, 0.55, 0.1)
	p := OptimalSuspendPlan(costs, 800, 0.25)
	if p.SuspendSeconds > 0.25+1e-9 {
		t.Fatalf("optimizer violated budget: %v", p.SuspendSeconds)
	}
	if len(p.Choices) != len(costs) {
		t.Fatal("choice count mismatch")
	}
}

func TestSuspendCostsEmptyAndDegenerate(t *testing.T) {
	if got := SuspendCostsFromPlan(&sqlmini.Plan{}, 0.5, 0.1); got != nil {
		t.Fatal("empty plan should return nil")
	}
}
