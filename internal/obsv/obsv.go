// Package obsv is the observability substrate of the live runtime: a
// fixed-size, lock-free flight recorder for per-query lifecycle events and a
// hand-rolled Prometheus text-format writer over the striped recorders of
// internal/metrics. It is the Monitor stage of the paper's Section 5.3
// autonomic (MAPE) workload manager made inspectable: every admission
// decision carries the reason the gate fired, every MAPE iteration records
// what it observed and which action it chose, and the whole trail drains
// through GET /trace and `wlmd -trace-dump` for post-mortems.
//
// The recorder is built to sit on the admission hot path:
//
//   - Disabled (nil *Recorder), every hook is a single pointer-nil branch —
//     zero allocations, zero atomics, no measurable cost.
//   - Enabled, a Record is a per-shard atomic cursor fetch-add plus a fixed
//     number of atomic word stores into a preallocated slot — no locks, no
//     allocation, no unbounded growth. When the ring wraps, the oldest
//     events are overwritten (and counted), never blocking a writer.
//
// Slots are published seqlock-style: a writer zeroes the slot's publish tag,
// stores the event words, then stores the tag last; a drain copies the words
// between two tag reads and discards the copy if the tag moved. Every slot
// field is an atomic word, so concurrent record/drain is exact under the race
// detector, not just in practice.
package obsv

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
)

// Kind classifies a flight-recorder event.
type Kind uint8

// Event kinds: the query lifecycle (admit decision, queue enter, release),
// the MAPE loop's three visible stages, and execution-control actions.
const (
	// KindAny matches every kind in a Filter.
	KindAny Kind = iota
	// KindAdmit is a resolved admission decision — admitted or rejected —
	// with the verdict and the reason the deciding gate fired.
	KindAdmit
	// KindEnqueue marks a request parking in its class wait queue.
	KindEnqueue
	// KindDone marks an admitted grant's release; Value is the service
	// seconds between grant and release.
	KindDone
	// KindMAPEMonitor is one MAPE monitor snapshot (Value = memory
	// pressure, Aux = requests in engine).
	KindMAPEMonitor
	// KindMAPESymptom is one analyzer diagnosis (Reason = symptom,
	// Value = severity).
	KindMAPESymptom
	// KindMAPEAction is one planned action the executor imposed
	// (Reason = action, Value = amount).
	KindMAPEAction
	// KindCtlAction is an execution-control effector firing (throttle,
	// kill, reprioritize, suspend) outside the MAPE loop.
	KindCtlAction

	numKinds
)

var kindNames = [numKinds]string{
	"any", "admit", "enqueue", "done",
	"mape-monitor", "mape-symptom", "mape-action", "ctl-action",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromName resolves a kind name (the /trace?kind= vocabulary).
func KindFromName(name string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return KindAny, false
}

// Reason says which gate, threshold, symptom, or action an event is about —
// the "why" that aggregate counters cannot carry.
type Reason uint8

// Reasons. The first block qualifies admission decisions, the second MAPE
// symptoms, the third control actions.
const (
	ReasonNone Reason = iota
	// ReasonFastPath: admitted on the lock-free fast path, no queueing.
	ReasonFastPath
	// ReasonDrained: admitted from the wait queue at a retry cycle or a
	// slot release (Aux = seconds waited).
	ReasonDrained
	// ReasonCostLimit: rejected, estimated cost over the class's
	// MaxCostTimerons.
	ReasonCostLimit
	// ReasonPredictedBucket: rejected, predicted runtime bucket above the
	// prediction gate's ceiling (Aux = predicted seconds).
	ReasonPredictedBucket
	// ReasonQueueTimeout: rejected, queued longer than MaxQueueDelay
	// (Aux = seconds waited).
	ReasonQueueTimeout
	// ReasonGateFull: enqueued because the class or global MPL was
	// exhausted.
	ReasonGateFull
	// ReasonLowPriorityGate: enqueued because the congestion gate is closed
	// for this priority.
	ReasonLowPriorityGate

	// ReasonSLOViolation, ReasonOverload, ReasonUnderload mirror the
	// analyzer's SymptomKind vocabulary.
	ReasonSLOViolation
	ReasonOverload
	ReasonUnderload

	// Control-action reasons mirror the planner's ActionKind vocabulary
	// plus the threshold effectors of internal/execctl.
	ReasonThrottle
	ReasonSuspend
	ReasonKill
	ReasonKillResubmit
	ReasonReprioritize
	ReasonResume
	ReasonNoAction

	// SLO-engine reasons (appended so existing numeric values stay stable):
	// ReasonDeadlineMiss marks a KindDone event whose service time exceeded
	// the class deadline; ReasonBurnRate and ReasonBudgetExhausted are the
	// analyzer's multi-window burn-rate symptoms (budget burning too fast /
	// error budget fully spent over the slow window).
	ReasonDeadlineMiss
	ReasonBurnRate
	ReasonBudgetExhausted

	numReasons
)

var reasonNames = [numReasons]string{
	"", "fast-path", "drained", "cost-limit", "predicted-bucket",
	"queue-timeout", "gate-full", "low-priority-gate",
	"slo-violation", "overload", "underload",
	"throttle", "suspend", "kill", "kill-resubmit", "reprioritize",
	"resume", "none",
	"deadline-miss", "burn-rate", "budget-exhausted",
}

// String names the reason ("" for ReasonNone).
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("Reason(%d)", int(r))
}

// NoVerdict is the Event.Verdict sentinel for events that are not admission
// decisions. Admission events store the rt.Verdict numeric value, which the
// HTTP layer renders back through rt.Verdict.String.
const NoVerdict uint8 = 0xFF

// NoClass is the Event.Class sentinel for events not scoped to a service
// class.
const NoClass int32 = -1

// Event is one flight-recorder record: plain data sized to a cache line, so
// recording never allocates and draining copies by value.
type Event struct {
	// Seq is the shard-local publish tag (position+1 in the shard's event
	// stream); it orders events within a shard and detects torn reads.
	Seq uint64
	// At is the event time in nanoseconds on the recording component's
	// clock (the runtime's monotonic clock for lifecycle events).
	At int64
	// QID is the admission ID correlating one request's lifecycle events
	// (0 when not request-scoped).
	QID int64
	// FP is the statement fingerprint's low lane when the prediction
	// pipeline saw the request (0 otherwise).
	FP uint64
	// Kind classifies the event; Reason says why it fired.
	Kind   Kind
	Reason Reason
	// Verdict is the admission outcome for KindAdmit events (NoVerdict
	// otherwise).
	Verdict uint8
	// Class is the service-class ID, NoClass when unscoped.
	Class int32
	// Value and Aux carry the event's measured quantities; the Kind and
	// Reason comments above say what each holds.
	Value float64
	Aux   float64
}

// Format renders the event as one human-readable trace line. className
// resolves class IDs (nil renders the numeric ID).
func (e Event) Format(className func(int32) string) string {
	class := ""
	if e.Class != NoClass {
		if className != nil {
			class = " class=" + className(e.Class)
		} else {
			class = fmt.Sprintf(" class=%d", e.Class)
		}
	}
	verdict := ""
	if e.Verdict != NoVerdict {
		verdict = fmt.Sprintf(" verdict=%d", e.Verdict)
	}
	qid := ""
	if e.QID != 0 {
		qid = fmt.Sprintf(" qid=%d", e.QID)
	}
	fp := ""
	if e.FP != 0 {
		fp = fmt.Sprintf(" fp=%016x", e.FP)
	}
	reason := ""
	if e.Reason != ReasonNone {
		reason = " reason=" + e.Reason.String()
	}
	return fmt.Sprintf("%12.6fs %-12s%s%s%s%s%s value=%g aux=%g",
		float64(e.At)/1e9, e.Kind.String(), reason, class, verdict, qid, fp,
		e.Value, e.Aux)
}

// slot is one ring cell. Every field is an atomic word: writers publish with
// plain atomic stores, drains copy between two pub reads, and the race
// detector sees only atomic access.
type slot struct {
	pub  atomic.Uint64 // 0 while being written, else shard position+1
	at   atomic.Int64
	qid  atomic.Int64
	fp   atomic.Uint64
	meta atomic.Uint64 // kind | reason<<8 | verdict<<16 | class<<32
	val  atomic.Uint64 // Value float bits
	aux  atomic.Uint64 // Aux float bits
}

//dbwlm:hotpath
func packMeta(e *Event) uint64 {
	return uint64(e.Kind) | uint64(e.Reason)<<8 | uint64(e.Verdict)<<16 |
		uint64(uint32(e.Class))<<32
}

func unpackMeta(m uint64, e *Event) {
	e.Kind = Kind(m & 0xFF)
	e.Reason = Reason(m >> 8 & 0xFF)
	e.Verdict = uint8(m >> 16 & 0xFF)
	e.Class = int32(uint32(m >> 32))
}

// ringShard is one writer stripe: a private cursor on its own cache line and
// a fixed slot array. Writers claim positions with a fetch-add and wrap.
type ringShard struct {
	cursor atomic.Uint64
	_      [120]byte
	slots  []slot
}

// Recorder is the flight recorder: a sharded ring of fixed total capacity.
// A nil *Recorder is valid and records nothing — the disabled state is the
// zero value of a pointer field, and every method nil-checks the receiver.
type Recorder struct {
	shards []ringShard
	smask  uint32
	lmask  uint64 // per-shard slot-index mask
}

// NewRecorder builds a recorder retaining ~capacity events (rounded so each
// of the GOMAXPROCS-derived shards holds a power-of-two slot count, minimum
// 64). capacity <= 0 selects the 16384-event default.
func NewRecorder(capacity int) *Recorder {
	return NewRecorderShards(capacity, 2*runtime.GOMAXPROCS(0))
}

// NewRecorderShards builds a recorder with an explicit writer-stripe count
// (rounded up to a power of two, minimum 2). Cap() depends on the shard
// count, so tests that pin an exact capacity — golden files — construct
// through here instead of the GOMAXPROCS-derived default.
func NewRecorderShards(capacity, shards int) *Recorder {
	if capacity <= 0 {
		capacity = 16384
	}
	nsh := shards
	if nsh < 2 {
		nsh = 2
	}
	nsh = 1 << bits.Len(uint(nsh-1))
	per := capacity / nsh
	if per < 64 {
		per = 64
	}
	per = 1 << bits.Len(uint(per-1))
	r := &Recorder{shards: make([]ringShard, nsh), smask: uint32(nsh - 1),
		lmask: uint64(per - 1)}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, per)
	}
	return r
}

// Enabled reports whether events are being retained (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Cap reports the total slot capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.shards) * int(r.lmask+1)
}

// Record stores one event. Safe on a nil receiver (drops the event); never
// blocks, never allocates — a cursor fetch-add and seven atomic word stores
// on a shard chosen from the per-thread fast random state.
//
//dbwlm:hotpath
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	sh := &r.shards[rand.Uint32()&r.smask]
	pos := sh.cursor.Add(1) - 1
	s := &sh.slots[pos&r.lmask]
	s.pub.Store(0)
	s.at.Store(e.At)
	s.qid.Store(e.QID)
	s.fp.Store(e.FP)
	s.meta.Store(packMeta(&e))
	s.val.Store(math.Float64bits(e.Value))
	s.aux.Store(math.Float64bits(e.Aux))
	s.pub.Store(pos + 1)
}

// Recorded reports the total number of events ever recorded, including any
// since overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for i := range r.shards {
		sum += r.shards[i].cursor.Load()
	}
	return sum
}

// Overwritten reports how many events the ring has discarded to stay fixed
// size.
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	size := r.lmask + 1
	for i := range r.shards {
		if c := r.shards[i].cursor.Load(); c > size {
			sum += c - size
		}
	}
	return sum
}

// Filter selects events on drain. Start from MatchAll and override fields —
// the Class and Verdict sentinels for "any" are -1, not the zero value,
// because class 0 and verdict 0 are real values. A literal zero-value
// Filter{} is normalized to MatchAll by Tail.
type Filter struct {
	Kind    Kind  // KindAny matches all
	Class   int32 // NoClass/-1 matches all; set exact class ID otherwise
	Verdict int16 // -1 matches all; else the rt.Verdict numeric value
	QID     int64 // 0 matches all
	// MinAt drops events older than this timestamp (same clock as
	// Event.At); 0 matches all. The /trace?since= time-range filter.
	MinAt int64
}

// MatchAll is the drain-everything filter.
var MatchAll = Filter{Class: NoClass, Verdict: -1}

func (f *Filter) match(e *Event) bool {
	if f.Kind != KindAny && e.Kind != f.Kind {
		return false
	}
	if f.Class != NoClass && e.Class != f.Class {
		return false
	}
	if f.Verdict >= 0 && (e.Verdict == NoVerdict || int16(e.Verdict) != f.Verdict) {
		return false
	}
	if f.QID != 0 && e.QID != f.QID {
		return false
	}
	if f.MinAt != 0 && e.At < f.MinAt {
		return false
	}
	return true
}

// Tail drains the newest matching events, oldest first, at most n of them
// (n <= 0 keeps every retained match). Draining is wait-free with respect to
// writers: a slot whose publish tag moves mid-copy is skipped, so a drain
// under full write load returns a consistent — if slightly stale — view.
func (r *Recorder) Tail(n int, f Filter) []Event {
	if r == nil {
		return nil
	}
	if f.Class == 0 && f.Verdict == 0 && f.Kind == KindAny && f.QID == 0 && f.MinAt == 0 {
		// A literal zero-value Filter means "everything"; normalize the
		// class/verdict sentinels so class 0 / verdict 0 are not singled out.
		f = MatchAll
	}
	var out []Event
	var e Event
	for i := range r.shards {
		sh := &r.shards[i]
		limit := sh.cursor.Load()
		if limit > r.lmask+1 {
			limit = r.lmask + 1
		}
		for j := uint64(0); j < limit; j++ {
			s := &sh.slots[j]
			p1 := s.pub.Load()
			if p1 == 0 {
				continue
			}
			e.At = s.at.Load()
			e.QID = s.qid.Load()
			e.FP = s.fp.Load()
			unpackMeta(s.meta.Load(), &e)
			e.Value = math.Float64frombits(s.val.Load())
			e.Aux = math.Float64frombits(s.aux.Load())
			if s.pub.Load() != p1 {
				continue // overwritten mid-copy
			}
			e.Seq = p1
			if f.match(&e) {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Seq < out[b].Seq
	})
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
