package obsv

import (
	"io"
	"strconv"
	"strings"

	"dbwlm/internal/metrics"
)

// PromWriter renders metric families in the Prometheus text exposition
// format (version 0.0.4) with nothing but the standard library. Usage is
// family-then-samples:
//
//	p := obsv.NewPromWriter(w)
//	p.Counter("dbwlm_decisions_total", "Admission decisions.")
//	p.Val(float64(n), "class", "batch", "verdict", "admitted")
//	p.Histogram("dbwlm_latency_seconds", "Service latency.")
//	p.Hist(h, "class", "batch")
//	err := p.Err()
//
// Counter/Gauge/Histogram emit the # HELP / # TYPE header and set the
// current family; Val and Hist emit samples for it. Errors are sticky and
// surfaced by Err, so callers can write a whole page and check once.
type PromWriter struct {
	w    io.Writer
	name string
	err  error
	buf  []byte
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err reports the first write error.
func (p *PromWriter) Err() error { return p.err }

// Counter begins a counter family.
func (p *PromWriter) Counter(name, help string) { p.family(name, "counter", help) }

// Gauge begins a gauge family.
func (p *PromWriter) Gauge(name, help string) { p.family(name, "gauge", help) }

// Histogram begins a histogram family; emit its series with Hist.
func (p *PromWriter) Histogram(name, help string) { p.family(name, "histogram", help) }

func (p *PromWriter) family(name, typ, help string) {
	p.name = name
	b := p.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendEscaped(b, help, false)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	p.write(b)
}

// Val emits one sample of the current family. labels are alternating
// name/value pairs.
func (p *PromWriter) Val(v float64, labels ...string) {
	b := p.sampleName(p.buf[:0], "", labels)
	b = append(b, ' ')
	b = appendValue(b, v)
	b = append(b, '\n')
	p.write(b)
}

// Hist emits a striped histogram as the conventional _bucket/_sum/_count
// series of the current family: cumulative counts at each non-empty bucket
// upper bound plus the mandatory le="+Inf" terminal. Sparse emission keeps a
// 128-bucket log histogram to a handful of lines; cumulative `le` semantics
// stay exact because every omitted bucket's cumulative count equals the
// previous emitted one.
func (p *PromWriter) Hist(h *metrics.StripedHistogram, labels ...string) {
	leLabels := make([]string, len(labels)+2)
	copy(leLabels, labels)
	leLabels[len(labels)] = "le"
	count, sum := h.Cumulative(func(upper float64, cum int64) {
		leLabels[len(labels)+1] = strconv.FormatFloat(upper, 'g', -1, 64)
		b := p.sampleName(p.buf[:0], "_bucket", leLabels)
		b = append(b, ' ')
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
		p.write(b)
	})
	leLabels[len(labels)+1] = "+Inf"
	b := p.sampleName(p.buf[:0], "_bucket", leLabels)
	b = append(b, ' ')
	b = strconv.AppendInt(b, count, 10)
	b = append(b, '\n')
	b = p.sampleName(b, "_sum", labels)
	b = append(b, ' ')
	b = appendValue(b, sum)
	b = append(b, '\n')
	b = p.sampleName(b, "_count", labels)
	b = append(b, ' ')
	b = strconv.AppendInt(b, count, 10)
	b = append(b, '\n')
	p.write(b)
}

// sampleName appends name+suffix{labels} to b.
func (p *PromWriter) sampleName(b []byte, suffix string, labels []string) []byte {
	b = append(b, p.name...)
	b = append(b, suffix...)
	if len(labels) > 0 {
		b = append(b, '{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, labels[i]...)
			b = append(b, '=', '"')
			b = appendEscaped(b, labels[i+1], true)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	return b
}

func (p *PromWriter) write(b []byte) {
	p.buf = b[:0]
	if p.err != nil {
		return
	}
	_, p.err = p.w.Write(b)
}

// appendValue renders a float the way Prometheus expects: integral values
// without an exponent, everything else in shortest-round-trip form.
func appendValue(b []byte, v float64) []byte {
	if v == float64(int64(v)) && v > -1e15 && v < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendEscaped escapes backslash and newline (plus double quotes inside
// label values) per the text-format rules.
func appendEscaped(b []byte, s string, label bool) []byte {
	if !strings.ContainsAny(s, "\\\n\"") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '"':
			if label {
				b = append(b, '\\', '"')
			} else {
				b = append(b, '"')
			}
		default:
			b = append(b, c)
		}
	}
	return b
}
