package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Event{Kind: KindAdmit}) // must not panic
	if got := r.Tail(10, MatchAll); got != nil {
		t.Fatalf("nil Tail returned %v", got)
	}
	if r.Recorded() != 0 || r.Overwritten() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder reports activity")
	}
}

func TestRecordTailRoundTrip(t *testing.T) {
	r := NewRecorder(1024)
	events := []Event{
		{At: 100, QID: 1, FP: 0xBEEF, Kind: KindAdmit, Reason: ReasonFastPath, Verdict: 0, Class: 2, Value: 1.5, Aux: 0.25},
		{At: 200, QID: 2, Kind: KindEnqueue, Reason: ReasonGateFull, Verdict: NoVerdict, Class: 0},
		{At: 300, QID: 1, Kind: KindDone, Verdict: NoVerdict, Class: 2, Value: 0.007},
		{At: 400, Kind: KindMAPEAction, Reason: ReasonThrottle, Verdict: NoVerdict, Class: NoClass, Value: 1},
	}
	for _, e := range events {
		r.Record(e)
	}
	got := r.Tail(0, MatchAll)
	if len(got) != len(events) {
		t.Fatalf("drained %d events, want %d", len(got), len(events))
	}
	for i, e := range events {
		g := got[i]
		g.Seq = 0 // assigned by the ring
		if g != e {
			t.Fatalf("event %d: got %+v want %+v", i, g, e)
		}
	}
	if r.Recorded() != uint64(len(events)) || r.Overwritten() != 0 {
		t.Fatalf("recorded %d overwritten %d", r.Recorded(), r.Overwritten())
	}
}

func TestTailFilters(t *testing.T) {
	r := NewRecorder(1024)
	r.Record(Event{At: 1, QID: 7, Kind: KindAdmit, Verdict: 0, Class: 0})
	r.Record(Event{At: 2, QID: 8, Kind: KindAdmit, Verdict: 2, Class: 1})
	r.Record(Event{At: 3, QID: 7, Kind: KindDone, Verdict: NoVerdict, Class: 0})
	r.Record(Event{At: 4, Kind: KindMAPEMonitor, Verdict: NoVerdict, Class: NoClass})

	if got := r.Tail(0, Filter{}); len(got) != 4 {
		t.Fatalf("zero-value filter drained %d, want all 4 (class 0 and verdict 0 must not be singled out)", len(got))
	}
	f := MatchAll
	f.Kind = KindAdmit
	if got := r.Tail(0, f); len(got) != 2 {
		t.Fatalf("kind filter drained %d, want 2", len(got))
	}
	f = MatchAll
	f.Class = 0
	if got := r.Tail(0, f); len(got) != 2 {
		t.Fatalf("class-0 filter drained %d, want 2", len(got))
	}
	f = MatchAll
	f.Verdict = 2
	got := r.Tail(0, f)
	if len(got) != 1 || got[0].QID != 8 {
		t.Fatalf("verdict filter drained %+v", got)
	}
	f = MatchAll
	f.QID = 7
	if got := r.Tail(0, f); len(got) != 2 {
		t.Fatalf("qid filter drained %d, want 2", len(got))
	}
	if got := r.Tail(1, MatchAll); len(got) != 1 || got[0].At != 4 {
		t.Fatalf("n=1 tail %+v, want the newest event", got)
	}
}

func TestRingOverwrites(t *testing.T) {
	r := NewRecorder(64) // rounds up to shards*64, still far below 10k
	const n = 10000
	for i := 0; i < n; i++ {
		r.Record(Event{At: int64(i), Kind: KindAdmit})
	}
	if r.Recorded() != n {
		t.Fatalf("recorded %d, want %d", r.Recorded(), n)
	}
	if r.Overwritten() == 0 {
		t.Fatal("no overwrites after overflowing the ring")
	}
	if got, cap := len(r.Tail(0, MatchAll)), r.Cap(); got > cap {
		t.Fatalf("drained %d events from a %d-slot ring", got, cap)
	}
	if int(r.Recorded()-r.Overwritten()) != len(r.Tail(0, MatchAll)) {
		t.Fatalf("retained accounting: recorded %d - overwritten %d != drained %d",
			r.Recorded(), r.Overwritten(), len(r.Tail(0, MatchAll)))
	}
}

func TestKindAndReasonNames(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		got, ok := KindFromName(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d round-trip through %q failed", k, k.String())
		}
	}
	if _, ok := KindFromName("nope"); ok {
		t.Fatal("unknown kind resolved")
	}
	seen := map[string]Reason{}
	for r := Reason(1); r < numReasons; r++ {
		name := r.String()
		if name == "" {
			t.Fatalf("reason %d has no name", r)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("reasons %d and %d share the name %q", prev, r, name)
		}
		seen[name] = r
	}
}

func TestEventFormat(t *testing.T) {
	e := Event{At: 1_500_000_000, QID: 42, FP: 0xABC, Kind: KindAdmit,
		Reason: ReasonFastPath, Verdict: 0, Class: 1, Value: 2, Aux: 3}
	line := e.Format(func(id int32) string { return "reporting" })
	for _, want := range []string{"admit", "reason=fast-path", "class=reporting",
		"qid=42", "fp=0000000000000abc", "value=2", "aux=3", "1.500000s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("formatted line %q missing %q", line, want)
		}
	}
}

// TestConcurrentRecordDrain hammers the ring from many writers while a
// reader drains continuously — the seqlock publish protocol must yield only
// fully-published events (run under -race in the `make race` target).
func TestConcurrentRecordDrain(t *testing.T) {
	r := NewRecorder(4096)
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // continuous drain under write load
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Tail(0, MatchAll) {
				// A torn read would surface as a mismatched At/QID pair.
				if e.QID != e.At {
					t.Errorf("torn event: at=%d qid=%d", e.At, e.QID)
					return
				}
			}
		}
	}()
	var writersWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*per + i + 1)
				r.Record(Event{At: v, QID: v, Kind: KindAdmit, Verdict: NoVerdict, Class: NoClass})
			}
		}(w)
	}
	writersWg.Wait()
	close(stop)
	wg.Wait()
	if r.Recorded() != writers*per {
		t.Fatalf("recorded %d, want %d", r.Recorded(), writers*per)
	}
	for _, e := range r.Tail(0, MatchAll) {
		if e.QID != e.At || e.QID < 1 || e.QID > writers*per {
			t.Fatalf("corrupt retained event %+v", e)
		}
	}
}
