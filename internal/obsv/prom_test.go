package obsv

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dbwlm/internal/metrics"
)

// TestPromWriterGolden renders a fixed page of families — counters with
// escaped labels, gauges, and a striped histogram — and compares it byte for
// byte against testdata/prom.golden. Striped shard selection is random, but
// the merge-on-read makes the rendered totals deterministic, which is what
// lets a golden file exist at all. Regenerate with UPDATE_GOLDEN=1.
func TestPromWriterGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)

	p.Counter("dbwlm_decisions_total", "Admission decisions by class and verdict.")
	p.Val(41, "class", "interactive", "verdict", "admitted")
	p.Val(7, "class", "batch", "verdict", "rejected-cost")
	p.Val(0, "class", "weird\"name\\x", "verdict", "line\nbreak")

	p.Gauge("dbwlm_mem_pressure", "Reported memory pressure (1 = at budget).")
	p.Val(0.75)

	// Dyadic values only: shard striping randomizes the association order of
	// the merged _sum, so the golden bytes are only stable for values whose
	// sums are exact in any order.
	h := metrics.NewStripedHistogram(4)
	for _, v := range []float64{0.0009765625, 0.0009765625, 0.00390625, 0.25, 0.25, 0.25, 2} {
		h.Record(v)
	}
	p.Histogram("dbwlm_latency_seconds", "Service latency.")
	p.Hist(h, "class", "interactive")

	empty := metrics.NewStripedHistogram(4)
	p.Histogram("dbwlm_queue_wait_seconds", "Queue wait.")
	p.Hist(empty)

	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if update() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// update reports whether golden files should be rewritten (UPDATE_GOLDEN=1
// in the environment; an env var avoids fighting other packages over test
// flag registration).
func update() bool { return os.Getenv("UPDATE_GOLDEN") == "1" }

// TestPromWriterStickyError: the first write failure latches and later calls
// are no-ops, so a page renderer checks once at the end.
func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Counter("x_total", "x")
	p.Val(1)
	p.Val(2)
	if p.Err() == nil {
		t.Fatal("error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// TestPromHistogramCumulative checks the le-bucket invariants directly: the
// counts are cumulative, the +Inf terminal equals _count, and the sum is the
// sum of observations.
func TestPromHistogramCumulative(t *testing.T) {
	h := metrics.NewStripedHistogram(4)
	vals := []float64{0.01, 0.02, 0.02, 5}
	total := 0.0
	for _, v := range vals {
		h.Record(v)
		total += v
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Histogram("h_seconds", "h")
	p.Hist(h)
	out := buf.String()
	if !strings.Contains(out, "h_seconds_count 4") {
		t.Fatalf("missing count:\n%s", out)
	}
	if !strings.Contains(out, `h_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("missing +Inf terminal:\n%s", out)
	}
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "h_seconds_bucket") {
			continue
		}
		cum, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("buckets not cumulative:\n%s", out)
		}
		prev = cum
	}
}
