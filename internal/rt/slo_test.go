package rt

import (
	"testing"
	"time"

	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
	"dbwlm/internal/slo"
)

// newSLORuntime builds a recorder-free runtime with an attached SLO engine
// on a shared injected clock: oltp has a 1ms deadline, batch is best-effort.
func newSLORuntime(t testing.TB, clock *int64) *Runtime {
	t.Helper()
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1 << 16},
		{Name: "batch", Priority: policy.PriorityLow, MaxMPL: 1 << 16},
	}, Options{Now: func() int64 { return *clock }})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slo.New([]slo.Spec{
		{Class: "oltp", Target: 0.001, FastWindow: time.Second, SlowWindow: 4 * time.Second},
		{Class: "batch"},
	}, slo.Options{Now: r.NowNanos, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.SetSLO(eng)
	return r
}

// TestSLODeadlineMissAccounting: Done feeds the SLO engine and stamps the
// flight-recorder done event with the deadline-miss reason exactly when the
// elapsed service time exceeded the class target.
func TestSLODeadlineMissAccounting(t *testing.T) {
	clock := int64(0)
	r := newSLORuntime(t, &clock)
	rec := obsv.NewRecorder(256)
	r.SetRecorder(rec)

	g := r.Admit(0, 10)
	clock += 500_000 // 0.5ms: within the 1ms target
	r.Done(g, 0)

	g = r.Admit(0, 10)
	clock += 5_000_000 // 5ms: a miss
	r.Done(g, 0)

	g = r.Admit(1, 10) // best-effort batch never misses
	clock += 60_000_000_000
	r.Done(g, 0)

	f := obsv.MatchAll
	f.Kind = obsv.KindDone
	dones := rec.Tail(0, f)
	if len(dones) != 3 {
		t.Fatalf("done events %d, want 3", len(dones))
	}
	if dones[0].Reason != obsv.ReasonNone {
		t.Fatalf("fast done reason %v, want none", dones[0].Reason)
	}
	if dones[1].Reason != obsv.ReasonDeadlineMiss {
		t.Fatalf("slow done reason %v, want deadline-miss", dones[1].Reason)
	}
	if dones[2].Reason != obsv.ReasonNone {
		t.Fatalf("best-effort done reason %v, want none", dones[2].Reason)
	}

	reports := r.SLO().Evaluate()
	if reports[0].Total != 2 || reports[0].Missed != 1 {
		t.Fatalf("oltp slo = %d/%d, want 1/2 missed", reports[0].Missed, reports[0].Total)
	}
	if reports[1].Missed != 0 {
		t.Fatalf("batch slo missed = %d, want 0", reports[1].Missed)
	}
}

// TestSLOPolicyReload: the policy document's slos section retargets the
// attached engine, errors when no engine is attached, and rendered policy
// round-trips the live objectives.
func TestSLOPolicyReload(t *testing.T) {
	clock := int64(0)
	r := newSLORuntime(t, &clock)

	p := &policy.RuntimePolicy{
		SLOs: []policy.RuntimeSLO{{Class: "oltp", TargetMS: 250, MissBudget: 0.05}},
	}
	if err := r.ApplyPolicy(p); err != nil {
		t.Fatal(err)
	}
	specs := r.SLO().Specs()
	if specs[0].Target != 0.25 || specs[0].MissBudget != 0.05 {
		t.Fatalf("reloaded spec %+v, want 250ms / 5%%", specs[0])
	}
	// The new target gates Observe immediately.
	g := r.Admit(0, 10)
	clock += 100_000_000 // 100ms: within the reloaded 250ms target
	r.Done(g, 0)
	if rp := r.SLO().Evaluate()[0]; rp.Missed != 0 || rp.Total != 1 {
		t.Fatalf("post-reload slo %d/%d, want 0/1", rp.Missed, rp.Total)
	}

	if err := r.ApplyPolicy(&policy.RuntimePolicy{
		SLOs: []policy.RuntimeSLO{{Class: "nope", TargetMS: 1}},
	}); err == nil {
		t.Fatal("unknown slo class applied without error")
	}

	rendered := r.Policy()
	if len(rendered.SLOs) != 2 || rendered.SLOs[0].Class != "oltp" || rendered.SLOs[0].TargetMS != 250 {
		t.Fatalf("rendered slos %+v", rendered.SLOs)
	}

	// A runtime without the engine refuses slo-bearing policies rather than
	// silently dropping the objectives.
	bare, err := New([]ClassSpec{{Name: "oltp", MaxMPL: 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.ApplyPolicy(p); err == nil {
		t.Fatal("slo policy applied with no engine attached")
	}
}

// TestSLOAdmitZeroAlloc pins the acceptance bound: with the SLO engine
// attached and no recorder, the admit+done cycle still allocates nothing.
func TestSLOAdmitZeroAlloc(t *testing.T) {
	clock := int64(0)
	r := newSLORuntime(t, &clock)
	if avg := testing.AllocsPerRun(1000, func() {
		r.Done(r.Admit(0, 10), 0.001)
	}); avg != 0 {
		t.Fatalf("slo-on admit+done allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkLiveAdmitSLO prices SLO deadline accounting on the plain admit
// hot path; compare against BenchmarkLiveAdmit for the enabled overhead
// (scripts/bench_obs.sh gates the delta).
func BenchmarkLiveAdmitSLO(b *testing.B) {
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1 << 16, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := slo.New([]slo.Spec{{Class: "oltp", Target: 0.01}}, slo.Options{Now: r.NowNanos})
	if err != nil {
		b.Fatal(err)
	}
	r.SetSLO(eng)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := r.Admit(0, 10)
			r.Done(g, 0.001)
		}
	})
}

// BenchmarkLiveAdmitRecordedSLO is the fully-instrumented hot path: flight
// recorder and SLO engine both on.
func BenchmarkLiveAdmitRecordedSLO(b *testing.B) {
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1 << 16, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := slo.New([]slo.Spec{{Class: "oltp", Target: 0.01}}, slo.Options{Now: r.NowNanos})
	if err != nil {
		b.Fatal(err)
	}
	r.SetSLO(eng)
	r.SetRecorder(obsv.NewRecorder(16384))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := r.Admit(0, 10)
			r.Done(g, 0.001)
		}
	})
}
