package rt

import (
	"testing"
	"time"

	"dbwlm/internal/admission"
	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
)

// TestRecorderLifecycle drives one fast-path admission, one cost rejection,
// and one queued admission through a recorder-attached runtime and checks
// the flight recorder holds the full story: every decision carries its
// reason, and one request's events share a qid.
func TestRecorderLifecycle(t *testing.T) {
	clock := int64(0)
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1, MaxCostTimerons: 1000},
	}, Options{Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	rec := obsv.NewRecorder(1024)
	r.SetRecorder(rec)

	g1 := r.Admit(0, 10) // fast path
	if !g1.Admitted() || g1.ID() == 0 {
		t.Fatalf("grant %+v", g1)
	}
	if g := r.Admit(0, 5000); g.Admitted() || g.ID() == 0 {
		t.Fatalf("over-cost grant %+v", g)
	}

	// Second admission parks (MPL 1 held by g1) and drains when g1 releases.
	got := make(chan Grant)
	go func() { got <- r.Admit(0, 20) }()
	waitForWaiters(t, r, 1)
	clock += 3_000_000 // 3ms queued
	r.Done(g1, 0.001)
	g2 := <-got
	if !g2.Admitted() || g2.ID() == 0 || g2.ID() == g1.ID() {
		t.Fatalf("drained grant %+v (g1 id %d)", g2, g1.ID())
	}
	clock += 2_000_000
	r.Done(g2, 0.002)

	type key struct {
		kind   obsv.Kind
		reason obsv.Reason
	}
	byKey := map[key][]obsv.Event{}
	for _, e := range rec.Tail(0, obsv.MatchAll) {
		byKey[key{e.Kind, e.Reason}] = append(byKey[key{e.Kind, e.Reason}], e)
	}
	fast := byKey[key{obsv.KindAdmit, obsv.ReasonFastPath}]
	if len(fast) != 1 || fast[0].QID != g1.ID() || fast[0].Verdict != uint8(Admitted) || fast[0].Value != 10 {
		t.Fatalf("fast-path events %+v", fast)
	}
	rejected := byKey[key{obsv.KindAdmit, obsv.ReasonCostLimit}]
	if len(rejected) != 1 || rejected[0].Verdict != uint8(RejectedCost) || rejected[0].Value != 5000 {
		t.Fatalf("cost-limit events %+v", rejected)
	}
	enq := byKey[key{obsv.KindEnqueue, obsv.ReasonGateFull}]
	if len(enq) != 1 || enq[0].QID != g2.ID() {
		t.Fatalf("enqueue events %+v (g2 id %d)", enq, g2.ID())
	}
	drained := byKey[key{obsv.KindAdmit, obsv.ReasonDrained}]
	if len(drained) != 1 || drained[0].QID != g2.ID() || drained[0].Aux != 0.003 {
		t.Fatalf("drained events %+v, want 3ms wait", drained)
	}
	f := obsv.MatchAll
	f.Kind = obsv.KindDone
	dones := rec.Tail(0, f)
	if len(dones) != 2 {
		t.Fatalf("done events %+v", dones)
	}
	if dones[0].QID != g1.ID() || dones[0].Value != 0.003 {
		t.Fatalf("g1 done %+v, want 3ms elapsed", dones[0])
	}
	// One request's whole lifecycle shares its qid.
	f = obsv.MatchAll
	f.QID = g2.ID()
	if got := len(rec.Tail(0, f)); got != 3 { // enqueue, drained admit, done
		t.Fatalf("g2 lifecycle has %d events, want 3", got)
	}
}

// TestRecorderQueueTimeout: a waiter expiring at a retry point records the
// rejected-timeout decision with the time it waited.
func TestRecorderQueueTimeout(t *testing.T) {
	clock := int64(0)
	r, err := New([]ClassSpec{
		{Name: "batch", MaxMPL: 1, MaxQueueDelay: 10 * time.Millisecond},
	}, Options{Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	rec := obsv.NewRecorder(1024)
	r.SetRecorder(rec)
	g1 := r.Admit(0, 0)
	got := make(chan Grant)
	go func() { got <- r.Admit(0, 0) }()
	waitForWaiters(t, r, 1)
	clock += 11_000_000 // past MaxQueueDelay
	r.RetryNow()
	g2 := <-got
	if g2.Verdict() != RejectedTimeout {
		t.Fatalf("verdict %v", g2.Verdict())
	}
	f := obsv.MatchAll
	f.QID = g2.ID()
	f.Kind = obsv.KindAdmit
	events := rec.Tail(0, f)
	if len(events) != 1 || events[0].Reason != obsv.ReasonQueueTimeout ||
		events[0].Verdict != uint8(RejectedTimeout) || events[0].Aux != 0.011 {
		t.Fatalf("timeout events %+v", events)
	}
	r.Done(g1, 0)
}

func waitForWaiters(t *testing.T, r *Runtime, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for r.classes[0].gate.waiters.Load() < n {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestTokenCarriesID: recorder-attached grants round-trip the admission ID
// through the wire token; recorder-off grants keep the legacy 4-field token.
func TestTokenCarriesID(t *testing.T) {
	r, err := New([]ClassSpec{{Name: "a", MaxMPL: 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off := r.Admit(0, 0)
	if off.ID() != 0 {
		t.Fatalf("recorder-off grant has id %d", off.ID())
	}
	tok := off.Token()
	back, err := r.ParseToken(tok)
	if err != nil || back.ID() != 0 {
		t.Fatalf("legacy token %q: %+v %v", tok, back, err)
	}
	r.Done(back, 0)

	r.SetRecorder(obsv.NewRecorder(256))
	on := r.Admit(0, 0)
	if on.ID() == 0 {
		t.Fatal("recorder-on grant has no id")
	}
	back, err = r.ParseToken(on.Token())
	if err != nil || back.ID() != on.ID() {
		t.Fatalf("token %q: %+v %v", on.Token(), back, err)
	}
	r.Done(back, 0)
}

// TestRecorderOffAdmitZeroAlloc pins the acceptance bound directly: with no
// recorder attached, the admit+done cycle allocates nothing.
func TestRecorderOffAdmitZeroAlloc(t *testing.T) {
	r, err := New([]ClassSpec{{Name: "a", MaxMPL: 1 << 16}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r.Done(r.Admit(0, 10), 0.001)
	}); avg != 0 {
		t.Fatalf("recorder-off admit+done allocates %v allocs/op, want 0", avg)
	}
}

// TestRecorderOnAdmitAllocBound: with the recorder attached the cycle stays
// within the one-alloc budget (the ring itself is preallocated; nothing on
// the record path may allocate).
func TestRecorderOnAdmitAllocBound(t *testing.T) {
	r, err := New([]ClassSpec{{Name: "a", MaxMPL: 1 << 16}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetRecorder(obsv.NewRecorder(4096))
	if avg := testing.AllocsPerRun(1000, func() {
		r.Done(r.Admit(0, 10), 0.001)
	}); avg > 1 {
		t.Fatalf("recorder-on admit+done allocates %v allocs/op, want <= 1", avg)
	}
}

// BenchmarkLiveAdmitRecorded prices the flight recorder on the plain admit
// hot path; compare against BenchmarkLiveAdmit for the enabled overhead
// (scripts/bench_obs.sh gates the delta).
func BenchmarkLiveAdmitRecorded(b *testing.B) {
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1 << 16, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	r.SetRecorder(obsv.NewRecorder(16384))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := r.Admit(0, 10)
			r.Done(g, 0.001)
		}
	})
}

// BenchmarkPredictAdmitRecorded is the full wire-speed prediction pipeline
// with the flight recorder attached — the configuration the acceptance bound
// compares against BENCH_predict's recorder-free baseline.
func BenchmarkPredictAdmitRecorded(b *testing.B) {
	g := newPredictGate(b, admission.BucketMonster)
	train(g)
	g.rt.SetRecorder(obsv.NewRecorder(16384))
	grant, _, err := g.AdmitSQL(0, predictCheapSQL)
	if err != nil || !grant.Admitted() {
		b.Fatalf("warmup admit failed: %v %v", grant.Verdict(), err)
	}
	g.rt.Done(grant, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grant, _, _ := g.AdmitSQL(0, predictCheapSQL)
		g.rt.Done(grant, 0)
	}
}
