package rt

import (
	"dbwlm/internal/admission"
	"dbwlm/internal/metrics"
	"dbwlm/internal/obsv"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// numBuckets is the runtime-bucket cardinality (short..monster).
const numBuckets = int(admission.BucketMonster) + 1

// Prediction is the wire-speed forecast attached to an admission decision:
// everything the gate learned about the statement before deciding. Plain data
// — the predict-admit path allocates nothing.
type Prediction struct {
	// Timerons is the optimizer cost estimate derived from the (possibly
	// cached) plan.
	Timerons float64
	// FP is the statement fingerprint, the stable identity the batched wire
	// protocol hands back so clients can train (OpDone) or re-admit
	// (OpAdmitFP) without resending the SQL text.
	FP sqlmini.Fingerprint
	// Seconds is the k-NN predicted service time; meaningful only when
	// Modeled is true.
	Seconds float64
	// Bucket classifies Seconds into the paper's runtime buckets.
	Bucket admission.RuntimeBucket
	// Modeled reports whether a trained model produced Seconds; before the
	// predictor has seen MinTraining completions the gate falls back to
	// cost-only admission.
	Modeled bool
	// CacheHit reports whether the plan came from the fingerprint cache.
	CacheHit bool
}

// PredictGate composes the wire-speed admission pipeline over a Runtime:
// fingerprint-cache plan lookup → feature extraction → k-NN runtime
// prediction → bucket gate → the runtime's cost/MPL admission. Statements
// whose predicted runtime bucket exceeds MaxBucket are rejected with
// RejectedPredicted before they take a slot — the paper's prediction-based
// admission control running against raw SQL.
//
// The steady-state path (cache hit, trained model, open gate) is lock-free
// and allocation-free end to end.
type PredictGate struct {
	rt        *Runtime
	cache     *sqlmini.PlanCache
	knn       *admission.KNNPredictor
	maxBucket admission.RuntimeBucket

	predicted *metrics.StripedHistogram // predicted seconds on modeled admits
	gated     *metrics.StripedCounter   // RejectedPredicted count
	unmodeled *metrics.StripedCounter   // decisions taken without a model
	// byBucket counts modeled predictions per runtime bucket — the
	// bucket-labeled series of the /metrics exposition.
	byBucket [numBuckets]*metrics.StripedCounter
}

// NewPredictGate wires a prediction gate over the runtime. maxBucket is the
// largest admissible predicted bucket (BucketMonster admits everything the
// cost limits allow, i.e. disables the bucket gate).
func NewPredictGate(r *Runtime, cache *sqlmini.PlanCache, knn *admission.KNNPredictor, maxBucket admission.RuntimeBucket) *PredictGate {
	shards := defaultShards()
	g := &PredictGate{
		rt:        r,
		cache:     cache,
		knn:       knn,
		maxBucket: maxBucket,
		predicted: metrics.NewStripedHistogram(shards),
		gated:     metrics.NewStripedCounter(shards),
		unmodeled: metrics.NewStripedCounter(shards),
	}
	for b := range g.byBucket {
		g.byBucket[b] = metrics.NewStripedCounter(shards)
	}
	return g
}

// MaxBucket reports the configured bucket ceiling.
func (g *PredictGate) MaxBucket() admission.RuntimeBucket { return g.maxBucket }

// AdmitSQL runs one raw SQL statement through the full prediction pipeline.
// A non-nil error means the statement did not parse; a RejectedPredicted
// grant means the model forecast a runtime beyond MaxBucket. Admitted grants
// must be released via Done (or ObserveDone, to also feed the model).
//
//dbwlm:hotpath
func (g *PredictGate) AdmitSQL(class ClassID, sql string) (Grant, Prediction, error) {
	e, hit, err := g.cache.PlanInfo(sql)
	if err != nil {
		return Grant{}, Prediction{}, err
	}
	return g.admitPlanned(class, e, hit, true)
}

// AdmitSQLBytes is AdmitSQL for SQL text held in a transient byte buffer —
// the batched wire transport's decode scratch. The bytes are only read while
// the call runs (PlanCache.PlanInfoBytes copies to a stable string before
// caching anything), so the caller may reuse its buffer immediately. wait as
// in Admit vs AdmitNoWait.
//
//dbwlm:hotpath
func (g *PredictGate) AdmitSQLBytes(class ClassID, sql []byte, wait bool) (Grant, Prediction, error) {
	e, hit, err := g.cache.PlanInfoBytes(sql)
	if err != nil {
		return Grant{}, Prediction{}, err
	}
	return g.admitPlanned(class, e, hit, wait)
}

// AdmitFP runs prediction-based admission on a statement fingerprint alone —
// the wire protocol's repeat-traffic path, which skips even the fingerprint
// hash. cached is false when the shape is not interned (nothing is admitted;
// the client falls back to sending the SQL text).
//
//dbwlm:hotpath
func (g *PredictGate) AdmitFP(class ClassID, fp sqlmini.Fingerprint, wait bool) (grant Grant, pred Prediction, cached bool) {
	e := g.cache.Lookup(fp)
	if e == nil {
		return Grant{}, Prediction{}, false
	}
	grant, pred, _ = g.admitPlanned(class, e, true, wait)
	return grant, pred, true
}

// admitPlanned is the shared back half of every predict-admit path: feature
// extraction from the (cached) plan, k-NN runtime prediction, the bucket
// gate, then the runtime's cost/MPL admission.
//
//dbwlm:hotpath
func (g *PredictGate) admitPlanned(class ClassID, e *sqlmini.CachedPlan, hit, wait bool) (Grant, Prediction, error) {
	pred := Prediction{
		Timerons: workload.TimeronsOf(e.Cost.CPUSeconds, e.Cost.IOMB),
		FP:       e.FP,
		CacheHit: hit,
	}
	var f admission.FeatureVec
	admission.FeaturesFrom(pred.Timerons, e.Cost.Rows, e.Cost.MemMB, e.Cost.IOMB,
		e.Cost.Type == sqlmini.StmtRead, &f)
	if s, ok := g.knn.PredictSeconds(&f); ok {
		pred.Seconds, pred.Bucket, pred.Modeled = s, admission.BucketOf(s), true
		if b := int(pred.Bucket); b >= 0 && b < numBuckets {
			g.byBucket[b].Inc()
		}
		if pred.Bucket > g.maxBucket {
			g.gated.Inc()
			g.rt.classes[class].rejected.Inc()
			var qid int64
			if rec := g.rt.rec; rec != nil {
				qid = g.rt.qids.next()
				rec.Record(obsv.Event{At: g.rt.now(), QID: qid, FP: e.FP.Lo,
					Kind: obsv.KindAdmit, Reason: obsv.ReasonPredictedBucket,
					Verdict: uint8(RejectedPredicted), Class: int32(class),
					Value: pred.Timerons, Aux: s})
			}
			return Grant{verdict: RejectedPredicted, class: class, id: qid}, pred, nil
		}
		g.predicted.Record(s)
	} else {
		g.unmodeled.Inc()
	}
	return g.rt.admitWith(class, pred.Timerons, e.FP.Lo, pred.Seconds, wait), pred, nil
}

// ObserveDone releases an admitted grant and feeds the observed service time
// back into the predictor, re-resolving the statement's features through the
// cache (a hit for any statement recently admitted). This is the /done path:
// the grant token plus the original SQL is all the client carries.
func (g *PredictGate) ObserveDone(grant Grant, sql string) {
	seconds := g.rt.ElapsedSeconds(grant)
	g.rt.Done(grant, 0)
	g.Observe(sql, seconds)
}

// Observe feeds one completed (sql, seconds) observation into the predictor
// without touching the runtime — the training half of ObserveDone, also
// usable for offline warm-up.
func (g *PredictGate) Observe(sql string, seconds float64) {
	e, _, err := g.cache.PlanInfo(sql)
	if err != nil {
		return
	}
	g.observeEntry(e, seconds)
}

// ObserveFP trains the predictor on a completed observation identified by
// statement fingerprint — the wire /done path, where the client carries the
// 16-byte fingerprint from its admit result instead of the SQL text. Reports
// whether the shape was still interned (a miss drops the observation; the
// model only ever trains on features it can recompute).
func (g *PredictGate) ObserveFP(fp sqlmini.Fingerprint, seconds float64) bool {
	e := g.cache.Lookup(fp)
	if e == nil {
		return false
	}
	g.observeEntry(e, seconds)
	return true
}

// observeEntry is the shared training tail: features from the cached plan,
// one k-NN observation.
func (g *PredictGate) observeEntry(e *sqlmini.CachedPlan, seconds float64) {
	var f admission.FeatureVec
	admission.FeaturesFrom(workload.TimeronsOf(e.Cost.CPUSeconds, e.Cost.IOMB),
		e.Cost.Rows, e.Cost.MemMB, e.Cost.IOMB, e.Cost.Type == sqlmini.StmtRead, &f)
	//dbwlm:nolint hotclosure -- training path: the predictor takes its stripe lock and amortizes ring growth; observation is off the admit fast path by design
	g.knn.Observe(&f, seconds)
}

// PredictStats is the merged monitoring view of the prediction pipeline.
type PredictStats struct {
	Cache     sqlmini.CacheStats `json:"cache"`
	Gated     int64              `json:"gated"`
	Unmodeled int64              `json:"unmodeled"`
	Predicted metrics.Snapshot   `json:"predicted_seconds"`
	Retrains  int64              `json:"retrains"`
	Trained   bool               `json:"trained"`
	MaxBucket string             `json:"max_bucket"`
}

// Stats merges the gate's stripes and the plan cache's shards.
func (g *PredictGate) Stats() PredictStats {
	return PredictStats{
		Cache:     g.cache.Stats(),
		Gated:     g.gated.Value(),
		Unmodeled: g.unmodeled.Value(),
		Predicted: g.predicted.Snapshot(),
		Retrains:  g.knn.Retrains(),
		Trained:   g.knn.Trained(),
		MaxBucket: g.maxBucket.String(),
	}
}
