// Equivalence tests: the live runtime's queue-timeout and retry-batch
// semantics must match the simulated Manager's decision-for-decision on the
// same trace. The Manager runs on virtual time; the runtime runs the same
// trace on an injected fake clock ticked at the Manager's retry cadence.
package rt_test

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dbwlm "dbwlm"
	"dbwlm/internal/admission"
	"dbwlm/internal/engine"
	"dbwlm/internal/metrics"
	"dbwlm/internal/policy"
	"dbwlm/internal/rt"
	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

func longQuery(id int64) *workload.Request {
	return &workload.Request{
		ID: id, Workload: "w", Priority: policy.PriorityMedium,
		True: engine.QuerySpec{CPUWork: 1000},
	}
}

// managerTimeoutTrace runs the boundary trace on the simulated Manager:
// MPL 1 gate held by a blocker, one victim queued at t=0 with
// MaxQueueDelay=1s and retries every 500ms. It returns the simulated second
// at which the victim timed out.
func managerTimeoutTrace(t *testing.T) float64 {
	t.Helper()
	s := sim.New(1)
	m := dbwlm.New(s, engine.Config{Cores: 4, MemoryMB: 4096, IOMBps: 400})
	m.Admission = &admission.MPLThreshold{Engine: m.Engine(), Max: 1}
	m.MaxQueueDelay = sim.Second
	var dispatched []int64
	m.OnDispatch = func(rr *dbwlm.Running) { dispatched = append(dispatched, rr.Req.ID) }

	m.Submit(longQuery(100)) // blocker: holds the only MPL slot
	m.Submit(longQuery(1))   // victim: queues at t=0
	s.Run(sim.Time(3 * sim.Second))

	if len(dispatched) != 1 || dispatched[0] != 100 {
		t.Fatalf("manager dispatched %v, want only the blocker", dispatched)
	}
	timeouts := 0
	at := -1.0
	for _, e := range m.Stats().Events.Filter(metrics.EventControlAction) {
		if e.What == "queue-timeout" {
			timeouts++
			at = e.At.Seconds()
		}
	}
	if timeouts != 1 {
		t.Fatalf("manager recorded %d queue-timeouts, want 1", timeouts)
	}
	return at
}

// rtTimeoutTrace runs the identical trace on the live runtime with a fake
// clock, ticking RetryNow at the Manager's 500ms retry instants, and returns
// the logical second at which the victim timed out.
func rtTimeoutTrace(t *testing.T) float64 {
	t.Helper()
	var clock atomic.Int64
	r, err := rt.New([]rt.ClassSpec{
		{Name: "w", MaxMPL: 1, MaxQueueDelay: time.Second},
	}, rt.Options{Now: clock.Load})
	if err != nil {
		t.Fatal(err)
	}
	blocker := r.Admit(0, 0)
	if !blocker.Admitted() {
		t.Fatal("blocker not admitted")
	}
	verdictAt := make(chan float64, 1)
	go func() {
		g := r.Admit(0, 0)
		if g.Verdict() != rt.RejectedTimeout {
			t.Errorf("victim verdict %v, want timeout", g.Verdict())
		}
		verdictAt <- float64(clock.Load()) / 1e9
	}()
	for r.QueueLen(0) != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	timedOutAt := -1.0
	for _, tick := range []float64{0.5, 1.0, 1.5, 2.0} {
		clock.Store(int64(tick * 1e9))
		r.RetryNow()
		select {
		case at := <-verdictAt:
			timedOutAt = at
		case <-time.After(20 * time.Millisecond):
			// Still parked. At tick 1.0 the victim has waited EXACTLY
			// MaxQueueDelay; the strictly-greater rule keeps it queued —
			// the boundary this test pins on both paths.
			if q := r.QueueLen(0); q != 1 {
				t.Fatalf("tick %.1fs: queue length %d, want 1", tick, q)
			}
		}
		if timedOutAt >= 0 {
			break
		}
	}
	if timedOutAt < 0 {
		t.Fatal("victim never timed out")
	}
	if got := r.StatsOf(0).Timeouts; got != 1 {
		t.Fatalf("timeout counter %d, want 1", got)
	}
	r.Done(blocker, 0)
	return timedOutAt
}

// TestQueueTimeoutEquivalence: a request that has waited exactly
// MaxQueueDelay survives the retry check on both paths; both reject it at the
// first retry instant strictly after the deadline — 1.5s on this trace.
func TestQueueTimeoutEquivalence(t *testing.T) {
	mgrAt := managerTimeoutTrace(t)
	rtAt := rtTimeoutTrace(t)
	if mgrAt != rtAt {
		t.Fatalf("manager timed out at %.1fs, runtime at %.1fs", mgrAt, rtAt)
	}
	if mgrAt != 1.5 {
		t.Fatalf("timeout fired at %.1fs, want 1.5s (first retry strictly after the 1s deadline)", mgrAt)
	}
}

// batchLine renders one retry tick's admissions for cross-path comparison.
func batchLine(sec float64, ids []int64) string {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return fmt.Sprintf("t=%.1fs admit %v", sec, ids)
}

// managerStormTrace: 10 requests queue behind an MPL-1 gate; the gate opens
// wide (Max=100) at t=0.45s, just before the first retry. RetryBatch=3 must
// meter the queued work out as 3/3/3/1 across successive retry cycles.
func managerStormTrace(t *testing.T) []string {
	t.Helper()
	s := sim.New(1)
	m := dbwlm.New(s, engine.Config{Cores: 4, MemoryMB: 4096, IOMBps: 400})
	ctrl := &admission.MPLThreshold{Engine: m.Engine(), Max: 1}
	m.Admission = ctrl
	m.RetryBatch = 3
	byTick := map[float64][]int64{}
	m.OnDispatch = func(rr *dbwlm.Running) {
		if rr.Req.ID == 100 {
			return // blocker
		}
		sec := m.Now().Seconds()
		byTick[sec] = append(byTick[sec], rr.Req.ID)
	}
	m.Submit(longQuery(100))
	for i := int64(0); i < 10; i++ {
		m.Submit(longQuery(i))
	}
	s.Schedule(sim.Duration(0.45*float64(sim.Second)), func() { ctrl.Max = 100 })
	s.Run(sim.Time(3 * sim.Second))
	return renderTicks(byTick)
}

// rtStormTrace replays the storm trace against the live runtime: the same
// gate-open happens via ApplyPolicy at logical t=0.45s, and RetryNow ticks at
// the Manager's retry instants.
func rtStormTrace(t *testing.T) []string {
	t.Helper()
	var clock atomic.Int64
	r, err := rt.New([]rt.ClassSpec{
		{Name: "w", MaxMPL: 1, RetryBatch: 3},
	}, rt.Options{Now: clock.Load})
	if err != nil {
		t.Fatal(err)
	}
	blocker := r.Admit(0, 0)
	var (
		mu      sync.Mutex
		order   []int64
		grants  []rt.Grant
		wg      sync.WaitGroup
		expectQ int64
	)
	for i := int64(0); i < 10; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			g := r.Admit(0, 0)
			if !g.Admitted() {
				t.Errorf("request %d verdict %v", i, g.Verdict())
				return
			}
			mu.Lock()
			order = append(order, i)
			grants = append(grants, g)
			mu.Unlock()
		}(i)
		expectQ++
		for r.QueueLen(0) != expectQ {
			time.Sleep(50 * time.Microsecond)
		}
	}
	clock.Store(int64(0.45 * 1e9))
	if err := r.ApplyPolicy(&policy.RuntimePolicy{Classes: []policy.RuntimeClassLimit{
		{Class: "w", MaxMPL: 100, RetryBatch: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	// Reload parity: limits changed, but parked waiters flow only at retry
	// instants — nothing admits at 0.45s itself.
	time.Sleep(10 * time.Millisecond)
	if got := admittedCount(&mu, &order); got != 0 {
		t.Fatalf("reload admitted %d waiters before a retry cycle", got)
	}
	want := 0
	for _, tick := range []float64{0.5, 1.0, 1.5, 2.0} {
		clock.Store(int64(tick * 1e9))
		r.RetryNow()
		want += 3
		if want > 10 {
			want = 10
		}
		// Wait for exactly this tick's batch before advancing the clock, so
		// positional reconstruction below maps admissions to ticks.
		deadline := time.Now().Add(2 * time.Second)
		for admittedCount(&mu, &order) != want {
			if time.Now().After(deadline) {
				t.Fatalf("tick %.1fs: admitted %d, want %d", tick, admittedCount(&mu, &order), want)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	wg.Wait()
	// Reconstruct per-tick batches from the admission order: FIFO guarantees
	// batch k admitted waiters 3k..min(3k+2,9) at tick (k+1)*0.5s.
	out := map[float64][]int64{}
	mu.Lock()
	for k := 0; k*3 < len(order); k++ {
		hi := (k + 1) * 3
		if hi > len(order) {
			hi = len(order)
		}
		out[0.5*float64(k+1)] = append([]int64(nil), order[k*3:hi]...)
	}
	mu.Unlock()
	for _, g := range grants {
		r.Done(g, 0)
	}
	r.Done(blocker, 0)
	return renderTicks(out)
}

func admittedCount(mu *sync.Mutex, order *[]int64) int {
	mu.Lock()
	defer mu.Unlock()
	return len(*order)
}

func renderTicks(byTick map[float64][]int64) []string {
	secs := make([]float64, 0, len(byTick))
	for sec := range byTick {
		secs = append(secs, sec)
	}
	sort.Float64s(secs)
	out := make([]string, 0, len(secs))
	for _, sec := range secs {
		out = append(out, batchLine(sec, byTick[sec]))
	}
	return out
}

// TestRetryBatchStormEquivalence: when a closed gate opens wide, both paths
// meter the queued backlog at RetryBatch per retry cycle — same requests, in
// the same cycles, at the same instants.
func TestRetryBatchStormEquivalence(t *testing.T) {
	mgr := managerStormTrace(t)
	live := rtStormTrace(t)
	want := []string{
		"t=0.5s admit [0 1 2]",
		"t=1.0s admit [3 4 5]",
		"t=1.5s admit [6 7 8]",
		"t=2.0s admit [9]",
	}
	if fmt.Sprint(mgr) != fmt.Sprint(want) {
		t.Fatalf("manager trace %v, want %v", mgr, want)
	}
	if fmt.Sprint(live) != fmt.Sprint(want) {
		t.Fatalf("runtime trace %v, want %v", live, want)
	}
}
