package rt

import "sync"

// waiter is one parked admission request. Its channel is buffered for one
// Grant — the verdict — so the waker never blocks while holding the queue
// lock. Waiters are pooled: the waker's send is the last touch before the
// waiting goroutine receives, returns the waiter to the pool, and a later
// Admit may reuse it.
type waiter struct {
	ch         chan Grant
	enqueuedAt int64 // runtime clock nanos at enqueue
	cost       float64
	// Flight-recorder identity, carried so the dequeue event correlates
	// with the enqueue (all zero when the recorder is off).
	qid       int64
	fp        uint64
	predicted float64
}

var waiterPool = sync.Pool{New: func() any { return &waiter{ch: make(chan Grant, 1)} }}

// waitQueue is a per-class FIFO of parked requests. It is intentionally a
// plain mutex-guarded ring: the queue is touched only when the gate is
// closed (or a retry cycle runs), never on the lock-free admit/release fast
// path, so a cheap lock here buys strict FIFO-within-class ordering.
type waitQueue struct {
	mu   sync.Mutex // guards q and head
	q    []*waiter
	head int
}

// push appends a waiter. Caller holds mu.
func (w *waitQueue) push(x *waiter) { w.q = append(w.q, x) }

// peek returns the oldest waiter without removing it, or nil. Caller holds mu.
func (w *waitQueue) peek() *waiter {
	if w.head >= len(w.q) {
		return nil
	}
	return w.q[w.head]
}

// pop removes the oldest waiter, compacting the ring lazily. Caller holds mu.
func (w *waitQueue) pop() {
	w.q[w.head] = nil
	w.head++
	if w.head > 64 && w.head*2 > len(w.q) {
		n := copy(w.q, w.q[w.head:])
		for i := n; i < len(w.q); i++ {
			w.q[i] = nil
		}
		w.q = w.q[:n]
		w.head = 0
	}
}

// len reports the number of parked waiters. Caller holds mu.
func (w *waitQueue) len() int { return len(w.q) - w.head }
