package rt

import (
	"testing"

	"dbwlm/internal/policy"
)

// BenchmarkLiveAdmit measures the lock-free admit/release cycle under
// parallel load. Run with -cpu=1,2,4,8 (scripts/bench_live.sh does) to record
// admit throughput at GOMAXPROCS 1/2/4/8: the striped gate and recorders keep
// the parallel paths on disjoint cache lines, so throughput should scale with
// cores instead of serializing on a shared mutex.
func BenchmarkLiveAdmit(b *testing.B) {
	r, err := New([]ClassSpec{
		{Name: "oltp", Priority: policy.PriorityHigh, MaxMPL: 1 << 16, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := r.Admit(0, 10)
			r.Done(g, 0.001)
		}
	})
}

// BenchmarkLiveAdmitContended holds the gate near its MPL limit so most CAS
// attempts race: the worst case for the striped design.
func BenchmarkLiveAdmitContended(b *testing.B) {
	const mpl = 8
	r, err := New([]ClassSpec{{Name: "oltp", MaxMPL: mpl}}, Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-fill all but one slot so every admit fights for the last one.
	var held []Grant
	for i := 0; i < mpl-1; i++ {
		held = append(held, r.Admit(0, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := r.Admit(0, 0)
		r.Done(g, 0)
	}
	b.StopTimer()
	for _, g := range held {
		r.Done(g, 0)
	}
}

// BenchmarkSnapshot prices the merged-shard monitoring read with a reused
// scratch buffer — the shape of the /stats polling loop.
func BenchmarkSnapshot(b *testing.B) {
	r, err := New([]ClassSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Done(r.Admit(ClassID(i%3), 10), 0.001)
	}
	var buf []ClassStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.SnapshotInto(buf)
	}
}
