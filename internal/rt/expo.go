package rt

import (
	"dbwlm/internal/admission"
	"dbwlm/internal/obsv"
)

// WritePrometheus renders the runtime's merged-shard statistics as
// Prometheus text-format families — the GET /metrics body. Counters are the
// striped per-class recorders (monotone, so scrape-to-scrape rates are
// meaningful); histograms export their cumulative log-bucket arrays with
// per-class labels.
func (r *Runtime) WritePrometheus(p *obsv.PromWriter) {
	p.Gauge("dbwlm_in_engine", "Requests currently admitted across all classes.")
	p.Val(float64(r.InEngine()))
	p.Gauge("dbwlm_low_priority_gate", "1 while the congestion gate is holding low-priority work.")
	gate := 0.0
	if r.LowPriorityGate() {
		gate = 1
	}
	p.Val(gate)
	p.Gauge("dbwlm_mem_pressure", "Externally fed memory demand / capacity.")
	p.Val(r.memPressure.Value())
	p.Gauge("dbwlm_conflict_ratio", "Externally fed lock-conflict ratio.")
	p.Val(r.conflictRatio.Value())
	p.Gauge("dbwlm_cpu_utilization", "Externally fed CPU utilization fraction.")
	p.Val(r.cpuUtil.Value())

	p.Gauge("dbwlm_class_in_engine", "Admitted requests per class.")
	for _, cs := range r.classes {
		p.Val(float64(cs.gate.occupancy()), "class", cs.spec.Name)
	}
	p.Gauge("dbwlm_class_queue_len", "Waiters parked per class queue.")
	for _, cs := range r.classes {
		p.Val(float64(cs.gate.waiters.Load()), "class", cs.spec.Name)
	}
	p.Counter("dbwlm_decisions_total", "Admission decisions by class and verdict (rejected spans cost and predicted-bucket rejections).")
	for _, cs := range r.classes {
		p.Val(float64(cs.admitted.Value()), "class", cs.spec.Name, "verdict", Admitted.String())
		p.Val(float64(cs.rejected.Value()), "class", cs.spec.Name, "verdict", RejectedCost.String())
		p.Val(float64(cs.timeouts.Value()), "class", cs.spec.Name, "verdict", RejectedTimeout.String())
	}
	p.Counter("dbwlm_queued_total", "Requests that parked in a wait queue before their verdict.")
	for _, cs := range r.classes {
		p.Val(float64(cs.queued.Value()), "class", cs.spec.Name)
	}
	p.Counter("dbwlm_done_total", "Admitted requests released via Done.")
	for _, cs := range r.classes {
		p.Val(float64(cs.completed.Value()), "class", cs.spec.Name)
	}
	p.Histogram("dbwlm_latency_seconds", "Service time between grant and release.")
	for _, cs := range r.classes {
		p.Hist(cs.latency, "class", cs.spec.Name)
	}
	p.Histogram("dbwlm_queue_wait_seconds", "Time parked in the wait queue before admission.")
	for _, cs := range r.classes {
		p.Hist(cs.wait, "class", cs.spec.Name)
	}
	p.Histogram("dbwlm_velocity_ratio", "Execution velocity (ideal seconds / observed seconds) of completed work.")
	for _, cs := range r.classes {
		p.Hist(cs.velocity, "class", cs.spec.Name)
	}

	if rec := r.rec; rec != nil {
		p.Counter("dbwlm_trace_recorded_total", "Flight-recorder events ever recorded.")
		p.Val(float64(rec.Recorded()))
		p.Counter("dbwlm_trace_overwritten_total", "Flight-recorder events overwritten by ring wrap.")
		p.Val(float64(rec.Overwritten()))
		p.Gauge("dbwlm_trace_capacity", "Flight-recorder slot capacity.")
		p.Val(float64(rec.Cap()))
	}

	// The dbwlm_slo_* families appear only when the SLO engine is attached,
	// same gating as the recorder families above.
	r.slo.WritePrometheus(p)
}

// WritePrometheus renders the prediction pipeline's families: plan-cache
// traffic, bucket-labeled prediction counts, the predicted-seconds
// distribution, and model training state.
func (g *PredictGate) WritePrometheus(p *obsv.PromWriter) {
	cache := g.cache.Stats()
	p.Counter("dbwlm_plan_cache_hits_total", "Fingerprint plan-cache hits.")
	p.Val(float64(cache.Hits))
	p.Counter("dbwlm_plan_cache_misses_total", "Fingerprint plan-cache misses (parse+plan paid).")
	p.Val(float64(cache.Misses))
	p.Gauge("dbwlm_plan_cache_entries", "Interned plans resident in the cache.")
	p.Val(float64(cache.Entries))
	p.Counter("dbwlm_predictions_total", "Modeled runtime predictions by bucket.")
	for b := 0; b < numBuckets; b++ {
		p.Val(float64(g.byBucket[b].Value()), "bucket", admission.RuntimeBucket(b).String())
	}
	p.Counter("dbwlm_predict_gated_total", "Admissions rejected because the predicted bucket exceeded the ceiling.")
	p.Val(float64(g.gated.Value()))
	p.Counter("dbwlm_predict_unmodeled_total", "Decisions taken before the model was trained.")
	p.Val(float64(g.unmodeled.Value()))
	p.Counter("dbwlm_predict_retrains_total", "Background model retrains completed.")
	p.Val(float64(g.knn.Retrains()))
	p.Gauge("dbwlm_predict_trained", "1 once the predictor gates on a trained model.")
	trained := 0.0
	if g.knn.Trained() {
		trained = 1
	}
	p.Val(trained)
	p.Histogram("dbwlm_predicted_seconds", "Predicted service seconds on modeled admits.")
	p.Hist(g.predicted)
}
