// Package rt is the real-time workload-management runtime: it runs the
// taxonomy's admission controls (Sections 3.2/3.4, Table 2) against real
// concurrent goroutine traffic instead of simulated time. The admit/release
// hot path is lock-free — per-class MPL and cost limits live in atomically
// swapped limit blocks, admission slots in cache-line-padded shards taken
// with CAS — and statistics collection is striped (internal/metrics), so no
// mutex is ever touched while the gate is open. Queued work waits in
// per-class FIFO queues with the queue-timeout and retry-batch semantics of
// the simulated Manager, and the merged-shard snapshot satisfies
// admission.View, so the threshold and indicator controllers from
// internal/admission consume the live runtime unchanged.
package rt

import (
	"math/rand/v2"
	"sync/atomic"
)

// gateLimits is one immutable limit block; policy reloads swap the pointer.
type gateLimits struct {
	maxMPL        int64   // concurrent admissions (0 = unlimited)
	maxCost       float64 // timerons (0 = unlimited)
	maxQueueDelay int64   // nanoseconds queued before timeout (0 = forever)
	retryBatch    int32   // waiters re-evaluated per retry cycle (0 = all)
}

// gateShard is one padded slot counter. Admitted requests hold one unit in
// exactly one shard; the shard index travels in the Grant so release
// decrements the same cell.
type gateShard struct {
	n atomic.Int64
	_ [120]byte
}

// gate is a lock-free striped admission gate. The MPL limit is split across
// the shards (shardCap); an admit CASes its home shard and probes the others
// before declaring the gate full, so the gate admits exactly maxMPL
// concurrent holders while uncontended admits touch a single cache line.
type gate struct {
	shards  []gateShard
	mask    uint32
	limits  atomic.Pointer[gateLimits]
	waiters atomic.Int64 // queued requests; fast paths branch on it
}

func newGate(shards int, lim gateLimits) *gate {
	g := &gate{shards: make([]gateShard, shards), mask: uint32(shards - 1)}
	g.limits.Store(&lim)
	return g
}

// stripeIdx picks a home shard from the runtime's per-thread fast random
// state — allocation-free and lock-free (see metrics.stripeIdx for why).
//
//dbwlm:hotpath
func stripeIdx(mask uint32) uint32 { return rand.Uint32() & mask }

// shardCap is shard i's slice of the MPL limit: limit/shards with the
// remainder spread over the lowest-indexed shards, so the caps sum to
// exactly the limit.
//
//dbwlm:hotpath
func shardCap(limit int64, shards, i int) int64 {
	c := limit / int64(shards)
	if int64(i) < limit%int64(shards) {
		c++
	}
	return c
}

// tryEnter takes one admission slot, returning the shard it was taken from,
// or -1 when every shard is at its cap (the gate is full). With no MPL limit
// the home shard is incremented unconditionally.
//
//dbwlm:hotpath
func (g *gate) tryEnter() int32 {
	lim := g.limits.Load()
	home := int(stripeIdx(g.mask))
	if lim.maxMPL <= 0 {
		g.shards[home].n.Add(1)
		return int32(home)
	}
	n := len(g.shards)
	for probe := 0; probe < n; probe++ {
		i := (home + probe) & int(g.mask)
		cap := shardCap(lim.maxMPL, n, i)
		for {
			cur := g.shards[i].n.Load()
			if cur >= cap {
				break
			}
			if g.shards[i].n.CompareAndSwap(cur, cur+1) {
				return int32(i)
			}
		}
	}
	return -1
}

// leave releases a slot taken by tryEnter.
//
//dbwlm:hotpath
func (g *gate) leave(shard int32) { g.shards[shard].n.Add(-1) }

// occupancy merges the shard counters: the number of current slot holders.
//
//dbwlm:hotpath
func (g *gate) occupancy() int64 {
	var sum int64
	for i := range g.shards {
		sum += g.shards[i].n.Load()
	}
	return sum
}
