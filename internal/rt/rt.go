package rt

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dbwlm/internal/admission"
	"dbwlm/internal/engine"
	"dbwlm/internal/metrics"
	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
	"dbwlm/internal/slo"
)

// ClassID indexes the runtime's fixed class table.
type ClassID int32

// ClassSpec declares one service class at runtime construction. Limits are
// the initial policy; ApplyPolicy reloads them while traffic is flowing.
type ClassSpec struct {
	Name     string
	Priority policy.Priority
	// MaxMPL caps concurrently admitted requests of the class (0 = unlimited).
	MaxMPL int
	// MaxCostTimerons rejects requests whose estimated cost exceeds it
	// (0 = unlimited).
	MaxCostTimerons float64
	// MaxQueueDelay rejects queued requests that have waited longer, checked
	// at retry points — Manager.MaxQueueDelay semantics (0 = wait forever).
	MaxQueueDelay time.Duration
	// RetryBatch caps waiters re-evaluated per retry cycle (0 = all) —
	// Manager.RetryBatch semantics.
	RetryBatch int
}

// Options tunes the runtime.
type Options struct {
	// RetryEvery is the cadence of the background queue re-evaluation loop
	// started by Start (default 500ms — Manager.AdmissionRetry's default).
	RetryEvery time.Duration
	// GlobalMaxMPL caps concurrent admissions across all classes
	// (0 = unlimited).
	GlobalMaxMPL int
	// GatePriorityBelow: when the low-priority gate is closed, only classes
	// with priority strictly below this queue (default PriorityHigh —
	// admission.Indicators' default).
	GatePriorityBelow policy.Priority
	// Shards overrides the per-gate shard count (rounded up to a power of
	// two; default sized from GOMAXPROCS).
	Shards int
	// Now overrides the monotonic clock (nanoseconds); tests inject a fake
	// clock to drive queue timeouts deterministically.
	Now func() int64
}

// Verdict is the outcome of an admission attempt.
type Verdict uint8

// Verdicts.
const (
	// Admitted: the request holds a slot; the caller must Done the Grant.
	Admitted Verdict = iota
	// RejectedCost: estimated cost over the class limit.
	RejectedCost
	// RejectedTimeout: queued longer than MaxQueueDelay.
	RejectedTimeout
	// RejectedPredicted: the prediction gate forecast a runtime beyond the
	// admissible bucket (PredictGate).
	RejectedPredicted
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case RejectedCost:
		return "rejected-cost"
	case RejectedTimeout:
		return "rejected-timeout"
	case RejectedPredicted:
		return "rejected-predicted"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// VerdictFromName parses a verdict name as rendered by String (used by the
// /trace filter).
func VerdictFromName(name string) (Verdict, bool) {
	for v := Admitted; v <= RejectedPredicted; v++ {
		if v.String() == name {
			return v, true
		}
	}
	return 0, false
}

// Grant is the value an admission attempt resolves to. It is plain data — no
// allocation on the admit path — and an admitted Grant must be handed back
// via Done exactly once (it carries the gate shards its slot was taken from).
type Grant struct {
	verdict Verdict
	class   ClassID
	shard   int32
	gshard  int32
	start   int64 // runtime clock nanos at admission
	id      int64 // flight-recorder admission ID (0 when the recorder is off)
}

// ID reports the admission ID correlating this request's flight-recorder
// events (0 when the recorder is off).
//
//dbwlm:hotpath
func (g Grant) ID() int64 { return g.id }

// Admitted reports whether the request holds a slot.
//
//dbwlm:hotpath
func (g Grant) Admitted() bool { return g.verdict == Admitted }

// Verdict reports the admission outcome.
//
//dbwlm:hotpath
func (g Grant) Verdict() Verdict { return g.verdict }

// Class reports the class the request was admitted (or rejected) under.
//
//dbwlm:hotpath
func (g Grant) Class() ClassID { return g.class }

// classState is one service class: its gate, FIFO queue, and striped stats.
type classState struct {
	spec  ClassSpec
	gate  *gate
	queue waitQueue

	admitted  *metrics.StripedCounter
	queued    *metrics.StripedCounter
	rejected  *metrics.StripedCounter
	timeouts  *metrics.StripedCounter
	completed *metrics.StripedCounter
	latency   *metrics.StripedHistogram // seconds admitted -> done
	wait      *metrics.StripedHistogram // seconds queued before admission
	velocity  *metrics.StripedHistogram // ideal/actual for completed work
}

// Runtime is the live admission runtime. All exported methods are safe for
// concurrent use.
type Runtime struct {
	classes []*classState
	byName  map[string]ClassID
	global  *gate

	now        func() int64
	retryEvery time.Duration

	gatePriorityBelow policy.Priority
	lowPriorityGate   atomicBool

	// Externally fed load indicators (the live analogue of engine gauges the
	// runtime cannot observe itself); admission.View exposes them.
	memPressure   metrics.AtomicGauge
	conflictRatio metrics.AtomicGauge
	cpuUtil       metrics.AtomicGauge

	// rec is the flight recorder; nil (the default) disables it, and every
	// hook below is a single nil-check branch in that state. qids hands out
	// the admission IDs that correlate one request's lifecycle events —
	// striped, so enabling the recorder adds no shared-line write to the
	// admit path (qid.go).
	rec  *obsv.Recorder
	qids qidAlloc

	// slo is the SLO attainment engine; nil (the default) disables deadline
	// accounting at Done, same single-branch discipline as rec.
	slo *slo.Engine

	stop chan struct{}
}

// SetRecorder attaches a flight recorder; nil detaches it. Call before
// serving traffic — the runtime reads the pointer without synchronization on
// the admit path.
func (r *Runtime) SetRecorder(rec *obsv.Recorder) { r.rec = rec }

// Recorder reports the attached flight recorder (nil when disabled).
func (r *Runtime) Recorder() *obsv.Recorder { return r.rec }

// SetSLO attaches an SLO engine; nil detaches it. Call before serving
// traffic — the runtime reads the pointer without synchronization at Done.
// The engine's class indexes must match this runtime's class table (build it
// from specs in the same order), and it should share the runtime clock so
// windows and deadlines agree.
func (r *Runtime) SetSLO(e *slo.Engine) { r.slo = e }

// SLO reports the attached SLO engine (nil when disabled).
func (r *Runtime) SLO() *slo.Engine { return r.slo }

// atomicBool avoids importing sync/atomic here just for one flag.
type atomicBool struct{ v metrics.AtomicGauge }

//dbwlm:hotpath
func (b *atomicBool) Store(on bool) {
	if on {
		b.v.Set(1)
	} else {
		b.v.Set(0)
	}
}

//dbwlm:hotpath
func (b *atomicBool) Load() bool { return b.v.Value() != 0 }

// New builds a runtime over the given class table. The table is fixed for
// the runtime's lifetime; limits reload via ApplyPolicy.
func New(specs []ClassSpec, opts Options) (*Runtime, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("rt: no classes")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = defaultShards()
	} else {
		shards = ceilPow2(shards)
	}
	r := &Runtime{
		byName:            make(map[string]ClassID, len(specs)),
		retryEvery:        opts.RetryEvery,
		gatePriorityBelow: opts.GatePriorityBelow,
		now:               opts.Now,
	}
	if r.retryEvery <= 0 {
		r.retryEvery = 500 * time.Millisecond
	}
	if r.gatePriorityBelow == 0 {
		r.gatePriorityBelow = policy.PriorityHigh
	}
	if r.now == nil {
		epoch := time.Now()
		r.now = func() int64 { return int64(time.Since(epoch)) }
	}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("rt: class with empty name")
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("rt: duplicate class %q", spec.Name)
		}
		cs := &classState{
			spec:      spec,
			gate:      newGate(shards, limitsOf(spec)),
			admitted:  metrics.NewStripedCounter(shards),
			queued:    metrics.NewStripedCounter(shards),
			rejected:  metrics.NewStripedCounter(shards),
			timeouts:  metrics.NewStripedCounter(shards),
			completed: metrics.NewStripedCounter(shards),
			latency:   metrics.NewStripedHistogram(shards),
			wait:      metrics.NewStripedHistogram(shards),
			velocity:  metrics.NewStripedHistogram(shards),
		}
		r.byName[spec.Name] = ClassID(len(r.classes))
		r.classes = append(r.classes, cs)
	}
	r.global = newGate(shards, gateLimits{maxMPL: int64(opts.GlobalMaxMPL)})
	r.qids.init(shards)
	return r, nil
}

func limitsOf(spec ClassSpec) gateLimits {
	return gateLimits{
		maxMPL:        int64(spec.MaxMPL),
		maxCost:       spec.MaxCostTimerons,
		maxQueueDelay: spec.MaxQueueDelay.Nanoseconds(),
		retryBatch:    int32(spec.RetryBatch),
	}
}

// Class resolves a class name.
func (r *Runtime) Class(name string) (ClassID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// ClassName reports the name of a class ID.
func (r *Runtime) ClassName(id ClassID) string { return r.classes[id].spec.Name }

// NumClasses reports the class-table size.
//
//dbwlm:hotpath
func (r *Runtime) NumClasses() int { return len(r.classes) }

// NowNanos reads the runtime's monotonic clock.
func (r *Runtime) NowNanos() int64 { return r.now() }

// ElapsedSeconds reports how long an admitted Grant has been held — the
// service time the /done path feeds back into the prediction models.
//
//dbwlm:hotpath
func (r *Runtime) ElapsedSeconds(g Grant) float64 {
	if g.verdict != Admitted {
		return 0
	}
	return float64(r.now()-g.start) / 1e9
}

// Admit runs one request through the admission gate, blocking while it is
// queued. The steady-state path — gate open, no waiters — is lock-free and
// allocation-free: a limit-block load, a CAS on a padded gate shard, and
// striped counter increments.
//
//dbwlm:hotpath
func (r *Runtime) Admit(class ClassID, costTimerons float64) Grant {
	return r.admitWith(class, costTimerons, 0, 0, true)
}

// AdmitNoWait is Admit without the parked wait: a request the gate cannot
// seat immediately — MPL exhausted or the congestion gate closed on its
// priority — is rejected with RejectedTimeout (a queue timeout at zero wait)
// instead of queueing. This is the batched wire transport's deadline
// semantics: a batch dispatcher cannot park one op without stalling every op
// behind it in the frame, so ops carrying a wait budget fail fast and the
// client retries on a later frame if it still wants the slot.
//
//dbwlm:hotpath
func (r *Runtime) AdmitNoWait(class ClassID, costTimerons float64) Grant {
	return r.admitWith(class, costTimerons, 0, 0, false)
}

// admitWith is Admit plus the prediction pipeline's trace context — the
// statement fingerprint and predicted service seconds travel into the
// flight-recorder events (both zero on the plain Admit path) — and the wait
// flag separating blocking admits from the wire transport's fail-fast ones.
//
//dbwlm:hotpath
func (r *Runtime) admitWith(class ClassID, costTimerons float64, fp uint64, predicted float64, wait bool) Grant {
	cs := r.classes[class]
	lim := cs.gate.limits.Load()
	var qid int64
	if r.rec != nil {
		qid = r.qids.next()
	}
	if lim.maxCost > 0 && costTimerons > lim.maxCost {
		cs.rejected.Inc()
		if r.rec != nil {
			r.rec.Record(obsv.Event{At: r.now(), QID: qid, FP: fp,
				Kind: obsv.KindAdmit, Reason: obsv.ReasonCostLimit,
				Verdict: uint8(RejectedCost), Class: int32(class),
				Value: costTimerons, Aux: predicted})
		}
		return Grant{verdict: RejectedCost, class: class, id: qid}
	}
	gated := r.lowPriorityGate.Load() && cs.spec.Priority < r.gatePriorityBelow
	// FIFO within class: once waiters exist, new arrivals park behind them
	// instead of barging past on the fast path.
	if !gated && cs.gate.waiters.Load() == 0 {
		if gs := r.global.tryEnter(); gs >= 0 {
			if s := cs.gate.tryEnter(); s >= 0 {
				cs.admitted.Inc()
				start := r.now()
				if r.rec != nil {
					r.rec.Record(obsv.Event{At: start, QID: qid, FP: fp,
						Kind: obsv.KindAdmit, Reason: obsv.ReasonFastPath,
						Verdict: uint8(Admitted), Class: int32(class),
						Value: costTimerons, Aux: predicted})
				}
				return Grant{verdict: Admitted, class: class, shard: s, gshard: gs, start: start, id: qid}
			}
			r.global.leave(gs)
		}
	}
	if !wait {
		cs.timeouts.Inc()
		if r.rec != nil {
			r.rec.Record(obsv.Event{At: r.now(), QID: qid, FP: fp,
				Kind: obsv.KindAdmit, Reason: obsv.ReasonQueueTimeout,
				Verdict: uint8(RejectedTimeout), Class: int32(class),
				Value: costTimerons, Aux: 0})
		}
		return Grant{verdict: RejectedTimeout, class: class, id: qid}
	}
	//dbwlm:nolint hotpath, hotclosure -- the queued slow path: once a request must park, the channel wait dwarfs the waiter-pool setup
	return r.await(cs, class, costTimerons, qid, fp, predicted, gated)
}

// await parks the request in its class queue until a retry cycle or a
// release hands it a verdict.
func (r *Runtime) await(cs *classState, class ClassID, cost float64, qid int64, fp uint64, predicted float64, gated bool) Grant {
	w := waiterPool.Get().(*waiter)
	w.enqueuedAt = r.now()
	w.cost = cost
	w.qid = qid
	w.fp = fp
	w.predicted = predicted
	if r.rec != nil {
		reason := obsv.ReasonGateFull
		if gated {
			reason = obsv.ReasonLowPriorityGate
		}
		r.rec.Record(obsv.Event{At: w.enqueuedAt, QID: qid, FP: fp,
			Kind: obsv.KindEnqueue, Reason: reason, Verdict: obsv.NoVerdict,
			Class: int32(class), Value: cost, Aux: predicted})
	}
	cs.queue.mu.Lock()
	cs.queue.push(w)
	cs.gate.waiters.Add(1)
	cs.queue.mu.Unlock()
	cs.queued.Inc()
	g := <-w.ch
	waiterPool.Put(w)
	return g
}

// Done releases an admitted Grant: the service latency is recorded (plus
// execution velocity when the caller knows the request's ideal stand-alone
// seconds; pass 0 when unknown), the slot returns to the gate, and parked
// waiters are drained if any. Calling Done on a non-admitted Grant is a
// no-op; calling it twice on the same Grant corrupts the gate — the runtime
// is a cooperative gate, not a hostile-client guard.
//
//dbwlm:hotpath
func (r *Runtime) Done(g Grant, idealSeconds float64) {
	if g.verdict != Admitted {
		return
	}
	cs := r.classes[g.class]
	elapsed := float64(r.now()-g.start) / 1e9
	cs.latency.Record(elapsed)
	if idealSeconds > 0 && elapsed > 0 {
		v := idealSeconds / elapsed
		if v > 1 {
			v = 1
		}
		cs.velocity.Record(v)
	}
	cs.completed.Inc()
	missed := false
	if r.slo != nil {
		missed = r.slo.Observe(int32(g.class), elapsed)
	}
	if r.rec != nil {
		reason := obsv.ReasonNone
		if missed {
			reason = obsv.ReasonDeadlineMiss
		}
		r.rec.Record(obsv.Event{At: r.now(), QID: g.id,
			Kind: obsv.KindDone, Reason: reason, Verdict: obsv.NoVerdict,
			Class: int32(g.class), Value: elapsed, Aux: idealSeconds})
	}
	cs.gate.leave(g.shard)
	r.global.leave(g.gshard)
	if cs.gate.waiters.Load() > 0 {
		//dbwlm:nolint hotpath, hotclosure -- waiters parked means the uncontended fast path is already gone; drain takes the queue mutex by design
		r.drain(cs, g.class, false)
	}
}

// drain re-evaluates the head of one class queue: expired waiters time out
// (only at retry points — enforceTimeout — matching Manager, which checks
// the queue-timeout when its retry timer fires, with "waited strictly longer
// than MaxQueueDelay" semantics), admissible waiters take slots in FIFO
// order, and at most retryBatch waiters are decided per call so a gate
// momentarily opening cannot trigger a mass re-admission storm.
func (r *Runtime) drain(cs *classState, class ClassID, enforceTimeout bool) {
	lim := cs.gate.limits.Load()
	batch := int(lim.retryBatch)
	if batch <= 0 {
		batch = int(^uint(0) >> 1)
	}
	now := r.now()
	gated := r.lowPriorityGate.Load() && cs.spec.Priority < r.gatePriorityBelow
	cs.queue.mu.Lock()
	defer cs.queue.mu.Unlock()
	for processed := 0; processed < batch; processed++ {
		w := cs.queue.peek()
		if w == nil {
			return
		}
		if enforceTimeout && lim.maxQueueDelay > 0 && now-w.enqueuedAt > lim.maxQueueDelay {
			cs.queue.pop()
			cs.gate.waiters.Add(-1)
			cs.timeouts.Inc()
			if r.rec != nil {
				r.rec.Record(obsv.Event{At: now, QID: w.qid, FP: w.fp,
					Kind: obsv.KindAdmit, Reason: obsv.ReasonQueueTimeout,
					Verdict: uint8(RejectedTimeout), Class: int32(class),
					Value: w.cost, Aux: float64(now-w.enqueuedAt) / 1e9})
			}
			w.ch <- Grant{verdict: RejectedTimeout, class: class, id: w.qid}
			continue
		}
		if gated {
			return
		}
		if lim.maxCost > 0 && w.cost > lim.maxCost {
			// Limits may have tightened since the request queued; a retry
			// re-runs the full decision, as Manager.admit does.
			cs.queue.pop()
			cs.gate.waiters.Add(-1)
			cs.rejected.Inc()
			if r.rec != nil {
				r.rec.Record(obsv.Event{At: now, QID: w.qid, FP: w.fp,
					Kind: obsv.KindAdmit, Reason: obsv.ReasonCostLimit,
					Verdict: uint8(RejectedCost), Class: int32(class),
					Value: w.cost, Aux: w.predicted})
			}
			w.ch <- Grant{verdict: RejectedCost, class: class, id: w.qid}
			continue
		}
		gs := r.global.tryEnter()
		if gs < 0 {
			return
		}
		s := cs.gate.tryEnter()
		if s < 0 {
			r.global.leave(gs)
			return
		}
		cs.queue.pop()
		cs.gate.waiters.Add(-1)
		cs.admitted.Inc()
		cs.wait.Record(float64(now-w.enqueuedAt) / 1e9)
		if r.rec != nil {
			r.rec.Record(obsv.Event{At: now, QID: w.qid, FP: w.fp,
				Kind: obsv.KindAdmit, Reason: obsv.ReasonDrained,
				Verdict: uint8(Admitted), Class: int32(class),
				Value: w.cost, Aux: float64(now-w.enqueuedAt) / 1e9})
		}
		w.ch <- Grant{verdict: Admitted, class: class, shard: s, gshard: gs, start: now, id: w.qid}
	}
}

// RetryNow runs one re-evaluation cycle over every class queue in class-ID
// order — the live analogue of Manager's admission retry event. Tests and
// the background loop call it; it is safe to call concurrently.
func (r *Runtime) RetryNow() {
	for id, cs := range r.classes {
		r.drain(cs, ClassID(id), true)
	}
}

// Start launches the background retry loop at the RetryEvery cadence.
func (r *Runtime) Start() {
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	go func(stop chan struct{}) {
		t := time.NewTicker(r.retryEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.RetryNow()
			case <-stop:
				return
			}
		}
	}(r.stop)
}

// Stop halts the background retry loop.
func (r *Runtime) Stop() {
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
}

// SetLoad feeds externally observed load indicators into the runtime's view
// — the live substitute for engine gauges (memory pressure, lock conflict
// ratio, CPU utilization) that indicator controllers consume via StatsNow.
func (r *Runtime) SetLoad(memPressure, conflictRatio, cpuUtil float64) {
	r.memPressure.Set(memPressure)
	r.conflictRatio.Set(conflictRatio)
	r.cpuUtil.Set(cpuUtil)
}

// SetLowPriorityGate opens or closes the congestion gate: while closed-on,
// classes below GatePriorityBelow queue instead of admitting — the effector
// half of the indicator controller (Zhang et al.), whose Decide loop runs
// against the runtime's View and flips this flag.
func (r *Runtime) SetLowPriorityGate(on bool) { r.lowPriorityGate.Store(on) }

// LowPriorityGate reports the congestion-gate state.
func (r *Runtime) LowPriorityGate() bool { return r.lowPriorityGate.Load() }

// InEngine implements admission.View: the number of currently admitted
// requests across all classes (merged from the global gate's shards).
func (r *Runtime) InEngine() int { return int(r.global.occupancy()) }

// StatsNow implements admission.View: a merged-shard snapshot in the same
// shape the simulated engine reports, so threshold/indicator controllers run
// unchanged. Each figure is exact at the instant its shards were read;
// cross-field consistency is not guaranteed (see DESIGN.md, Live runtime).
func (r *Runtime) StatsNow() engine.Stats {
	resident := int(r.global.occupancy())
	var completed int64
	for _, cs := range r.classes {
		completed += cs.completed.Value()
	}
	return engine.Stats{
		Running:        resident,
		InEngine:       resident,
		Completed:      completed,
		MemPressure:    r.memPressure.Value(),
		ConflictRatio:  r.conflictRatio.Value(),
		CPUUtilization: r.cpuUtil.Value(),
	}
}

var _ admission.View = (*Runtime)(nil)

// ApplyPolicy atomically reloads per-class and global limits from a
// validated runtime policy. Classes named in the policy must exist (the
// class table is fixed at construction); on any error nothing is applied.
func (r *Runtime) ApplyPolicy(p *policy.RuntimePolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i := range p.Classes {
		if _, ok := r.byName[p.Classes[i].Class]; !ok {
			return fmt.Errorf("rt: policy names unknown class %q", p.Classes[i].Class)
		}
	}
	// Objectives apply before gate limits so an SLO error (engine disabled,
	// unknown class) leaves the limits untouched.
	if len(p.SLOs) > 0 && r.slo == nil {
		return fmt.Errorf("rt: policy carries slos but the SLO engine is disabled (start with -slo)")
	}
	for i := range p.SLOs {
		s := &p.SLOs[i]
		if err := r.slo.SetObjective(s.Class, s.TargetMS/1e3, s.MissBudget,
			s.Percentile, s.BurnThreshold); err != nil {
			return err
		}
	}
	for i := range p.Classes {
		c := &p.Classes[i]
		cs := r.classes[r.byName[c.Class]]
		cs.gate.limits.Store(&gateLimits{
			maxMPL:        int64(c.MaxMPL),
			maxCost:       c.MaxCostTimerons,
			maxQueueDelay: c.MaxQueueDelayMS * int64(time.Millisecond),
			retryBatch:    int32(c.RetryBatch),
		})
	}
	glim := *r.global.limits.Load()
	glim.maxMPL = int64(p.GlobalMaxMPL)
	r.global.limits.Store(&glim)
	// New limits take effect immediately on the admit fast path; parked
	// waiters are re-evaluated at the next retry cycle or release — the same
	// cadence at which the simulated Manager notices a reopened gate.
	return nil
}

// Policy renders the currently effective limits as a runtime policy
// document (the GET /policy view).
func (r *Runtime) Policy() *policy.RuntimePolicy {
	p := &policy.RuntimePolicy{GlobalMaxMPL: int(r.global.limits.Load().maxMPL)}
	for _, cs := range r.classes {
		lim := cs.gate.limits.Load()
		p.Classes = append(p.Classes, policy.RuntimeClassLimit{
			Class:           cs.spec.Name,
			MaxMPL:          int(lim.maxMPL),
			MaxCostTimerons: lim.maxCost,
			MaxQueueDelayMS: lim.maxQueueDelay / int64(time.Millisecond),
			RetryBatch:      int(lim.retryBatch),
		})
	}
	if r.slo != nil {
		for _, sp := range r.slo.Specs() {
			p.SLOs = append(p.SLOs, policy.RuntimeSLO{
				Class:         sp.Class,
				TargetMS:      sp.Target * 1e3,
				MissBudget:    sp.MissBudget,
				Percentile:    sp.Percentile,
				BurnThreshold: sp.BurnThreshold,
			})
		}
	}
	return p
}

// ClassStats is the merged per-class monitoring view.
type ClassStats struct {
	Class    string           `json:"class"`
	Priority string           `json:"priority"`
	InEngine int64            `json:"in_engine"`
	QueueLen int64            `json:"queue_len"`
	Admitted int64            `json:"admitted"`
	Queued   int64            `json:"queued"`
	Rejected int64            `json:"rejected"`
	Timeouts int64            `json:"timeouts"`
	Done     int64            `json:"done"`
	Latency  metrics.Snapshot `json:"latency"`
	Wait     metrics.Snapshot `json:"wait"`
	Velocity metrics.Snapshot `json:"velocity"`
}

// StatsOf merges one class's shards.
//
//dbwlm:hotpath
func (r *Runtime) StatsOf(id ClassID) ClassStats {
	cs := r.classes[id]
	return ClassStats{
		Class:    cs.spec.Name,
		Priority: cs.spec.Priority.String(),
		InEngine: cs.gate.occupancy(),
		QueueLen: cs.gate.waiters.Load(),
		Admitted: cs.admitted.Value(),
		Queued:   cs.queued.Value(),
		Rejected: cs.rejected.Value(),
		Timeouts: cs.timeouts.Value(),
		Done:     cs.completed.Value(),
		Latency:  cs.latency.Snapshot(),
		Wait:     cs.wait.Snapshot(),
		Velocity: cs.velocity.Snapshot(),
	}
}

// Snapshot merges every class in class-ID order.
func (r *Runtime) Snapshot() []ClassStats { return r.SnapshotInto(nil) }

// SnapshotInto fills buf with the merged per-class view, reusing its backing
// array when it is large enough — the monitoring loop's scratch-buffer path,
// which allocates nothing once the buffer is warm (nil or short buffers grow
// as Snapshot would).
//
//dbwlm:hotpath
func (r *Runtime) SnapshotInto(buf []ClassStats) []ClassStats {
	if cap(buf) < len(r.classes) {
		//dbwlm:nolint hotpath -- cold-buffer growth: runs once per caller, after which the scratch buffer is reused
		buf = make([]ClassStats, len(r.classes))
	}
	buf = buf[:len(r.classes)]
	for i := range r.classes {
		buf[i] = r.StatsOf(ClassID(i))
	}
	return buf
}

// QueueLen reports the number of waiters parked in one class queue.
func (r *Runtime) QueueLen(id ClassID) int64 { return r.classes[id].gate.waiters.Load() }

// Token serializes an admitted Grant for transport to an external client
// (the wlmd /admit response); ParseToken reverses it at /done. When the
// flight recorder assigned an admission ID, a fifth field carries it so the
// /done trace event correlates with the /admit one.
func (g Grant) Token() string {
	if g.verdict != Admitted {
		return ""
	}
	if g.id != 0 {
		return fmt.Sprintf("%d:%d:%d:%d:%d", g.class, g.shard, g.gshard, g.start, g.id)
	}
	return fmt.Sprintf("%d:%d:%d:%d", g.class, g.shard, g.gshard, g.start)
}

// Parts explodes a Grant into its transportable fields — the binary wire
// protocol's analogue of Token, with no formatting and no allocation. An
// admitted grant round-trips through GrantFromParts on the wire /done path.
//
//dbwlm:hotpath
func (g Grant) Parts() (class ClassID, shard, gshard int32, startNanos, id int64, admitted bool) {
	return g.class, g.shard, g.gshard, g.start, g.id, g.verdict == Admitted
}

// GrantFromParts reconstructs an admitted Grant from the fields Parts
// produced, with ParseToken's range validation; ok is false when the fields
// do not name a valid slot. Allocation-free — the wire transport's /done
// path.
//
//dbwlm:hotpath
func (r *Runtime) GrantFromParts(class ClassID, shard, gshard int32, startNanos, id int64) (g Grant, ok bool) {
	if class < 0 || int(class) >= len(r.classes) {
		return Grant{}, false
	}
	if shard < 0 || int(shard) >= len(r.classes[class].gate.shards) ||
		gshard < 0 || int(gshard) >= len(r.global.shards) {
		return Grant{}, false
	}
	return Grant{verdict: Admitted, class: class, shard: shard, gshard: gshard,
		start: startNanos, id: id}, true
}

// ParseToken reconstructs an admitted Grant from its token (with or without
// the optional trailing admission-ID field).
func (r *Runtime) ParseToken(tok string) (Grant, error) {
	parts := strings.Split(tok, ":")
	if len(parts) != 4 && len(parts) != 5 {
		return Grant{}, fmt.Errorf("rt: malformed token %q", tok)
	}
	var nums [5]int64
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return Grant{}, fmt.Errorf("rt: malformed token %q: %w", tok, err)
		}
		nums[i] = v
	}
	class, shard, gshard := nums[0], nums[1], nums[2]
	if class < 0 || class >= int64(len(r.classes)) {
		return Grant{}, fmt.Errorf("rt: token class %d out of range", class)
	}
	nShards := int64(len(r.classes[class].gate.shards))
	if shard < 0 || shard >= nShards || gshard < 0 || gshard >= int64(len(r.global.shards)) {
		return Grant{}, fmt.Errorf("rt: token shard out of range")
	}
	return Grant{verdict: Admitted, class: ClassID(class), shard: int32(shard), gshard: int32(gshard), start: nums[3], id: nums[4]}, nil
}

func defaultShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
