package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbwlm/internal/admission"
	"dbwlm/internal/policy"
	"dbwlm/internal/workload"
)

func testRuntime(t *testing.T, specs []ClassSpec, opts Options) *Runtime {
	t.Helper()
	r, err := New(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGateExactLimit: the striped gate admits exactly maxMPL concurrent
// holders, no matter how the limit splits across shards.
func TestGateExactLimit(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		for _, limit := range []int64{1, 3, 5, 8, 17} {
			g := newGate(shards, gateLimits{maxMPL: limit})
			var taken []int32
			for {
				s := g.tryEnter()
				if s < 0 {
					break
				}
				taken = append(taken, s)
			}
			if int64(len(taken)) != limit {
				t.Fatalf("shards=%d limit=%d: admitted %d", shards, limit, len(taken))
			}
			if g.occupancy() != limit {
				t.Fatalf("occupancy %d != limit %d", g.occupancy(), limit)
			}
			for _, s := range taken {
				g.leave(s)
			}
			if g.occupancy() != 0 {
				t.Fatalf("occupancy %d after full release", g.occupancy())
			}
		}
	}
}

// TestStressConcurrentAdmit is the ≥64-goroutine stress test: concurrent
// admit/complete cycles against shared gates never exceed the class MPL or
// the global MPL, lose no request, and drain to zero.
func TestStressConcurrentAdmit(t *testing.T) {
	const (
		workers  = 64
		perWork  = 200
		classMPL = 7
		global   = 11
	)
	r := testRuntime(t, []ClassSpec{
		{Name: "a", Priority: policy.PriorityHigh, MaxMPL: classMPL},
		{Name: "b", Priority: policy.PriorityLow, MaxMPL: classMPL},
	}, Options{GlobalMaxMPL: global, RetryEvery: time.Millisecond})
	r.Start()
	defer r.Stop()

	var inA, inAll, maxA, maxAll atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			class := ClassID(w % 2)
			for i := 0; i < perWork; i++ {
				g := r.Admit(class, 100)
				if !g.Admitted() {
					t.Errorf("worker %d: unexpected verdict %v", w, g.Verdict())
					return
				}
				cur := inAll.Add(1)
				for {
					m := maxAll.Load()
					if cur <= m || maxAll.CompareAndSwap(m, cur) {
						break
					}
				}
				if class == 0 {
					curA := inA.Add(1)
					for {
						m := maxA.Load()
						if curA <= m || maxA.CompareAndSwap(m, curA) {
							break
						}
					}
				}
				if class == 0 {
					inA.Add(-1)
				}
				inAll.Add(-1)
				r.Done(g, 0)
			}
		}(w)
	}
	wg.Wait()
	if m := maxA.Load(); m > classMPL {
		t.Fatalf("class MPL exceeded: observed %d > %d", m, classMPL)
	}
	if m := maxAll.Load(); m > global {
		t.Fatalf("global MPL exceeded: observed %d > %d", m, global)
	}
	if got := r.InEngine(); got != 0 {
		t.Fatalf("in-engine after drain = %d", got)
	}
	total := r.StatsOf(0).Done + r.StatsOf(1).Done
	if total != workers*perWork {
		t.Fatalf("completed %d, want %d", total, workers*perWork)
	}
	for _, id := range []ClassID{0, 1} {
		if q := r.QueueLen(id); q != 0 {
			t.Fatalf("class %d queue not drained: %d", id, q)
		}
	}
}

// TestFIFOWithinClass: waiters admit in enqueue order as slots free up.
func TestFIFOWithinClass(t *testing.T) {
	r := testRuntime(t, []ClassSpec{{Name: "c", MaxMPL: 1}}, Options{})
	holder := r.Admit(0, 0)
	if !holder.Admitted() {
		t.Fatal("holder not admitted")
	}
	const n = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := r.Admit(0, 0)
			if !g.Admitted() {
				t.Errorf("waiter %d: %v", i, g.Verdict())
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r.Done(g, 0)
		}(i)
		// Ensure waiter i is parked before launching waiter i+1, so the
		// FIFO expectation is well-defined.
		for r.QueueLen(0) != int64(i+1) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	r.Done(holder, 0) // cascade: each Done drains the next waiter
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v not FIFO", order)
		}
	}
}

// TestCostThresholdRejects: per-class cost limits reject on the fast path
// and re-evaluate queued work after a policy tightens.
func TestCostThresholdRejects(t *testing.T) {
	r := testRuntime(t, []ClassSpec{{Name: "c", MaxCostTimerons: 500}}, Options{})
	if g := r.Admit(0, 501); g.Verdict() != RejectedCost {
		t.Fatalf("over-cost verdict = %v", g.Verdict())
	}
	if g := r.Admit(0, 500); !g.Admitted() {
		t.Fatalf("at-cost verdict = %v", g.Verdict())
	} else {
		r.Done(g, 0)
	}
	st := r.StatsOf(0)
	if st.Rejected != 1 || st.Admitted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPolicyReload: ApplyPolicy swaps limits atomically; the fast path sees
// them immediately, parked waiters at the next retry cycle (Manager parity).
func TestPolicyReload(t *testing.T) {
	r := testRuntime(t, []ClassSpec{{Name: "c", MaxMPL: 1}}, Options{})
	hold := r.Admit(0, 0)
	done := make(chan Grant)
	go func() { done <- r.Admit(0, 0) }()
	for r.QueueLen(0) != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	if err := r.ApplyPolicy(&policy.RuntimePolicy{Classes: []policy.RuntimeClassLimit{
		{Class: "c", MaxMPL: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("waiter admitted before a retry cycle")
	case <-time.After(10 * time.Millisecond):
	}
	r.RetryNow()
	g := <-done
	if !g.Admitted() {
		t.Fatalf("waiter verdict after reload = %v", g.Verdict())
	}
	r.Done(g, 0)
	r.Done(hold, 0)

	if err := r.ApplyPolicy(&policy.RuntimePolicy{Classes: []policy.RuntimeClassLimit{
		{Class: "nope", MaxMPL: 1},
	}}); err == nil {
		t.Fatal("unknown class accepted")
	}
	p := r.Policy()
	if len(p.Classes) != 1 || p.Classes[0].MaxMPL != 4 {
		t.Fatalf("rendered policy %+v", p)
	}
}

// TestControllersConsumeView: the unchanged threshold/indicator controllers
// from internal/admission run against the live runtime through the View
// interface — the snapshot contract of the refactor.
func TestControllersConsumeView(t *testing.T) {
	r := testRuntime(t, []ClassSpec{{Name: "c", Priority: policy.PriorityLow}}, Options{})
	mpl := &admission.MPLThreshold{Engine: r, Max: 2}
	req := &workload.Request{Priority: policy.PriorityLow}
	if d := mpl.Decide(req, 0); d != admission.Admit {
		t.Fatalf("empty runtime: %v", d)
	}
	g1, g2 := r.Admit(0, 0), r.Admit(0, 0)
	if d := mpl.Decide(req, 0); d != admission.Queue {
		t.Fatalf("full runtime: %v", d)
	}

	ind := &admission.Indicators{Engine: r}
	if ind.Congested() {
		t.Fatal("unloaded runtime congested")
	}
	r.SetLoad(1.5, 0, 0.9)
	if !ind.Congested() {
		t.Fatal("mem-pressure 1.5 not congested")
	}
	if d := ind.Decide(req, 0); d != admission.Queue {
		t.Fatalf("indicator decision for low-priority: %v", d)
	}

	cr := &admission.ConflictRatio{Engine: r}
	r.SetLoad(0, 2.0, 0)
	if d := cr.Decide(req, 0); d != admission.Queue {
		t.Fatalf("conflict-ratio decision: %v", d)
	}
	r.Done(g1, 0)
	r.Done(g2, 0)
}

// TestLowPriorityGate: the congestion flag published by an indicator loop
// queues low-priority admits on the fast path while high-priority work flows.
func TestLowPriorityGate(t *testing.T) {
	r := testRuntime(t, []ClassSpec{
		{Name: "lo", Priority: policy.PriorityLow},
		{Name: "hi", Priority: policy.PriorityHigh},
	}, Options{})
	r.SetLowPriorityGate(true)
	if g := r.Admit(1, 0); !g.Admitted() {
		t.Fatalf("high-priority gated: %v", g.Verdict())
	} else {
		r.Done(g, 0)
	}
	done := make(chan Grant)
	go func() { done <- r.Admit(0, 0) }()
	for r.QueueLen(0) != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	r.SetLowPriorityGate(false)
	r.RetryNow()
	if g := <-done; !g.Admitted() {
		t.Fatalf("low-priority verdict after gate opened: %v", g.Verdict())
	} else {
		r.Done(g, 0)
	}
}

// TestTokenRoundTrip: wlmd's grant token survives serialization; malformed
// tokens are refused.
func TestTokenRoundTrip(t *testing.T) {
	r := testRuntime(t, []ClassSpec{{Name: "c"}}, Options{})
	g := r.Admit(0, 0)
	tok := g.Token()
	back, err := r.ParseToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Fatalf("round-trip %+v != %+v", back, g)
	}
	r.Done(back, 0)
	for _, bad := range []string{"", "1:2:3", "x:0:0:0", "9:0:0:0", "0:999:0:0"} {
		if _, err := r.ParseToken(bad); err == nil {
			t.Fatalf("token %q accepted", bad)
		}
	}
	if (Grant{verdict: RejectedCost}).Token() != "" {
		t.Fatal("non-admitted grant produced a token")
	}
}

// TestVelocityAndLatencyRecorded: Done folds service latency and execution
// velocity into the striped recorders.
func TestVelocityAndLatencyRecorded(t *testing.T) {
	var clock atomic.Int64
	r := testRuntime(t, []ClassSpec{{Name: "c"}}, Options{Now: clock.Load})
	g := r.Admit(0, 0)
	clock.Store(int64(2 * time.Second))
	r.Done(g, 1.0) // ideal 1s over 2s elapsed -> velocity 0.5
	st := r.StatsOf(0)
	if st.Latency.Count != 1 || st.Latency.Mean != 2.0 {
		t.Fatalf("latency %+v", st.Latency)
	}
	if st.Velocity.Count != 1 || st.Velocity.Max > 0.6 || st.Velocity.Max < 0.4 {
		t.Fatalf("velocity %+v", st.Velocity)
	}
}
