package rt

import "sync/atomic"

// qidAlloc hands out flight-recorder admission IDs. It used to be a single
// shared atomic counter — one cache line written by every admit on every
// core, the first contention wall the multi-core wire benchmarks exposed
// (DESIGN.md §11): with the recorder attached, the whole lock-free striped
// gate design funneled through that one fetch-add. IDs only need to be unique
// and nonzero, not dense or globally ordered, so the allocator stripes
// instead: each padded shard owns an independent counter and the ID packs
// (counter << shardBits) | shardIndex. An allocation touches exactly one
// shard-private cache line, chosen from the per-thread fast random state like
// every other stripe in the runtime.
type qidAlloc struct {
	shards []qidShard
	mask   uint32
	bits   uint
}

// qidShard is one padded ID counter.
type qidShard struct {
	n atomic.Int64
	_ [120]byte
}

// init sizes the allocator; shards must be a power of two.
func (a *qidAlloc) init(shards int) {
	a.shards = make([]qidShard, shards)
	a.mask = uint32(shards - 1)
	a.bits = 0
	for 1<<a.bits < shards {
		a.bits++
	}
}

// next returns a unique nonzero admission ID. Lock-free, allocation-free,
// and free of shared writes across shards.
//
//dbwlm:hotpath
func (a *qidAlloc) next() int64 {
	i := stripeIdx(a.mask)
	return a.shards[i].n.Add(1)<<a.bits | int64(i)
}
