package rt

import (
	"testing"

	"dbwlm/internal/policy"
)

// TestSteadyStateAdmitZeroAlloc pins the acceptance criterion: the open-gate
// admit/release cycle allocates nothing. Grants are plain values, shard
// selection uses the runtime's per-thread random state, and the striped
// recorders increment preallocated padded cells.
func TestSteadyStateAdmitZeroAlloc(t *testing.T) {
	r, err := New([]ClassSpec{
		{Name: "c", Priority: policy.PriorityHigh, MaxMPL: 1024, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the gate once outside the measured runs.
	r.Done(r.Admit(0, 10), 0)

	if avg := testing.AllocsPerRun(1000, func() {
		g := r.Admit(0, 10)
		if !g.Admitted() {
			t.Fatal("gate unexpectedly closed")
		}
		r.Done(g, 0.001)
	}); avg != 0 {
		t.Fatalf("steady-state admit/release allocates %v allocs/op, want 0", avg)
	}

	// The snapshot read path is off the hot path but should still be modest;
	// what matters here is that reading stats does not disturb the gate.
	if got := r.InEngine(); got != 0 {
		t.Fatalf("in-engine %d after balanced admit/release", got)
	}
}
