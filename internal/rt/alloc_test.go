package rt

import (
	"testing"

	"dbwlm/internal/policy"
)

// TestSteadyStateAdmitZeroAlloc pins the acceptance criterion: the open-gate
// admit/release cycle allocates nothing. Grants are plain values, shard
// selection uses the runtime's per-thread random state, and the striped
// recorders increment preallocated padded cells.
func TestSteadyStateAdmitZeroAlloc(t *testing.T) {
	r, err := New([]ClassSpec{
		{Name: "c", Priority: policy.PriorityHigh, MaxMPL: 1024, MaxCostTimerons: 1e6},
	}, Options{GlobalMaxMPL: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the gate once outside the measured runs.
	r.Done(r.Admit(0, 10), 0)

	if avg := testing.AllocsPerRun(1000, func() {
		g := r.Admit(0, 10)
		if !g.Admitted() {
			t.Fatal("gate unexpectedly closed")
		}
		r.Done(g, 0.001)
	}); avg != 0 {
		t.Fatalf("steady-state admit/release allocates %v allocs/op, want 0", avg)
	}

	// The snapshot read path is off the hot path but should still be modest;
	// what matters here is that reading stats does not disturb the gate.
	if got := r.InEngine(); got != 0 {
		t.Fatalf("in-engine %d after balanced admit/release", got)
	}
}

// TestSnapshotIntoZeroAlloc pins the monitoring loop's scratch-buffer path:
// once the buffer is warm, repeated snapshots allocate nothing (ClassStats is
// all scalars plus interned strings; the merged histogram state lives on the
// stack).
func TestSnapshotIntoZeroAlloc(t *testing.T) {
	r, err := New([]ClassSpec{
		{Name: "a", Priority: policy.PriorityHigh, MaxMPL: 64},
		{Name: "b", Priority: policy.PriorityLow, MaxMPL: 64},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Done(r.Admit(ClassID(i%2), 10), 0.001)
	}
	buf := r.SnapshotInto(nil)
	if len(buf) != 2 || buf[0].Class != "a" || buf[0].Done != 50 {
		t.Fatalf("snapshot %+v", buf)
	}
	if avg := testing.AllocsPerRun(200, func() {
		buf = r.SnapshotInto(buf)
	}); avg != 0 {
		t.Fatalf("warm SnapshotInto allocates %v allocs/op, want 0", avg)
	}
	// A short buffer grows rather than truncating.
	if got := r.SnapshotInto(make([]ClassStats, 0, 1)); len(got) != 2 {
		t.Fatalf("short-buffer snapshot has %d classes, want 2", len(got))
	}
}
