package rt

import (
	"testing"

	"dbwlm/internal/admission"
	"dbwlm/internal/policy"
	"dbwlm/internal/sqlmini"
)

const (
	predictCheapSQL = "SELECT name FROM customers WHERE id = 42"
	predictHeavySQL = "SELECT d.year, SUM(f.amount) FROM sales_fact f JOIN date_dim d ON f.date_id = d.id GROUP BY d.year"
)

func newPredictGate(t testing.TB, maxBucket admission.RuntimeBucket) *PredictGate {
	t.Helper()
	r, err := New([]ClassSpec{
		{Name: "c", Priority: policy.PriorityHigh, MaxMPL: 1024},
	}, Options{GlobalMaxMPL: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cache := sqlmini.NewPlanCache(sqlmini.NewCostModel(sqlmini.DefaultCatalog()), 0, 0)
	knn := &admission.KNNPredictor{MaxSeconds: 10, MinTraining: 4, K: 3, Indexed: true}
	return NewPredictGate(r, cache, knn, maxBucket)
}

// train feeds repeated completions so the inline trainer publishes a model:
// the cheap shape completes fast (short bucket), the heavy shape slow
// (monster bucket). Enough observations to cross the every-25 retrain
// cadence so the last model holds a balanced history of both shapes.
func train(g *PredictGate) {
	for i := 0; i < 32; i++ {
		g.Observe(predictCheapSQL, 0.05)
		g.Observe(predictHeavySQL, 900)
	}
}

func TestPredictGateGatesByBucket(t *testing.T) {
	g := newPredictGate(t, admission.BucketMedium)
	train(g)

	grant, pred, err := g.AdmitSQL(0, predictCheapSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Modeled || pred.Bucket != admission.BucketShort {
		t.Fatalf("cheap prediction = %+v, want modeled short", pred)
	}
	if !grant.Admitted() {
		t.Fatalf("cheap statement rejected: %v", grant.Verdict())
	}
	g.ObserveDone(grant, predictCheapSQL)

	grant, pred, err = g.AdmitSQL(0, predictHeavySQL)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Modeled || pred.Bucket != admission.BucketMonster {
		t.Fatalf("heavy prediction = %+v, want modeled monster", pred)
	}
	if grant.Verdict() != RejectedPredicted {
		t.Fatalf("heavy verdict = %v, want rejected-predicted", grant.Verdict())
	}
	if grant.Verdict().String() != "rejected-predicted" {
		t.Fatalf("verdict string = %q", grant.Verdict().String())
	}
	// A rejected grant is a no-op to release.
	g.rt.Done(grant, 0)

	st := g.Stats()
	if st.Gated != 1 {
		t.Fatalf("gated = %d, want 1", st.Gated)
	}
	if !st.Trained {
		t.Fatal("stats report untrained model")
	}
	if cs := g.rt.StatsOf(0); cs.Rejected != 1 {
		t.Fatalf("class rejected = %d, want 1", cs.Rejected)
	}
}

func TestPredictGateUnmodeledFallsThrough(t *testing.T) {
	g := newPredictGate(t, admission.BucketShort)
	// No training: the gate must fall back to cost-only admission.
	grant, pred, err := g.AdmitSQL(0, predictHeavySQL)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Modeled {
		t.Fatal("untrained predictor claims a modeled prediction")
	}
	if !grant.Admitted() {
		t.Fatalf("unmodeled statement rejected: %v", grant.Verdict())
	}
	g.rt.Done(grant, 0)
	if st := g.Stats(); st.Unmodeled != 1 {
		t.Fatalf("unmodeled = %d, want 1", st.Unmodeled)
	}
}

func TestPredictGateParseErrors(t *testing.T) {
	g := newPredictGate(t, admission.BucketMonster)
	if _, _, err := g.AdmitSQL(0, "SELEKT banana"); err == nil {
		t.Fatal("want parse error")
	}
	// Observe on unparseable SQL is a silent no-op.
	g.Observe("SELEKT banana", 1)
}

// TestPredictAdmitZeroAllocHit pins the tentpole's hot path: cache hit +
// trained model + open gate admits with zero allocations.
func TestPredictAdmitZeroAllocHit(t *testing.T) {
	g := newPredictGate(t, admission.BucketMonster)
	train(g)
	// Warm: cache populated by train; one admit cycle outside the measurement.
	grant, _, err := g.AdmitSQL(0, predictCheapSQL)
	if err != nil || !grant.Admitted() {
		t.Fatalf("warmup admit failed: %v %v", grant.Verdict(), err)
	}
	g.rt.Done(grant, 0)

	if avg := testing.AllocsPerRun(1000, func() {
		grant, pred, err := g.AdmitSQL(0, predictCheapSQL)
		if err != nil || !grant.Admitted() || !pred.Modeled || !pred.CacheHit {
			t.Fatal("hot path fell off the fast path")
		}
		g.rt.Done(grant, 0)
	}); avg != 0 {
		t.Fatalf("predict-admit hot path allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkPredictAdmit measures the full wire-speed pipeline on a cache hit:
// fingerprint, cached plan lookup, feature extraction, indexed k-NN predict,
// bucket gate, and the runtime admit/release cycle.
func BenchmarkPredictAdmit(b *testing.B) {
	g := newPredictGate(b, admission.BucketMonster)
	train(g)
	grant, _, err := g.AdmitSQL(0, predictCheapSQL)
	if err != nil || !grant.Admitted() {
		b.Fatalf("warmup admit failed: %v %v", grant.Verdict(), err)
	}
	g.rt.Done(grant, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grant, _, _ := g.AdmitSQL(0, predictCheapSQL)
		g.rt.Done(grant, 0)
	}
}

// BenchmarkPredictAdmitParallel stresses the lock-free read structures —
// cache shards, model pointer, gate shards — under contention.
func BenchmarkPredictAdmitParallel(b *testing.B) {
	g := newPredictGate(b, admission.BucketMonster)
	train(g)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			grant, _, _ := g.AdmitSQL(0, predictCheapSQL)
			g.rt.Done(grant, 0)
		}
	})
}
