package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json wire format byte-for-byte: the full suite
// over the fixture corpus, rendered with WriteJSON, must match the checked-in
// golden. Regenerate with `go test ./internal/lint -run TestJSONGolden
// -update` after deliberate fixture or message changes.
func TestJSONGolden(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Run(m, Options{})); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output diverged from %s (run with -update after deliberate changes)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestJSONEmpty: no findings must render as [], not null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty diagnostics rendered %q, want %q", got, "[]\n")
	}
}

// TestRunDeterministic: the diagnostic stream is identical at any worker
// count — the parallel fan-out may not reorder, drop, or duplicate findings.
func TestRunDeterministic(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	var base bytes.Buffer
	if err := WriteJSON(&base, Run(m, Options{Workers: 1})); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, Run(m, Options{Workers: workers})); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Bytes(), buf.Bytes()) {
			t.Errorf("workers=%d produced different output than workers=1", workers)
		}
	}
}
