package lint

import (
	"go/ast"
	"go/types"
)

// GuardedBy checks that fields declared mutex-guarded by comment —
//
//	mu sync.Mutex // guards history and sinceFit
//	q  []*waiter  // guarded by mu
//
// — are only touched while that mutex is held. The walker is intra-procedural
// and deliberately conservative in what it tracks: a linear pass over each
// function body maintaining the set of held mutexes (keyed by the source text
// of the receiver expression, so t.mu.Lock() guards t.history). Branches that
// end in return do not contribute to the post-branch lock state, which keeps
// the check-unlock-return idiom clean. Function literals are analyzed with
// the lock state at their creation point — in this codebase closures touching
// guarded state are sort comparators and the like, invoked synchronously
// under the lock that wraps them. Calls to functions whose doc says the
// caller must hold a mutex (//dbwlm:locked or "caller holds mu" prose)
// require that mutex held at the call site.
//
// _test.go files are exempt: tests reach into guarded state freely while
// single-threaded.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields commented as mutex-guarded must be accessed with that mutex held",
	Run:  runGuardedBy,
}

func runGuardedBy(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{m: m, pkg: pkg}
			held := make(lockSet)
			if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
				if mu := m.lockedBy[fn]; mu != "" && fd.Recv != nil && len(fd.Recv.List) == 1 &&
					len(fd.Recv.List[0].Names) == 1 {
					held[fd.Recv.List[0].Names[0].Name+"."+mu] = true
				}
			}
			w.walkStmts(fd.Body.List, held)
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

type lockWalker struct {
	m     *Module
	pkg   *Package
	diags []Diagnostic
}

// walkStmts processes a statement list against the entry lock state, mutating
// held in place. It reports whether the list terminates (return/panic), so
// callers can exclude dead exits from merge points.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held lockSet) (terminates bool) {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held lockSet) (terminates bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, op := lockOp(w.pkg, s.X); mu != "" {
			switch op {
			case "Lock", "RLock":
				held[mu] = true
			case "Unlock", "RUnlock":
				delete(held, mu)
			}
			return false
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if mu, _ := lockOp(w.pkg, s.Call); mu != "" {
			return false // defer mu.Unlock() fires at exit, not here
		}
		w.checkExpr(s.Call, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, held)
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		thenHeld := held.clone()
		thenTerm := w.walkStmts(s.Body.List, thenHeld)
		var exits []lockSet
		if !thenTerm {
			exits = append(exits, thenHeld)
		}
		if s.Else != nil {
			elseHeld := held.clone()
			var elseTerm bool
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = w.walkStmts(e.List, elseHeld)
			default:
				elseTerm = w.walkStmt(e, elseHeld)
			}
			if !elseTerm {
				exits = append(exits, elseHeld)
			}
		} else {
			exits = append(exits, held.clone())
		}
		mergeInto(held, exits)
		return len(exits) == 0
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		body := held.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		// Loop bodies are assumed lock-balanced; the post-loop state is the
		// entry state.
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		body := held.clone()
		w.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		w.walkClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkClauses(s.Body.List, held)
	case *ast.SelectStmt:
		w.walkClauses(s.Body.List, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.GoStmt:
		// The goroutine runs later, under no lock the spawner holds.
		w.checkExpr(s.Call.Fun, nil)
		for _, a := range s.Call.Args {
			w.checkExpr(a, held) // arguments evaluate now
		}
	case *ast.DeclStmt, *ast.SendStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held)
				return false
			}
			return true
		})
	}
	return false
}

// walkClauses analyzes each case body against a copy of the entry state;
// clauses are assumed lock-balanced, so the post state is the entry state.
func (w *lockWalker) walkClauses(clauses []ast.Stmt, held lockSet) {
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.checkExpr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		w.walkStmts(body, held.clone())
	}
}

// mergeInto replaces held with the intersection of the live exit states.
func mergeInto(held lockSet, exits []lockSet) {
	for k := range held {
		delete(held, k)
	}
	if len(exits) == 0 {
		return
	}
	for k := range exits[0] {
		all := true
		for _, e := range exits[1:] {
			if !e[k] {
				all = false
				break
			}
		}
		if all {
			held[k] = true
		}
	}
}

// checkExpr flags guarded-field accesses and locked-callee calls made without
// the required mutex. It does not descend into nested function literals'
// statements as statements — their bodies are walked with the current state.
func (w *lockWalker) checkExpr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		case *ast.CallExpr:
			w.checkLockedCall(n, held)
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, held.clone())
			return false
		}
		return true
	})
}

func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held lockSet) {
	v, ok := w.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	mu := w.m.guarded[v]
	if mu == "" {
		return
	}
	need := types.ExprString(sel.X) + "." + mu
	if !held[need] {
		w.diags = append(w.diags, w.m.diag("guardedby", sel.Pos(),
			"access to %s without holding %s (field is commented guarded by %s)",
			v.Name(), need, mu))
	}
}

func (w *lockWalker) checkLockedCall(call *ast.CallExpr, held lockSet) {
	fn := calleeOf(w.pkg.Info, call)
	if fn == nil || !w.m.isModuleFunc(fn) {
		return
	}
	mu := w.m.lockedBy[fn]
	if mu == "" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // plain function with a locked contract: receiver unknown, trust it
	}
	need := types.ExprString(sel.X) + "." + mu
	if !held[need] {
		w.diags = append(w.diags, w.m.diag("guardedby", call.Pos(),
			"call to %s requires %s held (its doc says the caller must hold %s)",
			fn.Name(), need, mu))
	}
}

// lockOp recognizes mu.Lock()/RLock()/Unlock()/RUnlock() on a sync mutex and
// returns the mutex expression's source text and the operation.
func lockOp(pkg *Package, e ast.Expr) (mu, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}
