package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file loads an entire module — every package, including in-package and
// external test files — with full type information, using nothing but the
// standard library: go/parser for syntax, go/types for checking, and the
// go/importer "source" importer for standard-library dependencies. Module-
// internal imports are resolved against the packages we are loading ourselves,
// in topological order, so the loader needs no export data and no go command.

// Package is one type-checked package of the module under analysis. In-package
// _test.go files are checked together with the package proper; an external
// test package (package foo_test) is loaded as its own Package with IsXTest
// set.
type Package struct {
	// Path is the import path ("dbwlm/internal/rt"); external test packages
	// carry the base path plus a "_test" suffix, which is never imported.
	Path    string
	Dir     string
	Name    string
	IsXTest bool
	Files   []*File
	Types   *types.Package
	Info    *types.Info

	imports map[string]bool
}

// File pairs one parsed source file with the lint directives scanned from its
// comments.
type File struct {
	Name string // absolute path on disk
	Ast  *ast.File
	Test bool // a _test.go file

	suppress []suppression
	dyn      []dynDirective // //dbwlm:dyncall trust grants
	sorted   map[int]bool   // lines carrying //dbwlm:sorted
}

// Module is the fully loaded analysis unit: every package of one Go module,
// type-checked, plus the cross-package facts the analyzers share (annotation
// sets, guarded-field tables).
type Module struct {
	Path string // module path from go.mod
	Dir  string // module root directory
	Fset *token.FileSet
	Pkgs []*Package // topological order, external test packages last

	byPath map[string]*Package
	byFile map[string]*File

	// Facts built after type checking (annot.go, facts.go).
	hot       map[*types.Func]bool   // //dbwlm:hotpath functions
	lockedBy  map[*types.Func]string // caller-must-hold-mutex functions
	det       map[*Package]bool      // //dbwlm:deterministic packages
	dirDiags  []Diagnostic           // malformed/misplaced directive findings
	atomicFld map[*types.Var]bool    // fields passed to sync/atomic functions
	atomicUse map[ast.Node]bool      // selector nodes that ARE atomic accesses
	guarded   map[*types.Var]string  // field -> sibling mutex field name

	// Interprocedural layer (callgraph.go): the module-wide call graph and
	// the per-package findings the module-level analyzers precompute from it.
	cg       *callGraph
	preDiags map[string]map[*Package][]Diagnostic
}

// LoadModule walks up from dir to the enclosing go.mod and loads every
// package beneath the module root.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return Load(root, modPath)
}

func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module line", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Load parses and type-checks every package under root, treating root as the
// directory of a module named modPath. Fixture trees (testdata/src) load
// through here with a synthetic module path.
func Load(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Dir:    root,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		byFile: make(map[string]*File),
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := m.parseDirs(dirs)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	if err := m.checkAll(order); err != nil {
		return nil, err
	}
	m.scanDirectives()
	m.buildFacts()
	return m, nil
}

// parseDirs parses every package directory across loadWorkers() goroutines.
// token.FileSet serializes AddFile internally, so one shared FileSet is safe;
// results are merged back in directory order, keeping every downstream
// structure (package lists, byFile) deterministic.
func (m *Module) parseDirs(dirs []string) ([]*Package, error) {
	type parsed struct {
		pkgs []*Package
		err  error
	}
	results := make([]parsed, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, loadWorkers())
	for i, dir := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, dir string) {
			defer func() { <-sem; wg.Done() }()
			ps, err := m.parseDir(dir)
			results[i] = parsed{pkgs: ps, err: err}
		}(i, dir)
	}
	wg.Wait()
	var pkgs []*Package
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.pkgs {
			for _, f := range p.Files {
				m.byFile[f.Name] = f
			}
		}
		pkgs = append(pkgs, r.pkgs...)
	}
	return pkgs, nil
}

// checkAll type-checks the topologically ordered packages with as much
// parallelism as the import DAG allows: a package is scheduled the moment its
// last module-internal dependency completes. The shared source importer —
// the one mutable structure — is serialized behind a mutex in modImporter;
// completed internal packages are read without locking, which is safe because
// the scheduler orders every dependency's completion before its dependents
// start. m.Pkgs is rebuilt in topological order afterwards, so the result is
// identical to a sequential load.
func (m *Module) checkAll(order []*Package) error {
	// The source importer type-checks standard-library dependencies from
	// GOROOT source; with cgo disabled every package (net included) has a
	// pure-Go variant, so no C toolchain is ever consulted.
	build.Default.CgoEnabled = false
	std := importer.ForCompiler(m.Fset, "source", nil)
	imp := &modImporter{m: m, std: std}
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	for _, p := range order {
		if !p.IsXTest {
			m.byPath[p.Path] = p
		}
	}

	// Dependency counts over module-internal edges only.
	waiting := make(map[*Package]int, len(order))
	dependents := make(map[*Package][]*Package)
	for _, p := range order {
		for ip := range p.imports {
			if dep := m.byPath[ip]; dep != nil && dep != p {
				waiting[p]++
				dependents[dep] = append(dependents[dep], p)
			}
		}
	}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		errs   = make(map[*Package]error)
		failed = make(map[*Package]bool)
	)
	sem := make(chan struct{}, loadWorkers())
	var schedule func(p *Package)
	finish := func(p *Package, err error) {
		mu.Lock()
		if err != nil {
			errs[p] = err
			failed[p] = true
		}
		var next []*Package
		for _, d := range dependents[p] {
			if failed[p] {
				failed[d] = true // poisoned: its import would fail anyway
			}
			waiting[d]--
			if waiting[d] == 0 {
				next = append(next, d)
			}
		}
		mu.Unlock()
		for _, d := range next {
			schedule(d)
		}
		wg.Done()
	}
	schedule = func(p *Package) {
		wg.Add(1)
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			poisoned := failed[p]
			mu.Unlock()
			if poisoned {
				finish(p, nil)
				return
			}
			finish(p, m.checkOne(p, imp, sizes))
		}()
	}
	for _, p := range order {
		if waiting[p] == 0 {
			schedule(p)
		}
	}
	wg.Wait()

	// Report the first failure in topological order — the root cause, not a
	// cascade — and rebuild Pkgs deterministically.
	for _, p := range order {
		if err := errs[p]; err != nil {
			return err
		}
	}
	m.Pkgs = append(m.Pkgs, order...)
	return nil
}

// checkOne type-checks a single parsed package.
func (m *Module) checkOne(p *Package, imp types.Importer, sizes types.Sizes) error {
	conf := types.Config{Importer: imp, Sizes: sizes}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.Ast
	}
	tpkg, err := conf.Check(p.Path, m.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
	}
	p.Types, p.Info = tpkg, info
	return nil
}

// loadWorkers is the loader's parallelism, GOMAXPROCS-bounded.
func loadWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// packageDirs lists every directory under root holding .go files, skipping
// testdata, vendor, hidden, and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasPrefix(d.Name(), "_") &&
			!strings.HasPrefix(d.Name(), ".") {
			// WalkDir interleaves a directory's files with its subdirectories,
			// so dedup needs the full set, not just the previous entry.
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory into its base package and, when external
// test files are present, a second *_test package.
func (m *Module) parseDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	base := &Package{Path: path, Dir: dir}
	xtest := &Package{Path: path + "_test", Dir: dir, IsXTest: true}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		af, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{Name: full, Ast: af, Test: strings.HasSuffix(name, "_test.go")}
		p := base
		if strings.HasSuffix(af.Name.Name, "_test") {
			p = xtest
			xtest.Name = af.Name.Name
		} else {
			if base.Name != "" && base.Name != af.Name.Name {
				return nil, fmt.Errorf("lint: %s: packages %s and %s in one directory",
					dir, base.Name, af.Name.Name)
			}
			base.Name = af.Name.Name
		}
		p.Files = append(p.Files, f)
	}
	var out []*Package
	for _, p := range []*Package{base, xtest} {
		if len(p.Files) == 0 {
			continue
		}
		p.imports = make(map[string]bool)
		for _, f := range p.Files {
			for _, imp := range f.Ast.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					p.imports[ip] = true
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// topoSort orders packages so every module-internal import precedes its
// importers (external test packages naturally land after their base package).
func topoSort(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var order []*Package
	state := make(map[*Package]int) // 0 new, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p] = 1
		deps := make([]string, 0, len(p.imports))
		for ip := range p.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if dep := byPath[ip]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modImporter resolves module-internal imports from the packages loaded so
// far and delegates everything else (the standard library) to the source
// importer. Internal lookups are lock-free — the scheduler guarantees a
// dependency's Types is published before any dependent starts — but the
// source importer's internal cache is not concurrency-safe, so stdlib
// imports are serialized.
type modImporter struct {
	m     *Module
	std   types.Importer
	stdMu sync.Mutex
}

func (i *modImporter) Import(path string) (*types.Package, error) {
	if path == i.m.Path || strings.HasPrefix(path, i.m.Path+"/") {
		if p := i.m.byPath[path]; p != nil && p.Types != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("lint: internal package %s not loaded yet", path)
	}
	i.stdMu.Lock()
	defer i.stdMu.Unlock()
	return i.std.Import(path)
}

// fileOf maps a token position back to the parsed file carrying it.
func (m *Module) fileOf(pos token.Pos) *File {
	return m.byFile[m.Fset.Position(pos).Filename]
}
