package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// This file scans the //dbwlm: directive vocabulary (DESIGN.md §10):
//
//	//dbwlm:hotpath            on a function: the body must not allocate
//	//dbwlm:deterministic      in a package comment: detlint applies
//	//dbwlm:sorted             on a map range whose order is laundered later
//	//dbwlm:locked <mu>        on a function: callers must hold <mu>
//	//dbwlm:dyncall -- <reason>          on a dynamic call (or the declaration
//	                                     of the function-typed field/var it goes
//	                                     through): the unknowable targets are
//	                                     asserted hotpath-safe; the reason is
//	                                     required (the injected-clock pattern)
//	//dbwlm:nolint <names> -- <reason>   suppress named analyzers on this or
//	                                     the next line; the reason is required
//
// Misplaced or malformed directives are themselves diagnostics ("directive"
// findings) that cannot be suppressed — a silently ignored annotation is
// exactly the churn-rot this tool exists to prevent.

// suppression is one parsed //dbwlm:nolint comment.
type suppression struct {
	line      int
	analyzers map[string]bool
	reason    string
	used      bool
}

// dynDirective is one parsed //dbwlm:dyncall comment. It trusts dynamic calls
// on its own line and the line below it — either the call itself, or the
// declaration of the function-typed field/var the call dispatches through.
type dynDirective struct {
	line   int
	reason string
	used   bool
}

const dirPrefix = "//dbwlm:"

// prose conventions that predate the directive vocabulary: a doc comment
// saying the caller must hold a mutex is honored like //dbwlm:locked.
var lockedProseRe = regexp.MustCompile(
	`(?i)\b(?:caller holds|caller must hold|callers hold|called with)\s+([A-Za-z_]\w*)\b`)

// scanDirectives walks every comment in the module, parsing suppressions and
// //dbwlm:sorted markers into their files and validating directive placement.
func (m *Module) scanDirectives() {
	m.hot = make(map[*types.Func]bool)
	m.lockedBy = make(map[*types.Func]string)
	m.det = make(map[*Package]bool)

	// Directives that make sense only attached to a declaration are consumed
	// by the decl walk below; any left over are misplaced.
	consumed := make(map[*ast.Comment]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Ast.Doc != nil {
				for _, c := range f.Ast.Doc.List {
					if directiveVerb(c) == "deterministic" {
						m.det[pkg] = true
						consumed[c] = true
					}
				}
			}
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Doc != nil {
					fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					for _, c := range fd.Doc.List {
						switch verb, rest := splitDirective(c); verb {
						case "hotpath":
							consumed[c] = true
							if fn != nil {
								m.hot[fn] = true
							}
						case "locked":
							consumed[c] = true
							name := strings.TrimSpace(rest)
							if name == "" {
								m.dirDiag(c.Pos(), "//dbwlm:locked needs a mutex field name")
							} else if fn != nil {
								m.lockedBy[fn] = name
							}
						}
					}
					if fn != nil && m.lockedBy[fn] == "" {
						if sub := lockedProseRe.FindStringSubmatch(fd.Doc.Text()); sub != nil {
							m.lockedBy[fn] = sub[1]
						}
					}
				}
			}
		}
	}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			f.sorted = make(map[int]bool)
			for _, cg := range f.Ast.Comments {
				for _, c := range cg.List {
					verb, rest := splitDirective(c)
					if verb == "" {
						continue
					}
					line := m.Fset.Position(c.Pos()).Line
					switch verb {
					case "sorted":
						f.sorted[line] = true
					case "nolint":
						s, errMsg := parseNolint(line, rest)
						if errMsg != "" {
							m.dirDiag(c.Pos(), errMsg)
							continue
						}
						f.suppress = append(f.suppress, s)
					case "dyncall":
						reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "--"))
						if !strings.Contains(rest, "--") || reason == "" {
							m.dirDiag(c.Pos(), "//dbwlm:dyncall needs a justification: //dbwlm:dyncall -- <reason>")
							continue
						}
						f.dyn = append(f.dyn, dynDirective{line: line, reason: reason})
					case "hotpath", "deterministic", "locked":
						if !consumed[c] {
							m.dirDiag(c.Pos(), "misplaced //dbwlm:"+verb+
								" (must be in a "+dirHome(verb)+")")
						}
					default:
						m.dirDiag(c.Pos(), "unknown directive //dbwlm:"+verb)
					}
				}
			}
		}
	}
}

func dirHome(verb string) string {
	if verb == "deterministic" {
		return "package doc comment"
	}
	return "function doc comment"
}

// parseNolint parses "<names> -- <reason>". Names are comma-separated
// analyzer names; the reason after " -- " is mandatory — every suppression
// must justify itself in place.
func parseNolint(line int, rest string) (suppression, string) {
	names, reason, ok := strings.Cut(rest, "--")
	reason = strings.TrimSpace(reason)
	if !ok || reason == "" {
		return suppression{}, "//dbwlm:nolint needs a justification: " +
			"//dbwlm:nolint <analyzers> -- <reason>"
	}
	s := suppression{line: line, analyzers: make(map[string]bool), reason: reason}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !analyzerNames[n] {
			return suppression{}, "//dbwlm:nolint names unknown analyzer " + n
		}
		s.analyzers[n] = true
	}
	if len(s.analyzers) == 0 {
		return suppression{}, "//dbwlm:nolint names no analyzers"
	}
	return s, ""
}

func (m *Module) dirDiag(pos token.Pos, msg string) {
	m.dirDiags = append(m.dirDiags, m.diag("directive", pos, msg))
}

// splitDirective returns the verb and argument text of a //dbwlm: comment
// ("" when c is an ordinary comment). Directive comments have no space after
// // and are therefore excluded from go doc output by convention.
func splitDirective(c *ast.Comment) (verb, rest string) {
	text, ok := strings.CutPrefix(c.Text, dirPrefix)
	if !ok {
		return "", ""
	}
	verb, rest, _ = strings.Cut(text, " ")
	return verb, rest
}

func directiveVerb(c *ast.Comment) string {
	verb, _ := splitDirective(c)
	return verb
}
