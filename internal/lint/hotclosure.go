package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotClosure lifts the hotpath contract across function boundaries: every
// function transitively reachable from a //dbwlm:hotpath root — through
// direct calls, method values, function-typed fields, and CHA-resolved
// interface dispatch (callgraph.go) — must be allocation-free AND
// non-blocking. Blocking constructs flagged anywhere on a hot closure:
//
//   - sync lock acquisition (Mutex/RWMutex Lock and RLock), sync.WaitGroup
//     and sync.Cond Wait, sync.Once.Do, and any sync.Map method (its slow
//     path takes an internal mutex)
//   - channel sends, receives, selects, and ranges over channels
//   - time.Sleep and the timer constructors (After, Tick, NewTimer,
//     NewTicker)
//   - calls into I/O packages (os, io, bufio, net, syscall, os/exec,
//     database/sql, log, and fmt's writer-printing half) and into reflect
//   - calls through function values whose target set cannot be resolved
//     from observed value flow, unless the call or the function-typed
//     declaration it dispatches through carries //dbwlm:dyncall -- <reason>
//
// Functions reached only through dynamic edges are usually not annotated
// //dbwlm:hotpath themselves (the intra-procedural analyzer cannot see
// them); hotclosure re-runs the allocation checks over those, so a closure
// handed to a hot loop is held to the same standard as the loop. Every
// diagnostic prints the witness call chain from the annotated root to the
// function holding the offending statement.
//
// Trust boundary: bodies of standard-library functions are never analyzed —
// the hotAllowedPkgs/hotAllowedFuncs allowlists in hotpath.go are the audited
// assertion that their call surface neither allocates nor blocks, and
// allowlisted packages that call back through interfaces they are handed
// (container/heap) re-enter the closure only via the CHA edges at the module
// call sites that constructed those values.
var HotClosure = &Analyzer{
	Name: "hotclosure",
	Doc:  "functions reachable from //dbwlm:hotpath roots must be alloc-free and non-blocking",
	Run: func(m *Module, pkg *Package) []Diagnostic {
		return m.preDiags["hotclosure"][pkg]
	},
}

// ioPkgs are standard-library packages whose calls mean I/O (or reflection):
// never acceptable on a hot closure.
var ioPkgs = map[string]bool{
	"os": true, "io": true, "io/fs": true, "io/ioutil": true, "bufio": true,
	"net": true, "net/http": true, "syscall": true, "os/exec": true,
	"os/signal": true, "database/sql": true, "log": true, "log/slog": true,
	"reflect": true, "runtime/pprof": true,
}

// runHotClosure performs the module-wide closure analysis once, at fact-build
// time, distributing diagnostics to the packages that anchor them.
func (m *Module) runHotClosure() {
	g := m.cg
	if g == nil {
		return
	}
	// Seed the BFS with every annotated root, in deterministic order.
	var roots []*cgNode
	for _, n := range g.all {
		if n.fn != nil && m.hot[n.fn] {
			roots = append(roots, n)
		}
	}
	parent := make(map[*cgNode]*cgNode)
	reached := make(map[*cgNode]bool)
	queue := make([]*cgNode, 0, len(roots))
	for _, r := range roots {
		reached[r] = true
		queue = append(queue, r)
	}
	// A //dbwlm:nolint hotclosure on a call line prunes traversal through
	// that edge: one reasoned suppression at the boundary where a hot path
	// deliberately enters slow-path code silences the whole subtree, instead
	// of demanding a waiver on every leaf statement beneath it.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if reached[e.to] || m.suppressedAt("hotclosure", e.pos) {
				continue
			}
			reached[e.to] = true
			parent[e.to] = n
			queue = append(queue, e.to)
		}
	}

	seen := make(map[string]bool) // dedup key: file:line:col:message
	emitAll := func(pkg *Package, ds []Diagnostic) {
		for _, d := range ds {
			key := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Message)
			if !seen[key] {
				seen[key] = true
				m.addPreDiag("hotclosure", pkg, d)
			}
		}
	}
	emit := func(n *cgNode, d Diagnostic) {
		d.Chain = chainTo(parent, n)
		key := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Message)
		if seen[key] {
			return
		}
		seen[key] = true
		m.addPreDiag("hotclosure", n.pkg, d)
	}

	for _, n := range g.all {
		if !reached[n] {
			continue
		}
		for _, d := range m.blockDiags(n) {
			emit(n, d)
		}
		for _, dyn := range n.dyn {
			if dyn.justified {
				continue
			}
			emit(n, m.diag("hotclosure", dyn.pos,
				"call through function value %s with unresolvable targets on a hot closure (resolve it, or justify with //dbwlm:dyncall -- <reason> on the call or the declaration it dispatches through)",
				dyn.expr))
		}
		// Allocation checks for bodies the intra-procedural hotpath analyzer
		// never saw: declared functions without the annotation, and literals
		// whose enclosing function is neither annotated nor reachable (a
		// reachable or annotated owner already walked the literal's body).
		switch {
		case n.fn != nil && !m.hot[n.fn]:
			w := &hotWalker{m: m, pkg: n.pkg, fn: n.fn, analyzer: "hotclosure", chain: chainTo(parent, n)}
			w.prepass(n.body)
			w.walk(n.body)
			emitAll(n.pkg, w.diags)
		case n.lit != nil:
			owner := g.owners[n.lit]
			if owner != nil && (reached[owner] || owner.fn != nil && m.hot[owner.fn]) {
				break
			}
			w := &hotWalker{m: m, pkg: n.pkg, analyzer: "hotclosure", chain: chainTo(parent, n)}
			w.prepass(n.body)
			w.walk(n.body)
			emitAll(n.pkg, w.diags)
		}
	}
}

// chainTo reconstructs the witness chain root -> ... -> n.
func chainTo(parent map[*cgNode]*cgNode, n *cgNode) []string {
	var rev []string
	for c := n; c != nil; c = parent[c] {
		rev = append(rev, c.name)
	}
	chain := make([]string, len(rev))
	for i := range rev {
		chain[i] = rev[len(rev)-1-i]
	}
	return chain
}

// blockDiags scans one node's own statements for blocking constructs.
func (m *Module) blockDiags(n *cgNode) []Diagnostic {
	var diags []Diagnostic
	errf := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, m.diag("hotclosure", pos, format, args...))
	}
	info := n.pkg.Info
	n.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			errf(x.Pos(), "channel send blocks on a hot closure")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				errf(x.Pos(), "channel receive blocks on a hot closure")
			}
		case *ast.SelectStmt:
			errf(x.Pos(), "select blocks on a hot closure")
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					errf(x.Pos(), "range over channel blocks on a hot closure")
				}
			}
		case *ast.CallExpr:
			if d := blockingCall(info, x); d != "" {
				errf(x.Pos(), "%s", d)
			}
		}
		return true
	})
	return diags
}

// blockingCall classifies a call as blocking ("" when it is not).
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "sync":
		recv := syncRecvName(fn)
		switch {
		case name == "Lock" || name == "RLock":
			return "sync." + recv + "." + name + " blocks on a hot closure"
		case name == "Wait":
			return "sync." + recv + ".Wait blocks on a hot closure"
		case name == "Do" && recv == "Once":
			return "sync.Once.Do blocks until the first call completes"
		case recv == "Map":
			return "sync.Map." + name + " may take its internal mutex on a hot closure"
		}
	case "time":
		switch name {
		case "Sleep":
			return "time.Sleep blocks on a hot closure"
		case "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return "time." + name + " arms a timer on a hot closure"
		}
	case "fmt":
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + name + " performs I/O on a hot closure"
		}
	}
	if ioPkgs[path] {
		if path == "reflect" {
			return "reflection (reflect." + name + ") on a hot closure"
		}
		return "I/O call " + fn.Pkg().Name() + "." + name + " on a hot closure"
	}
	return ""
}

// syncRecvName names the sync type a method hangs off ("Mutex", "Map", ...).
func syncRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// addPreDiag stores a precomputed interprocedural diagnostic for pkg.
func (m *Module) addPreDiag(analyzer string, pkg *Package, d Diagnostic) {
	if m.preDiags == nil {
		m.preDiags = make(map[string]map[*Package][]Diagnostic)
	}
	if m.preDiags[analyzer] == nil {
		m.preDiags[analyzer] = make(map[*Package][]Diagnostic)
	}
	m.preDiags[analyzer][pkg] = append(m.preDiags[analyzer][pkg], d)
}

// sortPreDiags pins each package's precomputed findings to (file, line, col)
// order so Run's output is stable regardless of traversal order.
func (m *Module) sortPreDiags() {
	for _, byPkg := range m.preDiags {
		for _, ds := range byPkg {
			sort.Slice(ds, func(i, j int) bool {
				if ds[i].File != ds[j].File {
					return ds[i].File < ds[j].File
				}
				if ds[i].Line != ds[j].Line {
					return ds[i].Line < ds[j].Line
				}
				return ds[i].Col < ds[j].Col
			})
		}
	}
}
