package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces sync/atomic discipline on plain integer fields: once
// any site passes &s.f to a sync/atomic function, every other access to that
// field must also be atomic — a single stray `s.f++` under no lock is a data
// race the race detector only catches if a test happens to interleave it.
// Fields of type atomic.Int64 et al. are safe by construction and ignored;
// this check exists for the raw-word style.
//
// It additionally checks 64-bit alignment: a raw int64/uint64 field accessed
// atomically must fall on an 8-byte offset under GOARCH=386/arm sizes, or the
// first atomic access on a 32-bit platform faults.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "raw fields used with sync/atomic must be accessed atomically everywhere, and 64-bit ones must be alignment-safe on 32-bit targets",
	Run:  runAtomicField,
}

// sizes32 models the strictest supported target: 4-byte words, 8-byte
// alignment required for 64-bit atomics.
var sizes32 = types.SizesFor("gc", "386")

func runAtomicField(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if m.atomicUse[n] {
					return true
				}
				v, ok := pkg.Info.Uses[n.Sel].(*types.Var)
				if !ok || !v.IsField() || !m.atomicFld[v] {
					return true
				}
				diags = append(diags, m.diag("atomicfield", n.Pos(),
					"non-atomic access to field %s, which is accessed with sync/atomic elsewhere", v.Name()))
			case *ast.StructType:
				diags = append(diags, m.checkAlignment(pkg, n)...)
			}
			return true
		})
	}
	return diags
}

// checkAlignment verifies that every atomically-accessed 64-bit field of the
// struct sits at an 8-byte offset under 32-bit sizes.
func (m *Module) checkAlignment(pkg *Package, st *ast.StructType) []Diagnostic {
	tv, ok := pkg.Info.Types[st]
	if !ok {
		return nil
	}
	s, ok := tv.Type.Underlying().(*types.Struct)
	if !ok || s.NumFields() == 0 {
		return nil
	}
	fields := make([]*types.Var, s.NumFields())
	for i := range fields {
		fields[i] = s.Field(i)
	}
	offsets := sizes32.Offsetsof(fields)
	var diags []Diagnostic
	for i, fv := range fields {
		if !m.atomicFld[fv] || !is64BitBasic(fv.Type()) {
			continue
		}
		if offsets[i]%8 != 0 {
			diags = append(diags, m.diag("atomicfield", fv.Pos(),
				"64-bit atomic field %s at offset %d is misaligned on 32-bit targets (pad or reorder so the offset is a multiple of 8)",
				fv.Name(), offsets[i]))
		}
	}
	return diags
}

func is64BitBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}
