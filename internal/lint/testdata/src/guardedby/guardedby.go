// Package guardedby exercises the lock-discipline analyzer: fields declared
// guarded must only be touched with their mutex held, and functions whose
// contract says the caller holds the lock must only be called under it.
package guardedby

import "sync"

type table struct {
	mu   sync.Mutex // guards n and rows
	n    int
	rows []string
	cold int // unguarded: allowed anywhere
}

func (t *table) grow() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

func (t *table) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func (t *table) skip() {
	t.n++ // want `access to n without holding t.mu`
}

func (t *table) readRows() int {
	return len(t.rows) // want `access to rows without holding t.mu`
}

func (t *table) touchCold() {
	t.cold++
}

// bump appends one row. Caller holds mu.
func (t *table) bump(row string) {
	t.rows = append(t.rows, row)
	t.n++
}

// reset clears the table.
//
//dbwlm:locked mu
func (t *table) reset() {
	t.rows = nil
	t.n = 0
}

func (t *table) callsBump() {
	t.bump("x") // want `call to bump requires t.mu held`
	t.reset()   // want `call to reset requires t.mu held`
}

func (t *table) lockedCalls() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bump("y")
	t.reset()
}
