// Package atomicfield exercises the atomic-discipline analyzer: a field
// passed to sync/atomic anywhere must be accessed atomically everywhere, and
// 64-bit atomic fields must stay 8-aligned under 32-bit struct layout.
package atomicfield

import "sync/atomic"

type stats struct {
	hits int64
	name string
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func read(s *stats) int64 {
	return s.hits // want `non-atomic access to field hits`
}

func label(s *stats) string {
	return s.name // never touched atomically: allowed
}

type misaligned struct {
	flag bool
	n    int64 // want `64-bit atomic field n at offset 4 is misaligned`
}

func bumpN(m *misaligned) int64 {
	return atomic.AddInt64(&m.n, 1)
}

type aligned struct {
	n    int64
	flag bool
}

func bumpAligned(a *aligned) int64 {
	return atomic.AddInt64(&a.n, 1)
}
