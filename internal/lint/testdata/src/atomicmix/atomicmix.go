// Package atomicmix exercises the interprocedural atomic-discipline
// analyzer: fields whose address reaches sync/atomic through helper
// functions (one hop, two hops, or via a local pointer) must be accessed
// atomically everywhere — except inside a constructor of the owning type.
package atomicmix

import "sync/atomic"

type Stats struct {
	Hits int64 // exported: package atomicmixuse proves the cross-package half
	miss int64
	cold int64 // never reaches sync/atomic: plain access stays legal
}

func bump(p *int64) { atomic.AddInt64(p, 1) }

// forward proves the fixpoint crosses more than one frame.
func forward(p *int64) { bump(p) }

// New is a constructor of Stats: plain initialization is the idiom here.
func New() *Stats {
	s := &Stats{}
	s.miss = 0
	s.Hits = 0
	return s
}

func (s *Stats) Hit()  { bump(&s.Hits) }
func (s *Stats) Miss() { forward(&s.miss) }

// MissPtr reaches the atomic through a local pointer variable.
func (s *Stats) MissPtr() {
	p := &s.miss
	bump(p)
}

func (s *Stats) Total() int64 {
	s.cold++
	return s.Hits + // want `plain access to field Hits, whose address reaches sync/atomic through atomicmix.bump`
		s.miss // want `plain access to field miss, whose address reaches sync/atomic through atomicmix.forward`
}
