// Package atomicmixuse proves the atomic-mix discipline crosses package
// boundaries: Hits became atomic inside package atomicmix, so a plain read
// here is flagged too.
package atomicmixuse

import "fix/atomicmix"

func Report(s *atomicmix.Stats) int64 {
	return s.Hits // want `plain access to field Hits, whose address reaches sync/atomic through atomicmix.bump`
}
