// Package directives exercises directive parsing and suppression hygiene:
// misplaced or malformed //dbwlm: comments are findings in their own right,
// and a suppression that suppresses nothing is dead weight to be removed.
package directives

func misplacedInBody() int {
	//dbwlm:hotpath
	// want[-1] `misplaced //dbwlm:hotpath`
	return 1
}

// det is a function, not a package clause.
//
//dbwlm:deterministic
func det() {
	// want[-2] `misplaced //dbwlm:deterministic`
}

//dbwlm:frobnicate
// want[-1] `unknown directive //dbwlm:frobnicate`

func noReason() int {
	//dbwlm:nolint hotpath
	// want[-1] `needs a justification`
	return 1
}

func unknownAnalyzer() int {
	//dbwlm:nolint sparklint -- no such analyzer
	// want[-1] `names unknown analyzer sparklint`
	return 1
}

func unusedSuppression() int {
	//dbwlm:nolint detlint -- nothing below ranges a map
	// want[-1] `unused //dbwlm:nolint suppression`
	return 1
}
