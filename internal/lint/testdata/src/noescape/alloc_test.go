package noescape

import "testing"

func TestHotAddNoAlloc(t *testing.T) {
	n := testing.AllocsPerRun(100, func() { _ = hotAdd(1, 2) })
	if n != 0 {
		t.Fatal(n)
	}
}

func TestColdAddNoAlloc(t *testing.T) {
	n := testing.AllocsPerRun(100, func() { _ = coldAdd(1, 2) }) // want `AllocsPerRun==0 assertion exercises no //dbwlm:hotpath function`
	if n != 0 {
		t.Fatal(n)
	}
}

func TestBudgetedAlloc(t *testing.T) {
	// Compared against a budget, not zero: the weaker claim is left alone.
	n := testing.AllocsPerRun(100, func() { _ = coldAdd(3, 4) })
	if n > 2 {
		t.Fatal(n)
	}
}
