// Package noescape exercises the AllocsPerRun guard: a zero-allocation
// assertion must exercise a //dbwlm:hotpath function, coupling the dynamic
// test to the static analyzer.
package noescape

//dbwlm:hotpath
func hotAdd(a, b int) int { return a + b }

func coldAdd(a, b int) int { return a + b }
