// Package hotpath exercises the hotpath analyzer: every construct the
// analyzer considers allocating fires below, and the allowed shapes
// (sync/atomic, constants boxed through static data, hot callees) stay
// silent.
package hotpath

import (
	"fmt"
	"strings"
	"sync/atomic"
)

type counter struct {
	n   int64
	hot atomic.Int64
}

func (c *counter) read() int64 { return c.n }

// helper is deliberately unannotated: hot callers must not reach it.
func helper() int { return 1 }

//dbwlm:hotpath
func allowed(c *counter) int64 {
	return c.hot.Add(1)
}

//dbwlm:hotpath
func sink(v any) { _ = v }

//dbwlm:hotpath
func variadicSink(vs ...int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

//dbwlm:hotpath
func builtins(xs []int) []int {
	xs = append(xs, 1)  // want `append in hotpath function allocates`
	_ = make([]int, 4)  // want `make in hotpath function allocates`
	_ = new(counter)    // want `new in hotpath function allocates`
	_ = []int{1, 2}     // want `slice literal in hotpath function allocates`
	_ = map[int]int{}   // want `map literal in hotpath function allocates`
	p := &counter{n: 1} // want `escapes to the heap`
	_ = p
	return xs
}

//dbwlm:hotpath
func calls(c *counter) {
	x := helper()               // want `hotpath function calls non-hotpath hotpath.helper`
	sink(x)                     // want `int value boxed into interface parameter allocates`
	sink(3)                     // constants box through static data: allowed
	sink(c)                     // pointers do not box: allowed
	_ = variadicSink(1, 2)      // want `variadic call to variadicSink allocates its argument slice`
	_ = strings.Repeat("a", 2)  // want `outside the hotpath stdlib allowlist`
	fmt.Print(c)                // want `fmt.Print in hotpath function allocates` `variadic call` `fmt.Print performs I/O on a hot closure`
	_ = allowed(c)              // hot callee: allowed
	go allowed(c)               // want `go statement in hotpath function`
	n := helper()               // want `hotpath function calls non-hotpath hotpath.helper`
	_ = func() int { return n } // want `closure capturing n in hotpath function allocates`
	_ = c.read                  // want `method value c.read allocates a bound closure`
}

//dbwlm:hotpath
func conversions(a, b string) int {
	s := a + b          // want `string concatenation in hotpath function allocates`
	raw := []byte(s)    // want `conversion in hotpath function allocates`
	back := string(raw) // want `conversion in hotpath function allocates`
	return len(back)
}

//dbwlm:hotpath
func suppressed(xs []int) []int {
	//dbwlm:nolint hotpath -- fixture: a justified suppression keeps the line silent
	return append(xs, 1)
}
