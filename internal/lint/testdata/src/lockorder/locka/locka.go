// Package locka closes the cross-package lock-order cycle: it acquires
// lockb.Beta.Mu and then reaches lockb.Alpha.Mu transitively, through a
// callee — the opposite of lockb.AB's order. The cycle diagnostic anchors in
// lockb on its first edge; this package contributes the witness for the
// second.
package locka

import "fix/lockorder/lockb"

// BA orders Beta before Alpha, through lockb.LockAlpha.
func BA(a *lockb.Alpha, b *lockb.Beta) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	lockb.LockAlpha(a)
}
