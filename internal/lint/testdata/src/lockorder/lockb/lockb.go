// Package lockb declares the locks for the two-package ordering cycle and
// contributes the Alpha-before-Beta half; package locka observes the
// opposite order. It also carries a same-package cycle seeded by a
// //dbwlm:locked contract, and a two-instance self-edge.
package lockb

import "sync"

type Alpha struct{ Mu sync.Mutex }

type Beta struct{ Mu sync.Mutex }

// AB orders Alpha before Beta. Together with locka.BA this closes the
// cross-package cycle; the diagnostic anchors on the first edge here.
func AB(a *Alpha, b *Beta) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock() // want `potential deadlock: lock-order cycle lockb.Alpha.Mu -> lockb.Beta.Mu -> lockb.Alpha.Mu` `holds lockb.Beta.Mu and calls lockb.LockAlpha`
	b.Mu.Unlock()
}

// LockAlpha is the callee locka.BA reaches Alpha through: the second edge of
// the cycle is transitive, witnessed by the call path.
func LockAlpha(a *Alpha) {
	a.Mu.Lock()
	a.Mu.Unlock()
}

// Delta's cycle comes half from a //dbwlm:locked contract (bump runs with mu
// held, so its aux acquisition orders mu before aux) and half from flip.
type Delta struct {
	mu  sync.Mutex
	aux sync.Mutex
}

//dbwlm:locked mu
func (d *Delta) bump() {
	d.aux.Lock()
	d.aux.Unlock()
}

func (d *Delta) flip() {
	d.aux.Lock()
	defer d.aux.Unlock()
	d.mu.Lock() // want `potential deadlock: lock-order cycle lockb.Delta.aux -> lockb.Delta.mu -> lockb.Delta.aux`
	d.mu.Unlock()
}

// Gamma: the same abstract lock taken on two instances at once is a
// self-edge — two goroutines pairing instances in opposite orders deadlock.
type Gamma struct{ mu sync.Mutex }

func pair(x, y *Gamma) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `potential deadlock: lock-order cycle lockb.Gamma.mu -> lockb.Gamma.mu`
	y.mu.Unlock()
}

// ordered takes Alpha then Delta.mu — a consistent order, no cycle, no
// finding.
func ordered(a *Alpha, d *Delta) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}
