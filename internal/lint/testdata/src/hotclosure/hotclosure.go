// Package hotclosure exercises the interprocedural hot-closure analyzer:
// blocking constructs and allocations reached from a //dbwlm:hotpath root
// through direct calls, function-typed fields, and interface dispatch, with
// the witness chain printed; //dbwlm:dyncall justifications as the escape
// hatch for injected behavior.
package hotclosure

import "time"

// Blocking three frames below the annotated root: the closure carries the
// chain root -> mid -> leaf to the offending statements.
//
//dbwlm:hotpath
func root() {
	mid() // want `hotpath function calls non-hotpath hotclosure.mid`
}

func mid() { leaf() }

func leaf() {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks on a hot closure` `chain: hotclosure.root -> hotclosure.mid -> hotclosure.leaf`
	buf := make([]byte, 16)      // want `make in hotpath function allocates`
	_ = buf
}

// ticker is the injected-clock pattern: now is swapped by tests, so its call
// is unresolvable but justified; cb carries no justification and is flagged.
type ticker struct {
	//dbwlm:dyncall -- injected clock: tests install a virtual clock, production installs a monotonic reader
	now func() int64

	cb func(int)
}

//dbwlm:hotpath
func (t *ticker) tick() int64 {
	return t.now() // justified on the field declaration: no finding
}

//dbwlm:hotpath
func (t *ticker) fire(v int) {
	t.cb(v) // want `call through function value t.cb with unresolvable targets on a hot closure`
}

// loop proves a //dbwlm:dyncall on the call site is a trusted boundary even
// when value flow resolves the target: step's body blocks, but the dispatch
// is justified, so the closure does not traverse into it.
type loop struct{ step func() }

func newLoop() *loop {
	l := &loop{}
	l.step = func() { time.Sleep(time.Second) }
	return l
}

//dbwlm:hotpath
func (l *loop) spin() {
	//dbwlm:dyncall -- generic dispatch: the scheduled callbacks are audited at their own roots
	l.step()
}

// runner reaches impl.do through a function-typed field and then interface
// dispatch (CHA): both hops extend the chain, and runner itself — never
// annotated — is still held to the allocation rules.
type doer interface{ do() }

type impl struct{ ch chan int }

func (i impl) do() {
	<-i.ch // want `channel receive blocks on a hot closure` `chain: hotclosure.dispatch -> func literal \(hotclosure.go:\d+\) -> hotclosure.runner -> hotclosure.impl.do`
}

type widget struct{ run func(doer) }

func newWidget() *widget {
	return &widget{run: func(d doer) { runner(d) }}
}

func runner(d doer) {
	pad := make([]int, 8) // want `make in hotpath function allocates`
	_ = pad
	d.do()
}

//dbwlm:hotpath
func dispatch(w *widget, d doer) {
	w.run(d) // resolved through the observed flow from newWidget
}

// An unused justification is itself a finding on full runs.
//
//dbwlm:dyncall -- nothing dispatches through here
var spare func() // want[-1] `unused //dbwlm:dyncall justification`
