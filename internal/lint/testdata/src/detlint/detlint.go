// Package detlint exercises the determinism analyzer: the directive below
// opts the whole package in, so wall clocks, global randomness, unordered
// map ranges, and racy selects all fire.
//
//dbwlm:deterministic
package detlint

import (
	"math/rand"
	"sort"
	"time"
)

func keys(m map[string]int) []string {
	var out []string
	for k := range m { // collect-then-sort with an if filter: allowed
		if k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func sum(m map[string]int) int {
	total := 0
	// Commutative accumulation.
	//dbwlm:sorted
	for _, v := range m {
		total += v
	}
	return total
}

func lengths(m map[string]int) int {
	n := 0
	for k := range m { // want `map iteration order is nondeterministic`
		n += len(k)
	}
	return n
}

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `rand.Intn uses the global random source`
}

func seeded(r *rand.Rand) int {
	return r.Intn(6) // a threaded, seeded source: allowed
}

func race(a, b chan int) int {
	select { // want `multi-case select resolves ready cases pseudo-randomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func waitOne(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
