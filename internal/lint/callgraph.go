package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the interprocedural
// analyzers (hotclosure, lockorder) walk. Nodes are analyzable bodies:
// declared functions and methods, plus function literals (a literal is its
// own node so a closure handed to another package is analyzed once, with
// chains that name its creation site). Edges are, in decreasing order of
// certainty:
//
//   - direct calls to module functions and methods (including method
//     expressions T.M and go/defer statements)
//   - method values (x.M used as a value binds a closure that may be called
//     anywhere; the edge is added at the binding site)
//   - function references (a named module function passed or assigned as a
//     value may be called by whoever receives it)
//   - function literals (creating one is treated as potentially calling it)
//   - calls through function-typed variables, fields, and parameters,
//     resolved best-effort against every function value observed flowing
//     into that variable anywhere in the module (CHA over value flow)
//   - interface method calls, resolved CHA-style against every module type
//     implementing the interface
//
// A call through a function value none of whose targets can be resolved —
// or any of whose observed sources is an external function we cannot
// analyze — is recorded as an unresolved dynamic call; hotclosure demands a
// //dbwlm:dyncall justification for those (the injected-clock pattern).
// _test.go files contribute neither nodes nor value-flow facts: tests may
// inject blocking fakes freely without widening the production closure.

// cgNode is one analyzable body in the call graph.
type cgNode struct {
	fn   *types.Func  // nil for function literals
	lit  *ast.FuncLit // nil for declared functions
	pkg  *Package
	file *File
	body *ast.BlockStmt
	name string // display name ("rt.(*Runtime).Admit", "func literal (rt.go:42)")

	edges []cgEdge
	dyn   []dynSite // unresolved dynamic call sites
	// calls maps each call expression to its resolved module targets, for
	// analyses (lockorder) that need per-site resolution with local state.
	calls map[*ast.CallExpr][]*cgNode
}

// cgEdge is one may-call edge, positioned at the site that creates it.
type cgEdge struct {
	to   *cgNode
	pos  token.Pos
	desc string // "calls", "binds method value", "references", ...
}

// dynSite is a call whose target set could not be fully resolved.
type dynSite struct {
	pos       token.Pos
	expr      string // rendered callee expression
	justified bool   // a //dbwlm:dyncall covers the call or the callee's declaration
}

// callGraph is the module-wide graph plus the value-flow table it was
// resolved against.
type callGraph struct {
	m      *Module
	nodes  map[*types.Func]*cgNode
	lits   map[*ast.FuncLit]*cgNode
	all    []*cgNode // sorted by (file, line, col)
	owners map[*ast.FuncLit]*cgNode

	// flows maps function-typed variables (fields, locals, params,
	// package-level vars) to the candidate targets observed flowing into
	// them. A nil entry in the slice marks an unanalyzable source (an
	// external function, a call result, an interface downcast).
	flows map[*types.Var][]*cgNode
	// flowVars links variables assigned from other function-typed variables,
	// so candidates propagate (v1 = v2).
	flowVars map[*types.Var][]*types.Var
	// extern marks variables observed receiving an unanalyzable source.
	extern map[*types.Var]bool

	// methodsByName indexes module methods for CHA interface resolution.
	methodsByName map[string][]*cgNode
}

// buildCallGraph constructs nodes, collects value flow, then resolves edges.
func (m *Module) buildCallGraph() *callGraph {
	g := &callGraph{
		m:             m,
		nodes:         make(map[*types.Func]*cgNode),
		lits:          make(map[*ast.FuncLit]*cgNode),
		owners:        make(map[*ast.FuncLit]*cgNode),
		flows:         make(map[*types.Var][]*cgNode),
		flowVars:      make(map[*types.Var][]*types.Var),
		extern:        make(map[*types.Var]bool),
		methodsByName: make(map[string][]*cgNode),
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &cgNode{fn: fn, pkg: pkg, file: f, body: fd.Body, name: m.funcName(fn)}
				g.nodes[fn] = n
				g.all = append(g.all, n)
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], n)
				}
				g.addLitNodes(n, fd.Body)
			}
		}
	}
	g.sortNodes()
	for _, n := range g.all {
		g.collectFlow(n)
	}
	g.propagateFlow()
	for _, n := range g.all {
		g.resolveEdges(n)
	}
	for _, n := range g.all {
		sortEdges(m, n.edges)
	}
	return g
}

// addLitNodes creates a node per function literal in body (the literals
// nested inside other literals belong to the inner node).
func (g *callGraph) addLitNodes(owner *cgNode, body *ast.BlockStmt) {
	var walk func(n ast.Node, owner *cgNode)
	walk = func(n ast.Node, owner *cgNode) {
		ast.Inspect(n, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			p := g.m.Fset.Position(lit.Pos())
			ln := &cgNode{
				lit: lit, pkg: owner.pkg, file: owner.file, body: lit.Body,
				name: fmt.Sprintf("func literal (%s:%d)", baseName(p.Filename), p.Line),
			}
			g.lits[lit] = ln
			g.owners[lit] = owner
			g.all = append(g.all, ln)
			walk(lit.Body, ln)
			return false
		})
	}
	walk(body, owner)
}

func (g *callGraph) sortNodes() {
	m := g.m
	sort.Slice(g.all, func(i, j int) bool {
		a := m.Fset.Position(g.all[i].pos())
		b := m.Fset.Position(g.all[j].pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

func (n *cgNode) pos() token.Pos {
	if n.fn != nil {
		return n.fn.Pos()
	}
	return n.lit.Pos()
}

// inspectOwn walks the statements belonging to node n itself, not descending
// into nested function literals (those are their own nodes).
func (n *cgNode) inspectOwn(fn func(ast.Node) bool) {
	ast.Inspect(n.body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.lit {
			return false
		}
		return fn(x)
	})
}

// collectFlow records function values flowing into variables: assignments,
// var specs, composite literal fields, and call arguments.
func (g *callGraph) collectFlow(n *cgNode) {
	info := n.pkg.Info
	n.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break // multi-value assignment from a call: unanalyzable
				}
				if v := g.lhsVar(info, lhs); v != nil {
					g.recordFlow(v, x.Rhs[i], info)
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i >= len(x.Values) {
					break
				}
				if v, ok := objOf(info, name).(*types.Var); ok && isFuncType(v.Type()) {
					g.recordFlow(v, x.Values[i], info)
				}
			}
		case *ast.CompositeLit:
			g.flowCompositeLit(info, x)
		case *ast.CallExpr:
			g.flowCallArgs(info, x)
		}
		return true
	})
}

func (g *callGraph) lhsVar(info *types.Info, lhs ast.Expr) *types.Var {
	var v *types.Var
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, _ = objOf(info, lhs).(*types.Var)
	case *ast.SelectorExpr:
		v, _ = info.Uses[lhs.Sel].(*types.Var)
	}
	if v == nil || !isFuncType(v.Type()) {
		return nil
	}
	return v
}

// flowCompositeLit records T{Field: fn} and positional struct literal fields.
func (g *callGraph) flowCompositeLit(info *types.Info, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	byName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		byName[st.Field(i).Name()] = st.Field(i)
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if fv := byName[id.Name]; fv != nil && isFuncType(fv.Type()) {
					g.recordFlow(fv, kv.Value, info)
				}
			}
			continue
		}
		if i < st.NumFields() && isFuncType(st.Field(i).Type()) {
			g.recordFlow(st.Field(i), el, info)
		}
	}
}

// flowCallArgs records function values passed as arguments to module
// functions, flowing into the callee's parameter variables.
func (g *callGraph) flowCallArgs(info *types.Info, call *ast.CallExpr) {
	fn := calleeOf(info, call)
	if fn == nil || !g.m.isModuleFunc(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if sig.Variadic() && i >= params.Len()-1 {
			break // variadic func slices are called through index exprs we don't track
		}
		if i >= params.Len() {
			break
		}
		if pv := params.At(i); isFuncType(pv.Type()) {
			g.recordFlow(pv, arg, info)
		}
	}
}

// recordFlow resolves one source expression into flow facts for variable v.
func (g *callGraph) recordFlow(v *types.Var, src ast.Expr, info *types.Info) {
	src = ast.Unparen(src)
	switch src := src.(type) {
	case *ast.FuncLit:
		if ln := g.lits[src]; ln != nil {
			g.flows[v] = append(g.flows[v], ln)
		}
		return
	case *ast.Ident:
		switch obj := objOf(info, src).(type) {
		case *types.Func:
			g.flowFunc(v, obj)
			return
		case *types.Var:
			if isFuncType(obj.Type()) {
				g.flowVars[v] = append(g.flowVars[v], obj)
				return
			}
		case nil:
			return // untyped nil literal: never called
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[src.Sel].(*types.Func); ok {
			g.flowFunc(v, fn)
			return
		}
		if fv, ok := info.Uses[src.Sel].(*types.Var); ok && isFuncType(fv.Type()) {
			g.flowVars[v] = append(g.flowVars[v], fv)
			return
		}
	}
	if tv, ok := info.Types[src]; ok && isFuncType(tv.Type) {
		g.extern[v] = true // a call result or other opaque source
	}
}

func (g *callGraph) flowFunc(v *types.Var, fn *types.Func) {
	if n := g.nodes[fn]; n != nil {
		g.flows[v] = append(g.flows[v], n)
	} else {
		g.extern[v] = true // external function: body invisible
	}
}

// propagateFlow closes candidate sets over v1 = v2 variable links.
func (g *callGraph) propagateFlow() {
	for changed := true; changed; {
		changed = false
		vars := make([]*types.Var, 0, len(g.flowVars))
		for v := range g.flowVars {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return varLess(g.m, vars[i], vars[j]) })
		for _, v := range vars {
			have := make(map[*cgNode]bool, len(g.flows[v]))
			for _, n := range g.flows[v] {
				have[n] = true
			}
			for _, src := range g.flowVars[v] {
				for _, n := range g.flows[src] {
					if !have[n] {
						have[n] = true
						g.flows[v] = append(g.flows[v], n)
						changed = true
					}
				}
				if g.extern[src] && !g.extern[v] {
					g.extern[v] = true
					changed = true
				}
			}
		}
	}
}

func varLess(m *Module, a, b *types.Var) bool {
	pa, pb := m.Fset.Position(a.Pos()), m.Fset.Position(b.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// resolveEdges walks one node's body adding edges and unresolved dyn sites.
func (g *callGraph) resolveEdges(n *cgNode) {
	info := n.pkg.Info
	n.calls = make(map[*ast.CallExpr][]*cgNode)
	callFun := make(map[ast.Node]bool)
	n.inspectOwn(func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callFun[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	n.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			g.resolveCall(n, x)
		case *ast.FuncLit:
			// Creating a literal is treated as potentially calling it.
			if ln := g.lits[x]; ln != nil {
				n.edges = append(n.edges, cgEdge{to: ln, pos: x.Pos(), desc: "creates"})
			}
		case *ast.SelectorExpr:
			if callFun[x] {
				return true
			}
			if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
				if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
					if tn := g.nodes[fn]; tn != nil {
						n.edges = append(n.edges, cgEdge{to: tn, pos: x.Pos(), desc: "binds method value"})
					}
				}
			}
		case *ast.Ident:
			if callFun[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				if tn := g.nodes[fn]; tn != nil {
					n.edges = append(n.edges, cgEdge{to: tn, pos: x.Pos(), desc: "references"})
				}
			}
		}
		return true
	})
}

// resolveCall adds edges for one call expression: direct, CHA-interface, or
// value-flow resolved; otherwise an unresolved dynamic site.
func (g *callGraph) resolveCall(n *cgNode, call *ast.CallExpr) {
	info := n.pkg.Info
	if builtinOf(info, call) != "" || isConversion(info, call) {
		return
	}
	// unsafe's pseudo-functions (SliceData, String, ...) resolve to
	// *types.Builtin, not *types.Func: never dynamic, never analyzable.
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := objOf(info, f).(*types.Builtin); ok {
			return
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[f.Sel].(*types.Builtin); ok {
			return
		}
	}
	if fn := calleeOf(info, call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && isInterface(sig.Recv().Type()) {
			g.resolveInterfaceCall(n, call, fn)
			return
		}
		if tn := g.nodes[fn]; tn != nil {
			n.edges = append(n.edges, cgEdge{to: tn, pos: call.Pos(), desc: "calls"})
			n.calls[call] = append(n.calls[call], tn)
		}
		return // external concrete function: the allowlists judge it
	}
	// Immediately-invoked literal: a direct edge, not a dynamic call.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if tn := g.lits[lit]; tn != nil {
			n.edges = append(n.edges, cgEdge{to: tn, pos: call.Pos(), desc: "calls"})
			n.calls[call] = append(n.calls[call], tn)
		}
		return
	}
	// A call through a function value: resolve via observed flow. A
	// //dbwlm:dyncall on the call (or on the declaration of the variable it
	// dispatches through) is a trusted boundary — the maintainer asserts the
	// dispatch is acceptable here — so no closure edges are added: generic
	// dispatchers (the simulator's event loop) would otherwise pull every
	// callback ever scheduled into every hot closure.
	var v *types.Var
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		v, _ = objOf(info, f).(*types.Var)
	case *ast.SelectorExpr:
		v, _ = info.Uses[f.Sel].(*types.Var)
	}
	justified := g.m.dyncallCovers(call.Pos())
	if v != nil && g.m.dyncallCovers(v.Pos()) {
		justified = true
	}
	if justified {
		n.dyn = append(n.dyn, dynSite{
			pos: call.Pos(), expr: types.ExprString(call.Fun), justified: true,
		})
		return
	}
	if v != nil && !g.extern[v] && len(g.flows[v]) > 0 {
		for _, tn := range g.flows[v] {
			n.edges = append(n.edges, cgEdge{to: tn, pos: call.Pos(), desc: "calls via " + v.Name()})
			n.calls[call] = append(n.calls[call], tn)
		}
		return
	}
	n.dyn = append(n.dyn, dynSite{
		pos: call.Pos(), expr: types.ExprString(call.Fun), justified: false,
	})
}

// resolveInterfaceCall adds CHA edges: every module method with the callee's
// name whose receiver type implements the interface may be the target.
func (g *callGraph) resolveInterfaceCall(n *cgNode, call *ast.CallExpr, fn *types.Func) {
	iface, ok := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, tn := range g.methodsByName[fn.Name()] {
		recv := tn.fn.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			n.edges = append(n.edges, cgEdge{to: tn, pos: call.Pos(), desc: "dispatches to"})
			n.calls[call] = append(n.calls[call], tn)
		}
	}
}

// dyncallCovers reports whether a //dbwlm:dyncall directive covers pos (its
// own line or the line above), marking it used.
func (m *Module) dyncallCovers(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	f := m.fileOf(pos)
	if f == nil {
		return false
	}
	line := m.Fset.Position(pos).Line
	for i := range f.dyn {
		d := &f.dyn[i]
		if d.line == line || d.line == line-1 {
			d.used = true
			return true
		}
	}
	return false
}

func sortEdges(m *Module, edges []cgEdge) {
	sort.SliceStable(edges, func(i, j int) bool {
		a, b := m.Fset.Position(edges[i].pos), m.Fset.Position(edges[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return edges[i].to.name < edges[j].to.name
	})
}

// funcName renders a function for chains: "rt.(*Runtime).Admit", "sim.New".
func (m *Module) funcName(fn *types.Func) string {
	pkg := ""
	if p := fn.Pkg(); p != nil {
		pkg = p.Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), "*"
		}
		name := t.String()
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		if ptr != "" {
			return pkg + "(*" + name + ")." + fn.Name()
		}
		return pkg + name + "." + fn.Name()
	}
	return pkg + fn.Name()
}

func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
