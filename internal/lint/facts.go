package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Cross-package facts and the small pile of go/types helpers every analyzer
// leans on.

var (
	guardedByRe = regexp.MustCompile(`(?i)\bguarded by\s+([A-Za-z_]\w*)`)
	guardsRe    = regexp.MustCompile(`(?i)^\s*guards\s+(.+)`)
)

// buildFacts indexes the whole module once: which struct fields are accessed
// through sync/atomic functions (and at which sites), and which fields are
// declared mutex-guarded by comment.
func (m *Module) buildFacts() {
	m.atomicFld = make(map[*types.Var]bool)
	m.atomicUse = make(map[ast.Node]bool)
	m.guarded = make(map[*types.Var]string)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					m.recordAtomicCall(pkg, n)
				case *ast.StructType:
					m.recordGuardedFields(pkg, n)
				}
				return true
			})
		}
	}
	m.cg = m.buildCallGraph()
	m.runHotClosure()
	m.runLockOrder()
	m.runAtomicMix()
	m.sortPreDiags()
}

// recordAtomicCall notes fields whose address is passed to a sync/atomic
// function (atomic.AddInt64(&s.f, ...)): the field joins the must-be-atomic
// set and the selector node is remembered as a legal access site.
func (m *Module) recordAtomicCall(pkg *Package, call *ast.CallExpr) {
	fn := calleeOf(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
		return
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		m.atomicFld[v] = true
		m.atomicUse[sel] = true
	}
}

// recordGuardedFields parses the two guarded-field comment conventions on a
// struct literal type:
//
//	mu sync.Mutex // guards history and sinceFit
//	q  []*waiter  // guarded by mu
func (m *Module) recordGuardedFields(pkg *Package, st *ast.StructType) {
	byName := make(map[string]*ast.Field)
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			byName[n.Name] = f
		}
	}
	for _, f := range st.Fields.List {
		text := fieldComment(f)
		if text == "" || len(f.Names) == 0 {
			continue
		}
		if sub := guardedByRe.FindStringSubmatch(text); sub != nil {
			m.markGuarded(pkg, f, sub[1])
		}
		if sub := guardsRe.FindStringSubmatch(text); sub != nil && isMutexField(f) {
			mu := f.Names[0].Name
			for _, name := range splitNameList(sub[1]) {
				if gf := byName[name]; gf != nil {
					m.markGuarded(pkg, gf, mu)
				}
			}
		}
	}
}

func (m *Module) markGuarded(pkg *Package, f *ast.Field, mu string) {
	for _, n := range f.Names {
		if v, ok := pkg.Info.Defs[n].(*types.Var); ok {
			m.guarded[v] = mu
		}
	}
}

func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

func isMutexField(f *ast.Field) bool {
	sel, ok := f.Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// splitNameList parses "history and sinceFit" / "a, b, and c" into names.
func splitNameList(s string) []string {
	s = strings.NewReplacer(",", " ", " and ", " ").Replace(s)
	var names []string
	for _, w := range strings.Fields(s) {
		if isIdentWord(w) {
			names = append(names, w)
		} else {
			break // prose trails off ("guards history during swaps")
		}
	}
	return names
}

func isIdentWord(w string) bool {
	for i, r := range w {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return false
	}
	return len(w) > 0
}

// ---- type-info helpers ----

// calleeOf resolves the static callee of a call, nil for builtins,
// conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// builtinOf resolves a call to a predeclared builtin ("make", "append", ...).
func builtinOf(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isModuleFunc reports whether fn is declared in this module.
func (m *Module) isModuleFunc(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	return p.Path() == m.Path || strings.HasPrefix(p.Path(), m.Path+"/")
}

// pointerShaped reports whether boxing a value of type t into an interface
// copies a single pointer word and therefore does not allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// recvOf returns the receiver base expression of a method call selector
// (x.mu.Lock() -> "x.mu") rendered as source text, or "".
func recvOf(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}
