package lint

import (
	"go/ast"
	"go/types"
)

// DetLint enforces replay determinism in packages whose doc comment carries
// //dbwlm:deterministic: the simulation engine, the experiment harness, and
// the reporting surfaces must produce byte-identical output for identical
// inputs (ROADMAP: "same seed, same bytes"). Inside such packages it flags:
//
//   - ranging over a map, unless the body only collects keys/values into a
//     slice that is subsequently sorted (the collect-then-sort idiom, with
//     else-less if filters allowed), or the range carries //dbwlm:sorted on
//     its line or the line above, asserting order is laundered later
//   - time.Now / time.Since / time.Until — wall-clock reads; deterministic
//     code takes its clock from the simulation
//   - the global math/rand state (rand.Intn, rand.Seed, ...) — seeded
//     *rand.Rand values threaded through the code are fine
//   - select statements with more than one ready-signal case, whose winner
//     the runtime picks pseudo-randomly
//
// _test.go files are exempt: tests may use wall time and unordered iteration
// freely without compromising replay.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "forbid nondeterministic constructs in //dbwlm:deterministic packages",
	Run:  runDetLint,
}

func runDetLint(m *Module, pkg *Package) []Diagnostic {
	if !m.det[pkg] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok && isMapType(tv.Type) {
					line := m.Fset.Position(n.Pos()).Line
					if f.sorted[line] || f.sorted[line-1] || sortedAfterCollect(pkg, n) {
						return true
					}
					diags = append(diags, m.diag("detlint", n.Pos(),
						"map iteration order is nondeterministic (sort the keys first, or mark the range //dbwlm:sorted if order is laundered later)"))
				}
			case *ast.CallExpr:
				if d := detCall(m, pkg, n); d != "" {
					diags = append(diags, m.diag("detlint", n.Pos(), "%s", d))
				}
			case *ast.SelectStmt:
				if len(n.Body.List) > 1 {
					diags = append(diags, m.diag("detlint", n.Pos(),
						"multi-case select resolves ready cases pseudo-randomly"))
				}
			}
			return true
		})
	}
	return diags
}

func detCall(m *Module, pkg *Package, call *ast.CallExpr) string {
	fn := calleeOf(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " reads the wall clock; deterministic code must take its clock from the simulation"
		}
	case "math/rand", "math/rand/v2":
		// Methods on a seeded *rand.Rand have a receiver; package-level
		// functions draw from the global, runtime-seeded source.
		if fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name() + " uses the global random source; thread a seeded *rand.Rand instead"
		}
	}
	return ""
}

// sortedAfterCollect recognizes the collect-then-sort idiom: the range body
// only appends to slice variables, and every one of those slices is later
// passed to a sort or slices ordering call in the same enclosing block list.
func sortedAfterCollect(pkg *Package, rng *ast.RangeStmt) bool {
	targets := appendTargets(pkg, rng.Body)
	if len(targets) == 0 {
		return false
	}
	// Find the statement list containing the range and scan what follows it.
	var after []ast.Stmt
	path := enclosingStmts(pkg, rng)
	for _, stmts := range path {
		for i, s := range stmts {
			if s == ast.Stmt(rng) {
				after = stmts[i+1:]
			}
		}
	}
	if after == nil {
		return false
	}
	for v := range targets {
		if !sortedIn(pkg, after, v) {
			return false
		}
	}
	return true
}

// appendTargets collects slice variables the body appends into. A body doing
// anything beyond append-to-slice — optionally behind else-less if filters,
// which select an order-independent subset — disqualifies the idiom.
func appendTargets(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	targets := make(map[*types.Var]bool)
	if !collectAppends(pkg, body.List, targets) || len(targets) == 0 {
		return nil
	}
	return targets
}

// collectAppends accumulates append targets from stmts, admitting only
// x = append(x, ...) assignments and else-less if statements whose bodies
// satisfy the same rule recursively.
func collectAppends(pkg *Package, stmts []ast.Stmt, targets map[*types.Var]bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			id, isIdent := ast.Unparen(s.Lhs[0]).(*ast.Ident)
			call, isCall := s.Rhs[0].(*ast.CallExpr)
			if !isIdent || !isCall || builtinOf(pkg.Info, call) != "append" {
				return false
			}
			v, isVar := objOf(pkg.Info, id).(*types.Var)
			if !isVar {
				return false
			}
			targets[v] = true
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil || !collectAppends(pkg, s.Body.List, targets) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedIn reports whether stmts contains a sort.*/slices.Sort* call whose
// first argument mentions v.
func sortedIn(pkg *Package, stmts []ast.Stmt, v *types.Var) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || found {
				return !found
			}
			fn := calleeOf(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				mentions := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, isIdent := an.(*ast.Ident); isIdent && pkg.Info.Uses[id] == v {
						mentions = true
					}
					return !mentions
				})
				if mentions {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingStmts yields every statement list in the file containing node n.
func enclosingStmts(pkg *Package, n ast.Node) [][]ast.Stmt {
	var lists [][]ast.Stmt
	for _, f := range pkg.Files {
		if f.Ast.FileStart <= n.Pos() && n.Pos() < f.Ast.FileEnd {
			ast.Inspect(f.Ast, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.BlockStmt:
					lists = append(lists, x.List)
				case *ast.CaseClause:
					lists = append(lists, x.Body)
				case *ast.CommClause:
					lists = append(lists, x.Body)
				}
				return true
			})
		}
	}
	return lists
}

// objOf resolves an identifier whether it defines or uses its object.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
