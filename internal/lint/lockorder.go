package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives a global lock-ordering graph and reports cycles as
// potential deadlocks. Lock identity is abstracted to the declaration site —
// a struct's mutex field ("rt.Runtime.mu") or a package-level mutex variable
// ("policy.reloadMu") — so two goroutines locking two *instances* of the
// same pair of locks in opposite orders collapse onto the same cycle. Edges
// come from two observations, both over non-test code:
//
//   - direct: a function acquires B while holding A (the acquisition walk
//     follows guardedby's discipline: branch-local states, defer Unlock
//     held to exit, function literals analyzed at their creation point
//     under the locks held there)
//   - transitive: a function holding A calls — directly, through a resolved
//     function value, or via CHA interface dispatch — a callee that
//     somewhere beneath it acquires B; //dbwlm:locked callees start with
//     their contract mutex held, so their inner acquisitions order after it
//
// Each cycle is reported once, anchored at its first edge's witness, with
// one witness chain per edge (who held what, where, and through which call
// path the second lock is reached). Re-acquiring the same abstract lock on
// a different instance (A -> A) is reported too: two instances locked in
// opposite orders by two goroutines deadlock just as surely.
//
// Known imprecision, deliberate: RLock is treated as an acquisition of the
// same abstract lock (reader/reader pairs cannot deadlock alone, but any
// cycle involving a writer elsewhere makes the order real), and lock
// identity by declaration site means a sharded `for i := range shards {
// shards[i].mu.Lock() }` sweep reads as a self-edge — annotate the sweep
// with a reasoned //dbwlm:nolint lockorder if shard order is globally fixed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-ordering cycles across the module are potential deadlocks",
	Run: func(m *Module, pkg *Package) []Diagnostic {
		return m.preDiags["lockorder"][pkg]
	},
}

// lockAcq is how a node comes to acquire an abstract lock: directly (via is
// nil, pos is the Lock call) or through a callee (via names the callee, pos
// is the call site).
type lockAcq struct {
	pos token.Pos
	via *cgNode
}

// lockEdge is one observed ordering: to acquired while from was held.
type lockEdge struct {
	from, to string
	node     *cgNode // function the observation anchors in
	pos      token.Pos
	via      []string // call path from node down to the actual Lock, when indirect
}

// runLockOrder builds the lock graph and reports cycles, at fact-build time.
func (m *Module) runLockOrder() {
	g := m.cg
	if g == nil {
		return
	}
	// Pass 1: per-node direct acquisitions, direct edges, and call sites
	// annotated with the locks held around them.
	direct := make(map[*cgNode]map[string]lockAcq)
	type callSite struct {
		targets []*cgNode
		pos     token.Pos
		held    []string
	}
	callsByNode := make(map[*cgNode][]callSite)
	edges := make(map[[2]string]*lockEdge)
	addEdge := func(e *lockEdge) {
		k := [2]string{e.from, e.to}
		if old := edges[k]; old == nil || edgeLess(m, e, old) {
			edges[k] = e
		}
	}

	for _, n := range g.all {
		w := &orderWalker{m: m, n: n, acq: make(map[string]lockAcq)}
		held := make(map[string]string) // instance expr text -> abstract key
		if n.fn != nil {
			if mu := m.lockedBy[n.fn]; mu != "" {
				if key := recvLockKey(m, n.fn, mu); key != "" {
					held["<caller>."+mu] = key
				}
			}
		}
		w.walkStmts(n.body.List, held)
		direct[n] = w.acq
		for _, e := range w.edges {
			addEdge(e)
		}
		callsByNode[n] = nil
		for _, c := range w.calls {
			callsByNode[n] = append(callsByNode[n], callSite{targets: c.targets, pos: c.pos, held: c.held})
		}
	}

	// Pass 2: transitive acquisitions to a fixpoint.
	trans := make(map[*cgNode]map[string]lockAcq, len(g.all))
	for _, n := range g.all {
		trans[n] = make(map[string]lockAcq, len(direct[n]))
		for k, a := range direct[n] {
			trans[n][k] = a
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.all {
			for _, cs := range callsByNode[n] {
				for _, t := range cs.targets {
					if t == n {
						continue // self-recursion adds no new acquisitions
					}
					for _, k := range sortedKeys(trans[t]) {
						if _, ok := trans[n][k]; !ok {
							trans[n][k] = lockAcq{pos: cs.pos, via: t}
							changed = true
						}
					}
				}
			}
		}
	}

	// Pass 3: interprocedural edges — held at a call site x everything the
	// callee transitively acquires.
	for _, n := range g.all {
		for _, cs := range callsByNode[n] {
			for _, t := range cs.targets {
				keys := sortedKeys(trans[t])
				for _, k := range keys {
					for _, h := range cs.held {
						if h == k {
							continue // same abstract lock: recursion, not ordering
						}
						addEdge(&lockEdge{
							from: h, to: k, node: n, pos: cs.pos,
							via: acqPath(trans, t, k),
						})
					}
				}
			}
		}
	}

	m.reportLockCycles(edges)
}

// acqPath renders the call path from t down to the function directly
// acquiring k.
func acqPath(trans map[*cgNode]map[string]lockAcq, t *cgNode, k string) []string {
	var path []string
	for t != nil {
		path = append(path, t.name)
		a, ok := trans[t][k]
		if !ok {
			break
		}
		t = a.via
	}
	return path
}

// edgeLess orders edge witnesses so the kept one is deterministic: earliest
// (file, line, col), then the shorter via chain.
func edgeLess(m *Module, a, b *lockEdge) bool {
	pa, pb := m.Fset.Position(a.pos), m.Fset.Position(b.pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Offset != pb.Offset {
		return pa.Offset < pb.Offset
	}
	return len(a.via) < len(b.via)
}

// reportLockCycles finds strongly connected components of the lock graph and
// reports one diagnostic per cyclic component.
func (m *Module) reportLockCycles(edges map[[2]string]*lockEdge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for _, next := range adj {
		sort.Strings(next)
	}
	names := sortedBoolKeys(nodes)

	// Tarjan over the deterministic ordering.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	counter := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = counter, counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		if len(scc) == 1 {
			if edges[[2]string{scc[0], scc[0]}] == nil {
				continue // acyclic node
			}
		}
		sort.Strings(scc)
		cycle := cycleThrough(scc, adj, edges)
		if len(cycle) == 0 {
			continue
		}
		var chain []string
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := edges[[2]string{from, to}]
			chain = append(chain, renderEdge(m, e))
		}
		first := edges[[2]string{cycle[0], cycle[1%len(cycle)]}]
		d := m.diag("lockorder", first.pos,
			"potential deadlock: lock-order cycle %s -> %s", strings.Join(cycle, " -> "), cycle[0])
		d.Chain = chain
		m.addPreDiag("lockorder", first.node.pkg, d)
	}
}

// cycleThrough extracts one representative simple cycle inside an SCC: from
// the smallest member, the shortest path back to itself (BFS over the
// component, neighbors in sorted order).
func cycleThrough(scc []string, adj map[string][]string, edges map[[2]string]*lockEdge) []string {
	in := make(map[string]bool, len(scc))
	for _, v := range scc {
		in[v] = true
	}
	start := scc[0]
	if len(scc) == 1 {
		if edges[[2]string{start, start}] != nil {
			return []string{start}
		}
		return nil
	}
	// BFS from each successor of start back to start.
	prev := map[string]string{}
	var queue []string
	for _, w := range adj[start] {
		if in[w] {
			if _, seen := prev[w]; !seen {
				prev[w] = start
				queue = append(queue, w)
			}
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == start {
			break
		}
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if _, seen := prev[w]; !seen {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	if _, ok := prev[start]; !ok {
		return nil
	}
	var rev []string
	for v := prev[start]; v != start; v = prev[v] {
		rev = append(rev, v)
	}
	cycle := []string{start}
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	return cycle
}

// renderEdge formats one edge witness for the diagnostic chain.
func renderEdge(m *Module, e *lockEdge) string {
	p := m.Fset.Position(e.pos)
	loc := fmt.Sprintf("%s:%d", m.relFile(p.Filename), p.Line)
	if len(e.via) == 0 {
		return fmt.Sprintf("%s -> %s: %s acquires %s at %s while holding %s",
			e.from, e.to, e.node.name, e.to, loc, e.from)
	}
	return fmt.Sprintf("%s -> %s: %s holds %s and calls %s at %s, which acquires %s",
		e.from, e.to, e.node.name, e.from, strings.Join(e.via, " -> "), loc, e.to)
}

// orderWalker is the acquisition-order walker: guardedby's branch discipline,
// but tracking (instance expression -> abstract lock key) and recording
// acquisitions, held-at-acquire edges, and held-at-call-site snapshots.
type orderWalker struct {
	m     *Module
	n     *cgNode
	acq   map[string]lockAcq
	edges []*lockEdge
	calls []orderCall
}

type orderCall struct {
	targets []*cgNode
	pos     token.Pos
	held    []string
}

func (w *orderWalker) walkStmts(stmts []ast.Stmt, held map[string]string) (terminates bool) {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *orderWalker) walkStmt(s ast.Stmt, held map[string]string) (terminates bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.lockStep(s.X, held) {
			return false
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if mu, op := lockOp(w.n.pkg, s.Call); mu != "" {
			_ = op // defer mu.Unlock() fires at exit: the lock stays held here
			return false
		}
		w.scanExpr(s.Call, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, held)
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		thenHeld := cloneHeld(held)
		w.walkStmts(s.Body.List, thenHeld)
		if s.Else != nil {
			elseHeld := cloneHeld(held)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkStmts(e.List, elseHeld)
			default:
				w.walkStmt(e, elseHeld)
			}
		}
		// Post-branch state: conservatively the entry state (ordering facts
		// inside the branches were already recorded against their copies).
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := cloneHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		body := cloneHeld(held)
		w.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		w.walkClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkClauses(s.Body.List, held)
	case *ast.SelectStmt:
		w.walkClauses(s.Body.List, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
	case *ast.GoStmt:
		// The goroutine runs under no lock the spawner holds.
		none := make(map[string]string)
		w.scanExpr(s.Call.Fun, none)
		for _, a := range s.Call.Args {
			w.scanExpr(a, none)
		}
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, held)
				return false
			}
			return true
		})
	}
	return false
}

func (w *orderWalker) walkClauses(clauses []ast.Stmt, held map[string]string) {
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		w.walkStmts(body, cloneHeld(held))
	}
}

// lockStep applies a lock operation to the held state, recording the
// acquisition and the ordering edges it creates. Reports whether e was one.
func (w *orderWalker) lockStep(e ast.Expr, held map[string]string) bool {
	inst, op := lockOp(w.n.pkg, e)
	if inst == "" {
		return false
	}
	key := w.lockKeyOf(e)
	switch op {
	case "Lock", "RLock":
		if key != "" {
			pos := ast.Unparen(e).Pos()
			if _, ok := w.acq[key]; !ok {
				w.acq[key] = lockAcq{pos: pos}
			}
			for heldInst, heldKey := range held {
				if heldInst == inst {
					continue // re-locking the very same instance: recursion
				}
				w.edges = append(w.edges, &lockEdge{from: heldKey, to: key, node: w.n, pos: pos})
			}
			held[inst] = key
		}
	case "Unlock", "RUnlock":
		delete(held, inst)
	}
	return true
}

// scanExpr records nested lock ops, call sites, and literal bodies under the
// current held state.
func (w *orderWalker) scanExpr(e ast.Expr, held map[string]string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.lockStep(n, held) {
				return false
			}
			if targets := w.n.calls[n]; len(targets) > 0 {
				w.calls = append(w.calls, orderCall{
					targets: targets, pos: n.Pos(), held: sortedVals(held),
				})
			}
		case *ast.FuncLit:
			// Analyzed at its creation point, under the locks held there
			// (sort comparators invoked synchronously under the wrapping
			// lock). Its body is also summarized standalone via its own node.
			w.walkStmts(n.Body.List, cloneHeld(held))
			return false
		}
		return true
	})
}

// lockKeyOf abstracts the mutex a Lock/Unlock call operates on to its
// declaration site: "pkg.Type.field" for struct mutexes (embedded ones hash
// as the embedded type name), "pkg.var" for package-level mutexes, "" for
// locals and unresolvable shapes.
func (w *orderWalker) lockKeyOf(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	info := w.n.pkg.Info
	mx := ast.Unparen(sel.X)
	t := typeOfExpr(info, mx)
	if t != nil && !isSyncLockType(t) {
		// Promoted Lock through an embedded mutex: key by the outer type.
		if name := namedName(t); name != "" {
			return name + ".Mutex"
		}
		return ""
	}
	switch mx := mx.(type) {
	case *ast.SelectorExpr:
		fv, ok := info.Uses[mx.Sel].(*types.Var)
		if !ok || !fv.IsField() {
			return ""
		}
		if owner := namedName(typeOfExpr(info, mx.X)); owner != "" {
			return owner + "." + fv.Name()
		}
	case *ast.Ident:
		v, ok := objOf(info, mx).(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isSyncLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// namedName renders a (possibly pointer-to) named type as "pkg.Type".
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if p := named.Obj().Pkg(); p != nil {
		return p.Name() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}

// recvLockKey resolves a //dbwlm:locked contract mutex on fn's receiver type
// to an abstract key.
func recvLockKey(m *Module, fn *types.Func, mu string) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if owner := namedName(sig.Recv().Type()); owner != "" {
		return owner + "." + mu
	}
	return ""
}

func cloneHeld(h map[string]string) map[string]string {
	c := make(map[string]string, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func sortedVals(h map[string]string) []string {
	set := make(map[string]bool, len(h))
	for _, v := range h {
		set[v] = true
	}
	return sortedBoolKeys(set)
}

func sortedKeys(m map[string]lockAcq) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
