package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath checks that functions annotated //dbwlm:hotpath contain no
// allocating constructs. The admission fast path's 0-allocs/op figure
// (BENCH_live.json, BENCH_obs.json) is a hand-maintained property; this
// analyzer pins the syntactic half of it so a drive-by edit cannot silently
// put an allocation back.
//
// Flagged inside a hotpath function:
//
//   - make, new, append, and debug print builtins
//   - map and slice composite literals (they always allocate) and &T{...}
//     pointer literals (they escape to the heap)
//   - string concatenation and allocating string conversions
//     (string<->[]byte/[]rune, int->string)
//   - go statements (a goroutine is an allocation)
//   - closures that capture variables, unless they are only ever called
//     directly (never escape) or are the immediate call of a defer
//   - interface boxing at call sites: passing a non-pointer-shaped concrete
//     value where an interface parameter is declared
//   - calls to variadic functions with non-empty variadic arguments (the
//     argument slice allocates)
//   - calls into module functions not themselves annotated //dbwlm:hotpath,
//     and calls into standard-library packages outside a small allowlist of
//     allocation-free ones
//
// Known soundness gaps, deliberate: calls through function values (the
// runtime's injected clock) and panics are trusted; value composite literals
// are allowed because the paths this guards pass them by value, where escape
// analysis keeps them on the stack — the AllocsPerRun tests remain the
// ground truth the analyzer approximates.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //dbwlm:hotpath functions",
	Run:  runHotPath,
}

// hotAllowedPkgs are standard-library packages whose exported call surface
// used by this codebase is allocation-free AND non-blocking. This allowlist
// is the analyzers' trust boundary: standard-library bodies are never
// analyzed, so an entry here is a human assertion, audited when added and
// re-audited when the closure analyzer surfaces a new call site. Packages
// that call back into module code through an interface (container/heap) do
// not widen the boundary — the callback re-enters the closure through the
// CHA edges at the module call sites that constructed the container.
var hotAllowedPkgs = map[string]bool{
	"sync/atomic":    true,
	"math":           true,
	"math/rand/v2":   true, // global funcs read per-thread runtime state
	"unicode":        true,
	"container/heap": true, // operates in place over an interface it is handed
}

// hotAllowedFuncs are individually vetted allocation-free, non-blocking
// standard-library functions and methods from packages too broad to
// allowlist wholesale: monotonic-clock reads and pure time.Duration
// arithmetic return stack scalars and never park. These make the injected-
// clock pattern verifiable — the literal a //dbwlm:dyncall-justified clock
// field resolves to is still analyzed, and its time.Since call lands here.
var hotAllowedFuncs = map[string]bool{
	"time.Now":          true,
	"time.Since":        true,
	"time.Until":        true,
	"time.Nanoseconds":  true,
	"time.Microseconds": true,
	"time.Milliseconds": true,
	"time.Seconds":      true,
	"time.Minutes":      true,
	"time.Hours":        true,
}

func runHotPath(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !m.hot[fn] {
				continue
			}
			w := &hotWalker{m: m, pkg: pkg, fn: fn}
			w.prepass(fd.Body)
			w.walk(fd.Body)
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

type hotWalker struct {
	m     *Module
	pkg   *Package
	fn    *types.Func
	diags []Diagnostic

	// analyzer, when set, re-brands the walker for an interprocedural pass
	// (hotclosure): findings carry that name and the witness chain, and the
	// "calls non-hotpath" rule is skipped — the closure traversal descends
	// into callees itself instead of demanding annotations on them.
	analyzer string
	chain    []string

	callFun    map[ast.Node]bool     // expressions in call-Fun position
	deferLit   map[ast.Node]bool     // FuncLits that are a defer's call
	directOnly map[*ast.FuncLit]bool // closures bound to a var used only in call position
	litBounds  map[*ast.FuncLit]token.Pos
}

func (w *hotWalker) errf(pos token.Pos, format string, args ...any) {
	name := w.analyzer
	if name == "" {
		name = "hotpath"
	}
	d := w.m.diag(name, pos, format, args...)
	d.Chain = w.chain
	w.diags = append(w.diags, d)
}

// prepass records which expressions sit in call position, which closures are
// deferred calls, and which closures are bound to a variable that is only
// ever called directly (and therefore never escapes).
func (w *hotWalker) prepass(body *ast.BlockStmt) {
	w.callFun = make(map[ast.Node]bool)
	w.deferLit = make(map[ast.Node]bool)
	w.directOnly = make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.callFun[ast.Unparen(n.Fun)] = true
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				w.deferLit[lit] = true
			}
		}
		return true
	})
	// name := func(...){...} with every use of name a direct call.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.DEFINE {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			return true
		}
		escapes := false
		ast.Inspect(body, func(u ast.Node) bool {
			if uid, ok := u.(*ast.Ident); ok && w.pkg.Info.Uses[uid] == obj && !w.callFun[uid] {
				escapes = true
			}
			return true
		})
		if !escapes {
			w.directOnly[lit] = true
		}
		return true
	})
}

func (w *hotWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.errf(n.Pos(), "go statement in hotpath function (allocates a goroutine)")
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.CompositeLit:
			w.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.errf(n.Pos(), "&T{...} in hotpath function escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := w.typeOf(n); t != nil && isStringType(t) {
					w.errf(n.Pos(), "string concatenation in hotpath function allocates")
				}
			}
		case *ast.SelectorExpr:
			w.checkMethodValue(n)
		case *ast.FuncLit:
			w.checkFuncLit(n)
			return false // body walked by checkFuncLit
		}
		return true
	})
}

func (w *hotWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *hotWalker) checkCall(call *ast.CallExpr) {
	info := w.pkg.Info
	if b := builtinOf(info, call); b != "" {
		switch b {
		case "make":
			w.errf(call.Pos(), "make in hotpath function allocates")
		case "new":
			w.errf(call.Pos(), "new in hotpath function allocates")
		case "append":
			w.errf(call.Pos(), "append in hotpath function allocates (amortized)")
		case "print", "println":
			w.errf(call.Pos(), "debug print builtin in hotpath function")
		}
		return
	}
	if isConversion(info, call) {
		w.checkConversion(call)
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		// A call through a function value (the runtime's injected clock): the
		// dynamic target is unknowable statically; trusted by design.
		w.checkBoxing(call)
		return
	}
	w.checkBoxing(call)
	switch {
	case fn.Pkg() == nil:
		// error.Error and other universe-scope methods.
	case w.m.isModuleFunc(fn):
		if !w.m.hot[fn] && w.analyzer == "" {
			w.errf(call.Pos(), "hotpath function calls non-hotpath %s.%s",
				fn.Pkg().Name(), fn.Name())
		}
	case hotAllowedFuncs[fn.Pkg().Path()+"."+fn.Name()]:
		// An individually vetted allocation-free, non-blocking function.
	case !hotAllowedPkgs[fn.Pkg().Path()]:
		if fn.Pkg().Path() == "fmt" {
			w.errf(call.Pos(), "fmt.%s in hotpath function allocates", fn.Name())
		} else {
			w.errf(call.Pos(), "call to %s.%s outside the hotpath stdlib allowlist",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkBoxing flags arguments boxed into interface parameters and the slice
// allocated by a non-empty variadic call.
func (w *hotWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type() // spread: arg is already the slice
			} else {
				if i == np-1 {
					w.errf(call.Pos(), "variadic call to %s allocates its argument slice",
						types.ExprString(call.Fun))
				}
				if s, ok := params.At(np - 1).Type().Underlying().(*types.Slice); ok {
					pt = s.Elem()
				}
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := w.typeOf(arg)
		if at == nil || isInterface(at) || pointerShaped(at) {
			continue
		}
		if tv, ok := w.pkg.Info.Types[arg]; ok && tv.Value != nil {
			continue // constants box through static data
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.errf(arg.Pos(), "%s value boxed into interface parameter allocates", at.String())
	}
}

func (w *hotWalker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := w.typeOf(call.Fun)
	from := w.typeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isStringType(to) && !isStringType(from):
		if _, isSlice := from.Underlying().(*types.Slice); isSlice {
			w.errf(call.Pos(), "[]byte/[]rune to string conversion in hotpath function allocates")
		} else if b, ok := from.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			w.errf(call.Pos(), "integer to string conversion in hotpath function allocates")
		}
	case isByteOrRuneSlice(to) && isStringType(from):
		w.errf(call.Pos(), "string to %s conversion in hotpath function allocates", to.String())
	case isInterface(to) && !isInterface(from) && !pointerShaped(from):
		w.errf(call.Pos(), "conversion of %s to interface in hotpath function allocates", from.String())
	}
}

func (w *hotWalker) checkCompositeLit(lit *ast.CompositeLit) {
	t := w.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		w.errf(lit.Pos(), "map literal in hotpath function allocates")
	case *types.Slice:
		w.errf(lit.Pos(), "slice literal in hotpath function allocates")
	}
	// Struct and array value literals stay on the stack unless they escape;
	// the &T{...} escape form is flagged by the UnaryExpr case.
}

// checkMethodValue flags x.M used as a value (a bound-method closure, which
// allocates) rather than called.
func (w *hotWalker) checkMethodValue(sel *ast.SelectorExpr) {
	if w.callFun[sel] {
		return
	}
	if s, ok := w.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		w.errf(sel.Pos(), "method value %s allocates a bound closure", types.ExprString(sel))
	}
}

func (w *hotWalker) checkFuncLit(lit *ast.FuncLit) {
	switch {
	case w.directOnly[lit], w.deferLit[lit]:
		// Never escapes (only called directly / the immediate call of a
		// defer): stack-allocated. Its body still runs on the hot path.
	default:
		if capt := w.captures(lit); capt != "" {
			w.errf(lit.Pos(), "closure capturing %s in hotpath function allocates", capt)
		}
	}
	w.walk(lit.Body)
}

// captures reports a variable the literal captures from its enclosing
// function ("" when it captures nothing).
func (w *hotWalker) captures(lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found != "" {
			return found == ""
		}
		v, ok := w.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true // fields, package-level vars, and non-vars never capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v.Name()
		}
		return true
	})
	return found
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
