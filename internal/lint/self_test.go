package lint

import "testing"

// TestModuleClean is the self-check the Makefile's lint target relies on:
// the full suite over the real module — every package, every analyzer,
// directive hygiene included — reports nothing. Any new finding is either a
// real violation to fix or a line to suppress with an in-place justification.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(m, Options{}) {
		t.Errorf("%s", d)
	}
}
