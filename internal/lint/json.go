package lint

import (
	"encoding/json"
	"io"
)

// WriteJSON renders diagnostics as an indented JSON array with a trailing
// newline — the wlmlint -json wire format. The byte stream is a pure
// function of the diagnostics: keys in declaration order, two-space indent,
// empty input as []. Consumers (CI annotators, editors) may diff it
// byte-for-byte; the golden test pins it.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
