package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture corpus under testdata/src is a synthetic module with one
// package per analyzer plus a directive-hygiene package. Expectations are
// inline `// want` comments carrying one or more quoted regexes; each applies
// to its own line, or to a nearby line via an offset suffix (`// want[-1]`
// pins the line above — used when the finding anchors on a comment, which
// cannot carry a trailing comment of its own).
//
// The contract is exact in both directions: every diagnostic the full suite
// emits must match a want on its line, and every want must match at least one
// diagnostic.

var wantRe = regexp.MustCompile(`// want(\[([+-]?\d+)\])? (.+)$`)

type wantExpect struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, root string) []*wantExpect {
	t.Helper()
	var wants []*wantExpect
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, text := range strings.Split(string(data), "\n") {
			sub := wantRe.FindStringSubmatch(text)
			if sub == nil {
				continue
			}
			line := i + 1
			if sub[2] != "" {
				off, _ := strconv.Atoi(sub[2])
				line += off
			}
			for _, pat := range splitPatterns(sub[3]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", rel, i+1, pat, err)
				}
				wants = append(wants, &wantExpect{file: filepath.ToSlash(rel), line: line, pattern: pat, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// splitPatterns parses the backquoted (or double-quoted) regexes following
// the want keyword.
func splitPatterns(rest string) []string {
	var pats []string
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return append(pats, rest[1:])
			}
			pats = append(pats, rest[1:1+end])
			rest = rest[end+2:]
		case '"':
			var s string
			if _, err := fmt.Sscanf(rest, "%q", &s); err != nil {
				return pats
			}
			pats = append(pats, s)
			rest = rest[len(strconv.Quote(s)):]
		default:
			return pats
		}
	}
	return pats
}

// TestFixtures runs the full suite over the fixture corpus and holds the
// diagnostics to the inline want expectations, in both directions.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	m, err := Load(root, "fix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, Options{})
	wants := collectWants(t, root)

	byLine := make(map[string][]*wantExpect)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, w := range wants {
		byLine[key(w.file, w.line)] = append(byLine[key(w.file, w.line)], w)
	}
	for _, d := range diags {
		// Patterns match against the message plus the rendered witness chain,
		// so fixtures can pin the chain text interprocedural findings print.
		text := d.Message
		if len(d.Chain) > 0 {
			text += " chain: " + strings.Join(d.Chain, " -> ")
		}
		matched := false
		for _, w := range byLine[key(d.File, d.Line)] {
			if w.re.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// TestFixtureAnalyzerFilter: a -run style filter restricts the output to the
// named analyzer and drops the directive hygiene findings (they only ride on
// full runs, where the unused-suppression check is meaningful).
func TestFixtureAnalyzerFilter(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, Options{Analyzers: []string{"detlint"}})
	if len(diags) == 0 {
		t.Fatal("detlint-only run found nothing in the fixture corpus")
	}
	for _, d := range diags {
		if d.Analyzer != "detlint" {
			t.Errorf("filtered run leaked %s", d)
		}
		if !strings.HasPrefix(d.File, "detlint/") {
			t.Errorf("detlint diagnostic outside its fixture package: %s", d)
		}
	}
}

// TestFixturePackageFilter: a package filter confines the run to one fixture
// directory.
func TestFixturePackageFilter(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, Options{Packages: []string{"guardedby"}})
	if len(diags) == 0 {
		t.Fatal("guardedby package run found nothing")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "guardedby/") {
			t.Errorf("package-filtered run leaked %s", d)
		}
	}
}
