// Package lint is dbwlm's in-tree static-analysis suite: eight analyzers over
// go/ast + go/types that machine-check the invariants the runtime's
// correctness and performance rest on — zero-allocation, non-blocking hot
// paths (checked intra-procedurally and across the whole static call graph),
// atomic field discipline and 64-bit alignment (including interprocedural
// mixed plain/atomic access), deterministic iteration in the
// simulation/reporting packages, mutex-guarded field access, global
// lock-ordering acyclicity, and the coupling between AllocsPerRun tests and
// the hot paths they guard. The
// driver (cmd/wlmlint) loads the whole module with full type information
// using only the standard library, keeping go.mod dependency-free.
//
// See DESIGN.md §10 for the analyzer catalogue and the //dbwlm: annotation
// vocabulary.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned in module-relative file coordinates.
// Interprocedural findings carry the witness call chain from the annotated
// root to the function holding the offending statement.
type Diagnostic struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"` // relative to the module root
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if len(d.Chain) > 0 {
		s += "\n\tchain: " + strings.Join(d.Chain, " -> ")
	}
	return s
}

// Analyzer is one check. Run inspects a single package; cross-package facts
// (annotation sets, atomic-field tables) are prebuilt on the Module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, pkg *Package) []Diagnostic
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	HotPath,
	HotClosure,
	AtomicField,
	AtomicMix,
	DetLint,
	GuardedBy,
	LockOrder,
	NoEscapeTest,
}

var analyzerNames = func() map[string]bool {
	names := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		names[a.Name] = true
	}
	return names
}()

// Options tunes one Run.
type Options struct {
	// Analyzers filters by analyzer name (nil runs the full suite).
	Analyzers []string
	// Packages filters which packages' findings are reported, as import-path
	// patterns relative to the module ("./...", "./internal/rt",
	// "internal/rt/...", or full import paths). Analysis always loads and
	// inspects the whole module — cross-package facts demand it — only the
	// reporting is filtered. nil reports everything.
	Packages []string
	// Workers bounds the (analyzer, package) fan-out; 0 means GOMAXPROCS.
	// Output is identical at any worker count: results land in indexed slots
	// and every post-pass (suppression, sorting) runs sequentially.
	Workers int
}

// Run executes the configured analyzers over the module and returns the
// surviving findings: suppressed diagnostics are dropped (their suppressions
// marked used), and — when the full suite runs unfiltered — unused
// suppressions and malformed directives are reported as "directive" findings.
func Run(m *Module, opts Options) []Diagnostic {
	wantAnalyzer := func(string) bool { return true }
	if len(opts.Analyzers) > 0 {
		set := make(map[string]bool)
		for _, n := range opts.Analyzers {
			set[n] = true
		}
		wantAnalyzer = func(n string) bool { return set[n] }
	}

	// Fan the (analyzer, package) grid across workers. Analyzer Run functions
	// only read the module's shared fact tables, so they parallelize freely;
	// everything order-sensitive (suppression marking, directive reporting,
	// sorting) stays on this goroutine.
	type cell struct {
		a   *Analyzer
		pkg *Package
	}
	var work []cell
	for _, a := range Analyzers {
		if !wantAnalyzer(a.Name) {
			continue
		}
		for _, pkg := range m.Pkgs {
			work = append(work, cell{a, pkg})
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = max(len(work), 1)
	}
	results := make([][]Diagnostic, len(work))
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(work) {
					return
				}
				results[i] = work[i].a.Run(m, work[i].pkg)
			}
		}()
	}
	wg.Wait()
	var diags []Diagnostic
	for _, ds := range results {
		diags = append(diags, ds...)
	}

	// Apply suppressions: a //dbwlm:nolint comment silences matching
	// analyzers on its own line and the line below it.
	kept := diags[:0]
	for _, d := range diags {
		if m.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	full := len(opts.Analyzers) == 0 && len(opts.Packages) == 0
	if full {
		diags = append(diags, m.dirDiags...)
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				for i := range f.suppress {
					if !f.suppress[i].used {
						diags = append(diags, Diagnostic{
							Analyzer: "directive",
							File:     m.relFile(f.Name),
							Line:     f.suppress[i].line,
							Col:      1,
							Message:  "unused //dbwlm:nolint suppression (nothing it suppresses fires here)",
						})
					}
				}
				for i := range f.dyn {
					if !f.dyn[i].used {
						diags = append(diags, Diagnostic{
							Analyzer: "directive",
							File:     m.relFile(f.Name),
							Line:     f.dyn[i].line,
							Col:      1,
							Message:  "unused //dbwlm:dyncall justification (no unresolved dynamic call dispatches through here)",
						})
					}
				}
			}
		}
	}

	if len(opts.Packages) > 0 {
		match := m.packageMatcher(opts.Packages)
		kept := diags[:0]
		for _, d := range diags {
			if match(d.File) {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

func (m *Module) suppressed(d Diagnostic) bool {
	f := m.byFile[m.absFile(d.File)]
	if f == nil {
		return false
	}
	for i := range f.suppress {
		s := &f.suppress[i]
		if (s.line == d.Line || s.line == d.Line-1) && s.analyzers[d.Analyzer] {
			s.used = true
			return true
		}
	}
	return false
}

// packageMatcher compiles CLI package patterns into a predicate over
// module-relative file paths.
func (m *Module) packageMatcher(patterns []string) func(string) bool {
	type pat struct {
		dir string // module-relative package dir, "" = root
		all bool   // trailing /...
	}
	var pats []pat
	for _, p := range patterns {
		p = strings.TrimPrefix(p, m.Path+"/")
		p = strings.TrimPrefix(p, "./")
		all := false
		if p == "..." || p == m.Path {
			p, all = "", true
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, all = rest, true
		}
		pats = append(pats, pat{dir: p, all: all})
	}
	return func(file string) bool {
		dir := ""
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			dir = file[:i]
		}
		for _, p := range pats {
			if p.all {
				if p.dir == "" || dir == p.dir || strings.HasPrefix(dir, p.dir+"/") {
					return true
				}
			} else if dir == p.dir {
				return true
			}
		}
		return false
	}
}

// diag builds a Diagnostic at a token position.
func (m *Module) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	p := m.Fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		File:     m.relFile(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

func (m *Module) relFile(name string) string {
	if rel, ok := strings.CutPrefix(name, m.Dir+"/"); ok {
		return rel
	}
	return name
}

func (m *Module) absFile(rel string) string {
	if strings.HasPrefix(rel, "/") {
		return rel
	}
	return m.Dir + "/" + rel
}

// suppressedAt reports whether a //dbwlm:nolint for analyzer covers pos,
// marking the suppression used. Interprocedural analyzers use it to prune
// traversal at suppressed call sites.
func (m *Module) suppressedAt(analyzer string, pos token.Pos) bool {
	p := m.Fset.Position(pos)
	f := m.byFile[p.Filename]
	if f == nil {
		return false
	}
	for i := range f.suppress {
		s := &f.suppress[i]
		if (s.line == p.Line || s.line == p.Line-1) && s.analyzers[analyzer] {
			s.used = true
			return true
		}
	}
	return false
}
