package lint

import (
	"go/ast"
	"go/types"
)

// NoEscapeTest couples the zero-allocation tests to the hotpath annotations:
// a test that asserts testing.AllocsPerRun(...) == 0 is documenting a hot
// path, so the function it exercises must carry //dbwlm:hotpath — otherwise
// the property is enforced dynamically but invisible statically, and the two
// halves of the suite drift apart. Only zero-comparisons count; tests that
// tolerate a small allocation budget (avg > 1 guards) are making a different,
// weaker claim and are left alone.
var NoEscapeTest = &Analyzer{
	Name: "noescape-test",
	Doc:  "AllocsPerRun==0 tests must exercise a //dbwlm:hotpath function",
	Run:  runNoEscapeTest,
}

func runNoEscapeTest(m *Module, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if !f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkAllocTest(m, pkg, fd)...)
		}
	}
	return diags
}

func checkAllocTest(m *Module, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// Collect AllocsPerRun calls and, for assigned results, the variables
	// holding them.
	type site struct {
		call *ast.CallExpr
		v    types.Object // result variable, nil when used inline
	}
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isAllocsPerRun(pkg.Info, call) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					sites = append(sites, site{call: call, v: objOf(pkg.Info, id)})
					return true
				}
			}
		}
		if call, ok := n.(*ast.CallExpr); ok && isAllocsPerRun(pkg.Info, call) {
			already := false
			for _, s := range sites {
				if s.call == call {
					already = true
				}
			}
			if !already {
				sites = append(sites, site{call: call})
			}
		}
		return true
	})
	if len(sites) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, s := range sites {
		if !zeroCompared(pkg, fd.Body, s.call, s.v) {
			continue // an allocation-budget test, not a zero-alloc assertion
		}
		if len(s.call.Args) < 2 {
			continue
		}
		lit, ok := ast.Unparen(s.call.Args[1]).(*ast.FuncLit)
		if !ok {
			continue // a named func argument: too indirect to attribute, trust it
		}
		if !callsHotPath(m, pkg, lit) {
			diags = append(diags, m.diag("noescape-test", s.call.Pos(),
				"AllocsPerRun==0 assertion exercises no //dbwlm:hotpath function; annotate the function under test so the analyzer guards it too"))
		}
	}
	return diags
}

func isAllocsPerRun(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "testing" &&
		fn.Name() == "AllocsPerRun"
}

// zeroCompared reports whether the AllocsPerRun result is compared against a
// literal 0 — directly (testing.AllocsPerRun(...) != 0) or through the
// variable it was assigned to (if allocs != 0 { ... }).
func zeroCompared(pkg *Package, body *ast.BlockStmt, call *ast.CallExpr, v types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
			if !isZeroLit(pair[1]) {
				continue
			}
			if pair[0] == call {
				found = true
			}
			if id, ok := pair[0].(*ast.Ident); ok && v != nil && objOf(pkg.Info, id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// callsHotPath reports whether the benchmark body directly calls at least one
// //dbwlm:hotpath module function.
func callsHotPath(m *Module, pkg *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := calleeOf(pkg.Info, call); fn != nil && m.hot[fn] {
			found = true
		}
		return !found
	})
	return found
}
