package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix is the interprocedural half of the atomic-field discipline.
// AtomicField sees fields whose address is passed to sync/atomic directly
// (atomic.AddInt64(&s.f, 1)); this analyzer sees the ones laundered through
// helpers:
//
//	func bump(p *int64) { atomic.AddInt64(p, 1) }
//	...
//	bump(&s.hits)   // s.hits is now an atomic field
//	s.hits++        // ← data race, flagged here — even from another package
//
// A fixpoint over the module marks every pointer parameter and local that
// transitively reaches a sync/atomic call (bump's p above, and any parameter
// forwarded into bump). A field whose address flows into such a variable
// joins the atomic set, and from then on every plain access to it anywhere in
// the module is a diagnostic — except inside a constructor of the owning
// type, where the value has not yet been published and plain initialization
// is the idiom (a constructor is any function whose results include T or *T).
// Fields AtomicField already tracks are excluded so each finding is reported
// by exactly one analyzer.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields reaching sync/atomic through helpers must be accessed atomically outside their constructor",
	Run: func(m *Module, pkg *Package) []Diagnostic {
		return m.preDiags["atomicmix"][pkg]
	},
}

// runAtomicMix performs the module-wide flow analysis once, at fact-build
// time.
func (m *Module) runAtomicMix() {
	// Collect every call in the module once, in deterministic order.
	type callRec struct {
		pkg  *Package
		call *ast.CallExpr
		fn   *types.Func
	}
	var calls []callRec
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := calleeOf(pkg.Info, call); fn != nil {
						calls = append(calls, callRec{pkg, call, fn})
					}
				}
				return true
			})
		}
	}

	// paramAt resolves a call argument index to the callee's parameter
	// variable; the variadic tail is skipped (atomic helpers don't take
	// ...*int64, and tracking slices of pointers is beyond best-effort).
	paramAt := func(fn *types.Func, i int) *types.Var {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			return nil
		}
		if i >= sig.Params().Len() {
			return nil
		}
		return sig.Params().At(i)
	}
	identVar := func(pkg *Package, e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := objOf(pkg.Info, id).(*types.Var)
		return v
	}

	// Pass 1: fixpoint over pointer-carrying variables that reach
	// sync/atomic. Seeded by atomic calls whose address argument is a plain
	// variable; propagated caller-ward through module call arguments.
	fwd := make(map[*types.Var]string) // var -> helper path it reaches atomic through
	for changed := true; changed; {
		changed = false
		for _, c := range calls {
			switch {
			case c.fn.Pkg() != nil && c.fn.Pkg().Path() == "sync/atomic" && len(c.call.Args) > 0:
				if v := identVar(c.pkg, c.call.Args[0]); v != nil && fwd[v] == "" {
					fwd[v] = "sync/atomic." + c.fn.Name()
					changed = true
				}
			case m.isModuleFunc(c.fn):
				for i, arg := range c.call.Args {
					p := paramAt(c.fn, i)
					if p == nil || fwd[p] == "" {
						continue
					}
					if v := identVar(c.pkg, arg); v != nil && fwd[v] == "" {
						fwd[v] = m.funcName(c.fn)
						changed = true
					}
				}
			}
		}
	}
	if len(fwd) == 0 {
		return
	}

	// Pass 2: fields whose address flows into a forwarding variable — as a
	// call argument (bump(&s.f)) or by assignment (p := &s.f; bump(p)). The
	// flow site itself is a legal access.
	mixFld := make(map[*types.Var]string)            // field -> helper it reaches atomic through
	mixOwner := make(map[*types.Var]*types.TypeName) // field -> owning named type
	legal := make(map[ast.Node]bool)
	register := func(pkg *Package, e ast.Expr, via string) {
		un, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || un.Op.String() != "&" {
			return
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() || m.atomicFld[v] {
			return // direct atomic fields are AtomicField's beat
		}
		legal[sel] = true
		if mixFld[v] != "" {
			return
		}
		mixFld[v] = via
		t := typeOfExpr(pkg.Info, sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			mixOwner[v] = named.Obj()
		}
	}
	for _, c := range calls {
		if !m.isModuleFunc(c.fn) {
			continue
		}
		for i, arg := range c.call.Args {
			if p := paramAt(c.fn, i); p != nil && fwd[p] != "" {
				register(c.pkg, arg, m.funcName(c.fn))
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						if v := identVar(pkg, lhs); v != nil && fwd[v] != "" {
							register(pkg, n.Rhs[i], fwd[v])
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i >= len(n.Values) {
							break
						}
						if v, ok := objOf(pkg.Info, name).(*types.Var); ok && fwd[v] != "" {
							register(pkg, n.Values[i], fwd[v])
						}
					}
				}
				return true
			})
		}
	}
	if len(mixFld) == 0 {
		return
	}

	// Pass 3: flag plain accesses, exempting constructors of the owning type.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				fd, _ := decl.(*ast.FuncDecl)
				var ctorOf map[*types.TypeName]bool
				if fd != nil {
					ctorOf = constructedTypes(pkg, fd)
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || legal[sel] || m.atomicUse[sel] {
						return true
					}
					v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
					if !ok || !v.IsField() || mixFld[v] == "" {
						return true
					}
					if owner := mixOwner[v]; owner != nil && ctorOf[owner] {
						return true
					}
					m.addPreDiag("atomicmix", pkg, m.diag("atomicmix", sel.Pos(),
						"plain access to field %s, whose address reaches sync/atomic through %s — access it atomically, or initialize it inside the constructor",
						v.Name(), mixFld[v]))
					return true
				})
			}
		}
	}
}

// constructedTypes reports the named types a function constructs: every named
// type (or pointer to one) among its results.
func constructedTypes(pkg *Package, fd *ast.FuncDecl) map[*types.TypeName]bool {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out map[*types.TypeName]bool
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if out == nil {
				out = make(map[*types.TypeName]bool)
			}
			out[named.Obj()] = true
		}
	}
	return out
}
