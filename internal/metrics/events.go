package metrics

import (
	"fmt"

	"dbwlm/internal/sim"
)

// EventKind distinguishes the monitor event streams the paper's commercial
// systems expose: activity events (per-query lifecycle), threshold-violation
// events (DB2 threshold monitor, SQL Server "CPU Threshold Exceeded"), and
// statistics events (aggregated interval snapshots).
type EventKind int

// Event kinds.
const (
	EventActivity EventKind = iota
	EventThresholdViolation
	EventStatistics
	EventControlAction
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventActivity:
		return "activity"
	case EventThresholdViolation:
		return "threshold-violation"
	case EventStatistics:
		return "statistics"
	case EventControlAction:
		return "control-action"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one monitor record.
type Event struct {
	Kind     EventKind
	At       sim.Time
	Query    int64  // query ID, 0 if not query-scoped
	Workload string // workload name, "" if not workload-scoped
	// What identifies the threshold or action (for example "ElapsedTime",
	// "kill", "throttle").
	What string
	// Detail is a human-readable elaboration.
	Detail string
	// Value carries the measured quantity that triggered the event, if any.
	Value float64
}

// Recorder collects monitor events with a bounded buffer; when the cap is
// reached the oldest events are discarded. It mirrors the event monitors of
// DB2 WLM and the extended events of SQL Server Resource Governor.
type Recorder struct {
	cap     int
	events  []Event
	dropped int64
	byKind  map[EventKind]int64
}

// NewRecorder returns a recorder that retains at most cap events.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{cap: cap, byKind: make(map[EventKind]int64)}
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.byKind[e.Kind]++
	if len(r.events) >= r.cap {
		copy(r.events, r.events[1:])
		r.events = r.events[:len(r.events)-1]
		r.dropped++
	}
	r.events = append(r.events, e)
}

// Events returns the retained events, oldest first. The slice is shared;
// callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// CountKind reports how many events of kind k were ever recorded (including
// any later dropped from the buffer).
func (r *Recorder) CountKind(k EventKind) int64 { return r.byKind[k] }

// Dropped reports how many events were evicted from the buffer.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Filter returns the retained events matching kind k.
func (r *Recorder) Filter(k EventKind) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
