// Package metrics is the monitoring substrate for the workload manager. It
// provides the counters, histograms, sliding-window rates, and event monitors
// that the paper's "monitoring" stage exposes (DB2 table functions and event
// monitors, SQL Server performance counters, Teradata dashboard metrics), and
// that the feedback-driven controllers (throughput admission, PI throttling,
// MAPE loop) consume.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"dbwlm/internal/sim"
)

// Counter is a monotonically nondecreasing count.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be nonnegative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.n += delta
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is an instantaneous value.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge value by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value reports the current gauge value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram records a distribution of nonnegative values in logarithmic
// buckets (HDR-style), supporting approximate percentiles with bounded
// relative error. The zero value is not usable; call NewHistogram.
type Histogram struct {
	buckets []int64
	count   int64
	sum     float64
	min     float64
	max     float64
	// growth is the per-bucket growth factor; bucket i covers
	// [base*growth^i, base*growth^(i+1)).
	base   float64
	growth float64
	logG   float64
}

// NewHistogram returns a histogram with ~5% relative error per bucket,
// covering values from 1µ-scale (1e-6) upward.
func NewHistogram() *Histogram {
	g := 1.05
	return &Histogram{
		base:   1e-6,
		growth: g,
		logG:   math.Log(g),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.base {
		return 0
	}
	return int(math.Log(v/h.base)/h.logG) + 1
}

func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return h.base
	}
	return h.base * math.Pow(h.growth, float64(i))
}

// Record adds a value to the histogram. Negative values are clamped to zero;
// NaN and infinities are clamped to the representable range.
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	const maxValue = 1e18
	if v > maxValue {
		v = maxValue
	}
	i := h.bucketIndex(v)
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the arithmetic mean of recorded values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Sum reports the sum of recorded values.
func (h *Histogram) Sum() float64 { return h.sum }

// Min reports the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded value, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile reports the approximate p-th percentile (p in [0, 100]).
// Returns 0 when the histogram is empty.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			u := h.bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Snapshot summarizes the histogram for reporting.
type Snapshot struct {
	Count          int64
	Mean, Min, Max float64
	P50, P90, P95  float64
	P99            float64
	Sum            float64
}

// Snapshot computes a reporting summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.count, Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
		P50: h.Percentile(50), P90: h.Percentile(90),
		P95: h.Percentile(95), P99: h.Percentile(99), Sum: h.sum,
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// RateWindow measures event throughput over a sliding window of virtual time.
type RateWindow struct {
	window sim.Duration
	times  []sim.Time // ring of event timestamps, oldest first
}

// NewRateWindow returns a throughput window of the given span.
func NewRateWindow(window sim.Duration) *RateWindow {
	if window <= 0 {
		panic("metrics: NewRateWindow with non-positive window")
	}
	return &RateWindow{window: window}
}

// Observe records one event at time t.
func (w *RateWindow) Observe(t sim.Time) {
	w.times = append(w.times, t)
	w.trim(t)
}

// trim drops events older than the window.
func (w *RateWindow) trim(now sim.Time) {
	cutoff := now.Add(-w.window)
	i := sort.Search(len(w.times), func(i int) bool { return w.times[i] > cutoff })
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
	}
}

// Rate reports events per second over the window ending at now.
func (w *RateWindow) Rate(now sim.Time) float64 {
	w.trim(now)
	return float64(len(w.times)) / w.window.Seconds()
}

// Count reports the number of events currently inside the window ending at now.
func (w *RateWindow) Count(now sim.Time) int {
	w.trim(now)
	return len(w.times)
}

// EWMA is an exponentially weighted moving average over irregular samples.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: NewEWMA alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(v float64) {
	if !e.init {
		e.v = v
		e.init = true
		return
	}
	e.v = e.alpha*v + (1-e.alpha)*e.v
}

// Value reports the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.v }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.init }
