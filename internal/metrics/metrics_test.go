package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 45 || p50 > 56 {
		t.Fatalf("p50 = %v, want ~50 within bucket error", p50)
	}
	p95 := h.Percentile(95)
	if p95 < 90 || p95 > 101 {
		t.Fatalf("p95 = %v, want ~95", p95)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative value not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are nondecreasing in p, and bounded by [min, max].
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(math.Abs(v))
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			if q < h.Min()-1e-9 || q > h.Max()+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Record(1.0)
	}
	p := h.Percentile(99)
	if p < 0.9 || p > 1.1 {
		t.Fatalf("p99 of constant 1.0 = %v, want within 10%%", p)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	h.Record(2)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(10 * sim.Second)
	for i := 0; i < 50; i++ {
		w.Observe(sim.Time(i) * sim.Time(sim.Second) / 5) // 5/s for 10s
	}
	rate := w.Rate(sim.Time(10 * sim.Second))
	if math.Abs(rate-5.0) > 0.3 {
		t.Fatalf("rate = %v, want ~5/s", rate)
	}
	// After a long quiet period the rate decays to zero.
	if got := w.Rate(sim.Time(100 * sim.Second)); got != 0 {
		t.Fatalf("stale rate = %v, want 0", got)
	}
}

func TestRateWindowCount(t *testing.T) {
	w := NewRateWindow(sim.Second)
	w.Observe(0)
	w.Observe(sim.Time(500 * sim.Millisecond))
	if got := w.Count(sim.Time(600 * sim.Millisecond)); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := w.Count(sim.Time(1400 * sim.Millisecond)); got != 1 {
		t.Fatalf("count after expiry = %d, want 1", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("EWMA initialized before first sample")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should set value, got %v", e.Value())
	}
	e.Observe(0)
	if e.Value() != 5 {
		t.Fatalf("EWMA = %v, want 5", e.Value())
	}
}

func TestEWMAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEWMA(0) did not panic")
		}
	}()
	NewEWMA(0)
}

func TestRecorderCapAndFilter(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		k := EventActivity
		if i%2 == 1 {
			k = EventThresholdViolation
		}
		r.Record(Event{Kind: k, Query: int64(i)})
	}
	if len(r.Events()) != 3 {
		t.Fatalf("retained %d events, want 3", len(r.Events()))
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	if r.Events()[0].Query != 2 {
		t.Fatalf("oldest retained = %d, want 2", r.Events()[0].Query)
	}
	if r.CountKind(EventActivity) != 3 {
		t.Fatalf("activity count = %d, want 3", r.CountKind(EventActivity))
	}
	tv := r.Filter(EventThresholdViolation)
	if len(tv) != 1 { // events 0,1 were evicted; retained {2,3,4} has one violation
		t.Fatalf("filtered %d threshold violations, want 1 retained", len(tv))
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventActivity, EventThresholdViolation, EventStatistics, EventControlAction, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}

func TestWorkloadStats(t *testing.T) {
	s := NewWorkloadStats("oltp")
	s.ObserveArrival(0)
	s.ObserveCompletion(sim.Time(2*sim.Second), 2*sim.Second, 1*sim.Second, 0.5)
	s.ObserveCompletion(sim.Time(4*sim.Second), 1*sim.Second, 0, 1.0)
	if s.Completed.Value() != 2 {
		t.Fatalf("completed = %d", s.Completed.Value())
	}
	thr := s.OverallThroughput()
	if math.Abs(thr-0.5) > 1e-9 {
		t.Fatalf("overall throughput = %v, want 0.5", thr)
	}
	if math.Abs(s.MeanVelocity()-0.75) > 1e-9 {
		t.Fatalf("mean velocity = %v, want 0.75", s.MeanVelocity())
	}
}

func TestWorkloadStatsEmptyThroughput(t *testing.T) {
	s := NewWorkloadStats("x")
	if s.OverallThroughput() != 0 {
		t.Fatal("empty stats should report zero throughput")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Workload("bi")
	b := r.Workload("bi")
	if a != b {
		t.Fatal("Workload not idempotent")
	}
	r.Workload("oltp")
	names := r.Names()
	if len(names) != 2 || names[0] != "bi" || names[1] != "oltp" {
		t.Fatalf("names = %v", names)
	}
	if r.Report() == "" {
		t.Fatal("empty report")
	}
}
