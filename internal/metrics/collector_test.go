package metrics

import (
	"testing"

	"dbwlm/internal/sim"
)

func TestStatisticsCollectorIntervals(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry()
	ws := reg.Workload("oltp")
	c := NewStatisticsCollector(s, reg, 5*sim.Second)

	// 2 completions/s for 20 seconds.
	s.Every(500*sim.Millisecond, func() bool {
		ws.ObserveCompletion(s.Now(), 100*sim.Millisecond, 0, 1)
		return s.Now() < sim.Time(20*sim.Second)
	})
	s.Run(sim.Time(21 * sim.Second))

	series := c.Series("oltp")
	if len(series) < 3 {
		t.Fatalf("snapshots = %d", len(series))
	}
	// Full intervals record ~10 completions each.
	mid := series[1]
	if mid.Completed < 8 || mid.Completed > 12 {
		t.Fatalf("interval completions = %d, want ~10", mid.Completed)
	}
	if mid.Throughput < 1.5 || mid.Throughput > 2.5 {
		t.Fatalf("interval throughput = %v, want ~2", mid.Throughput)
	}
	if mid.MeanResponse <= 0 {
		t.Fatal("no response stats")
	}
	// Statistics events recorded.
	if reg.Events.CountKind(EventStatistics) == 0 {
		t.Fatal("no statistics events")
	}
	if mid.String() == "" {
		t.Fatal("empty snapshot string")
	}
	c.Stop()
}

func TestStatisticsCollectorTrend(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry()
	ws := reg.Workload("w")
	c := NewStatisticsCollector(s, reg, sim.Second)
	// Accelerating workload: rate doubles halfway.
	s.Every(250*sim.Millisecond, func() bool {
		ws.ObserveCompletion(s.Now(), sim.Millisecond, 0, 1)
		return s.Now() < sim.Time(10*sim.Second)
	})
	s.Every(125*sim.Millisecond, func() bool {
		if s.Now() > sim.Time(10*sim.Second) {
			ws.ObserveCompletion(s.Now(), sim.Millisecond, 0, 1)
		}
		return s.Now() < sim.Time(20*sim.Second)
	})
	s.Run(sim.Time(20 * sim.Second))
	if trend := c.Trend("w"); trend <= 0.2 {
		t.Fatalf("trend = %v, want clearly positive", trend)
	}
	if c.Trend("ghost") != 0 {
		t.Fatal("unknown workload trend should be 0")
	}
}

func TestStatisticsCollectorBounded(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry()
	reg.Workload("w")
	c := NewStatisticsCollector(s, reg, sim.Second)
	c.MaxPerWorkload = 5
	s.Run(sim.Time(30 * sim.Second))
	if len(c.Series("w")) > 5 {
		t.Fatalf("series grew to %d despite cap", len(c.Series("w")))
	}
}
