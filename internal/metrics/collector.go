package metrics

import (
	"fmt"

	"dbwlm/internal/sim"
)

// StatisticsSnapshot is one interval record of the statistics event monitor
// (DB2 WLM's statistics event monitor, Section 4.1.1.C): aggregated counts
// and interval response-time statistics per workload.
type StatisticsSnapshot struct {
	At        sim.Time
	Workload  string
	Completed int64 // completions during the interval
	Rejected  int64
	Killed    int64
	// MeanResponse and P95Response summarize the interval's completions
	// (cumulative histograms snapshotted; intervals are deltas of counts,
	// response stats are cumulative-to-date).
	MeanResponse float64
	P95Response  float64
	Throughput   float64 // completions/second over the interval
}

// String renders the snapshot.
func (s StatisticsSnapshot) String() string {
	return fmt.Sprintf("[%v] %s: done=%d rej=%d killed=%d thr=%.2f/s meanRT=%.4fs",
		s.At, s.Workload, s.Completed, s.Rejected, s.Killed, s.Throughput, s.MeanResponse)
}

// StatisticsCollector periodically snapshots every workload in a registry,
// emitting statistics events and retaining the interval series for trend
// analysis (Teradata manager's "workload trend analysis", Section 4.1.3.C).
type StatisticsCollector struct {
	registry *Registry
	interval sim.Duration
	series   map[string][]StatisticsSnapshot
	// last counts per workload, to compute interval deltas.
	lastCompleted map[string]int64
	lastRejected  map[string]int64
	lastKilled    map[string]int64
	// MaxPerWorkload bounds each series (default 1024).
	MaxPerWorkload int
	stop           func()
}

// NewStatisticsCollector starts collecting every interval on the simulator.
func NewStatisticsCollector(s *sim.Simulator, reg *Registry, interval sim.Duration) *StatisticsCollector {
	if interval <= 0 {
		interval = 10 * sim.Second
	}
	c := &StatisticsCollector{
		registry:      reg,
		interval:      interval,
		series:        make(map[string][]StatisticsSnapshot),
		lastCompleted: make(map[string]int64),
		lastRejected:  make(map[string]int64),
		lastKilled:    make(map[string]int64),
	}
	c.stop = s.Every(interval, func() bool {
		c.collect(s.Now())
		return true
	})
	return c
}

// Stop halts collection.
func (c *StatisticsCollector) Stop() {
	if c.stop != nil {
		c.stop()
	}
}

func (c *StatisticsCollector) collect(now sim.Time) {
	maxN := c.MaxPerWorkload
	if maxN <= 0 {
		maxN = 1024
	}
	for _, name := range c.registry.Names() {
		ws := c.registry.Workload(name)
		done := ws.Completed.Value()
		rej := ws.Rejected.Value()
		killed := ws.Killed.Value()
		snap := StatisticsSnapshot{
			At:           now,
			Workload:     name,
			Completed:    done - c.lastCompleted[name],
			Rejected:     rej - c.lastRejected[name],
			Killed:       killed - c.lastKilled[name],
			MeanResponse: ws.Response.Mean(),
			P95Response:  ws.Response.Percentile(95),
			Throughput:   float64(done-c.lastCompleted[name]) / c.interval.Seconds(),
		}
		c.lastCompleted[name] = done
		c.lastRejected[name] = rej
		c.lastKilled[name] = killed
		series := c.series[name]
		if len(series) >= maxN {
			series = series[1:]
		}
		c.series[name] = append(series, snap)
		c.registry.Events.Record(Event{
			Kind: EventStatistics, At: now, Workload: name,
			What: "interval-statistics", Value: snap.Throughput,
		})
	}
}

// Series returns the retained interval snapshots for a workload.
func (c *StatisticsCollector) Series(workload string) []StatisticsSnapshot {
	return c.series[workload]
}

// Trend reports the relative change in interval throughput between the
// first and second halves of the retained series — positive means the
// workload is speeding up. Returns 0 with fewer than 4 snapshots.
func (c *StatisticsCollector) Trend(workload string) float64 {
	s := c.series[workload]
	if len(s) < 4 {
		return 0
	}
	half := len(s) / 2
	var a, b float64
	for _, snap := range s[:half] {
		a += snap.Throughput
	}
	for _, snap := range s[half:] {
		b += snap.Throughput
	}
	a /= float64(half)
	b /= float64(len(s) - half)
	if a == 0 {
		if b == 0 {
			return 0
		}
		return 1
	}
	return (b - a) / a
}
