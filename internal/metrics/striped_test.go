package metrics

import (
	"math"
	"sync"
	"testing"

	"dbwlm/internal/sim"
)

// TestStripedCounterMergeEqualsReference: concurrent sharded increments merge
// to the exact total.
func TestStripedCounterMergeEqualsReference(t *testing.T) {
	c := NewStripedCounter(8)
	const workers, per = 64, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("merged counter = %d, want %d", got, workers*per)
	}
}

// TestStripedHistogramMergeEqualsUnsharded is the shard-merge property test:
// the same value stream fed to an 8-shard histogram and a 1-shard reference
// must merge to identical bucket-level state — identical count, min, max, and
// every percentile, and the same sum up to floating-point association.
func TestStripedHistogramMergeEqualsUnsharded(t *testing.T) {
	sharded := NewStripedHistogram(8)
	reference := NewStripedHistogram(1)
	rng := sim.NewRNG(7)
	var values []float64
	for i := 0; i < 5000; i++ {
		values = append(values, rng.LogNormal(math.Log(0.05), 1.5))
	}
	for _, v := range values {
		sharded.Record(v)
		reference.Record(v)
	}
	ss, rs := sharded.Snapshot(), reference.Snapshot()
	if ss.Count != rs.Count || ss.Min != rs.Min || ss.Max != rs.Max {
		t.Fatalf("count/min/max diverge: sharded %+v reference %+v", ss, rs)
	}
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
		if sp, rp := percentileOf(sharded, p), percentileOf(reference, p); sp != rp {
			t.Fatalf("p%.0f diverges: sharded %v reference %v", p, sp, rp)
		}
	}
	if diff := math.Abs(ss.Sum - rs.Sum); diff > 1e-9*math.Abs(rs.Sum) {
		t.Fatalf("sum diverges beyond association error: %v vs %v", ss.Sum, rs.Sum)
	}
	if ss.Count != int64(len(values)) {
		t.Fatalf("count = %d, want %d", ss.Count, len(values))
	}
}

func percentileOf(h *StripedHistogram, p float64) float64 {
	m := h.merge()
	return m.percentile(p)
}

// TestStripedHistogramConcurrent: a concurrent feed loses nothing and keeps
// exact count/min/max and associative-tolerant sum.
func TestStripedHistogramConcurrent(t *testing.T) {
	h := NewStripedHistogram(0)
	const workers, per = 32, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(w*per+i+1) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 1e-4 {
		t.Fatalf("min = %v, want 1e-4", s.Min)
	}
	if want := float64(workers*per) * 1e-4; s.Max != want {
		t.Fatalf("max = %v, want %v", s.Max, want)
	}
	n := float64(workers * per)
	exact := 1e-4 * n * (n + 1) / 2
	if diff := math.Abs(s.Sum - exact); diff > 1e-7*exact {
		t.Fatalf("sum = %v, want ~%v", s.Sum, exact)
	}
}

// TestStripedHistogramMergeOnRead reads the merged view (Cumulative, Sum,
// Count — the /metrics exposition path) continuously while writers are still
// recording: each mid-flight merge must be internally consistent (cumulative
// counts monotone, terminal equal to the merged count), and the final merge
// must equal the sum of the per-writer counts exactly. Runs under -race in
// the `make race` target.
func TestStripedHistogramMergeOnRead(t *testing.T) {
	h := NewStripedHistogram(0)
	const writers, per = 16, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var last int64
			count, sum := h.Cumulative(func(upper float64, cum int64) {
				if cum < last {
					t.Errorf("cumulative went backwards: %d after %d at le=%g", cum, last, upper)
				}
				last = cum
			})
			if last > count {
				t.Errorf("last bucket %d exceeds merged count %d", last, count)
			}
			if count > 0 && sum <= 0 {
				t.Errorf("merged count %d with sum %v", count, sum)
			}
		}
	}()
	perWriter := make([]int64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(i%97+1) * 1e-3)
				perWriter[w]++
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	var want int64
	for _, n := range perWriter {
		want += n
	}
	count, sum := h.Cumulative(func(float64, int64) {})
	if count != want {
		t.Fatalf("merged count %d, want sum of per-writer counts %d", count, want)
	}
	if got := h.Count(); got != want {
		t.Fatalf("Count() %d, want %d", got, want)
	}
	if exact := h.Sum(); math.Abs(sum-exact) > 1e-9*exact {
		t.Fatalf("Cumulative sum %v disagrees with Sum() %v", sum, exact)
	}
}

// TestStripedHistogramClamping mirrors Histogram.Record's input policy.
func TestStripedHistogramClamping(t *testing.T) {
	h := NewStripedHistogram(2)
	h.Record(math.NaN())
	h.Record(-5)
	h.Record(1e30)
	s := h.Snapshot()
	if s.Count != 3 || s.Min != 0 || s.Max != 1e18 {
		t.Fatalf("clamping broke: %+v", s)
	}
}

func TestAtomicGauge(t *testing.T) {
	var g AtomicGauge
	if g.Value() != 0 {
		t.Fatal("zero gauge not 0")
	}
	g.Set(1.25)
	if g.Value() != 1.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
}
