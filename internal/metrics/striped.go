package metrics

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// This file is the concurrent half of the monitoring substrate: striped
// counters and histograms whose write path is a single atomic RMW on a
// cache-line-padded shard, so statistics collection never serializes the
// admit/release hot path of the live runtime (internal/rt). Reads merge the
// shards. The merge is not a point-in-time snapshot across shards — each
// shard's contribution is exact at the instant it is read, and all counters
// are monotone, so a merged value is bounded by the true value at the start
// and end of the read. The property test in striped_test.go checks that a
// sharded merge equals an unsharded reference fed the same values.

// stripeShards picks a shard count for this process: the next power of two at
// or above 2×GOMAXPROCS, so that randomly-distributed writers rarely collide
// on a shard even when every P is writing.
func stripeShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return 1 << bits.Len(uint(n-1))
}

// stripeIdx selects a shard for one write. Go does not expose the current P,
// so the next-best allocation-free selector is the runtime's per-thread fast
// random state (math/rand/v2's global functions): writers spread uniformly
// across shards, which bounds the expected collision rate at
// writers/shards per instant.
//
//dbwlm:hotpath
func stripeIdx(mask uint32) uint32 { return rand.Uint32() & mask }

// counterShard is one padded counter cell. The padding keeps two shards from
// sharing a cache line (64B line; 128B guards against adjacent-line
// prefetching).
type counterShard struct {
	v atomic.Int64
	_ [120]byte
}

// StripedCounter is a monotone counter whose Inc/Add path is one atomic add
// on a padded shard. Value merges the shards.
type StripedCounter struct {
	shards []counterShard
	mask   uint32
}

// NewStripedCounter returns a counter with the given shard count (rounded up
// to a power of two; <= 0 selects a size from GOMAXPROCS).
func NewStripedCounter(shards int) *StripedCounter {
	n := normalizeShards(shards)
	return &StripedCounter{shards: make([]counterShard, n), mask: uint32(n - 1)}
}

// Inc adds one.
//
//dbwlm:hotpath
func (c *StripedCounter) Inc() { c.shards[stripeIdx(c.mask)].v.Add(1) }

// Add adds delta (which must be nonnegative; merged reads assume monotony).
//
//dbwlm:hotpath
func (c *StripedCounter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: StripedCounter.Add with negative delta")
	}
	c.shards[stripeIdx(c.mask)].v.Add(delta)
}

// Value merges the shards.
//
//dbwlm:hotpath
func (c *StripedCounter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// AtomicGauge is an instantaneous float64 readable and writable without
// locks — the live runtime's externally-fed load indicators (memory pressure,
// conflict ratio) use it.
type AtomicGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//dbwlm:hotpath
func (g *AtomicGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the current gauge value.
//
//dbwlm:hotpath
func (g *AtomicGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Striped-histogram bucket layout: logarithmic buckets with a fixed growth
// factor, coarser than the sequential Histogram (12% relative error instead
// of 5%) so the whole bucket array fits in ~1KB per shard and can be a fixed
// array updated with plain atomic adds.
const (
	stripedBase    = 1e-6
	stripedGrowth  = 1.25
	stripedBuckets = 128
)

var stripedLogG = math.Log(stripedGrowth)

//dbwlm:hotpath
func stripedBucketIndex(v float64) int {
	if v <= stripedBase {
		return 0
	}
	i := int(math.Log(v/stripedBase)/stripedLogG) + 1
	if i >= stripedBuckets {
		return stripedBuckets - 1
	}
	return i
}

//dbwlm:hotpath
func stripedBucketUpper(i int) float64 {
	if i == 0 {
		return stripedBase
	}
	return stripedBase * math.Pow(stripedGrowth, float64(i))
}

// histShard is one shard of a StripedHistogram. Each field is updated with an
// atomic RMW; sum/min/max use CAS loops on the float bit patterns. Shards are
// large (≫ one cache line), so only bucket arrays of adjacent shards can
// share a boundary line — negligible next to the padding cost of padding
// every bucket.
type histShard struct {
	buckets [stripedBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until first record
	maxBits atomic.Uint64 // -Inf until first record
	_       [64]byte
}

//dbwlm:hotpath
func (s *histShard) record(v float64) {
	s.buckets[stripedBucketIndex(v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := s.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if s.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := s.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if s.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// StripedHistogram records a distribution of nonnegative values (seconds,
// velocities) from many goroutines at once: the write path touches one shard,
// the read path merges all shards into a Snapshot.
type StripedHistogram struct {
	shards []histShard
	mask   uint32
}

// NewStripedHistogram returns a histogram with the given shard count (rounded
// up to a power of two; <= 0 selects a size from GOMAXPROCS).
func NewStripedHistogram(shards int) *StripedHistogram {
	n := normalizeShards(shards)
	h := &StripedHistogram{shards: make([]histShard, n), mask: uint32(n - 1)}
	for i := range h.shards {
		h.shards[i].minBits.Store(math.Float64bits(math.Inf(1)))
		h.shards[i].maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
	return h
}

// Record adds a value. Negative and NaN values are clamped to zero, huge
// values to the last bucket — same policy as Histogram.Record.
//
//dbwlm:hotpath
func (h *StripedHistogram) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	const maxValue = 1e18
	if v > maxValue {
		v = maxValue
	}
	h.shards[stripeIdx(h.mask)].record(v)
}

// merged is the shard-merged state of a striped histogram at read time.
type merged struct {
	buckets  [stripedBuckets]int64
	count    int64
	sum      float64
	min, max float64
}

//dbwlm:hotpath
func (h *StripedHistogram) merge() merged {
	m := merged{min: math.Inf(1), max: math.Inf(-1)}
	for i := range h.shards {
		s := &h.shards[i]
		c := s.count.Load()
		if c == 0 {
			// Idle shard: nothing recorded, so its buckets/sum/min/max are at
			// their zero state and the bucket walk can be skipped — most
			// shards of most histograms in a Snapshot are empty. A Record
			// racing the load is deferred to the next merge, within the
			// merged view's existing cross-field looseness.
			continue
		}
		for b := range s.buckets {
			m.buckets[b] += s.buckets[b].Load()
		}
		m.count += c
		m.sum += math.Float64frombits(s.sumBits.Load())
		if v := math.Float64frombits(s.minBits.Load()); v < m.min {
			m.min = v
		}
		if v := math.Float64frombits(s.maxBits.Load()); v > m.max {
			m.max = v
		}
	}
	return m
}

//dbwlm:hotpath
func (m *merged) percentile(p float64) float64 {
	if m.count == 0 {
		return 0
	}
	if p <= 0 {
		return m.min
	}
	if p >= 100 {
		return m.max
	}
	rank := int64(math.Ceil(p / 100 * float64(m.count)))
	var seen int64
	for i, n := range m.buckets {
		seen += n
		if seen >= rank {
			u := stripedBucketUpper(i)
			if u > m.max {
				u = m.max
			}
			if u < m.min {
				u = m.min
			}
			return u
		}
	}
	return m.max
}

// Count reports the merged number of recorded values.
//
//dbwlm:hotpath
func (h *StripedHistogram) Count() int64 {
	var sum int64
	for i := range h.shards {
		sum += h.shards[i].count.Load()
	}
	return sum
}

// Mean reports the merged arithmetic mean, or 0 when empty.
//
//dbwlm:hotpath
func (h *StripedHistogram) Mean() float64 {
	m := h.merge()
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Sum reports the merged sum of recorded values. Striping randomizes which
// shard each value lands in, so the floating-point association order — and
// with it the last ulp of the result — varies between runs; byte-stable
// consumers (golden tests) must record values whose sums are exact in any
// order.
//
//dbwlm:hotpath
func (h *StripedHistogram) Sum() float64 {
	var sum float64
	for i := range h.shards {
		s := &h.shards[i]
		if s.count.Load() == 0 {
			continue
		}
		sum += math.Float64frombits(s.sumBits.Load())
	}
	return sum
}

// Cumulative walks the merged bucket array for exposition: f is called once
// per non-empty bucket in ascending upper-bound order with the bucket's
// inclusive upper bound and the running cumulative count — the shape of a
// Prometheus histogram's le series. Returns the merged total count and sum
// (the _count and _sum samples).
//
//dbwlm:hotpath
func (h *StripedHistogram) Cumulative(f func(upperBound float64, cumulative int64)) (count int64, sum float64) {
	m := h.merge()
	var cum int64
	for i, n := range m.buckets {
		if n == 0 {
			continue
		}
		cum += n
		//dbwlm:dyncall -- caller-supplied yield: exposition callers (the prom scrape path) run off the hot path; hot callers are audited at their own roots
		f(stripedBucketUpper(i), cum)
	}
	return m.count, m.sum
}

// StripedBuckets is the striped-histogram bucket count, exported for
// consumers that retain merged bucket arrays (internal/slo's epoch ring
// snapshots cumulative bucket state and diffs it on read).
const StripedBuckets = stripedBuckets

// StripedUpper reports the inclusive upper bound of striped bucket i in the
// shared log-bucket layout.
func StripedUpper(i int) float64 { return stripedBucketUpper(i) }

// MergeBuckets merges the shards' bucket arrays into dst (overwriting it)
// and reports the merged count and sum. Like every merged read, each shard's
// contribution is exact at the instant it is read and all counters are
// monotone, so the result is bounded by the true state at the start and end
// of the call.
func (h *StripedHistogram) MergeBuckets(dst *[StripedBuckets]int64) (count int64, sum float64) {
	*dst = [StripedBuckets]int64{}
	for i := range h.shards {
		s := &h.shards[i]
		c := s.count.Load()
		if c == 0 {
			continue
		}
		for b := range s.buckets {
			dst[b] += s.buckets[b].Load()
		}
		count += c
		sum += math.Float64frombits(s.sumBits.Load())
	}
	return count, sum
}

// BucketPercentile reports the p-th percentile upper bound over a raw bucket
// array in the striped layout whose counts total to count. It is the
// percentile walk of Snapshot applied to an externally-diffed bucket array
// (a windowed view has no windowed min/max, so the only clamp is the bucket
// upper bound itself). count <= 0 reports 0.
func BucketPercentile(b *[StripedBuckets]int64, count int64, p float64) float64 {
	if count <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range b {
		seen += n
		if seen >= rank {
			return stripedBucketUpper(i)
		}
	}
	return stripedBucketUpper(StripedBuckets - 1)
}

// Snapshot merges the shards into a reporting summary.
//
//dbwlm:hotpath
func (h *StripedHistogram) Snapshot() Snapshot {
	m := h.merge()
	if m.count == 0 {
		return Snapshot{}
	}
	return Snapshot{
		Count: m.count,
		Mean:  m.sum / float64(m.count),
		Min:   m.min,
		Max:   m.max,
		P50:   m.percentile(50),
		P90:   m.percentile(90),
		P95:   m.percentile(95),
		P99:   m.percentile(99),
		Sum:   m.sum,
	}
}

func normalizeShards(n int) int {
	if n <= 0 {
		return stripeShards()
	}
	return 1 << bits.Len(uint(n-1))
}
