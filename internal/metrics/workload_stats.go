package metrics

import (
	"fmt"
	"sort"

	"dbwlm/internal/sim"
)

// WorkloadStats aggregates the per-workload performance the paper's SLOs are
// written against: response times, execution velocity (ideal time ÷ observed
// time in system, Section 2.1), completion throughput, and control-action
// counts (queued, rejected, killed, suspended, throttled).
type WorkloadStats struct {
	Name string

	Response *Histogram // seconds in system (queue + execution)
	Velocity *Histogram // ideal/actual, in (0, 1]
	Wait     *Histogram // seconds in wait queues

	Completed *Counter
	Rejected  *Counter
	Killed    *Counter
	Resubmits *Counter
	Suspends  *Counter
	Deadlocks *Counter

	Throughput *RateWindow

	firstArrival sim.Time
	lastDone     sim.Time
	haveArrival  bool
}

// NewWorkloadStats returns empty statistics for the named workload.
func NewWorkloadStats(name string) *WorkloadStats {
	return &WorkloadStats{
		Name:       name,
		Response:   NewHistogram(),
		Velocity:   NewHistogram(),
		Wait:       NewHistogram(),
		Completed:  &Counter{},
		Rejected:   &Counter{},
		Killed:     &Counter{},
		Resubmits:  &Counter{},
		Suspends:   &Counter{},
		Deadlocks:  &Counter{},
		Throughput: NewRateWindow(10 * sim.Second),
	}
}

// ObserveArrival notes a request arrival at time t.
func (s *WorkloadStats) ObserveArrival(t sim.Time) {
	if !s.haveArrival || t < s.firstArrival {
		s.firstArrival = t
		s.haveArrival = true
	}
}

// ObserveCompletion records a finished request: its response time, wait time,
// and execution velocity, at completion time t.
func (s *WorkloadStats) ObserveCompletion(t sim.Time, response, wait sim.Duration, velocity float64) {
	s.Response.Record(response.Seconds())
	s.Wait.Record(wait.Seconds())
	s.Velocity.Record(velocity)
	s.Completed.Inc()
	s.Throughput.Observe(t)
	if t > s.lastDone {
		s.lastDone = t
	}
}

// OverallThroughput reports completions per second between the first arrival
// and the last completion (0 if fewer than one completion).
func (s *WorkloadStats) OverallThroughput() float64 {
	if s.Completed.Value() == 0 || !s.haveArrival || s.lastDone <= s.firstArrival {
		return 0
	}
	return float64(s.Completed.Value()) / s.lastDone.Sub(s.firstArrival).Seconds()
}

// MeanVelocity reports the average execution velocity of completed requests.
func (s *WorkloadStats) MeanVelocity() float64 { return s.Velocity.Mean() }

// Registry holds WorkloadStats for every known workload plus a system-wide
// aggregate, and the monitor event recorder.
type Registry struct {
	workloads map[string]*WorkloadStats
	System    *WorkloadStats
	Events    *Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		workloads: make(map[string]*WorkloadStats),
		System:    NewWorkloadStats("system"),
		Events:    NewRecorder(0),
	}
}

// Workload returns (creating on first use) the stats for the named workload.
func (r *Registry) Workload(name string) *WorkloadStats {
	if s, ok := r.workloads[name]; ok {
		return s
	}
	s := NewWorkloadStats(name)
	r.workloads[name] = s
	return s
}

// Names returns all workload names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.workloads))
	for n := range r.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Report renders a per-workload summary table.
func (r *Registry) Report() string {
	out := fmt.Sprintf("%-14s %8s %8s %9s %9s %9s %9s %7s %7s %7s\n",
		"workload", "done", "rej", "thr/s", "meanRT", "p95RT", "meanVel", "killed", "susp", "resub")
	for _, n := range r.Names() {
		s := r.workloads[n]
		out += fmt.Sprintf("%-14s %8d %8d %9.2f %9.4f %9.4f %9.3f %7d %7d %7d\n",
			n, s.Completed.Value(), s.Rejected.Value(), s.OverallThroughput(),
			s.Response.Mean(), s.Response.Percentile(95), s.MeanVelocity(),
			s.Killed.Value(), s.Suspends.Value(), s.Resubmits.Value())
	}
	return out
}
