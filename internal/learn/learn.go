// Package learn provides the small, dependency-free machine-learning
// algorithms the paper's learned techniques rely on: Gaussian naive Bayes and
// decision trees for dynamic workload classification (Elnaffar et al. [19],
// Section 3.1), decision-tree runtime-range prediction (Gupta et al. PQR
// [23], Section 3.2), k-nearest-neighbour plan-similarity prediction
// (Ganapathi et al. [21]), and least-squares linear regression for black-box
// controller models (Powley et al. [65][66]).
package learn

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one labeled training example for classification.
type Sample struct {
	Features []float64
	Label    int
}

// RegSample is one training example for regression.
type RegSample struct {
	Features []float64
	Value    float64
}

// Classifier predicts a class label from features.
type Classifier interface {
	Predict(features []float64) int
}

// ---------- Gaussian naive Bayes ----------

// NaiveBayes is a Gaussian naive Bayes classifier.
type NaiveBayes struct {
	classes int
	dims    int
	prior   []float64
	mean    [][]float64
	vari    [][]float64
}

// TrainNaiveBayes fits class-conditional Gaussians to the samples. It panics
// on empty input or inconsistent feature dimensions.
func TrainNaiveBayes(samples []Sample, classes int) *NaiveBayes {
	if len(samples) == 0 {
		panic("learn: TrainNaiveBayes with no samples")
	}
	dims := len(samples[0].Features)
	nb := &NaiveBayes{
		classes: classes,
		dims:    dims,
		prior:   make([]float64, classes),
		mean:    make2d(classes, dims),
		vari:    make2d(classes, dims),
	}
	counts := make([]float64, classes)
	for _, s := range samples {
		if len(s.Features) != dims {
			panic("learn: inconsistent feature dimensions")
		}
		if s.Label < 0 || s.Label >= classes {
			panic(fmt.Sprintf("learn: label %d out of range", s.Label))
		}
		counts[s.Label]++
		for d, v := range s.Features {
			nb.mean[s.Label][d] += v
		}
	}
	for c := 0; c < classes; c++ {
		nb.prior[c] = (counts[c] + 1) / (float64(len(samples)) + float64(classes))
		if counts[c] > 0 {
			for d := 0; d < dims; d++ {
				nb.mean[c][d] /= counts[c]
			}
		}
	}
	for _, s := range samples {
		for d, v := range s.Features {
			diff := v - nb.mean[s.Label][d]
			nb.vari[s.Label][d] += diff * diff
		}
	}
	for c := 0; c < classes; c++ {
		for d := 0; d < dims; d++ {
			if counts[c] > 1 {
				nb.vari[c][d] /= counts[c]
			}
			if nb.vari[c][d] < 1e-9 {
				nb.vari[c][d] = 1e-9 // variance floor
			}
		}
	}
	return nb
}

// Predict returns the most probable class for features.
func (nb *NaiveBayes) Predict(features []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for c := 0; c < nb.classes; c++ {
		ll := math.Log(nb.prior[c])
		for d := 0; d < nb.dims && d < len(features); d++ {
			v := features[d]
			m, s2 := nb.mean[c][d], nb.vari[c][d]
			ll += -0.5*math.Log(2*math.Pi*s2) - (v-m)*(v-m)/(2*s2)
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

func make2d(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

// ---------- Decision tree (CART, entropy) ----------

// TreeConfig bounds decision-tree growth.
type TreeConfig struct {
	MaxDepth    int // default 8
	MinLeafSize int // default 4
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeafSize <= 0 {
		c.MinLeafSize = 4
	}
	return c
}

type treeNode struct {
	leaf      bool
	label     int
	feature   int
	threshold float64
	left      *treeNode // feature <= threshold
	right     *treeNode
}

// DecisionTree is a binary classification tree split on feature thresholds
// by information gain.
type DecisionTree struct {
	root    *treeNode
	classes int
	nodes   int
}

// Nodes reports the number of nodes in the tree.
func (t *DecisionTree) Nodes() int { return t.nodes }

// TrainDecisionTree grows a tree over the samples.
func TrainDecisionTree(samples []Sample, classes int, cfg TreeConfig) *DecisionTree {
	if len(samples) == 0 {
		panic("learn: TrainDecisionTree with no samples")
	}
	cfg = cfg.withDefaults()
	t := &DecisionTree{classes: classes}
	t.root = t.grow(samples, cfg, 0)
	return t
}

func (t *DecisionTree) grow(samples []Sample, cfg TreeConfig, depth int) *treeNode {
	t.nodes++
	maj := majority(samples, t.classes)
	if depth >= cfg.MaxDepth || len(samples) < 2*cfg.MinLeafSize || pure(samples) {
		return &treeNode{leaf: true, label: maj}
	}
	feat, thr, gain := bestSplit(samples, t.classes)
	if gain <= 1e-12 {
		return &treeNode{leaf: true, label: maj}
	}
	var left, right []Sample
	for _, s := range samples {
		if s.Features[feat] <= thr {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	if len(left) < cfg.MinLeafSize || len(right) < cfg.MinLeafSize {
		return &treeNode{leaf: true, label: maj}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.grow(left, cfg, depth+1),
		right:     t.grow(right, cfg, depth+1),
	}
}

// Predict returns the class for features.
func (t *DecisionTree) Predict(features []float64) int {
	n := t.root
	for !n.leaf {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

func majority(samples []Sample, classes int) int {
	counts := make([]int, classes)
	for _, s := range samples {
		counts[s.Label]++
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best
}

func pure(samples []Sample) bool {
	for _, s := range samples[1:] {
		if s.Label != samples[0].Label {
			return false
		}
	}
	return true
}

func entropy(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	for _, n := range counts {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// bestSplit scans every feature and candidate threshold for the split with
// maximum information gain.
func bestSplit(samples []Sample, classes int) (feat int, thr float64, gain float64) {
	dims := len(samples[0].Features)
	baseCounts := make([]int, classes)
	for _, s := range samples {
		baseCounts[s.Label]++
	}
	baseH := entropy(baseCounts, len(samples))
	bestGain := -1.0
	bestFeat, bestThr := 0, 0.0
	idx := make([]int, len(samples))
	for d := 0; d < dims; d++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return samples[idx[a]].Features[d] < samples[idx[b]].Features[d]
		})
		leftCounts := make([]int, classes)
		rightCounts := append([]int(nil), baseCounts...)
		for i := 0; i < len(idx)-1; i++ {
			s := samples[idx[i]]
			leftCounts[s.Label]++
			rightCounts[s.Label]--
			v, vn := s.Features[d], samples[idx[i+1]].Features[d]
			if v == vn {
				continue
			}
			nl, nr := i+1, len(samples)-i-1
			h := (float64(nl)*entropy(leftCounts, nl) + float64(nr)*entropy(rightCounts, nr)) / float64(len(samples))
			g := baseH - h
			if g > bestGain {
				bestGain, bestFeat, bestThr = g, d, (v+vn)/2
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

// ---------- k-nearest neighbours ----------

// KNN is a k-nearest-neighbour regressor/classifier with per-dimension
// min-max normalization. BuildIndex adds a k-d tree over the samples so
// prediction prunes the scan instead of examining every sample; indexed and
// linear predictions are bit-identical (see kdtree.go).
type KNN struct {
	k       int
	samples []RegSample
	lo, hi  []float64
	tree    *kdTree
}

// TrainKNN stores the samples and fits the normalization ranges.
func TrainKNN(samples []RegSample, k int) *KNN {
	if len(samples) == 0 {
		panic("learn: TrainKNN with no samples")
	}
	if k <= 0 {
		k = 3
	}
	dims := len(samples[0].Features)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	copy(lo, samples[0].Features)
	copy(hi, samples[0].Features)
	for _, s := range samples {
		for d, v := range s.Features {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return &KNN{k: k, samples: samples, lo: lo, hi: hi}
}

//dbwlm:hotpath
func (m *KNN) dist(a, b []float64) float64 {
	var d2 float64
	for d := range a {
		span := m.hi[d] - m.lo[d]
		if span <= 0 {
			continue
		}
		diff := (a[d] - b[d]) / span
		d2 += diff * diff
	}
	return d2
}

// BuildIndex constructs the k-d tree over the trained samples. Predictions
// through the index are identical to the linear scan; only their cost
// changes. Call once after TrainKNN; the model is read-only afterwards and
// safe for concurrent prediction.
func (m *KNN) BuildIndex() { m.tree = buildKD(m) }

// Indexed reports whether the k-d tree has been built.
func (m *KNN) Indexed() bool { return m.tree != nil }

// Len reports the number of training samples.
func (m *KNN) Len() int { return len(m.samples) }

// TrainKNNIndexed trains the model and builds its k-d tree in one step.
func TrainKNNIndexed(samples []RegSample, k int) *KNN {
	m := TrainKNN(samples, k)
	m.BuildIndex()
	return m
}

// PredictValue returns the mean value of the k nearest samples (nearest by
// normalized distance, distance ties broken by sample position). With a
// built index the k-d tree prunes the search and the call performs no heap
// allocation for k <= kMaxNeighbors; otherwise the samples are scanned
// linearly. Both paths return bit-identical results.
//
//dbwlm:hotpath
func (m *KNN) PredictValue(features []float64) float64 {
	if m.tree != nil && m.k <= kMaxNeighbors {
		return m.tree.predict(m, features)
	}
	//dbwlm:nolint hotpath, hotclosure -- exhaustive-scan fallback for oversized k or a treeless model; live models always take the tree path
	return m.PredictValueLinear(features)
}

// Nearest returns the index (into the training set) of the single sample
// nearest to features, under the same weighted metric and (distance,
// sample-index) total order as PredictValue — so distance ties always resolve
// to the earliest sample and the result is deterministic. With a built index
// the k-d tree prunes the search; both paths return the same index. The
// workload compressor uses this to snap cluster centroids back onto real
// trace rows.
//
//dbwlm:hotpath
func (m *KNN) Nearest(features []float64) int {
	var b kbest
	b.init(1)
	if m.tree != nil {
		m.tree.search(m, features, &b)
	} else {
		for i := range m.samples {
			b.add(m.dist(features, m.samples[i].Features), int32(i))
		}
	}
	return int(b.idx[0])
}

// PredictValueLinear is the exhaustive-scan reference implementation; the
// equivalence test pins PredictValue against it.
func (m *KNN) PredictValueLinear(features []float64) float64 {
	if m.k <= kMaxNeighbors {
		var b kbest
		b.init(min(m.k, len(m.samples)))
		for i := range m.samples {
			b.add(m.dist(features, m.samples[i].Features), int32(i))
		}
		return b.mean(m.samples)
	}
	// Large k: full sort under the same (distance, index) order, summed in
	// ascending index order.
	type nd struct {
		d   float64
		idx int32
	}
	nds := make([]nd, 0, len(m.samples))
	for i, s := range m.samples {
		nds = append(nds, nd{m.dist(features, s.Features), int32(i)})
	}
	sort.Slice(nds, func(i, j int) bool { return better(nds[i].d, nds[i].idx, nds[j].d, nds[j].idx) })
	k := min(m.k, len(nds))
	sel := nds[:k]
	sort.Slice(sel, func(i, j int) bool { return sel[i].idx < sel[j].idx })
	var sum float64
	for _, n := range sel {
		sum += m.samples[n.idx].Value
	}
	return sum / float64(k)
}

// ---------- Linear regression ----------

// LinReg is ordinary least squares with an intercept, solved by Gaussian
// elimination on the normal equations (suitable for the few-feature models
// the controllers use).
type LinReg struct {
	coef []float64 // [intercept, w1, ..., wd]
}

// TrainLinReg fits y = b0 + sum(bi * xi). It panics on empty input and
// returns a zero model if the system is singular.
func TrainLinReg(samples []RegSample) *LinReg {
	if len(samples) == 0 {
		panic("learn: TrainLinReg with no samples")
	}
	d := len(samples[0].Features) + 1
	// Normal equations: (X^T X) b = X^T y.
	a := make2d(d, d+1)
	for _, s := range samples {
		x := make([]float64, d)
		x[0] = 1
		copy(x[1:], s.Features)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += x[i] * x[j]
			}
			a[i][d] += x[i] * s.Value
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return &LinReg{coef: make([]float64, d)}
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	coef := make([]float64, d)
	for i := 0; i < d; i++ {
		coef[i] = a[i][d] / a[i][i]
	}
	return &LinReg{coef: coef}
}

// Predict evaluates the fitted model.
func (m *LinReg) Predict(features []float64) float64 {
	y := m.coef[0]
	for i, v := range features {
		if i+1 < len(m.coef) {
			y += m.coef[i+1] * v
		}
	}
	return y
}

// Coefficients returns [intercept, w1, ..., wd].
func (m *LinReg) Coefficients() []float64 { return m.coef }

// Accuracy reports the fraction of samples a classifier labels correctly.
func Accuracy(c Classifier, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	right := 0
	for _, s := range samples {
		if c.Predict(s.Features) == s.Label {
			right++
		}
	}
	return float64(right) / float64(len(samples))
}
