package learn

import (
	"math"
	"sort"
)

// This file replaces KNN.PredictValue's O(n) scan with a k-d tree over the
// normalized feature space. The tree stores sample indices; distances are
// computed with exactly the same weighted metric as the linear scan
// (KNN.dist), neighbours are selected under the same (distance, sample-index)
// total order, and the selected values are summed in the same (ascending
// sample-index) order — so an indexed prediction is bit-for-bit identical to
// the linear one, which the equivalence test pins. The search path performs
// no heap allocation for k <= kMaxNeighbors: the k-best set and the traversal
// live in fixed-size stack arrays.

// kMaxNeighbors bounds the allocation-free k-best set; larger k falls back to
// the (allocating) sort-based linear path.
const kMaxNeighbors = 32

// kdMaxDepth bounds the explicit traversal stack. The tree is median-split
// and therefore balanced: depth is ceil(log2(n))+1, so 64 covers any n that
// fits in memory.
const kdMaxDepth = 64

type kdNode struct {
	idx         int32 // sample index stored at this node (the split point)
	left, right int32 // child node indices, -1 when absent
	split       int16 // split dimension
}

type kdTree struct {
	nodes []kdNode
	root  int32
}

// better reports whether neighbour (d1,i1) ranks before (d2,i2): nearer
// first, distance ties broken by sample position. This total order is what
// makes the k-nearest set unique and both predict paths identical.
//
//dbwlm:hotpath
func better(d1 float64, i1 int32, d2 float64, i2 int32) bool {
	return d1 < d2 || (d1 == d2 && i1 < i2)
}

// kbest is the bounded best-k accumulator. wi tracks the worst element once
// the set is full, so add is O(1) amortized with an O(k) rescan on replace.
type kbest struct {
	k, n int
	wi   int
	d    [kMaxNeighbors]float64
	idx  [kMaxNeighbors]int32
}

//dbwlm:hotpath
func (b *kbest) init(k int) { b.k, b.n, b.wi = k, 0, 0 }

// bound is the pruning radius: the worst kept distance, or +Inf while the set
// is not yet full.
//
//dbwlm:hotpath
func (b *kbest) bound() float64 {
	if b.n < b.k {
		return math.Inf(1)
	}
	return b.d[b.wi]
}

//dbwlm:hotpath
func (b *kbest) findWorst() {
	b.wi = 0
	for i := 1; i < b.n; i++ {
		if better(b.d[b.wi], b.idx[b.wi], b.d[i], b.idx[i]) {
			b.wi = i
		}
	}
}

//dbwlm:hotpath
func (b *kbest) add(d float64, idx int32) {
	if b.n < b.k {
		b.d[b.n], b.idx[b.n] = d, idx
		b.n++
		if b.n == b.k {
			b.findWorst()
		}
		return
	}
	if better(d, idx, b.d[b.wi], b.idx[b.wi]) {
		b.d[b.wi], b.idx[b.wi] = d, idx
		b.findWorst()
	}
}

// mean sums the selected values in ascending sample-index order — a fixed
// float addition order shared by both predict paths — and divides by the
// count.
//
//dbwlm:hotpath
func (b *kbest) mean(samples []RegSample) float64 {
	// Insertion sort by sample index; k is small.
	for i := 1; i < b.n; i++ {
		for j := i; j > 0 && b.idx[j-1] > b.idx[j]; j-- {
			b.idx[j-1], b.idx[j] = b.idx[j], b.idx[j-1]
			b.d[j-1], b.d[j] = b.d[j], b.d[j-1]
		}
	}
	var sum float64
	for i := 0; i < b.n; i++ {
		sum += samples[b.idx[i]].Value
	}
	return sum / float64(b.n)
}

// buildKD constructs the tree over the model's samples: median split on the
// dimension with the largest normalized spread in each subset, subsets sorted
// by (feature value, sample index) so construction is deterministic.
func buildKD(m *KNN) *kdTree {
	n := len(m.samples)
	t := &kdTree{nodes: make([]kdNode, 0, n)}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	t.root = t.build(m, order)
	return t
}

// splitDim picks the dimension with the widest normalized spread over the
// subset; -1 when every dimension is degenerate (identical points in the
// weighted space), in which case any split works and dimension 0 is used.
func splitDim(m *KNN, subset []int32) int {
	dims := len(m.lo)
	bestDim, bestSpread := -1, 0.0
	for d := 0; d < dims; d++ {
		span := m.hi[d] - m.lo[d]
		if span <= 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range subset {
			v := m.samples[i].Features[d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := (hi - lo) / span; spread > bestSpread {
			bestSpread, bestDim = spread, d
		}
	}
	if bestDim < 0 {
		return 0
	}
	return bestDim
}

func (t *kdTree) build(m *KNN, subset []int32) int32 {
	if len(subset) == 0 {
		return -1
	}
	d := splitDim(m, subset)
	sort.Slice(subset, func(a, b int) bool {
		va := m.samples[subset[a]].Features[d]
		vb := m.samples[subset[b]].Features[d]
		return va < vb || (va == vb && subset[a] < subset[b])
	})
	mid := len(subset) / 2
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{idx: subset[mid], split: int16(d)})
	// Children are built after the node is appended; the slice may move, so
	// indices are written through t.nodes[id] afterwards.
	left := t.build(m, subset[:mid])
	right := t.build(m, subset[mid+1:])
	t.nodes[id].left, t.nodes[id].right = left, right
	return id
}

// predict runs the pruned search and averages the selected values.
//
//dbwlm:hotpath
func (t *kdTree) predict(m *KNN, features []float64) float64 {
	var b kbest
	b.init(min(m.k, len(m.samples)))
	t.search(m, features, &b)
	return b.mean(m.samples)
}

// search runs the pruned k-best search: descend to the near side first, visit
// the far side only if the splitting plane is strictly closer than the
// current bound (ties must descend — an equal-distance sample with a smaller
// index can still displace the worst neighbour). The caller initializes b;
// on return it holds the k nearest sample indices under the (distance,
// sample-index) total order.
//
//dbwlm:hotpath
func (t *kdTree) search(m *KNN, features []float64, b *kbest) {
	// Explicit traversal stack: {node, deferred far child, plane distance}.
	type frame struct {
		node int32
	}
	var stack [kdMaxDepth * 2]frame
	var plane [kdMaxDepth * 2]float64 // squared plane distance gating the frame; <0 = unconditional
	top := 0
	push := func(node int32, pd2 float64) {
		if node >= 0 {
			stack[top] = frame{node}
			plane[top] = pd2
			top++
		}
	}
	push(t.root, -1)
	for top > 0 {
		top--
		f := stack[top]
		pd2 := plane[top]
		if pd2 >= 0 && pd2 > b.bound() {
			continue // plane moved out of range since the frame was deferred
		}
		nd := &t.nodes[f.node]
		s := m.samples[nd.idx].Features
		b.add(m.dist(features, s), nd.idx)
		d := int(nd.split)
		span := m.hi[d] - m.lo[d]
		var pd float64
		if span > 0 {
			pd = (features[d] - s[d]) / span
		}
		near, far := nd.left, nd.right
		if pd > 0 {
			near, far = nd.right, nd.left
		}
		// Far side first onto the stack (visited later), gated by the plane
		// distance; near side on top (visited next), unconditional.
		push(far, pd*pd)
		push(near, -1)
	}
}
