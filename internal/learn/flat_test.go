package learn

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"dbwlm/internal/sim"
)

// kmeansReference is a verbatim copy of the slice-of-slices KMeans
// implementation this package shipped before the flat kernels (per-round
// k-means++ distance rescans, sequential assignment). It exists only as the
// bit-equivalence oracle: the flat kernel must reproduce its assignments,
// centroids, and inertia exactly, including the RNG consumption sequence.
func kmeansReference(points [][]float64, k, iters int, rng *sim.RNG) KMeansResult {
	n := len(points)
	if n == 0 || k <= 0 {
		return KMeansResult{}
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 25
	}
	dims := len(points[0])

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points identical to existing centroids: duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if u <= acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia}
}

// normalizeReference is the pre-flat Normalize, kept verbatim as the oracle.
func normalizeReference(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dims := len(points[0])
	lo := append([]float64(nil), points[0]...)
	hi := append([]float64(nil), points[0]...)
	for _, p := range points {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, dims)
		for d, v := range p {
			span := hi[d] - lo[d]
			if span > 0 {
				q[d] = (v - lo[d]) / span
			}
		}
		out[i] = q
	}
	return out
}

// genPoints builds a deterministic point cloud with c planted cluster
// centres, optionally including exact duplicates and a constant dimension.
func genPoints(n, dims, c int, seed uint64, dupEvery int, constDim bool) [][]float64 {
	rng := sim.NewRNG(seed)
	centres := make([][]float64, c)
	for i := range centres {
		centres[i] = make([]float64, dims)
		for d := range centres[i] {
			centres[i][d] = rng.Float64() * 100
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		base := centres[rng.Intn(c)]
		for d := range p {
			p[d] = base[d] + rng.Float64()*3
		}
		if constDim && dims > 1 {
			p[dims-1] = 7.5
		}
		if dupEvery > 0 && i > 0 && i%dupEvery == 0 {
			copy(p, pts[i-1])
		}
		pts[i] = p
	}
	return pts
}

func requireSameResult(t *testing.T, label string, got, want KMeansResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Assignments, want.Assignments) {
		t.Fatalf("%s: assignments differ\n got: %v\nwant: %v", label, got.Assignments, want.Assignments)
	}
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("%s: centroid counts differ: %d vs %d", label, len(got.Centroids), len(want.Centroids))
	}
	for c := range got.Centroids {
		for d := range got.Centroids[c] {
			// Bit-level comparison: Float64bits distinguishes -0 from 0 and
			// catches any reassociated summation.
			if math.Float64bits(got.Centroids[c][d]) != math.Float64bits(want.Centroids[c][d]) {
				t.Fatalf("%s: centroid[%d][%d] = %v, want %v (bit mismatch)",
					label, c, d, got.Centroids[c][d], want.Centroids[c][d])
			}
		}
	}
	if math.Float64bits(got.Inertia) != math.Float64bits(want.Inertia) {
		t.Fatalf("%s: inertia %v, want %v (bit mismatch)", label, got.Inertia, want.Inertia)
	}
}

// TestKMeansFlatMatchesReference pins the tentpole equivalence claim: the
// flat kernel — incremental seeding, parallel assignment and all — is
// bit-for-bit the old implementation, across cluster shapes, duplicate-heavy
// inputs, k ≥ n, and multi-worker GOMAXPROCS.
func TestKMeansFlatMatchesReference(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force real fan-out even on 1-CPU hosts
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		name     string
		n, dims  int
		clusters int
		k, iters int
		dupEvery int
		constDim bool
	}{
		{"small", 40, 3, 4, 4, 25, 0, false},
		{"k-exceeds-n", 5, 4, 2, 9, 10, 0, false},
		{"k-equals-n", 8, 2, 3, 8, 25, 0, false},
		{"duplicate-heavy", 120, 5, 3, 6, 25, 2, false},
		{"constant-dim", 90, 5, 4, 5, 25, 0, true},
		{"single-point", 1, 3, 1, 3, 25, 0, false},
		{"one-cluster", 60, 4, 1, 1, 25, 0, false},
		{"large-parallel", 3000, 5, 6, 12, 30, 7, false},
		{"zero-iters-default", 50, 3, 3, 5, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := genPoints(tc.n, tc.dims, tc.clusters, uint64(tc.n)*31+uint64(tc.k), tc.dupEvery, tc.constDim)
			want := kmeansReference(pts, tc.k, tc.iters, sim.NewRNG(99))
			got := KMeans(pts, tc.k, tc.iters, sim.NewRNG(99))
			requireSameResult(t, "nested-vs-reference", got, want)

			rngA, rngB := sim.NewRNG(99), sim.NewRNG(99)
			flat := packRows(pts, tc.dims)
			fr := KMeansFlat(flat, tc.n, tc.dims, tc.k, tc.iters, rngA)
			_ = kmeansReference(pts, tc.k, tc.iters, rngB)
			if rngA.Uint64() != rngB.Uint64() {
				t.Fatal("flat kernel consumed a different RNG sequence than the reference")
			}
			if fr.K() > 0 && fr.Dims != tc.dims {
				t.Fatalf("flat result stride %d, want %d", fr.Dims, tc.dims)
			}
			if !reflect.DeepEqual(fr.Assignments, want.Assignments) {
				t.Fatalf("flat assignments differ from reference")
			}
		})
	}
}

// TestKMeansParallelMatchesSequential pins parallel-vs-sequential byte
// identity directly: the same input clustered under GOMAXPROCS(1) and
// GOMAXPROCS(4) yields identical bits.
func TestKMeansParallelMatchesSequential(t *testing.T) {
	pts := genPoints(4000, 5, 5, 2024, 0, false)
	flat := packRows(pts, 5)

	prev := runtime.GOMAXPROCS(1)
	seq := KMeansFlat(flat, 4000, 5, 10, 30, sim.NewRNG(7))
	runtime.GOMAXPROCS(4)
	par := KMeansFlat(flat, 4000, 5, 10, 30, sim.NewRNG(7))
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(seq.Assignments, par.Assignments) {
		t.Fatal("parallel assignments differ from sequential")
	}
	for i := range seq.Centroids {
		if math.Float64bits(seq.Centroids[i]) != math.Float64bits(par.Centroids[i]) {
			t.Fatalf("centroid buffer diverges at %d: %v vs %v", i, seq.Centroids[i], par.Centroids[i])
		}
	}
	if math.Float64bits(seq.Inertia) != math.Float64bits(par.Inertia) {
		t.Fatalf("inertia diverges: %v vs %v", seq.Inertia, par.Inertia)
	}
}

// TestKMeansEmptyClusterKeepsCentroid plants a seeding that strands a
// centroid with no members and checks the stranded centre survives
// unchanged, in both APIs.
func TestKMeansEmptyClusterKeepsCentroid(t *testing.T) {
	// Two tight blobs far apart, k=4: at least one centroid ends up empty or
	// duplicated onto a blob; either way every centroid must remain a finite
	// point and the reference must agree.
	pts := genPoints(30, 3, 2, 5, 2, false)
	want := kmeansReference(pts, 4, 25, sim.NewRNG(3))
	got := KMeans(pts, 4, 25, sim.NewRNG(3))
	requireSameResult(t, "empty-cluster", got, want)
	for c, cent := range got.Centroids {
		for d, v := range cent {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("centroid[%d][%d] not finite: %v", c, d, v)
			}
		}
	}
}

// TestKMeansDegenerateInputs covers the guard paths shared by both APIs.
func TestKMeansDegenerateInputs(t *testing.T) {
	if r := KMeans(nil, 3, 10, sim.NewRNG(1)); r.Assignments != nil || r.Centroids != nil || r.Inertia != 0 {
		t.Fatalf("KMeans(nil) = %+v, want zero result", r)
	}
	if r := KMeans([][]float64{{1, 2}}, 0, 10, sim.NewRNG(1)); r.Assignments != nil {
		t.Fatalf("KMeans(k=0) = %+v, want zero result", r)
	}
	if r := KMeansFlat(nil, 0, 3, 2, 10, sim.NewRNG(1)); r.K() != 0 {
		t.Fatalf("KMeansFlat(n=0) K() = %d, want 0", r.K())
	}
	// All-identical points: seeding falls into the duplicate path every
	// round; k still lands and inertia is exactly zero.
	pts := make([][]float64, 6)
	for i := range pts {
		pts[i] = []float64{2, 4, 8}
	}
	want := kmeansReference(pts, 3, 25, sim.NewRNG(11))
	got := KMeans(pts, 3, 25, sim.NewRNG(11))
	requireSameResult(t, "identical-points", got, want)
	if got.Inertia != 0 {
		t.Fatalf("identical points inertia = %v, want 0", got.Inertia)
	}
	if len(got.Centroids) != 3 {
		t.Fatalf("identical points produced %d centroids, want 3", len(got.Centroids))
	}
}

// TestNormalizeFlatMatchesReference pins Normalize's wrapper equivalence,
// including zero-variance dimensions mapping to exactly 0.
func TestNormalizeFlatMatchesReference(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, tc := range []struct {
		name string
		pts  [][]float64
	}{
		{"mixed", genPoints(200, 4, 3, 9, 0, false)},
		{"zero-variance-dim", genPoints(150, 5, 3, 9, 0, true)},
		{"all-constant", [][]float64{{3, 3}, {3, 3}, {3, 3}}},
		{"single-row", [][]float64{{1, 2, 3}}},
		{"large-parallel", genPoints(20000, 5, 4, 13, 0, true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := normalizeReference(tc.pts)
			got := Normalize(tc.pts)
			if len(got) != len(want) {
				t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				for d := range got[i] {
					if math.Float64bits(got[i][d]) != math.Float64bits(want[i][d]) {
						t.Fatalf("row %d dim %d: %v vs %v", i, d, got[i][d], want[i][d])
					}
				}
			}
		})
	}
	if Normalize(nil) != nil {
		t.Fatal("Normalize(nil) should be nil")
	}
	// Zero-variance dimensions map to exactly 0 bits, not just near-zero.
	out := Normalize([][]float64{{5, 1}, {5, 2}, {5, 3}})
	for i := range out {
		if math.Float64bits(out[i][0]) != 0 {
			t.Fatalf("constant dim row %d = %v, want exactly +0", i, out[i][0])
		}
	}
}
