package learn

import (
	"math"
	"testing"

	"dbwlm/internal/sim"
)

// twoBlobs generates two well-separated Gaussian clusters.
func twoBlobs(rng *sim.RNG, n int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		label := i % 2
		cx := float64(label) * 10
		out = append(out, Sample{
			Features: []float64{cx + rng.NormFloat64(), cx + rng.NormFloat64()},
			Label:    label,
		})
	}
	return out
}

func TestNaiveBayesSeparableBlobs(t *testing.T) {
	rng := sim.NewRNG(1)
	train := twoBlobs(rng, 200)
	test := twoBlobs(rng, 100)
	nb := TrainNaiveBayes(train, 2)
	if acc := Accuracy(nb, test); acc < 0.95 {
		t.Fatalf("naive Bayes accuracy = %v, want >= 0.95", acc)
	}
}

func TestNaiveBayesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty training set accepted")
		}
	}()
	TrainNaiveBayes(nil, 2)
}

func TestNaiveBayesBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label accepted")
		}
	}()
	TrainNaiveBayes([]Sample{{Features: []float64{1}, Label: 5}}, 2)
}

func TestDecisionTreeRectangle(t *testing.T) {
	// Axis-aligned conjunction (x > 0.5 AND y > 0.5): requires two splits —
	// not linearly separable in one feature, natural for a tree.
	rng := sim.NewRNG(2)
	var samples []Sample
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		y := rng.Float64()
		label := 0
		if x > 0.5 && y > 0.5 {
			label = 1
		}
		samples = append(samples, Sample{Features: []float64{x, y}, Label: label})
	}
	train, test := samples[:300], samples[300:]
	dt := TrainDecisionTree(train, 2, TreeConfig{MaxDepth: 6, MinLeafSize: 2})
	if acc := Accuracy(dt, test); acc < 0.9 {
		t.Fatalf("decision tree rectangle accuracy = %v, want >= 0.9", acc)
	}
	if dt.Nodes() < 3 {
		t.Fatalf("tree did not split: %d nodes", dt.Nodes())
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Label: 1},
		{Features: []float64{2}, Label: 1},
		{Features: []float64{3}, Label: 1},
	}
	dt := TrainDecisionTree(samples, 2, TreeConfig{})
	if dt.Nodes() != 1 {
		t.Fatalf("pure data should give a single leaf, got %d nodes", dt.Nodes())
	}
	if dt.Predict([]float64{99}) != 1 {
		t.Fatal("leaf label wrong")
	}
}

func TestDecisionTreeDepthBound(t *testing.T) {
	rng := sim.NewRNG(3)
	var samples []Sample
	for i := 0; i < 500; i++ {
		samples = append(samples, Sample{
			Features: []float64{rng.Float64(), rng.Float64()},
			Label:    rng.Intn(2), // pure noise
		})
	}
	dt := TrainDecisionTree(samples, 2, TreeConfig{MaxDepth: 3, MinLeafSize: 10})
	// Depth 3 allows at most 2^4 - 1 = 15 nodes.
	if dt.Nodes() > 15 {
		t.Fatalf("tree exceeded depth bound: %d nodes", dt.Nodes())
	}
}

func TestKNNRegression(t *testing.T) {
	// y = 2x; prediction at midpoints should interpolate.
	var samples []RegSample
	for i := 0; i <= 100; i++ {
		x := float64(i) / 10
		samples = append(samples, RegSample{Features: []float64{x}, Value: 2 * x})
	}
	knn := TrainKNN(samples, 3)
	got := knn.PredictValue([]float64{5.05})
	if math.Abs(got-10.1) > 0.3 {
		t.Fatalf("kNN(5.05) = %v, want ~10.1", got)
	}
}

func TestKNNNormalization(t *testing.T) {
	// One feature with a huge range must not drown a discriminative small one.
	samples := []RegSample{
		{Features: []float64{0, 1e6}, Value: 0},
		{Features: []float64{1, 1e6}, Value: 100},
		{Features: []float64{0, 1.0001e6}, Value: 0},
		{Features: []float64{1, 1.0001e6}, Value: 100},
	}
	knn := TrainKNN(samples, 1)
	if got := knn.PredictValue([]float64{0.9, 1e6}); got != 100 {
		t.Fatalf("normalized kNN = %v, want 100", got)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	knn := TrainKNN([]RegSample{{Features: []float64{1}, Value: 5}}, 10)
	if got := knn.PredictValue([]float64{1}); got != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestLinRegExactFit(t *testing.T) {
	// y = 3 + 2a - b
	var samples []RegSample
	rng := sim.NewRNG(4)
	for i := 0; i < 50; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 5
		samples = append(samples, RegSample{Features: []float64{a, b}, Value: 3 + 2*a - b})
	}
	lr := TrainLinReg(samples)
	coef := lr.Coefficients()
	if math.Abs(coef[0]-3) > 1e-6 || math.Abs(coef[1]-2) > 1e-6 || math.Abs(coef[2]+1) > 1e-6 {
		t.Fatalf("coefficients = %v, want [3 2 -1]", coef)
	}
	if got := lr.Predict([]float64{1, 1}); math.Abs(got-4) > 1e-6 {
		t.Fatalf("predict = %v, want 4", got)
	}
}

func TestLinRegNoisyFit(t *testing.T) {
	rng := sim.NewRNG(5)
	var samples []RegSample
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		samples = append(samples, RegSample{Features: []float64{x}, Value: 5*x + 1 + rng.NormFloat64()*0.5})
	}
	lr := TrainLinReg(samples)
	coef := lr.Coefficients()
	if math.Abs(coef[1]-5) > 0.1 {
		t.Fatalf("slope = %v, want ~5", coef[1])
	}
}

func TestLinRegSingular(t *testing.T) {
	// Constant feature makes X^T X singular (column duplicates intercept).
	samples := []RegSample{
		{Features: []float64{1}, Value: 2},
		{Features: []float64{1}, Value: 4},
	}
	lr := TrainLinReg(samples)
	// Must not panic; prediction is defined (zero model).
	_ = lr.Predict([]float64{1})
}

func TestAccuracyEmpty(t *testing.T) {
	nb := TrainNaiveBayes([]Sample{{Features: []float64{0}, Label: 0}}, 1)
	if Accuracy(nb, nil) != 0 {
		t.Fatal("accuracy of empty test set should be 0")
	}
}
