package learn

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dbwlm/internal/sim"
)

// Flat-buffer clustering kernels. The slice-of-slices KMeans/Normalize API
// dates from when clustering ran once per experiment table; the workload
// compressor runs it once per (class × stratum) group on every compression,
// so the kernels below trade pointer-chasing [][]float64 for a single
// []float64 with a row stride: one allocation per buffer, centroids and
// points contiguous in cache, and the two O(n·k·d) steps — k-means++ seeding
// and Lloyd assignment — parallelized over contiguous point ranges when the
// group is large enough to pay for the goroutines.
//
// Every result is bit-for-bit identical to the nested API's (which is now a
// thin wrapper over these kernels) and to the pre-flat implementation, which
// the reference test in flat_test.go pins:
//
//   - the RNG consumption sequence is unchanged (same Intn/Float64 draws in
//     the same order);
//   - k-means++ seeding maintains the per-point min distance incrementally
//     (O(n·k·d) instead of the old rescan's O(n·k²·d)); min over the same
//     set of exact distances is order-independent, so d2 is unchanged;
//   - the parallel steps only write per-point results (d2[i], assign[i]) —
//     every floating-point *sum* (seeding totals, centroid recomputation,
//     inertia) stays sequential in ascending point order.

// FlatKMeansResult is a clustering outcome over a flat point buffer.
type FlatKMeansResult struct {
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Centroids holds the final cluster centres, row-major with the input's
	// stride: centre c is Centroids[c*Dims : (c+1)*Dims].
	Centroids []float64
	// Dims is the row stride of Centroids.
	Dims int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
}

// K reports the number of centroids.
func (r *FlatKMeansResult) K() int {
	if r.Dims <= 0 {
		return 0
	}
	return len(r.Centroids) / r.Dims
}

// Centroid returns centre c as a subslice of the flat buffer.
func (r *FlatKMeansResult) Centroid(c int) []float64 {
	return r.Centroids[c*r.Dims : (c+1)*r.Dims]
}

// parMinWork is the approximate flop count below which a parallelizable step
// runs sequentially: under it, goroutine handoff costs more than it saves.
const parMinWork = 1 << 15

// parallelFor splits [0, n) into contiguous chunks across GOMAXPROCS-bounded
// workers and runs fn on each. work is the caller's estimate of total flops;
// small jobs and single-proc hosts run inline. fn must only write state owned
// by its own index range — determinism comes from the range partition, not
// from scheduling order.
func parallelFor(n, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || work < parMinWork {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sqDistFlat is the squared Euclidean distance between two stride-length
// rows, accumulated in ascending dimension order (the same order as the
// nested API's kernel, so results are bit-identical).
//
//dbwlm:hotpath
func sqDistFlat(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// nearestCentroidFlat returns the index and squared distance of the centroid
// nearest to p, ties resolved to the lowest centroid index (the `<` scan
// order every k-means path in this package shares).
//
//dbwlm:hotpath
func nearestCentroidFlat(p, cents []float64, dims int) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := 0; c*dims < len(cents); c++ {
		if d := sqDistFlat(p, cents[c*dims:c*dims+dims]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// KMeansFlat clusters n points of dims dimensions stored row-major in data
// (len(data) == n*dims) with Lloyd's algorithm over k-means++ seeding, the
// flat-buffer twin of KMeans. Inputs are used as-is (normalize first when
// dimensions have different scales) and are not modified.
func KMeansFlat(data []float64, n, dims, k, iters int, rng *sim.RNG) FlatKMeansResult {
	if n == 0 || k <= 0 || dims <= 0 {
		return FlatKMeansResult{Dims: dims}
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 25
	}
	row := func(i int) []float64 { return data[i*dims : (i+1)*dims] }

	// k-means++ seeding with incremental min-distance maintenance: d2[i] is
	// the exact squared distance from point i to its nearest centroid so
	// far, updated (in parallel for large groups) as each centre lands.
	cents := make([]float64, 0, k*dims)
	cents = append(cents, row(rng.Intn(n))...)
	d2 := make([]float64, n)
	last := cents[0:dims]
	parallelFor(n, n*dims, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d2[i] = sqDistFlat(row(i), last)
		}
	})
	for len(cents) < k*dims {
		var total float64
		for _, d := range d2 {
			total += d
		}
		if total == 0 {
			// All points identical to existing centroids: duplicate one.
			// The duplicate cannot lower any point's min distance, so d2
			// needs no update.
			cents = append(cents, row(rng.Intn(n))...)
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if u <= acc {
				pick = i
				break
			}
		}
		cents = append(cents, row(pick)...)
		last = cents[len(cents)-dims:]
		parallelFor(n, n*dims, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := sqDistFlat(row(i), last); d < d2[i] {
					d2[i] = d
				}
			}
		})
	}

	// Lloyd iterations: parallel assignment (pure per-point argmin over the
	// shared read-only centroid buffer), sequential centroid recomputation
	// (float sums must keep their order for bit-stable results).
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dims)
	for iter := 0; iter < iters; iter++ {
		var changed atomic.Bool
		parallelFor(n, n*k*dims, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best, _ := nearestCentroidFlat(row(i), cents, dims)
				if assign[i] != best {
					assign[i] = best
					changed.Store(true)
				}
			}
		})
		clear(counts)
		clear(sums)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d, v := range row(i) {
				sums[c*dims+d] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := 0; d < dims; d++ {
				cents[c*dims+d] = sums[c*dims+d] / float64(counts[c])
			}
		}
		if !changed.Load() {
			break
		}
	}

	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sqDistFlat(row(i), cents[assign[i]*dims:assign[i]*dims+dims])
	}
	return FlatKMeansResult{Assignments: assign, Centroids: cents, Dims: dims, Inertia: inertia}
}

// NormalizeFlat min-max scales each dimension of n stride-dims rows into
// [0, 1], returning a new flat buffer (the input is untouched). Dimensions
// with zero spread map to 0, matching Normalize.
func NormalizeFlat(data []float64, n, dims int) []float64 {
	if n == 0 || dims <= 0 {
		return nil
	}
	lo := append([]float64(nil), data[:dims]...)
	hi := append([]float64(nil), data[:dims]...)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			v := data[i*dims+d]
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([]float64, n*dims)
	parallelFor(n, n*dims, func(plo, phi int) {
		for i := plo; i < phi; i++ {
			for d := 0; d < dims; d++ {
				if span := hi[d] - lo[d]; span > 0 {
					out[i*dims+d] = (data[i*dims+d] - lo[d]) / span
				}
			}
		}
	})
	return out
}
