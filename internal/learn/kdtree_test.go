package learn

import "testing"

// lcg is a tiny deterministic generator so the pinned dataset never drifts
// (learn stays dependency-free; no math/rand seeding subtleties).
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(uint64(*g)>>11) / float64(1<<53)
}

// pinnedDataset builds n samples in dims dimensions with deliberate
// pathologies: duplicated points (exact distance ties), a constant dimension
// (zero span, ignored by the metric), and clustered values.
func pinnedDataset(n, dims int, seed uint64) []RegSample {
	g := lcg(seed)
	samples := make([]RegSample, 0, n)
	for i := 0; i < n; i++ {
		f := make([]float64, dims)
		for d := 0; d < dims; d++ {
			switch {
			case d == dims-1:
				f[d] = 7 // constant dimension: span 0, must be ignored
			case i%5 == 4:
				f[d] = samples[i-1].Features[d] // exact duplicate of the previous point
			default:
				f[d] = float64(int(g.next()*20)) / 2 // quantized: many ties
			}
		}
		samples = append(samples, RegSample{Features: f, Value: g.next() * 100})
	}
	return samples
}

// TestKNNIndexedMatchesLinear pins the acceptance criterion: the k-d tree
// predicts bit-identically to the exhaustive scan on a dataset dense with
// distance ties and duplicates, across many query points and several k.
func TestKNNIndexedMatchesLinear(t *testing.T) {
	for _, n := range []int{1, 2, 17, 300, 1500} {
		for _, k := range []int{1, 3, 5, 16} {
			samples := pinnedDataset(n, 5, uint64(n*31+k))
			m := TrainKNNIndexed(samples, k)
			if !m.Indexed() {
				t.Fatal("index not built")
			}
			g := lcg(uint64(n + k))
			for q := 0; q < 200; q++ {
				query := []float64{g.next() * 10, g.next() * 10, g.next() * 10, g.next() * 10, g.next()}
				if q%3 == 0 {
					query = samples[int(g.next()*float64(n))].Features // exact sample hit
				}
				indexed := m.PredictValue(query)
				linear := m.PredictValueLinear(query)
				if indexed != linear {
					t.Fatalf("n=%d k=%d query %d: indexed %v != linear %v", n, k, q, indexed, linear)
				}
			}
		}
	}
}

func TestKNNIndexZeroAllocPredict(t *testing.T) {
	m := TrainKNNIndexed(pinnedDataset(2000, 5, 42), 5)
	query := []float64{1, 2, 3, 4, 7}
	if avg := testing.AllocsPerRun(500, func() {
		_ = m.PredictValue(query)
	}); avg != 0 {
		t.Fatalf("indexed predict allocates %v allocs/op, want 0", avg)
	}
}

func TestKNNLargeKFallsBackConsistently(t *testing.T) {
	samples := pinnedDataset(100, 4, 9)
	a := TrainKNN(samples, kMaxNeighbors+8)
	b := TrainKNNIndexed(samples, kMaxNeighbors+8)
	g := lcg(77)
	for q := 0; q < 50; q++ {
		query := []float64{g.next() * 10, g.next() * 10, g.next() * 10, g.next()}
		if got, want := b.PredictValue(query), a.PredictValue(query); got != want {
			t.Fatalf("large-k fallback diverged: %v != %v", got, want)
		}
	}
}

func benchKNN(b *testing.B, n int, indexed bool) {
	samples := pinnedDataset(n, 5, 1)
	m := TrainKNN(samples, 5)
	if indexed {
		m.BuildIndex()
	}
	g := lcg(2)
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = []float64{g.next() * 10, g.next() * 10, g.next() * 10, g.next() * 10, g.next()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictValue(queries[i&63])
	}
}

// The acceptance criterion requires the indexed search to beat the linear
// scan at n >= 1000 history samples; bench_predict.sh records both.
func BenchmarkKNNLinear1000(b *testing.B)  { benchKNN(b, 1000, false) }
func BenchmarkKNNIndexed1000(b *testing.B) { benchKNN(b, 1000, true) }
func BenchmarkKNNLinear4000(b *testing.B)  { benchKNN(b, 4000, false) }
func BenchmarkKNNIndexed4000(b *testing.B) { benchKNN(b, 4000, true) }

func TestKNNIndexedSpeedupSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sanity check")
	}
	// Not a benchmark, just a guard that the tree actually prunes: count
	// distance evaluations indirectly by comparing wall time would be flaky;
	// instead verify the tree structure covers every sample exactly once.
	samples := pinnedDataset(1234, 5, 3)
	m := TrainKNNIndexed(samples, 5)
	seen := make(map[int32]bool)
	var walk func(i int32)
	walk = func(i int32) {
		if i < 0 {
			return
		}
		nd := m.tree.nodes[i]
		if seen[nd.idx] {
			t.Fatalf("sample %d appears twice in the tree", nd.idx)
		}
		seen[nd.idx] = true
		walk(nd.left)
		walk(nd.right)
	}
	walk(m.tree.root)
	if len(seen) != len(samples) {
		t.Fatalf("tree covers %d of %d samples", len(seen), len(samples))
	}
}

// TestNearestMatchesLinear pins Nearest (single-neighbor index lookup used by
// the trace compressor) to the exhaustive scan, including on datasets dense
// with exact duplicates where the (distance, index) tie-break decides.
func TestNearestMatchesLinear(t *testing.T) {
	for _, n := range []int{1, 2, 17, 300, 1500} {
		samples := pinnedDataset(n, 5, uint64(n*17+1))
		m := TrainKNNIndexed(samples, 3)
		lin := TrainKNN(samples, 3) // no index: Nearest takes the scan path
		g := lcg(uint64(n))
		for q := 0; q < 200; q++ {
			query := []float64{g.next() * 10, g.next() * 10, g.next() * 10, g.next() * 10, g.next()}
			if q%3 == 0 {
				query = samples[int(g.next()*float64(n))].Features
			}
			if a, b := m.Nearest(query), lin.Nearest(query); a != b {
				t.Fatalf("n=%d query %d: indexed nearest %d != linear %d", n, q, a, b)
			}
		}
	}
}
