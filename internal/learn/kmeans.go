package learn

import (
	"dbwlm/internal/sim"
)

// KMeansResult holds a clustering outcome.
type KMeansResult struct {
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
}

// KMeans clusters points with Lloyd's algorithm, seeded deterministically by
// k-means++ over the provided RNG. Inputs are used as-is (normalize first if
// dimensions have different scales). Used by the clustering workload
// analyzer to discover query groups in a log the way Teradata Workload
// Analyzer's candidate-workload mining does.
//
// This is a thin adapter over KMeansFlat: it packs the rows into one flat
// buffer, runs the cache-friendly kernel, and exposes the centroids as
// subslices of the flat result. Outputs are bit-identical to the historical
// slice-of-slices implementation (pinned by TestKMeansFlatMatchesReference).
func KMeans(points [][]float64, k, iters int, rng *sim.RNG) KMeansResult {
	n := len(points)
	if n == 0 || k <= 0 {
		return KMeansResult{}
	}
	dims := len(points[0])
	flat := packRows(points, dims)
	km := KMeansFlat(flat, n, dims, k, iters, rng)
	cents := make([][]float64, km.K())
	for c := range cents {
		cents[c] = km.Centroid(c)
	}
	return KMeansResult{Assignments: km.Assignments, Centroids: cents, Inertia: km.Inertia}
}

func sqDist(a, b []float64) float64 {
	return sqDistFlat(a, b)
}

// Normalize min-max scales each dimension of points into [0, 1] in place
// copies (the originals are untouched) and returns the scaled set. Thin
// adapter over NormalizeFlat; rows of the result alias one flat buffer.
func Normalize(points [][]float64) [][]float64 {
	n := len(points)
	if n == 0 {
		return nil
	}
	dims := len(points[0])
	flat := NormalizeFlat(packRows(points, dims), n, dims)
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*dims : (i+1)*dims]
	}
	return out
}

// packRows copies n slice-of-slices rows into a single row-major buffer.
func packRows(points [][]float64, dims int) []float64 {
	flat := make([]float64, len(points)*dims)
	for i, p := range points {
		copy(flat[i*dims:(i+1)*dims], p)
	}
	return flat
}
