package learn

import (
	"math"

	"dbwlm/internal/sim"
)

// KMeansResult holds a clustering outcome.
type KMeansResult struct {
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
}

// KMeans clusters points with Lloyd's algorithm, seeded deterministically by
// k-means++ over the provided RNG. Inputs are used as-is (normalize first if
// dimensions have different scales). Used by the clustering workload
// analyzer to discover query groups in a log the way Teradata Workload
// Analyzer's candidate-workload mining does.
func KMeans(points [][]float64, k, iters int, rng *sim.RNG) KMeansResult {
	n := len(points)
	if n == 0 || k <= 0 {
		return KMeansResult{}
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 25
	}
	dims := len(points[0])

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points identical to existing centroids: duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if u <= acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Normalize min-max scales each dimension of points into [0, 1] in place
// copies (the originals are untouched) and returns the scaled set.
func Normalize(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dims := len(points[0])
	lo := append([]float64(nil), points[0]...)
	hi := append([]float64(nil), points[0]...)
	for _, p := range points {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, dims)
		for d, v := range p {
			span := hi[d] - lo[d]
			if span > 0 {
				q[d] = (v - lo[d]) / span
			}
		}
		out[i] = q
	}
	return out
}
