package learn

import (
	"testing"

	"dbwlm/internal/sim"
)

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := sim.NewRNG(1)
	var points [][]float64
	// Three well-separated blobs.
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for i := 0; i < 150; i++ {
		c := centres[i%3]
		points = append(points, []float64{
			c[0] + rng.NormFloat64()*0.3,
			c[1] + rng.NormFloat64()*0.3,
		})
	}
	res := KMeans(points, 3, 50, rng.Fork(2))
	if len(res.Assignments) != 150 || len(res.Centroids) != 3 {
		t.Fatalf("result shape: %d assignments, %d centroids", len(res.Assignments), len(res.Centroids))
	}
	// Points from the same blob share a cluster; different blobs differ.
	for i := 3; i < 150; i++ {
		if res.Assignments[i] != res.Assignments[i%3] {
			t.Fatalf("blob member %d assigned %d, blob root assigned %d",
				i, res.Assignments[i], res.Assignments[i%3])
		}
	}
	if res.Assignments[0] == res.Assignments[1] || res.Assignments[1] == res.Assignments[2] {
		t.Fatal("distinct blobs merged")
	}
	// Tight blobs: inertia far below the single-cluster inertia.
	one := KMeans(points, 1, 50, rng.Fork(3))
	if res.Inertia > one.Inertia/10 {
		t.Fatalf("inertia %v not much below k=1 inertia %v", res.Inertia, one.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng1 := sim.NewRNG(7)
	rng2 := sim.NewRNG(7)
	points := [][]float64{{1}, {2}, {10}, {11}, {20}, {21}}
	a := KMeans(points, 3, 20, rng1)
	b := KMeans(points, 3, 20, rng2)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := sim.NewRNG(9)
	if res := KMeans(nil, 3, 10, rng); len(res.Assignments) != 0 {
		t.Fatal("empty input")
	}
	if res := KMeans([][]float64{{1}, {2}}, 0, 10, rng); len(res.Assignments) != 0 {
		t.Fatal("k=0")
	}
	// k > n clamps.
	res := KMeans([][]float64{{1}, {2}}, 5, 10, rng)
	if len(res.Centroids) != 2 {
		t.Fatalf("k clamp: %d centroids", len(res.Centroids))
	}
	// Identical points do not loop forever.
	res = KMeans([][]float64{{3}, {3}, {3}}, 2, 10, rng)
	if len(res.Assignments) != 3 {
		t.Fatal("identical points")
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

func TestNormalize(t *testing.T) {
	points := [][]float64{{0, 100}, {10, 200}, {5, 150}}
	norm := Normalize(points)
	if norm[0][0] != 0 || norm[1][0] != 1 || norm[2][0] != 0.5 {
		t.Fatalf("dim 0 normalized wrong: %v", norm)
	}
	if norm[0][1] != 0 || norm[1][1] != 1 {
		t.Fatalf("dim 1 normalized wrong: %v", norm)
	}
	// Original untouched.
	if points[0][0] != 0 || points[1][1] != 200 {
		t.Fatal("originals mutated")
	}
	// Constant dimension maps to 0.
	norm = Normalize([][]float64{{5, 1}, {5, 2}})
	if norm[0][0] != 0 || norm[1][0] != 0 {
		t.Fatal("constant dim should be 0")
	}
	if Normalize(nil) != nil {
		t.Fatal("nil input")
	}
}
