// Package rthttp serves the live workload-management runtime over HTTP: the
// admission-control layer of the taxonomy as a daemon API. cmd/wlmd wraps it
// with a class table and flags; examples/wlmd drives it end to end.
package rthttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dbwlm/internal/admission"
	"dbwlm/internal/policy"
	"dbwlm/internal/rt"
)

// Server is the wlmd HTTP front-end over a live runtime. Clients call
// POST /admit before running work against the database and POST /done after;
// the admission verdict — and any queueing — happens here, in front of the
// engine, exactly as the taxonomy's admission-control layer prescribes.
type Server struct {
	rt      *rt.Runtime
	predict *rt.PredictGate
	mux     *http.ServeMux

	// statsBuf recycles snapshot scratch buffers across /stats requests so
	// the monitoring read does not allocate a fresh per-class slice each poll.
	statsBuf sync.Pool
}

// NewServer wires the endpoints over a runtime.
func NewServer(r *rt.Runtime) *Server {
	s := &Server{rt: r, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /admit", s.handleAdmit)
	s.mux.HandleFunc("POST /done", s.handleDone)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /policy", s.handlePolicyGet)
	s.mux.HandleFunc("POST /policy", s.handlePolicySet)
	s.mux.HandleFunc("POST /load", s.handleLoad)
	return s
}

// EnablePredict attaches a prediction gate: /admit accepts a raw `sql` form
// field (fingerprinted, planned, and runtime-predicted before admission) and
// /done with the same `sql` feeds the observed service time back into the
// model. Call before serving traffic.
func (s *Server) EnablePredict(g *rt.PredictGate) { s.predict = g }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AdmitResponse is the /admit reply. Token is present only when admitted and
// must be returned verbatim to /done. The prediction fields are populated
// only on the raw-SQL path of a predict-enabled server.
type AdmitResponse struct {
	Verdict string `json:"verdict"`
	Token   string `json:"token,omitempty"`

	Cost             float64 `json:"cost,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	PredictedBucket  string  `json:"predicted_bucket,omitempty"`
	Modeled          bool    `json:"modeled,omitempty"`
	CacheHit         bool    `json:"cache_hit,omitempty"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	class, ok := s.rt.Class(r.FormValue("class"))
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown class %q", r.FormValue("class"))
		return
	}
	var (
		g    rt.Grant
		resp AdmitResponse
	)
	if sql := r.FormValue("sql"); sql != "" && s.predict != nil {
		// Wire-speed path: the statement itself is the cost estimate.
		grant, pred, err := s.predict.AdmitSQL(class, sql)
		if err != nil {
			httpError(w, http.StatusBadRequest, "sql: %v", err)
			return
		}
		g = grant
		resp.Cost = pred.Timerons
		resp.Modeled = pred.Modeled
		resp.CacheHit = pred.CacheHit
		if pred.Modeled {
			resp.PredictedSeconds = pred.Seconds
			resp.PredictedBucket = pred.Bucket.String()
		}
	} else {
		cost := 0.0
		if v := r.FormValue("cost"); v != "" {
			var err error
			if cost, err = strconv.ParseFloat(v, 64); err != nil {
				httpError(w, http.StatusBadRequest, "bad cost %q", v)
				return
			}
		}
		// Admit blocks while the request is queued; the client's HTTP request
		// parks with it, which is the wait queue made visible to the client.
		g = s.rt.Admit(class, cost)
	}
	resp.Verdict = g.Verdict().String()
	resp.Token = g.Token()
	status := http.StatusOK
	if !g.Admitted() {
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	g, err := s.rt.ParseToken(r.FormValue("token"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ideal := 0.0
	if v := r.FormValue("ideal"); v != "" {
		if ideal, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad ideal %q", v)
			return
		}
	}
	if sql := r.FormValue("sql"); sql != "" && s.predict != nil {
		// Stateless feedback: the client echoes the statement and the server
		// re-resolves its features through the plan cache (a guaranteed hit
		// for anything recently admitted), then trains on the elapsed time.
		elapsed := s.rt.ElapsedSeconds(g)
		s.rt.Done(g, ideal)
		s.predict.Observe(sql, elapsed)
	} else {
		s.rt.Done(g, ideal)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

// StatsResponse is the /stats reply: the merged-shard monitoring view.
// Predict is present only on a predict-enabled server.
type StatsResponse struct {
	InEngine        int              `json:"in_engine"`
	LowPriorityGate bool             `json:"low_priority_gate"`
	Classes         []rt.ClassStats  `json:"classes"`
	Predict         *rt.PredictStats `json:"predict,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	buf, _ := s.statsBuf.Get().([]rt.ClassStats)
	classes := s.rt.SnapshotInto(buf)
	resp := StatsResponse{
		InEngine:        s.rt.InEngine(),
		LowPriorityGate: s.rt.LowPriorityGate(),
		Classes:         classes,
	}
	if s.predict != nil {
		st := s.predict.Stats()
		resp.Predict = &st
	}
	writeJSON(w, http.StatusOK, resp)
	s.statsBuf.Put(classes[:0])
}

func (s *Server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.rt.Policy())
}

func (s *Server) handlePolicySet(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	p, err := policy.ParseRuntimePolicy(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.rt.ApplyPolicy(p); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.rt.Policy())
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	mem, err1 := formFloat(r, "mem")
	conflict, err2 := formFloat(r, "conflict")
	cpu, err3 := formFloat(r, "cpu")
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.rt.SetLoad(mem, conflict, cpu)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func formFloat(r *http.Request, key string) (float64, error) {
	v := r.FormValue(key)
	if v == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, v)
	}
	return f, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RunIndicatorLoop runs the indicator controller (Zhang et al.) against the
// runtime's View every interval: when the composite load indicators say the
// engine is congested, the low-priority gate closes; new low-priority work
// queues until the indicators clear. Returns a stop function.
func RunIndicatorLoop(r *rt.Runtime, interval time.Duration) (stop func()) {
	ind := &admission.Indicators{Engine: r}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.SetLowPriorityGate(ind.Congested())
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
