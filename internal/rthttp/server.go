// Package rthttp serves the live workload-management runtime over HTTP: the
// admission-control layer of the taxonomy as a daemon API. cmd/wlmd wraps it
// with a class table and flags; examples/wlmd drives it end to end.
package rthttp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dbwlm/internal/admission"
	"dbwlm/internal/autonomic"
	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
	"dbwlm/internal/rt"
	"dbwlm/internal/sim"
	"dbwlm/internal/slo"
	"dbwlm/internal/wire"
)

// Server is the wlmd HTTP front-end over a live runtime. Clients call
// POST /admit before running work against the database and POST /done after;
// the admission verdict — and any queueing — happens here, in front of the
// engine, exactly as the taxonomy's admission-control layer prescribes.
// GET /metrics exposes the striped statistics in Prometheus text format and
// GET /trace drains the flight recorder. Every response — including 400/404/
// 405 errors — is JSON with Content-Type set, except the Prometheus page.
type Server struct {
	rt      *rt.Runtime
	predict *rt.PredictGate
	mux     *http.ServeMux

	// dispatch executes /batch frames — the same transport-independent
	// dispatcher the TCP wire listener runs, so both paths produce identical
	// verdicts and recorder events for one op stream.
	dispatch wire.Dispatcher

	// statsBuf recycles snapshot scratch buffers across /stats requests so
	// the monitoring read does not allocate a fresh per-class slice each poll.
	statsBuf sync.Pool
	// respPool recycles the hand-built JSON reply buffers of the single-op
	// hot endpoints (/admit, /done), keeping their per-request response cost
	// to a pool round-trip instead of an encoder allocation.
	respPool sync.Pool
	// batchPool recycles /batch scratch (body, decoded ops, results, encoded
	// response) across requests.
	batchPool sync.Pool
}

// NewServer wires the endpoints over a runtime.
func NewServer(r *rt.Runtime) *Server {
	s := &Server{rt: r, mux: http.NewServeMux()}
	s.dispatch.RT = r
	s.handle("/admit", methods{http.MethodPost: s.handleAdmit})
	s.handle("/done", methods{http.MethodPost: s.handleDone})
	s.handle("/batch", methods{http.MethodPost: s.handleBatch})
	s.handle("/stats", methods{http.MethodGet: s.handleStats})
	s.handle("/trace", methods{http.MethodGet: s.handleTrace})
	s.handle("/slo", methods{http.MethodGet: s.handleSLO})
	s.handle("/metrics", methods{http.MethodGet: s.handleMetrics})
	s.handle("/policy", methods{
		http.MethodGet:  s.handlePolicyGet,
		http.MethodPost: s.handlePolicySet,
	})
	s.handle("/load", methods{http.MethodPost: s.handleLoad})
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
	})
	return s
}

// methods maps HTTP methods to their handler for one path.
type methods map[string]http.HandlerFunc

// handle registers a path with per-method dispatch: an unsupported method
// gets a 405 JSON body plus the Allow header, instead of the mux's implicit
// plain-text reply.
func (s *Server) handle(path string, m methods) {
	allowed := make([]string, 0, len(m))
	for method := range m {
		allowed = append(allowed, method)
	}
	// Deterministic Allow header (map order is random).
	for i := 1; i < len(allowed); i++ {
		for j := i; j > 0 && allowed[j] < allowed[j-1]; j-- {
			allowed[j], allowed[j-1] = allowed[j-1], allowed[j]
		}
	}
	allow := strings.Join(allowed, ", ")
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		h, ok := m[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			httpError(w, http.StatusMethodNotAllowed,
				"method %s not allowed on %s (allow: %s)", r.Method, path, allow)
			return
		}
		h(w, r)
	})
}

// EnablePredict attaches a prediction gate: /admit accepts a raw `sql` form
// field (fingerprinted, planned, and runtime-predicted before admission) and
// /done with the same `sql` feeds the observed service time back into the
// model. Call before serving traffic.
func (s *Server) EnablePredict(g *rt.PredictGate) {
	s.predict = g
	s.dispatch.Predict = g
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/ on the
// server's own mux (the wlmd -pprof flag), so profiling needs no second
// listener and stays off unless asked for.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AdmitResponse is the /admit reply. Token is present only when admitted and
// must be returned verbatim to /done. The prediction fields are populated
// only on the raw-SQL path of a predict-enabled server.
type AdmitResponse struct {
	Verdict string `json:"verdict"`
	Token   string `json:"token,omitempty"`

	Cost             float64 `json:"cost,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	PredictedBucket  string  `json:"predicted_bucket,omitempty"`
	Modeled          bool    `json:"modeled,omitempty"`
	CacheHit         bool    `json:"cache_hit,omitempty"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	class, ok := s.rt.Class(r.FormValue("class"))
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown class %q", r.FormValue("class"))
		return
	}
	var (
		g    rt.Grant
		resp AdmitResponse
	)
	if sql := r.FormValue("sql"); sql != "" && s.predict != nil {
		// Wire-speed path: the statement itself is the cost estimate.
		grant, pred, err := s.predict.AdmitSQL(class, sql)
		if err != nil {
			httpError(w, http.StatusBadRequest, "sql: %v", err)
			return
		}
		g = grant
		resp.Cost = pred.Timerons
		resp.Modeled = pred.Modeled
		resp.CacheHit = pred.CacheHit
		if pred.Modeled {
			resp.PredictedSeconds = pred.Seconds
			resp.PredictedBucket = pred.Bucket.String()
		}
	} else {
		cost := 0.0
		if v := r.FormValue("cost"); v != "" {
			var err error
			if cost, err = strconv.ParseFloat(v, 64); err != nil {
				httpError(w, http.StatusBadRequest, "bad cost %q", v)
				return
			}
		}
		// Admit blocks while the request is queued; the client's HTTP request
		// parks with it, which is the wait queue made visible to the client.
		g = s.rt.Admit(class, cost)
	}
	resp.Verdict = g.Verdict().String()
	resp.Token = g.Token()
	status := http.StatusOK
	if !g.Admitted() {
		status = http.StatusTooManyRequests
	}
	s.writeAdmit(w, status, &resp)
}

// writeAdmit renders an AdmitResponse through a pooled scratch buffer —
// byte-identical in shape to what encoding/json produces for the struct
// (same fields, same omitempty rules) without the per-request encoder state.
// The hot verdict strings and tokens are plain ASCII, so appendJSONString's
// fast path runs a single copy.
func (s *Server) writeAdmit(w http.ResponseWriter, status int, resp *AdmitResponse) {
	bp, _ := s.respPool.Get().(*[]byte)
	if bp == nil {
		b := make([]byte, 0, 256)
		bp = &b
	}
	b := (*bp)[:0]
	b = append(b, `{"verdict":`...)
	b = appendJSONString(b, resp.Verdict)
	if resp.Token != "" {
		b = append(b, `,"token":`...)
		b = appendJSONString(b, resp.Token)
	}
	if resp.Cost != 0 {
		b = append(b, `,"cost":`...)
		b = appendJSONFloat(b, resp.Cost)
	}
	if resp.PredictedSeconds != 0 {
		b = append(b, `,"predicted_seconds":`...)
		b = appendJSONFloat(b, resp.PredictedSeconds)
	}
	if resp.PredictedBucket != "" {
		b = append(b, `,"predicted_bucket":`...)
		b = appendJSONString(b, resp.PredictedBucket)
	}
	if resp.Modeled {
		b = append(b, `,"modeled":true`...)
	}
	if resp.CacheHit {
		b = append(b, `,"cache_hit":true`...)
	}
	b = append(b, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	*bp = b
	s.respPool.Put(bp)
}

// appendJSONString appends s as a JSON string literal. The fast path — every
// string this server emits on its hot endpoints — is ASCII with nothing to
// escape; anything else falls back to the stdlib encoder's rules via
// strconv.AppendQuote, which escapes quotes, backslashes, and controls.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat appends v using encoding/json's format selection: fixed
// notation inside the range JSON numbers read naturally, exponent outside it
// (with the stdlib's e-07 -> e-7 exponent cleanup, so output stays
// byte-identical to json.Marshal).
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	f := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		f = 'e'
	}
	b = strconv.AppendFloat(b, v, f, -1, 64)
	if f == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	g, err := s.rt.ParseToken(r.FormValue("token"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ideal := 0.0
	if v := r.FormValue("ideal"); v != "" {
		if ideal, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad ideal %q", v)
			return
		}
	}
	if sql := r.FormValue("sql"); sql != "" && s.predict != nil {
		// Stateless feedback: the client echoes the statement and the server
		// re-resolves its features through the plan cache (a guaranteed hit
		// for anything recently admitted), then trains on the elapsed time.
		elapsed := s.rt.ElapsedSeconds(g)
		s.rt.Done(g, ideal)
		s.predict.Observe(sql, elapsed)
	} else {
		s.rt.Done(g, ideal)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(releasedJSON)
}

// releasedJSON is the constant /done success body; the hot release path never
// builds it per request.
var releasedJSON = []byte("{\"status\":\"released\"}\n")

// batchState is one /batch request's reusable scratch: request body, decoded
// ops, dispatch results, and the encoded response payload.
type batchState struct {
	body []byte
	req  wire.BatchReq
	res  []wire.Result
	out  []byte
}

// handleBatch serves the binary batched admission protocol over HTTP: the
// request body is one wire request payload (no length prefix — HTTP frames
// the body), the response body one wire response payload. It shares the
// dispatcher with the TCP listener, so a batch admits, releases, and records
// exactly as it would on the raw socket; HTTP supplies framing, routing, and
// middleware at the cost of per-request header overhead (bench_wire.sh
// measures that gap).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	st, _ := s.batchPool.Get().(*batchState)
	if st == nil {
		st = &batchState{}
	}
	defer s.batchPool.Put(st)
	if r.ContentLength > wire.MaxFrame {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch body %d exceeds %d", r.ContentLength, wire.MaxFrame)
		return
	}
	var err error
	st.body, err = readBody(st.body[:0], http.MaxBytesReader(w, r.Body, wire.MaxFrame))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := wire.DecodeRequest(st.body, &st.req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st.res = s.dispatch.Dispatch(st.req.Ops, st.res)
	out, err := wire.EncodeResponse(st.out, st.res[:len(st.req.Ops)])
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if cap(out) > cap(st.out) {
		st.out = out
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// readBody reads r to EOF into buf, reusing its capacity (io.ReadAll always
// allocates; the batch path must not once warm).
func readBody(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// StatsResponse is the /stats reply: the merged-shard monitoring view.
// Predict is present only on a predict-enabled server.
type StatsResponse struct {
	InEngine        int  `json:"in_engine"`
	LowPriorityGate bool `json:"low_priority_gate"`
	// NumCPU and GOMAXPROCS describe the host the daemon runs on, so every
	// scrape — and every benchmark built on one — carries its own hardware
	// provenance (a GOMAXPROCS=8 run on a single-CPU box measures scheduling
	// overhead, not parallel speedup; the stats say which one you got).
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Classes    []rt.ClassStats  `json:"classes"`
	Predict    *rt.PredictStats `json:"predict,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	buf, _ := s.statsBuf.Get().([]rt.ClassStats)
	classes := s.rt.SnapshotInto(buf)
	resp := StatsResponse{
		InEngine:        s.rt.InEngine(),
		LowPriorityGate: s.rt.LowPriorityGate(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Classes:         classes,
	}
	if s.predict != nil {
		st := s.predict.Stats()
		resp.Predict = &st
	}
	writeJSON(w, http.StatusOK, resp)
	s.statsBuf.Put(classes[:0])
}

// TraceEvent is one flight-recorder event rendered for the /trace reply.
type TraceEvent struct {
	AtSeconds   float64 `json:"at_seconds"`
	Kind        string  `json:"kind"`
	Reason      string  `json:"reason,omitempty"`
	Class       string  `json:"class,omitempty"`
	Verdict     string  `json:"verdict,omitempty"`
	QID         int64   `json:"qid,omitempty"`
	Fingerprint string  `json:"fp,omitempty"`
	Value       float64 `json:"value"`
	Aux         float64 `json:"aux,omitempty"`
}

// TraceResponse is the /trace reply: ring accounting plus the drained tail,
// oldest first.
type TraceResponse struct {
	Recorded    uint64       `json:"recorded"`
	Overwritten uint64       `json:"overwritten"`
	Capacity    int          `json:"capacity"`
	Events      []TraceEvent `json:"events"`
}

// handleTrace drains the flight recorder: GET /trace?n=&class=&verdict=&
// kind=&qid=&since=. n defaults to 100 (n=0 returns every retained match);
// since is a Go duration ("30s", "5m") keeping only events newer than that
// on the runtime clock.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.rt.Recorder()
	if rec == nil {
		httpError(w, http.StatusNotFound, "flight recorder disabled (start wlmd with -trace)")
		return
	}
	n := 100
	if v := r.FormValue("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = parsed
	}
	f := obsv.MatchAll
	if v := r.FormValue("class"); v != "" {
		id, ok := s.rt.Class(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown class %q", v)
			return
		}
		f.Class = int32(id)
	}
	if v := r.FormValue("verdict"); v != "" {
		verdict, ok := rt.VerdictFromName(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown verdict %q", v)
			return
		}
		f.Verdict = int16(verdict)
	}
	if v := r.FormValue("kind"); v != "" {
		kind, ok := obsv.KindFromName(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown kind %q", v)
			return
		}
		f.Kind = kind
	}
	if v := r.FormValue("qid"); v != "" {
		qid, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad qid %q", v)
			return
		}
		f.QID = qid
	}
	if v := r.FormValue("since"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad since %q (want a duration like 30s)", v)
			return
		}
		if minAt := s.rt.NowNanos() - d.Nanoseconds(); minAt > 0 {
			f.MinAt = minAt
		}
	}
	events := rec.Tail(n, f)
	resp := TraceResponse{
		Recorded:    rec.Recorded(),
		Overwritten: rec.Overwritten(),
		Capacity:    rec.Cap(),
		Events:      make([]TraceEvent, len(events)),
	}
	for i, e := range events {
		te := TraceEvent{
			AtSeconds: float64(e.At) / 1e9,
			Kind:      e.Kind.String(),
			Reason:    e.Reason.String(),
			QID:       e.QID,
			Value:     e.Value,
			Aux:       e.Aux,
		}
		if e.Class != obsv.NoClass {
			te.Class = s.rt.ClassName(rt.ClassID(e.Class))
		}
		if e.Verdict != obsv.NoVerdict {
			te.Verdict = rt.Verdict(e.Verdict).String()
		}
		if e.FP != 0 {
			te.Fingerprint = fmt.Sprintf("%016x", e.FP)
		}
		resp.Events[i] = te
	}
	writeJSON(w, http.StatusOK, resp)
}

// SLOResponse is the /slo reply: every class's objective, windowed burn
// rates, and error-budget state at the runtime clock's now.
type SLOResponse struct {
	NowSeconds float64 `json:"now_seconds"`
	// EpochSeconds is the window-quantization grain: windowed numbers cover
	// their nominal span rounded up by less than one epoch.
	EpochSeconds float64      `json:"epoch_seconds"`
	Classes      []slo.Report `json:"classes"`
}

// handleSLO reports SLO attainment: GET /slo on a daemon started with -slo.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	e := s.rt.SLO()
	if e == nil {
		httpError(w, http.StatusNotFound, "slo engine disabled (start wlmd with -slo)")
		return
	}
	writeJSON(w, http.StatusOK, SLOResponse{
		NowSeconds:   float64(s.rt.NowNanos()) / 1e9,
		EpochSeconds: float64(e.EpochNS()) / 1e9,
		Classes:      e.Evaluate(),
	})
}

// handleMetrics renders the Prometheus text-format exposition (the one
// non-JSON page the daemon serves).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obsv.NewPromWriter(w)
	s.rt.WritePrometheus(p)
	if s.predict != nil {
		s.predict.WritePrometheus(p)
	}
	// A write error here means the scraper hung up; nothing to do.
	_ = p.Err()
}

func (s *Server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.rt.Policy())
}

func (s *Server) handlePolicySet(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	p, err := policy.ParseRuntimePolicy(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.rt.ApplyPolicy(p); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.rt.Policy())
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	mem, err1 := formFloat(r, "mem")
	conflict, err2 := formFloat(r, "conflict")
	cpu, err3 := formFloat(r, "cpu")
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.rt.SetLoad(mem, conflict, cpu)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func formFloat(r *http.Request, key string) (float64, error) {
	v := r.FormValue(key)
	if v == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, v)
	}
	return f, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RunIndicatorLoop runs the indicator controller (Zhang et al.) against the
// runtime's View every interval: when the composite load indicators say the
// engine is congested, the low-priority gate closes; new low-priority work
// queues until the indicators clear. Returns a stop function.
func RunIndicatorLoop(r *rt.Runtime, interval time.Duration) (stop func()) {
	ind := &admission.Indicators{Engine: r}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.SetLowPriorityGate(ind.Congested())
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// NewMAPELoop builds the live autonomic manager (Section 5.3) over the
// runtime: the monitor snapshots the merged-shard view, the analyzer applies
// the indicator thresholds (Zhang et al.) to diagnose overload — or
// underload once the congestion gate is closed and the indicators have
// cleared — the planner picks the gate action, and the executor flips the
// low-priority gate. When the runtime carries an SLO engine, the analyzer
// also consumes its multi-window burn rates: a class burning error budget in
// both windows raises an slo-violation symptom whose recorder reason says
// why (burn-rate, or budget-exhausted once the cumulative budget is spent),
// and the planner sheds low-priority work for it. With a flight
// recorder attached, every iteration's snapshot, symptoms, and actions land
// in the trace: the MAPE loop thinking out loud. Drive it with RunOnce
// (tests, selftest) or StartMAPELoop.
func NewMAPELoop(r *rt.Runtime, rec *obsv.Recorder) *autonomic.Loop {
	// Evaluation scratch reused across cycles (the loop runs RunOnce on one
	// goroutine).
	var sloReports []slo.Report
	return &autonomic.Loop{
		Flight: rec,
		ClassID: func(name string) int32 {
			if id, ok := r.Class(name); ok {
				return int32(id)
			}
			return obsv.NoClass
		},
		Monitor: func() autonomic.Observation {
			return autonomic.Observation{
				At:     sim.Time(r.NowNanos() / 1000),
				Engine: r.StatsNow(),
			}
		},
		Analyze: func(obs autonomic.Observation) []autonomic.Symptom {
			var out []autonomic.Symptom
			if e := r.SLO(); e != nil {
				sloReports = e.EvaluateInto(sloReports)
				for i := range sloReports {
					rp := &sloReports[i]
					if !rp.Burning {
						continue
					}
					reason := obsv.ReasonBurnRate
					sev := rp.Windows[0].BurnRate / (2 * rp.BurnThreshold)
					if rp.BudgetRemaining == 0 {
						reason = obsv.ReasonBudgetExhausted
						sev = 1
					}
					if sev > 1 {
						sev = 1
					}
					out = append(out, autonomic.Symptom{
						Kind: autonomic.SymptomSLOViolation, Class: rp.Class,
						Severity: sev, Reason: reason,
					})
				}
			}
			congested, severity := congestion(obs)
			switch {
			case congested:
				out = append(out, autonomic.Symptom{Kind: autonomic.SymptomOverload, Severity: severity})
			case len(out) == 0 && r.LowPriorityGate():
				// The gate is holding work that neither the indicators nor
				// the burn rates still justify.
				out = append(out, autonomic.Symptom{Kind: autonomic.SymptomUnderload, Severity: 1})
			}
			return out
		},
		Plan: func(_ autonomic.Observation, symptoms []autonomic.Symptom) []autonomic.PlannedAction {
			for _, sym := range symptoms {
				switch sym.Kind {
				case autonomic.SymptomOverload, autonomic.SymptomSLOViolation:
					return []autonomic.PlannedAction{{Kind: autonomic.ActionThrottle, Amount: 1}}
				case autonomic.SymptomUnderload:
					return []autonomic.PlannedAction{{Kind: autonomic.ActionResume}}
				}
			}
			return nil
		},
		Execute: func(actions []autonomic.PlannedAction) {
			for _, a := range actions {
				switch a.Kind {
				case autonomic.ActionThrottle:
					r.SetLowPriorityGate(true)
				case autonomic.ActionResume:
					r.SetLowPriorityGate(false)
				}
			}
		},
	}
}

// congestion applies the Indicators defaults to one observation, reporting
// whether any threshold fired and the worst normalized excess in (0, 1].
func congestion(obs autonomic.Observation) (bool, float64) {
	st := obs.Engine
	worst := 0.0
	if st.MemPressure > 1.0 {
		worst = max(worst, st.MemPressure-1.0)
	}
	if st.InEngine > 0 {
		if f := float64(st.Blocked) / float64(st.InEngine); f > 0.4 {
			worst = max(worst, f-0.4)
		}
	}
	if st.ConflictRatio > 1.5 {
		worst = max(worst, st.ConflictRatio-1.5)
	}
	if worst <= 0 {
		return false, 0
	}
	return true, min(1, worst)
}

// StartMAPELoop runs the loop's RunOnce on a wall-clock ticker. Returns a
// stop function.
func StartMAPELoop(loop *autonomic.Loop, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				loop.RunOnce()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
