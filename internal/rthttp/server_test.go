package rthttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
	"dbwlm/internal/rt"
)

func testSpecs() []rt.ClassSpec {
	return []rt.ClassSpec{
		{Name: "interactive", Priority: policy.PriorityHigh, MaxMPL: 32},
		{Name: "reporting", Priority: policy.PriorityMedium, MaxMPL: 8, MaxCostTimerons: 50000},
		{Name: "batch", Priority: policy.PriorityLow, MaxMPL: 4,
			MaxQueueDelay: 5 * time.Second, RetryBatch: 8},
	}
}

func newTestServer(t *testing.T, opts rt.Options) (*rt.Runtime, *httptest.Server) {
	t.Helper()
	r, err := rt.New(testSpecs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(r))
	t.Cleanup(srv.Close)
	return r, srv
}

// TestJSONEverywhere: every endpoint response — success or error — carries
// Content-Type: application/json and, on errors, a JSON body with an "error"
// key. The one deliberate exception is the Prometheus page.
func TestJSONEverywhere(t *testing.T) {
	_, srv := newTestServer(t, rt.Options{})
	cases := []struct {
		method, path string
		form         url.Values
		status       int
	}{
		{"POST", "/admit", url.Values{"class": {"interactive"}}, http.StatusOK},
		{"POST", "/admit", url.Values{"class": {"nope"}}, http.StatusBadRequest},
		{"POST", "/admit", url.Values{"class": {"interactive"}, "cost": {"spam"}}, http.StatusBadRequest},
		{"POST", "/done", url.Values{"token": {"garbage"}}, http.StatusBadRequest},
		{"GET", "/stats", nil, http.StatusOK},
		{"GET", "/policy", nil, http.StatusOK},
		{"GET", "/trace", nil, http.StatusNotFound}, // recorder not attached
		{"GET", "/slo", nil, http.StatusNotFound},   // slo engine not attached
		{"POST", "/load", url.Values{"mem": {"wat"}}, http.StatusBadRequest},
		{"GET", "/nosuch", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		var resp *http.Response
		var err error
		if c.method == "POST" {
			resp, err = http.PostForm(srv.URL+c.path, c.form)
		} else {
			resp, err = http.Get(srv.URL + c.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.status, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: Content-Type %q", c.method, c.path, ct)
		}
		if c.status >= 400 {
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("%s %s: error body %q not JSON with error key", c.method, c.path, body)
			}
		}
	}
}

// TestStatsPolicyByteStable: two servers driven through the same admit
// sequence serve byte-identical /stats and /policy documents, and repeated
// GETs against a quiescent server never change a byte. This pins the
// map-order audit on the HTTP surface the same way TestDashboardDeterministic
// pins the simulated dashboard: any map-order iteration feeding these
// replies shows up here as flaky bytes. (The sequence uses admits only —
// completions record wall-clock latencies, which are real nondeterminism,
// not rendering nondeterminism.)
func TestStatsPolicyByteStable(t *testing.T) {
	drive := func() *httptest.Server {
		_, srv := newTestServer(t, rt.Options{})
		for i := 0; i < 6; i++ {
			class := []string{"interactive", "reporting", "batch"}[i%3]
			resp, err := http.PostForm(srv.URL+"/admit", url.Values{"class": {class}})
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		return srv
	}
	get := func(srv *httptest.Server, path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d (%s)", path, resp.StatusCode, body)
		}
		return body
	}
	a, b := drive(), drive()
	for _, path := range []string{"/stats", "/policy"} {
		first := get(a, path)
		for i := 0; i < 3; i++ {
			if again := get(a, path); !bytes.Equal(first, again) {
				t.Fatalf("GET %s changed between reads:\n%s\nvs\n%s", path, first, again)
			}
		}
		if other := get(b, path); !bytes.Equal(first, other) {
			t.Fatalf("GET %s differs across identically-driven servers:\n%s\nvs\n%s", path, first, other)
		}
	}
}

// TestMethodNotAllowed: a wrong method gets a JSON 405 plus the Allow header
// listing what the path supports.
func TestMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, rt.Options{})
	cases := []struct {
		method, path, allow string
	}{
		{"GET", "/admit", "POST"},
		{"DELETE", "/done", "POST"},
		{"POST", "/stats", "GET"},
		{"POST", "/metrics", "GET"},
		{"DELETE", "/policy", "GET, POST"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: 405 Content-Type %q", c.method, c.path, ct)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "not allowed") {
			t.Fatalf("%s %s: 405 body %q", c.method, c.path, body)
		}
	}
}

// TestMetricsGolden drives a fixed admit/done sequence on an injected clock
// and compares the full GET /metrics page against testdata/metrics.golden.
// Everything on the page is deterministic: counters and histograms merge
// across shards before rendering, and the injected clock fixes every latency.
// Regenerate with UPDATE_GOLDEN=1.
func TestMetricsGolden(t *testing.T) {
	clock := int64(0)
	r, err := rt.New(testSpecs(), rt.Options{Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit shard count pins Cap() (and so dbwlm_trace_capacity) across
	// machines with different GOMAXPROCS.
	r.SetRecorder(obsv.NewRecorderShards(1024, 8))
	r.SetLoad(0.5, 0.25, 0.75)

	g1 := r.Admit(0, 100) // interactive, fast path
	clock += 5_000_000    // 5ms of service
	r.Done(g1, 0.004)     // velocity 0.8

	if g := r.Admit(1, 60000); g.Admitted() { // reporting, over the cost cap
		t.Fatal("over-cost admit")
	}

	g3 := r.Admit(2, 10) // batch
	clock += 20_000_000
	r.Done(g3, 0.02) // velocity 1.0

	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("/metrics drifted from golden file:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestTraceEndpointFilters exercises the /trace surface over a recorder fed
// through real admissions: bad parameters are JSON 400s, filters narrow the
// drain, and events carry renderable names.
func TestTraceEndpointFilters(t *testing.T) {
	clock := int64(0)
	r, err := rt.New(testSpecs(), rt.Options{Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	r.SetRecorder(obsv.NewRecorder(1024))
	g := r.Admit(0, 100)
	clock += 1_000_000
	r.Done(g, 0.001)
	r.Admit(1, 60000) // rejected-cost

	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()

	for _, q := range []string{"?n=spam", "?class=nope", "?verdict=nope", "?kind=nope", "?qid=x"} {
		resp, err := http.Get(srv.URL + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trace%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	get := func(q string) TraceResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	all := get("")
	if all.Recorded != 3 || len(all.Events) != 3 {
		t.Fatalf("trace %+v, want 3 events", all)
	}
	admits := get("?kind=admit&verdict=admitted")
	if len(admits.Events) != 1 {
		t.Fatalf("admit filter drained %d", len(admits.Events))
	}
	e := admits.Events[0]
	if e.Kind != "admit" || e.Reason != "fast-path" || e.Class != "interactive" ||
		e.Verdict != "admitted" || e.QID == 0 {
		t.Fatalf("admit event %+v", e)
	}
	rejected := get("?class=reporting")
	if len(rejected.Events) != 1 || rejected.Events[0].Verdict != "rejected-cost" {
		t.Fatalf("reporting events %+v", rejected.Events)
	}
	done := get("?kind=done")
	if len(done.Events) != 1 || done.Events[0].Value != 0.001 || done.Events[0].QID != e.QID {
		t.Fatalf("done event %+v (admit qid %d)", done.Events, e.QID)
	}
}

// TestMAPELoopLive: the live autonomic loop closes the low-priority gate
// under fed congestion and reopens it on recovery, recording symptoms and
// actions in the flight recorder.
func TestMAPELoopLive(t *testing.T) {
	r, err := rt.New(testSpecs(), rt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obsv.NewRecorder(1024)
	r.SetRecorder(rec)
	loop := NewMAPELoop(r, rec)

	r.SetLoad(1.5, 0, 0.9)
	loop.RunOnce()
	if !r.LowPriorityGate() {
		t.Fatal("gate open after overload cycle")
	}
	r.SetLoad(0.2, 0, 0.1)
	loop.RunOnce()
	if r.LowPriorityGate() {
		t.Fatal("gate closed after recovery cycle")
	}
	loop.RunOnce() // healthy and open: no symptom, no action
	if got := loop.Cycles(); got != 3 {
		t.Fatalf("cycles %d", got)
	}
	if got := loop.Symptoms(); got != 2 {
		t.Fatalf("symptoms %d", got)
	}
	f := obsv.MatchAll
	f.Kind = obsv.KindMAPEAction
	actions := rec.Tail(0, f)
	if len(actions) != 2 ||
		actions[0].Reason != obsv.ReasonThrottle || actions[1].Reason != obsv.ReasonResume {
		t.Fatalf("recorded actions %+v", actions)
	}
	f.Kind = obsv.KindMAPEMonitor
	if got := len(rec.Tail(0, f)); got != 3 {
		t.Fatalf("monitor snapshots %d", got)
	}
}

// TestStartMAPELoopTicker: the wall-clock ticker variant reacts to fed load
// without manual stepping.
func TestStartMAPELoopTicker(t *testing.T) {
	r, err := rt.New(testSpecs(), rt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetLoad(2.0, 0, 0.9)
	stop := StartMAPELoop(NewMAPELoop(r, nil), time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for !r.LowPriorityGate() {
		if time.Now().After(deadline) {
			t.Fatal("MAPE loop never closed the gate under memory pressure")
		}
		time.Sleep(time.Millisecond)
	}
	r.SetLoad(0.1, 0, 0.1)
	for r.LowPriorityGate() {
		if time.Now().After(deadline) {
			t.Fatal("MAPE loop never reopened the gate")
		}
		time.Sleep(time.Millisecond)
	}
}
