package rthttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dbwlm/internal/obsv"
	"dbwlm/internal/rt"
	"dbwlm/internal/slo"
)

// newSLOTestRuntime builds the standard three-class runtime on an injected
// clock with an attached SLO engine whose windows are short enough to age
// within a test.
func newSLOTestRuntime(t testing.TB, clock *int64) *rt.Runtime {
	t.Helper()
	r, err := rt.New(testSpecs(), rt.Options{Now: func() int64 { return *clock }})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slo.New([]slo.Spec{
		{Class: "interactive", Target: 0.001, MissBudget: 0.01,
			FastWindow: time.Second, SlowWindow: 4 * time.Second},
		{Class: "reporting", Target: 0.5},
		{Class: "batch"},
	}, slo.Options{Now: r.NowNanos, Epoch: 250 * time.Millisecond, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.SetSLO(eng)
	return r
}

// TestSLOGolden drives a fixed admit/done sequence on an injected clock and
// compares the full GET /slo document against testdata/slo.golden, plus
// repeated GETs for byte stability. Every value in the report is an integer
// count or a ratio of integer counts, so the page is exactly reproducible.
// Regenerate with UPDATE_GOLDEN=1.
func TestSLOGolden(t *testing.T) {
	clock := int64(0)
	r := newSLOTestRuntime(t, &clock)

	g := r.Admit(0, 100) // interactive, within target
	clock += 500_000     // 0.5ms
	r.Done(g, 0.0004)

	g = r.Admit(0, 100) // interactive, 5ms: a deadline miss
	clock += 5_000_000
	r.Done(g, 0.004)

	g = r.Admit(1, 100) // reporting, within its 500ms target
	clock += 20_000_000
	r.Done(g, 0.02)

	g = r.Admit(2, 10) // batch, best-effort
	clock += 40_000_000
	r.Done(g, 0.04)

	// Evaluate just past the first closed epoch so the whole sequence sits
	// inside both windows (their starts clamp to process start).
	clock = int64(300 * time.Millisecond)

	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()
	get := func() []byte {
		resp, err := http.Get(srv.URL + "/slo")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /slo: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET /slo: Content-Type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	body := get()
	for i := 0; i < 3; i++ {
		if again := get(); !bytes.Equal(body, again) {
			t.Fatalf("GET /slo changed between reads:\n%s\nvs\n%s", body, again)
		}
	}

	golden := filepath.Join("testdata", "slo.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("/slo drifted from golden file:\n--- got ---\n%s--- want ---\n%s", body, want)
	}

	// Sanity beyond bytes: the document says what the sequence did.
	var sr SLOResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Classes) != 3 {
		t.Fatalf("classes %d, want 3", len(sr.Classes))
	}
	ia := sr.Classes[0]
	if ia.Class != "interactive" || ia.Total != 2 || ia.Missed != 1 {
		t.Fatalf("interactive report %+v, want 1/2 missed", ia)
	}
	if ia.Windows[0].MissRate != 0.5 || ia.Windows[0].BurnRate != 50 {
		t.Fatalf("interactive fast window %+v, want miss rate 0.5 burn 50", ia.Windows[0])
	}
}

// TestMetricsSLOGolden is TestMetricsGolden with the SLO engine attached:
// the same deterministic page now ends with the dbwlm_slo_* families.
// Regenerate with UPDATE_GOLDEN=1.
func TestMetricsSLOGolden(t *testing.T) {
	clock := int64(0)
	r := newSLOTestRuntime(t, &clock)
	r.SetRecorder(obsv.NewRecorderShards(1024, 8))

	g := r.Admit(0, 100)
	clock += 5_000_000 // 5ms: misses the 1ms interactive target
	r.Done(g, 0.004)
	g = r.Admit(2, 10)
	clock += 20_000_000
	r.Done(g, 0.02)
	clock = int64(300 * time.Millisecond)

	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("dbwlm_slo_deadline_misses_total")) {
		t.Fatalf("/metrics missing slo families:\n%s", body)
	}

	golden := filepath.Join("testdata", "metrics_slo.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("/metrics drifted from golden file:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestTraceSinceFilter: the since= parameter narrows the drain to events
// newer than now minus the duration, and malformed values are JSON 400s.
func TestTraceSinceFilter(t *testing.T) {
	clock := int64(0)
	r, err := rt.New(testSpecs(), rt.Options{Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	r.SetRecorder(obsv.NewRecorder(1024))
	g := r.Admit(0, 100) // at t=0
	r.Done(g, 0.001)     // at t=0
	clock = int64(10 * time.Second)
	r.Admit(1, 100) // at t=10s
	clock = int64(12 * time.Second)

	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()

	for _, q := range []string{"?since=wat", "?since=-3s", "?since=5"} {
		resp, err := http.Get(srv.URL + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trace%s: status %d, want 400 (%s)", q, resp.StatusCode, body)
		}
	}

	get := func(q string) TraceResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if all := get(""); len(all.Events) != 3 {
		t.Fatalf("unfiltered drain %d events, want 3", len(all.Events))
	}
	recent := get("?since=5s") // cutoff at t=7s: only the t=10s admit
	if len(recent.Events) != 1 || recent.Events[0].Class != "reporting" {
		t.Fatalf("since=5s drained %+v, want the recent admit only", recent.Events)
	}
	// A window wider than the process lifetime matches everything.
	if wide := get("?since=1h"); len(wide.Events) != 3 {
		t.Fatalf("since=1h drained %d events, want 3", len(wide.Events))
	}
	// since composes with the other filters.
	if mixed := get("?since=5s&kind=done"); len(mixed.Events) != 0 {
		t.Fatalf("since+kind drained %+v, want none", mixed.Events)
	}
}

// TestMAPELoopBurnRate drives the live analyzer through the full burn-rate
// arc on an injected clock: a healthy class starts missing hard -> an
// slo-violation symptom with the burn-rate reason closes the low-priority
// gate while budget remains; sustained misses exhaust the cumulative budget
// -> the reason escalates to budget-exhausted at severity 1; the burst ages
// out of both windows -> underload reopens the gate.
func TestMAPELoopBurnRate(t *testing.T) {
	clock := int64(0)
	r := newSLOTestRuntime(t, &clock)
	rec := obsv.NewRecorder(1024)
	r.SetRecorder(rec)
	loop := NewMAPELoop(r, rec)
	eng := r.SLO()

	// A healthy history: 10000 hits, aged out of both windows.
	for i := 0; i < 10000; i++ {
		eng.Observe(0, 0.0001)
	}
	clock = int64(10 * time.Second)
	loop.RunOnce() // healthy: no symptom
	if r.LowPriorityGate() {
		t.Fatal("gate closed while healthy")
	}

	// A pure-miss burst inside both windows: burning, budget still in hand.
	for i := 0; i < 20; i++ {
		eng.Observe(0, 1)
	}
	clock += int64(300 * time.Millisecond)
	loop.RunOnce()
	if !r.LowPriorityGate() {
		t.Fatal("gate open after burn-rate symptom")
	}

	// Sustained misses overdraw the cumulative budget: 20+200 misses in
	// 10220 observations is ~2.2%, past the 1% budget.
	for i := 0; i < 200; i++ {
		eng.Observe(0, 1)
	}
	clock += int64(300 * time.Millisecond)
	loop.RunOnce()

	// The burst ages out of both windows; the gate is holding work that
	// nothing justifies anymore, so the loop resumes it.
	clock += int64(20 * time.Second)
	loop.RunOnce()
	if r.LowPriorityGate() {
		t.Fatal("gate still closed after the burst aged out")
	}

	f := obsv.MatchAll
	f.Kind = obsv.KindMAPESymptom
	symptoms := rec.Tail(0, f)
	if len(symptoms) != 3 {
		t.Fatalf("symptom events %+v, want burn-rate, budget-exhausted, underload", symptoms)
	}
	if symptoms[0].Reason != obsv.ReasonBurnRate || symptoms[0].Class != 0 || symptoms[0].Value != 1 {
		t.Fatalf("first symptom %+v, want burn-rate on class 0 at severity 1", symptoms[0])
	}
	if symptoms[1].Reason != obsv.ReasonBudgetExhausted || symptoms[1].Value != 1 {
		t.Fatalf("second symptom %+v, want budget-exhausted", symptoms[1])
	}
	if symptoms[2].Reason != obsv.ReasonUnderload {
		t.Fatalf("third symptom %+v, want underload", symptoms[2])
	}
	f.Kind = obsv.KindMAPEAction
	actions := rec.Tail(0, f)
	if len(actions) != 3 ||
		actions[0].Reason != obsv.ReasonThrottle ||
		actions[1].Reason != obsv.ReasonThrottle ||
		actions[2].Reason != obsv.ReasonResume {
		t.Fatalf("recorded actions %+v", actions)
	}
}
