package rthttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"dbwlm/internal/admission"
	"dbwlm/internal/metrics"
	"dbwlm/internal/obsv"
	"dbwlm/internal/rt"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/wire"
)

// tickingClock is a fake monotonic clock advancing 1ms per read: every
// recorder event gets a unique, deterministic timestamp, and elapsed times
// depend only on how many clock reads a code path performs. That makes two
// runtimes driven through different transports directly comparable — if the
// paths do the same work, their clocks stay in lockstep.
func tickingClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1e6) }
}

// predictStack is one fully independent server stack: runtime, recorder,
// prediction gate, HTTP front end — all over a deterministic clock.
type predictStack struct {
	rt   *rt.Runtime
	gate *rt.PredictGate
	srv  *httptest.Server
}

func newPredictStack(t *testing.T) predictStack {
	t.Helper()
	r, err := rt.New(testSpecs(), rt.Options{GlobalMaxMPL: 64, Now: tickingClock()})
	if err != nil {
		t.Fatal(err)
	}
	r.SetRecorder(obsv.NewRecorder(1 << 12))
	cache := sqlmini.NewPlanCache(sqlmini.NewCostModel(sqlmini.DefaultCatalog()), 256, 0)
	// MinTraining beyond the script length keeps the model out of the gate:
	// the equivalence property is about transports, not predictions.
	knn := &admission.KNNPredictor{MaxSeconds: 60, MinTraining: 1000}
	gate := rt.NewPredictGate(r, cache, knn, admission.BucketMonster)
	s := NewServer(r)
	s.EnablePredict(gate)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return predictStack{rt: r, gate: gate, srv: srv}
}

func postForm(t *testing.T, srv *httptest.Server, path string, form url.Values) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/x-www-form-urlencoded",
		strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// postBatch sends one binary frame to /batch and decodes the reply.
func postBatch(t *testing.T, srv *httptest.Server, ops []wire.Op) []wire.Result {
	t.Helper()
	payload, err := wire.EncodeRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/batch", "application/octet-stream",
		bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch: %s: %s", resp.Status, body)
	}
	var res wire.BatchRes
	if err := wire.DecodeResponse(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(ops) {
		t.Fatalf("%d results for %d ops", len(res.Results), len(ops))
	}
	return res.Results
}

// TestBatchEndpoint: POST /batch speaks the binary frame format over HTTP and
// lands in the same dispatcher as the TCP wire path; malformed bodies are 400s.
func TestBatchEndpoint(t *testing.T) {
	st := newPredictStack(t)
	res := postBatch(t, st.srv, []wire.Op{
		{Code: wire.OpAdmit, Class: 0, Cost: 10},
		{Code: wire.OpAdmitSQL, Class: 0, SQL: []byte("SELECT id, name FROM customers WHERE id = 7")},
		{Code: wire.OpAdmit, Class: 99, Cost: 10},
	})
	if res[0].Status != wire.StatusAdmitted || res[1].Status != wire.StatusAdmitted {
		t.Fatalf("admits: %v, %v", res[0].Status, res[1].Status)
	}
	if res[2].Status != wire.StatusBadClass {
		t.Fatalf("bad class: %v, want %v", res[2].Status, wire.StatusBadClass)
	}
	rel := postBatch(t, st.srv, []wire.Op{
		{Code: wire.OpDone, Class: res[0].Class, Shard: res[0].Shard,
			GShard: res[0].GShard, Start: res[0].Start, QID: res[0].QID},
		{Code: wire.OpDone, Class: res[1].Class, Shard: res[1].Shard,
			GShard: res[1].GShard, Start: res[1].Start, QID: res[1].QID,
			FPHi: res[1].FPHi, FPLo: res[1].FPLo},
	})
	for i := range rel {
		if rel[i].Status != wire.StatusReleased {
			t.Fatalf("done %d: %v, want released", i, rel[i].Status)
		}
	}
	if got := st.rt.InEngine(); got != 0 {
		t.Fatalf("in-engine %d after balanced batches, want 0", got)
	}

	resp, err := http.Post(st.srv.URL+"/batch", "application/octet-stream",
		strings.NewReader("this is not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", resp.StatusCode)
	}
}

// replayStep is one logical client action the equivalence test issues over
// both transports.
type replayStep struct {
	op    string // admit | admitsql | done | donesql
	class string // admit ops; must exist in testSpecs
	cost  float64
	sql   string
	ref   int // done ops: index of the step whose grant is released
}

// TestBatchReplayEquivalence pins the tentpole's core contract: a batch of N
// ops produces exactly what the same N ops produce as sequential single-op
// /admit and /done calls — identical verdict sequences, identical per-class
// grant accounting, identical flight-recorder event streams, identical
// plan-cache traffic. Two independent stacks with deterministic clocks run
// the same script, one per transport; only QIDs (striped allocator values)
// are allowed to differ.
func TestBatchReplayEquivalence(t *testing.T) {
	q0 := "SELECT id, name FROM customers WHERE id = 42"
	q1 := "SELECT COUNT(*) FROM orders WHERE total > 100"
	script := []replayStep{
		{op: "admit", class: "interactive", cost: 100},
		{op: "admit", class: "reporting", cost: 60000}, // over MaxCostTimerons
		{op: "admitsql", class: "interactive", sql: q0},
		{op: "admit", class: "reporting", cost: 100},
		{op: "admitsql", class: "interactive", sql: q1},
		{op: "admitsql", class: "interactive", sql: q0}, // plan-cache hit
		{op: "done", ref: 0},
		{op: "donesql", ref: 2},
		{op: "admit", class: "interactive", cost: 50},
		{op: "donesql", ref: 4},
		{op: "done", ref: 3},
		{op: "donesql", ref: 5},
		{op: "done", ref: 8},
	}

	// Transport A: sequential single-op HTTP calls.
	a := newPredictStack(t)
	verdictsA := make([]string, len(script))
	tokens := make([]string, len(script))
	for i, step := range script {
		switch step.op {
		case "admit", "admitsql":
			form := url.Values{"class": {step.class}}
			if step.op == "admitsql" {
				form.Set("sql", step.sql)
			} else {
				form.Set("cost", strconv.FormatFloat(step.cost, 'f', -1, 64))
			}
			code, body := postForm(t, a.srv, "/admit", form)
			var ar AdmitResponse
			if err := json.Unmarshal(body, &ar); err != nil {
				t.Fatalf("step %d: %s (%d)", i, body, code)
			}
			verdictsA[i], tokens[i] = ar.Verdict, ar.Token
		case "done", "donesql":
			form := url.Values{"token": {tokens[step.ref]}}
			if step.op == "donesql" {
				form.Set("sql", script[step.ref].sql)
			}
			if code, body := postForm(t, a.srv, "/done", form); code != http.StatusOK {
				t.Fatalf("step %d done: %s", i, body)
			}
			verdictsA[i] = "released"
		}
	}

	// Transport B: the same script as binary batches through /batch. A done
	// op needs the grant fields from its admit's result, so frame boundaries
	// fall so that no done rides in the same frame as its admit — the op
	// order across frames is still exactly the script.
	b := newPredictStack(t)
	verdictsB := make([]string, len(script))
	results := make([]wire.Result, len(script))
	runFrame := func(start, end int) {
		ops := make([]wire.Op, 0, end-start)
		for i := start; i < end; i++ {
			step := script[i]
			switch step.op {
			case "admit", "admitsql":
				class, ok := b.rt.Class(step.class)
				if !ok {
					t.Fatalf("step %d: no class %q", i, step.class)
				}
				op := wire.Op{Class: uint16(class)}
				if step.op == "admitsql" {
					op.Code, op.SQL = wire.OpAdmitSQL, []byte(step.sql)
				} else {
					op.Code, op.Cost = wire.OpAdmit, step.cost
				}
				ops = append(ops, op)
			case "done", "donesql":
				g := results[step.ref]
				op := wire.Op{Code: wire.OpDone, Class: g.Class, Shard: g.Shard,
					GShard: g.GShard, Start: g.Start, QID: g.QID}
				if step.op == "donesql" {
					op.FPHi, op.FPLo = g.FPHi, g.FPLo
				}
				ops = append(ops, op)
			}
		}
		for i, res := range postBatch(t, b.srv, ops) {
			results[start+i] = res
			switch {
			case res.Status == wire.StatusAdmitted:
				verdictsB[start+i] = "admitted"
			case res.Status == wire.StatusReleased:
				verdictsB[start+i] = "released"
			case res.Status.Rejected():
				verdictsB[start+i] = rt.Verdict(res.Status).String()
			default:
				t.Fatalf("step %d: unexpected status %v", start+i, res.Status)
			}
		}
	}
	runFrame(0, 6)   // the opening admits
	runFrame(6, 12)  // dones for frame 1 grants, plus the op-8 admit
	runFrame(12, 13) // the done for the op-8 grant, which needs its result

	if !reflect.DeepEqual(verdictsA, verdictsB) {
		t.Fatalf("verdict sequences diverge:\n http: %v\n wire: %v", verdictsA, verdictsB)
	}

	// Grant accounting: per-class counters and the latency/wait histograms
	// built from the deterministic clocks must match field for field. The
	// histograms' Mean/Sum are merged across randomly-striped shards, so the
	// same samples can accumulate in a different order between the two
	// runtimes — those two fields get an ulp-scale tolerance, everything
	// else (counts, exact sample min/max, bucket-bound percentiles) is
	// compared bit for bit.
	snapA, snapB := a.rt.Snapshot(), b.rt.Snapshot()
	if !reflect.DeepEqual(roundSums(snapA), roundSums(snapB)) {
		t.Fatalf("class stats diverge:\n http: %+v\n wire: %+v", snapA, snapB)
	}

	// Flight-recorder streams: same events, same reasons, same timestamps,
	// same order. QIDs are striped-allocator values and legitimately differ.
	evA := a.rt.Recorder().Tail(0, obsv.MatchAll)
	evB := b.rt.Recorder().Tail(0, obsv.MatchAll)
	if len(evA) != len(evB) {
		t.Fatalf("recorder drained %d vs %d events", len(evA), len(evB))
	}
	for i := range evA {
		x, y := evA[i], evB[i]
		if x.At != y.At || x.Kind != y.Kind || x.Reason != y.Reason ||
			x.Class != y.Class || x.Verdict != y.Verdict || x.FP != y.FP ||
			x.Value != y.Value || x.Aux != y.Aux {
			t.Fatalf("event %d diverges:\n http: %+v\n wire: %+v", i, x, y)
		}
	}

	// Plan-cache traffic: same hits, same misses — the wire done-with-FP path
	// (Lookup) and the HTTP done-with-sql path (PlanInfo) count alike.
	if csA, csB := a.gate.Stats().Cache, b.gate.Stats().Cache; csA != csB {
		t.Fatalf("cache stats diverge: http %+v, wire %+v", csA, csB)
	}
}

// TestStatsReportsHardware: /stats self-describes the machine it measured on.
func TestStatsReportsHardware(t *testing.T) {
	_, srv := newTestServer(t, rt.Options{GlobalMaxMPL: 8})
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumCPU < 1 {
		t.Fatalf("num_cpu %d, want >= 1", stats.NumCPU)
	}
	if stats.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs %d, want >= 1", stats.GOMAXPROCS)
	}
}

// TestWriteAdmitMatchesJSON: the pooled hand-rolled /admit encoder is
// byte-compatible with encoding/json for the values this server emits.
func TestWriteAdmitMatchesJSON(t *testing.T) {
	r, err := rt.New(testSpecs(), rt.Options{GlobalMaxMPL: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	cases := []AdmitResponse{
		{Verdict: "admitted", Token: "0.3.1.123456.789"},
		{Verdict: "rejected-cost"},
		{Verdict: "admitted", Token: "1.0.2.5.9", Cost: 1234.5,
			PredictedSeconds: 0.0625, PredictedBucket: "short", Modeled: true, CacheHit: true},
		{Verdict: "admitted", Token: "t", Cost: 3e21}, // exponent formatting
		{Verdict: "admitted", Token: "t", Cost: 5e-7},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeAdmit(rec, http.StatusOK, &tc)
		want, err := json.Marshal(tc)
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.Body.String(); got != string(want)+"\n" {
			t.Errorf("writeAdmit mismatch:\n got:  %q\n want: %q", got, string(want)+"\n")
		}
	}
}

// TestSingleOpAllocs bounds allocations on the single-op HTTP fast path. The
// pooled response buffers keep the handler's own contribution fixed; the
// bound (with headroom for net/http request plumbing, which this test drives
// through ServeHTTP directly) catches an accidental per-request encoder or
// buffer creeping back in.
func TestSingleOpAllocs(t *testing.T) {
	r, err := rt.New(testSpecs(), rt.Options{GlobalMaxMPL: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	admitBody := "class=interactive&cost=10"
	do := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d: %s", path, rec.Code, rec.Body.String())
		}
		return rec
	}
	roundtrip := func() {
		rec := do("/admit", admitBody)
		body := rec.Body.Bytes()
		// Cheap token extraction: slice it out of {"verdict":"admitted",
		// "token":"..."} without a JSON decode, so the measurement stays on
		// the server, not the test harness.
		i := bytes.Index(body, []byte(`"token":"`))
		if i < 0 {
			t.Fatalf("no token in admit response: %s", body)
		}
		rest := body[i+len(`"token":"`):]
		j := bytes.IndexByte(rest, '"')
		do("/done", "token="+string(rest[:j]))
	}
	roundtrip() // warm the pools
	allocs := testing.AllocsPerRun(200, roundtrip)
	// Each iteration runs two full ServeHTTP request cycles; net/http request
	// parsing and the two ResponseRecorders dominate. The pooled response
	// path itself adds zero steady-state allocations.
	if allocs > 90 {
		t.Fatalf("admit+done roundtrip allocates %v allocs, want <= 90", allocs)
	}
}

// roundSums copies stats with every histogram Mean/Sum rounded to 10
// significant digits — the two summation-order-sensitive fields of a
// striped-shard merge.
func roundSums(stats []rt.ClassStats) []rt.ClassStats {
	out := make([]rt.ClassStats, len(stats))
	r := func(v float64) float64 {
		f, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'e', 9, 64), 64)
		return f
	}
	for i, cs := range stats {
		for _, s := range []*metrics.Snapshot{&cs.Latency, &cs.Wait, &cs.Velocity} {
			s.Mean, s.Sum = r(s.Mean), r(s.Sum)
		}
		out[i] = cs
	}
	return out
}
