// Package slo measures per-class service-level-objective attainment for the
// live runtime: the continuous, cheap, deterministic observability layer
// between the flight recorder / Prometheus exposition and any SLO-driven
// planner (ROADMAP item 4, WiSeDB-style capacity planning).
//
// The paper's taxonomy states workload-management goals as performance
// objectives per service class; this package makes those objectives
// measurable at admission-path cost. Each class carries a Spec — a latency
// deadline, an allowed deadline-miss fraction (the error budget), the
// reported latency percentile, and fast/slow evaluation windows. The engine
// then answers, at any instant: what fraction of this class's requests
// missed their deadline over the last minute and the last ten, how fast is
// the error budget burning (SRE-style multi-window burn rate), and how much
// budget remains.
//
// # Windowed time series without locks on the record path
//
// The write path is the same discipline as the rest of the monitoring
// substrate (internal/metrics): Observe records into a striped histogram and
// two striped counters — a handful of atomic RMWs on padded shards, zero
// allocations, no locks, no time arithmetic. Writers never touch the window
// structure at all.
//
// Windowing happens entirely on the cold read path. Time is divided into
// fixed epochs; every evaluation first calls advance, which closes any
// epochs that ended before now by snapshotting the *cumulative* merged state
// (bucket array, count, sum, miss and total counters) into a fixed ring of
// cells, one snapshot per closed epoch. A windowed view over the last W
// nanoseconds is then a subtraction: current cumulative state minus the
// snapshot at the newest epoch that closed before now-W. Because cumulative
// state is monotone, the diff is exact over the covered span — no
// double-counting, no lost updates, regardless of how writers race the
// snapshot. Windowed percentiles walk the diffed bucket array
// (merge-on-read, like every striped reader).
//
// Two quantizations are inherent and documented rather than hidden: a
// window's true coverage is [W, W+epoch) — conservatively long by less than
// one epoch — and events recorded between an epoch's end and the advance
// call that closes it are attributed to the closing snapshot (evaluation-
// driven attribution). Under the injected clock both are fully
// deterministic: the same sequence of Observe/advance calls yields
// byte-identical reports, which is what the golden tests pin.
//
// A ring that wraps overwrites its oldest snapshots; a baseline older than
// the retained span clamps to the oldest retained cell (bounded staleness,
// never an error). Long idle gaps fill the intervening cells with identical
// cumulative snapshots, so a window spanning the gap correctly reports zero
// activity.
package slo

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"dbwlm/internal/metrics"
)

// Defaults for unset Spec fields.
const (
	// DefaultMissBudget allows 0.1% of requests to miss their deadline
	// (a 99.9% objective).
	DefaultMissBudget = 0.001
	// DefaultPercentile is the reported windowed latency percentile.
	DefaultPercentile = 95
	// DefaultBurnThreshold flags a class as burning when both windows
	// consume budget at >= 4x the sustainable rate.
	DefaultBurnThreshold = 4
	// DefaultFastWindow / DefaultSlowWindow are the SRE-style paired
	// evaluation windows: the fast window catches sudden regressions, the
	// slow window confirms they are sustained.
	DefaultFastWindow = time.Minute
	DefaultSlowWindow = 10 * time.Minute
)

// Spec is one class's service-level objective. The zero Target means
// best-effort: latency is still recorded and windowed, but nothing counts as
// a deadline miss and burn rates stay zero.
type Spec struct {
	// Class names the service class (must match the runtime class table).
	Class string
	// Target is the per-request latency deadline in seconds; a request
	// whose service time exceeds it is a deadline miss. <= 0 = best-effort.
	Target float64
	// MissBudget is the allowed miss fraction in [0, 1): the error budget.
	// 0 selects DefaultMissBudget.
	MissBudget float64
	// Percentile is the latency percentile reported per window (0 selects
	// DefaultPercentile).
	Percentile float64
	// BurnThreshold is the burn-rate multiple at or above which — in both
	// windows at once — the class is Burning (0 selects
	// DefaultBurnThreshold).
	BurnThreshold float64
	// FastWindow and SlowWindow are the two evaluation windows (0 selects
	// the defaults). FastWindow must not exceed SlowWindow. Windows are
	// fixed at construction; the objective knobs above are reloadable.
	FastWindow time.Duration
	SlowWindow time.Duration
}

// normalize fills defaults and validates.
func (s *Spec) normalize() error {
	if s.Class == "" {
		return fmt.Errorf("slo: spec with empty class")
	}
	if s.MissBudget == 0 {
		s.MissBudget = DefaultMissBudget
	}
	if s.MissBudget < 0 || s.MissBudget >= 1 {
		return fmt.Errorf("slo: class %s: miss budget %g outside [0, 1)", s.Class, s.MissBudget)
	}
	if s.Percentile == 0 {
		s.Percentile = DefaultPercentile
	}
	if s.Percentile <= 0 || s.Percentile > 100 {
		return fmt.Errorf("slo: class %s: percentile %g outside (0, 100]", s.Class, s.Percentile)
	}
	if s.BurnThreshold == 0 {
		s.BurnThreshold = DefaultBurnThreshold
	}
	if s.BurnThreshold < 1 {
		return fmt.Errorf("slo: class %s: burn threshold %g < 1", s.Class, s.BurnThreshold)
	}
	if s.FastWindow == 0 {
		s.FastWindow = DefaultFastWindow
	}
	if s.SlowWindow == 0 {
		s.SlowWindow = DefaultSlowWindow
	}
	if s.FastWindow <= 0 || s.SlowWindow <= 0 || s.FastWindow > s.SlowWindow {
		return fmt.Errorf("slo: class %s: windows fast=%s slow=%s invalid", s.Class, s.FastWindow, s.SlowWindow)
	}
	if s.Target < 0 {
		s.Target = 0
	}
	return nil
}

// Options parameterizes engine construction.
type Options struct {
	// Now is the engine clock in nanoseconds (shared with the runtime so
	// deadline misses and windows agree). nil uses a process-start
	// monotonic clock via time.
	Now func() int64
	// Epoch overrides the derived epoch duration (the window-quantization
	// grain). 0 derives min(fast windows)/4, clamped to >= 1ms.
	Epoch time.Duration
	// HistShards overrides the striped shard count per class (0 =
	// GOMAXPROCS-derived). Golden tests pin 1 for byte-stable merges.
	HistShards int
}

// cell is one epoch's cumulative snapshot: everything ever recorded to the
// owning track at the moment the epoch was closed. epoch is -1 while unused.
type cell struct {
	epoch   int64
	count   int64
	sum     float64
	missed  int64
	total   int64
	buckets [metrics.StripedBuckets]int64
}

// track is one class's accounting. The striped fields are the lock-free
// write side; ring and the objective knobs are rotated/read only while the
// owning Engine's mutex is held.
type track struct {
	class string
	// target is the deadline in seconds, read on the record hot path and
	// swapped atomically on policy reload. 0 = best-effort.
	target metrics.AtomicGauge
	// Reloadable objective knobs (engine mutex).
	missBudget float64
	percentile float64
	burnThresh float64
	// Fixed window geometry in nanoseconds.
	fastNS int64
	slowNS int64

	hist   *metrics.StripedHistogram
	missed *metrics.StripedCounter
	total  *metrics.StripedCounter
	ring   []cell
}

// Engine evaluates SLO attainment for a fixed set of classes. The zero
// class index corresponds to specs[0] at construction, matching the
// runtime's class-ID order. A nil *Engine is valid and records nothing.
type Engine struct {
	now     func() int64
	epochNS int64
	ringN   int64

	mu sync.Mutex
	// lastClosed is the newest epoch rotated into every ring; guarded by mu.
	lastClosed int64
	byName     map[string]int
	tracks     []track
	// reports and diff are evaluation scratch; guarded by mu.
	reports []Report
	diff    [metrics.StripedBuckets]int64
}

// New builds an engine for specs, indexed by position (class ID order).
func New(specs []Spec, opts Options) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("slo: no specs")
	}
	now := opts.Now
	if now == nil {
		start := time.Now()
		now = func() int64 { return int64(time.Since(start)) }
	}
	e := &Engine{
		now:    now,
		byName: make(map[string]int, len(specs)),
		tracks: make([]track, len(specs)),
	}
	minFast, maxSlow := time.Duration(0), time.Duration(0)
	for i := range specs {
		s := specs[i]
		if err := s.normalize(); err != nil {
			return nil, err
		}
		if _, dup := e.byName[s.Class]; dup {
			return nil, fmt.Errorf("slo: duplicate class %s", s.Class)
		}
		e.byName[s.Class] = i
		t := &e.tracks[i]
		t.class = s.Class
		t.target.Set(s.Target)
		t.missBudget = s.MissBudget
		t.percentile = s.Percentile
		t.burnThresh = s.BurnThreshold
		t.fastNS = s.FastWindow.Nanoseconds()
		t.slowNS = s.SlowWindow.Nanoseconds()
		t.hist = metrics.NewStripedHistogram(opts.HistShards)
		t.missed = metrics.NewStripedCounter(opts.HistShards)
		t.total = metrics.NewStripedCounter(opts.HistShards)
		if minFast == 0 || s.FastWindow < minFast {
			minFast = s.FastWindow
		}
		if s.SlowWindow > maxSlow {
			maxSlow = s.SlowWindow
		}
	}
	epoch := opts.Epoch
	if epoch <= 0 {
		epoch = minFast / 4
	}
	if epoch < time.Millisecond {
		epoch = time.Millisecond
	}
	e.epochNS = epoch.Nanoseconds()
	cells := int64(maxSlow)/e.epochNS + 2
	if cells < 4 {
		cells = 4
	}
	if cells > 4096 {
		// Ring memory cap: baselines past the retained span clamp to the
		// oldest snapshot (bounded staleness) instead of growing the ring.
		cells = 4096
	}
	e.ringN = int64(1) << bits.Len64(uint64(cells-1))
	for i := range e.tracks {
		r := make([]cell, e.ringN)
		for j := range r {
			r[j].epoch = -1
		}
		e.tracks[i].ring = r
	}
	// Epochs before construction are closed-empty: baselines before the
	// first snapshot fall back to the zero cumulative state. The engine is
	// not yet published; the lock is for the guard contract, not contention.
	e.mu.Lock()
	e.lastClosed = now()/e.epochNS - 1
	e.mu.Unlock()
	return e, nil
}

// Classes reports the number of tracked classes (0 for nil).
func (e *Engine) Classes() int {
	if e == nil {
		return 0
	}
	return len(e.tracks)
}

// EpochNS reports the window-quantization grain in nanoseconds.
func (e *Engine) EpochNS() int64 {
	if e == nil {
		return 0
	}
	return e.epochNS
}

// Observe records one completed request: seconds of service time for class.
// Reports whether the request missed its class deadline. Safe on a nil
// receiver and for out-of-range classes (records nothing, reports false).
// Lock-free and allocation-free: one histogram record, one or two counter
// increments, one atomic gauge load.
//
//dbwlm:hotpath
func (e *Engine) Observe(class int32, seconds float64) bool {
	if e == nil || class < 0 || int(class) >= len(e.tracks) {
		return false
	}
	t := &e.tracks[class]
	t.hist.Record(seconds)
	t.total.Inc()
	target := t.target.Value()
	if target > 0 && seconds > target {
		t.missed.Inc()
		return true
	}
	return false
}

// SetObjective reloads a class's objective knobs (deadline seconds, miss
// budget, percentile, burn threshold — zero values select defaults, target
// <= 0 means best-effort). Window geometry is fixed at construction and not
// reloadable. Unknown classes error.
func (e *Engine) SetObjective(class string, target, missBudget, percentile, burnThresh float64) error {
	if e == nil {
		return fmt.Errorf("slo: engine disabled")
	}
	s := Spec{Class: class, Target: target, MissBudget: missBudget,
		Percentile: percentile, BurnThreshold: burnThresh}
	if err := s.normalize(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.byName[class]
	if !ok {
		return fmt.Errorf("slo: unknown class %q", class)
	}
	t := &e.tracks[i]
	t.target.Set(s.Target)
	t.missBudget = s.MissBudget
	t.percentile = s.Percentile
	t.burnThresh = s.BurnThreshold
	return nil
}

// Specs reports the current per-class objectives in class-ID order.
func (e *Engine) Specs() []Spec {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Spec, len(e.tracks))
	for i := range e.tracks {
		t := &e.tracks[i]
		out[i] = Spec{
			Class:         t.class,
			Target:        t.target.Value(),
			MissBudget:    t.missBudget,
			Percentile:    t.percentile,
			BurnThreshold: t.burnThresh,
			FastWindow:    time.Duration(t.fastNS),
			SlowWindow:    time.Duration(t.slowNS),
		}
	}
	return out
}

// WindowReport is one evaluation window's view of a class.
type WindowReport struct {
	// Name is "fast" or "slow"; Seconds its nominal width (true coverage
	// is quantized up by less than one epoch).
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Total and Missed are the windowed completion and deadline-miss
	// counts; MissRate their ratio.
	Total    int64   `json:"total"`
	Missed   int64   `json:"missed"`
	MissRate float64 `json:"miss_rate"`
	// BurnRate is MissRate over the class miss budget: 1 consumes the
	// error budget exactly at the sustainable rate, above 1 overdraws it.
	BurnRate float64 `json:"burn_rate"`
	// Latency is the windowed latency percentile (Report.Percentile) in
	// seconds.
	Latency float64 `json:"latency_seconds"`
}

// Report is one class's SLO evaluation.
type Report struct {
	Class string `json:"class"`
	// TargetSeconds is the deadline (0 = best-effort).
	TargetSeconds float64 `json:"target_seconds"`
	MissBudget    float64 `json:"miss_budget"`
	Percentile    float64 `json:"percentile"`
	BurnThreshold float64 `json:"burn_threshold"`
	// Total and Missed are the cumulative (since-start) counts.
	Total  int64 `json:"total"`
	Missed int64 `json:"missed"`
	// Windows holds the fast then the slow window.
	Windows [2]WindowReport `json:"windows"`
	// BudgetRemaining is the unconsumed fraction of the cumulative error
	// budget, clamped at 0: 1 − (Missed/Total)/MissBudget over the
	// since-start counts (1 = untouched, 0 = exhausted/overdrawn). It is
	// deliberately charged against lifetime counts rather than the slow
	// window — Burning says the class is spending budget too fast right now,
	// BudgetRemaining says how much is left to spend, and a long healthy
	// history keeps the second true after the first fires.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Burning reports both windows at or above BurnThreshold — the
	// multi-window burn-rate alert condition.
	Burning bool `json:"burning"`
}

// advance closes every epoch that ended before now, rotating one cumulative
// snapshot per track per closed epoch into the ring. Caller holds e.mu.
//
//dbwlm:locked mu
func (e *Engine) advance(now int64) {
	cur := now / e.epochNS
	if cur-1 <= e.lastClosed {
		return
	}
	first := e.lastClosed + 1
	if first < cur-e.ringN {
		// Idle gap longer than the ring: only the cells that survive the
		// wrap need filling.
		first = cur - e.ringN
	}
	for i := range e.tracks {
		t := &e.tracks[i]
		var c cell
		c.count, c.sum = t.hist.MergeBuckets(&c.buckets)
		c.missed = t.missed.Value()
		c.total = t.total.Value()
		for ep := first; ep < cur; ep++ {
			cc := &t.ring[ep%e.ringN]
			*cc = c
			cc.epoch = ep
		}
	}
	e.lastClosed = cur - 1
}

// baseline resolves the cumulative snapshot subtracted for a window whose
// span starts at cutoff: the newest epoch fully closed before cutoff,
// clamped into the retained ring. nil means the zero state (window extends
// to engine start). Caller holds e.mu.
//
//dbwlm:locked mu
func (e *Engine) baseline(t *track, cutoff int64) *cell {
	if cutoff < 0 {
		return nil
	}
	b := cutoff/e.epochNS - 1
	if b > e.lastClosed {
		b = e.lastClosed
	}
	if lo := e.lastClosed - e.ringN + 1; b < lo {
		b = lo
	}
	if b < 0 {
		return nil
	}
	c := &t.ring[b%e.ringN]
	if c.epoch != b {
		return nil
	}
	return c
}

// evalTrack fills rp with t's evaluation at now. Caller holds e.mu and has
// already advanced to now.
//
//dbwlm:locked mu
func (e *Engine) evalTrack(t *track, now int64, rp *Report) {
	var cur cell
	cur.count, cur.sum = t.hist.MergeBuckets(&cur.buckets)
	cur.missed = t.missed.Value()
	cur.total = t.total.Value()
	*rp = Report{
		Class:         t.class,
		TargetSeconds: t.target.Value(),
		MissBudget:    t.missBudget,
		Percentile:    t.percentile,
		BurnThreshold: t.burnThresh,
		Total:         cur.total,
		Missed:        cur.missed,
	}
	names := [2]string{"fast", "slow"}
	spans := [2]int64{t.fastNS, t.slowNS}
	for wi := 0; wi < 2; wi++ {
		base := e.baseline(t, now-spans[wi])
		w := &rp.Windows[wi]
		w.Name = names[wi]
		w.Seconds = float64(spans[wi]) / 1e9
		var bcount int64
		if base != nil {
			w.Total = cur.total - base.total
			w.Missed = cur.missed - base.missed
			bcount = cur.count - base.count
			for i := range e.diff {
				e.diff[i] = cur.buckets[i] - base.buckets[i]
			}
		} else {
			w.Total = cur.total
			w.Missed = cur.missed
			bcount = cur.count
			e.diff = cur.buckets
		}
		w.Latency = metrics.BucketPercentile(&e.diff, bcount, t.percentile)
		if w.Total > 0 {
			w.MissRate = float64(w.Missed) / float64(w.Total)
		}
		if rp.TargetSeconds > 0 && t.missBudget > 0 {
			w.BurnRate = w.MissRate / t.missBudget
		}
	}
	rp.BudgetRemaining = 1
	if rp.TargetSeconds > 0 && t.missBudget > 0 && cur.total > 0 {
		rp.BudgetRemaining = 1 - float64(cur.missed)/float64(cur.total)/t.missBudget
		if rp.BudgetRemaining < 0 {
			rp.BudgetRemaining = 0
		}
	}
	rp.Burning = rp.TargetSeconds > 0 &&
		rp.Windows[0].BurnRate >= t.burnThresh &&
		rp.Windows[1].BurnRate >= t.burnThresh
}

// evalInto advances to now and evaluates every track into e.reports.
// Caller holds e.mu.
//
//dbwlm:locked mu
func (e *Engine) evalInto(now int64) []Report {
	e.advance(now)
	if cap(e.reports) < len(e.tracks) {
		e.reports = make([]Report, len(e.tracks))
	}
	e.reports = e.reports[:len(e.tracks)]
	for i := range e.tracks {
		e.evalTrack(&e.tracks[i], now, &e.reports[i])
	}
	return e.reports
}

// Evaluate reports every class's SLO state at the engine clock's now. The
// returned slice is freshly allocated; nil receiver reports nil.
func (e *Engine) Evaluate() []Report {
	if e == nil {
		return nil
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Report, len(e.tracks))
	copy(out, e.evalInto(now))
	return out
}

// EvaluateInto is Evaluate reusing dst (grown as needed) — the MAPE loop's
// per-cycle call, allocation-free once dst has capacity.
func (e *Engine) EvaluateInto(dst []Report) []Report {
	if e == nil {
		return dst[:0]
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	rs := e.evalInto(now)
	if cap(dst) < len(rs) {
		dst = make([]Report, len(rs))
	}
	dst = dst[:len(rs)]
	copy(dst, rs)
	return dst
}
