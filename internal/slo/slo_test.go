package slo

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"dbwlm/internal/metrics"
)

// refModel is the unsharded reference the epoch ring is checked against: one
// plain histogram and plain counters per class, cumulative snapshots in an
// unbounded map instead of a ring. It mirrors the documented windowing
// semantics (evaluation-driven epoch closing, baseline = newest epoch closed
// before the window start, clamped into the retained span) but shares no
// state or storage with the engine.
type refModel struct {
	epochNS    int64
	ringN      int64
	lastClosed int64
	tracks     []*refTrack
}

type refTrack struct {
	class                                      string
	target, missBudget, percentile, burnThresh float64
	fastNS, slowNS                             int64
	hist                                       *metrics.StripedHistogram
	missed, total                              int64
	snaps                                      map[int64]refSnap
}

type refSnap struct {
	buckets       [metrics.StripedBuckets]int64
	count         int64
	missed, total int64
}

func newRef(e *Engine, specs []Spec) *refModel {
	m := &refModel{epochNS: e.epochNS, ringN: e.ringN, lastClosed: e.lastClosed}
	for _, s := range specs {
		sp := s
		if err := sp.normalize(); err != nil {
			panic(err)
		}
		m.tracks = append(m.tracks, &refTrack{
			class: sp.Class, target: sp.Target, missBudget: sp.MissBudget,
			percentile: sp.Percentile, burnThresh: sp.BurnThreshold,
			fastNS: sp.FastWindow.Nanoseconds(), slowNS: sp.SlowWindow.Nanoseconds(),
			hist:  metrics.NewStripedHistogram(1),
			snaps: make(map[int64]refSnap),
		})
	}
	return m
}

func (m *refModel) observe(class int, v float64) {
	t := m.tracks[class]
	t.hist.Record(v)
	t.total++
	if t.target > 0 && v > t.target {
		t.missed++
	}
}

func (m *refModel) cum(t *refTrack) refSnap {
	var s refSnap
	s.count, _ = t.hist.MergeBuckets(&s.buckets)
	s.missed, s.total = t.missed, t.total
	return s
}

func (m *refModel) advance(now int64) {
	cur := now / m.epochNS
	if cur-1 <= m.lastClosed {
		return
	}
	first := m.lastClosed + 1
	if first < cur-m.ringN {
		first = cur - m.ringN
	}
	for _, t := range m.tracks {
		s := m.cum(t)
		for ep := first; ep < cur; ep++ {
			t.snaps[ep] = s
		}
	}
	m.lastClosed = cur - 1
}

func (m *refModel) eval(now int64) []Report {
	m.advance(now)
	out := make([]Report, len(m.tracks))
	for i, t := range m.tracks {
		cur := m.cum(t)
		rp := &out[i]
		*rp = Report{
			Class: t.class, TargetSeconds: t.target, MissBudget: t.missBudget,
			Percentile: t.percentile, BurnThreshold: t.burnThresh,
			Total: cur.total, Missed: cur.missed,
		}
		names := [2]string{"fast", "slow"}
		spans := [2]int64{t.fastNS, t.slowNS}
		for wi := 0; wi < 2; wi++ {
			w := &rp.Windows[wi]
			w.Name = names[wi]
			w.Seconds = float64(spans[wi]) / 1e9
			var base refSnap
			if cutoff := now - spans[wi]; cutoff >= 0 {
				b := cutoff/m.epochNS - 1
				if b > m.lastClosed {
					b = m.lastClosed
				}
				if lo := m.lastClosed - m.ringN + 1; b < lo {
					b = lo
				}
				if b >= 0 {
					if s, ok := t.snaps[b]; ok {
						base = s
					}
				}
			}
			w.Total = cur.total - base.total
			w.Missed = cur.missed - base.missed
			var diff [metrics.StripedBuckets]int64
			for j := range diff {
				diff[j] = cur.buckets[j] - base.buckets[j]
			}
			w.Latency = metrics.BucketPercentile(&diff, cur.count-base.count, t.percentile)
			if w.Total > 0 {
				w.MissRate = float64(w.Missed) / float64(w.Total)
			}
			if t.target > 0 && t.missBudget > 0 {
				w.BurnRate = w.MissRate / t.missBudget
			}
		}
		rp.BudgetRemaining = 1
		if t.target > 0 && t.missBudget > 0 && cur.total > 0 {
			rp.BudgetRemaining = 1 - float64(cur.missed)/float64(cur.total)/t.missBudget
			if rp.BudgetRemaining < 0 {
				rp.BudgetRemaining = 0
			}
		}
		rp.Burning = t.target > 0 && rp.Windows[0].BurnRate >= t.burnThresh &&
			rp.Windows[1].BurnRate >= t.burnThresh
	}
	return out
}

// TestRingVsReference drives random observe/clock-skip/evaluate sequences —
// sub-epoch skew, multi-epoch hops, idle gaps longer than the ring span, and
// clock jumps that wrap the ring many times over — and requires the engine's
// reports to equal the unsharded reference's exactly at every evaluation.
func TestRingVsReference(t *testing.T) {
	configs := []struct {
		name  string
		epoch time.Duration
		specs []Spec
	}{
		{
			// Ring comfortably covers the slow window.
			name:  "covering-ring",
			epoch: 250 * time.Millisecond,
			specs: []Spec{
				{Class: "oltp", Target: 0.05, FastWindow: time.Second, SlowWindow: 8 * time.Second},
				{Class: "batch", Target: 2, MissBudget: 0.1, FastWindow: 2 * time.Second, SlowWindow: 8 * time.Second},
				{Class: "adhoc", FastWindow: time.Second, SlowWindow: 8 * time.Second}, // best-effort
			},
		},
		{
			// Slow window exceeds the 4096-cell ring cap: slow baselines
			// clamp to the oldest retained snapshot.
			name:  "capped-ring",
			epoch: time.Millisecond,
			specs: []Spec{
				{Class: "oltp", Target: 0.05, FastWindow: 100 * time.Millisecond, SlowWindow: 10 * time.Second},
			},
		},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			var now int64
			eng, err := New(cfg.specs, Options{
				Now:   func() int64 { return now },
				Epoch: cfg.epoch, HistShards: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := newRef(eng, cfg.specs)
			rng := rand.New(rand.NewSource(9))
			ringSpanNS := eng.ringN * eng.epochNS
			var reports []Report
			for op := 0; op < 4000; op++ {
				switch k := rng.Intn(10); {
				case k < 5: // record a burst
					class := rng.Intn(len(cfg.specs))
					n := 1 + rng.Intn(8)
					for i := 0; i < n; i++ {
						v := rng.Float64() * 0.2
						if rng.Intn(4) == 0 {
							v = rng.Float64() * 4 // deadline misses for batch too
						}
						eng.Observe(int32(class), v)
						ref.observe(class, v)
					}
				case k < 8: // clock skew within a few epochs
					now += rng.Int63n(3 * eng.epochNS)
				case k == 8: // idle gap, sometimes past the ring span
					gap := rng.Int63n(2 * ringSpanNS)
					if rng.Intn(4) == 0 {
						gap = ringSpanNS*20 + rng.Int63n(ringSpanNS)
					}
					now += gap
				default: // evaluate and compare
					reports = eng.EvaluateInto(reports)
					want := ref.eval(now)
					if !reflect.DeepEqual(append([]Report(nil), reports...), want) {
						t.Fatalf("op %d (now=%dns): engine diverged from reference\n got: %+v\nwant: %+v",
							op, now, reports, want)
					}
				}
			}
			// Final check so every run ends on a comparison.
			got := eng.Evaluate()
			if want := ref.eval(now); !reflect.DeepEqual(got, want) {
				t.Fatalf("final: engine diverged\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestEvaluateDeterministic drives two independently-constructed engines
// (default sharding) through the same sequence and requires byte-identical
// JSON reports — the property the /slo golden test builds on.
func TestEvaluateDeterministic(t *testing.T) {
	specs := []Spec{
		{Class: "interactive", Target: 0.05},
		{Class: "batch", Target: 5, MissBudget: 0.05},
	}
	build := func(now *int64) *Engine {
		e, err := New(specs, Options{Now: func() int64 { return *now }})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	var nowA, nowB int64
	a, b := build(&nowA), build(&nowB)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * 0.3
		class := int32(rng.Intn(2))
		a.Observe(class, v)
		b.Observe(class, v)
		if rng.Intn(50) == 0 {
			step := rng.Int63n(int64(30 * time.Second))
			nowA += step
			nowB += step
			ja, _ := json.Marshal(a.Evaluate())
			jb, _ := json.Marshal(b.Evaluate())
			if string(ja) != string(jb) {
				t.Fatalf("engines diverged at op %d:\n%s\n%s", i, ja, jb)
			}
		}
	}
}

func TestBurnRateAndBudget(t *testing.T) {
	var now int64
	e, err := New([]Spec{{
		Class: "oltp", Target: 0.1, MissBudget: 0.01, BurnThreshold: 4,
		FastWindow: time.Second, SlowWindow: 4 * time.Second,
	}}, Options{Now: func() int64 { return now }, Epoch: 250 * time.Millisecond, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 100 observations, 10 misses -> miss rate 0.1, burn 10x in both
	// windows (engine young: windows extend to start).
	for i := 0; i < 90; i++ {
		if e.Observe(0, 0.01) {
			t.Fatal("fast request flagged as miss")
		}
	}
	for i := 0; i < 10; i++ {
		if !e.Observe(0, 0.5) {
			t.Fatal("slow request not flagged as miss")
		}
	}
	now = int64(5 * time.Second)
	rs := e.Evaluate()
	r := rs[0]
	if r.Total != 100 || r.Missed != 10 {
		t.Fatalf("cumulative = %d/%d, want 10/100 missed", r.Missed, r.Total)
	}
	// All activity is older than every whole epoch before now-1s and
	// now-4s... both windows still see it only if their baselines predate
	// the records. The slow window (4s at now=5s) has baseline at epoch
	// closing 1s-ish: records happened at now=0, inside epoch 0, so the
	// slow baseline (cutoff 1s -> epoch 3) already contains them: windowed
	// totals are zero.
	if r.Windows[1].Total != 0 {
		t.Fatalf("slow window total = %d, want 0 (records aged out)", r.Windows[1].Total)
	}
	if r.Burning {
		t.Fatal("burning with aged-out records")
	}
	// Fresh misses inside both windows: 10 of 10 miss -> burn 100x.
	for i := 0; i < 10; i++ {
		e.Observe(0, 1)
	}
	now += int64(300 * time.Millisecond)
	r = e.Evaluate()[0]
	if r.Windows[0].Total != 10 || r.Windows[0].Missed != 10 {
		t.Fatalf("fast window = %d/%d, want 10/10", r.Windows[0].Missed, r.Windows[0].Total)
	}
	if got := r.Windows[0].BurnRate; got != 100 {
		t.Fatalf("fast burn = %g, want 100", got)
	}
	if !r.Burning {
		t.Fatal("not burning at 100x in both windows")
	}
	if r.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %g, want 0 (overdrawn clamps)", r.BudgetRemaining)
	}
}

func TestBestEffortNeverMisses(t *testing.T) {
	var now int64
	e, err := New([]Spec{{Class: "adhoc"}}, Options{Now: func() int64 { return now }, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Observe(0, 3600) {
		t.Fatal("best-effort class reported a deadline miss")
	}
	r := e.Evaluate()[0]
	if r.Missed != 0 || r.Windows[0].BurnRate != 0 || r.Burning {
		t.Fatalf("best-effort report has miss accounting: %+v", r)
	}
	if r.BudgetRemaining != 1 {
		t.Fatalf("best-effort budget = %g, want 1", r.BudgetRemaining)
	}
}

func TestSetObjectiveReload(t *testing.T) {
	var now int64
	e, err := New([]Spec{{Class: "oltp", Target: 1}}, Options{Now: func() int64 { return now }, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Observe(0, 0.5) {
		t.Fatal("0.5s missed a 1s deadline")
	}
	if err := e.SetObjective("oltp", 0.1, 0.05, 99, 2); err != nil {
		t.Fatal(err)
	}
	if !e.Observe(0, 0.5) {
		t.Fatal("0.5s met a reloaded 0.1s deadline")
	}
	sp := e.Specs()[0]
	if sp.Target != 0.1 || sp.MissBudget != 0.05 || sp.Percentile != 99 || sp.BurnThreshold != 2 {
		t.Fatalf("Specs after reload = %+v", sp)
	}
	if err := e.SetObjective("nosuch", 1, 0, 0, 0); err == nil {
		t.Fatal("SetObjective accepted an unknown class")
	}
	if err := e.SetObjective("oltp", 1, 2, 0, 0); err == nil {
		t.Fatal("SetObjective accepted miss budget 2")
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if e.Observe(0, 1) || e.Evaluate() != nil || e.Classes() != 0 {
		t.Fatal("nil engine not inert")
	}
	if err := e.SetObjective("x", 1, 0, 0, 0); err == nil {
		t.Fatal("nil engine accepted an objective")
	}
}

func TestObserveOutOfRange(t *testing.T) {
	e, err := New([]Spec{{Class: "a", Target: 1}}, Options{Now: func() int64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if e.Observe(-1, 9) || e.Observe(5, 9) {
		t.Fatal("out-of-range class observed")
	}
	if r := e.Evaluate()[0]; r.Total != 0 {
		t.Fatalf("out-of-range observes leaked into track: %+v", r)
	}
}

// TestConcurrentObserve exercises the lock-free record path against
// concurrent evaluation under the race detector.
func TestConcurrentObserve(t *testing.T) {
	var mu sync.Mutex
	var now int64
	clock := func() int64 { mu.Lock(); defer mu.Unlock(); return now }
	e, err := New([]Spec{{Class: "a", Target: 0.01, FastWindow: time.Second, SlowWindow: 2 * time.Second}},
		Options{Now: clock, Epoch: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				e.Observe(0, rng.Float64()*0.02)
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			mu.Lock()
			now += int64(20 * time.Millisecond)
			mu.Unlock()
			e.Evaluate()
		}
	}()
	wg.Wait()
	<-done
	r := e.Evaluate()[0]
	if r.Total != 80000 {
		t.Fatalf("total = %d, want 80000", r.Total)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := [][]Spec{
		nil,
		{{Class: ""}},
		{{Class: "a"}, {Class: "a"}},
		{{Class: "a", MissBudget: 1.5}},
		{{Class: "a", Percentile: 101}},
		{{Class: "a", BurnThreshold: 0.5}},
		{{Class: "a", FastWindow: time.Minute, SlowWindow: time.Second}},
	}
	for i, specs := range bad {
		if _, err := New(specs, Options{Now: func() int64 { return 0 }}); err == nil {
			t.Errorf("case %d: New accepted invalid specs %+v", i, specs)
		}
	}
}

// TestBurningWithBudgetLeft pins the reason the budget is charged against
// cumulative counts: a class with a long healthy history that starts missing
// hard is Burning (both windows hot) while BudgetRemaining is still
// positive — the alert fires before the budget is gone, not after.
func TestBurningWithBudgetLeft(t *testing.T) {
	var now int64
	e, err := New([]Spec{{
		Class: "oltp", Target: 0.1, MissBudget: 0.01, BurnThreshold: 4,
		FastWindow: time.Second, SlowWindow: 4 * time.Second,
	}}, Options{Now: func() int64 { return now }, Epoch: 250 * time.Millisecond, HistShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A healthy day: 10000 hits, no misses, all aged out of both windows.
	for i := 0; i < 10000; i++ {
		e.Observe(0, 0.01)
	}
	now = int64(10 * time.Second)
	e.Evaluate()
	// A fresh burst of pure misses inside both windows.
	for i := 0; i < 10; i++ {
		e.Observe(0, 1)
	}
	now += int64(300 * time.Millisecond)
	r := e.Evaluate()[0]
	if !r.Burning {
		t.Fatalf("not burning on a pure-miss burst: %+v", r)
	}
	// Cumulative: 10 misses in 10010 -> rate ~0.000999, within the 1%%
	// budget, so most of the budget remains.
	if r.BudgetRemaining <= 0.5 {
		t.Fatalf("budget remaining = %g, want > 0.5 (healthy history)", r.BudgetRemaining)
	}
	// Keep missing until the lifetime budget is gone too.
	for i := 0; i < 200; i++ {
		e.Observe(0, 1)
	}
	now += int64(300 * time.Millisecond)
	r = e.Evaluate()[0]
	if !r.Burning || r.BudgetRemaining != 0 {
		t.Fatalf("sustained misses: burning=%v remaining=%g, want burning with 0", r.Burning, r.BudgetRemaining)
	}
}
