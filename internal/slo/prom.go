package slo

import (
	"dbwlm/internal/obsv"
)

// WritePrometheus emits the dbwlm_slo_* families: objectives, cumulative
// miss accounting, windowed miss/burn rates and latency percentiles, budget
// remaining, and the burning flag. Safe on a nil receiver (writes nothing).
// Every sample is an integer count or a ratio of integers, so pages are
// byte-stable under a deterministic drive.
func (e *Engine) WritePrometheus(p *obsv.PromWriter) {
	if e == nil {
		return
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	rs := e.evalInto(now)

	p.Gauge("dbwlm_slo_target_seconds", "Per-class latency deadline in seconds (0 = best-effort).")
	for i := range rs {
		p.Val(rs[i].TargetSeconds, "class", rs[i].Class)
	}
	p.Gauge("dbwlm_slo_miss_budget", "Allowed deadline-miss fraction (error budget).")
	for i := range rs {
		p.Val(rs[i].MissBudget, "class", rs[i].Class)
	}
	p.Counter("dbwlm_slo_observed_total", "Completed requests observed by the SLO engine.")
	for i := range rs {
		p.Val(float64(rs[i].Total), "class", rs[i].Class)
	}
	p.Counter("dbwlm_slo_deadline_misses_total", "Requests that exceeded their class deadline.")
	for i := range rs {
		p.Val(float64(rs[i].Missed), "class", rs[i].Class)
	}
	p.Gauge("dbwlm_slo_window_miss_rate", "Deadline-miss fraction over each evaluation window.")
	for i := range rs {
		for w := range rs[i].Windows {
			p.Val(rs[i].Windows[w].MissRate, "class", rs[i].Class, "window", rs[i].Windows[w].Name)
		}
	}
	p.Gauge("dbwlm_slo_window_burn_rate", "Error-budget burn rate over each evaluation window (1 = sustainable).")
	for i := range rs {
		for w := range rs[i].Windows {
			p.Val(rs[i].Windows[w].BurnRate, "class", rs[i].Class, "window", rs[i].Windows[w].Name)
		}
	}
	p.Gauge("dbwlm_slo_window_latency_seconds", "Windowed latency percentile (the class's reporting percentile).")
	for i := range rs {
		for w := range rs[i].Windows {
			p.Val(rs[i].Windows[w].Latency, "class", rs[i].Class, "window", rs[i].Windows[w].Name)
		}
	}
	p.Gauge("dbwlm_slo_budget_remaining", "Unconsumed fraction of the cumulative error budget (1 = untouched, 0 = exhausted).")
	for i := range rs {
		p.Val(rs[i].BudgetRemaining, "class", rs[i].Class)
	}
	p.Gauge("dbwlm_slo_burning", "1 when both windows burn at or above the class threshold.")
	for i := range rs {
		b := 0.0
		if rs[i].Burning {
			b = 1
		}
		p.Val(b, "class", rs[i].Class)
	}
}
