package scheduling

import (
	"dbwlm/internal/sim"
)

// Scheduler pairs a wait queue with a dispatcher and a release function,
// implementing the paper's control point "prior to sending requests to the
// database execution engine" (Table 1, row 2).
type Scheduler struct {
	queue      Queue
	dispatcher Dispatcher
	// Release actually submits the request (set by the workload manager).
	Release func(it *Item)
	// MaxSkip bounds how many non-dispatchable items are skipped over when
	// the dispatcher budgets per class (avoids head-of-line blocking across
	// classes); 0 means no skipping.
	MaxSkip int

	dispatched int64
}

// NewScheduler builds a scheduler over the queue and dispatcher.
func NewScheduler(q Queue, d Dispatcher) *Scheduler {
	return &Scheduler{queue: q, dispatcher: d, MaxSkip: 64}
}

// Queue returns the underlying wait queue.
func (s *Scheduler) Queue() Queue { return s.queue }

// Dispatcher returns the underlying dispatcher.
func (s *Scheduler) Dispatcher() Dispatcher { return s.dispatcher }

// Dispatched reports the total number of released requests.
func (s *Scheduler) Dispatched() int64 { return s.dispatched }

// Enqueue admits an item to the wait queue and attempts dispatch.
func (s *Scheduler) Enqueue(it *Item, now sim.Time) {
	s.queue.Push(it)
	s.TryDispatch(now)
}

// TryDispatch releases as many queued items as the dispatcher allows,
// skipping over per-class-blocked items up to MaxSkip deep.
func (s *Scheduler) TryDispatch(now sim.Time) {
	for {
		it := s.popDispatchable(now)
		if it == nil {
			return
		}
		s.dispatcher.OnDispatch(it)
		s.dispatched++
		if s.Release != nil {
			s.Release(it)
		}
	}
}

func (s *Scheduler) popDispatchable(now sim.Time) *Item {
	var skipped []*Item
	defer func() {
		for _, it := range skipped {
			s.queue.Push(it)
		}
	}()
	for tries := 0; tries <= s.MaxSkip; tries++ {
		it := s.queue.Pop(now)
		if it == nil {
			return nil
		}
		if s.dispatcher.CanDispatch(it, now) {
			return it
		}
		skipped = append(skipped, it)
	}
	return nil
}

// OnFinish informs the scheduler that a released item left the engine, and
// dispatches newly admissible work.
func (s *Scheduler) OnFinish(it *Item, now sim.Time) {
	s.dispatcher.OnFinish(it)
	s.TryDispatch(now)
}

// Waiting reports the queue length.
func (s *Scheduler) Waiting() int { return s.queue.Len() }
