package scheduling

import (
	"math"
	"sort"

	"dbwlm/internal/sim"
)

// This file implements the utility-function cost-limit planner of Niu et
// al. [60] ("Workload Adaptation in Autonomic DBMSs"): periodically choose
// per-class cost limits that maximize total utility, where each class's
// utility is a function of its predicted SLO attainment under a candidate
// allocation and its business importance, and the prediction comes from an
// analytic (M/M/1-PS) performance model.

// ClassGoal describes one service class to the planner.
type ClassGoal struct {
	Name string
	// Importance scales the class's utility (business importance).
	Importance float64
	// TargetRT is the class's response-time goal in seconds.
	TargetRT float64
}

// ClassLoad is the planner's view of a class's recent demand.
type ClassLoad struct {
	// ArrivalRate in requests/second.
	ArrivalRate float64
	// MeanServiceSeconds is the mean demand per request in SERVER-seconds
	// (stand-alone runtime × the fraction of the server the query uses):
	// ArrivalRate × MeanServiceSeconds is then the class's utilization of
	// the whole server, which is what the M/M/1-PS model reasons over.
	MeanServiceSeconds float64
	// MeanTimerons is the mean estimated cost per request.
	MeanTimerons float64
}

// Utility maps predicted attainment (targetRT / predictedRT) to [0, 1] with
// a sigmoid centred at attainment 1 — the utility-function shape of Kephart
// & Das [34] used by Niu's objective function.
func Utility(attainment float64) float64 {
	if math.IsInf(attainment, 1) {
		return 1
	}
	// Logistic in log-attainment: 0.5 at attainment 1, saturating smoothly.
	x := math.Log(math.Max(attainment, 1e-9)) * 3
	return 1 / (1 + math.Exp(-x))
}

// Planner computes per-class capacity fractions and cost limits.
type Planner struct {
	Goals []ClassGoal
	// Granularity is the capacity increment used by the hill climb
	// (default 0.05 = 5% of the server).
	Granularity float64
	// ServerTimeronsPerSecond converts capacity fractions into running
	// cost limits.
	ServerTimeronsPerSecond float64
	// Slack scales the cost limits above the bare in-flight demand so the
	// class can keep its pipeline full (mean residence exceeds mean service
	// under queueing; default 3).
	Slack float64
}

// Plan allocates capacity fractions to classes to maximize total
// importance-weighted utility, greedily in Granularity increments, and
// converts them into per-class running-cost limits:
//
//	limit_c = fraction_c × ServerTimeronsPerSecond × meanServiceSeconds_c
//
// (a class may keep limit/meanCost requests in flight at once).
func (p *Planner) Plan(loads map[string]ClassLoad) map[string]float64 {
	gran := p.Granularity
	if gran <= 0 {
		gran = 0.05
	}
	frac := make(map[string]float64, len(p.Goals))
	steps := int(math.Round(1 / gran))
	// Greedy marginal-utility allocation.
	for s := 0; s < steps; s++ {
		bestGain := 0.0
		bestClass := ""
		for _, g := range p.Goals {
			l, ok := loads[g.Name]
			if !ok || l.ArrivalRate <= 0 {
				continue
			}
			cur := p.classUtility(g, l, frac[g.Name])
			next := p.classUtility(g, l, frac[g.Name]+gran)
			gain := next - cur
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestClass = g.Name
			}
		}
		if bestClass == "" {
			break // no class benefits from more capacity
		}
		frac[bestClass] += gran
	}
	// Convert to cost limits.
	limits := make(map[string]float64, len(frac))
	for _, g := range p.Goals {
		l := loads[g.Name]
		f := frac[g.Name]
		if f <= 0 {
			// Minimum trickle so no class is fully starved.
			f = gran / 2
		}
		slack := p.Slack
		if slack <= 0 {
			slack = 3
		}
		limits[g.Name] = f * p.ServerTimeronsPerSecond * math.Max(l.MeanServiceSeconds, 0.001) * slack
	}
	return limits
}

// classUtility predicts the class's utility if given capacity fraction f.
// While the class is unstable under f (offered load exceeds the fraction) a
// small linear term keeps the utility strictly increasing in f, so the greedy
// climb has a gradient to follow toward stability.
func (p *Planner) classUtility(g ClassGoal, l ClassLoad, f float64) float64 {
	if f <= 0 || l.MeanServiceSeconds <= 0 {
		return 0
	}
	rho := l.ArrivalRate * l.MeanServiceSeconds / f
	if rho >= 1 {
		return g.Importance * 0.001 / rho // unstable: tiny but increasing in f
	}
	rt := PSResponseTime(l.ArrivalRate, l.MeanServiceSeconds, f)
	att := g.TargetRT / rt
	return g.Importance * (Utility(att) + 0.001)
}

// Fractions exposes the capacity fractions implied by a set of limits (for
// reports); inverse of Plan's conversion.
func (p *Planner) Fractions(limits map[string]float64, loads map[string]ClassLoad) map[string]float64 {
	out := make(map[string]float64, len(limits))
	for name, lim := range limits {
		l := loads[name]
		slack := p.Slack
		if slack <= 0 {
			slack = 3
		}
		den := p.ServerTimeronsPerSecond * math.Max(l.MeanServiceSeconds, 0.001) * slack
		if den > 0 {
			out[name] = lim / den
		}
	}
	return out
}

// LoadTracker accumulates the per-class statistics the planner needs, over a
// sliding planning window.
type LoadTracker struct {
	window  sim.Duration
	byClass map[string]*classWindow
}

type classWindow struct {
	arrivals []sim.Time
	services []float64
	costs    []float64
}

// NewLoadTracker returns a tracker with the given window (default 30s).
func NewLoadTracker(window sim.Duration) *LoadTracker {
	if window <= 0 {
		window = 30 * sim.Second
	}
	return &LoadTracker{window: window, byClass: make(map[string]*classWindow)}
}

func (t *LoadTracker) cw(class string) *classWindow {
	w := t.byClass[class]
	if w == nil {
		w = &classWindow{}
		t.byClass[class] = w
	}
	return w
}

// ObserveArrival records an arrival for the class.
func (t *LoadTracker) ObserveArrival(class string, at sim.Time) {
	w := t.cw(class)
	w.arrivals = append(w.arrivals, at)
}

// ObserveService records a completed request's stand-alone service seconds
// and estimated cost.
func (t *LoadTracker) ObserveService(class string, serviceSeconds, timerons float64) {
	w := t.cw(class)
	w.services = append(w.services, serviceSeconds)
	w.costs = append(w.costs, timerons)
	const cap = 500
	if len(w.services) > cap {
		w.services = w.services[len(w.services)-cap:]
		w.costs = w.costs[len(w.costs)-cap:]
	}
}

// Loads summarizes the window ending at now.
func (t *LoadTracker) Loads(now sim.Time) map[string]ClassLoad {
	out := make(map[string]ClassLoad, len(t.byClass))
	cutoff := now.Add(-t.window)
	for class, w := range t.byClass {
		// Trim stale arrivals.
		i := sort.Search(len(w.arrivals), func(i int) bool { return w.arrivals[i] > cutoff })
		if i > 0 {
			w.arrivals = append(w.arrivals[:0], w.arrivals[i:]...)
		}
		l := ClassLoad{ArrivalRate: float64(len(w.arrivals)) / t.window.Seconds()}
		if n := len(w.services); n > 0 {
			var ss, cs float64
			for _, v := range w.services {
				ss += v
			}
			for _, v := range w.costs {
				cs += v
			}
			l.MeanServiceSeconds = ss / float64(n)
			l.MeanTimerons = cs / float64(n)
		}
		out[class] = l
	}
	return out
}
