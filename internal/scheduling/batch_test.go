package scheduling

import (
	"testing"
	"testing/quick"

	"dbwlm/internal/workload"
)

func bq(id int64, memMB float64, tables ...string) BatchQuery {
	return BatchQuery{
		Req: &workload.Request{ID: id,
			Est: workload.Estimates{MemMB: memMB, Timerons: float64(id)}},
		Tables: tables,
	}
}

func TestInteractionScore(t *testing.T) {
	m := InteractionModel{MemoryMB: 1000}
	a := bq(1, 300, "sales", "dates")
	b := bq(2, 300, "sales")
	c := bq(3, 900, "inventory")
	if got := m.Score(a, b); got != 1 {
		t.Fatalf("shared-scan score = %v, want 1", got)
	}
	// a+c overflow 1000 by 200 -> penalty 2, no shared tables.
	if got := m.Score(a, c); got != -2 {
		t.Fatalf("overflow score = %v, want -2", got)
	}
}

func TestPlanBatchGroupsSharedScans(t *testing.T) {
	m := InteractionModel{MemoryMB: 100000}
	batch := []BatchQuery{
		bq(1, 10, "sales"),
		bq(2, 10, "inventory"),
		bq(3, 10, "sales"),
		bq(4, 10, "inventory"),
		bq(5, 10, "sales"),
	}
	order := PlanBatch(batch, m)
	if len(order) != 5 {
		t.Fatalf("order length = %d", len(order))
	}
	// All sales queries adjacent, all inventory queries adjacent: the order
	// score equals 3 (two sales adjacencies + one inventory adjacency).
	if got := m.OrderScore(order); got != 3 {
		t.Fatalf("order score = %v, want 3 (fully grouped); order=%v", got, ids(order))
	}
}

func TestPlanBatchSeparatesMemoryHogs(t *testing.T) {
	m := InteractionModel{MemoryMB: 1000}
	batch := []BatchQuery{
		bq(1, 900, "a"),
		bq(2, 900, "b"),
		bq(3, 10, "c"),
		bq(4, 10, "d"),
	}
	order := PlanBatch(batch, m)
	// The two hogs must not be adjacent (adjacency costs -8).
	for i := 0; i+1 < len(order); i++ {
		if order[i].Req.Est.MemMB > 500 && order[i+1].Req.Est.MemMB > 500 {
			t.Fatalf("memory hogs adjacent: %v", ids(order))
		}
	}
}

func TestPlanBatchNeverWorseThanInputOrder(t *testing.T) {
	f := func(mems [7]uint8, tbls [7]uint8) bool {
		names := []string{"s", "i", "d", "p"}
		m := InteractionModel{MemoryMB: 300}
		var batch []BatchQuery
		for i := 0; i < 7; i++ {
			batch = append(batch, bq(int64(i+1), float64(mems[i]%200)+10, names[tbls[i]%4]))
		}
		planned := PlanBatch(batch, m)
		if len(planned) != len(batch) {
			return false
		}
		// Permutation check.
		seen := map[int64]bool{}
		for _, q := range planned {
			if seen[q.Req.ID] {
				return false
			}
			seen[q.Req.ID] = true
		}
		return m.OrderScore(planned) >= m.OrderScore(batch)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanBatchSmall(t *testing.T) {
	m := InteractionModel{}
	if got := PlanBatch(nil, m); len(got) != 0 {
		t.Fatal("empty batch")
	}
	one := []BatchQuery{bq(1, 10, "t")}
	if got := PlanBatch(one, m); len(got) != 1 {
		t.Fatal("singleton batch")
	}
}

func TestBatchToItems(t *testing.T) {
	order := []BatchQuery{bq(2, 10, "t"), bq(1, 10, "t")}
	items := BatchToItems(order, "reports", 2)
	if len(items) != 2 || items[0].Req.ID != 2 || items[0].Class != "reports" || items[0].Weight != 2 {
		t.Fatalf("items = %+v", items)
	}
}

func ids(order []BatchQuery) []int64 {
	out := make([]int64, len(order))
	for i, q := range order {
		out[i] = q.Req.ID
	}
	return out
}
