package scheduling

import (
	"sort"

	"dbwlm/internal/workload"
)

// This file implements interaction-aware scheduling of report-generation
// batch workloads (Ahmad et al. [2], cited by Section 3.3): choose an
// execution order for a whole batch that accounts for how queries interact
// when run concurrently. Ahmad et al. solve the ordering with a linear
// programming formulation; per DESIGN.md's substitution rule we use the same
// objective with a greedy seed plus pairwise-swap local search, which reaches
// the LP's solution on the batch sizes report workloads have.
//
// The interaction model follows the paper's observation that queries sharing
// working sets help each other (shared scans) while queries whose combined
// memory overflows the server hurt each other. Interaction(i, j) > 0 means
// running i and j adjacently is beneficial.

// BatchQuery is one member of a batch workload.
type BatchQuery struct {
	Req *workload.Request
	// Tables the query reads (for shared-scan affinity).
	Tables []string
}

// InteractionModel scores pairwise interactions for a batch on a server
// with the given memory capacity.
type InteractionModel struct {
	// MemoryMB is the server's working memory.
	MemoryMB float64
	// SharedScanBonus per shared table between adjacent queries (default 1).
	SharedScanBonus float64
	// OvercommitPenalty per MB of combined overflow when two adjacent
	// queries exceed memory (default 0.01).
	OvercommitPenalty float64
}

func (m InteractionModel) withDefaults() InteractionModel {
	if m.SharedScanBonus == 0 {
		m.SharedScanBonus = 1
	}
	if m.OvercommitPenalty == 0 {
		m.OvercommitPenalty = 0.01
	}
	return m
}

// Score rates the adjacency of two queries: shared tables give a bonus
// (buffer reuse), combined memory overflow gives a penalty (thrash).
func (m InteractionModel) Score(a, b BatchQuery) float64 {
	m = m.withDefaults()
	var s float64
	for _, ta := range a.Tables {
		for _, tb := range b.Tables {
			if ta == tb {
				s += m.SharedScanBonus
			}
		}
	}
	if m.MemoryMB > 0 {
		combined := a.Req.Est.MemMB + b.Req.Est.MemMB
		if combined > m.MemoryMB {
			s -= m.OvercommitPenalty * (combined - m.MemoryMB)
		}
	}
	return s
}

// OrderScore sums adjacency scores over an order (the objective the LP
// maximizes: total beneficial interaction of the schedule).
func (m InteractionModel) OrderScore(order []BatchQuery) float64 {
	var s float64
	for i := 0; i+1 < len(order); i++ {
		s += m.Score(order[i], order[i+1])
	}
	return s
}

// PlanBatch orders a batch to maximize total adjacency interaction:
// greedy nearest-neighbour seed, then pairwise-swap local search to a local
// optimum. Deterministic for a given input order.
func PlanBatch(queries []BatchQuery, model InteractionModel) []BatchQuery {
	n := len(queries)
	if n <= 2 {
		return append([]BatchQuery(nil), queries...)
	}
	model = model.withDefaults()

	// Greedy seed: start from the cheapest query, always append the
	// best-interacting remaining query (ties by estimated cost, then ID).
	remaining := append([]BatchQuery(nil), queries...)
	sort.SliceStable(remaining, func(i, j int) bool {
		if remaining[i].Req.Est.Timerons != remaining[j].Req.Est.Timerons {
			return remaining[i].Req.Est.Timerons < remaining[j].Req.Est.Timerons
		}
		return remaining[i].Req.ID < remaining[j].Req.ID
	})
	order := []BatchQuery{remaining[0]}
	remaining = remaining[1:]
	for len(remaining) > 0 {
		last := order[len(order)-1]
		best := 0
		bestScore := model.Score(last, remaining[0])
		for i := 1; i < len(remaining); i++ {
			if s := model.Score(last, remaining[i]); s > bestScore {
				best, bestScore = i, s
			}
		}
		order = append(order, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}

	// Local search: pairwise swaps until no improvement.
	improved := true
	for improved {
		improved = false
		cur := model.OrderScore(order)
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				order[i], order[j] = order[j], order[i]
				if model.OrderScore(order) > cur+1e-12 {
					cur = model.OrderScore(order)
					improved = true
				} else {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
	}
	return order
}

// BatchToItems converts an ordered batch into scheduler items preserving the
// order (for release through an FCFS queue).
func BatchToItems(order []BatchQuery, class string, weight float64) []*Item {
	out := make([]*Item, len(order))
	for i, q := range order {
		out[i] = &Item{Req: q.Req, Class: class, Weight: weight, Enqueued: q.Req.Arrive}
	}
	return out
}
