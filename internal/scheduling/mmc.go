package scheduling

import "math"

// log1p is a thin wrapper so queues.go stays readable.
func log1p(v float64) float64 { return math.Log1p(v) }

// This file contains the analytic queueing models the schedulers consult to
// keep the system in a "normal state" (Section 3.3: queuing network models
// [35][40] applied to predict MPLs and response times).

// MM1ResponseTime predicts the mean response time of an M/M/1 queue with
// arrival rate lambda (req/s) and service rate mu (req/s). It returns +Inf
// when the queue is unstable (lambda >= mu).
func MM1ResponseTime(lambda, mu float64) float64 {
	if mu <= 0 || lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// ErlangC computes the probability an arriving job waits in an M/M/c queue
// with offered load a = lambda/mu and c servers.
func ErlangC(c int, a float64) float64 {
	if c <= 0 || a <= 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	// Iterative Erlang B, then convert to Erlang C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MMCResponseTime predicts the mean response time of an M/M/c queue with
// arrival rate lambda, per-server service rate mu, and c servers. +Inf when
// unstable.
func MMCResponseTime(lambda, mu float64, c int) float64 {
	if mu <= 0 || c <= 0 {
		return math.Inf(1)
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	pw := ErlangC(c, a)
	wq := pw / (float64(c)*mu - lambda)
	return wq + 1/mu
}

// PSResponseTime predicts mean response time under processor sharing with a
// capacity fraction f of a server whose full-speed mean service time is s
// seconds, at arrival rate lambda — the model the cost-limit planner uses to
// evaluate candidate allocations (an M/M/1-PS with scaled service rate).
func PSResponseTime(lambda, s, f float64) float64 {
	if f <= 0 || s <= 0 {
		return math.Inf(1)
	}
	mu := f / s
	return MM1ResponseTime(lambda, mu)
}

// OptimalMPL estimates the throughput-optimal multiprogramming level for a
// server with the given memory capacity and per-query working set: the
// largest concurrency that does not overcommit memory (the knee the
// engine's overcommit penalty creates), bounded below by 1.
func OptimalMPL(memoryMB, perQueryMB float64, cores float64) int {
	if perQueryMB <= 0 {
		perQueryMB = 1
	}
	byMem := int(memoryMB / perQueryMB)
	if byMem < 1 {
		byMem = 1
	}
	// At least enough to keep the cores busy.
	byCPU := int(cores)
	if byCPU < 1 {
		byCPU = 1
	}
	if byMem < byCPU {
		return byMem
	}
	// Memory allows more than the cores need; a small multiple of cores
	// keeps the pipeline full without queueing everything in the engine.
	opt := 2 * byCPU
	if opt > byMem {
		opt = byMem
	}
	return opt
}
