package scheduling

import (
	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
)

// Dispatcher decides whether the next queued item may be released to the
// engine — the load-control half of queue management (Section 3.3).
type Dispatcher interface {
	Name() string
	// CanDispatch reports whether it may be released now.
	CanDispatch(it *Item, now sim.Time) bool
	// OnDispatch records the release.
	OnDispatch(it *Item)
	// OnFinish records that a previously dispatched item left the engine.
	OnFinish(it *Item)
}

// Unlimited releases everything immediately (no scheduling).
type Unlimited struct{}

// Name implements Dispatcher.
func (Unlimited) Name() string { return "unlimited" }

// CanDispatch implements Dispatcher.
func (Unlimited) CanDispatch(*Item, sim.Time) bool { return true }

// OnDispatch implements Dispatcher.
func (Unlimited) OnDispatch(*Item) {}

// OnFinish implements Dispatcher.
func (Unlimited) OnFinish(*Item) {}

// MPL releases up to Max concurrent requests system-wide — the static
// threshold scheduling the commercial systems implement.
type MPL struct {
	Max     int
	running int
}

// Name implements Dispatcher.
func (d *MPL) Name() string { return "mpl" }

// CanDispatch implements Dispatcher.
func (d *MPL) CanDispatch(_ *Item, _ sim.Time) bool { return d.running < d.Max }

// OnDispatch implements Dispatcher.
func (d *MPL) OnDispatch(*Item) { d.running++ }

// OnFinish implements Dispatcher.
func (d *MPL) OnFinish(*Item) { d.running-- }

// Running reports current in-flight requests.
func (d *MPL) Running() int { return d.running }

// ClassMPL enforces a per-class concurrency limit (Teradata workload
// throttles; DB2 concurrent-activity thresholds). Classes missing from
// Limits are unlimited.
type ClassMPL struct {
	Limits  map[string]int
	running map[string]int
}

// NewClassMPL returns a per-class MPL dispatcher.
func NewClassMPL(limits map[string]int) *ClassMPL {
	return &ClassMPL{Limits: limits, running: make(map[string]int)}
}

// Name implements Dispatcher.
func (d *ClassMPL) Name() string { return "class-mpl" }

// CanDispatch implements Dispatcher.
func (d *ClassMPL) CanDispatch(it *Item, _ sim.Time) bool {
	limit, ok := d.Limits[it.Class]
	if !ok {
		return true
	}
	return d.running[it.Class] < limit
}

// OnDispatch implements Dispatcher.
func (d *ClassMPL) OnDispatch(it *Item) { d.running[it.Class]++ }

// OnFinish implements Dispatcher.
func (d *ClassMPL) OnFinish(it *Item) { d.running[it.Class]-- }

// Running reports in-flight requests for a class.
func (d *ClassMPL) Running(class string) int { return d.running[class] }

// CostLimit releases requests while the total estimated cost (timerons) of
// running requests in the item's class stays under the class's cost limit —
// the release rule of Niu et al.'s query scheduler [60]: "the total costs of
// executing requests should not exceed the system's acceptable cost limits".
type CostLimit struct {
	// Limits maps class -> max total running timerons. Classes missing are
	// unlimited.
	Limits map[string]float64
	used   map[string]float64
}

// NewCostLimit returns a cost-limit dispatcher.
func NewCostLimit(limits map[string]float64) *CostLimit {
	return &CostLimit{Limits: limits, used: make(map[string]float64)}
}

// Name implements Dispatcher.
func (d *CostLimit) Name() string { return "cost-limit" }

// CanDispatch implements Dispatcher: a class with at least one free slot of
// cost may always run one request (so a single over-limit query is not
// starved forever).
func (d *CostLimit) CanDispatch(it *Item, _ sim.Time) bool {
	limit, ok := d.Limits[it.Class]
	if !ok {
		return true
	}
	used := d.used[it.Class]
	if used == 0 {
		return true // never starve an empty class
	}
	return used+it.Req.Est.Timerons <= limit
}

// OnDispatch implements Dispatcher.
func (d *CostLimit) OnDispatch(it *Item) { d.used[it.Class] += it.Req.Est.Timerons }

// OnFinish implements Dispatcher.
func (d *CostLimit) OnFinish(it *Item) {
	d.used[it.Class] -= it.Req.Est.Timerons
	if d.used[it.Class] < 1e-9 {
		d.used[it.Class] = 0
	}
}

// Used reports the running cost for a class.
func (d *CostLimit) Used(class string) float64 { return d.used[class] }

// SetLimit updates a class's cost limit (the planner's effector).
func (d *CostLimit) SetLimit(class string, limit float64) { d.Limits[class] = limit }

// FeedbackMPL adapts a global MPL to hold mean response time near a target
// while keeping the engine utilized — external scheduling in the spirit of
// Schroeder et al. [69]: the lowest MPL that does not hurt throughput.
type FeedbackMPL struct {
	Engine *engine.Engine
	// TargetRT is the response-time goal in seconds.
	TargetRT float64
	// Interval is the adjustment period (default 2s).
	Interval sim.Duration
	// Min/Max bound the MPL (defaults 1 / 128).
	Min, Max int

	mpl     int
	running int
	respSum float64
	respN   int
	started bool
}

// Start begins the adjustment loop.
func (d *FeedbackMPL) Start() {
	if d.started {
		return
	}
	d.started = true
	if d.Interval <= 0 {
		d.Interval = 2 * sim.Second
	}
	if d.Min <= 0 {
		d.Min = 1
	}
	if d.Max <= 0 {
		d.Max = 128
	}
	if d.mpl == 0 {
		d.mpl = 8
	}
	d.Engine.Sim().Every(d.Interval, func() bool {
		d.adjust()
		return true
	})
}

func (d *FeedbackMPL) adjust() {
	if d.respN == 0 {
		return
	}
	meanRT := d.respSum / float64(d.respN)
	d.respSum, d.respN = 0, 0
	util := d.Engine.StatsNow().CPUUtilization
	switch {
	case meanRT > d.TargetRT:
		// Too slow: shed concurrency (multiplicative decrease).
		d.mpl = int(float64(d.mpl) * 0.75)
	case util > 0.9:
		// Meeting the target at high utilization: hold steady.
	default:
		// Headroom: admit more (additive increase).
		d.mpl += 2
	}
	if d.mpl < d.Min {
		d.mpl = d.Min
	}
	if d.mpl > d.Max {
		d.mpl = d.Max
	}
}

// ObserveResponse feeds a completed request's response time.
func (d *FeedbackMPL) ObserveResponse(seconds float64) {
	d.respSum += seconds
	d.respN++
}

// MPL reports the current level.
func (d *FeedbackMPL) MPL() int {
	if d.mpl == 0 {
		return 8
	}
	return d.mpl
}

// Name implements Dispatcher.
func (d *FeedbackMPL) Name() string { return "feedback-mpl" }

// CanDispatch implements Dispatcher.
func (d *FeedbackMPL) CanDispatch(_ *Item, _ sim.Time) bool {
	if !d.started {
		d.Start()
	}
	return d.running < d.MPL()
}

// OnDispatch implements Dispatcher.
func (d *FeedbackMPL) OnDispatch(*Item) { d.running++ }

// OnFinish implements Dispatcher.
func (d *FeedbackMPL) OnFinish(*Item) { d.running-- }
