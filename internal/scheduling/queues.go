// Package scheduling implements the scheduling class of the taxonomy
// (Section 3.3): queue management — wait queues ordered by FCFS, priority,
// shortest-job-first, or the rank functions of Gupta et al. [24]; dispatchers
// that decide how many queued requests may run (static MPLs, per-class cost
// limits); the utility-function cost-limit scheduler of Niu et al. [60] with
// its analytic performance model; the feedback MPL controller in the spirit
// of Schroeder et al. [69]; and query restructuring — slicing a large plan
// into a series of smaller sub-plans (Bruno et al. [6], Meng et al. [54]).
package scheduling

import (
	"container/heap"

	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

// Item is one queued request.
type Item struct {
	Req      *workload.Request
	Enqueued sim.Time
	// Class is the service-class name the dispatcher budgets against.
	Class string
	// Weight is the resource weight the request will run with.
	Weight float64
}

// Queue orders waiting requests. Pop may consider the current time (rank
// functions age with waiting time).
type Queue interface {
	Name() string
	Push(it *Item)
	// Pop removes and returns the best item, or nil when empty.
	Pop(now sim.Time) *Item
	// Peek returns the item Pop would return without removing it.
	Peek(now sim.Time) *Item
	Len() int
}

// ---------- FCFS ----------

// FCFS releases requests in arrival order. Push inserts by enqueue time (not
// at the tail), so items the scheduler pops, skips over, and re-pushes keep
// their original position.
type FCFS struct {
	items []*Item
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Queue.
func (q *FCFS) Name() string { return "fcfs" }

// Push implements Queue.
func (q *FCFS) Push(it *Item) {
	// Binary insert by (Enqueued, request ID): stable FIFO even when the
	// scheduler re-pushes skipped items.
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		m := q.items[mid]
		if m.Enqueued < it.Enqueued ||
			(m.Enqueued == it.Enqueued && m.Req.ID <= it.Req.ID) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.items = append(q.items, nil)
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = it
}

// Pop implements Queue.
func (q *FCFS) Pop(_ sim.Time) *Item {
	if len(q.items) == 0 {
		return nil
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it
}

// Peek implements Queue.
func (q *FCFS) Peek(_ sim.Time) *Item {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Len implements Queue.
func (q *FCFS) Len() int { return len(q.items) }

// ---------- Priority queue ----------

type priHeap []*Item

func (h priHeap) Len() int { return len(h) }
func (h priHeap) Less(i, j int) bool {
	if h[i].Req.Priority != h[j].Req.Priority {
		return h[i].Req.Priority > h[j].Req.Priority // higher priority first
	}
	return h[i].Enqueued < h[j].Enqueued // FCFS within a priority
}
func (h priHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *priHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *priHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Priority releases the highest business priority first, FCFS within a
// level — the classic multi-level wait queue of Section 3.3.
type Priority struct {
	h priHeap
}

// NewPriority returns an empty priority queue.
func NewPriority() *Priority { return &Priority{} }

// Name implements Queue.
func (q *Priority) Name() string { return "priority" }

// Push implements Queue.
func (q *Priority) Push(it *Item) { heap.Push(&q.h, it) }

// Pop implements Queue.
func (q *Priority) Pop(_ sim.Time) *Item {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Item)
}

// Peek implements Queue.
func (q *Priority) Peek(_ sim.Time) *Item {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len implements Queue.
func (q *Priority) Len() int { return len(q.h) }

// ---------- Shortest job first ----------

type sjfHeap []*Item

func (h sjfHeap) Len() int { return len(h) }
func (h sjfHeap) Less(i, j int) bool {
	if h[i].Req.Est.Timerons != h[j].Req.Est.Timerons {
		return h[i].Req.Est.Timerons < h[j].Req.Est.Timerons
	}
	return h[i].Enqueued < h[j].Enqueued
}
func (h sjfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sjfHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *sjfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// SJF releases the cheapest estimated query first — minimizing mean waiting
// time for batches, at the price of starving large queries.
type SJF struct {
	h sjfHeap
}

// NewSJF returns an empty shortest-job-first queue.
func NewSJF() *SJF { return &SJF{} }

// Name implements Queue.
func (q *SJF) Name() string { return "sjf" }

// Push implements Queue.
func (q *SJF) Push(it *Item) { heap.Push(&q.h, it) }

// Pop implements Queue.
func (q *SJF) Pop(_ sim.Time) *Item {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Item)
}

// Peek implements Queue.
func (q *SJF) Peek(_ sim.Time) *Item {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len implements Queue.
func (q *SJF) Len() int { return len(q.h) }

// ---------- Rank function (Gupta et al.) ----------

// Rank orders the queue by a dynamic rank that balances business priority,
// estimated cost, and waiting time — the "fair, effective, efficient and
// differentiated" scheduler of Gupta et al. [24]. Rank grows with waiting
// time, so large queries cannot starve.
type Rank struct {
	items []*Item
	// AgingWeight converts seconds of waiting into rank (default 0.02/s).
	AgingWeight float64
	// CostWeight penalizes estimated cost (default 1).
	CostWeight float64
}

// NewRank returns an empty rank queue.
func NewRank() *Rank { return &Rank{AgingWeight: 0.02, CostWeight: 1} }

// Name implements Queue.
func (q *Rank) Name() string { return "rank" }

// Push implements Queue.
func (q *Rank) Push(it *Item) { q.items = append(q.items, it) }

// rank computes the dynamic score; higher is released first.
func (q *Rank) rank(it *Item, now sim.Time) float64 {
	wait := now.Sub(it.Enqueued).Seconds()
	// Priority weight divided by log-scaled cost, plus aging.
	cost := 1 + it.Req.Est.Timerons
	return it.Req.Priority.Weight()/(q.CostWeight*logish(cost)) + q.AgingWeight*wait
}

func logish(v float64) float64 {
	// ln(1+v) without importing math in the hot path twice; small helper.
	x := v
	// Use a cheap approximation guard: delegate to math.Log1p via init-free path.
	return log1p(x)
}

// Pop implements Queue (O(n) scan — queue sizes are modest).
func (q *Rank) Pop(now sim.Time) *Item {
	i := q.best(now)
	if i < 0 {
		return nil
	}
	it := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return it
}

// Peek implements Queue.
func (q *Rank) Peek(now sim.Time) *Item {
	i := q.best(now)
	if i < 0 {
		return nil
	}
	return q.items[i]
}

func (q *Rank) best(now sim.Time) int {
	if len(q.items) == 0 {
		return -1
	}
	best := 0
	bestRank := q.rank(q.items[0], now)
	for i := 1; i < len(q.items); i++ {
		if r := q.rank(q.items[i], now); r > bestRank {
			best, bestRank = i, r
		}
	}
	return best
}

// Len implements Queue.
func (q *Rank) Len() int { return len(q.items) }
