package scheduling

import (
	"dbwlm/internal/engine"
	"dbwlm/internal/sqlmini"
)

// This file implements the query-restructuring subclass of the scheduling
// taxonomy (Section 3.3): decompose a large query plan into a series of
// smaller sub-plans that execute in order and produce an equivalent result
// (Bruno et al., "Slicing Long-Running Queries" [6]; Meng et al. [54]).
// Each slice is scheduled as an independent unit, so short queries are never
// stuck behind the whole monster and the monster never monopolizes the
// server for its full duration.

// Slice is one schedulable stage of a restructured query.
type Slice struct {
	// Ops are the plan operators executed by this stage (post-order).
	Ops []*sqlmini.Operator
	// Spec is the engine work for the stage. Stage memory is the max
	// operator memory in the stage (stages run alone, pipelining only
	// within the stage).
	Spec engine.QuerySpec
}

// SlicePlan cuts a plan's post-order operator sequence into stages whose
// estimated cost does not exceed maxTimerons each (a stage always contains
// at least one operator, so an over-limit single operator becomes its own
// stage). The concatenation of stage work equals the plan's total work —
// restructuring changes scheduling, not the result.
func SlicePlan(plan *sqlmini.Plan, maxTimerons float64) []Slice {
	ops := plan.Operators()
	var out []Slice
	var cur Slice
	var curCost float64
	flush := func() {
		if len(cur.Ops) == 0 {
			return
		}
		out = append(out, cur)
		cur = Slice{}
		curCost = 0
	}
	for _, op := range ops {
		opCost := op.EstCPU*1000 + op.EstIO*10
		if len(cur.Ops) > 0 && curCost+opCost > maxTimerons {
			flush()
		}
		cur.Ops = append(cur.Ops, op)
		cur.Spec.CPUWork += op.EstCPU
		cur.Spec.IOWork += op.EstIO
		if op.EstMem > cur.Spec.MemMB {
			cur.Spec.MemMB = op.EstMem
		}
		cur.Spec.StateMB += op.StateMB
		curCost += opCost
	}
	flush()
	// Intermediate results between stages are materialized: charge each
	// stage boundary a small extra IO for the handoff.
	for i := range out {
		if i > 0 {
			out[i].Spec.IOWork += out[i-1].Spec.StateMB
		}
	}
	return out
}

// TotalWork sums the engine work across slices (for equivalence checks).
func TotalWork(slices []Slice) (cpu, io float64) {
	for _, s := range slices {
		cpu += s.Spec.CPUWork
		io += s.Spec.IOWork
	}
	return cpu, io
}

// RunSliced executes the slices sequentially on the engine, each as its own
// query with the given weight, invoking onDone with the final outcome. If
// any slice is killed or deadlocked the chain stops with that outcome.
func RunSliced(e *engine.Engine, slices []Slice, weight float64, parallelism float64,
	onDone func(outcome engine.Outcome)) {
	if len(slices) == 0 {
		if onDone != nil {
			onDone(engine.OutcomeCompleted)
		}
		return
	}
	var runFrom func(i int)
	runFrom = func(i int) {
		spec := slices[i].Spec
		spec.Parallelism = parallelism
		e.Submit(spec, weight, func(_ *engine.Query, oc engine.Outcome) {
			if oc != engine.OutcomeCompleted || i == len(slices)-1 {
				if onDone != nil {
					onDone(oc)
				}
				return
			}
			runFrom(i + 1)
		})
	}
	runFrom(0)
}
