package scheduling

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

func item(id int64, pri policy.Priority, timerons float64, at sim.Time) *Item {
	return &Item{
		Req:      &workload.Request{ID: id, Priority: pri, Est: workload.Estimates{Timerons: timerons}},
		Enqueued: at,
		Class:    "c",
	}
}

func TestFCFSOrder(t *testing.T) {
	q := NewFCFS()
	for i := int64(1); i <= 3; i++ {
		q.Push(item(i, policy.PriorityLow, 1, sim.Time(i)))
	}
	if q.Peek(0).Req.ID != 1 {
		t.Fatal("peek wrong")
	}
	for i := int64(1); i <= 3; i++ {
		if got := q.Pop(0); got.Req.ID != i {
			t.Fatalf("pop %d, want %d", got.Req.ID, i)
		}
	}
	if q.Pop(0) != nil || q.Peek(0) != nil || q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
}

func TestPriorityQueueOrder(t *testing.T) {
	q := NewPriority()
	q.Push(item(1, policy.PriorityLow, 1, 0))
	q.Push(item(2, policy.PriorityCritical, 1, sim.Time(5)))
	q.Push(item(3, policy.PriorityHigh, 1, sim.Time(1)))
	q.Push(item(4, policy.PriorityCritical, 1, sim.Time(1))) // earlier critical
	order := []int64{4, 2, 3, 1}
	for _, want := range order {
		if got := q.Pop(0).Req.ID; got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
	}
}

func TestPriorityQueueHeapProperty(t *testing.T) {
	f := func(pris []uint8) bool {
		q := NewPriority()
		for i, p := range pris {
			q.Push(item(int64(i), policy.Priority(p%4), 1, sim.Time(i)))
		}
		last := policy.PriorityCritical
		for q.Len() > 0 {
			it := q.Pop(0)
			if it.Req.Priority > last {
				return false
			}
			last = it.Req.Priority
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSJFOrder(t *testing.T) {
	q := NewSJF()
	q.Push(item(1, policy.PriorityLow, 500, 0))
	q.Push(item(2, policy.PriorityLow, 5, 0))
	q.Push(item(3, policy.PriorityLow, 50, 0))
	order := []int64{2, 3, 1}
	for _, want := range order {
		if got := q.Pop(0).Req.ID; got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
	}
}

func TestRankQueueAgingPreventsStarvation(t *testing.T) {
	q := NewRank()
	// A huge low-priority query that has waited long enough must outrank a
	// NEWLY ARRIVING cheap high-priority query (starvation-freedom: the old
	// item's aged rank eventually exceeds any fresh arrival's base rank).
	old := item(1, policy.PriorityLow, 1e6, 0)
	q.Push(old)
	fresh := item(2, policy.PriorityHigh, 10, sim.Time(10*sim.Second))
	q.Push(fresh)
	// Shortly after both arrive: fresh high-priority wins.
	got := q.Peek(sim.Time(11 * sim.Second))
	if got.Req.ID != 2 {
		t.Fatalf("fresh high-priority should rank first, got %d", got.Req.ID)
	}
	if q.Pop(sim.Time(11*sim.Second)).Req.ID != 2 {
		t.Fatal("pop disagrees with peek")
	}
	// Much later, a brand-new high-priority arrival loses to the aged one.
	late := item(3, policy.PriorityHigh, 10, sim.Time(10000*sim.Second))
	q.Push(late)
	got = q.Peek(sim.Time(10000 * sim.Second))
	if got.Req.ID != 1 {
		t.Fatal("aging failed to protect the starved query from new arrivals")
	}
	if q.Len() != 2 {
		t.Fatal("len wrong after pop")
	}
}

func TestQueueNames(t *testing.T) {
	for _, q := range []Queue{NewFCFS(), NewPriority(), NewSJF(), NewRank()} {
		if q.Name() == "" {
			t.Fatal("unnamed queue")
		}
	}
}

func TestMPLDispatcher(t *testing.T) {
	d := &MPL{Max: 2}
	it := item(1, policy.PriorityLow, 1, 0)
	if !d.CanDispatch(it, 0) {
		t.Fatal("empty should dispatch")
	}
	d.OnDispatch(it)
	d.OnDispatch(it)
	if d.CanDispatch(it, 0) {
		t.Fatal("over MPL dispatched")
	}
	d.OnFinish(it)
	if !d.CanDispatch(it, 0) || d.Running() != 1 {
		t.Fatal("finish did not free a slot")
	}
}

func TestClassMPLDispatcher(t *testing.T) {
	d := NewClassMPL(map[string]int{"bi": 1})
	bi := &Item{Req: &workload.Request{}, Class: "bi"}
	oltp := &Item{Req: &workload.Request{}, Class: "oltp"}
	d.OnDispatch(bi)
	if d.CanDispatch(bi, 0) {
		t.Fatal("bi over class limit")
	}
	if !d.CanDispatch(oltp, 0) {
		t.Fatal("unlimited class blocked")
	}
	d.OnFinish(bi)
	if !d.CanDispatch(bi, 0) || d.Running("bi") != 0 {
		t.Fatal("class slot not freed")
	}
}

func TestCostLimitDispatcher(t *testing.T) {
	d := NewCostLimit(map[string]float64{"c": 100})
	small := item(1, policy.PriorityLow, 40, 0)
	big := item(2, policy.PriorityLow, 500, 0)
	if !d.CanDispatch(big, 0) {
		t.Fatal("empty class must always run one request")
	}
	d.OnDispatch(small)
	if !d.CanDispatch(small, 0) {
		t.Fatal("40+40 <= 100 should dispatch")
	}
	d.OnDispatch(small)
	if d.CanDispatch(small, 0) {
		t.Fatal("80+40 > 100 dispatched")
	}
	d.OnFinish(small)
	d.OnFinish(small)
	if d.Used("c") != 0 {
		t.Fatalf("used = %v after all finished", d.Used("c"))
	}
	d.SetLimit("c", 1000)
	d.OnDispatch(small)
	if !d.CanDispatch(big, 0) {
		t.Fatal("raised limit not honored")
	}
}

func TestSchedulerDispatchAndHOLSkip(t *testing.T) {
	q := NewFCFS()
	d := NewClassMPL(map[string]int{"bi": 1})
	s := NewScheduler(q, d)
	var released []int64
	s.Release = func(it *Item) { released = append(released, it.Req.ID) }
	bi1 := &Item{Req: &workload.Request{ID: 1}, Class: "bi"}
	bi2 := &Item{Req: &workload.Request{ID: 2}, Class: "bi"}
	oltp := &Item{Req: &workload.Request{ID: 3}, Class: "oltp"}
	s.Enqueue(bi1, 0)
	s.Enqueue(bi2, 0)
	s.Enqueue(oltp, 0) // must skip over blocked bi2
	if len(released) != 2 || released[0] != 1 || released[1] != 3 {
		t.Fatalf("released = %v, want [1 3]", released)
	}
	if s.Waiting() != 1 {
		t.Fatalf("waiting = %d", s.Waiting())
	}
	s.OnFinish(bi1, 0)
	if len(released) != 3 || released[2] != 2 {
		t.Fatalf("released after finish = %v", released)
	}
	if s.Dispatched() != 3 {
		t.Fatal("dispatch count wrong")
	}
}

func TestMM1(t *testing.T) {
	if got := MM1ResponseTime(5, 10); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("MM1(5,10) = %v, want 0.2", got)
	}
	if !math.IsInf(MM1ResponseTime(10, 10), 1) {
		t.Fatal("unstable queue should be +Inf")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// c=1: Erlang C equals rho.
	if got := ErlangC(1, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ErlangC(1, 0.5) = %v, want 0.5", got)
	}
	// Classic: c=2, a=1 -> P(wait) = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("ErlangC(2, 1) = %v, want 1/3", got)
	}
	if ErlangC(2, 5) != 1 {
		t.Fatal("overloaded ErlangC should be 1")
	}
}

func TestMMCReducesToMM1(t *testing.T) {
	a := MMCResponseTime(5, 10, 1)
	b := MM1ResponseTime(5, 10)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("MMC(c=1) = %v, MM1 = %v", a, b)
	}
	// More servers shrink response time.
	one := MMCResponseTime(8, 10, 1)
	two := MMCResponseTime(8, 10, 2)
	if !(two < one) {
		t.Fatalf("two servers (%v) not faster than one (%v)", two, one)
	}
}

func TestPSResponseTime(t *testing.T) {
	// Full capacity: identical to M/M/1 with mu = 1/s.
	if got := PSResponseTime(5, 0.1, 1); math.Abs(got-MM1ResponseTime(5, 10)) > 1e-9 {
		t.Fatalf("PS full capacity = %v", got)
	}
	// Half capacity halves the service rate.
	if !math.IsInf(PSResponseTime(5, 0.1, 0.4), 1) {
		t.Fatal("PS should be unstable when lambda >= f/s")
	}
}

func TestOptimalMPL(t *testing.T) {
	// Memory-bound: 2000MB / 500MB = 4 even with 8 cores.
	if got := OptimalMPL(2000, 500, 8); got != 4 {
		t.Fatalf("memory-bound MPL = %d, want 4", got)
	}
	// CPU-bound: plenty of memory -> 2x cores.
	if got := OptimalMPL(100000, 10, 8); got != 16 {
		t.Fatalf("cpu-bound MPL = %d, want 16", got)
	}
	if OptimalMPL(1, 1000, 8) != 1 {
		t.Fatal("MPL below 1")
	}
}

func TestUtilityShape(t *testing.T) {
	if u := Utility(1); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("Utility(1) = %v, want 0.5", u)
	}
	if !(Utility(2) > Utility(1) && Utility(1) > Utility(0.5)) {
		t.Fatal("utility not monotone in attainment")
	}
	if Utility(math.Inf(1)) != 1 {
		t.Fatal("utility at +Inf attainment should be 1")
	}
	// Bounded in [0, 1].
	for _, a := range []float64{0, 0.01, 0.5, 1, 10, 1e6} {
		u := Utility(a)
		if u < 0 || u > 1 {
			t.Fatalf("Utility(%v) = %v out of [0,1]", a, u)
		}
	}
}

func TestPlannerFavorsImportantTightClass(t *testing.T) {
	p := &Planner{
		Goals: []ClassGoal{
			{Name: "gold", Importance: 10, TargetRT: 0.5},
			{Name: "bronze", Importance: 1, TargetRT: 60},
		},
		ServerTimeronsPerSecond: 10000,
	}
	loads := map[string]ClassLoad{
		"gold":   {ArrivalRate: 5, MeanServiceSeconds: 0.1, MeanTimerons: 100},
		"bronze": {ArrivalRate: 5, MeanServiceSeconds: 0.1, MeanTimerons: 100},
	}
	limits := p.Plan(loads)
	if limits["gold"] <= limits["bronze"] {
		t.Fatalf("gold limit %v should exceed bronze %v", limits["gold"], limits["bronze"])
	}
	fr := p.Fractions(limits, loads)
	if fr["gold"] <= fr["bronze"] {
		t.Fatal("fractions disagree with limits")
	}
	// No class fully starved.
	if limits["bronze"] <= 0 {
		t.Fatal("bronze fully starved")
	}
}

func TestPlannerIgnoresIdleClasses(t *testing.T) {
	p := &Planner{
		Goals: []ClassGoal{
			{Name: "busy", Importance: 1, TargetRT: 1},
			{Name: "idle", Importance: 100, TargetRT: 0.01},
		},
		ServerTimeronsPerSecond: 10000,
	}
	loads := map[string]ClassLoad{
		"busy": {ArrivalRate: 5, MeanServiceSeconds: 0.1, MeanTimerons: 100},
		"idle": {ArrivalRate: 0, MeanServiceSeconds: 0.1, MeanTimerons: 100},
	}
	limits := p.Plan(loads)
	fr := p.Fractions(limits, loads)
	if fr["busy"] < 0.5 {
		t.Fatalf("busy class got %v of the server despite idle competitor", fr["busy"])
	}
}

func TestLoadTracker(t *testing.T) {
	lt := NewLoadTracker(10 * sim.Second)
	for i := 0; i < 50; i++ {
		lt.ObserveArrival("c", sim.Time(i)*sim.Time(sim.Second)/5)
	}
	lt.ObserveService("c", 0.2, 100)
	lt.ObserveService("c", 0.4, 300)
	loads := lt.Loads(sim.Time(10 * sim.Second))
	l := loads["c"]
	if math.Abs(l.ArrivalRate-5) > 0.5 {
		t.Fatalf("arrival rate = %v, want ~5", l.ArrivalRate)
	}
	if math.Abs(l.MeanServiceSeconds-0.3) > 1e-9 || math.Abs(l.MeanTimerons-200) > 1e-9 {
		t.Fatalf("service stats = %+v", l)
	}
	// Old arrivals age out.
	loads = lt.Loads(sim.Time(100 * sim.Second))
	if loads["c"].ArrivalRate != 0 {
		t.Fatal("stale arrivals not trimmed")
	}
}

func TestSlicePlanEquivalence(t *testing.T) {
	cm := sqlmini.NewCostModel(sqlmini.DefaultCatalog())
	plan, err := cm.PlanSQL(`SELECT store_id, SUM(amount) FROM sales_fact
		JOIN store_dim ON sales_fact.store_id = store_dim.id
		GROUP BY store_id ORDER BY store_id`)
	if err != nil {
		t.Fatal(err)
	}
	slices := SlicePlan(plan, workload.TimeronsOf(plan.TotalCPU(), plan.TotalIO())/4)
	if len(slices) < 2 {
		t.Fatalf("plan not sliced: %d slices", len(slices))
	}
	cpu, io := TotalWork(slices)
	if math.Abs(cpu-plan.TotalCPU()) > 1e-9 {
		t.Fatalf("CPU not conserved: %v vs %v", cpu, plan.TotalCPU())
	}
	if io < plan.TotalIO() {
		t.Fatalf("IO should include handoff overhead: %v < %v", io, plan.TotalIO())
	}
	// Each slice smaller than the whole.
	for _, s := range slices {
		if s.Spec.CPUWork >= plan.TotalCPU() {
			t.Fatal("slice as large as the plan")
		}
	}
}

func TestSlicePlanSingleSliceWhenCheap(t *testing.T) {
	cm := sqlmini.NewCostModel(sqlmini.DefaultCatalog())
	plan, _ := cm.PlanSQL("SELECT balance FROM accounts WHERE id = 1")
	slices := SlicePlan(plan, 1e12)
	if len(slices) != 1 {
		t.Fatalf("cheap plan sliced into %d", len(slices))
	}
}

func TestRunSlicedCompletesInOrder(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{Cores: 4, IOMBps: 1000})
	slices := []Slice{
		{Spec: engine.QuerySpec{CPUWork: 0.5}},
		{Spec: engine.QuerySpec{CPUWork: 0.5}},
		{Spec: engine.QuerySpec{CPUWork: 0.5}},
	}
	var done engine.Outcome = -1
	RunSliced(e, slices, 1, 1, func(oc engine.Outcome) { done = oc })
	s.Run(sim.Time(30 * sim.Second))
	if done != engine.OutcomeCompleted {
		t.Fatalf("sliced run outcome = %v", done)
	}
	// At most one slice in the engine at a time implies serialized elapsed
	// time >= 1.5s even with 4 cores.
	if s.Now().Seconds() < 1.4 {
		t.Fatal("slices overlapped")
	}
}

func TestRunSlicedStopsOnKill(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{Cores: 1, IOMBps: 1000})
	slices := []Slice{
		{Spec: engine.QuerySpec{CPUWork: 5}},
		{Spec: engine.QuerySpec{CPUWork: 5}},
	}
	var done engine.Outcome = -1
	RunSliced(e, slices, 1, 1, func(oc engine.Outcome) { done = oc })
	s.Run(sim.Time(sim.Second))
	// Kill the in-flight slice.
	for _, q := range e.Running() {
		if err := e.Kill(q.ID); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(sim.Time(20 * sim.Second))
	if done != engine.OutcomeKilled {
		t.Fatalf("outcome = %v, want killed", done)
	}
	if e.InEngine() != 0 {
		t.Fatal("later slices still submitted after kill")
	}
}

func TestFeedbackMPLBacksOffWhenSlow(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{})
	d := &FeedbackMPL{Engine: e, TargetRT: 1, Interval: sim.Second}
	d.Start()
	start := d.MPL()
	// Feed slow responses for several intervals.
	for i := 0; i < 5; i++ {
		d.ObserveResponse(10)
		d.ObserveResponse(12)
		s.Run(s.Now().Add(sim.Duration(1100) * sim.Millisecond))
	}
	if d.MPL() >= start {
		t.Fatalf("MPL did not back off: %d -> %d", start, d.MPL())
	}
	// Fast responses with idle CPU: MPL grows again.
	low := d.MPL()
	for i := 0; i < 5; i++ {
		d.ObserveResponse(0.1)
		s.Run(s.Now().Add(sim.Duration(1100) * sim.Millisecond))
	}
	if d.MPL() <= low {
		t.Fatalf("MPL did not recover: %d -> %d", low, d.MPL())
	}
}

func TestUnlimitedDispatcher(t *testing.T) {
	var d Unlimited
	if !d.CanDispatch(nil, 0) || d.Name() == "" {
		t.Fatal("unlimited broken")
	}
	d.OnDispatch(nil)
	d.OnFinish(nil)
}

func TestFCFSStableUnderSkipRepush(t *testing.T) {
	// The scheduler pops items, skips blocked ones, and re-pushes them; the
	// FCFS queue must keep them in original arrival order.
	q := NewFCFS()
	d := NewClassMPL(map[string]int{"bi": 0}) // bi always blocked
	s := NewScheduler(q, d)
	var released []int64
	s.Release = func(it *Item) { released = append(released, it.Req.ID) }
	// Interleave blocked (bi) and free (oltp) arrivals.
	for i := int64(1); i <= 6; i++ {
		class := "oltp"
		if i%2 == 0 {
			class = "bi"
		}
		s.Enqueue(&Item{Req: &workload.Request{ID: i}, Class: class, Enqueued: sim.Time(i)}, sim.Time(i))
	}
	// Free items released in arrival order despite skip/re-push churn.
	want := []int64{1, 3, 5}
	if len(released) != 3 {
		t.Fatalf("released = %v", released)
	}
	for i, id := range want {
		if released[i] != id {
			t.Fatalf("released = %v, want %v", released, want)
		}
	}
	// The blocked ones remain in arrival order.
	d.Limits["bi"] = 10
	s.TryDispatch(sim.Time(100))
	if len(released) != 6 || released[3] != 2 || released[4] != 4 || released[5] != 6 {
		t.Fatalf("after unblock released = %v", released)
	}
}
