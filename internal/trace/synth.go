package trace

import (
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

// Synth builds a deterministic synthetic trace of the consolidation mix the
// paper's introduction runs: a high-rate OLTP class of short transactions, a
// BI class of heavy parallel scans, and a small ad-hoc class with occasional
// monster queries. The mix is sized to hold an 8-core / 16 GB / 800 MBps
// engine around 60% utilization — loaded enough that contention shapes
// response times, not so loaded that queues grow without bound. Benchmarks
// and the divergence tests share this generator so their numbers describe
// the same workload.
func Synth(seed uint64, n int) (Header, []Row) {
	rng := sim.NewRNG(seed)
	classes := []string{"oltp", "bi", "adhoc"}
	rows := make([]Row, 0, n)
	var at float64 // microseconds
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64(100) * 1e6 // ~100 arrivals/sec overall
		row := Row{ID: int64(i + 1), ArriveUS: int64(at), Weight: 1}
		switch {
		case rng.Bool(0.96):
			row.Class = 0
			row.Flags = FlagRead
			// OLTP ships with a percentile deadline, BI with a looser mean
			// bound, ad-hoc best-effort — so replays (and their compressed
			// stand-ins) score SLO attainment out of the box.
			row.SLOKind = uint8(policy.SLOPercentileResponseTime)
			row.SLOTarget = 0.020
			row.SLOPct = 95
			if rng.Bool(0.4) {
				row.Flags = 0 // write txn
				row.Locks = []Lock{{Key: int64(rng.Zipf(500, 1.2)), AtProgress: 0.1, Exclusive: true}}
			}
			row.CPUWork = 0.004 + 0.016*rng.Float64()
			row.IOWork = 0.5 + 2*rng.Float64()
			row.MemMB = 16
			row.Parallelism = 1
			row.Rows = int64(1 + rng.Intn(50))
		case rng.Bool(0.5):
			row.Class = 1
			row.Flags = FlagRead
			row.SLOKind = uint8(policy.SLOAvgResponseTime)
			row.SLOTarget = 15
			row.CPUWork = 0.5 + 1.0*rng.Float64()
			row.IOWork = 50 + 150*rng.Float64()
			row.MemMB = 256 + 256*rng.Float64()
			row.Parallelism = 4
			row.Rows = int64(1000 + rng.Intn(100000))
		default:
			row.Class = 2
			row.Flags = FlagRead
			row.CPUWork = 0.05 + 0.3*rng.Float64()
			row.IOWork = 5 + 40*rng.Float64()
			row.MemMB = 64
			row.Parallelism = 2
			row.Rows = int64(100 + rng.Intn(5000))
			if rng.Bool(0.1) { // monster
				row.CPUWork *= 20
				row.IOWork *= 10
				row.MemMB = 1024
			}
		}
		noise := rng.UnbiasedLogNormal(0.3)
		row.EstCPUSeconds = row.CPUWork * noise
		row.EstIOMB = row.IOWork * noise
		row.EstMemMB = row.MemMB
		row.EstRows = float64(row.Rows) * noise
		row.EstTimerons = row.EstCPUSeconds*1000 + row.EstIOMB*10
		rows = append(rows, row)
	}
	h := Header{Version: Version, DurationUS: int64(at) + 1, Classes: classes}
	return h, rows
}
