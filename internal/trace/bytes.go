package trace

import "math"

// Little-endian byte packing, hand-rolled for the same reason internal/wire
// rolls its own: the codec's hot paths must stay inside the static analyzer's
// allocation-free allowlist, and encoding/binary's package surface includes
// reflective readers the hotpath analyzer would otherwise have to trust. The
// explicit bounds check at the top of each helper lets the compiler elide
// the per-byte checks.

//dbwlm:hotpath
func pu16(b []byte, off int, v uint16) {
	_ = b[off+1]
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
}

//dbwlm:hotpath
func pu32(b []byte, off int, v uint32) {
	_ = b[off+3]
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

//dbwlm:hotpath
func pu64(b []byte, off int, v uint64) {
	_ = b[off+7]
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
	b[off+4] = byte(v >> 32)
	b[off+5] = byte(v >> 40)
	b[off+6] = byte(v >> 48)
	b[off+7] = byte(v >> 56)
}

//dbwlm:hotpath
func pf64(b []byte, off int, v float64) { pu64(b, off, math.Float64bits(v)) }

//dbwlm:hotpath
func gu16(b []byte, off int) uint16 {
	_ = b[off+1]
	return uint16(b[off]) | uint16(b[off+1])<<8
}

//dbwlm:hotpath
func gu32(b []byte, off int) uint32 {
	_ = b[off+3]
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 |
		uint32(b[off+3])<<24
}

//dbwlm:hotpath
func gu64(b []byte, off int) uint64 {
	_ = b[off+7]
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
		uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
		uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}

//dbwlm:hotpath
func gf64(b []byte, off int) float64 { return math.Float64frombits(gu64(b, off)) }
