package trace

import (
	"fmt"
	"io"
)

// Binary trace encoding, in the internal/wire codec style: a magic/version
// header followed by u32 length-prefixed rows, every multi-byte value
// little-endian, every length bounds-checked before use, rows fully
// understood or fully rejected. Decoding is canonical: a row that decodes
// re-encodes to exactly the input bytes (floats move as raw bit patterns, so
// even NaN payloads survive), which is what lets the fuzz target assert
// AppendRow(DecodeRow(x)) == x.

// Magic is the first byte of a binary trace file. 0xD7 is the wire protocol;
// 0xD8 is the trace format.
const Magic = 0xD8

// Fixed-layout sizes. The row's fixed part packs the numeric fields at the
// offsets used by AppendRow/DecodeRow below; the variable part (locks, SQL)
// follows.
const (
	rowFixedLen    = 159
	lockLen        = 17 // key u64 + atProgress f64 + exclusive u8
	headerFixedLen = 12 // magic + version + durationUS u64 + classCount u16

	// MaxRowLen is the largest encodable row; the reader rejects any length
	// prefix beyond it before allocating anything.
	MaxRowLen = rowFixedLen + lockLen*MaxLocks + 4 + MaxSQLLen
)

// Fixed-part field offsets.
const (
	offID          = 0
	offArriveUS    = 8
	offWeight      = 16
	offFPHi        = 24
	offFPLo        = 32
	offEstCPU      = 40
	offEstIO       = 48
	offEstMem      = 56
	offEstRows     = 64
	offEstTimerons = 72
	offCPUWork     = 80
	offIOWork      = 88
	offMemMB       = 96
	offParallelism = 104
	offRows        = 112
	offStateMB     = 120
	offCheckpoint  = 128
	offSLOTarget   = 136
	offSLOPct      = 144
	offClass       = 152
	offLockCount   = 154
	offFlags       = 156
	offPriority    = 157
	offSLOKind     = 158
)

// AppendHeader appends the binary header for h to dst and returns the
// extended slice.
func AppendHeader(dst []byte, h Header) ([]byte, error) {
	if h.Version != Version {
		return dst, fmt.Errorf("trace: cannot encode version %d (format version is %d)", h.Version, Version)
	}
	if len(h.Classes) > MaxClasses {
		return dst, fmt.Errorf("trace: %d classes exceeds %d", len(h.Classes), MaxClasses)
	}
	n := headerFixedLen
	for _, c := range h.Classes {
		if len(c) > MaxClassName {
			return dst, fmt.Errorf("trace: class name of %d bytes exceeds %d", len(c), MaxClassName)
		}
		n += 2 + len(c)
	}
	dst = grow(dst, n)
	off := len(dst)
	dst = dst[:off+n]
	dst[off] = Magic
	dst[off+1] = Version
	pu64(dst, off+2, uint64(h.DurationUS))
	pu16(dst, off+10, uint16(len(h.Classes)))
	off += headerFixedLen
	for _, c := range h.Classes {
		pu16(dst, off, uint16(len(c)))
		copy(dst[off+2:], c)
		off += 2 + len(c)
	}
	return dst, nil
}

// DecodeHeader decodes a binary header from the front of buf, returning the
// header and the number of bytes it occupied. Class names are copied out of
// buf. Errors are hard: bad magic, wrong version, or a truncated class table
// rejects the trace.
func DecodeHeader(buf []byte) (Header, int, error) {
	var h Header
	if len(buf) < headerFixedLen {
		return h, 0, fmt.Errorf("trace: header needs %d bytes, have %d", headerFixedLen, len(buf))
	}
	if buf[0] != Magic {
		return h, 0, fmt.Errorf("trace: bad magic 0x%02x (want 0x%02x)", buf[0], Magic)
	}
	if buf[1] != Version {
		return h, 0, fmt.Errorf("trace: unsupported version %d (want %d)", buf[1], Version)
	}
	h.Version = Version
	h.DurationUS = int64(gu64(buf, 2))
	count := int(gu16(buf, 10))
	off := headerFixedLen
	if count > 0 {
		h.Classes = make([]string, 0, count)
	}
	for i := 0; i < count; i++ {
		if off+2 > len(buf) {
			return Header{}, 0, fmt.Errorf("trace: truncated class table at class %d of %d", i, count)
		}
		n := int(gu16(buf, off))
		off += 2
		if n > MaxClassName {
			return Header{}, 0, fmt.Errorf("trace: class name of %d bytes exceeds %d", n, MaxClassName)
		}
		if off+n > len(buf) {
			return Header{}, 0, fmt.Errorf("trace: truncated class name %d of %d", i, count)
		}
		h.Classes = append(h.Classes, string(buf[off:off+n]))
		off += n
	}
	return h, off, nil
}

// AppendRow appends the binary encoding of row (without the u32 length
// prefix) to dst and returns the extended slice. The scratch-growth idiom
// matches internal/wire: dst is reallocated only while it is below its
// high-water mark.
//
//dbwlm:hotpath
func AppendRow(dst []byte, row *Row) ([]byte, error) {
	if len(row.Locks) > MaxLocks {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return dst, fmt.Errorf("trace: row %d has %d locks, max %d", row.ID, len(row.Locks), MaxLocks)
	}
	if len(row.SQL) > MaxSQLLen {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return dst, fmt.Errorf("trace: row %d SQL of %d bytes exceeds %d", row.ID, len(row.SQL), MaxSQLLen)
	}
	if row.Flags&^uint8(knownFlags) != 0 {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return dst, fmt.Errorf("trace: row %d has unknown flag bits 0x%02x", row.ID, row.Flags)
	}
	n := rowFixedLen + lockLen*len(row.Locks) + 4 + len(row.SQL)
	dst = grow(dst, n)
	off := len(dst)
	dst = dst[:off+n]
	b := dst[off : off+n]
	pu64(b, offID, uint64(row.ID))
	pu64(b, offArriveUS, uint64(row.ArriveUS))
	pf64(b, offWeight, row.Weight)
	pu64(b, offFPHi, row.FPHi)
	pu64(b, offFPLo, row.FPLo)
	pf64(b, offEstCPU, row.EstCPUSeconds)
	pf64(b, offEstIO, row.EstIOMB)
	pf64(b, offEstMem, row.EstMemMB)
	pf64(b, offEstRows, row.EstRows)
	pf64(b, offEstTimerons, row.EstTimerons)
	pf64(b, offCPUWork, row.CPUWork)
	pf64(b, offIOWork, row.IOWork)
	pf64(b, offMemMB, row.MemMB)
	pf64(b, offParallelism, row.Parallelism)
	pu64(b, offRows, uint64(row.Rows))
	pf64(b, offStateMB, row.StateMB)
	pf64(b, offCheckpoint, row.CheckpointEvery)
	pf64(b, offSLOTarget, row.SLOTarget)
	pf64(b, offSLOPct, row.SLOPct)
	pu16(b, offClass, row.Class)
	pu16(b, offLockCount, uint16(len(row.Locks)))
	b[offFlags] = row.Flags
	b[offPriority] = row.Priority
	b[offSLOKind] = row.SLOKind
	p := rowFixedLen
	for i := range row.Locks {
		l := &row.Locks[i]
		pu64(b, p, uint64(l.Key))
		pf64(b, p+8, l.AtProgress)
		if l.Exclusive {
			b[p+16] = 1
		} else {
			b[p+16] = 0
		}
		p += lockLen
	}
	pu32(b, p, uint32(len(row.SQL)))
	copy(b[p+4:], row.SQL)
	return dst, nil
}

// DecodeRow decodes one row from buf, which must hold exactly the row (the
// length prefix already stripped). The decode is strict and canonical: any
// unknown flag bit, out-of-range length, non-boolean lock byte, or trailing
// byte rejects the row.
//
// The decode is allocation-free: row.SQL sub-slices buf, and row.Locks
// reuses the caller's slice capacity (growing it only on the first row that
// exceeds the high-water mark). Both are valid only as long as buf is.
//
//dbwlm:hotpath
func DecodeRow(buf []byte, row *Row) error {
	if len(buf) < rowFixedLen {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: row of %d bytes shorter than fixed part %d", len(buf), rowFixedLen)
	}
	flags := buf[offFlags]
	if flags&^uint8(knownFlags) != 0 {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: unknown flag bits 0x%02x", flags)
	}
	lockCount := int(gu16(buf, offLockCount))
	if lockCount > MaxLocks {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: %d locks exceeds %d", lockCount, MaxLocks)
	}
	p := rowFixedLen + lockLen*lockCount
	if len(buf) < p+4 {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: row of %d bytes truncates %d locks", len(buf), lockCount)
	}
	sqlLen := int(gu32(buf, p))
	if sqlLen > MaxSQLLen {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: SQL of %d bytes exceeds %d", sqlLen, MaxSQLLen)
	}
	if len(buf) != p+4+sqlLen {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: row length %d, want %d", len(buf), p+4+sqlLen)
	}
	row.ID = int64(gu64(buf, offID))
	row.ArriveUS = int64(gu64(buf, offArriveUS))
	row.Weight = gf64(buf, offWeight)
	row.FPHi = gu64(buf, offFPHi)
	row.FPLo = gu64(buf, offFPLo)
	row.EstCPUSeconds = gf64(buf, offEstCPU)
	row.EstIOMB = gf64(buf, offEstIO)
	row.EstMemMB = gf64(buf, offEstMem)
	row.EstRows = gf64(buf, offEstRows)
	row.EstTimerons = gf64(buf, offEstTimerons)
	row.CPUWork = gf64(buf, offCPUWork)
	row.IOWork = gf64(buf, offIOWork)
	row.MemMB = gf64(buf, offMemMB)
	row.Parallelism = gf64(buf, offParallelism)
	row.Rows = int64(gu64(buf, offRows))
	row.StateMB = gf64(buf, offStateMB)
	row.CheckpointEvery = gf64(buf, offCheckpoint)
	row.SLOTarget = gf64(buf, offSLOTarget)
	row.SLOPct = gf64(buf, offSLOPct)
	row.Class = gu16(buf, offClass)
	row.Flags = flags
	row.Priority = buf[offPriority]
	row.SLOKind = buf[offSLOKind]
	row.Locks = growLocks(row.Locks, lockCount)
	q := rowFixedLen
	for i := 0; i < lockCount; i++ {
		x := buf[q+16]
		if x > 1 {
			//dbwlm:nolint hotpath -- error construction on the reject path
			return fmt.Errorf("trace: lock %d exclusive byte 0x%02x not 0 or 1", i, x)
		}
		row.Locks[i] = Lock{
			Key:        int64(gu64(buf, q)),
			AtProgress: gf64(buf, q+8),
			Exclusive:  x == 1,
		}
		q += lockLen
	}
	if sqlLen > 0 {
		row.SQL = buf[p+4 : p+4+sqlLen : p+4+sqlLen]
	} else {
		row.SQL = row.SQL[:0]
	}
	return nil
}

// grow extends buf's length headroom so an append of n more bytes will not
// reallocate, in the wire codec's scratch idiom.
//
//dbwlm:hotpath
func grow(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf
	}
	//dbwlm:nolint hotpath -- cold-buffer growth: runs until the caller's scratch buffer reaches its high-water mark, then never again
	nb := make([]byte, len(buf), len(buf)+n+1024)
	copy(nb, buf)
	return nb
}

// growLocks returns a lock slice of length n, reusing capacity when it can.
//
//dbwlm:hotpath
func growLocks(locks []Lock, n int) []Lock {
	if cap(locks) >= n {
		return locks[:n]
	}
	//dbwlm:nolint hotpath -- cold-buffer growth: runs until the caller's scratch reaches its high-water mark, then never again
	return make([]Lock, n)
}

// Writer streams rows into a binary trace. It buffers internally; Flush
// must be called after the last row to push the tail to the underlying
// writer.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// writerFlushAt is the buffered high-water mark before the writer pushes to
// the underlying io.Writer.
const writerFlushAt = 1 << 16

// NewWriter writes the header for h and returns a row writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	buf, err := AppendHeader(make([]byte, 0, writerFlushAt+MaxRowLen/16), h)
	if err != nil {
		return nil, err
	}
	return &Writer{w: w, buf: buf}, nil
}

// WriteRow appends one length-prefixed row.
func (w *Writer) WriteRow(row *Row) error {
	if w.err != nil {
		return w.err
	}
	lenAt := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0)
	buf, err := AppendRow(w.buf, row)
	if err != nil {
		w.buf = w.buf[:lenAt]
		w.err = err
		return err
	}
	w.buf = buf
	pu32(w.buf, lenAt, uint32(len(w.buf)-lenAt-4))
	if len(w.buf) >= writerFlushAt {
		return w.Flush()
	}
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Reader streams rows out of a binary trace with zero allocations per row in
// steady state: rows decode in place out of the read buffer (SQL sub-slices
// it), and the lock scratch lives in the caller's Row. It implements Source.
type Reader struct {
	src      io.Reader
	h        Header
	buf      []byte
	pos, end int
}

// readerBufLen is the initial read-buffer size; it grows only when a single
// row exceeds it.
const readerBufLen = 1 << 16

// NewReader decodes the header and returns a streaming row reader.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{src: src, buf: make([]byte, readerBufLen)}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// Header implements Source.
func (r *Reader) Header() Header { return r.h }

// readHeader fills enough of the buffer to decode the header.
func (r *Reader) readHeader() error {
	if err := r.ensure(headerFixedLen); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	need := headerFixedLen
	count := int(gu16(r.buf, r.pos+10)) // validated against MaxClasses by size math below
	if r.buf[r.pos] != Magic || r.buf[r.pos+1] != Version || count > MaxClasses {
		// Let DecodeHeader produce the precise error.
		_, _, err := DecodeHeader(r.buf[r.pos:r.end])
		if err == nil {
			err = fmt.Errorf("trace: %d classes exceeds %d", count, MaxClasses)
		}
		return err
	}
	for i := 0; i < count; i++ {
		if err := r.ensure(need + 2); err != nil {
			return fmt.Errorf("trace: truncated class table: %w", err)
		}
		nameLen := int(gu16(r.buf, r.pos+need))
		if nameLen > MaxClassName {
			return fmt.Errorf("trace: class name of %d bytes exceeds %d", nameLen, MaxClassName)
		}
		need += 2 + nameLen
		if err := r.ensure(need); err != nil {
			return fmt.Errorf("trace: truncated class table: %w", err)
		}
	}
	h, n, err := DecodeHeader(r.buf[r.pos : r.pos+need])
	if err != nil {
		return err
	}
	r.h = h
	r.pos += n
	return nil
}

// Next implements Source: it decodes the next row into the caller's Row.
// row.SQL sub-slices the read buffer and row.Locks reuses the Row's own
// capacity; both are valid only until the next call. Returns io.EOF at a
// clean end of trace.
//
//dbwlm:hotpath
func (r *Reader) Next(row *Row) error {
	if err := r.ensure(4); err != nil {
		if err == io.EOF {
			return io.EOF // clean end: no partial length prefix
		}
		return err
	}
	n := int(gu32(r.buf, r.pos))
	if n < rowFixedLen+4 || n > MaxRowLen {
		//dbwlm:nolint hotpath -- error construction on the reject path
		return fmt.Errorf("trace: row length prefix %d out of range [%d, %d]", n, rowFixedLen+4, MaxRowLen)
	}
	if err := r.ensure(4 + n); err != nil {
		if err == io.EOF {
			//dbwlm:nolint hotpath -- error construction on the reject path
			return fmt.Errorf("trace: truncated row: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	if err := DecodeRow(r.buf[r.pos+4:r.pos+4+n], row); err != nil {
		return err
	}
	r.pos += 4 + n
	return nil
}

// ensure makes at least n contiguous bytes available at r.pos, compacting
// and refilling (and, for oversized rows, growing) the buffer as needed. It
// returns io.EOF only when no bytes at all remain.
//
//dbwlm:hotpath
func (r *Reader) ensure(n int) error {
	if r.end-r.pos >= n {
		return nil
	}
	if r.pos > 0 {
		copy(r.buf, r.buf[r.pos:r.end])
		r.end -= r.pos
		r.pos = 0
	}
	if n > len(r.buf) {
		//dbwlm:nolint hotpath -- one-time buffer growth for an oversized row
		nb := make([]byte, n+readerBufLen)
		copy(nb, r.buf[:r.end])
		r.buf = nb
	}
	for r.end < n {
		//dbwlm:nolint hotpath, hotclosure -- buffer refill from the underlying source, amortized over many rows
		m, err := r.src.Read(r.buf[r.end:])
		r.end += m
		if err != nil {
			if err == io.EOF {
				if r.end >= n {
					return nil
				}
				if r.end == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}
