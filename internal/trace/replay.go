package trace

import (
	"errors"
	"fmt"
	"io"
	"math"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

// Engine-direct trace replay and the divergence metric between two replays.
//
// Replay streams a trace straight into a fresh deterministic sim/engine pair
// — no admission control, no queueing — and measures what the workload
// itself does to the engine: per-class arrival rates over time and the
// distribution of response times. That is the measurement the compressor is
// judged against: a compressed trace is acceptable only if replaying it
// produces nearly the same per-class arrival shape and response-time
// histogram as replaying the original (Deep et al.'s representativity
// criterion, evaluated by execution rather than by cluster geometry).

// HistBuckets is the number of log2 response-time buckets in a class
// histogram. Bucket 0 holds responses <= histBase seconds; each later bucket
// doubles the bound; the last bucket is open-ended.
const HistBuckets = 24

// histBase is the upper bound of histogram bucket 0, in seconds.
const histBase = 0.001

// histBucket maps a response time in seconds to its bucket.
func histBucket(s float64) int {
	if !(s > histBase) { // also catches NaN
		return 0
	}
	l := math.Log2(s / histBase)
	if l >= HistBuckets-1 { // also bounds the int conversion below
		return HistBuckets - 1
	}
	return 1 + int(l)
}

// ReplayConfig parameterizes an engine-direct replay.
type ReplayConfig struct {
	// Engine is the engine sizing; zero fields take engine defaults.
	Engine engine.Config
	// Seed seeds the simulator RNG.
	Seed uint64
	// TimeScale multiplies arrival offsets, exactly as in Gen. A compressed
	// trace replayed at TimeScale = rows/totalWeight offers the engine the
	// same arrival *rate* as the original while finishing in a fraction of
	// the virtual (and wall) time.
	TimeScale float64
	// DrainUS is how long past the last arrival the engine runs to let
	// in-flight queries finish. Default 120 s.
	DrainUS int64
	// Windows is the number of equal time slices the arrival-rate curve is
	// split into. Default 6, matching the compressor's default strata so a
	// stratified compression's weight conservation shows up as near-zero
	// rate divergence.
	Windows int
}

// ClassStats is one class's replay measurement. All counts are weighted: a
// compressed row with Weight 37 contributes 37 to every bucket it lands in,
// which is what makes full and compressed replays directly comparable.
type ClassStats struct {
	Class string
	// Arrivals and Completed are weighted totals; Failed counts kills and
	// deadlocks.
	Arrivals  float64
	Completed float64
	Failed    float64
	// RespSum is the weighted sum of response seconds over completions.
	RespSum float64
	// Windows is the weighted arrival count per time slice of the replayed
	// duration — the arrival-rate curve.
	Windows []float64
	// Hist is the weighted response-time histogram (log2 buckets).
	Hist [HistBuckets]float64
	// SLOTotal and SLOMissed score the trace's recorded response-time
	// objectives offline: every finished row carrying an avg- or
	// percentile-response-time SLO adds its weight to SLOTotal, and to
	// SLOMissed when the response exceeded the row's target (kills and
	// deadlocks always miss). Best-effort, velocity, and throughput-floor
	// rows do not score. Compressed replays score the same way — a weight-37
	// representative that misses charges 37 misses — so full and compressed
	// attainment are directly comparable, like every other column here.
	SLOTotal  float64
	SLOMissed float64
}

// MeanResp reports the weighted mean response time in seconds.
func (c *ClassStats) MeanResp() float64 {
	if c.Completed <= 0 {
		return 0
	}
	return c.RespSum / c.Completed
}

// Attainment reports the weighted fraction of SLO-bearing rows that met
// their recorded objective, in [0, 1]. Classes with no scorable rows report
// 1 (nothing asked for, nothing missed).
func (c *ClassStats) Attainment() float64 {
	if c.SLOTotal <= 0 {
		return 1
	}
	return 1 - c.SLOMissed/c.SLOTotal
}

// SLODeadline extracts the row's response-time objective in seconds; 0 means
// the row does not score (best-effort rows, and the velocity and
// throughput-floor kinds, whose targets are not response bounds). Replay and
// the wlmload trace driver share this so offline and live scoring agree on
// which rows carry a deadline.
func (r *Row) SLODeadline() float64 {
	k := policy.SLOKind(r.SLOKind)
	if (k == policy.SLOAvgResponseTime || k == policy.SLOPercentileResponseTime) && r.SLOTarget > 0 {
		return r.SLOTarget
	}
	return 0
}

// ReplayStats is the result of one engine-direct replay.
type ReplayStats struct {
	// DurationUS is the replayed duration in scaled virtual microseconds.
	DurationUS int64
	// Rows is the number of trace rows submitted; TotalWeight their
	// weighted total.
	Rows        int64
	TotalWeight float64
	Classes     []ClassStats
}

// Replay streams src through a fresh engine and measures it. The run is
// fully deterministic for a given (trace, config).
func Replay(src Source, cfg ReplayConfig) (*ReplayStats, error) {
	s := sim.New(cfg.Seed)
	return replayWith(src, cfg, s, engine.New(s, cfg.Engine))
}

// replayWith is Replay's body over a caller-supplied sim/engine pair. The
// pair must be freshly constructed or freshly Reset with (cfg.Seed,
// cfg.Engine) — ReplayMany relies on Reset-equals-fresh to reuse pooled
// pairs across runs with bit-identical results.
func replayWith(src Source, cfg ReplayConfig, s *sim.Simulator, eng *engine.Engine) (*ReplayStats, error) {
	h := src.Header()
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	windows := cfg.Windows
	if windows <= 0 {
		windows = 6
	}
	drain := cfg.DrainUS
	if drain <= 0 {
		drain = 120_000_000
	}
	durUS := int64(float64(h.DurationUS) * scale)
	st := &ReplayStats{DurationUS: durUS}
	classAt := func(idx uint16) *ClassStats {
		for int(idx) >= len(st.Classes) {
			c := ClassStats{Class: h.ClassName(uint16(len(st.Classes)))}
			c.Windows = make([]float64, windows)
			st.Classes = append(st.Classes, c)
		}
		return &st.Classes[idx]
	}
	// The class table is known up front; rows may still reference indexes
	// beyond it (classAt grows on demand).
	for i := range h.Classes {
		classAt(uint16(i))
	}

	var row Row
	var last sim.Time
	for {
		if err := src.Next(&row); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		var at sim.Time
		if scale != 1 {
			at = sim.Time(float64(row.ArriveUS) * scale)
		} else {
			at = sim.Time(row.ArriveUS)
		}
		if at > s.Now() {
			s.Run(at)
		}
		if at < last {
			return nil, fmt.Errorf("trace: rows not sorted: arrival %dus after %dus", row.ArriveUS, int64(last))
		}
		last = at
		w := row.Weight
		if w <= 0 {
			w = 1
		}
		c := classAt(row.Class)
		c.Arrivals += w
		wi := 0
		if durUS > 0 {
			wi = int(int64(at) * int64(windows) / durUS)
			if wi >= windows {
				wi = windows - 1
			}
			if wi < 0 {
				wi = 0
			}
		}
		c.Windows[wi] += w
		st.Rows++
		st.TotalWeight += w
		arrive := at
		weight := w
		ci := row.Class
		deadline := row.SLODeadline()
		eng.Submit(row.Spec(), 1, func(q *engine.Query, oc engine.Outcome) {
			cs := classAt(ci)
			if oc == engine.OutcomeCompleted {
				resp := s.Now().Sub(arrive).Seconds()
				cs.Completed += weight
				cs.RespSum += weight * resp
				cs.Hist[histBucket(resp)] += weight
				if deadline > 0 {
					cs.SLOTotal += weight
					if resp > deadline {
						cs.SLOMissed += weight
					}
				}
			} else {
				cs.Failed += weight
				if deadline > 0 {
					cs.SLOTotal += weight
					cs.SLOMissed += weight
				}
			}
		})
	}
	s.Run(last.Add(sim.Duration(drain)))
	return st, nil
}

// Divergence quantifies how far apart two replays are. Every component is a
// total-variation distance in [0, 1]: 0 means identical normalized shapes,
// 1 means disjoint.
type Divergence struct {
	PerClass []ClassDivergence
	// RateTV and CostTV are the worst per-class arrival-rate and response-
	// histogram distances; Max is the worst of everything.
	RateTV float64
	CostTV float64
	Max    float64
}

// ClassDivergence is the per-class breakdown.
type ClassDivergence struct {
	Class string
	// RateTV compares the arrival-rate curves (weighted arrivals per time
	// window); CostTV compares the response-time histograms.
	RateTV float64
	CostTV float64
}

// smoothHist convolves a histogram with a narrow triangular kernel
// ([1/4, 1/2, 1/4], edges renormalized by clamping into range). Both sides of
// a divergence comparison are smoothed identically, so the metric stays an
// honest total-variation distance — a shifted or reshaped distribution still
// registers — but a compressed replay whose few weighted atoms land one log2
// bucket away from the full replay's spread is no longer charged as if it
// were disjoint. Without this, the metric punishes finite-sample
// discreteness, which is inherent to any compression, rather than
// infidelity, which is not.
func smoothHist(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		if v == 0 {
			continue
		}
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(h)-1 {
			hi = len(h) - 1
		}
		// At the edges the clamped share stacks onto the edge bucket itself,
		// conserving total mass.
		out[lo] += v / 4
		out[i] += v / 2
		out[hi] += v / 4
	}
	return out
}

// tvDist is the total-variation distance between two non-negative vectors
// after normalizing each to sum 1. Two empty vectors are identical; one
// empty vector against a non-empty one is maximally distant.
func tvDist(p, q []float64) float64 {
	var sp, sq float64
	for _, v := range p {
		sp += v
	}
	for _, v := range q {
		sq += v
	}
	if sp <= 0 && sq <= 0 {
		return 0
	}
	if sp <= 0 || sq <= 0 {
		return 1
	}
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	var d float64
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(p) {
			a = p[i] / sp
		}
		if i < len(q) {
			b = q[i] / sq
		}
		d += math.Abs(a - b)
	}
	return d / 2
}

// Diverge compares two replays class by class (aligned by class name).
func Diverge(full, comp *ReplayStats) Divergence {
	byName := make(map[string]*ClassStats, len(comp.Classes))
	for i := range comp.Classes {
		byName[comp.Classes[i].Class] = &comp.Classes[i]
	}
	var div Divergence
	var empty ClassStats
	seen := make(map[string]bool, len(full.Classes))
	add := func(name string, f, c *ClassStats) {
		cd := ClassDivergence{
			Class:  name,
			RateTV: tvDist(f.Windows, c.Windows),
			CostTV: tvDist(smoothHist(f.Hist[:]), smoothHist(c.Hist[:])),
		}
		div.PerClass = append(div.PerClass, cd)
		if cd.RateTV > div.RateTV {
			div.RateTV = cd.RateTV
		}
		if cd.CostTV > div.CostTV {
			div.CostTV = cd.CostTV
		}
	}
	for i := range full.Classes {
		f := &full.Classes[i]
		seen[f.Class] = true
		c := byName[f.Class]
		if c == nil {
			c = &empty
		}
		add(f.Class, f, c)
	}
	for i := range comp.Classes {
		c := &comp.Classes[i]
		if !seen[c.Class] {
			add(c.Class, &empty, c)
		}
	}
	if div.RateTV > div.CostTV {
		div.Max = div.RateTV
	} else {
		div.Max = div.CostTV
	}
	return div
}
