package trace

import (
	"math"
	"sort"

	"dbwlm/internal/admission"
	"dbwlm/internal/experiments"
	"dbwlm/internal/learn"
	"dbwlm/internal/sim"
)

// Workload compression: reduce a trace to a small weighted representative
// subset by clustering rows in the admission feature space (Deep et al.,
// "Comprehensive and Efficient Workload Compression").
//
// Rows are grouped by (class, time stratum) and each group is compressed by
// the same target ratio: its rows are embedded as 5-D admission.FeatureVec
// points (the same log-scaled cost features the live predictors use),
// normalized, k-means++-clustered with a deterministic seeded RNG, and each
// cluster contributes one representative — the *real trace row* nearest its
// centroid, found with the internal/learn k-d tree, never a synthesized
// point — weighted by the summed weight of the cluster's members.
//
// Compressing every group by one uniform ratio is what makes the compressed
// trace replayable as a what-if stand-in: replayed at TimeScale = 1/ratio it
// offers the engine the same per-class arrival rate as the original (so
// contention is comparable) in a fraction of the virtual time, and because
// group weights are conserved exactly, the weighted per-window arrival curve
// matches the original's by construction. What remains to diverge — and what
// the Replay/Diverge pair measures — is the response-time distribution.
//
// Compression is deterministic: the same (rows, seed, config) produce
// byte-identical output regardless of MaxWorkers, which a test pins. Groups
// are independent — each clusters with its own label-forked RNG (Fork reads
// but never advances the parent, so the fork sequence does not depend on
// execution order) and appends only to its own result slot — so the
// per-group work fans out across a GOMAXPROCS-bounded pool and the results
// are stitched back in class-major, stratum-minor order, exactly the
// sequential iteration order.

// CompressConfig parameterizes Compress.
type CompressConfig struct {
	// Ratio is the target compression ratio (original rows per
	// representative). Every (class, stratum) group is reduced by this
	// factor, never below one representative. Default 16.
	Ratio float64
	// Strata is the number of equal time slices clustering is confined to;
	// it fixes the resolution at which the compressed trace preserves the
	// arrival-rate curve. Default 6 (matching the replay divergence
	// windows' default). Coarser strata mean larger groups, which gives
	// k-means room to separate heavy rows from typical ones even in small
	// classes; finer strata pin the rate curve tighter but collapse small
	// classes to one representative per slice.
	Strata int
	// Iters is the k-means iteration cap; 0 takes learn's default.
	Iters int
	// Seed seeds the clustering RNG.
	Seed uint64
	// MaxWorkers caps the per-group clustering fan-out: 0 uses the
	// GOMAXPROCS-bounded pool, 1 forces a fully sequential run. Output is
	// byte-identical either way.
	MaxWorkers int
}

// compressJob is one (class, stratum) group scheduled for clustering.
type compressJob struct {
	members []int
	k       int
	rng     *sim.RNG
}

// Compress reduces rows (one whole trace, sorted by arrival) to a weighted
// representative subset. The input is not modified; returned rows own their
// buffers.
func Compress(h Header, rows []Row, cfg CompressConfig) []Row {
	ratio := cfg.Ratio
	if ratio <= 1 {
		ratio = 16
	}
	strata := cfg.Strata
	if strata <= 0 {
		strata = 6
	}
	rng := sim.NewRNG(cfg.Seed)

	maxClass := -1
	for i := range rows {
		if int(rows[i].Class) > maxClass {
			maxClass = int(rows[i].Class)
		}
	}

	// Single-pass bucketing: size each (class, stratum) bucket, then slice
	// one shared index arena so the whole partition costs two passes and two
	// allocations instead of the old classes×strata full scans. Buckets fill
	// in ascending row order, matching the order the scans produced.
	nGroups := (maxClass + 1) * strata
	if nGroups <= 0 {
		return nil
	}
	counts := make([]int, nGroups)
	for i := range rows {
		counts[int(rows[i].Class)*strata+stratumOf(rows[i].ArriveUS, h.DurationUS, strata)]++
	}
	arena := make([]int, len(rows))
	buckets := make([][]int, nGroups)
	off := 0
	for g, c := range counts {
		buckets[g] = arena[off : off : off+c]
		off += c
	}
	for i := range rows {
		g := int(rows[i].Class)*strata + stratumOf(rows[i].ArriveUS, h.DurationUS, strata)
		buckets[g] = append(buckets[g], i)
	}

	// Collect non-empty groups in class-major, stratum-minor order, forking
	// each group's RNG up front so clustering can run in any order.
	jobs := make([]compressJob, 0, nGroups)
	for ci := 0; ci <= maxClass; ci++ {
		for si := 0; si < strata; si++ {
			members := buckets[ci*strata+si]
			if len(members) == 0 {
				continue
			}
			k := int(math.Round(float64(len(members)) / ratio))
			if k < 1 {
				k = 1
			}
			label := uint64(ci)*uint64(strata+1) + uint64(si) + 1
			jobs = append(jobs, compressJob{members: members, k: k, rng: rng.Fork(label)})
		}
	}

	groupReps := experiments.RunIndexedBounded(len(jobs), cfg.MaxWorkers, func(i int) []Row {
		j := jobs[i]
		return compressGroup(rows, j.members, j.k, cfg.Iters, j.rng)
	})
	var total int
	for _, reps := range groupReps {
		total += len(reps)
	}
	out := make([]Row, 0, total)
	for _, reps := range groupReps {
		out = append(out, reps...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].ArriveUS != out[b].ArriveUS {
			return out[a].ArriveUS < out[b].ArriveUS
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// stratumOf maps an arrival offset to its time stratum.
func stratumOf(arriveUS, durationUS int64, strata int) int {
	if durationUS <= 0 {
		return 0
	}
	s := int(arriveUS * int64(strata) / durationUS)
	if s < 0 {
		s = 0
	}
	if s >= strata {
		s = strata - 1
	}
	return s
}

// TotalWeight sums row weights (non-positive weights count as 1), the
// denominator of the rate-preserving replay time scale.
func TotalWeight(rows []Row) float64 {
	var w float64
	for i := range rows {
		if rows[i].Weight > 0 {
			w += rows[i].Weight
		} else {
			w++
		}
	}
	return w
}

// RateScale returns the replay TimeScale at which comp offers the same
// weighted arrival rate as the trace it was compressed from: representatives
// per unit of compressed time == original rows per unit of recorded time.
func RateScale(comp []Row) float64 {
	tw := TotalWeight(comp)
	if tw <= 0 {
		return 1
	}
	return float64(len(comp)) / tw
}

// compressGroup clusters one (class, stratum) group down to k weighted
// representatives (deep copies of real input rows). It runs on the flat
// learn kernels: one feature buffer for the whole group, normalized and
// clustered without per-row slice headers.
func compressGroup(rows []Row, members []int, k, iters int, rng *sim.RNG) []Row {
	if len(members) <= k {
		reps := make([]Row, 0, len(members))
		for _, i := range members {
			r := rows[i]
			r.Retain()
			if r.Weight <= 0 {
				r.Weight = 1
			}
			reps = append(reps, r)
		}
		return reps
	}

	// Embed in the admission feature space and normalize per dimension.
	const dims = admission.NumFeatures
	flat := make([]float64, len(members)*dims)
	var fv admission.FeatureVec
	for mi, i := range members {
		r := &rows[i]
		admission.FeaturesFrom(r.EstTimerons, r.EstRows, r.EstMemMB, r.EstIOMB,
			r.Flags&FlagRead != 0, &fv)
		copy(flat[mi*dims:(mi+1)*dims], fv[:])
	}
	norm := learn.NormalizeFlat(flat, len(members), dims)
	km := learn.KMeansFlat(norm, len(members), dims, k, iters, rng)

	// Snap each centroid onto the nearest real row via the k-d tree, then
	// pour every member's weight into its cluster's representative.
	samples := make([]learn.RegSample, len(members))
	for mi := range members {
		samples[mi] = learn.RegSample{Features: norm[mi*dims : (mi+1)*dims], Value: float64(mi)}
	}
	knn := learn.TrainKNNIndexed(samples, 1)
	repOf := make([]int, km.K()) // cluster -> member index of representative
	for j := range repOf {
		repOf[j] = knn.Nearest(km.Centroid(j))
	}
	repWeight := make([]float64, len(members))
	for mi := range members {
		w := rows[members[mi]].Weight
		if w <= 0 {
			w = 1
		}
		repWeight[repOf[km.Assignments[mi]]] += w
	}
	reps := make([]Row, 0, k)
	for mi := range members {
		if repWeight[mi] <= 0 {
			continue
		}
		r := rows[members[mi]]
		r.Retain()
		r.Weight = repWeight[mi]
		reps = append(reps, r)
	}
	return reps
}
