package trace

import (
	"bytes"
	"io"
	"testing"
)

// benchTrace builds an in-memory binary trace with a realistic field mix:
// every row carries estimates and true work, a third carry SQL, a fifth
// carry locks.
func benchTrace(tb testing.TB, n int) (header []byte, rowBytes []byte) {
	h := Header{Version: Version, DurationUS: int64(n) * 1000, Classes: []string{"oltp", "bi", "adhoc"}}
	hdr, err := AppendHeader(nil, h)
	if err != nil {
		tb.Fatal(err)
	}
	var buf []byte
	sqls := [][]byte{
		[]byte("SELECT balance FROM accounts WHERE id = 1234567"),
		[]byte("UPDATE accounts SET balance = balance - 10 WHERE id = 42"),
		[]byte("SELECT region, SUM(amount) FROM sales JOIN stores ON sales.store = stores.id GROUP BY region ORDER BY 2 DESC LIMIT 100"),
	}
	for i := 0; i < n; i++ {
		row := Row{
			ID: int64(i), ArriveUS: int64(i) * 1000, Weight: 1,
			Class: uint16(i % 3), Priority: uint8(i % 3),
			FPHi: uint64(i) * 0x9E3779B97F4A7C15, FPLo: uint64(i),
			EstCPUSeconds: 0.01, EstIOMB: 2, EstMemMB: 64, EstRows: 100, EstTimerons: 30,
			CPUWork: 0.011, IOWork: 2.2, MemMB: 64, Parallelism: 1, Rows: 100,
		}
		if i%3 == 0 {
			row.SQL = sqls[(i/3)%len(sqls)]
		}
		if i%5 == 0 {
			row.Locks = []Lock{{Key: int64(i % 97), AtProgress: 0.2, Exclusive: true}}
		}
		at := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf, err = AppendRow(buf, &row)
		if err != nil {
			tb.Fatal(err)
		}
		pu32(buf, at, uint32(len(buf)-at-4))
	}
	return hdr, buf
}

// loopReader serves the row region forever, so a streaming benchmark can
// decode b.N rows without reconstructing readers (which would charge setup
// allocations to the per-row path).
type loopReader struct {
	data []byte
	pos  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.pos == len(l.data) {
		l.pos = 0
	}
	n := copy(p, l.data[l.pos:])
	l.pos += n
	return n, nil
}

// BenchmarkTraceStreamDecode measures the full streaming path — buffered
// reads, length framing, row decode — per row. The bench-trace gate requires
// >= 1M rows/sec (ns/op <= 1000) at 0 allocs/op.
func BenchmarkTraceStreamDecode(b *testing.B) {
	hdr, rows := benchTrace(b, 4096)
	r, err := NewReader(io.MultiReader(bytes.NewReader(hdr), &loopReader{data: rows}))
	if err != nil {
		b.Fatal(err)
	}
	var row Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Next(&row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDecodeRow isolates the row codec itself (no IO layer).
func BenchmarkTraceDecodeRow(b *testing.B) {
	_, rows := benchTrace(b, 512)
	// Slice the individual row encodings out of the framed stream.
	var encs [][]byte
	for off := 0; off < len(rows); {
		n := int(gu32(rows, off))
		encs = append(encs, rows[off+4:off+4+n])
		off += 4 + n
	}
	var row Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeRow(encs[i%len(encs)], &row); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamDecodeZeroAlloc pins the zero-allocations contract the benchmark
// gate relies on: once the reader and row scratch are warm, Next never
// allocates.
func TestStreamDecodeZeroAlloc(t *testing.T) {
	hdr, rows := benchTrace(t, 1024)
	r, err := NewReader(io.MultiReader(bytes.NewReader(hdr), &loopReader{data: rows}))
	if err != nil {
		t.Fatal(err)
	}
	var row Row
	// Warm the lock scratch and the read buffer.
	for i := 0; i < 2048; i++ {
		if err := r.Next(&row); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(4096, func() {
		if err := r.Next(&row); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("streaming decode allocates %.2f allocs/row, want 0", allocs)
	}
}
