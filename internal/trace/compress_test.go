package trace

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"
)

// encodeAll renders rows to canonical binary bytes for byte-identity checks.
func encodeAll(t *testing.T, rows []Row) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i := range rows {
		buf, err = AppendRow(buf, &rows[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestCompressDeterministic(t *testing.T) {
	h, rows := Synth(7, 6000)
	cfg := CompressConfig{Ratio: 16, Strata: 6, Seed: 11}
	a := Compress(h, rows, cfg)
	b := Compress(h, rows, cfg)
	if !bytes.Equal(encodeAll(t, a), encodeAll(t, b)) {
		t.Fatal("same trace + seed produced different compressed output")
	}
	// A different seed is allowed to (and here does) pick different
	// representatives — determinism is per (trace, seed).
	c := Compress(h, rows, CompressConfig{Ratio: 16, Strata: 6, Seed: 12})
	if bytes.Equal(encodeAll(t, a), encodeAll(t, c)) {
		t.Log("note: different seeds produced identical output (legal, surprising)")
	}
}

// TestCompressParallelMatchesSequential pins the fan-out contract: the
// GOMAXPROCS-pooled per-group clustering produces byte-identical output to a
// forced-sequential run, on a multi-worker scheduler.
func TestCompressParallelMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force real fan-out even on 1-CPU hosts
	defer runtime.GOMAXPROCS(prev)

	h, rows := Synth(9, 9000)
	for _, cfg := range []CompressConfig{
		{Ratio: 16, Strata: 6, Seed: 11},
		{Ratio: 8, Strata: 3, Seed: 42},
		{Ratio: 64, Strata: 12, Seed: 5},
	} {
		seqCfg := cfg
		seqCfg.MaxWorkers = 1
		seq := encodeAll(t, Compress(h, rows, seqCfg))
		for _, workers := range []int{0, 2, 3} {
			parCfg := cfg
			parCfg.MaxWorkers = workers
			par := encodeAll(t, Compress(h, rows, parCfg))
			if !bytes.Equal(seq, par) {
				t.Fatalf("cfg %+v: MaxWorkers=%d output differs from sequential", cfg, workers)
			}
		}
	}
}

func TestCompressShape(t *testing.T) {
	h, rows := Synth(3, 6000)
	cfg := CompressConfig{Ratio: 16, Strata: 6, Seed: 1}
	comp := Compress(h, rows, cfg)

	// The achieved ratio tracks the target: equal-ratio groups can only
	// round up to 1 representative for tiny groups, so the bound is loose
	// on the low side but the target must be roughly met overall.
	got := float64(len(rows)) / float64(len(comp))
	if got < 8 || got > 20 {
		t.Fatalf("achieved ratio %.1f, want near the target 16", got)
	}
	if len(comp) < 3 {
		t.Fatalf("compressed to %d rows, want at least one per class", len(comp))
	}

	// Total weight is conserved exactly per class (sums of small integers).
	fullW := map[uint16]float64{}
	for i := range rows {
		fullW[rows[i].Class]++
	}
	compW := map[uint16]float64{}
	for i := range comp {
		compW[comp[i].Class] += comp[i].Weight
		if comp[i].Weight < 1 {
			t.Fatalf("representative with weight %v", comp[i].Weight)
		}
	}
	if !reflect.DeepEqual(fullW, compW) {
		t.Fatalf("weight not conserved: full %v comp %v", fullW, compW)
	}

	// Output is sorted and every representative is a real input row.
	byID := map[int64][]byte{}
	for i := range rows {
		byID[rows[i].ID] = encodeAll(t, rows[i:i+1])
	}
	for i := range comp {
		if i > 0 && comp[i].ArriveUS < comp[i-1].ArriveUS {
			t.Fatal("compressed rows not sorted by arrival")
		}
		orig, ok := byID[comp[i].ID]
		if !ok {
			t.Fatalf("representative ID %d not in input", comp[i].ID)
		}
		norm := comp[i]
		norm.Weight = 1
		if !bytes.Equal(encodeAll(t, []Row{norm}), orig) {
			t.Fatalf("representative ID %d differs from its source row", comp[i].ID)
		}
	}

	// Tiny groups pass through unchanged: with 20 rows spread over 6
	// strata, most (class, stratum) groups are at or below their rounded
	// target of 1–2 representatives, and weight must still be conserved.
	small := Compress(h, rows[:20], CompressConfig{Ratio: 16, Strata: 6, Seed: 1})
	if TotalWeight(small) != 20 {
		t.Fatalf("pass-through weight %v, want 20", TotalWeight(small))
	}

	// RateScale of the compressed trace is 1/achieved-ratio.
	if s := RateScale(comp); math.Abs(s-float64(len(comp))/float64(len(rows))) > 1e-12 {
		t.Fatalf("RateScale %v, want %v", s, float64(len(comp))/float64(len(rows)))
	}
}

func TestHistBucket(t *testing.T) {
	cases := []struct {
		s    float64
		want int
	}{
		{0, 0}, {0.0005, 0}, {0.001, 0}, {0.0011, 1}, {0.0019, 1}, {0.0025, 2},
		{1, 10}, {math.Inf(1), HistBuckets - 1}, {math.NaN(), 0}, {-1, 0},
	}
	for _, c := range cases {
		if got := histBucket(c.s); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestSmoothHist(t *testing.T) {
	// Interior atom spreads [1/4, 1/2, 1/4]; edges fold the clamped share
	// back onto the edge bucket; total mass is conserved.
	got := smoothHist([]float64{4, 0, 0, 4})
	want := []float64{3, 1, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("smoothHist edge fold: got %v want %v", got, want)
	}
	got = smoothHist([]float64{0, 8, 0, 0})
	want = []float64{2, 4, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("smoothHist interior: got %v want %v", got, want)
	}
	// A one-bucket offset is forgiven much of its distance; a distant shift
	// is not.
	near := tvDist(smoothHist([]float64{0, 1, 0, 0, 0, 0}), smoothHist([]float64{0, 0, 1, 0, 0, 0}))
	far := tvDist(smoothHist([]float64{0, 1, 0, 0, 0, 0}), smoothHist([]float64{0, 0, 0, 0, 1, 0}))
	if near >= far || far != 1 {
		t.Fatalf("smoothed TV: near=%v far=%v", near, far)
	}
}

func TestTVDist(t *testing.T) {
	if d := tvDist([]float64{1, 1}, []float64{2, 2}); d != 0 {
		t.Fatalf("identical shapes: %v", d)
	}
	if d := tvDist([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("disjoint shapes: %v", d)
	}
	if d := tvDist(nil, nil); d != 0 {
		t.Fatalf("both empty: %v", d)
	}
	if d := tvDist([]float64{1}, nil); d != 1 {
		t.Fatalf("one empty: %v", d)
	}
	if d := tvDist([]float64{3, 1}, []float64{1, 1}); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("partial overlap: %v", d)
	}
}
