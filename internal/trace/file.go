package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// File-level helpers shared by the CLI tools: open a trace of either
// encoding (sniffed by magic byte), and write one (encoding picked by file
// extension).

// sniffReader wraps a reader, prepending bytes that were consumed to sniff.
type sniffReader struct {
	head []byte
	r    io.Reader
}

func (s *sniffReader) Read(p []byte) (int, error) {
	if len(s.head) > 0 {
		n := copy(p, s.head)
		s.head = s.head[n:]
		return n, nil
	}
	return s.r.Read(p)
}

// NewSourceFrom sniffs the first byte of r and returns the matching decoder:
// the binary magic selects the binary reader, anything else the JSONL
// reader.
func NewSourceFrom(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty input")
		}
		return nil, err
	}
	if first[0] == Magic {
		return NewReader(br)
	}
	return NewJSONLReader(br)
}

// OpenFile opens path and returns a streaming Source for it. The caller
// closes the returned closer when done.
func OpenFile(path string) (Source, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	src, err := NewSourceFrom(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f, nil
}

// JSONLPath reports whether path names a JSONL trace by extension (.jsonl or
// .json); anything else is written as binary.
func JSONLPath(path string) bool {
	return strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json")
}

// NewWriterFor returns a RowWriter for w in the encoding implied by path.
func NewWriterFor(w io.Writer, path string, h Header) (RowWriter, error) {
	if JSONLPath(path) {
		return NewJSONLWriter(w, h)
	}
	return NewWriter(w, h)
}

// WriteFile writes a whole trace to path, encoding picked by extension.
func WriteFile(path string, h Header, rows []Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := NewWriterFor(f, path, h)
	if err != nil {
		f.Close()
		return err
	}
	for i := range rows {
		if err := w.WriteRow(&rows[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
