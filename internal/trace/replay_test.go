package trace

import (
	"reflect"
	"testing"

	"dbwlm/internal/engine"
)

// replayCfg is the shared engine sizing for the divergence tests: a mid-size
// box under real but not pathological load from the synthetic mix.
func replayCfg(scale float64) ReplayConfig {
	return ReplayConfig{
		Engine:    engine.Config{Cores: 8, MemoryMB: 16384, IOMBps: 800},
		Seed:      42,
		TimeScale: scale,
	}
}

func TestReplayDeterministic(t *testing.T) {
	h, rows := Synth(5, 4000)
	src := &SliceSource{H: h, Rows: rows}
	a, err := Replay(src, replayCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	b, err := Replay(src, replayCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two replays of the same trace differ")
	}
	if a.Rows != 4000 || a.TotalWeight != 4000 {
		t.Fatalf("replay saw %d rows weight %v", a.Rows, a.TotalWeight)
	}
	var done float64
	for i := range a.Classes {
		done += a.Classes[i].Completed + a.Classes[i].Failed
	}
	if done < 3990 {
		t.Fatalf("only %v of 4000 queries finished within the drain window", done)
	}
}

// TestCompressedReplayDivergence is the core contract: compressing a trace
// and replaying it at the rate-preserving time scale must reproduce the full
// replay's per-class arrival shape and response-time histogram within the
// bound the bench gate enforces.
func TestCompressedReplayDivergence(t *testing.T) {
	const bound = 0.30
	h, rows := Synth(9, 8000)
	full, err := Replay(&SliceSource{H: h, Rows: rows}, replayCfg(1))
	if err != nil {
		t.Fatal(err)
	}

	comp := Compress(h, rows, CompressConfig{Ratio: 16, Strata: 6, Seed: 1})
	if ratio := TotalWeight(comp) / float64(len(comp)); ratio < 10 {
		t.Fatalf("compression ratio %.1f, want >= 10 for the what-if speedup", ratio)
	}
	// Rate-preserving scale: the compressed trace offers the engine the same
	// arrivals/sec as the original, in proportionally less virtual time.
	scale := RateScale(comp)
	cs, err := Replay(&SliceSource{H: h, Rows: comp}, replayCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if cs.TotalWeight != full.TotalWeight {
		t.Fatalf("weight not conserved through replay: %v vs %v", cs.TotalWeight, full.TotalWeight)
	}

	div := Diverge(full, cs)
	for _, cd := range div.PerClass {
		t.Logf("class %-8s rateTV=%.3f costTV=%.3f", cd.Class, cd.RateTV, cd.CostTV)
	}
	if div.Max > bound {
		t.Fatalf("divergence %.3f exceeds bound %.2f", div.Max, bound)
	}
	if div.Max == 0 {
		t.Fatal("zero divergence from a 16x-compressed replay is implausible; metric is broken")
	}
}

func TestReplayRejectsUnsortedRows(t *testing.T) {
	h := Header{Version: Version, DurationUS: 1000, Classes: []string{"a"}}
	rows := []Row{
		{ID: 1, ArriveUS: 500, Weight: 1},
		{ID: 2, ArriveUS: 100, Weight: 1},
	}
	if _, err := Replay(&SliceSource{H: h, Rows: rows}, replayCfg(1)); err == nil {
		t.Fatal("unsorted trace replayed without error")
	}
}

// TestReplaySLOScoring pins the offline attainment semantics: response-time
// SLO kinds score against the row's recorded target, weights multiply both
// sides of the ratio, and best-effort / non-response kinds stay out of the
// denominator.
func TestReplaySLOScoring(t *testing.T) {
	h := Header{Version: Version, DurationUS: 40_000_000, Classes: []string{"a"}}
	// Arrivals 10s apart on an 8-core engine: zero contention, so response
	// time is essentially the row's own work and hit/miss is deterministic.
	rows := []Row{
		// ~0.1s of work against a 10s average-RT target: a hit.
		{ID: 1, ArriveUS: 0, Weight: 1, CPUWork: 0.1, Parallelism: 1,
			SLOKind: 1 /* avg-response-time */, SLOTarget: 10},
		// ~0.5s of work against a 10ms p95 target, standing for 3 original
		// rows: 3 weighted misses.
		{ID: 2, ArriveUS: 10_000_000, Weight: 3, CPUWork: 0.5, Parallelism: 1,
			SLOKind: 2 /* percentile-response-time */, SLOTarget: 0.010, SLOPct: 95},
		// Best-effort: never scores.
		{ID: 3, ArriveUS: 20_000_000, Weight: 1, CPUWork: 0.1, Parallelism: 1},
		// Velocity kind: has a target, but it is not a response bound.
		{ID: 4, ArriveUS: 30_000_000, Weight: 1, CPUWork: 0.1, Parallelism: 1,
			SLOKind: 3 /* velocity */, SLOTarget: 0.9},
	}
	st, err := Replay(&SliceSource{H: h, Rows: rows}, replayCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	c := &st.Classes[0]
	if c.Completed != 6 {
		t.Fatalf("completed weight %v, want 6", c.Completed)
	}
	if c.SLOTotal != 4 || c.SLOMissed != 3 {
		t.Fatalf("slo total/missed = %v/%v, want 4/3", c.SLOTotal, c.SLOMissed)
	}
	if got := c.Attainment(); got != 0.25 {
		t.Fatalf("attainment %v, want 0.25", got)
	}
	var empty ClassStats
	if empty.Attainment() != 1 {
		t.Fatal("class with no scorable rows must report attainment 1")
	}
}

// TestSynthCarriesSLOs keeps the synthetic mix scoring: both replayed and
// compressed-replayed synth traces must produce a non-degenerate attainment
// for the deadline-bearing classes.
func TestSynthCarriesSLOs(t *testing.T) {
	h, rows := Synth(5, 4000)
	st, err := Replay(&SliceSource{H: h, Rows: rows}, replayCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"oltp", "bi"} {
		found := false
		for i := range st.Classes {
			c := &st.Classes[i]
			if c.Class != want {
				continue
			}
			found = true
			if c.SLOTotal <= 0 {
				t.Errorf("class %s replayed without SLO-bearing rows", want)
			}
			if a := c.Attainment(); a < 0 || a > 1 {
				t.Errorf("class %s attainment %v outside [0,1]", want, a)
			}
		}
		if !found {
			t.Errorf("class %s missing from synth replay", want)
		}
	}
}
