// Package trace defines the versioned workload-trace format and the tools
// that make recorded traffic a first-class workload source: a streaming
// binary reader/writer with zero-alloc row decode, a JSONL twin for
// interchange, a replay generator that feeds traces into the deterministic
// sim/engine substrate, and a divergence-bounded workload compressor in the
// style of Deep et al., "Comprehensive and Efficient Workload Compression".
//
// A trace is a header (format version, recorded duration, class-name table)
// followed by rows sorted by arrival offset. Each row carries everything the
// workload manager sees before execution — arrival offset from the start of
// the trace, service class, SQL text or its 128-bit fingerprint, optimizer
// estimates, SLA — plus the true engine work so replays can execute, and a
// weight so a compressed trace can stand in for many original rows.
//
// Two encodings share the Row model: a length-prefixed binary format in the
// internal/wire codec style (the fast path: multi-million-row traces decode
// at >1M rows/sec with zero allocations per row) and line-oriented JSON (the
// interchange path: greppable, diffable, trivially produced by external
// systems). Both are strict — a malformed row is an error, never a guess —
// and canonical: re-encoding a decoded row reproduces the input bytes
// (binary) or an equivalent row (JSONL), properties the fuzz targets pin.
package trace

import (
	"errors"
	"fmt"
	"io"
)

// Version is the current trace format version, carried by both encodings.
const Version = 1

// Row flag bits.
const (
	// FlagRead marks a read-only statement (SELECT); unset means write.
	FlagRead = 1 << 0

	// knownFlags is the mask of defined bits; decoders reject the rest so
	// future flags cannot be silently dropped by old readers.
	knownFlags = FlagRead
)

// Format limits. Decoders enforce them so a corrupt length field cannot ask
// for an absurd allocation.
const (
	// MaxSQLLen bounds the SQL text of one row.
	MaxSQLLen = 1 << 20
	// MaxLocks bounds the lock list of one row.
	MaxLocks = 1 << 12
	// MaxClasses bounds the header class table.
	MaxClasses = 1 << 12
	// MaxClassName bounds one class name.
	MaxClassName = 1 << 8
)

// Lock is one lock acquisition recorded for a row, mirroring
// engine.LockReq.
type Lock struct {
	Key        int64
	AtProgress float64
	Exclusive  bool
}

// Row is one request in a trace. Field groups, in the order the binary
// encoding packs them: identity and arrival, optimizer estimates (what
// admission control sees), true engine work (what replay executes), SLA,
// and the variable-length lock list and SQL text.
//
// After a streaming decode the SQL field sub-slices the reader's buffer and
// the Locks slice reuses caller scratch: both are valid only until the next
// Next call. Retain copies them out for rows that must outlive the stream.
type Row struct {
	// ID is the recorded request ID (informational; replay reassigns engine
	// query IDs in submission order).
	ID int64
	// ArriveUS is the arrival offset in microseconds from trace start. Rows
	// in a trace are sorted by (ArriveUS, ID).
	ArriveUS int64
	// Weight is how many original rows this row stands for; 1 in a recorded
	// trace, >= 1 in a compressed one. Non-positive weights are treated as 1.
	Weight float64
	// Class indexes the header's class-name table.
	Class uint16
	// Flags holds FlagRead and future bits.
	Flags uint8
	// Priority is the policy.Priority ordinal.
	Priority uint8

	// FPHi/FPLo carry the sqlmini 128-bit fingerprint when SQL is absent (or
	// precomputed); zero when unknown.
	FPHi, FPLo uint64

	// Optimizer estimates (workload.Estimates).
	EstCPUSeconds float64
	EstIOMB       float64
	EstMemMB      float64
	EstRows       float64
	EstTimerons   float64

	// True engine work (engine.QuerySpec, flattened).
	CPUWork         float64
	IOWork          float64
	MemMB           float64
	Parallelism     float64
	Rows            int64
	StateMB         float64
	CheckpointEvery float64

	// SLA (policy.SLO).
	SLOKind   uint8
	SLOTarget float64
	SLOPct    float64

	// Locks are the recorded lock acquisitions (transactions only).
	Locks []Lock
	// SQL is the statement text; empty when only the fingerprint was
	// recorded.
	SQL []byte
}

// Retain deep-copies the row's buffer-backed fields (SQL, Locks) so the row
// stays valid after the stream that produced it moves on.
func (r *Row) Retain() {
	if len(r.SQL) > 0 {
		r.SQL = append([]byte(nil), r.SQL...)
	} else {
		r.SQL = nil
	}
	if len(r.Locks) > 0 {
		r.Locks = append([]Lock(nil), r.Locks...)
	} else {
		r.Locks = nil
	}
}

// Header describes a trace: format version, the recorded duration (arrival
// offsets fall in [0, DurationUS]), and the class-name table rows index into.
type Header struct {
	Version    int
	DurationUS int64
	Classes    []string
}

// ClassName returns the name for a class index, or a synthesized placeholder
// when the index is outside the table.
func (h *Header) ClassName(idx uint16) string {
	if int(idx) < len(h.Classes) {
		return h.Classes[idx]
	}
	return fmt.Sprintf("class%d", idx)
}

// Source is a stream of trace rows. Next fills the caller's row and returns
// io.EOF at end of trace; any other error is a malformed or unreadable
// trace. Buffer-backed row fields (SQL, Locks) are valid only until the next
// Next call — Retain them to keep them.
type Source interface {
	Header() Header
	Next(*Row) error
}

// SliceSource adapts an in-memory row slice to the Source interface.
type SliceSource struct {
	H    Header
	Rows []Row
	pos  int
}

// Header implements Source.
func (s *SliceSource) Header() Header { return s.H }

// Next implements Source.
func (s *SliceSource) Next(row *Row) error {
	if s.pos >= len(s.Rows) {
		return io.EOF
	}
	*row = s.Rows[s.pos]
	s.pos++
	return nil
}

// Reset rewinds the source to the first row.
func (s *SliceSource) Reset() { s.pos = 0 }

// ReadAll drains a source into memory, retaining every row.
func ReadAll(src Source) ([]Row, error) {
	var rows []Row
	var row Row
	for {
		if err := src.Next(&row); err != nil {
			if errors.Is(err, io.EOF) {
				return rows, nil
			}
			return nil, err
		}
		keep := row
		keep.Retain()
		rows = append(rows, keep)
	}
}
