package trace

import (
	"fmt"
	"sync"

	"dbwlm/internal/engine"
	"dbwlm/internal/experiments"
	"dbwlm/internal/sim"
)

// What-if fan-out: evaluate many candidate replays — the same trace under
// different engine sizings, seeds, or time scales, or different compressed
// traces under one sizing — concurrently. Each job is an independent
// deterministic simulation, so the fan-out changes wall-clock time only,
// never results. Simulator/engine pairs come from a sync.Pool and are
// Reset between runs instead of rebuilt: the event heap, query free list,
// lock-table buckets, and scratch buffers all carry over, so a warm pool
// runs each what-if with a fraction of the allocations of a cold Replay
// (the bench's fanout section gates the ratio).

// ReplayJob pairs a trace source with the configuration to replay it under.
type ReplayJob struct {
	Src Source
	Cfg ReplayConfig
}

// replayer is a pooled simulator/engine pair.
type replayer struct {
	s   *sim.Simulator
	eng *engine.Engine
}

// replayerPool holds warm sim/engine pairs across ReplayMany calls, so
// repeated what-if sweeps (the interactive use case: tweak a sizing, re-run)
// reuse each other's buffers too.
var replayerPool = sync.Pool{New: func() any {
	s := sim.New(0)
	return &replayer{s: s, eng: engine.New(s, engine.Config{})}
}}

// ReplayMany evaluates every job and returns the stats in job order. Jobs
// fan out over a GOMAXPROCS-bounded pool (maxWorkers 0; pass 1 to force
// sequential). Results are identical to calling Replay on each job — pooled
// pairs are Reset to the job's (seed, engine config) before use, which the
// sim and engine packages pin as bit-equivalent to fresh construction. On
// failure the first error by job index is returned; the stats slice still
// holds every job that succeeded.
func ReplayMany(jobs []ReplayJob, maxWorkers int) ([]*ReplayStats, error) {
	type res struct {
		st  *ReplayStats
		err error
	}
	results := experiments.RunIndexedBounded(len(jobs), maxWorkers, func(i int) res {
		rp := replayerPool.Get().(*replayer)
		rp.s.Reset(jobs[i].Cfg.Seed)
		rp.eng.Reset(jobs[i].Cfg.Engine)
		st, err := replayWith(jobs[i].Src, jobs[i].Cfg, rp.s, rp.eng)
		replayerPool.Put(rp)
		if err != nil {
			return res{err: fmt.Errorf("trace: replay %d: %w", i, err)}
		}
		return res{st: st}
	})
	out := make([]*ReplayStats, len(jobs))
	var firstErr error
	for i, r := range results {
		out[i] = r.st
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return out, firstErr
}
