package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"dbwlm"
	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
	"dbwlm/internal/trace"
	"dbwlm/internal/workload"
)

// The record-mode round-trip contract (same equivalence style as
// TestBatchReplayEquivalence): running a synthetic scenario directly,
// running it with a recorder tap attached, and replaying the recorded trace
// through a fresh manager must all produce bit-identical engine results —
// same report text, same engine counters. This is what makes a trace a
// faithful capture rather than an approximation.

const (
	rtSeed    = 20260809
	rtHorizon = 30 * sim.Second
	rtDrain   = 15 * sim.Second
)

// runScenario runs the consolidated scenario (optionally wrapped by wrap)
// on a fresh manager and returns its report and engine counters.
func runScenario(wrap func([]workload.Generator) []workload.Generator) (string, engine.Stats) {
	s := sim.New(rtSeed)
	m := dbwlm.New(s, engine.Config{})
	gens := workload.Consolidated(s.RNG(), workload.ScenarioConfig{})
	if wrap != nil {
		gens = wrap(gens)
	}
	m.RunWorkload(gens, rtHorizon, rtDrain)
	return m.Report(), m.Engine().StatsNow()
}

// runReplay replays a trace source through a fresh manager.
func runReplay(src trace.Source) (string, engine.Stats, error) {
	s := sim.New(rtSeed)
	m := dbwlm.New(s, engine.Config{})
	g := trace.NewGen(src)
	m.RunWorkload([]workload.Generator{g}, rtHorizon, rtDrain)
	return m.Report(), m.Engine().StatsNow(), g.Err()
}

func TestRecordReplayEquivalence(t *testing.T) {
	directReport, directStats := runScenario(nil)

	// Recording must be transparent: the tap only observes.
	rec := trace.NewRecorder()
	recordedReport, recordedStats := runScenario(func(gens []workload.Generator) []workload.Generator {
		return workload.Record(gens, rec.Tap)
	})
	if recordedReport != directReport {
		t.Fatalf("recording perturbed the run:\ndirect:\n%s\nrecorded:\n%s", directReport, recordedReport)
	}
	if !reflect.DeepEqual(recordedStats, directStats) {
		t.Fatalf("recording perturbed engine stats: %+v vs %+v", recordedStats, directStats)
	}
	rec.DurationUS = int64(sim.Time(0).Add(rtHorizon))
	if len(rec.Rows()) < 100 {
		t.Fatalf("recorded only %d rows", len(rec.Rows()))
	}

	// In-memory replay of the recording.
	memReport, memStats, err := runReplay(rec.Source())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if memReport != directReport {
		t.Fatalf("in-memory replay diverged:\ndirect:\n%s\nreplay:\n%s", directReport, memReport)
	}
	if !reflect.DeepEqual(memStats, directStats) {
		t.Fatalf("in-memory replay engine stats diverged: %+v vs %+v", memStats, directStats)
	}

	// Serialize through the binary encoding and replay the decoded stream —
	// the full record-to-disk, replay-from-disk path.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, rec.Header())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTo(w); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	binReport, binStats, err := runReplay(r)
	if err != nil {
		t.Fatalf("binary replay: %v", err)
	}
	if binReport != directReport {
		t.Fatalf("binary replay diverged:\ndirect:\n%s\nreplay:\n%s", directReport, binReport)
	}
	if !reflect.DeepEqual(binStats, directStats) {
		t.Fatalf("binary replay engine stats diverged: %+v vs %+v", binStats, directStats)
	}

	// And through JSONL, proving the interchange encoding is lossless too.
	var jbuf bytes.Buffer
	jw, err := trace.NewJSONLWriter(&jbuf, rec.Header())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTo(jw); err != nil {
		t.Fatal(err)
	}
	jr, err := trace.NewJSONLReader(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	jsonReport, jsonStats, err := runReplay(jr)
	if err != nil {
		t.Fatalf("JSONL replay: %v", err)
	}
	if jsonReport != directReport {
		t.Fatalf("JSONL replay diverged:\ndirect:\n%s\nreplay:\n%s", directReport, jsonReport)
	}
	if !reflect.DeepEqual(jsonStats, directStats) {
		t.Fatalf("JSONL replay engine stats diverged: %+v vs %+v", jsonStats, directStats)
	}
}
