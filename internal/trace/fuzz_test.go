package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode fuzzes the binary trace decoders. Invariants: decoding is
// a total function (no panics, no unbounded allocation on any input), and a
// successful decode is canonical — re-encoding reproduces the input bytes
// exactly.
func FuzzTraceDecode(f *testing.F) {
	h := Header{Version: Version, DurationUS: 5_000_000, Classes: []string{"oltp", "bi"}}
	hdr, _ := AppendHeader(nil, h)
	f.Add(hdr)
	for _, row := range sampleRows() {
		enc, err := AppendRow(nil, &row)
		if err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{Magic})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Header path: canonical re-encode of the consumed prefix.
		if dh, n, err := DecodeHeader(data); err == nil {
			re, err := AppendHeader(nil, dh)
			if err != nil {
				t.Fatalf("decoded header does not re-encode: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("header re-encode differs from input prefix")
			}
		}
		// Row path: data is one length-stripped row.
		var row Row
		if err := DecodeRow(data, &row); err == nil {
			re, err := AppendRow(nil, &row)
			if err != nil {
				t.Fatalf("decoded row does not re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("row re-encode differs from input")
			}
		}
		// Streaming path over arbitrary bytes: must terminate with EOF or an
		// error, never panic.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			var row Row
			for {
				if err := r.Next(&row); err != nil {
					break
				}
			}
		}
	})
}

// FuzzTraceJSONL fuzzes the JSONL decoder. Invariants: total function, and
// decode-encode-decode is a fixed point (the first decode normalizes; the
// round trip must preserve it exactly, compared via canonical binary bytes).
func FuzzTraceJSONL(f *testing.F) {
	h := Header{Version: Version, DurationUS: 5_000_000, Classes: []string{"oltp", "bi"}}
	var buf bytes.Buffer
	if w, err := NewJSONLWriter(&buf, h); err == nil {
		rows := sampleRows()
		for i := range rows[:2] {
			w.WriteRow(&rows[i])
		}
		w.Flush()
	}
	f.Add(buf.String())
	f.Add(`{"format":"dbwlm-trace","version":1,"duration_us":10,"classes":["a"]}` + "\n" + `{"id":1,"arrive_us":3}`)
	f.Add(`{"format":"dbwlm-trace","version":1}` + "\n" + `null`)
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		r, err := NewJSONLReader(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		first, err := ReadAll(r)
		if err != nil {
			return
		}
		// Re-encode and decode again; rows must survive unchanged.
		var out bytes.Buffer
		w, err := NewJSONLWriter(&out, r.Header())
		if err != nil {
			t.Fatalf("decoded header does not re-encode: %v", err)
		}
		for i := range first {
			if err := w.WriteRow(&first[i]); err != nil {
				t.Fatalf("decoded row %d does not re-encode: %v", i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewJSONLReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		second, err := ReadAll(r2)
		if err != nil {
			t.Fatalf("re-encoded rows do not decode: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("row count changed across round trip: %d vs %d", len(first), len(second))
		}
		for i := range first {
			a, errA := AppendRow(nil, &first[i])
			b, errB := AppendRow(nil, &second[i])
			if (errA == nil) != (errB == nil) || !bytes.Equal(a, b) {
				t.Fatalf("row %d changed across JSONL round trip", i)
			}
		}
	})
}
