package trace

import (
	"io"

	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

// Gen replays a trace as a workload.Generator, mapping recorded arrival
// offsets onto the simulator's virtual clock. It streams: rows are pulled
// from the Source one at a time as virtual time advances, so a multi-
// million-row trace replays in O(1) memory, and the arrival chain runs on
// detached events so it allocates no Event garbage.
//
// Event ordering is chosen to reproduce a recorded run exactly: the chain
// schedules the NEXT row's arrival before submitting the current request, so
// a burst of rows sharing one timestamp is fully submitted before any engine
// event at that instant fires — the same order a generator submitting the
// burst from a single callback produces. Rows must be sorted by arrival
// offset (recorded traces are: the recorder sees submissions in event-time
// order).
type Gen struct {
	// Src supplies the rows. The generator reads it once; it is not rewound.
	Src Source
	// GenName names the generator (Name method); default "trace".
	GenName string
	// TimeScale multiplies arrival offsets: 0.5 replays twice as fast as
	// recorded, 2 twice as slow. 0 (or 1) replays in recorded time.
	TimeScale float64

	err error
}

// NewGen returns a generator replaying src in recorded time.
func NewGen(src Source) *Gen { return &Gen{Src: src} }

// Name implements workload.Generator.
func (g *Gen) Name() string {
	if g.GenName != "" {
		return g.GenName
	}
	return "trace"
}

// Err reports the first row-decode error hit during replay (replay stops at
// it); nil after a clean run.
func (g *Gen) Err() error { return g.err }

// Start implements workload.Generator.
func (g *Gen) Start(s *sim.Simulator, horizon sim.Time, submit workload.SubmitFunc) {
	h := g.Src.Header()
	scale := g.TimeScale
	var row Row
	var pending *workload.Request
	var at sim.Time
	advance := func() bool {
		if err := g.Src.Next(&row); err != nil {
			if err != io.EOF {
				g.err = err
			}
			return false
		}
		if scale > 0 && scale != 1 {
			at = sim.Time(float64(row.ArriveUS) * scale)
		} else {
			at = sim.Time(row.ArriveUS)
		}
		if at > horizon {
			return false
		}
		pending = row.Request(&h)
		pending.Arrive = at
		return true
	}
	var fire func()
	fire = func() {
		req := pending
		if advance() {
			s.AtDetached(at, fire)
		}
		submit(req)
	}
	if advance() {
		s.AtDetached(at, fire)
	}
}
