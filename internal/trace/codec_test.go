package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleRows returns a varied set of rows exercising every field, including
// awkward float values the binary codec must carry bit-exactly.
func sampleRows() []Row {
	return []Row{
		{
			ID: 1, ArriveUS: 0, Weight: 1, Class: 0, Flags: FlagRead, Priority: 2,
			FPHi: 0xDEADBEEF01234567, FPLo: 0x89ABCDEF,
			EstCPUSeconds: 0.012, EstIOMB: 1.5, EstMemMB: 64, EstRows: 10, EstTimerons: 27,
			CPUWork: 0.011, IOWork: 1.6, MemMB: 64, Parallelism: 1, Rows: 10,
			SQL: []byte("SELECT * FROM accounts WHERE id = 7"),
		},
		{
			ID: 2, ArriveUS: 1500, Weight: 37.5, Class: 1, Priority: 0,
			EstTimerons: 1e6, CPUWork: 120, IOWork: 4000, MemMB: 2048, Parallelism: 8,
			Rows: 5_000_000, StateMB: 512, CheckpointEvery: 0.25,
			SLOKind: 1, SLOTarget: 30, SLOPct: 0.95,
			Locks: []Lock{
				{Key: 42, AtProgress: 0.1, Exclusive: true},
				{Key: -7, AtProgress: 0.9},
			},
		},
		{
			ID: 3, ArriveUS: 1500, Weight: math.Inf(1), Class: 2,
			EstCPUSeconds: math.SmallestNonzeroFloat64, CPUWork: math.MaxFloat64,
		},
		{ID: 4, ArriveUS: 2_000_000, Weight: 1, Class: 0},
	}
}

func TestBinaryRowRoundTrip(t *testing.T) {
	for i, row := range sampleRows() {
		enc, err := AppendRow(nil, &row)
		if err != nil {
			t.Fatalf("row %d: AppendRow: %v", i, err)
		}
		var got Row
		if err := DecodeRow(enc, &got); err != nil {
			t.Fatalf("row %d: DecodeRow: %v", i, err)
		}
		norm := row
		if len(norm.SQL) == 0 {
			norm.SQL = []byte{}
		}
		if len(norm.Locks) == 0 {
			norm.Locks = nil
		}
		if len(got.SQL) == 0 {
			got.SQL = []byte{}
		}
		if len(got.Locks) == 0 {
			got.Locks = nil
		}
		if !reflect.DeepEqual(norm, got) {
			t.Fatalf("row %d: round trip mismatch:\n in: %+v\nout: %+v", i, norm, got)
		}
		// Canonical: re-encoding the decoded row reproduces the bytes.
		re, err := AppendRow(nil, &got)
		if err != nil {
			t.Fatalf("row %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("row %d: re-encode differs", i)
		}
	}
}

func TestBinaryRowRejects(t *testing.T) {
	row := sampleRows()[1]
	enc, err := AppendRow(nil, &row)
	if err != nil {
		t.Fatal(err)
	}
	var got Row
	// Every strict prefix must be rejected.
	for n := 0; n < len(enc); n++ {
		if err := DecodeRow(enc[:n], &got); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(enc))
		}
	}
	// Trailing bytes must be rejected.
	if err := DecodeRow(append(append([]byte{}, enc...), 0), &got); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown flag bits must be rejected.
	bad := append([]byte{}, enc...)
	bad[offFlags] |= 0x80
	if err := DecodeRow(bad, &got); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
	// Non-boolean lock exclusive byte must be rejected.
	bad = append([]byte{}, enc...)
	bad[rowFixedLen+16] = 2
	if err := DecodeRow(bad, &got); err == nil {
		t.Fatal("exclusive byte 2 accepted")
	}
	// Oversized encode inputs must be rejected.
	huge := Row{Locks: make([]Lock, MaxLocks+1)}
	if _, err := AppendRow(nil, &huge); err == nil {
		t.Fatal("oversized lock list encoded")
	}
	wide := Row{SQL: bytes.Repeat([]byte("x"), MaxSQLLen+1)}
	if _, err := AppendRow(nil, &wide); err == nil {
		t.Fatal("oversized SQL encoded")
	}
	flagged := Row{Flags: 0x40}
	if _, err := AppendRow(nil, &flagged); err == nil {
		t.Fatal("unknown flag encoded")
	}
}

func TestBinaryHeaderRoundTrip(t *testing.T) {
	h := Header{Version: Version, DurationUS: 123_456_789, Classes: []string{"oltp", "bi", "adhoc"}}
	enc, err := AppendHeader(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("header mismatch: %+v vs %+v", h, got)
	}
	re, err := AppendHeader(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encode differs")
	}
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeHeader(enc[:i]); err == nil {
			t.Fatalf("header prefix of %d bytes decoded", i)
		}
	}
	bad := append([]byte{}, enc...)
	bad[0] = 0x00
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, enc...)
	bad[1] = Version + 1
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

// writeStream encodes a whole trace through the streaming writer.
func writeStream(t *testing.T, h Header, rows []Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if err := w.WriteRow(&rows[i]); err != nil {
			t.Fatalf("WriteRow %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	h := Header{Version: Version, DurationUS: 2_000_000, Classes: []string{"oltp", "bi", "adhoc"}}
	rows := sampleRows()
	data := writeStream(t, h, rows)

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Header(), h) {
		t.Fatalf("header mismatch: %+v", r.Header())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		a, _ := AppendRow(nil, &rows[i])
		b, _ := AppendRow(nil, &got[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("row %d differs after stream round trip", i)
		}
	}

	// Truncations anywhere in the row region must error, not EOF-cleanly,
	// unless the cut lands exactly on a row boundary.
	hdrLen := len(writeStream(t, h, nil))
	boundaries := map[int]bool{hdrLen: true}
	off := hdrLen
	for i := range rows {
		enc, _ := AppendRow(nil, &rows[i])
		off += 4 + len(enc)
		boundaries[off] = true
	}
	for cut := hdrLen; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		var row Row
		var streamErr error
		for {
			if streamErr = r.Next(&row); streamErr != nil {
				break
			}
		}
		if boundaries[cut] {
			if streamErr != io.EOF {
				t.Fatalf("cut %d on boundary: got %v, want EOF", cut, streamErr)
			}
		} else if streamErr == io.EOF {
			t.Fatalf("cut %d mid-row: clean EOF", cut)
		}
	}
}

// TestStreamLargeTrace pushes enough rows through the small stream buffer to
// force many compact/refill cycles and a mid-buffer row split.
func TestStreamLargeTrace(t *testing.T) {
	h := Header{Version: Version, DurationUS: 10_000_000, Classes: []string{"a"}}
	var rows []Row
	sql := strings.Repeat("SELECT pad FROM t WHERE k = 123456789;", 40)
	for i := 0; i < 5000; i++ {
		row := Row{ID: int64(i), ArriveUS: int64(i * 2000), Weight: 1, Flags: FlagRead}
		if i%7 == 0 {
			row.SQL = []byte(sql)
		}
		if i%11 == 0 {
			row.Locks = []Lock{{Key: int64(i), AtProgress: 0.5, Exclusive: i%2 == 0}}
		}
		rows = append(rows, row)
	}
	data := writeStream(t, h, rows)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var row Row
	for i := 0; ; i++ {
		err := r.Next(&row)
		if err == io.EOF {
			if i != len(rows) {
				t.Fatalf("EOF after %d rows, want %d", i, len(rows))
			}
			break
		}
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row.ID != int64(i) || row.ArriveUS != int64(i*2000) {
			t.Fatalf("row %d decoded as ID %d arrive %d", i, row.ID, row.ArriveUS)
		}
		if i%7 == 0 && string(row.SQL) != sql {
			t.Fatalf("row %d SQL corrupted", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	h := Header{Version: Version, DurationUS: 2_000_000, Classes: []string{"oltp", "bi", "adhoc"}}
	rows := sampleRows()
	rows = rows[:2] // row 3 carries non-finite floats JSON cannot encode
	rows = append(rows, Row{ID: 4, ArriveUS: 2_000_000, Weight: 1, Class: 0})

	var buf bytes.Buffer
	w, err := NewJSONLWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if err := w.WriteRow(&rows[i]); err != nil {
			t.Fatalf("WriteRow %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewJSONLReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Header(), h) {
		t.Fatalf("header mismatch: %+v", r.Header())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		a, _ := AppendRow(nil, &rows[i])
		b, _ := AppendRow(nil, &got[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("row %d differs after JSONL round trip", i)
		}
	}

	// Non-finite floats must be rejected by the JSONL writer, not silently
	// mangled.
	inf := Row{ID: 9, Weight: math.Inf(1)}
	if err := w.WriteRow(&inf); err == nil {
		t.Fatal("JSONL writer accepted +Inf")
	}
}

func TestSniffSource(t *testing.T) {
	h := Header{Version: Version, DurationUS: 1000, Classes: []string{"a"}}
	rows := []Row{{ID: 1, ArriveUS: 10, Weight: 1}}

	bin := writeStream(t, h, rows)
	src, err := NewSourceFrom(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Reader); !ok {
		t.Fatalf("binary input sniffed as %T", src)
	}

	var jbuf bytes.Buffer
	jw, err := NewJSONLWriter(&jbuf, h)
	if err != nil {
		t.Fatal(err)
	}
	jw.WriteRow(&rows[0])
	jw.Flush()
	src, err = NewSourceFrom(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*JSONLReader); !ok {
		t.Fatalf("JSONL input sniffed as %T", src)
	}
}
