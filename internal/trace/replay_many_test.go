package trace

import (
	"reflect"
	"runtime"
	"testing"

	"dbwlm/internal/engine"
)

// TestReplayManyMatchesIndependent pins the pooled fan-out contract: N jobs
// through ReplayMany — warm pool, multi-worker — yield exactly the stats of
// N independent Replay calls.
func TestReplayManyMatchesIndependent(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force real fan-out even on 1-CPU hosts
	defer runtime.GOMAXPROCS(prev)

	h, rows := Synth(7, 4000)
	comp := Compress(h, rows, CompressConfig{Ratio: 16, Seed: 11})
	sizings := []engine.Config{
		{Cores: 4, MemoryMB: 4096, IOMBps: 200},
		{Cores: 8, MemoryMB: 16384, IOMBps: 800},
		{Cores: 16, MemoryMB: 32768, IOMBps: 1600, Quantum: 0},
		{Cores: 2, MemoryMB: 2048, IOMBps: 100},
	}
	jobs := make([]ReplayJob, 0, 2*len(sizings))
	for i, ec := range sizings {
		jobs = append(jobs, ReplayJob{
			Src: &SliceSource{H: h, Rows: rows},
			Cfg: ReplayConfig{Engine: ec, Seed: uint64(i + 1)},
		})
		jobs = append(jobs, ReplayJob{
			Src: &SliceSource{H: h, Rows: comp},
			Cfg: ReplayConfig{Engine: ec, Seed: uint64(i + 1), TimeScale: RateScale(comp)},
		})
	}

	want := make([]*ReplayStats, len(jobs))
	for i, j := range jobs {
		j.Src.(*SliceSource).Reset()
		st, err := Replay(j.Src, j.Cfg)
		if err != nil {
			t.Fatalf("independent replay %d: %v", i, err)
		}
		want[i] = st
	}

	// Two rounds: the first may populate the pool from scratch, the second
	// must reuse warm pairs — both must match the independent runs.
	for round := 0; round < 2; round++ {
		for i := range jobs {
			jobs[i].Src.(*SliceSource).Reset()
		}
		got, err := ReplayMany(jobs, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d: job %d stats differ from independent Replay\n got: %+v\nwant: %+v",
					round, i, got[i], want[i])
			}
		}
	}
}

// TestReplayManyError pins error propagation: a bad job reports a wrapped,
// index-tagged error while good jobs still return their stats.
func TestReplayManyError(t *testing.T) {
	h, rows := Synth(3, 400)
	bad := []Row{rows[10], rows[2]} // arrivals out of order
	jobs := []ReplayJob{
		{Src: &SliceSource{H: h, Rows: rows}, Cfg: ReplayConfig{Seed: 1}},
		{Src: &SliceSource{H: h, Rows: bad}, Cfg: ReplayConfig{Seed: 1}},
		{Src: &SliceSource{H: h, Rows: rows}, Cfg: ReplayConfig{Seed: 2}},
	}
	got, err := ReplayMany(jobs, 1)
	if err == nil {
		t.Fatal("ReplayMany swallowed the unsorted-trace error")
	}
	if want := "trace: replay 1:"; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("error not index-tagged: %v", err)
	}
	if got[0] == nil || got[2] == nil {
		t.Fatal("good jobs did not return stats alongside the error")
	}
	if got[1] != nil {
		t.Fatal("failed job returned stats")
	}
}
