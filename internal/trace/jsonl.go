package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL trace encoding: one JSON object per line, a header object first.
// This is the interchange format — greppable, diffable, and trivially
// produced by external systems — so it allocates freely; the binary twin is
// the performance path. The two encodings carry identical information and
// convert losslessly in both directions.

// jsonlFormat is the format tag carried by the header line.
const jsonlFormat = "dbwlm-trace"

// headerJSON is the first line of a JSONL trace.
type headerJSON struct {
	Format     string   `json:"format"`
	Version    int      `json:"version"`
	DurationUS int64    `json:"duration_us"`
	Classes    []string `json:"classes"`
}

// lockJSON is one lock acquisition.
type lockJSON struct {
	Key        int64   `json:"key"`
	AtProgress float64 `json:"at,omitempty"`
	Exclusive  bool    `json:"x,omitempty"`
}

// rowJSON is one trace row as a JSON line. Zero-valued fields are omitted so
// common rows stay short.
type rowJSON struct {
	ID       int64   `json:"id"`
	ArriveUS int64   `json:"arrive_us"`
	Class    uint16  `json:"class"`
	Weight   float64 `json:"weight,omitempty"`
	Read     bool    `json:"read,omitempty"`
	Priority uint8   `json:"priority,omitempty"`

	SQL  string `json:"sql,omitempty"`
	FPHi uint64 `json:"fp_hi,omitempty"`
	FPLo uint64 `json:"fp_lo,omitempty"`

	EstCPUSeconds float64 `json:"est_cpu,omitempty"`
	EstIOMB       float64 `json:"est_io,omitempty"`
	EstMemMB      float64 `json:"est_mem,omitempty"`
	EstRows       float64 `json:"est_rows,omitempty"`
	EstTimerons   float64 `json:"est_timerons,omitempty"`

	CPUWork         float64 `json:"cpu,omitempty"`
	IOWork          float64 `json:"io,omitempty"`
	MemMB           float64 `json:"mem,omitempty"`
	Parallelism     float64 `json:"par,omitempty"`
	Rows            int64   `json:"rows,omitempty"`
	StateMB         float64 `json:"state,omitempty"`
	CheckpointEvery float64 `json:"ckpt,omitempty"`

	SLOKind   uint8   `json:"slo_kind,omitempty"`
	SLOTarget float64 `json:"slo_target,omitempty"`
	SLOPct    float64 `json:"slo_pct,omitempty"`

	Locks []lockJSON `json:"locks,omitempty"`
}

func rowToJSON(row *Row) rowJSON {
	j := rowJSON{
		ID:              row.ID,
		ArriveUS:        row.ArriveUS,
		Class:           row.Class,
		Weight:          row.Weight,
		Read:            row.Flags&FlagRead != 0,
		Priority:        row.Priority,
		SQL:             string(row.SQL),
		FPHi:            row.FPHi,
		FPLo:            row.FPLo,
		EstCPUSeconds:   row.EstCPUSeconds,
		EstIOMB:         row.EstIOMB,
		EstMemMB:        row.EstMemMB,
		EstRows:         row.EstRows,
		EstTimerons:     row.EstTimerons,
		CPUWork:         row.CPUWork,
		IOWork:          row.IOWork,
		MemMB:           row.MemMB,
		Parallelism:     row.Parallelism,
		Rows:            row.Rows,
		StateMB:         row.StateMB,
		CheckpointEvery: row.CheckpointEvery,
		SLOKind:         row.SLOKind,
		SLOTarget:       row.SLOTarget,
		SLOPct:          row.SLOPct,
	}
	if j.Weight == 1 {
		j.Weight = 0 // the default; omitted on the wire
	}
	for i := range row.Locks {
		l := &row.Locks[i]
		j.Locks = append(j.Locks, lockJSON{Key: l.Key, AtProgress: l.AtProgress, Exclusive: l.Exclusive})
	}
	return j
}

func (j *rowJSON) toRow(row *Row) error {
	if len(j.SQL) > MaxSQLLen {
		return fmt.Errorf("trace: SQL of %d bytes exceeds %d", len(j.SQL), MaxSQLLen)
	}
	if len(j.Locks) > MaxLocks {
		return fmt.Errorf("trace: %d locks exceeds %d", len(j.Locks), MaxLocks)
	}
	*row = Row{
		ID:              j.ID,
		ArriveUS:        j.ArriveUS,
		Class:           j.Class,
		Weight:          j.Weight,
		Priority:        j.Priority,
		FPHi:            j.FPHi,
		FPLo:            j.FPLo,
		EstCPUSeconds:   j.EstCPUSeconds,
		EstIOMB:         j.EstIOMB,
		EstMemMB:        j.EstMemMB,
		EstRows:         j.EstRows,
		EstTimerons:     j.EstTimerons,
		CPUWork:         j.CPUWork,
		IOWork:          j.IOWork,
		MemMB:           j.MemMB,
		Parallelism:     j.Parallelism,
		Rows:            j.Rows,
		StateMB:         j.StateMB,
		CheckpointEvery: j.CheckpointEvery,
		SLOKind:         j.SLOKind,
		SLOTarget:       j.SLOTarget,
		SLOPct:          j.SLOPct,
	}
	if j.Weight == 0 {
		row.Weight = 1
	}
	if j.Read {
		row.Flags |= FlagRead
	}
	if j.SQL != "" {
		row.SQL = []byte(j.SQL)
	}
	for i := range j.Locks {
		l := &j.Locks[i]
		row.Locks = append(row.Locks, Lock{Key: l.Key, AtProgress: l.AtProgress, Exclusive: l.Exclusive})
	}
	return nil
}

// JSONLWriter streams rows as JSON lines. Flush must be called after the
// last row.
type JSONLWriter struct {
	bw  *bufio.Writer
	err error
}

// NewJSONLWriter writes the header line for h and returns a row writer.
func NewJSONLWriter(w io.Writer, h Header) (*JSONLWriter, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: cannot encode version %d (format version is %d)", h.Version, Version)
	}
	if len(h.Classes) > MaxClasses {
		return nil, fmt.Errorf("trace: %d classes exceeds %d", len(h.Classes), MaxClasses)
	}
	jw := &JSONLWriter{bw: bufio.NewWriter(w)}
	line, err := json.Marshal(headerJSON{Format: jsonlFormat, Version: h.Version, DurationUS: h.DurationUS, Classes: h.Classes})
	if err != nil {
		return nil, err
	}
	jw.bw.Write(line)
	jw.bw.WriteByte('\n')
	return jw, nil
}

// WriteRow appends one row line. Rows with non-finite floats are rejected
// (JSON cannot carry them); the binary format can.
func (w *JSONLWriter) WriteRow(row *Row) error {
	if w.err != nil {
		return w.err
	}
	j := rowToJSON(row)
	line, err := json.Marshal(&j)
	if err != nil {
		w.err = err
		return err
	}
	w.bw.Write(line)
	w.bw.WriteByte('\n')
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (w *JSONLWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// jsonlMaxLine bounds one JSONL line (a row with maximal SQL still fits).
const jsonlMaxLine = MaxSQLLen * 2

// JSONLReader streams rows out of a JSONL trace. It implements Source.
type JSONLReader struct {
	sc   *bufio.Scanner
	h    Header
	line int
}

// NewJSONLReader decodes the header line and returns a streaming row reader.
func NewJSONLReader(src io.Reader) (*JSONLReader, error) {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64*1024), jsonlMaxLine)
	r := &JSONLReader{sc: sc}
	data, err := r.nextLine()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty JSONL trace")
		}
		return nil, err
	}
	var h headerJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: JSONL header line %d: %w", r.line, err)
	}
	if h.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: JSONL header format %q, want %q", h.Format, jsonlFormat)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", h.Version, Version)
	}
	if len(h.Classes) > MaxClasses {
		return nil, fmt.Errorf("trace: %d classes exceeds %d", len(h.Classes), MaxClasses)
	}
	for _, c := range h.Classes {
		if len(c) > MaxClassName {
			return nil, fmt.Errorf("trace: class name of %d bytes exceeds %d", len(c), MaxClassName)
		}
	}
	r.h = Header{Version: h.Version, DurationUS: h.DurationUS, Classes: h.Classes}
	return r, nil
}

// nextLine returns the next non-blank line, io.EOF at end of input.
func (r *JSONLReader) nextLine() ([]byte, error) {
	for r.sc.Scan() {
		r.line++
		data := bytes.TrimSpace(r.sc.Bytes())
		if len(data) > 0 {
			return data, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: JSONL line %d: %w", r.line+1, err)
	}
	return nil, io.EOF
}

// Header implements Source.
func (r *JSONLReader) Header() Header { return r.h }

// Next implements Source.
func (r *JSONLReader) Next(row *Row) error {
	data, err := r.nextLine()
	if err != nil {
		return err
	}
	var j rowJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("trace: JSONL line %d: %w", r.line, err)
	}
	row.SQL = nil
	row.Locks = nil
	if err := j.toRow(row); err != nil {
		return fmt.Errorf("trace: JSONL line %d: %w", r.line, err)
	}
	return nil
}
