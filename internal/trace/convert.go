package trace

import (
	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// Conversions between trace rows and the live workload.Request model, plus
// the Recorder that captures any running workload (synthetic generators, a
// selftest, a replayed trace) into rows.

// RowFromRequest flattens a request into a trace row for class index class.
// SQL is copied; the fingerprint is computed from it when present so a
// fingerprint-only consumer (or a later SQL-stripping pass) has it.
func RowFromRequest(r *workload.Request, class uint16) Row {
	row := Row{
		ID:              r.ID,
		ArriveUS:        int64(r.Arrive),
		Weight:          1,
		Class:           class,
		Priority:        uint8(r.Priority),
		EstCPUSeconds:   r.Est.CPUSeconds,
		EstIOMB:         r.Est.IOMB,
		EstMemMB:        r.Est.MemMB,
		EstRows:         r.Est.Rows,
		EstTimerons:     r.Est.Timerons,
		CPUWork:         r.True.CPUWork,
		IOWork:          r.True.IOWork,
		MemMB:           r.True.MemMB,
		Parallelism:     r.True.Parallelism,
		Rows:            r.True.Rows,
		StateMB:         r.True.StateMB,
		CheckpointEvery: r.True.CheckpointEvery,
		SLOKind:         uint8(r.SLO.Kind),
		SLOTarget:       r.SLO.Target,
		SLOPct:          r.SLO.Percentile,
	}
	if r.Type == sqlmini.StmtRead {
		row.Flags |= FlagRead
	}
	if r.SQL != "" {
		row.SQL = []byte(r.SQL)
		fp := sqlmini.FingerprintSQL(r.SQL)
		row.FPHi, row.FPLo = fp.Hi, fp.Lo
	}
	if len(r.True.Locks) > 0 {
		row.Locks = make([]Lock, len(r.True.Locks))
		for i, l := range r.True.Locks {
			row.Locks[i] = Lock{Key: int64(l.Key), AtProgress: l.AtProgress, Exclusive: l.Exclusive}
		}
	}
	return row
}

// Request reconstitutes a workload request from the row. The workload name
// comes from the header's class table; SQL is re-parsed when present (a row
// whose SQL no longer parses keeps a nil statement and falls back to the
// recorded read/write flag). The returned request owns fresh copies of every
// buffer-backed field, so the row may be reused.
func (row *Row) Request(h *Header) *workload.Request {
	req := &workload.Request{
		ID:       row.ID,
		Workload: h.ClassName(row.Class),
		Priority: policy.Priority(row.Priority),
		SLO: policy.SLO{
			Kind:       policy.SLOKind(row.SLOKind),
			Target:     row.SLOTarget,
			Percentile: row.SLOPct,
		},
		Arrive: sim.Time(row.ArriveUS),
		Est: workload.Estimates{
			CPUSeconds: row.EstCPUSeconds,
			IOMB:       row.EstIOMB,
			MemMB:      row.EstMemMB,
			Rows:       row.EstRows,
			Timerons:   row.EstTimerons,
		},
		True: row.Spec(),
	}
	if row.Flags&FlagRead != 0 {
		req.Type = sqlmini.StmtRead
	} else {
		req.Type = sqlmini.StmtWrite
	}
	if len(row.SQL) > 0 {
		req.SQL = string(row.SQL)
		if stmt, err := sqlmini.Parse(req.SQL); err == nil {
			req.Stmt = stmt
			req.Type = stmt.Type
		}
	}
	return req
}

// Spec reconstitutes the engine work description, with a fresh lock slice.
func (row *Row) Spec() engine.QuerySpec {
	spec := engine.QuerySpec{
		CPUWork:         row.CPUWork,
		IOWork:          row.IOWork,
		MemMB:           row.MemMB,
		Parallelism:     row.Parallelism,
		Rows:            row.Rows,
		StateMB:         row.StateMB,
		CheckpointEvery: row.CheckpointEvery,
	}
	if len(row.Locks) > 0 {
		spec.Locks = make([]engine.LockReq, len(row.Locks))
		for i, l := range row.Locks {
			spec.Locks[i] = engine.LockReq{Key: int(l.Key), AtProgress: l.AtProgress, Exclusive: l.Exclusive}
		}
	}
	return spec
}

// Recorder accumulates submitted requests as trace rows, interning workload
// names into the class table in first-seen order. Wrap any generator set
// with workload.Record(gens, rec.Tap) to capture a run; set DurationUS (the
// run horizon) before writing the trace out.
type Recorder struct {
	DurationUS int64
	classes    []string
	index      map[string]uint16
	rows       []Row
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{index: make(map[string]uint16)}
}

// Tap is a workload.SubmitFunc hook: it records the request and returns.
func (rec *Recorder) Tap(r *workload.Request) {
	idx, ok := rec.index[r.Workload]
	if !ok {
		idx = uint16(len(rec.classes))
		rec.classes = append(rec.classes, r.Workload)
		rec.index[r.Workload] = idx
	}
	rec.rows = append(rec.rows, RowFromRequest(r, idx))
}

// Header returns the header for the recorded trace.
func (rec *Recorder) Header() Header {
	return Header{Version: Version, DurationUS: rec.DurationUS, Classes: rec.classes}
}

// Rows returns the recorded rows, in submission order (which is arrival
// order: the simulator fires events in time order).
func (rec *Recorder) Rows() []Row { return rec.rows }

// Source returns the recording as a replayable Source.
func (rec *Recorder) Source() *SliceSource {
	return &SliceSource{H: rec.Header(), Rows: rec.rows}
}

// WriteTo streams the recording through w, which is either *Writer or
// *JSONLWriter via the RowWriter interface.
func (rec *Recorder) WriteTo(w RowWriter) error {
	for i := range rec.rows {
		if err := w.WriteRow(&rec.rows[i]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// RowWriter is the shared surface of the binary and JSONL writers.
type RowWriter interface {
	WriteRow(*Row) error
	Flush() error
}
