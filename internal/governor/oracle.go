package governor

import (
	"dbwlm"
	"dbwlm/internal/characterize"
	"dbwlm/internal/execctl"
	"dbwlm/internal/policy"
	"dbwlm/internal/scheduling"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/taxonomy"
)

// OracleProfile emulates Oracle Database Resource Manager (paper ref [61]):
// consumer groups with plan-directive CPU shares, active session pools
// (per-group concurrency limits with a queue timeout), automatic consumer
// group switching (a session that consumes too much CPU is switched to a
// lower group — priority aging by another name), and execution time limits
// that cancel runaway calls.
func OracleProfile() *Profile {
	return &Profile{
		Name: "Oracle Database Resource Manager",
		Classes: []string{
			taxonomy.ClassCharacterizationStatic,
			taxonomy.ClassAdmissionThreshold,
			taxonomy.ClassExecutionReprioritize,
			taxonomy.ClassExecutionCancel,
		},
		Attach: func(m *dbwlm.Manager) {
			// Consumer groups: interactive (OLTP), reporting, batch.
			router := characterize.NewRouter(&characterize.ServiceClass{
				Name: "OTHER_GROUPS", Priority: policy.PriorityLow,
			}).
				AddClass(&characterize.ServiceClass{
					Name: "INTERACTIVE_GROUP", Priority: policy.PriorityCritical,
					Weight: 48, // plan directive: 75% at level 1
				}).
				AddClass(&characterize.ServiceClass{
					Name: "REPORTING_GROUP", Priority: policy.PriorityMedium,
					// Tiers model automatic consumer-group switching targets.
					Tiers: []characterize.ServiceTier{
						{Name: "REPORTING_GROUP", Weight: 12},
						{Name: "BATCH_GROUP", Weight: 2},
					},
				}).
				AddClass(&characterize.ServiceClass{
					Name: "BATCH_GROUP", Priority: policy.PriorityLow, Weight: 2,
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "oltp", Match: characterize.OriginMatcher{App: "pos-terminal"},
					ServiceClass: "INTERACTIVE_GROUP",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "reporting", Match: characterize.All{
						characterize.TypeMatcher{Types: []sqlmini.StatementType{sqlmini.StmtRead}},
						characterize.TypeMatcher{MinTimerons: 1_000},
					},
					ServiceClass: "REPORTING_GROUP",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "batch", Match: characterize.TypeMatcher{
						Types: []sqlmini.StatementType{sqlmini.StmtCall, sqlmini.StmtLoad, sqlmini.StmtDDL},
					},
					ServiceClass: "BATCH_GROUP",
				})
			m.Router = router

			// Active session pools: per-group concurrency with a delay
			// queue; queued sessions time out.
			m.Scheduler = scheduling.NewScheduler(scheduling.NewPriority(),
				scheduling.NewClassMPL(map[string]int{
					"REPORTING_GROUP": 4,
					"BATCH_GROUP":     1,
					"OTHER_GROUPS":    2,
				}))
			m.MaxQueueDelay = 5 * sim.Minute

			// Automatic consumer group switching: a reporting query that
			// runs past the switch threshold is demoted to the batch tier.
			switcher := execctl.NewAger(m.Engine(), []float64{12, 2}, []float64{30})
			switcher.Events = m.Stats().Events
			// MAX_EST_EXEC_TIME-style cancellation for true runaways.
			killer := execctl.NewKiller(m.Engine(), 1200)
			killer.Events = m.Stats().Events
			chainDispatch(m, func(rr *dbwlm.Running) {
				switch rr.Class.Name {
				case "REPORTING_GROUP":
					switcher.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
					killer.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
				case "BATCH_GROUP", "OTHER_GROUPS":
					killer.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
				}
			})
		},
	}
}
