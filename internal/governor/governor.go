// Package governor assembles emulation profiles of the three commercial
// workload management systems the paper examines in Section 4.1 — IBM DB2
// Workload Manager, Microsoft SQL Server Resource/Query Governor, and
// Teradata Active System Management — each built purely from the technique
// classes Table 4 assigns to it. The profiles configure a dbwlm.Manager and
// are exercised side by side by the Table 4 benchmark.
package governor

import (
	"dbwlm"
	"dbwlm/internal/admission"
	"dbwlm/internal/characterize"
	"dbwlm/internal/execctl"
	"dbwlm/internal/policy"
	"dbwlm/internal/scheduling"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/taxonomy"
	"dbwlm/internal/workload"
)

// Profile is a commercial-system emulation: a name, the taxonomy classes
// Table 4 attributes to the system, and an Attach function that configures a
// manager accordingly.
type Profile struct {
	Name string
	// Classes are the taxonomy paths the profile employs (Table 4 row).
	Classes []string
	// Attach wires the profile into the manager.
	Attach func(m *dbwlm.Manager)
}

// chainDispatch composes OnDispatch hooks.
func chainDispatch(m *dbwlm.Manager, hook func(*dbwlm.Running)) {
	prev := m.OnDispatch
	m.OnDispatch = func(rr *dbwlm.Running) {
		if prev != nil {
			prev(rr)
		}
		hook(rr)
	}
}

// DB2Profile emulates IBM DB2 Workload Manager (Section 4.1.1): workloads
// identified by connection origin and work classes by statement type with
// predictive cost elements; service classes with subclasses whose thresholds
// trigger priority aging; concurrency thresholds queueing excess activities;
// and stop-execution thresholds killing runaway queries.
func DB2Profile() *Profile {
	return &Profile{
		Name: "IBM DB2 Workload Manager",
		Classes: []string{
			taxonomy.ClassCharacterizationStatic,
			taxonomy.ClassAdmissionThreshold,
			taxonomy.ClassExecutionReprioritize,
			taxonomy.ClassExecutionCancel,
		},
		Attach: func(m *dbwlm.Manager) {
			// Service classes: OLTP gets a high-weight class; analytical work
			// runs in a tiered class subject to aging; ad hoc in a low class.
			router := characterize.NewRouter(&characterize.ServiceClass{
				Name: "default", Priority: policy.PriorityLow,
			}).
				AddClass(&characterize.ServiceClass{
					Name: "SYSTRANSACT", Priority: policy.PriorityHigh,
				}).
				AddClass(&characterize.ServiceClass{
					Name: "SYSANALYTIC", Priority: policy.PriorityMedium,
					Tiers: []characterize.ServiceTier{
						{Name: "fresh", Weight: 4},
						{Name: "aged", Weight: 1},
						{Name: "stale", Weight: 0.25},
					},
				}).
				AddClass(&characterize.ServiceClass{
					Name: "SYSLOW", Priority: policy.PriorityLow,
					Tiers: []characterize.ServiceTier{
						{Name: "fresh", Weight: 1},
						{Name: "aged", Weight: 0.2},
					},
				}).
				// Workload definitions: origin first (connection attributes),
				// then work classes by type + predictive cost.
				AddDef(&characterize.WorkloadDef{
					Name: "oltp", Match: characterize.OriginMatcher{App: "pos-terminal"},
					ServiceClass: "SYSTRANSACT",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "utility", Match: characterize.TypeMatcher{
						Types: []sqlmini.StatementType{sqlmini.StmtCall, sqlmini.StmtLoad, sqlmini.StmtDDL},
					},
					ServiceClass: "SYSLOW",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "bi", Match: characterize.OriginMatcher{App: "bi-dashboard"},
					ServiceClass: "SYSANALYTIC",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "bigdml", Match: characterize.TypeMatcher{
						Types:       []sqlmini.StatementType{sqlmini.StmtRead},
						MinTimerons: 8_000, // "large queries" work class with predictive cost
					},
					ServiceClass: "SYSLOW",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "analytic", Match: characterize.TypeMatcher{
						Types: []sqlmini.StatementType{sqlmini.StmtRead, sqlmini.StmtWrite},
					},
					ServiceClass: "SYSANALYTIC",
				})
			m.Router = router
			// Concurrency thresholds (queue activities action).
			m.Scheduler = scheduling.NewScheduler(scheduling.NewPriority(),
				scheduling.NewClassMPL(map[string]int{
					"SYSANALYTIC": 6,
					"SYSLOW":      2,
				}))
			// Admission thresholds: estimated cost limit on low-priority work.
			m.Admission = &admission.CostThreshold{
				Limits: map[policy.Priority]float64{
					policy.PriorityLow: 500_000,
				},
				QueueInstead: false,
			}
			// Execution thresholds: aging within the analytic class, stop
			// execution for true runaways.
			ager := execctl.NewAger(m.Engine(), []float64{4, 1, 0.25}, []float64{30, 120})
			ager.Events = m.Stats().Events
			killer := execctl.NewKiller(m.Engine(), 600)
			killer.Events = m.Stats().Events
			chainDispatch(m, func(rr *dbwlm.Running) {
				switch rr.Class.Name {
				case "SYSANALYTIC":
					ager.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
					killer.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
				case "SYSLOW", "default":
					killer.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
				}
			})
		},
	}
}

// SQLServerProfile emulates Microsoft SQL Server Resource Governor with the
// Query Governor Cost Limit option (Section 4.1.2): classifier functions
// route sessions into workload groups; groups live in resource pools with
// MIN/MAX CPU shares enforced by periodic reallocation; the cost-limit
// option disallows queries whose estimated execution time exceeds the limit.
func SQLServerProfile() *Profile {
	return &Profile{
		Name: "Microsoft SQL Server Resource/Query Governor",
		Classes: []string{
			taxonomy.ClassCharacterizationStatic,
			taxonomy.ClassAdmissionThreshold,
			taxonomy.ClassExecutionReprioritize,
		},
		Attach: func(m *dbwlm.Manager) {
			pools, err := characterize.NewPoolSet(
				&characterize.ResourcePool{Name: "oltp_pool", MinCPU: 0.5, MaxCPU: 1, MaxMem: 1},
				&characterize.ResourcePool{Name: "bi_pool", MinCPU: 0.2, MaxCPU: 0.45, MaxMem: 1},
				&characterize.ResourcePool{Name: "default", MinCPU: 0, MaxCPU: 0.3, MaxMem: 1},
			)
			if err != nil {
				panic(err)
			}
			// Classifier functions (user-written criteria).
			router := characterize.NewRouter(&characterize.ServiceClass{
				Name: "default", Priority: policy.PriorityLow,
			}).
				AddClass(&characterize.ServiceClass{Name: "oltp_pool", Priority: policy.PriorityHigh}).
				AddClass(&characterize.ServiceClass{Name: "bi_pool", Priority: policy.PriorityMedium}).
				AddDef(&characterize.WorkloadDef{
					Name: "oltp", Match: characterize.CriteriaFunc{
						Name: "classify_oltp",
						Fn: func(r *workload.Request) bool {
							return r.Origin.App == "pos-terminal" || (r.Type == sqlmini.StmtWrite && r.Est.Timerons < 1000)
						},
					},
					ServiceClass: "oltp_pool",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "bi", Match: characterize.CriteriaFunc{
						Name: "classify_bi",
						Fn: func(r *workload.Request) bool {
							return r.Origin.App == "bi-dashboard" || r.Est.Timerons >= 1000
						},
					},
					ServiceClass: "bi_pool",
				})
			m.Router = router
			// Query Governor Cost Limit: disallow queries with estimated
			// execution time over the limit (reject, server-wide).
			m.Admission = &admission.CostThreshold{Limits: map[policy.Priority]float64{
				policy.PriorityLow:      2_000_000,
				policy.PriorityMedium:   8_000_000,
				policy.PriorityHigh:     0,
				policy.PriorityCritical: 0,
			}}
			// Memory-grant queueing: Resource Governor makes queries wait
			// for a memory grant when their pool's memory is exhausted;
			// emulated as per-pool concurrency limits sized from the pools'
			// MaxMem against typical analytic working sets.
			m.Scheduler = scheduling.NewScheduler(scheduling.NewPriority(),
				scheduling.NewClassMPL(map[string]int{
					"bi_pool": 4,
					"default": 2,
				}))
			// Pool-based dynamic reallocation: every 250ms recompute each
			// pool's effective share from which pools have demand and spread
			// the pool's weight across its running queries.
			m.Sim().Every(250*sim.Millisecond, func() bool {
				demand := map[string]bool{}
				for _, rr := range m.RunningAll() {
					demand[rr.Class.Name] = true
				}
				alloc := pools.AllocateCPU(demand)
				// Walk pools in declared order, not map order: SetWeight
				// calls land on the engine in a stable sequence, keeping
				// whole runs reproducible.
				for _, p := range pools.Pools() {
					pool, share := p.Name, alloc[p.Name]
					ids := m.QueriesOfClass(pool)
					if len(ids) == 0 || share <= 0 {
						continue
					}
					per := 100 * share / float64(len(ids))
					if per < 0.01 {
						per = 0.01
					}
					for _, id := range ids {
						_ = m.Engine().SetWeight(id, per)
					}
				}
				return true
			})
		},
	}
}

// TeradataProfile emulates Teradata Active System Management (Section
// 4.1.3): workload definitions with who/where/what classification criteria;
// object and query-resource filters rejecting unwanted work before
// execution; workload throttles delaying excess concurrency; and exception
// criteria with kill actions monitored during execution.
func TeradataProfile() *Profile {
	return &Profile{
		Name: "Teradata Active System Management",
		Classes: []string{
			taxonomy.ClassCharacterizationStatic,
			taxonomy.ClassAdmissionThreshold,
			taxonomy.ClassExecutionCancel,
		},
		Attach: func(m *dbwlm.Manager) {
			router := characterize.NewRouter(&characterize.ServiceClass{
				Name: "WD-Default", Priority: policy.PriorityLow,
			}).
				AddClass(&characterize.ServiceClass{Name: "WD-Tactical", Priority: policy.PriorityCritical}).
				AddClass(&characterize.ServiceClass{Name: "WD-Analytic", Priority: policy.PriorityMedium}).
				AddClass(&characterize.ServiceClass{Name: "WD-Background", Priority: policy.PriorityLow}).
				// "who" criteria.
				AddDef(&characterize.WorkloadDef{
					Name: "oltp", Match: characterize.OriginMatcher{App: "pos-terminal"},
					ServiceClass: "WD-Tactical",
				}).
				// "what" criteria: estimated processing time.
				AddDef(&characterize.WorkloadDef{
					Name: "bi", Match: characterize.All{
						characterize.TypeMatcher{Types: []sqlmini.StatementType{sqlmini.StmtRead}},
						characterize.TypeMatcher{MinTimerons: 1000},
					},
					ServiceClass: "WD-Analytic",
				}).
				AddDef(&characterize.WorkloadDef{
					Name: "background", Match: characterize.TypeMatcher{
						Types: []sqlmini.StatementType{sqlmini.StmtCall, sqlmini.StmtLoad},
					},
					ServiceClass: "WD-Background",
				})
			m.Router = router
			// Query resource filters: reject work estimated to touch "too
			// many" rows or run "too long".
			m.Admission = &admission.Chain{Controllers: []admission.Controller{
				&admission.CostThreshold{Limits: map[policy.Priority]float64{
					policy.PriorityLow: 8_000,
				}},
				// Utility/system throttles: a global concurrency valve.
				&admission.MPLThreshold{Engine: m.Engine(), Max: 40},
			}}
			// Object throttles: per-workload-definition concurrency with a
			// delay queue.
			m.Scheduler = scheduling.NewScheduler(scheduling.NewPriority(),
				scheduling.NewClassMPL(map[string]int{
					"WD-Analytic":   5,
					"WD-Background": 1,
				}))
			// Exception criteria: CPU time and elapsed-time exceptions kill
			// the query (exception action).
			killer := execctl.NewKiller(m.Engine(), 900)
			killer.Events = m.Stats().Events
			chainDispatch(m, func(rr *dbwlm.Running) {
				if rr.Class.Name != "WD-Tactical" {
					killer.Manage(&execctl.Managed{Query: rr.Query, Class: rr.Class.Name})
				}
			})
		},
	}
}

// Profiles returns the three Table 4 systems in paper order.
func Profiles() []*Profile {
	return []*Profile{DB2Profile(), SQLServerProfile(), TeradataProfile()}
}
