package governor

import (
	"testing"

	"dbwlm"
	"dbwlm/internal/characterize"
	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
	"dbwlm/internal/taxonomy"
	"dbwlm/internal/workload"
)

// runProfile drives the consolidated scenario under a profile and returns
// the manager for inspection.
func runProfile(t *testing.T, p *Profile, seed uint64) *dbwlm.Manager {
	t.Helper()
	s := sim.New(seed)
	m := dbwlm.New(s, engine.Config{Cores: 8, MemoryMB: 4096, IOMBps: 800})
	p.Attach(m)
	gens := workload.Consolidated(s.RNG().Fork(1), workload.ScenarioConfig{
		OLTPRate: 40, BIRate: 0.05, AdHocRate: 0.12, MonsterProb: 0.4,
	})
	m.RunWorkload(gens, 120*sim.Second, 60*sim.Second)
	return m
}

func TestProfilesListAndClasses(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	// Each profile's class list must match Table 4's assignment: all have
	// static characterization and threshold admission; DB2 adds
	// reprioritization + cancellation; SQL Server adds reprioritization;
	// Teradata adds cancellation.
	has := func(p *Profile, class string) bool {
		for _, c := range p.Classes {
			if c == class {
				return true
			}
		}
		return false
	}
	for _, p := range ps {
		if !has(p, taxonomy.ClassCharacterizationStatic) || !has(p, taxonomy.ClassAdmissionThreshold) {
			t.Fatalf("%s missing universal Table 4 classes", p.Name)
		}
	}
	if !has(ps[0], taxonomy.ClassExecutionReprioritize) || !has(ps[0], taxonomy.ClassExecutionCancel) {
		t.Fatal("DB2 profile classes wrong")
	}
	if !has(ps[1], taxonomy.ClassExecutionReprioritize) || has(ps[1], taxonomy.ClassExecutionCancel) {
		t.Fatal("SQL Server profile classes wrong")
	}
	if !has(ps[2], taxonomy.ClassExecutionCancel) || has(ps[2], taxonomy.ClassExecutionReprioritize) {
		t.Fatal("Teradata profile classes wrong")
	}
}

func TestDB2ProfileRoutesAndProtectsOLTP(t *testing.T) {
	m := runProfile(t, DB2Profile(), 1)
	oltp := m.Stats().Workload("oltp")
	if oltp.Completed.Value() < 3000 {
		t.Fatalf("oltp completed = %d", oltp.Completed.Value())
	}
	if !m.Attainment("oltp").Met {
		t.Fatalf("DB2 profile failed OLTP SLA: %v", m.Report())
	}
	// Analytic work was classified and ran.
	if m.Stats().Workload("analytic").Completed.Value() == 0 {
		t.Fatal("no analytic work classified")
	}
}

func TestSQLServerProfileEnforcesPools(t *testing.T) {
	m := runProfile(t, SQLServerProfile(), 2)
	if !m.Attainment("oltp").Met {
		t.Fatalf("SQL Server profile failed OLTP SLA:\n%v", m.Report())
	}
	if m.Stats().Workload("bi").Completed.Value() == 0 {
		t.Fatal("bi pool did no work")
	}
}

func TestTeradataProfileFiltersAndThrottles(t *testing.T) {
	m := runProfile(t, TeradataProfile(), 3)
	if !m.Attainment("oltp").Met {
		t.Fatalf("Teradata profile failed OLTP SLA:\n%v", m.Report())
	}
	// Filters must have rejected some oversized ad-hoc work.
	rejected := m.Stats().Workload("WD-Default").Rejected.Value() +
		m.Stats().Workload("adhoc").Rejected.Value() +
		m.Stats().Workload("bi").Rejected.Value()
	if rejected == 0 {
		t.Log(m.Report())
		t.Fatal("Teradata filters rejected nothing")
	}
}

func TestProfilesBeatNoWLMOnOLTP(t *testing.T) {
	// The Table 4 headline: every commercial profile keeps the OLTP SLA
	// under consolidation pressure; the unmanaged server does not.
	baseline := func(seed uint64) *dbwlm.Manager {
		s := sim.New(seed)
		m := dbwlm.New(s, engine.Config{Cores: 8, MemoryMB: 4096, IOMBps: 800})
		// No WLM: every request runs immediately at uniform weight.
		m.Router = characterize.NewRouter(&characterize.ServiceClass{Name: "flat", Weight: 1})
		gens := workload.Consolidated(s.RNG().Fork(1), workload.ScenarioConfig{
			OLTPRate: 40, BIRate: 0.05, AdHocRate: 0.12, MonsterProb: 0.4,
		})
		m.RunWorkload(gens, 120*sim.Second, 60*sim.Second)
		return m
	}
	base := baseline(1)
	baseRT := base.Stats().Workload("oltp").Response.Mean()
	for _, p := range Profiles() {
		m := runProfile(t, p, 1)
		rt := m.Stats().Workload("oltp").Response.Mean()
		if rt >= baseRT {
			t.Fatalf("%s did not improve OLTP mean RT: %v vs baseline %v", p.Name, rt, baseRT)
		}
	}
}

func TestOracleProfileProtectsInteractive(t *testing.T) {
	m := runProfile(t, OracleProfile(), 4)
	if !m.Attainment("oltp").Met {
		t.Fatalf("Oracle profile failed OLTP SLA:\n%v", m.Report())
	}
	if m.Stats().Workload("reporting").Completed.Value() == 0 {
		t.Fatal("reporting group did no work")
	}
}
