package autonomic

import (
	"math"
	"testing"
	"testing/quick"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

func TestMembershipPartitionOfUnity(t *testing.T) {
	// Low + Medium + High should sum to ~1 across [0,1] (triangular
	// partition), and each stays in [0,1].
	f := func(raw uint16) bool {
		x := float64(raw) / 65535
		var sum float64
		for _, l := range []Level{Low, Medium, High} {
			m := Membership(l, x)
			if m < 0 || m > 1 {
				return false
			}
			sum += m
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipPeaks(t *testing.T) {
	if Membership(Low, 0) != 1 || Membership(Medium, 0.5) != 1 || Membership(High, 1) != 1 {
		t.Fatal("peaks wrong")
	}
	if Membership(Low, 1) != 0 || Membership(High, 0) != 0 {
		t.Fatal("tails wrong")
	}
	// Clamping.
	if Membership(Low, -5) != 1 || Membership(High, 7) != 1 {
		t.Fatal("clamping wrong")
	}
}

func TestFuzzyDecisions(t *testing.T) {
	c := &FuzzyController{Rules: KrompassRules()}
	// Problematic fresh query: low priority, no progress, high contention,
	// never cancelled -> kill-and-resubmit.
	a, s := c.Decide(Inputs{Priority: 0.05, Progress: 0.05, Contention: 0.95, Cancellations: 0})
	if a != ActKillResubmit || s <= 0.5 {
		t.Fatalf("problematic fresh query: %v (%v)", a, s)
	}
	// Same query already cancelled repeatedly -> plain kill.
	a, _ = c.Decide(Inputs{Priority: 0.05, Progress: 0.05, Contention: 0.95, Cancellations: 1})
	if a != ActKill {
		t.Fatalf("repeat offender: %v", a)
	}
	// Nearly finished -> continue regardless of contention.
	a, _ = c.Decide(Inputs{Priority: 0.05, Progress: 0.95, Contention: 0.95})
	if a != ActContinue {
		t.Fatalf("nearly-done query: %v", a)
	}
	// High priority is protected.
	a, _ = c.Decide(Inputs{Priority: 0.95, Progress: 0.1, Contention: 0.95})
	if a != ActContinue {
		t.Fatalf("high-priority query: %v", a)
	}
	// Mid-progress low-priority under contention -> reprioritize.
	a, _ = c.Decide(Inputs{Priority: 0.1, Progress: 0.5, Contention: 0.9})
	if a != ActReprioritize {
		t.Fatalf("mid-flight query: %v", a)
	}
	// Idle system -> continue.
	a, _ = c.Decide(Inputs{Priority: 0.1, Progress: 0.1, Contention: 0.05})
	if a != ActContinue {
		t.Fatalf("idle system: %v", a)
	}
}

func TestFuzzyStrengthsBounded(t *testing.T) {
	c := &FuzzyController{Rules: KrompassRules()}
	f := func(p, pr, co, ca uint8) bool {
		in := Inputs{
			Priority:      float64(p) / 255,
			Progress:      float64(pr) / 255,
			Contention:    float64(co) / 255,
			Cancellations: float64(ca) / 255,
		}
		for _, s := range c.Strengths(in) {
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopCountsAndFlow(t *testing.T) {
	s := sim.New(1)
	var observed, analyzed, planned, executed int
	l := &Loop{
		Period: sim.Second,
		Monitor: func() Observation {
			observed++
			return Observation{Attainments: map[string]policy.Attainment{
				"gold": {Met: false, Ratio: 0.5},
			}}
		},
		Analyze: func(o Observation) []Symptom {
			analyzed++
			return AnalyzeAttainments(o)
		},
		Plan: func(_ Observation, sy []Symptom) []PlannedAction {
			planned++
			return []PlannedAction{{Kind: ActionThrottle, Amount: 0.5}}
		},
		Execute: func(a []PlannedAction) { executed += len(a) },
	}
	l.Start(s)
	s.Run(sim.Time(5500 * sim.Millisecond))
	if observed != 5 || analyzed != 5 || planned != 5 || executed != 5 {
		t.Fatalf("cycle counts: m=%d a=%d p=%d e=%d", observed, analyzed, planned, executed)
	}
	if l.Cycles() != 5 || l.Actions() != 5 || l.Symptoms() != 5 {
		t.Fatal("loop counters wrong")
	}
	l.Stop()
	s.Run(sim.Time(10 * sim.Second))
	if observed != 5 {
		t.Fatal("loop ran after stop")
	}
}

func TestLoopSkipsPlanWhenHealthy(t *testing.T) {
	s := sim.New(1)
	planned := 0
	l := &Loop{
		Period:  sim.Second,
		Monitor: func() Observation { return Observation{} },
		Analyze: func(Observation) []Symptom { return nil },
		Plan: func(Observation, []Symptom) []PlannedAction {
			planned++
			return nil
		},
		Execute: func([]PlannedAction) {},
	}
	l.Start(s)
	s.Run(sim.Time(3500 * sim.Millisecond))
	if planned != 0 {
		t.Fatal("planner invoked with no symptoms")
	}
}

func TestAnalyzeAttainments(t *testing.T) {
	obs := Observation{
		Engine: engine.Stats{MemPressure: 2.0},
		Attainments: map[string]policy.Attainment{
			"ok":  {Met: true, Ratio: 2},
			"bad": {Met: false, Ratio: 0.25},
		},
	}
	sy := AnalyzeAttainments(obs)
	if len(sy) != 2 {
		t.Fatalf("symptoms = %v", sy)
	}
	var violation, overload *Symptom
	for i := range sy {
		switch sy[i].Kind {
		case SymptomSLOViolation:
			violation = &sy[i]
		case SymptomOverload:
			overload = &sy[i]
		}
	}
	if violation == nil || violation.Class != "bad" || math.Abs(violation.Severity-0.75) > 1e-9 {
		t.Fatalf("violation = %+v", violation)
	}
	if overload == nil || overload.Severity != 1 {
		t.Fatalf("overload = %+v", overload)
	}
}

func TestPlanBestPrefersCheapEffectiveAction(t *testing.T) {
	kill := Candidate{
		Action:      PlannedAction{Kind: ActionKill, Query: 1},
		FreedWeight: 10, WorkLost: 30, LatencySeconds: 0,
	}
	throttle := Candidate{
		Action:      PlannedAction{Kind: ActionThrottle, Query: 1, Amount: 0.8},
		FreedWeight: 8, WorkLost: 0, LatencySeconds: 0.5,
	}
	suspendDump := Candidate{
		Action:      PlannedAction{Kind: ActionSuspend, Query: 1},
		FreedWeight: 10, WorkLost: 0, LatencySeconds: 12,
	}
	// Moderate severity: throttling wins (kill destroys too much work,
	// suspend too slow).
	best := PlanBest(0.5, []Candidate{kill, throttle, suspendDump})
	if best == nil || best.Action.Kind != ActionThrottle {
		t.Fatalf("moderate severity best = %+v", best)
	}
	// Low severity with only destructive options: do nothing.
	best = PlanBest(0.05, []Candidate{kill})
	if best != nil {
		t.Fatalf("low severity should plan nothing, got %+v", best)
	}
}

func TestScoreMonotonicInSeverity(t *testing.T) {
	c := Candidate{FreedWeight: 5, WorkLost: 1, LatencySeconds: 1}
	if Score(0.9, c) <= Score(0.1, c) {
		t.Fatal("score not increasing in severity")
	}
}

func TestEnumStrings(t *testing.T) {
	for k := SymptomSLOViolation; k <= SymptomUnderload; k++ {
		if k.String() == "" {
			t.Fatal("symptom name")
		}
	}
	for a := ActionThrottle; a <= ActionNone; a++ {
		if a.String() == "" {
			t.Fatal("action name")
		}
	}
	for v := VarPriority; v < numVars; v++ {
		if v.String() == "" {
			t.Fatal("var name")
		}
	}
	for _, l := range []Level{Low, Medium, High} {
		if l.String() == "" {
			t.Fatal("level name")
		}
	}
	for a := ActContinue; a < numActions; a++ {
		if a.String() == "" {
			t.Fatal("fuzzy action name")
		}
	}
}
