// Package autonomic implements the paper's Section 5.3 vision: an autonomic
// workload management system built as a MAPE feedback loop (monitor —
// analyze — plan — execute) with utility functions guiding the planner, plus
// the rule-based fuzzy-logic execution controller of Krompass et al. [39]
// that chooses among reprioritize / kill / kill-and-resubmit for problematic
// queries from runtime observations.
package autonomic

import (
	"fmt"
	"sort"
)

// FuzzyVar is a linguistic input in [0, 1] with Low/Medium/High triangular
// membership functions.
type FuzzyVar int

// Fuzzy input variables of the Krompass controller: query priority, query
// progress, system resource contention, and how often the query has already
// been cancelled (kill-and-resubmit loops should not spin forever).
const (
	VarPriority FuzzyVar = iota
	VarProgress
	VarContention
	VarCancellations
	numVars
)

// String names the variable.
func (v FuzzyVar) String() string {
	names := []string{"priority", "progress", "contention", "cancellations"}
	if int(v) < len(names) {
		return names[v]
	}
	return fmt.Sprintf("FuzzyVar(%d)", int(v))
}

// Level is a linguistic value.
type Level int

// Linguistic levels.
const (
	Low Level = iota
	Medium
	High
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	default:
		return "high"
	}
}

// Membership evaluates the triangular membership of x (clamped to [0,1]) in
// the level: Low peaks at 0, Medium at 0.5, High at 1.
func Membership(l Level, x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	switch l {
	case Low:
		if x >= 0.5 {
			return 0
		}
		return 1 - x/0.5
	case Medium:
		if x <= 0 || x >= 1 {
			return 0
		}
		if x <= 0.5 {
			return x / 0.5
		}
		return (1 - x) / 0.5
	default: // High
		if x <= 0.5 {
			return 0
		}
		return (x - 0.5) / 0.5
	}
}

// Action is the fuzzy controller's output.
type Action int

// Control actions (Krompass et al.: continue, reprioritize, kill,
// kill-and-resubmit).
const (
	ActContinue Action = iota
	ActReprioritize
	ActKill
	ActKillResubmit
	numActions
)

// String names the action.
func (a Action) String() string {
	names := []string{"continue", "reprioritize", "kill", "kill-and-resubmit"}
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Term is one antecedent clause: variable IS level.
type Term struct {
	Var   FuzzyVar
	Level Level
}

// Rule is IF all terms THEN action (min t-norm for AND).
type Rule struct {
	If   []Term
	Then Action
}

// FuzzyController is a Mamdani-style inference engine over the rule base:
// rule strengths combine by max per action, and the strongest action wins.
type FuzzyController struct {
	Rules []Rule
}

// Inputs are the crisp observations, each normalized to [0, 1].
type Inputs struct {
	Priority      float64 // 0 = lowest business priority
	Progress      float64 // fraction of work completed
	Contention    float64 // resource contention (memory pressure, conflicts)
	Cancellations float64 // prior kills of this query, normalized
}

func (in Inputs) value(v FuzzyVar) float64 {
	switch v {
	case VarPriority:
		return in.Priority
	case VarProgress:
		return in.Progress
	case VarContention:
		return in.Contention
	default:
		return in.Cancellations
	}
}

// Strengths evaluates the rule base and returns each action's aggregate
// firing strength in [0, 1].
func (c *FuzzyController) Strengths(in Inputs) map[Action]float64 {
	out := make(map[Action]float64, int(numActions))
	for _, r := range c.Rules {
		strength := 1.0
		for _, t := range r.If {
			m := Membership(t.Level, in.value(t.Var))
			if m < strength {
				strength = m
			}
		}
		if strength > out[r.Then] {
			out[r.Then] = strength
		}
	}
	return out
}

// Decide returns the strongest action (ActContinue when nothing fires),
// breaking ties toward the milder action.
func (c *FuzzyController) Decide(in Inputs) (Action, float64) {
	st := c.Strengths(in)
	actions := make([]Action, 0, len(st))
	for a := range st {
		actions = append(actions, a)
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i] < actions[j] })
	best := ActContinue
	bestS := 0.0
	for _, a := range actions {
		if st[a] > bestS {
			best, bestS = a, st[a]
		}
	}
	return best, bestS
}

// KrompassRules is the default rule base, transcribing the behaviour the
// paper describes for BI workload execution control: problematic (low
// priority, little progress, heavy contention) queries are killed; queries
// near completion are left to finish; medium cases are reprioritized;
// repeatedly killed queries are resubmitted rather than killed outright.
func KrompassRules() []Rule {
	return []Rule{
		// Contention low: let everything run.
		{If: []Term{{VarContention, Low}}, Then: ActContinue},
		// Nearly done: finishing is cheaper than any control action.
		{If: []Term{{VarProgress, High}}, Then: ActContinue},
		// High-priority queries are never sacrificed.
		{If: []Term{{VarPriority, High}}, Then: ActContinue},
		// Problematic: low priority, early, heavy contention -> kill, but
		// resubmit if it has not been cancelled before (work preservation).
		{If: []Term{{VarPriority, Low}, {VarProgress, Low}, {VarContention, High}, {VarCancellations, Low}},
			Then: ActKillResubmit},
		{If: []Term{{VarPriority, Low}, {VarProgress, Low}, {VarContention, High}, {VarCancellations, High}},
			Then: ActKill},
		// Mid-flight or medium priority under contention: degrade rather
		// than destroy.
		{If: []Term{{VarPriority, Low}, {VarProgress, Medium}, {VarContention, High}}, Then: ActReprioritize},
		{If: []Term{{VarPriority, Medium}, {VarContention, High}}, Then: ActReprioritize},
		{If: []Term{{VarPriority, Low}, {VarContention, Medium}}, Then: ActReprioritize},
	}
}
