package autonomic

import (
	"fmt"
	"sort"

	"dbwlm/internal/engine"
	"dbwlm/internal/obsv"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

// Observation is one monitor snapshot: engine load plus per-class SLO
// attainment — what the MAPE loop's analyzer consumes.
type Observation struct {
	At          sim.Time
	Engine      engine.Stats
	Attainments map[string]policy.Attainment
}

// SymptomKind classifies what the analyzer found.
type SymptomKind int

// Symptoms.
const (
	SymptomSLOViolation SymptomKind = iota
	SymptomOverload
	SymptomUnderload
)

// String names the symptom kind.
func (k SymptomKind) String() string {
	names := []string{"slo-violation", "overload", "underload"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("SymptomKind(%d)", int(k))
}

// Symptom is one diagnosed problem with its severity in (0, 1].
type Symptom struct {
	Kind     SymptomKind
	Class    string
	Severity float64
	// Reason, when set, overrides the Kind-derived flight-recorder reason —
	// analyzers with a finer vocabulary than SymptomKind (the SLO engine's
	// burn-rate/budget-exhausted diagnoses) use it so their reasoning lands
	// verbatim in the trace.
	Reason obsv.Reason
}

// ActionKind is the planner's vocabulary of effector actions — the
// execution-control techniques of the taxonomy that an autonomic manager
// chooses among at run time (the Section 5.2 open problem).
type ActionKind int

// Actions the planner can emit.
const (
	ActionThrottle ActionKind = iota
	ActionSuspend
	ActionKill
	ActionKillResubmit
	ActionReprioritize
	ActionResume
	ActionNone
)

// String names the action kind.
func (k ActionKind) String() string {
	names := []string{"throttle", "suspend", "kill", "kill-resubmit", "reprioritize", "resume", "none"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// PlannedAction is one effector invocation.
type PlannedAction struct {
	Kind   ActionKind
	Query  int64
	Class  string
	Amount float64 // throttle fraction or new weight, by kind
}

// Loop is the MAPE-K feedback loop of Section 5.3: a monitor that snapshots
// system performance, an analyzer that diagnoses symptoms, a planner that
// selects techniques, and an executor that imposes them. Knowledge (the
// policies) lives in the closures.
type Loop struct {
	Period  sim.Duration
	Monitor func() Observation
	Analyze func(Observation) []Symptom
	Plan    func(Observation, []Symptom) []PlannedAction
	Execute func([]PlannedAction)

	// Flight, when non-nil, records every iteration's monitor snapshot,
	// diagnosed symptoms, and executed actions — the MAPE loop thinking out
	// loud in the flight recorder.
	Flight *obsv.Recorder
	// ClassID resolves a class name to the recorder's class-ID space (nil
	// records obsv.NoClass for class-scoped symptoms and actions).
	ClassID func(string) int32

	cycles   int64
	actions  int64
	symptoms int64
	stop     func()
}

// flightClass maps a symptom/action class name through ClassID.
func (l *Loop) flightClass(name string) int32 {
	if name == "" || l.ClassID == nil {
		return obsv.NoClass
	}
	return l.ClassID(name)
}

// symptomReason maps the analyzer vocabulary onto recorder reasons.
func symptomReason(k SymptomKind) obsv.Reason {
	switch k {
	case SymptomSLOViolation:
		return obsv.ReasonSLOViolation
	case SymptomOverload:
		return obsv.ReasonOverload
	case SymptomUnderload:
		return obsv.ReasonUnderload
	}
	return obsv.ReasonNone
}

// actionReason maps the planner vocabulary onto recorder reasons.
func actionReason(k ActionKind) obsv.Reason {
	switch k {
	case ActionThrottle:
		return obsv.ReasonThrottle
	case ActionSuspend:
		return obsv.ReasonSuspend
	case ActionKill:
		return obsv.ReasonKill
	case ActionKillResubmit:
		return obsv.ReasonKillResubmit
	case ActionReprioritize:
		return obsv.ReasonReprioritize
	case ActionResume:
		return obsv.ReasonResume
	}
	return obsv.ReasonNoAction
}

// Start runs the loop every Period on the simulator.
func (l *Loop) Start(s *sim.Simulator) {
	period := l.Period
	if period <= 0 {
		period = sim.Second
	}
	l.stop = s.Every(period, func() bool {
		l.RunOnce()
		return true
	})
}

// Stop halts the loop.
func (l *Loop) Stop() {
	if l.stop != nil {
		l.stop()
	}
}

// RunOnce executes one monitor-analyze-plan-execute cycle.
func (l *Loop) RunOnce() {
	l.cycles++
	obs := l.Monitor()
	at := int64(obs.At) * 1000 // sim microseconds -> recorder nanoseconds
	l.Flight.Record(obsv.Event{At: at, Kind: obsv.KindMAPEMonitor,
		Verdict: obsv.NoVerdict, Class: obsv.NoClass,
		Value: obs.Engine.MemPressure, Aux: float64(obs.Engine.InEngine)})
	symptoms := l.Analyze(obs)
	l.symptoms += int64(len(symptoms))
	for i := range symptoms {
		reason := symptoms[i].Reason
		if reason == obsv.ReasonNone {
			reason = symptomReason(symptoms[i].Kind)
		}
		l.Flight.Record(obsv.Event{At: at, Kind: obsv.KindMAPESymptom,
			Reason: reason, Verdict: obsv.NoVerdict,
			Class: l.flightClass(symptoms[i].Class), Value: symptoms[i].Severity})
	}
	if len(symptoms) == 0 {
		return
	}
	actions := l.Plan(obs, symptoms)
	l.actions += int64(len(actions))
	for i := range actions {
		l.Flight.Record(obsv.Event{At: at, Kind: obsv.KindMAPEAction,
			Reason: actionReason(actions[i].Kind), Verdict: obsv.NoVerdict,
			Class: l.flightClass(actions[i].Class), QID: actions[i].Query,
			Value: actions[i].Amount})
	}
	if len(actions) > 0 {
		l.Execute(actions)
	}
}

// Cycles, Actions, Symptoms report loop activity.
func (l *Loop) Cycles() int64 { return l.cycles }

// Actions reports the number of planned actions executed.
func (l *Loop) Actions() int64 { return l.actions }

// Symptoms reports the number of diagnosed symptoms.
func (l *Loop) Symptoms() int64 { return l.symptoms }

// AnalyzeAttainments is the standard analyzer: a symptom per class whose SLO
// attainment ratio is below 1, severity growing with the shortfall; plus
// overload when memory is overcommitted and underload when the engine is
// nearly idle with work present elsewhere.
func AnalyzeAttainments(obs Observation) []Symptom {
	var out []Symptom
	classes := make([]string, 0, len(obs.Attainments))
	for c := range obs.Attainments {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		a := obs.Attainments[c]
		if a.Met {
			continue
		}
		sev := 1 - a.Ratio
		if sev > 1 {
			sev = 1
		}
		if sev <= 0 {
			continue
		}
		out = append(out, Symptom{Kind: SymptomSLOViolation, Class: c, Severity: sev})
	}
	if obs.Engine.MemPressure > 1.1 {
		sev := obs.Engine.MemPressure - 1
		if sev > 1 {
			sev = 1
		}
		out = append(out, Symptom{Kind: SymptomOverload, Severity: sev})
	}
	return out
}

// Candidate is one possible control action with the planner's cost model:
// how much resource weight it frees, how much completed work it destroys,
// and how long until the resources are actually available.
type Candidate struct {
	Action PlannedAction
	// FreedWeight is the resource weight released to the suffering classes.
	FreedWeight float64
	// WorkLost is completed work destroyed (kill) or deferred (suspend),
	// in ideal-seconds.
	WorkLost float64
	// LatencySeconds until the resources free up (suspend dumps take time;
	// throttling acts at the next quantum).
	LatencySeconds float64
}

// Score ranks a candidate for a symptom of the given severity: benefit is
// severity-weighted freed resources, discounted by destroyed work and
// reaction latency. The weights encode the paper's qualitative ordering —
// kills free resources instantly but waste work; throttling preserves work
// but frees less.
func Score(severity float64, c Candidate) float64 {
	return severity*c.FreedWeight - 0.3*c.WorkLost - 0.2*c.LatencySeconds
}

// PlanBest picks the highest-scoring candidate per symptom (nil when no
// candidate scores above zero). Deterministic: ties break toward the earlier
// candidate.
func PlanBest(severity float64, candidates []Candidate) *Candidate {
	var best *Candidate
	bestScore := 0.0
	for i := range candidates {
		s := Score(severity, candidates[i])
		if s > bestScore {
			best = &candidates[i]
			bestScore = s
		}
	}
	return best
}
