// Package workload defines database requests and the synthetic workload
// generators used throughout the experiments: OLTP transaction streams, BI
// query mixes, report-generation batches, ad-hoc queries, and on-line
// database utilities — the workload types the paper's consolidation scenario
// (Section 1) places on one shared server.
package workload

import (
	"fmt"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
)

// Origin identifies "who" issued a request (Section 2.2): the connection
// attributes DB2 workloads and Teradata classification criteria match on.
type Origin struct {
	App       string
	User      string
	ClientIP  string
	SessionID int64
}

// Estimates are the optimizer's predictions for a request — the only
// information admission control has before execution (Section 3.2). They may
// be wrong; the engine runs the true QuerySpec.
type Estimates struct {
	CPUSeconds float64
	IOMB       float64
	MemMB      float64
	Rows       float64
	// Timerons is the composite optimizer cost in DB2-style units.
	Timerons float64
}

// TimeronsOf computes the composite cost from CPU and IO components.
//
//dbwlm:hotpath
func TimeronsOf(cpuSeconds, ioMB float64) float64 {
	return cpuSeconds*1000 + ioMB*10
}

// Request is one unit of work flowing through the workload manager.
type Request struct {
	ID   int64
	SQL  string
	Stmt *sqlmini.Statement
	Type sqlmini.StatementType

	Origin   Origin
	Workload string // generator-assigned workload name (ground truth label)
	Priority policy.Priority
	SLO      policy.SLO

	Arrive sim.Time
	Est    Estimates
	True   engine.QuerySpec

	// Resubmit counts kill-and-resubmit cycles.
	Resubmit int
}

// String renders a short identification of the request.
func (r *Request) String() string {
	return fmt.Sprintf("req %d [%s/%s %v est=%.0f timerons]",
		r.ID, r.Workload, r.Type, r.Priority, r.Est.Timerons)
}

// EstimateModel derives optimizer estimates and true engine work from a
// sqlmini plan, applying multiplicative lognormal error to the true values —
// the "query costs estimated by the optimizer may be inaccurate" premise of
// Section 2.3 that motivates execution control.
type EstimateModel struct {
	rng *sim.RNG
	// Sigma is the lognormal error shape; 0 makes estimates exact.
	Sigma float64
}

// NewEstimateModel returns an estimate model with error shape sigma over rng.
func NewEstimateModel(rng *sim.RNG, sigma float64) *EstimateModel {
	return &EstimateModel{rng: rng, Sigma: sigma}
}

// FromPlan converts a plan into (estimates, true spec). The plan totals are
// the estimate; the truth is the estimate perturbed by unbiased noise.
func (m *EstimateModel) FromPlan(p *sqlmini.Plan, parallelism float64) (Estimates, engine.QuerySpec) {
	est := Estimates{
		CPUSeconds: p.TotalCPU(),
		IOMB:       p.TotalIO(),
		MemMB:      p.PeakMem(),
		Rows:       p.EstRows(),
	}
	est.Timerons = TimeronsOf(est.CPUSeconds, est.IOMB)
	noise := func() float64 { return m.rng.UnbiasedLogNormal(m.Sigma) }
	spec := engine.QuerySpec{
		CPUWork:     est.CPUSeconds * noise(),
		IOWork:      est.IOMB * noise(),
		MemMB:       est.MemMB,
		Parallelism: parallelism,
		Rows:        int64(est.Rows * noise()),
		StateMB:     p.TotalState(),
	}
	return est, spec
}

// FromSpec derives estimates from a known true spec by perturbing it — the
// inverse direction, used when a generator constructs work directly.
func (m *EstimateModel) FromSpec(spec engine.QuerySpec) Estimates {
	noise := func() float64 { return m.rng.UnbiasedLogNormal(m.Sigma) }
	est := Estimates{
		CPUSeconds: spec.CPUWork * noise(),
		IOMB:       spec.IOWork * noise(),
		MemMB:      spec.MemMB,
		Rows:       float64(spec.Rows) * noise(),
	}
	est.Timerons = TimeronsOf(est.CPUSeconds, est.IOMB)
	return est
}
