package workload

import (
	"bytes"
	"math"
	"testing"

	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
)

func TestOLTPGenProducesRequests(t *testing.T) {
	s := sim.New(1)
	seq := &Sequence{}
	g := &OLTPGen{
		WorkloadName: "oltp",
		Rate:         100,
		Priority:     policy.PriorityHigh,
		SLO:          policy.AvgResponseTime(100 * sim.Millisecond),
		Seq:          seq,
	}
	var got []*Request
	g.Start(s, sim.Time(10*sim.Second), func(r *Request) { got = append(got, r) })
	s.RunAll(1 << 20)
	// ~1000 arrivals expected over 10s at 100/s.
	if len(got) < 800 || len(got) > 1200 {
		t.Fatalf("arrivals = %d, want ~1000", len(got))
	}
	for _, r := range got[:10] {
		if r.Workload != "oltp" || r.Priority != policy.PriorityHigh {
			t.Fatalf("labeling wrong: %+v", r)
		}
		if r.True.CPUWork <= 0 {
			t.Fatal("no CPU work")
		}
		if r.Stmt == nil {
			t.Fatal("no parsed statement")
		}
		if r.Est.Timerons <= 0 {
			t.Fatal("no timeron estimate")
		}
	}
	// IDs unique and increasing.
	seen := map[int64]bool{}
	for _, r := range got {
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
	}
}

func TestOLTPGenDeterminism(t *testing.T) {
	runOnce := func() []int64 {
		s := sim.New(7)
		g := &OLTPGen{WorkloadName: "oltp", Rate: 50, Seq: &Sequence{}}
		var ids []int64
		var times []sim.Time
		g.Start(s, sim.Time(5*sim.Second), func(r *Request) {
			ids = append(ids, r.ID)
			times = append(times, r.Arrive)
		})
		s.RunAll(1 << 20)
		out := append([]int64{}, ids...)
		for _, tt := range times {
			out = append(out, int64(tt))
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different lengths across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestBIGenCostsDwarfOLTP(t *testing.T) {
	s := sim.New(1)
	seq := &Sequence{}
	em := NewEstimateModel(s.RNG().Fork(99), 0.3)
	bi := &BIGen{WorkloadName: "bi", Rate: 2, Priority: policy.PriorityMedium,
		SLO: policy.BestEffort(), Seq: seq, Est: em}
	var reqs []*Request
	bi.Start(s, sim.Time(20*sim.Second), func(r *Request) { reqs = append(reqs, r) })
	s.RunAll(1 << 20)
	if len(reqs) < 10 {
		t.Fatalf("BI arrivals = %d", len(reqs))
	}
	for _, r := range reqs {
		if r.True.CPUWork < 0.5 {
			t.Fatalf("BI query too cheap: %+v", r.True)
		}
		if r.Type != sqlmini.StmtRead {
			t.Fatalf("BI type = %v", r.Type)
		}
	}
}

func TestEstimateModelNoise(t *testing.T) {
	rng := sim.NewRNG(5)
	em := NewEstimateModel(rng, 0.5)
	cat := sqlmini.DefaultCatalog()
	cm := sqlmini.NewCostModel(cat)
	plan, err := cm.PlanSQL("SELECT COUNT(*) FROM sales_fact")
	if err != nil {
		t.Fatal(err)
	}
	var ratioSum float64
	const n = 500
	for i := 0; i < n; i++ {
		est, spec := em.FromPlan(plan, 2)
		if est.CPUSeconds != plan.TotalCPU() {
			t.Fatal("estimate should equal plan totals")
		}
		ratioSum += spec.CPUWork / est.CPUSeconds
	}
	mean := ratioSum / n
	if math.Abs(mean-1) > 0.1 {
		t.Fatalf("true/est ratio mean = %v, want ~1 (unbiased)", mean)
	}
	// Exact estimates with sigma 0.
	em0 := NewEstimateModel(rng, 0)
	_, spec := em0.FromPlan(plan, 2)
	if spec.CPUWork != plan.TotalCPU() {
		t.Fatal("sigma=0 should be exact")
	}
}

func TestBatchGen(t *testing.T) {
	s := sim.New(1)
	seq := &Sequence{}
	g := &BatchGen{
		WorkloadName: "reports",
		At:           sim.Time(5 * sim.Second),
		Count:        25,
		Priority:     policy.PriorityLow,
		SLO:          policy.PercentileResponseTime(90, 10*sim.Minute),
		Draw: func(i int, now sim.Time) *Request {
			return &Request{ID: seq.Next(), SQL: "SELECT id FROM orders", Arrive: now}
		},
	}
	var got []*Request
	g.Start(s, sim.Time(sim.Minute), func(r *Request) { got = append(got, r) })
	s.RunAll(1000)
	if len(got) != 25 {
		t.Fatalf("batch size = %d", len(got))
	}
	for _, r := range got {
		if r.Arrive != sim.Time(5*sim.Second) || r.Workload != "reports" {
			t.Fatalf("batch labeling: %+v", r)
		}
	}
	// A batch past the horizon produces nothing.
	s2 := sim.New(1)
	g.At = sim.Time(2 * sim.Minute)
	count := 0
	g.Start(s2, sim.Time(sim.Minute), func(*Request) { count++ })
	s2.RunAll(1000)
	if count != 0 {
		t.Fatal("batch past horizon fired")
	}
}

func TestUtilityGenKinds(t *testing.T) {
	for _, kind := range []string{"backup", "reorg", "runstats"} {
		s := sim.New(1)
		g := &UtilityGen{WorkloadName: "util", Times: []sim.Time{sim.Time(sim.Second)},
			Priority: policy.PriorityLow, Seq: &Sequence{}, Kind: kind}
		var got []*Request
		g.Start(s, sim.Time(sim.Minute), func(r *Request) { got = append(got, r) })
		s.RunAll(100)
		if len(got) != 1 {
			t.Fatalf("%s: got %d requests", kind, len(got))
		}
		if got[0].True.IOWork < 500 {
			t.Fatalf("%s: utility should be IO-heavy: %+v", kind, got[0].True)
		}
		if got[0].Type != sqlmini.StmtCall {
			t.Fatalf("%s: type = %v", kind, got[0].Type)
		}
	}
}

func TestAdHocGenMonsters(t *testing.T) {
	s := sim.New(3)
	g := &AdHocGen{WorkloadName: "adhoc", Rate: 5, Priority: policy.PriorityLow,
		SLO: policy.BestEffort(), Seq: &Sequence{}, MonsterProb: 0.5}
	var monsters, normal int
	g.Start(s, sim.Time(60*sim.Second), func(r *Request) {
		if r.True.CPUWork > 10 {
			monsters++
			// Monsters are underestimated.
			if r.Est.CPUSeconds >= r.True.CPUWork/2 {
				t.Fatalf("monster not underestimated: est=%v true=%v", r.Est.CPUSeconds, r.True.CPUWork)
			}
		} else {
			normal++
		}
	})
	s.RunAll(1 << 20)
	if monsters == 0 || normal == 0 {
		t.Fatalf("monsters=%d normal=%d; want a mix", monsters, normal)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := sim.New(1)
	g := &OLTPGen{WorkloadName: "oltp", Rate: 20, Priority: policy.PriorityHigh,
		SLO: policy.AvgResponseTime(sim.Second), Seq: &Sequence{}}
	var entries []TraceEntry
	g.Start(s, sim.Time(5*sim.Second), func(r *Request) { entries = append(entries, EntryOf(r)) })
	s.RunAll(1 << 20)
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip %d -> %d", len(entries), len(back))
	}
	r, err := back[0].ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "oltp" || r.Priority != policy.PriorityHigh || r.SLO.Kind != policy.SLOAvgResponseTime {
		t.Fatalf("reconstructed request wrong: %+v", r)
	}
	if r.True.CPUWork != entries[0].True.CPUWork {
		t.Fatal("true spec not preserved")
	}
}

func TestReplayGen(t *testing.T) {
	entries := []TraceEntry{
		{ID: 1, SQL: "SELECT a FROM t", Workload: "w", ArriveUS: int64(sim.Second)},
		{ID: 2, SQL: "SELECT b FROM t", Workload: "w", ArriveUS: int64(3 * sim.Second)},
		{ID: 3, SQL: "SELECT c FROM t", Workload: "w", ArriveUS: int64(100 * sim.Second)},
	}
	s := sim.New(1)
	g := &ReplayGen{WorkloadName: "w", Entries: entries}
	var got []*Request
	g.Start(s, sim.Time(10*sim.Second), func(r *Request) { got = append(got, r) })
	s.RunAll(100)
	if len(got) != 2 {
		t.Fatalf("replayed %d, want 2 (third past horizon)", len(got))
	}
	if got[0].Arrive != sim.Time(sim.Second) {
		t.Fatalf("arrival time = %v", got[0].Arrive)
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{ID: 1, Workload: "w", Priority: policy.PriorityHigh}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestTimerons(t *testing.T) {
	if TimeronsOf(1, 0) != 1000 || TimeronsOf(0, 1) != 10 {
		t.Fatal("timeron constants changed unexpectedly")
	}
}

func TestPoissonRateZero(t *testing.T) {
	s := sim.New(1)
	g := &OLTPGen{WorkloadName: "idle", Rate: 0, Seq: &Sequence{}}
	count := 0
	g.Start(s, sim.Time(10*sim.Second), func(*Request) { count++ })
	s.RunAll(10)
	if count != 0 {
		t.Fatal("rate 0 generated arrivals")
	}
}
