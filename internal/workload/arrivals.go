package workload

import (
	"math"

	"dbwlm/internal/sim"
)

// RateFunc maps virtual time to an instantaneous arrival rate (per second).
type RateFunc func(at sim.Time) float64

// ConstantRate returns a flat rate function.
func ConstantRate(rate float64) RateFunc {
	return func(sim.Time) float64 { return rate }
}

// OnOffRate models a bursty (interrupted Poisson) process: rate alternates
// between on and off levels with the given period and duty cycle.
func OnOffRate(onRate, offRate float64, period sim.Duration, dutyCycle float64) RateFunc {
	if period <= 0 {
		period = sim.Minute
	}
	if dutyCycle <= 0 || dutyCycle > 1 {
		dutyCycle = 0.5
	}
	return func(at sim.Time) float64 {
		into := float64(int64(at)%int64(period)) / float64(period)
		if into < dutyCycle {
			return onRate
		}
		return offRate
	}
}

// DiurnalRate models the day/night demand curve workload managers schedule
// around (batch windows at night, peaks during business hours): a sinusoid
// between min and max over dayLength, peaking mid-"day".
func DiurnalRate(minRate, maxRate float64, dayLength sim.Duration) RateFunc {
	if dayLength <= 0 {
		dayLength = 24 * sim.Hour
	}
	return func(at sim.Time) float64 {
		phase := 2 * math.Pi * float64(int64(at)%int64(dayLength)) / float64(dayLength)
		// Peak at midday (phase pi), trough at midnight (phase 0).
		frac := (1 - math.Cos(phase)) / 2
		return minRate + (maxRate-minRate)*frac
	}
}

// nonHomogeneousArrivals schedules arrivals from a time-varying rate via
// thinning (Lewis-Shedler): candidate events at the rate ceiling are
// accepted with probability rate(t)/ceiling.
func nonHomogeneousArrivals(s *sim.Simulator, rng *sim.RNG, rate RateFunc, ceiling float64,
	horizon sim.Time, fire func()) {
	if ceiling <= 0 {
		return
	}
	var next func()
	next = func() {
		gap := sim.DurationFromSeconds(rng.ExpFloat64(ceiling))
		at := s.Now().Add(gap)
		if at > horizon {
			return
		}
		s.At(at, func() {
			if rng.Float64() < rate(s.Now())/ceiling {
				fire()
			}
			next()
		})
	}
	next()
}

// ModulatedGen wraps any per-request draw function with a time-varying
// arrival process — the fluctuating request mix of the paper's introduction
// ("workload requests present on a database server can fluctuate rapidly").
type ModulatedGen struct {
	WorkloadName string
	Rate         RateFunc
	// Ceiling must bound Rate from above (used for thinning).
	Ceiling float64
	// Draw produces each request.
	Draw func(now sim.Time) *Request
}

// Name implements Generator.
func (g *ModulatedGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *ModulatedGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	rng := s.RNG().Fork(hashLabel(g.WorkloadName) ^ 0xBEEF)
	nonHomogeneousArrivals(s, rng, g.Rate, g.Ceiling, horizon, func() {
		r := g.Draw(s.Now())
		if r.Workload == "" {
			r.Workload = g.WorkloadName
		}
		submit(r)
	})
}
