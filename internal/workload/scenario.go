package workload

import (
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

// ScenarioConfig parameterizes the consolidated-server scenario of the
// paper's introduction: OLTP, BI, report-batch, ad-hoc, and utility
// workloads sharing one database server, each with its own SLA.
type ScenarioConfig struct {
	// OLTPRate is transactional arrivals per second (default 60).
	OLTPRate float64
	// BIRate is analytical arrivals per second (default 0.05).
	BIRate float64
	// AdHocRate is ad-hoc arrivals per second (default 0.05).
	AdHocRate float64
	// MonsterProb is the chance an ad-hoc arrival is a monster (default 0.15).
	MonsterProb float64
	// ReportBatchAt schedules the report batch (0 disables).
	ReportBatchAt sim.Time
	// ReportBatchSize is the number of report queries (default 15).
	ReportBatchSize int
	// UtilityTimes schedules on-line utilities (empty disables).
	UtilityTimes []sim.Time
	// EstimateSigma is optimizer-estimate error (default 0.3).
	EstimateSigma float64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.OLTPRate == 0 {
		c.OLTPRate = 60
	}
	if c.BIRate == 0 {
		c.BIRate = 0.05
	}
	if c.AdHocRate == 0 {
		c.AdHocRate = 0.05
	}
	if c.MonsterProb == 0 {
		c.MonsterProb = 0.15
	}
	if c.ReportBatchSize == 0 {
		c.ReportBatchSize = 15
	}
	if c.EstimateSigma == 0 {
		c.EstimateSigma = 0.3
	}
	return c
}

// Consolidated builds the generators of the consolidated-server scenario.
// Workload names: "oltp" (high priority, 300ms avg RT SLA), "bi" (medium,
// p95 <= 120s), "reports" (low, best effort), "adhoc" (low, best effort,
// occasionally monstrous), "utility" (low).
func Consolidated(rng *sim.RNG, cfg ScenarioConfig) []Generator {
	cfg = cfg.withDefaults()
	seq := &Sequence{}
	em := NewEstimateModel(rng.Fork(0xE57), cfg.EstimateSigma)
	gens := []Generator{
		&OLTPGen{
			WorkloadName: "oltp",
			Rate:         cfg.OLTPRate,
			Priority:     policy.PriorityHigh,
			SLO:          policy.AvgResponseTime(300 * sim.Millisecond),
			Seq:          seq,
			Est:          em,
		},
		&BIGen{
			WorkloadName: "bi",
			Rate:         cfg.BIRate,
			Priority:     policy.PriorityMedium,
			SLO:          policy.PercentileResponseTime(95, 120*sim.Second),
			Seq:          seq,
			Est:          em,
		},
		&AdHocGen{
			WorkloadName: "adhoc",
			Rate:         cfg.AdHocRate,
			Priority:     policy.PriorityLow,
			SLO:          policy.BestEffort(),
			MonsterProb:  cfg.MonsterProb,
			Seq:          seq,
		},
	}
	if cfg.ReportBatchAt > 0 {
		bi := &BIGen{WorkloadName: "reports", Rate: 0, Priority: policy.PriorityLow,
			SLO: policy.BestEffort(), Seq: seq, Est: em}
		// Initialize the BI generator's templates by starting it with no
		// arrivals; Draw then reuses its distribution.
		gens = append(gens, &BatchGen{
			WorkloadName: "reports",
			At:           cfg.ReportBatchAt,
			Count:        cfg.ReportBatchSize,
			Priority:     policy.PriorityLow,
			SLO:          policy.PercentileResponseTime(90, 20*sim.Minute),
			Draw: func(i int, now sim.Time) *Request {
				return bi.MakeRequest(now)
			},
		}, bi)
	}
	if len(cfg.UtilityTimes) > 0 {
		gens = append(gens, &UtilityGen{
			WorkloadName: "utility",
			Times:        cfg.UtilityTimes,
			Priority:     policy.PriorityLow,
			Seq:          seq,
			Kind:         "backup",
		})
	}
	return gens
}
