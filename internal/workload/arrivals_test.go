package workload

import (
	"math"
	"testing"

	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
)

func countArrivals(t *testing.T, rate RateFunc, ceiling float64, horizon sim.Duration) []sim.Time {
	t.Helper()
	s := sim.New(17)
	g := &ModulatedGen{
		WorkloadName: "mod",
		Rate:         rate,
		Ceiling:      ceiling,
		Draw: func(now sim.Time) *Request {
			return &Request{Arrive: now, True: engine.QuerySpec{CPUWork: 0.01}}
		},
	}
	var times []sim.Time
	g.Start(s, sim.Time(horizon), func(r *Request) {
		times = append(times, r.Arrive)
		if r.Workload != "mod" {
			t.Fatal("workload not labeled")
		}
	})
	s.RunAll(1 << 22)
	return times
}

func TestConstantRateMatchesPoisson(t *testing.T) {
	times := countArrivals(t, ConstantRate(20), 20, 100*sim.Second)
	rate := float64(len(times)) / 100
	if math.Abs(rate-20) > 2 {
		t.Fatalf("constant modulated rate = %v, want ~20", rate)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// 10s period, 50% duty: 100/s bursts then silence.
	rate := OnOffRate(100, 0, 10*sim.Second, 0.5)
	times := countArrivals(t, rate, 100, 100*sim.Second)
	var on, off int
	for _, at := range times {
		into := float64(int64(at)%int64(10*sim.Second)) / float64(10*sim.Second)
		if into < 0.5 {
			on++
		} else {
			off++
		}
	}
	if off != 0 {
		t.Fatalf("arrivals during the off phase: %d", off)
	}
	if on < 4000 || on > 6000 {
		t.Fatalf("on-phase arrivals = %d, want ~5000", on)
	}
}

func TestDiurnalPeakAndTrough(t *testing.T) {
	day := 100 * sim.Second // compressed day
	rate := DiurnalRate(2, 50, day)
	// Trough at t=0, peak at half day.
	if r := rate(0); math.Abs(r-2) > 1e-9 {
		t.Fatalf("trough rate = %v", r)
	}
	if r := rate(sim.Time(day / 2)); math.Abs(r-50) > 1e-9 {
		t.Fatalf("peak rate = %v", r)
	}
	// Arrivals concentrate mid-day.
	times := countArrivals(t, rate, 50, sim.Duration(day))
	var firstQuarter, midHalf int
	for _, at := range times {
		into := float64(at) / float64(day)
		switch {
		case into < 0.25:
			firstQuarter++
		case into >= 0.25 && into < 0.75:
			midHalf++
		}
	}
	if midHalf < 4*firstQuarter {
		t.Fatalf("diurnal concentration wrong: firstQuarter=%d midHalf=%d", firstQuarter, midHalf)
	}
}

func TestModulatedGenZeroCeiling(t *testing.T) {
	times := countArrivals(t, ConstantRate(10), 0, 10*sim.Second)
	if len(times) != 0 {
		t.Fatal("zero ceiling generated arrivals")
	}
}
