package workload

import (
	"fmt"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
)

// SubmitFunc receives generated requests as they arrive.
type SubmitFunc func(*Request)

// Generator produces a stream of requests on the simulator.
type Generator interface {
	// Name is the workload name the generator labels its requests with.
	Name() string
	// Start schedules the generator's arrivals up to the horizon.
	Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc)
}

// Sequence allocates request IDs shared across generators.
type Sequence struct{ n int64 }

// Next returns the next ID.
func (s *Sequence) Next() int64 {
	s.n++
	return s.n
}

// poissonArrivals schedules arrivals at exponential interarrival times with
// the given rate until the horizon.
func poissonArrivals(s *sim.Simulator, rng *sim.RNG, rate float64, horizon sim.Time, fire func()) {
	if rate <= 0 {
		return
	}
	var next func()
	next = func() {
		gap := sim.DurationFromSeconds(rng.ExpFloat64(rate))
		at := s.Now().Add(gap)
		if at > horizon {
			return
		}
		s.At(at, func() {
			fire()
			next()
		})
	}
	next()
}

// OLTPGen generates a stream of short transactional requests: point reads,
// payments (update), and order inserts, with exclusive locks drawn from a
// Zipfian key space so that contention grows with concurrency.
type OLTPGen struct {
	WorkloadName string
	Rate         float64 // arrivals per second
	Priority     policy.Priority
	SLO          policy.SLO
	LockKeys     int     // key space size (default 200)
	LockSkew     float64 // zipf skew (default 0.8)
	Seq          *Sequence
	Est          *EstimateModel
	rng          *sim.RNG
	zipf         *sim.ZipfGen
}

// Name implements Generator.
func (g *OLTPGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *OLTPGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	g.rng = s.RNG().Fork(hashLabel(g.WorkloadName))
	keys := g.LockKeys
	if keys <= 0 {
		keys = 200
	}
	skew := g.LockSkew
	if skew <= 0 {
		skew = 0.8
	}
	g.zipf = sim.NewZipfGen(g.rng.Fork(1), keys, skew)
	poissonArrivals(s, g.rng, g.Rate, horizon, func() {
		submit(g.makeRequest(s.Now()))
	})
}

func (g *OLTPGen) makeRequest(now sim.Time) *Request {
	kind := g.rng.Intn(3)
	var sql string
	var spec engine.QuerySpec
	switch kind {
	case 0: // point read
		sql = fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", g.rng.Intn(1000000))
		spec = engine.QuerySpec{
			CPUWork: 0.008 + g.rng.Float64()*0.012,
			IOWork:  0.2 + g.rng.Float64()*0.3,
			MemMB:   2,
			Rows:    1,
			Locks:   []engine.LockReq{{Key: g.zipf.Next(), Exclusive: false, AtProgress: 0}},
		}
	case 1: // payment update
		sql = fmt.Sprintf("UPDATE accounts SET balance = balance - %d WHERE id = %d",
			1+g.rng.Intn(100), g.rng.Intn(1000000))
		spec = engine.QuerySpec{
			CPUWork: 0.015 + g.rng.Float64()*0.025,
			IOWork:  0.4 + g.rng.Float64()*0.6,
			MemMB:   4,
			Rows:    1,
			Locks: []engine.LockReq{
				{Key: g.zipf.Next(), Exclusive: true, AtProgress: 0},
				{Key: g.zipf.Next(), Exclusive: true, AtProgress: 0.5},
			},
		}
	default: // order insert
		sql = fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)",
			g.rng.Intn(1000000), g.rng.Intn(100000), 1+g.rng.Intn(500))
		spec = engine.QuerySpec{
			CPUWork: 0.01 + g.rng.Float64()*0.02,
			IOWork:  0.4 + g.rng.Float64()*0.8,
			MemMB:   4,
			Rows:    1,
			Locks:   []engine.LockReq{{Key: g.zipf.Next(), Exclusive: true, AtProgress: 0}},
		}
	}
	stmt := sqlmini.MustParse(sql)
	var est Estimates
	if g.Est != nil {
		est = g.Est.FromSpec(spec)
	} else {
		est = Estimates{CPUSeconds: spec.CPUWork, IOMB: spec.IOWork, MemMB: spec.MemMB,
			Rows: float64(spec.Rows), Timerons: TimeronsOf(spec.CPUWork, spec.IOWork)}
	}
	return &Request{
		ID:       g.Seq.Next(),
		SQL:      sql,
		Stmt:     stmt,
		Type:     stmt.Type,
		Origin:   Origin{App: "pos-terminal", User: "cashier", ClientIP: "10.0.1.15"},
		Workload: g.WorkloadName,
		Priority: g.Priority,
		SLO:      g.SLO,
		Arrive:   now,
		Est:      est,
		True:     spec,
	}
}

// BITemplate is one analytical query shape with its plan-derived costs.
type BITemplate struct {
	SQL         string
	Parallelism float64
}

// DefaultBITemplates returns analytical query shapes over the default
// catalog, spanning roughly two orders of magnitude in cost.
func DefaultBITemplates() []BITemplate {
	return []BITemplate{
		{SQL: `SELECT store_id, SUM(amount) FROM sales_fact JOIN store_dim ON sales_fact.store_id = store_dim.id GROUP BY store_id`, Parallelism: 4},
		{SQL: `SELECT product_id, COUNT(*) FROM sales_fact WHERE amount > 100 GROUP BY product_id ORDER BY product_id`, Parallelism: 4},
		{SQL: `SELECT region, SUM(qty) FROM inventory_fact JOIN store_dim ON inventory_fact.store_id = store_dim.id GROUP BY region`, Parallelism: 2},
		{SQL: `SELECT d.year, SUM(f.amount) FROM sales_fact f JOIN date_dim d ON f.date_id = d.id WHERE d.year >= 2015 GROUP BY d.year`, Parallelism: 4},
		{SQL: `SELECT COUNT(*) FROM inventory_fact WHERE qty < 10`, Parallelism: 2},
	}
}

// BIGen generates long-running analytical queries from SQL templates planned
// through the cost model.
type BIGen struct {
	WorkloadName string
	Rate         float64
	Priority     policy.Priority
	SLO          policy.SLO
	Templates    []BITemplate
	Catalog      *sqlmini.Catalog
	Seq          *Sequence
	Est          *EstimateModel
	Origin       Origin

	rng   *sim.RNG
	model *sqlmini.CostModel
	plans []*sqlmini.Plan
}

// Name implements Generator.
func (g *BIGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *BIGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	g.rng = s.RNG().Fork(hashLabel(g.WorkloadName))
	if g.Catalog == nil {
		g.Catalog = sqlmini.DefaultCatalog()
	}
	if len(g.Templates) == 0 {
		g.Templates = DefaultBITemplates()
	}
	g.model = sqlmini.NewCostModel(g.Catalog)
	g.plans = make([]*sqlmini.Plan, len(g.Templates))
	for i, tpl := range g.Templates {
		p, err := g.model.PlanSQL(tpl.SQL)
		if err != nil {
			panic(fmt.Sprintf("workload: bad BI template %q: %v", tpl.SQL, err))
		}
		g.plans[i] = p
	}
	poissonArrivals(s, g.rng, g.Rate, horizon, func() {
		submit(g.MakeRequest(s.Now()))
	})
}

// MakeRequest builds one BI request; exported so batch generators and tests
// can draw from the same distribution.
func (g *BIGen) MakeRequest(now sim.Time) *Request {
	i := g.rng.Intn(len(g.plans))
	tpl, plan := g.Templates[i], g.plans[i]
	est, spec := g.Est.FromPlan(plan, tpl.Parallelism)
	origin := g.Origin
	if origin.App == "" {
		origin = Origin{App: "bi-dashboard", User: "analyst", ClientIP: "10.0.2.20"}
	}
	return &Request{
		ID:       g.Seq.Next(),
		SQL:      tpl.SQL,
		Stmt:     plan.Stmt,
		Type:     plan.Stmt.Type,
		Origin:   origin,
		Workload: g.WorkloadName,
		Priority: g.Priority,
		SLO:      g.SLO,
		Arrive:   now,
		Est:      est,
		True:     spec,
	}
}

// BatchGen submits a burst of requests at a fixed time — the
// report-generation batch workload of Section 2.2 ("may be done in any idle
// time window during the day").
type BatchGen struct {
	WorkloadName string
	At           sim.Time
	Count        int
	Priority     policy.Priority
	SLO          policy.SLO
	// Draw produces the i-th request of the batch.
	Draw func(i int, now sim.Time) *Request
}

// Name implements Generator.
func (g *BatchGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *BatchGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	if g.At > horizon {
		return
	}
	s.At(g.At, func() {
		for i := 0; i < g.Count; i++ {
			r := g.Draw(i, s.Now())
			r.Workload = g.WorkloadName
			r.Priority = g.Priority
			r.SLO = g.SLO
			submit(r)
		}
	})
}

// UtilityGen submits on-line database utilities (backup, reorg, stats
// update) at fixed times — the production-impacting maintenance work of
// Parekh et al. (Section 4.2.2.A).
type UtilityGen struct {
	WorkloadName string
	Times        []sim.Time
	Priority     policy.Priority
	Seq          *Sequence
	// Kind selects the utility: "backup", "reorg", or "runstats".
	Kind string
}

// Name implements Generator.
func (g *UtilityGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *UtilityGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	for _, at := range g.Times {
		if at > horizon {
			continue
		}
		at := at
		s.At(at, func() { submit(g.makeUtility(s.Now())) })
	}
}

func (g *UtilityGen) makeUtility(now sim.Time) *Request {
	var sql string
	var spec engine.QuerySpec
	switch g.Kind {
	case "reorg":
		sql = "CALL reorg(orders)"
		spec = engine.QuerySpec{CPUWork: 30, IOWork: 1500, MemMB: 256, Parallelism: 2, StateMB: 128}
	case "runstats":
		sql = "CALL runstats(sales_fact)"
		spec = engine.QuerySpec{CPUWork: 20, IOWork: 800, MemMB: 128, Parallelism: 2, StateMB: 64}
	default:
		sql = "CALL backup(full)"
		spec = engine.QuerySpec{CPUWork: 10, IOWork: 4000, MemMB: 128, Parallelism: 1, StateMB: 16}
	}
	stmt := sqlmini.MustParse(sql)
	return &Request{
		ID:       g.Seq.Next(),
		SQL:      sql,
		Stmt:     stmt,
		Type:     stmt.Type,
		Origin:   Origin{App: "dba-tools", User: "dba", ClientIP: "10.0.0.2"},
		Workload: g.WorkloadName,
		Priority: g.Priority,
		SLO:      policy.BestEffort(),
		Arrive:   now,
		Est: Estimates{CPUSeconds: spec.CPUWork, IOMB: spec.IOWork, MemMB: spec.MemMB,
			Timerons: TimeronsOf(spec.CPUWork, spec.IOWork)},
		True: spec,
	}
}

// AdHocGen generates occasional unpredictable queries, including rare
// "problematic" monsters whose estimates are badly wrong — the queries
// execution control exists for (Section 2.3).
type AdHocGen struct {
	WorkloadName string
	Rate         float64
	Priority     policy.Priority
	SLO          policy.SLO
	// MonsterProb is the probability an arrival is a monster scan
	// (default 0.15).
	MonsterProb float64
	// UnderestimateFactor is how badly monster costs are underestimated
	// (default 8: the optimizer sees 1/8th of the true cost).
	UnderestimateFactor float64
	Seq                 *Sequence
	rng                 *sim.RNG
}

// Name implements Generator.
func (g *AdHocGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *AdHocGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	g.rng = s.RNG().Fork(hashLabel(g.WorkloadName))
	poissonArrivals(s, g.rng, g.Rate, horizon, func() {
		submit(g.makeRequest(s.Now()))
	})
}

func (g *AdHocGen) makeRequest(now sim.Time) *Request {
	monsterProb := g.MonsterProb
	if monsterProb == 0 {
		monsterProb = 0.15
	}
	under := g.UnderestimateFactor
	if under == 0 {
		under = 8
	}
	var sql string
	var spec engine.QuerySpec
	var est Estimates
	if g.rng.Bool(monsterProb) {
		sql = "SELECT * FROM sales_fact WHERE amount > 0"
		spec = engine.QuerySpec{
			CPUWork:     60 + g.rng.Float64()*40,
			IOWork:      1500 + g.rng.Float64()*1000,
			MemMB:       1200 + g.rng.Float64()*600,
			Parallelism: 4,
			Rows:        5_000_000,
			StateMB:     300,
		}
		est = Estimates{
			CPUSeconds: spec.CPUWork / under,
			IOMB:       spec.IOWork / under,
			MemMB:      spec.MemMB / 2,
			Rows:       float64(spec.Rows) / under,
		}
	} else {
		sql = fmt.Sprintf("SELECT COUNT(*) FROM orders WHERE total > %d", g.rng.Intn(1000))
		spec = engine.QuerySpec{
			CPUWork:     0.5 + g.rng.Float64()*2,
			IOWork:      50 + g.rng.Float64()*200,
			MemMB:       32 + g.rng.Float64()*64,
			Parallelism: 2,
			Rows:        int64(g.rng.Intn(10000)),
			StateMB:     8,
		}
		est = Estimates{CPUSeconds: spec.CPUWork, IOMB: spec.IOWork, MemMB: spec.MemMB, Rows: float64(spec.Rows)}
	}
	est.Timerons = TimeronsOf(est.CPUSeconds, est.IOMB)
	stmt := sqlmini.MustParse(sql)
	return &Request{
		ID:       g.Seq.Next(),
		SQL:      sql,
		Stmt:     stmt,
		Type:     stmt.Type,
		Origin:   Origin{App: "sql-workbench", User: "analyst2", ClientIP: "10.0.3.7"},
		Workload: g.WorkloadName,
		Priority: g.Priority,
		SLO:      g.SLO,
		Arrive:   now,
		Est:      est,
		True:     spec,
	}
}

// hashLabel derives a stable RNG fork label from a string.
func hashLabel(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
