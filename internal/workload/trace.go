package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
)

// TraceEntry is the serializable record of one request, for capturing a
// workload once and replaying it across experiments (the DBQL-style query
// log Teradata Workload Analyzer mines, Section 4.1.3.A).
type TraceEntry struct {
	ID       int64            `json:"id"`
	SQL      string           `json:"sql"`
	Workload string           `json:"workload"`
	Priority int              `json:"priority"`
	App      string           `json:"app"`
	User     string           `json:"user"`
	ClientIP string           `json:"client_ip"`
	ArriveUS int64            `json:"arrive_us"`
	Est      Estimates        `json:"est"`
	True     engine.QuerySpec `json:"true"`
	SLOKind  int              `json:"slo_kind"`
	SLOTgt   float64          `json:"slo_target"`
	SLOPct   float64          `json:"slo_percentile"`
}

// EntryOf converts a request to its trace record.
func EntryOf(r *Request) TraceEntry {
	return TraceEntry{
		ID:       r.ID,
		SQL:      r.SQL,
		Workload: r.Workload,
		Priority: int(r.Priority),
		App:      r.Origin.App,
		User:     r.Origin.User,
		ClientIP: r.Origin.ClientIP,
		ArriveUS: int64(r.Arrive),
		Est:      r.Est,
		True:     r.True,
		SLOKind:  int(r.SLO.Kind),
		SLOTgt:   r.SLO.Target,
		SLOPct:   r.SLO.Percentile,
	}
}

// ToRequest reconstructs a request (re-parsing the SQL).
func (e TraceEntry) ToRequest() (*Request, error) {
	stmt, err := sqlmini.Parse(e.SQL)
	if err != nil {
		return nil, fmt.Errorf("workload: trace entry %d: %w", e.ID, err)
	}
	return &Request{
		ID:       e.ID,
		SQL:      e.SQL,
		Stmt:     stmt,
		Type:     stmt.Type,
		Origin:   Origin{App: e.App, User: e.User, ClientIP: e.ClientIP},
		Workload: e.Workload,
		Priority: policy.Priority(e.Priority),
		SLO:      policy.SLO{Kind: policy.SLOKind(e.SLOKind), Target: e.SLOTgt, Percentile: e.SLOPct},
		Arrive:   sim.Time(e.ArriveUS),
		Est:      e.Est,
		True:     e.True,
	}, nil
}

// WriteTrace writes entries as JSON lines.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace reads JSON-line entries.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	dec := json.NewDecoder(r)
	for {
		var e TraceEntry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ReplayGen replays a recorded trace at its original arrival times.
type ReplayGen struct {
	WorkloadName string
	Entries      []TraceEntry
}

// Name implements Generator.
func (g *ReplayGen) Name() string { return g.WorkloadName }

// Start implements Generator.
func (g *ReplayGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	for _, e := range g.Entries {
		if sim.Time(e.ArriveUS) > horizon {
			continue
		}
		e := e
		s.At(sim.Time(e.ArriveUS), func() {
			r, err := e.ToRequest()
			if err != nil {
				return
			}
			submit(r)
		})
	}
}
