package workload

import "dbwlm/internal/sim"

// Record mode: any generator can be wrapped so that every request it submits
// is also handed to a tap — the hook the trace recorder uses to capture a
// synthetic scenario into a replayable trace. The wrapper is transparent:
// the generator sees the same simulator, horizon, and submission order, so a
// recorded run is bit-identical to an unrecorded one.

// RecordGen wraps a generator, teeing every submitted request to Tap before
// forwarding it downstream.
type RecordGen struct {
	Gen Generator
	Tap SubmitFunc
}

// Name implements Generator.
func (g *RecordGen) Name() string { return g.Gen.Name() }

// Start implements Generator.
func (g *RecordGen) Start(s *sim.Simulator, horizon sim.Time, submit SubmitFunc) {
	tap := g.Tap
	g.Gen.Start(s, horizon, func(r *Request) {
		if tap != nil {
			tap(r)
		}
		submit(r)
	})
}

// Record wraps every generator in gens with the same tap.
func Record(gens []Generator, tap SubmitFunc) []Generator {
	out := make([]Generator, len(gens))
	for i, g := range gens {
		out[i] = &RecordGen{Gen: g, Tap: tap}
	}
	return out
}
