package admission

import (
	"testing"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

func mkReq(pri policy.Priority, timerons float64) *workload.Request {
	return &workload.Request{
		Priority: pri,
		Type:     sqlmini.StmtRead,
		Est:      workload.Estimates{Timerons: timerons, Rows: 100, MemMB: 10, IOMB: timerons / 10},
	}
}

func TestAdmitAll(t *testing.T) {
	var c AdmitAll
	if c.Decide(mkReq(policy.PriorityLow, 1e12), 0) != Admit {
		t.Fatal("AdmitAll rejected")
	}
	if c.Name() == "" {
		t.Fatal("no name")
	}
}

func TestCostThreshold(t *testing.T) {
	c := &CostThreshold{Limits: map[policy.Priority]float64{
		policy.PriorityLow:  1000,
		policy.PriorityHigh: 0, // unlimited
	}}
	if c.Decide(mkReq(policy.PriorityLow, 500), 0) != Admit {
		t.Fatal("under-limit rejected")
	}
	if c.Decide(mkReq(policy.PriorityLow, 5000), 0) != Reject {
		t.Fatal("over-limit admitted")
	}
	if c.Decide(mkReq(policy.PriorityHigh, 1e9), 0) != Admit {
		t.Fatal("unlimited priority rejected")
	}
	c.QueueInstead = true
	if c.Decide(mkReq(policy.PriorityLow, 5000), 0) != Queue {
		t.Fatal("QueueInstead not honored")
	}
}

func TestMPLThreshold(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{})
	c := &MPLThreshold{Engine: e, Max: 2}
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Admit {
		t.Fatal("empty engine should admit")
	}
	e.Submit(engine.QuerySpec{CPUWork: 100}, 1, nil)
	e.Submit(engine.QuerySpec{CPUWork: 100}, 1, nil)
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Queue {
		t.Fatal("full engine should queue")
	}
}

func TestConflictRatioController(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{Cores: 4, IOMBps: 1e9})
	c := &ConflictRatio{Engine: e}
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Admit {
		t.Fatal("idle engine should admit")
	}
	// Create contention: one holder, several holder-waiters each holding
	// another lock — conflict ratio climbs above 1.3.
	e.Submit(engine.QuerySpec{CPUWork: 50, Parallelism: 1, Locks: []engine.LockReq{
		{Key: 1, Exclusive: true}}}, 1, nil)
	for i := 0; i < 4; i++ {
		e.Submit(engine.QuerySpec{CPUWork: 50, Parallelism: 1, Locks: []engine.LockReq{
			{Key: 100 + i, Exclusive: true},
			{Key: 1, Exclusive: true},
		}}, 1, nil)
	}
	s.Run(sim.Time(500 * sim.Millisecond))
	if got := e.StatsNow().ConflictRatio; got <= 1.3 {
		t.Fatalf("conflict ratio = %v, expected > 1.3 in contention scenario", got)
	}
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Queue {
		t.Fatal("contended engine should queue new transactions")
	}
}

func TestIndicatorsGateLowPriorityOnly(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{Cores: 4, MemoryMB: 100, IOMBps: 1e9})
	c := &Indicators{Engine: e}
	// Overcommit memory to trip the mem-pressure indicator.
	e.Submit(engine.QuerySpec{CPUWork: 50, MemMB: 300, Parallelism: 1}, 1, nil)
	s.Run(sim.Time(100 * sim.Millisecond))
	if !c.Congested() {
		t.Fatal("indicators should report congestion")
	}
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Queue {
		t.Fatal("low priority should be delayed under congestion")
	}
	if c.Decide(mkReq(policy.PriorityHigh, 1), 0) != Admit {
		t.Fatal("high priority should pass")
	}
}

func TestChainFirstNonAdmitWins(t *testing.T) {
	c := &Chain{Controllers: []Controller{
		&CostThreshold{Limits: map[policy.Priority]float64{policy.PriorityLow: 100}},
		AdmitAll{},
	}}
	if c.Decide(mkReq(policy.PriorityLow, 1000), 0) != Reject {
		t.Fatal("chain did not propagate reject")
	}
	if c.Decide(mkReq(policy.PriorityLow, 10), 0) != Admit {
		t.Fatal("chain rejected admissible request")
	}
}

func TestThroughputFeedbackHillClimbs(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{})
	c := &ThroughputFeedback{Engine: e, Interval: sim.Second, InitialMPL: 4, Step: 2, MaxMPL: 64}
	c.Start()
	// Feed rising throughput: MPL should keep climbing.
	for i := 0; i < 5; i++ {
		for j := 0; j < (i+1)*10; j++ {
			c.ObserveCompletion(nil, 0, 0)
		}
		s.Run(s.Now().Add(sim.Duration(1) * sim.Second))
	}
	up := c.MPL()
	if up <= 4 {
		t.Fatalf("MPL did not climb under rising throughput: %d", up)
	}
	// Now collapse throughput: direction must reverse and MPL drop.
	for i := 0; i < 5; i++ {
		s.Run(s.Now().Add(sim.Duration(1) * sim.Second)) // zero completions
	}
	if c.MPL() >= up {
		t.Fatalf("MPL did not back off after throughput collapse: %d vs %d", c.MPL(), up)
	}
}

func TestThroughputFeedbackDecide(t *testing.T) {
	s := sim.New(1)
	e := engine.New(s, engine.Config{})
	c := &ThroughputFeedback{Engine: e, InitialMPL: 1}
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Admit {
		t.Fatal("should admit under MPL")
	}
	e.Submit(engine.QuerySpec{CPUWork: 100}, 1, nil)
	if c.Decide(mkReq(policy.PriorityLow, 1), 0) != Queue {
		t.Fatal("should queue at MPL")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		s float64
		b RuntimeBucket
	}{{0.5, BucketShort}, {5, BucketMedium}, {50, BucketLong}, {5000, BucketMonster}}
	for _, c := range cases {
		if BucketOf(c.s) != c.b {
			t.Fatalf("BucketOf(%v) = %v, want %v", c.s, BucketOf(c.s), c.b)
		}
		if c.b.String() == "unknown" {
			t.Fatal("missing bucket name")
		}
	}
}

func TestTreePredictorLearnsToGateMonsters(t *testing.T) {
	p := &TreePredictor{MaxBucket: BucketMedium, MinTraining: 30, RetrainEvery: 10}
	// Before training: admits everything.
	monster := mkReq(policy.PriorityLow, 1e6)
	if p.Decide(monster, 0) != Admit {
		t.Fatal("untrained predictor should admit")
	}
	// Train: cheap queries are fast, expensive ones are slow — a learnable
	// relationship between timerons and runtime.
	for i := 0; i < 60; i++ {
		cheap := mkReq(policy.PriorityLow, float64(100+i))
		p.ObserveCompletion(cheap, 0.2, 0)
		big := mkReq(policy.PriorityLow, float64(500000+i*1000))
		p.ObserveCompletion(big, 200, 0)
	}
	if !p.Trained() {
		t.Fatal("predictor did not train")
	}
	if p.Decide(monster, 0) != Queue {
		t.Fatal("trained predictor should gate the monster")
	}
	if p.Decide(mkReq(policy.PriorityLow, 150), 0) != Admit {
		t.Fatal("trained predictor should admit cheap work")
	}
	p.Reject = true
	if p.Decide(monster, 0) != Reject {
		t.Fatal("Reject mode not honored")
	}
}

func TestKNNPredictorGatesByPredictedSeconds(t *testing.T) {
	p := &KNNPredictor{MaxSeconds: 10, MinTraining: 30}
	if p.Decide(mkReq(policy.PriorityLow, 1e6), 0) != Admit {
		t.Fatal("untrained knn should admit")
	}
	for i := 0; i < 40; i++ {
		p.ObserveCompletion(mkReq(policy.PriorityLow, 100), 0.5, 0)
		p.ObserveCompletion(mkReq(policy.PriorityLow, 1e6), 300, 0)
	}
	if p.Predict(mkReq(policy.PriorityLow, 1e6)) < 100 {
		t.Fatalf("knn prediction too low: %v", p.Predict(mkReq(policy.PriorityLow, 1e6)))
	}
	if p.Decide(mkReq(policy.PriorityLow, 1e6), 0) != Queue {
		t.Fatal("knn did not gate expensive query")
	}
	if p.Decide(mkReq(policy.PriorityLow, 100), 0) != Admit {
		t.Fatal("knn gated cheap query")
	}
}

func TestKNNHistoryBound(t *testing.T) {
	p := &KNNPredictor{MaxSeconds: 10, MaxHistory: 50}
	for i := 0; i < 200; i++ {
		p.ObserveCompletion(mkReq(policy.PriorityLow, float64(i)), 1, 0)
	}
	if got := p.historySize(); got > 50 {
		t.Fatalf("history grew to %d despite cap", got)
	}
}

func TestChainForwardsCompletions(t *testing.T) {
	tf := &ThroughputFeedback{Engine: nil, InitialMPL: 4}
	c := &Chain{Controllers: []Controller{tf}}
	c.ObserveCompletion(mkReq(policy.PriorityLow, 1), 1, 0)
	if tf.count != 1 {
		t.Fatal("chain did not forward completion")
	}
}

func TestDecisionString(t *testing.T) {
	for _, d := range []Decision{Admit, Queue, Reject} {
		if d.String() == "" {
			t.Fatal("empty decision name")
		}
	}
}
