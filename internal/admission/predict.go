package admission

import (
	"math"

	"dbwlm/internal/learn"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// RuntimeBucket is a predicted execution-time range — the output of the
// PQR-style decision tree of Gupta et al. [23], which predicts ranges rather
// than point values.
type RuntimeBucket int

// Runtime buckets: boundaries at 1s, 10s, 100s.
const (
	BucketShort   RuntimeBucket = iota // < 1s
	BucketMedium                       // 1s - 10s
	BucketLong                         // 10s - 100s
	BucketMonster                      // >= 100s
)

// String names the bucket.
func (b RuntimeBucket) String() string {
	names := []string{"short", "medium", "long", "monster"}
	if int(b) < len(names) {
		return names[b]
	}
	return "unknown"
}

// numBuckets is the label-space size.
const numBuckets = 4

// BucketOf classifies an observed runtime.
func BucketOf(seconds float64) RuntimeBucket {
	switch {
	case seconds < 1:
		return BucketShort
	case seconds < 10:
		return BucketMedium
	case seconds < 100:
		return BucketLong
	default:
		return BucketMonster
	}
}

// RequestFeatures extracts the pre-execution features prediction models use
// (Ganapathi et al. [21]: properties available before a query runs — the
// statement, its plan, its estimates).
func RequestFeatures(r *workload.Request) []float64 {
	isRead := 0.0
	if r.Type == sqlmini.StmtRead {
		isRead = 1
	}
	return []float64{
		math.Log1p(r.Est.Timerons),
		math.Log1p(r.Est.Rows),
		math.Log1p(r.Est.MemMB),
		math.Log1p(r.Est.IOMB),
		isRead,
	}
}

// ObservedRun is one training example for the predictors.
type ObservedRun struct {
	Features []float64
	Seconds  float64
}

// TreePredictor predicts runtime ranges with a decision tree (Gupta PQR).
// It accumulates observations online and retrains every RetrainEvery
// completions.
type TreePredictor struct {
	// MaxBucket is the largest admissible predicted bucket; work predicted
	// beyond it is queued (or rejected with Reject=true).
	MaxBucket RuntimeBucket
	// Reject rejects over-limit work instead of queueing.
	Reject bool
	// RetrainEvery controls retraining cadence (default 50).
	RetrainEvery int
	// MinTraining is the number of observations required before the
	// predictor starts gating (default 30); before that it admits all.
	MinTraining int

	history  []learn.Sample
	tree     *learn.DecisionTree
	sinceFit int
}

// Name implements Controller.
func (p *TreePredictor) Name() string { return "predict-tree" }

// Decide implements Controller.
func (p *TreePredictor) Decide(r *workload.Request, _ sim.Time) Decision {
	if p.tree == nil {
		return Admit
	}
	b := RuntimeBucket(p.tree.Predict(RequestFeatures(r)))
	if b <= p.MaxBucket {
		return Admit
	}
	if p.Reject {
		return Reject
	}
	return Queue
}

// ObserveCompletion implements CompletionObserver: record the actual runtime
// and periodically retrain.
func (p *TreePredictor) ObserveCompletion(r *workload.Request, responseSeconds float64, _ sim.Time) {
	p.history = append(p.history, learn.Sample{
		Features: RequestFeatures(r),
		Label:    int(BucketOf(responseSeconds)),
	})
	p.sinceFit++
	min := p.MinTraining
	if min <= 0 {
		min = 30
	}
	every := p.RetrainEvery
	if every <= 0 {
		every = 50
	}
	if len(p.history) >= min && (p.tree == nil || p.sinceFit >= every) {
		p.tree = learn.TrainDecisionTree(p.history, numBuckets, learn.TreeConfig{MaxDepth: 8, MinLeafSize: 3})
		p.sinceFit = 0
	}
}

// Trained reports whether the predictor has fit a model yet.
func (p *TreePredictor) Trained() bool { return p.tree != nil }

// KNNPredictor predicts runtime seconds from the k nearest historical
// queries in feature space (Ganapathi-style similarity) and gates work whose
// predicted runtime exceeds MaxSeconds. History is retained stratified by
// runtime bucket so that a flood of fast transactions cannot evict the few
// observations of slow queries — the class imbalance that otherwise
// un-trains the model exactly when it is gating well.
type KNNPredictor struct {
	MaxSeconds float64
	K          int // default 5
	Reject     bool
	// MinTraining before gating begins (default 30).
	MinTraining int
	// MaxHistory bounds memory (default 2000, split evenly across runtime
	// buckets with FIFO eviction within a bucket).
	MaxHistory int

	history  map[RuntimeBucket][]learn.RegSample
	model    *learn.KNN
	sinceFit int
}

// Name implements Controller.
func (p *KNNPredictor) Name() string { return "predict-knn" }

// Decide implements Controller.
func (p *KNNPredictor) Decide(r *workload.Request, _ sim.Time) Decision {
	if p.model == nil {
		return Admit
	}
	pred := p.model.PredictValue(RequestFeatures(r))
	if pred <= p.MaxSeconds {
		return Admit
	}
	if p.Reject {
		return Reject
	}
	return Queue
}

// Predict exposes the model's runtime prediction (0 before training).
func (p *KNNPredictor) Predict(r *workload.Request) float64 {
	if p.model == nil {
		return 0
	}
	return p.model.PredictValue(RequestFeatures(r))
}

// ObserveCompletion implements CompletionObserver.
func (p *KNNPredictor) ObserveCompletion(r *workload.Request, responseSeconds float64, _ sim.Time) {
	maxH := p.MaxHistory
	if maxH <= 0 {
		maxH = 2000
	}
	perBucket := maxH / numBuckets
	if perBucket < 1 {
		perBucket = 1
	}
	if p.history == nil {
		p.history = make(map[RuntimeBucket][]learn.RegSample)
	}
	b := BucketOf(responseSeconds)
	hs := p.history[b]
	if len(hs) >= perBucket {
		hs = hs[1:]
	}
	p.history[b] = append(hs, learn.RegSample{
		Features: RequestFeatures(r),
		Value:    responseSeconds,
	})
	p.sinceFit++
	min := p.MinTraining
	if min <= 0 {
		min = 30
	}
	k := p.K
	if k <= 0 {
		k = 5
	}
	if p.historySize() >= min && (p.model == nil || p.sinceFit >= 25) {
		// Concatenate buckets in fixed order: k-NN breaks distance ties by
		// sample position, so a map-order walk would make predictions (and
		// admission decisions) nondeterministic.
		var all []learn.RegSample
		for b := RuntimeBucket(0); b < numBuckets; b++ {
			all = append(all, p.history[b]...)
		}
		p.model = learn.TrainKNN(all, k)
		p.sinceFit = 0
	}
}

func (p *KNNPredictor) historySize() int {
	n := 0
	for _, hs := range p.history {
		n += len(hs)
	}
	return n
}
