package admission

import (
	"math"
	"sync"
	"sync/atomic"

	"dbwlm/internal/learn"
	"dbwlm/internal/sim"
	"dbwlm/internal/sqlmini"
	"dbwlm/internal/workload"
)

// RuntimeBucket is a predicted execution-time range — the output of the
// PQR-style decision tree of Gupta et al. [23], which predicts ranges rather
// than point values.
type RuntimeBucket int

// Runtime buckets: boundaries at 1s, 10s, 100s.
const (
	BucketShort   RuntimeBucket = iota // < 1s
	BucketMedium                       // 1s - 10s
	BucketLong                         // 10s - 100s
	BucketMonster                      // >= 100s
)

// String names the bucket; values outside the defined range (negative or
// past BucketMonster) render as "unknown".
func (b RuntimeBucket) String() string {
	names := []string{"short", "medium", "long", "monster"}
	if b >= 0 && int(b) < len(names) {
		return names[b]
	}
	return "unknown"
}

// BucketFromName parses a bucket name ("short", "medium", "long",
// "monster") — the wlmd -predict-max-bucket flag value.
func BucketFromName(name string) (RuntimeBucket, bool) {
	for b := BucketShort; b <= BucketMonster; b++ {
		if b.String() == name {
			return b, true
		}
	}
	return 0, false
}

// numBuckets is the label-space size.
const numBuckets = 4

// BucketOf classifies an observed runtime.
//
//dbwlm:hotpath
func BucketOf(seconds float64) RuntimeBucket {
	switch {
	case seconds < 1:
		return BucketShort
	case seconds < 10:
		return BucketMedium
	case seconds < 100:
		return BucketLong
	default:
		return BucketMonster
	}
}

// NumFeatures is the dimensionality of the pre-execution feature vector.
const NumFeatures = 5

// FeatureVec is the fixed-size feature array the zero-alloc extraction path
// fills; f[:] adapts it to the []float64 the models consume.
type FeatureVec [NumFeatures]float64

// FeaturesFrom fills out with the pre-execution features prediction models
// use (Ganapathi et al. [21]: properties available before a query runs — its
// plan's estimates and its statement class). Allocation-free: the live admit
// path extracts into a stack array.
//
//dbwlm:hotpath
func FeaturesFrom(timerons, rows, memMB, ioMB float64, isRead bool, out *FeatureVec) {
	read := 0.0
	if isRead {
		read = 1
	}
	out[0] = math.Log1p(timerons)
	out[1] = math.Log1p(rows)
	out[2] = math.Log1p(memMB)
	out[3] = math.Log1p(ioMB)
	out[4] = read
}

// RequestFeaturesInto extracts a request's features into out without
// allocating.
//
//dbwlm:hotpath
func RequestFeaturesInto(r *workload.Request, out *FeatureVec) {
	FeaturesFrom(r.Est.Timerons, r.Est.Rows, r.Est.MemMB, r.Est.IOMB, r.Type == sqlmini.StmtRead, out)
}

// RequestFeatures extracts the pre-execution features as a fresh slice; the
// allocation-free path is RequestFeaturesInto.
func RequestFeatures(r *workload.Request) []float64 {
	var f FeatureVec
	RequestFeaturesInto(r, &f)
	out := make([]float64, NumFeatures)
	copy(out, f[:])
	return out
}

// ObservedRun is one training example for the predictors.
type ObservedRun struct {
	Features []float64
	Seconds  float64
}

// TreePredictor predicts runtime ranges with a decision tree (Gupta PQR).
// It accumulates observations online and retrains every RetrainEvery
// completions. The model lives behind an atomic pointer — the decision path
// is lock-free and never observes a torn tree — and with Background set the
// retrain itself runs on a goroutine and swaps the pointer when done
// (mirroring the limits-block reload pattern of internal/rt), so a decision
// never blocks on training.
type TreePredictor struct {
	// MaxBucket is the largest admissible predicted bucket; work predicted
	// beyond it is queued (or rejected with Reject=true).
	MaxBucket RuntimeBucket
	// Reject rejects over-limit work instead of queueing.
	Reject bool
	// RetrainEvery controls retraining cadence (default 50).
	RetrainEvery int
	// MinTraining is the number of observations required before the
	// predictor starts gating (default 30); before that it admits all.
	MinTraining int
	// Background moves retraining onto a goroutine. The simulated path keeps
	// the default (synchronous, deterministic); the live runtime sets it.
	Background bool

	mu       sync.Mutex // guards history and sinceFit
	history  []learn.Sample
	sinceFit int

	model      atomic.Pointer[learn.DecisionTree]
	retraining atomic.Bool
	retrains   atomic.Int64
}

// Name implements Controller.
func (p *TreePredictor) Name() string { return "predict-tree" }

// Decide implements Controller.
func (p *TreePredictor) Decide(r *workload.Request, _ sim.Time) Decision {
	t := p.model.Load()
	if t == nil {
		return Admit
	}
	var f FeatureVec
	RequestFeaturesInto(r, &f)
	b := RuntimeBucket(t.Predict(f[:]))
	if b <= p.MaxBucket {
		return Admit
	}
	if p.Reject {
		return Reject
	}
	return Queue
}

// PredictBucket exposes the predicted runtime range for a feature vector;
// ok is false before the first model lands.
func (p *TreePredictor) PredictBucket(f *FeatureVec) (RuntimeBucket, bool) {
	t := p.model.Load()
	if t == nil {
		return BucketShort, false
	}
	return RuntimeBucket(t.Predict(f[:])), true
}

// ObserveCompletion implements CompletionObserver: record the actual runtime
// and periodically retrain (inline, or in the background when Background is
// set).
func (p *TreePredictor) ObserveCompletion(r *workload.Request, responseSeconds float64, _ sim.Time) {
	p.mu.Lock()
	p.history = append(p.history, learn.Sample{
		Features: RequestFeatures(r),
		Label:    int(BucketOf(responseSeconds)),
	})
	p.sinceFit++
	min := p.MinTraining
	if min <= 0 {
		min = 30
	}
	every := p.RetrainEvery
	if every <= 0 {
		every = 50
	}
	due := len(p.history) >= min && (p.model.Load() == nil || p.sinceFit >= every)
	if !due {
		p.mu.Unlock()
		return
	}
	if p.Background && !p.retraining.CompareAndSwap(false, true) {
		// A trainer is already in flight; sinceFit keeps accumulating and the
		// next completion after it lands triggers the following round.
		p.mu.Unlock()
		return
	}
	p.sinceFit = 0
	// Snapshot: history only ever grows and samples are immutable once
	// appended, so the trainer can read a prefix copy without the lock.
	snap := make([]learn.Sample, len(p.history))
	copy(snap, p.history)
	p.mu.Unlock()

	train := func() {
		p.model.Store(learn.TrainDecisionTree(snap, numBuckets, learn.TreeConfig{MaxDepth: 8, MinLeafSize: 3}))
		p.retrains.Add(1)
		if p.Background {
			p.retraining.Store(false)
		}
	}
	if p.Background {
		go train()
	} else {
		train()
	}
}

// Trained reports whether the predictor has fit a model yet.
func (p *TreePredictor) Trained() bool { return p.model.Load() != nil }

// Retrains reports how many models have been fit and swapped in.
func (p *TreePredictor) Retrains() int64 { return p.retrains.Load() }

// KNNPredictor predicts runtime seconds from the k nearest historical
// queries in feature space (Ganapathi-style similarity) and gates work whose
// predicted runtime exceeds MaxSeconds. History is retained stratified by
// runtime bucket so that a flood of fast transactions cannot evict the few
// observations of slow queries — the class imbalance that otherwise
// un-trains the model exactly when it is gating well.
//
// The fitted model sits behind an atomic pointer: Decide and Predict are
// lock-free and torn-read-free however many goroutines call them. With
// Background set, retraining happens on a goroutine (at most one in flight,
// CAS-gated) and the finished model — including its k-d tree index when
// Indexed is set — swaps in atomically.
type KNNPredictor struct {
	MaxSeconds float64
	K          int // default 5
	Reject     bool
	// MinTraining before gating begins (default 30).
	MinTraining int
	// MaxHistory bounds memory (default 2000, split evenly across runtime
	// buckets with FIFO eviction within a bucket).
	MaxHistory int
	// Background moves retraining onto a goroutine (live runtime); the
	// simulated path keeps the synchronous, deterministic default.
	Background bool
	// Indexed builds the k-d tree index at train time, replacing the O(n)
	// prediction scan with a pruned search.
	Indexed bool

	mu       sync.Mutex // guards history and sinceFit
	history  map[RuntimeBucket][]learn.RegSample
	sinceFit int

	model      atomic.Pointer[learn.KNN]
	retraining atomic.Bool
	retrains   atomic.Int64
}

// Name implements Controller.
func (p *KNNPredictor) Name() string { return "predict-knn" }

// Decide implements Controller.
func (p *KNNPredictor) Decide(r *workload.Request, _ sim.Time) Decision {
	m := p.model.Load()
	if m == nil {
		return Admit
	}
	var f FeatureVec
	RequestFeaturesInto(r, &f)
	if m.PredictValue(f[:]) <= p.MaxSeconds {
		return Admit
	}
	if p.Reject {
		return Reject
	}
	return Queue
}

// Predict exposes the model's runtime prediction (0 before training).
func (p *KNNPredictor) Predict(r *workload.Request) float64 {
	var f FeatureVec
	RequestFeaturesInto(r, &f)
	s, _ := p.PredictSeconds(&f)
	return s
}

// PredictSeconds predicts the runtime for an extracted feature vector; ok is
// false before the first model lands. Lock-free and allocation-free — the
// live admit path calls it on every request.
//
//dbwlm:hotpath
func (p *KNNPredictor) PredictSeconds(f *FeatureVec) (seconds float64, ok bool) {
	m := p.model.Load()
	if m == nil {
		return 0, false
	}
	return m.PredictValue(f[:]), true
}

// ObserveCompletion implements CompletionObserver.
func (p *KNNPredictor) ObserveCompletion(r *workload.Request, responseSeconds float64, _ sim.Time) {
	var f FeatureVec
	RequestFeaturesInto(r, &f)
	p.Observe(&f, responseSeconds)
}

// Observe records one completed run (features already extracted — the live
// /done path calls this directly) and retrains at the usual cadence.
func (p *KNNPredictor) Observe(f *FeatureVec, responseSeconds float64) {
	maxH := p.MaxHistory
	if maxH <= 0 {
		maxH = 2000
	}
	perBucket := maxH / numBuckets
	if perBucket < 1 {
		perBucket = 1
	}
	p.mu.Lock()
	if p.history == nil {
		p.history = make(map[RuntimeBucket][]learn.RegSample)
	}
	b := BucketOf(responseSeconds)
	hs := p.history[b]
	if len(hs) >= perBucket {
		hs = hs[1:]
	}
	features := make([]float64, NumFeatures)
	copy(features, f[:])
	p.history[b] = append(hs, learn.RegSample{Features: features, Value: responseSeconds})
	p.sinceFit++
	min := p.MinTraining
	if min <= 0 {
		min = 30
	}
	k := p.K
	if k <= 0 {
		k = 5
	}
	due := p.historySize() >= min && (p.model.Load() == nil || p.sinceFit >= 25)
	if !due {
		p.mu.Unlock()
		return
	}
	if p.Background && !p.retraining.CompareAndSwap(false, true) {
		p.mu.Unlock()
		return
	}
	p.sinceFit = 0
	// Concatenate buckets in fixed order: k-NN breaks distance ties by
	// sample position, so a map-order walk would make predictions (and
	// admission decisions) nondeterministic. The copy also snapshots history
	// for the background trainer: bucket slices are re-sliced by trimming but
	// their samples are immutable, so the snapshot is stable off-lock.
	all := make([]learn.RegSample, 0, p.historySize())
	for b := RuntimeBucket(0); b < numBuckets; b++ {
		all = append(all, p.history[b]...)
	}
	p.mu.Unlock()

	train := func() {
		m := learn.TrainKNN(all, k)
		if p.Indexed {
			m.BuildIndex()
		}
		p.model.Store(m)
		p.retrains.Add(1)
		if p.Background {
			p.retraining.Store(false)
		}
	}
	if p.Background {
		go train()
	} else {
		train()
	}
}

// Trained reports whether a model has been fit and swapped in.
func (p *KNNPredictor) Trained() bool { return p.model.Load() != nil }

// Retrains reports how many models have been fit and swapped in.
func (p *KNNPredictor) Retrains() int64 { return p.retrains.Load() }

// historySize must be called with mu held (or from single-threaded tests).
func (p *KNNPredictor) historySize() int {
	n := 0
	for _, hs := range p.history {
		n += len(hs)
	}
	return n
}
