package admission

import (
	"testing"

	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
)

func TestOperatingPeriodsSelectsByHour(t *testing.T) {
	strict := &CostThreshold{Limits: map[policy.Priority]float64{policy.PriorityLow: 100}}
	c := &OperatingPeriods{
		Periods: []Period{
			{FromHour: 8, ToHour: 18, Controller: strict}, // business hours
		},
		Default: AdmitAll{},
	}
	big := mkReq(policy.PriorityLow, 1e6)
	// 12:00 — strict window rejects.
	noon := sim.Time(12 * sim.Hour)
	if c.Decide(big, noon) != Reject {
		t.Fatal("noon should be strict")
	}
	// 02:00 — overnight window admits.
	night := sim.Time(2 * sim.Hour)
	if c.Decide(big, night) != Admit {
		t.Fatal("night should be lenient")
	}
	// Next day at noon is strict again.
	noon2 := sim.Time(36 * sim.Hour)
	if c.Decide(big, noon2) != Reject {
		t.Fatal("day wrap broken")
	}
}

func TestOperatingPeriodsWrapMidnight(t *testing.T) {
	nightOnly := Period{FromHour: 22, ToHour: 6, Controller: AdmitAll{}}
	if !nightOnly.contains(23) || !nightOnly.contains(2) {
		t.Fatal("wrapped window should contain 23:00 and 02:00")
	}
	if nightOnly.contains(12) {
		t.Fatal("wrapped window should not contain noon")
	}
}

func TestOperatingPeriodsCompressedDay(t *testing.T) {
	strict := &CostThreshold{Limits: map[policy.Priority]float64{policy.PriorityLow: 100}}
	c := &OperatingPeriods{
		Periods:   []Period{{FromHour: 0, ToHour: 12, Controller: strict}},
		Default:   AdmitAll{},
		DayLength: 2 * sim.Minute, // 1 virtual hour = 5 seconds
	}
	big := mkReq(policy.PriorityLow, 1e6)
	if c.Decide(big, sim.Time(10*sim.Second)) != Reject { // hour 2
		t.Fatal("compressed morning should be strict")
	}
	if c.Decide(big, sim.Time(90*sim.Second)) != Admit { // hour 18
		t.Fatal("compressed evening should be lenient")
	}
	if h := c.HourOf(sim.Time(60 * sim.Second)); h != 12 {
		t.Fatalf("HourOf = %v, want 12", h)
	}
}

func TestOperatingPeriodsDefaultNil(t *testing.T) {
	c := &OperatingPeriods{}
	if c.Decide(mkReq(policy.PriorityLow, 1e9), 0) != Admit {
		t.Fatal("empty periods with nil default should admit")
	}
	if c.Name() == "" {
		t.Fatal("no name")
	}
}

func TestOperatingPeriodsForwardsCompletions(t *testing.T) {
	tree := &TreePredictor{MinTraining: 1, RetrainEvery: 1}
	c := &OperatingPeriods{
		Periods: []Period{{FromHour: 0, ToHour: 24, Controller: tree}},
	}
	for i := 0; i < 40; i++ {
		c.ObserveCompletion(mkReq(policy.PriorityLow, float64(100+i)), 0.1, 0)
	}
	if !tree.Trained() {
		t.Fatal("completions not forwarded to period controller")
	}
}
