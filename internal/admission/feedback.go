package admission

import (
	"dbwlm/internal/engine"
	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

// ThroughputFeedback is the adaptive load controller of Heiss & Wagner [26]
// ("Adaptive Load Control in Transaction Processing Systems"): it measures
// transaction throughput over fixed intervals and hill-climbs the admission
// limit — if throughput rose since the previous interval, keep moving the
// MPL in the same direction; if it fell, reverse.
type ThroughputFeedback struct {
	Engine *engine.Engine
	// Interval is the measurement window (default 2s).
	Interval sim.Duration
	// InitialMPL is the starting admission limit (default 8).
	InitialMPL int
	// MinMPL/MaxMPL bound the search (defaults 1 and 256).
	MinMPL, MaxMPL int
	// Step is the MPL adjustment per interval (default 2).
	Step int

	mpl     int
	dir     int // +1 or -1
	lastThr float64
	count   int // completions this interval
	started bool
}

// Start begins the measurement loop; call once after construction.
func (c *ThroughputFeedback) Start() {
	if c.started {
		return
	}
	c.started = true
	if c.Interval <= 0 {
		c.Interval = 2 * sim.Second
	}
	if c.InitialMPL <= 0 {
		c.InitialMPL = 8
	}
	if c.MinMPL <= 0 {
		c.MinMPL = 1
	}
	if c.MaxMPL <= 0 {
		c.MaxMPL = 256
	}
	if c.Step <= 0 {
		c.Step = 2
	}
	c.mpl = c.InitialMPL
	c.dir = +1
	c.Engine.Sim().Every(c.Interval, func() bool {
		c.adjust()
		return true
	})
}

func (c *ThroughputFeedback) adjust() {
	thr := float64(c.count) / c.Interval.Seconds()
	c.count = 0
	// If throughput decreased, reverse direction (we overshot the knee).
	if thr < c.lastThr {
		c.dir = -c.dir
	}
	c.lastThr = thr
	c.mpl += c.dir * c.Step
	if c.mpl < c.MinMPL {
		c.mpl = c.MinMPL
		c.dir = +1
	}
	if c.mpl > c.MaxMPL {
		c.mpl = c.MaxMPL
		c.dir = -1
	}
}

// MPL reports the current dynamic admission limit.
func (c *ThroughputFeedback) MPL() int {
	if c.mpl == 0 {
		return c.InitialMPL
	}
	return c.mpl
}

// Name implements Controller.
func (c *ThroughputFeedback) Name() string { return "throughput-feedback" }

// Decide implements Controller.
func (c *ThroughputFeedback) Decide(_ *workload.Request, _ sim.Time) Decision {
	if !c.started {
		c.Start()
	}
	if c.Engine.InEngine() >= c.MPL() {
		return Queue
	}
	return Admit
}

// ObserveCompletion implements CompletionObserver.
func (c *ThroughputFeedback) ObserveCompletion(_ *workload.Request, _ float64, _ sim.Time) {
	c.count++
}
