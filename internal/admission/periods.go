package admission

import (
	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

// Period is one operating window of the day with its own admission policy —
// "the admission control policy may also specify different thresholds for
// various operating periods, for example during the day or at night"
// (Section 3.2).
type Period struct {
	// FromHour and ToHour bound the window in [0, 24); a window may wrap
	// midnight (FromHour > ToHour).
	FromHour float64
	ToHour   float64
	// Controller applies inside the window.
	Controller Controller
}

// contains reports whether hour falls inside the window.
func (p Period) contains(hour float64) bool {
	if p.FromHour <= p.ToHour {
		return hour >= p.FromHour && hour < p.ToHour
	}
	return hour >= p.FromHour || hour < p.ToHour
}

// OperatingPeriods selects among admission controllers by virtual
// time-of-day: strict daytime thresholds, lenient overnight batch windows.
type OperatingPeriods struct {
	Periods []Period
	// Default applies outside every period (nil = AdmitAll).
	Default Controller
	// DayLength is the virtual day (default 24 virtual hours). Experiments
	// often compress it so that day/night cycles fit a short horizon.
	DayLength sim.Duration
}

// Name implements Controller.
func (c *OperatingPeriods) Name() string { return "operating-periods" }

// HourOf reports the time-of-day in [0, 24) for now.
func (c *OperatingPeriods) HourOf(now sim.Time) float64 {
	day := c.DayLength
	if day <= 0 {
		day = 24 * sim.Hour
	}
	into := sim.Duration(int64(now) % int64(day))
	return 24 * into.Seconds() / day.Seconds()
}

// active returns the controller in force at now.
func (c *OperatingPeriods) active(now sim.Time) Controller {
	hour := c.HourOf(now)
	for _, p := range c.Periods {
		if p.contains(hour) {
			return p.Controller
		}
	}
	if c.Default != nil {
		return c.Default
	}
	return AdmitAll{}
}

// Decide implements Controller.
func (c *OperatingPeriods) Decide(r *workload.Request, now sim.Time) Decision {
	return c.active(now).Decide(r, now)
}

// ObserveCompletion implements CompletionObserver, forwarding to every
// period controller that learns from completions.
func (c *OperatingPeriods) ObserveCompletion(r *workload.Request, responseSeconds float64, now sim.Time) {
	for _, p := range c.Periods {
		if o, ok := p.Controller.(CompletionObserver); ok {
			o.ObserveCompletion(r, responseSeconds, now)
		}
	}
	if o, ok := c.Default.(CompletionObserver); ok {
		o.ObserveCompletion(r, responseSeconds, now)
	}
}
