// Package admission implements the admission-control class of the taxonomy
// (Section 3.2, Table 2): threshold-based controllers — query-cost and MPL
// thresholds as used by the commercial systems, the conflict-ratio controller
// of Moenkeberg & Weikum [56], the transaction-throughput feedback controller
// of Heiss & Wagner [26], and the indicator-based controller of Zhang et al.
// [79][80] — and prediction-based controllers that learn query runtime from
// history (Ganapathi et al. [21], Gupta et al. PQR [23]).
package admission

import (
	"fmt"

	"dbwlm/internal/engine"
	"dbwlm/internal/policy"
	"dbwlm/internal/sim"
	"dbwlm/internal/workload"
)

// Decision is an admission verdict.
type Decision int

// Decisions.
const (
	// Admit sends the request to the engine (via the scheduler, if any).
	Admit Decision = iota
	// Queue delays the request for a later retry.
	Queue
	// Reject refuses the request with an error to the client.
	Reject
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Queue:
		return "queue"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Controller decides whether arriving requests may enter the system.
// Feedback-based controllers also observe completions.
type Controller interface {
	Name() string
	Decide(r *workload.Request, now sim.Time) Decision
}

// View is the snapshot of server load that state-dependent controllers
// consume: the resident-request count and the instantaneous load statistics.
// The simulated *engine.Engine satisfies it directly; the live runtime
// (internal/rt) satisfies it with merged sharded counters, so the same
// threshold and indicator controllers gate simulated and real traffic
// unchanged. Implementations guarantee that each returned figure is exact at
// some recent instant; they do not guarantee that different fields were read
// at the same instant.
type View interface {
	// InEngine reports the number of resident (non-terminal) requests.
	InEngine() int
	// StatsNow snapshots instantaneous load.
	StatsNow() engine.Stats
}

// CompletionObserver is implemented by controllers that learn from finished
// requests (throughput feedback, prediction-based).
type CompletionObserver interface {
	ObserveCompletion(r *workload.Request, responseSeconds float64, now sim.Time)
}

// AdmitAll is the no-control baseline.
type AdmitAll struct{}

// Name implements Controller.
func (AdmitAll) Name() string { return "admit-all" }

// Decide implements Controller.
func (AdmitAll) Decide(*workload.Request, sim.Time) Decision { return Admit }

// CostThreshold rejects (or queues) queries whose estimated cost exceeds a
// per-priority timeron limit — the "query cost" row of Table 2 and SQL
// Server's Query Governor Cost Limit. A missing priority entry means
// unlimited (high-priority work is guaranteed admission, Section 3.2).
type CostThreshold struct {
	// Limits maps priority -> max admissible timerons (0 = unlimited).
	Limits map[policy.Priority]float64
	// QueueInstead queues over-limit work instead of rejecting it.
	QueueInstead bool
}

// Name implements Controller.
func (c *CostThreshold) Name() string { return "cost-threshold" }

// Decide implements Controller.
func (c *CostThreshold) Decide(r *workload.Request, _ sim.Time) Decision {
	limit := c.Limits[r.Priority]
	if limit <= 0 || r.Est.Timerons <= limit {
		return Admit
	}
	if c.QueueInstead {
		return Queue
	}
	return Reject
}

// MPLThreshold queues arrivals when the number of requests in the engine has
// reached the limit — the "MPLs" row of Table 2 and the classic
// multiprogramming-level configuration parameter.
type MPLThreshold struct {
	Engine View
	Max    int
}

// Name implements Controller.
func (c *MPLThreshold) Name() string { return "mpl-threshold" }

// Decide implements Controller.
func (c *MPLThreshold) Decide(_ *workload.Request, _ sim.Time) Decision {
	if c.Engine.InEngine() >= c.Max {
		return Queue
	}
	return Admit
}

// ConflictRatio suspends new transactions while the engine's lock conflict
// ratio exceeds the critical threshold (Moenkeberg & Weikum [56]; their
// empirically robust critical value is ~1.3).
type ConflictRatio struct {
	Engine View
	// Critical is the conflict-ratio threshold (default 1.3).
	Critical float64
}

// Name implements Controller.
func (c *ConflictRatio) Name() string { return "conflict-ratio" }

// Decide implements Controller.
func (c *ConflictRatio) Decide(_ *workload.Request, _ sim.Time) Decision {
	crit := c.Critical
	if crit <= 0 {
		crit = 1.3
	}
	if c.Engine.StatsNow().ConflictRatio > crit {
		return Queue
	}
	return Admit
}

// Indicators gates low-priority work while any monitored engine metric
// exceeds its threshold (Zhang et al. [79][80]): a set of congestion
// indicators rather than a single parameter.
type Indicators struct {
	Engine View
	// MaxMemPressure gates when demand/capacity exceeds this (default 1.0).
	MaxMemPressure float64
	// MaxBlockedFraction gates when blocked/in-engine exceeds this
	// (default 0.4).
	MaxBlockedFraction float64
	// MaxConflictRatio gates on lock contention (default 1.5).
	MaxConflictRatio float64
	// GatePriorityBelow: only requests with priority strictly below this
	// are delayed (default PriorityHigh — low and medium wait).
	GatePriorityBelow policy.Priority
}

// Name implements Controller.
func (c *Indicators) Name() string { return "indicators" }

// Congested reports whether any indicator is over threshold.
func (c *Indicators) Congested() bool {
	st := c.Engine.StatsNow()
	maxMem := c.MaxMemPressure
	if maxMem <= 0 {
		maxMem = 1.0
	}
	maxBlocked := c.MaxBlockedFraction
	if maxBlocked <= 0 {
		maxBlocked = 0.4
	}
	maxCR := c.MaxConflictRatio
	if maxCR <= 0 {
		maxCR = 1.5
	}
	if st.MemPressure > maxMem {
		return true
	}
	if st.InEngine > 0 && float64(st.Blocked)/float64(st.InEngine) > maxBlocked {
		return true
	}
	if st.ConflictRatio > maxCR {
		return true
	}
	return false
}

// Decide implements Controller.
func (c *Indicators) Decide(r *workload.Request, _ sim.Time) Decision {
	gate := c.GatePriorityBelow
	if gate == 0 {
		gate = policy.PriorityHigh
	}
	if r.Priority >= gate {
		return Admit
	}
	if c.Congested() {
		return Queue
	}
	return Admit
}

// Chain applies controllers in order; the first non-Admit decision wins.
type Chain struct {
	Controllers []Controller
}

// Name implements Controller.
func (c *Chain) Name() string { return "chain" }

// Decide implements Controller.
func (c *Chain) Decide(r *workload.Request, now sim.Time) Decision {
	for _, sub := range c.Controllers {
		if d := sub.Decide(r, now); d != Admit {
			return d
		}
	}
	return Admit
}

// ObserveCompletion forwards completions to chained observers.
func (c *Chain) ObserveCompletion(r *workload.Request, responseSeconds float64, now sim.Time) {
	for _, sub := range c.Controllers {
		if o, ok := sub.(CompletionObserver); ok {
			o.ObserveCompletion(r, responseSeconds, now)
		}
	}
}
